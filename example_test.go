package lams_test

import (
	"fmt"
	"time"

	lams "repro"
	"repro/internal/analysis"
	"repro/internal/fec"
)

// The one-screen version of the paper: build a laser crosslink, run
// LAMS-DLC over it, and compare with the Section 4 closed forms.
func Example() {
	link := lams.LinkParams{RateBps: 300e6, DistanceKm: 4000, BER: 1e-6}
	simu := lams.NewSimulation(1)
	l := simu.NewLink(link)

	delivered := 0
	pair := simu.NewLAMSPair(l, lams.DefaultsFor(link),
		func(_ lams.Time, dg lams.Datagram, _ uint32) { delivered++ }, nil)

	for i := 0; i < 100; i++ {
		pair.Sender.Enqueue(lams.Datagram{ID: uint64(i), Payload: make([]byte, 1024)})
	}
	simu.RunFor(time.Second)

	fmt.Printf("delivered %d/100, retransmissions %d\n",
		delivered, pair.Metrics().Retransmissions.Value())
	// Output:
	// delivered 100/100, retransmissions 0
}

// Evaluating the paper's closed forms directly: the headline comparison at
// one operating point.
func ExampleAnalysisParams() {
	p := analysis.Params{
		PF: 0.05, PC: 0.0125,
		R: 0.0267, Icp: 0.010, Cdepth: 3, W: 64,
		Tf: 8360 / 300e6, Tc: 160 / 300e6, Tproc: 10e-6,
		Alpha: 0.013,
	}
	fmt.Printf("s_LAMS=%.3f s_HDLC=%.3f\n", p.SBarLAMS(), p.SBarHDLC())
	fmt.Printf("B_LAMS=%.0f frames, B_HDLC unbounded=%v\n", p.BLAMS(), p.BHDLC() > 1e300)
	fmt.Printf("eta_LAMS(4000)=%.2f eta_HDLC(4000)=%.2f\n",
		p.EtaLAMS(4000), p.EtaHDLC(4000, analysis.PaperPrinted))
	// Output:
	// s_LAMS=1.053 s_HDLC=1.066
	// B_LAMS=1204 frames, B_HDLC unbounded=true
	// eta_LAMS(4000)=0.74 eta_HDLC(4000)=0.06
}

// The FEC algebra of the link model (assumption 4): the same BER maps to
// very different residual frame error probabilities for I-frames and
// control frames.
func ExampleAnalysisParams_fec() {
	ber := 1e-4
	pf := fec.Hamming74.FrameErrorProb(ber, 8360)
	pc := fec.Repetition3.FrameErrorProb(ber, 160)
	fmt.Printf("P_F=%.2e P_C=%.2e ratio=%.0fx\n", pf, pc, pf/pc)
	// Output:
	// P_F=4.39e-04 P_C=4.80e-06 ratio=91x
}
