package lams

// One testing.B benchmark per experiment of the paper's evaluation (see
// DESIGN.md §5 and EXPERIMENTS.md). Each iteration regenerates the full
// table/figure — workload, sweep, both protocols, analysis overlay — and
// asserts its shape checks, so `go test -bench=.` both re-measures the
// paper and re-verifies its claims. Micro-benchmarks for the hot paths live
// in their packages (frame, crc, channel, sim).

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/channel"
	"repro/internal/sim"
)

func benchExperiment(b *testing.B, fn func() *bench.Result) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := fn()
		if !res.Passed() {
			for _, c := range res.Checks {
				if !c.Pass {
					b.Fatalf("%s shape check %q failed: %s", res.ID, c.Name, c.Detail)
				}
			}
		}
	}
}

// BenchmarkE1MeanPeriods regenerates the s̄ table (E1).
func BenchmarkE1MeanPeriods(b *testing.B) { benchExperiment(b, bench.E1MeanPeriods) }

// BenchmarkE2LowTrafficDelay regenerates D_low(N) (E2).
func BenchmarkE2LowTrafficDelay(b *testing.B) { benchExperiment(b, bench.E2LowTrafficDelay) }

// BenchmarkE3HoldingTime regenerates H_frame and B_LAMS (E3).
func BenchmarkE3HoldingTime(b *testing.B) { benchExperiment(b, bench.E3HoldingAndBuffer) }

// BenchmarkE4ThroughputVsTraffic regenerates η vs N (E4).
func BenchmarkE4ThroughputVsTraffic(b *testing.B) { benchExperiment(b, bench.E4ThroughputVsTraffic) }

// BenchmarkE5ThroughputVsBER regenerates η vs BER (E5).
func BenchmarkE5ThroughputVsBER(b *testing.B) { benchExperiment(b, bench.E5ThroughputVsBER) }

// BenchmarkE6ThroughputVsDistance regenerates η vs link distance (E6).
func BenchmarkE6ThroughputVsDistance(b *testing.B) { benchExperiment(b, bench.E6ThroughputVsDistance) }

// BenchmarkE7BurstResilience regenerates the burst-vs-C_depth·W_cp study (E7).
func BenchmarkE7BurstResilience(b *testing.B) { benchExperiment(b, bench.E7BurstResilience) }

// BenchmarkE8FailureDetection regenerates failure-detection latency (E8).
func BenchmarkE8FailureDetection(b *testing.B) { benchExperiment(b, bench.E8FailureDetection) }

// BenchmarkE9FlowControl regenerates the Stop-Go study (E9).
func BenchmarkE9FlowControl(b *testing.B) { benchExperiment(b, bench.E9FlowControl) }

// BenchmarkE10NumberingSize regenerates the numbering-size bound (E10).
func BenchmarkE10NumberingSize(b *testing.B) { benchExperiment(b, bench.E10NumberingSize) }

// BenchmarkE11Validation regenerates the sim-vs-analysis grid (E11).
func BenchmarkE11Validation(b *testing.B) { benchExperiment(b, bench.E11Validation) }

// BenchmarkE12VariantAblation regenerates the D_retrn variant ablation (E12).
func BenchmarkE12VariantAblation(b *testing.B) { benchExperiment(b, bench.E12VariantAblation) }

// BenchmarkE13StutterAblation regenerates the SR+ST ablation (E13).
func BenchmarkE13StutterAblation(b *testing.B) { benchExperiment(b, bench.E13StutterAblation) }

// BenchmarkE14HybridFEC regenerates the hybrid ARQ/FEC trade-off (E14).
func BenchmarkE14HybridFEC(b *testing.B) { benchExperiment(b, bench.E14HybridFECTradeoff) }

// BenchmarkE15InSequenceCost regenerates the in-sequence ladder (E15).
func BenchmarkE15InSequenceCost(b *testing.B) { benchExperiment(b, bench.E15InSequenceCost) }

// BenchmarkE16DelayThroughput regenerates the delay/throughput trade (E16).
func BenchmarkE16DelayThroughput(b *testing.B) { benchExperiment(b, bench.E16DelayThroughput) }

// BenchmarkE17CheckpointInterval regenerates the W_cp ablation (E17).
func BenchmarkE17CheckpointInterval(b *testing.B) {
	benchExperiment(b, bench.E17CheckpointIntervalAblation)
}

// BenchmarkLAMSTransfer2000 measures raw simulator throughput moving 2,000
// datagrams across the canonical link: the end-to-end hot path.
func BenchmarkLAMSTransfer2000(b *testing.B) {
	c := bench.Base()
	c.IModel = channel.FixedProb{P: 0.05}
	c.CModel = channel.FixedProb{P: 0.0125}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Seed = uint64(i) + 1
		res := bench.Run(c)
		if res.Lost != 0 {
			b.Fatalf("lost %d", res.Lost)
		}
	}
}

// BenchmarkSRHDLCTransfer2000 is the baseline counterpart.
func BenchmarkSRHDLCTransfer2000(b *testing.B) {
	c := bench.Base()
	c.Protocol = bench.SRHDLC
	c.IModel = channel.FixedProb{P: 0.05}
	c.CModel = channel.FixedProb{P: 0.0125}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Seed = uint64(i) + 1
		res := bench.Run(c)
		if res.Lost != 0 {
			b.Fatalf("lost %d", res.Lost)
		}
	}
}

// BenchmarkFacadeSetup measures world construction through the public API.
func BenchmarkFacadeSetup(b *testing.B) {
	lp := LinkParams{RateBps: 300e6, DistanceKm: 4000, BER: 1e-6}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewSimulation(uint64(i))
		link := s.NewLink(lp)
		pair := s.NewLAMSPair(link, DefaultsFor(lp), nil, nil)
		_ = pair
		s.RunFor(sim.Millisecond)
	}
}
