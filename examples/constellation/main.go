// Constellation: a five-satellite ring under way. Traffic streams from
// satellite 0 to satellite 2 over the short arc; mid-transfer the 1↔2
// crosslink is lost (tracking failure). The DLC on the dead link declares
// failure within its §3.2 bound, the topology manager recomputes routes
// over the surviving adjacencies, traffic — including the datagrams
// stranded in the dead link's sending buffer — swings onto the long arc
// 0→4→3→2, and the destination still sees every packet exactly once, in
// order.
package main

import (
	"fmt"
	"time"

	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/lamsdlc"
	"repro/internal/node"
	"repro/internal/sim"
)

func main() {
	sched := sim.NewScheduler()
	cfg := lamsdlc.Defaults(13 * time.Millisecond)
	cfg.CheckpointInterval = 5 * time.Millisecond
	pipe := channel.PipeConfig{
		RateBps: 300e6,
		Delay:   channel.ConstantDelay(6670 * time.Microsecond), // ~2,000 km hops
		IModel:  channel.FixedProb{P: 0.05},
		CModel:  channel.FixedProb{P: 0.01},
	}

	nodes, links := node.Ring(sched, 5, arq.MustEngine("lams", cfg), pipe, sim.NewRNG(31))
	delivered := 0
	misordered := 0
	var lastSeq uint64
	nodes[2].OnDeliver = func(_ sim.Time, p node.Packet) {
		if delivered > 0 && p.Seq != lastSeq+1 {
			misordered++
		}
		lastSeq = p.Seq
		delivered++
	}

	const n = 20000
	sent := 0
	var feed func()
	feed = func() {
		if sent < n {
			nodes[0].Send(2, []byte(fmt.Sprintf("telemetry %05d", sent)))
			sent++
			sched.ScheduleAfter(100*time.Microsecond, feed)
		}
	}
	sched.ScheduleAfter(0, feed)

	fmt.Printf("streaming %d packets 0 -> 2 around a 5-satellite ring\n\n", n)
	report := func(tag string) {
		fmt.Printf("%-26s delivered=%-6d via1=%-6d via4=%-6d rerouted=%d\n",
			tag, delivered,
			nodes[1].Stats.Forwarded.Value(), nodes[4].Stats.Forwarded.Value(),
			nodes[0].Stats.Rerouted.Value()+nodes[1].Stats.Rerouted.Value())
	}

	sched.RunFor(500 * time.Millisecond)
	report("steady state (short arc):")

	// Tracking loss on the 1<->2 adjacency (both data directions).
	links[2].Fail()
	links[3].Fail()
	fmt.Println("\n!! crosslink 1<->2 lost")
	sched.RunFor(300 * time.Millisecond) // DLC failure detection runs
	report("after link loss:")

	node.RecomputeRoutes(nodes)
	fmt.Println("\nroutes recomputed over surviving adjacencies")
	sched.RunFor(3 * time.Second)
	report("after failover:")

	fmt.Printf("\nfinal: %d/%d delivered exactly once in order (misordered=%d)\n",
		delivered, n, misordered)
	for _, nd := range nodes {
		fmt.Println(nd.Summary())
	}
}
