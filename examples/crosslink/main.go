// Crosslink: the paper's motivating scenario end to end. Two satellites in
// crossing LEO planes acquire line of sight for a few minutes (the short
// link lifetime of §2.1), the laser channel suffers both random errors and
// tracking-loss bursts, and the propagation delay changes as the range
// changes. LAMS-DLC moves as much traffic as possible through the window;
// the run reports geometry, burst behaviour, and protocol statistics.
package main

import (
	"fmt"
	"time"

	lams "repro"
	"repro/internal/channel"
	"repro/internal/orbit"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	// Geometry: 1000 km altitude, 60° inclination, planes 90° apart.
	ol := orbit.CrossPlanePair(1000e3, 60, 90, 0)
	windows := ol.Windows(2*ol.A.Period(), 10*time.Second)
	if len(windows) == 0 {
		fmt.Println("no visibility window in the horizon")
		return
	}
	w := windows[0]
	st := ol.Stats(w, time.Second)
	fmt.Printf("visibility window: %v (link lifetime %v)\n", w, w.Duration().Round(time.Second))
	fmt.Printf("range: %.0f–%.0f km (round trip %v–%v)\n",
		st.MinM/1e3, st.MaxM/1e3,
		2*orbit.PropagationDelay(st.MinM), 2*orbit.PropagationDelay(st.MaxM))
	fmt.Printf("HDLC would need t_out = R + α with α ≥ %v on this pass\n\n", st.TimeoutAlpha())

	// Shift the orbit epoch so simulation time 0 is window start.
	shifted := ol
	shifted.A.PhaseRad += shifted.A.MeanMotion() * w.Start.Seconds()
	shifted.B.PhaseRad += shifted.B.MeanMotion() * w.Start.Seconds()

	link := lams.LinkParams{
		RateBps: 300e6,
		Orbit:   &shifted,
		BER:     1e-6,
		Burst: &channel.BurstTrain{ // tracking-loss bursts every 20 s
			Period:   20 * time.Second,
			BurstLen: 25 * time.Millisecond,
			Offset:   5 * time.Second,
		},
	}

	cfg := lams.DefaultsFor(link)
	cfg.CumulationDepth = 4 // C_depth·W_cp = 40ms > burst length: §3.3 condition
	cfg.LinkLifetime = w.Duration()

	simu := lams.NewSimulation(7)
	l := simu.NewLink(link)
	var delivered, bytes int
	pair := simu.NewLAMSPair(l, cfg, func(now lams.Time, dg lams.Datagram, _ uint32) {
		delivered++
		bytes += len(dg.Payload)
	}, func(now lams.Time, reason string) {
		fmt.Printf("!! link failure declared at %v: %s\n", now, reason)
	})

	// Offer traffic at 80% of the wire rate for the whole pass.
	const payload = 1024
	interval := sim.Duration(float64((payload+21)*8) / (0.8 * link.RateBps) * float64(sim.Second))
	gen := workload.NewConstantRate(simu.Scheduler(), pair.Sender.Enqueue, interval, payload, -1)

	// Run the first minute of the pass in 10-second reporting slices (the
	// full multi-minute window behaves identically; see cfg.LinkLifetime
	// for the protocol's own awareness of the remaining pass).
	lifetime := w.Duration()
	horizon := lifetime
	if horizon > time.Minute {
		horizon = time.Minute
	}
	for t := time.Duration(0); t < horizon; t += 10 * time.Second {
		simu.RunFor(10 * time.Second)
		m := pair.Metrics()
		fmt.Printf("t=%-5v delivered=%-7d retx=%-5d enforced-recoveries=%d holding(mean)=%v\n",
			t+10*time.Second, delivered, m.Retransmissions.Value(),
			m.Failures.Value(), m.MeanHoldingTime().Round(time.Millisecond))
	}
	gen.Stop()
	simu.RunFor(5 * time.Second) // drain

	m := pair.Metrics()
	fmt.Printf("\nfirst %v of a %v pass: %d datagrams (%.1f MB)\n",
		horizon, lifetime.Round(time.Second), delivered, float64(bytes)/1e6)
	fmt.Printf("goodput %.1f Mbit/s of %s (efficiency %.3f)\n",
		float64(bytes)*8/horizon.Seconds()/1e6, sim.FormatRate(link.RateBps),
		float64(bytes)*8/(link.RateBps*horizon.Seconds()))
	fmt.Printf("transmissions: %d first, %d retransmitted; %d checkpoints; zero loss: %v\n",
		m.FirstTx.Value(), m.Retransmissions.Value(), m.Checkpoints.Value(),
		uint64(delivered) == m.Delivered.Value())
}
