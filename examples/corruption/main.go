// Corruption: the state-corruption adversary against every engine in the
// registry. One schedule combines all three corruption kinds — scramble
// (live protocol state overwritten through arq.StateCorruptor), ghost
// (well-formed forged frames through arq.GhostForger), and reorder (bounded
// non-FIFO delivery in the pipe) — and every engine runs it with the §3.2
// checker's convergence rule attached. The contract differs by engine:
// SS-ARQ (Dolev-style self-stabilizing) must converge from any state the
// adversary leaves it in — corruption-era casualties excused, then zero
// violations and zero failure declarations; the legacy engines hold the
// bounded contract, where a post-era N2 failure declaration is legitimate
// triage (DESIGN.md §13) but an unexcused violation is a bug.
package main

import (
	"fmt"
	"os"

	"repro/internal/bench"
	_ "repro/internal/engines" // pull the whole registry in, ssarq included
	"repro/internal/faults"
	"repro/internal/sim"
)

func main() {
	spec, err := faults.ParseSpec(
		"scramble@100ms+400ms:period=10ms; " + // state overwritten every 10ms
			"ghost@100ms+400ms:period=2ms; " + // forged frames on both beams
			"reorder@100ms+400ms:jitter=2ms") // FIFO clamp suspended
	if err != nil {
		panic(err)
	}
	fmt.Printf("schedule: %s\n\n", spec)

	fail := false
	for _, proto := range []bench.Protocol{bench.LAMS, bench.SRHDLC, bench.GBNHDLC, "ssarq"} {
		c := bench.Base()
		c.Protocol = proto
		c.N = 600
		c.OfferInterval = 500 * sim.Microsecond // arrivals span the corruption era
		c.Horizon = 5 * sim.Second
		c.N2 = 16 // a wedged HDLC link must declare, not hang
		c.Faults = spec
		c.CheckInvariants = true
		res := bench.Run(c)

		status := "contract held"
		if len(res.Violations) > 0 {
			status = fmt.Sprintf("%d VIOLATIONS", len(res.Violations))
			fail = true
		}
		if proto == "ssarq" && res.Failures > 0 {
			status = "FAILED TO CONVERGE"
			fail = true
		}
		// Delivered counts every sink delivery, accepted ghost forgeries
		// included; the workload's own datagrams are N minus the lost.
		fmt.Printf("%-8v delivered %3d/600, excused %3d era casualties, converged %8v after the era, %d failures — %s\n",
			proto, c.N-res.Lost, res.ExcusedBreaches,
			res.ConvergenceTime, res.Failures, status)
		for _, v := range res.Violations {
			fmt.Printf("  %s\n", v)
		}
	}
	if fail {
		os.Exit(1)
	}
	fmt.Println("\nSS-ARQ converged from arbitrary corruption; the legacy engines held")
	fmt.Println("the bounded contract — every casualty excused or declared, none silent.")
}
