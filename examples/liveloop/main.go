// Liveloop: the same LAMS-DLC state machines, but running in real time over
// a real byte stream (an in-memory net.Pipe with a fault injector that
// corrupts every 6th write). Frames are genuinely encoded with the wire
// codec, flag-framed HDLC-style, damaged in flight, rejected by FCS at the
// far end, and recovered through checkpoint NAKs — no simulator involved.
package main

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arq"
	"repro/internal/lamsdlc"
	"repro/internal/live"
	"repro/internal/sim"
)

// noisyConn corrupts one byte of every kth write.
type noisyConn struct {
	net.Conn
	k     int
	count atomic.Int64
	hits  atomic.Int64
}

func (c *noisyConn) Write(p []byte) (int, error) {
	if c.count.Add(1)%int64(c.k) == 0 && len(p) > 6 {
		q := append([]byte(nil), p...)
		i := len(q) / 2
		q[i] ^= 0x55
		if q[i] == 0x7E || q[i] == 0x7D { // keep framing flags intact
			q[i] ^= 0x0F
		}
		c.hits.Add(1)
		return c.Conn.Write(q)
	}
	return c.Conn.Write(p)
}

func main() {
	a, b := net.Pipe()
	noisy := &noisyConn{Conn: a, k: 6}

	cfg := lamsdlc.Defaults(4 * time.Millisecond)
	cfg.CheckpointInterval = 20 * time.Millisecond
	cfg.ProcTime = 100 * time.Microsecond

	var mu sync.Mutex
	received := map[uint64]bool{}
	done := make(chan struct{})
	const n = 200

	tx := live.NewEndpoint(noisy, live.EndpointConfig{
		Config:   cfg,
		RateBps:  10e6,
		SendSide: true,
	})
	defer tx.Close()
	rx := live.NewEndpoint(b, live.EndpointConfig{
		Config:   cfg,
		RateBps:  10e6,
		RecvSide: true,
		Deliver: func(_ sim.Time, dg arq.Datagram, seq uint32) {
			mu.Lock()
			received[dg.ID] = true
			if len(received) == n {
				close(done)
			}
			mu.Unlock()
		},
	})
	defer rx.Close()

	start := time.Now()
	fmt.Printf("pushing %d datagrams through a pipe that corrupts every 6th write...\n", n)
	go func() {
		for i := 0; i < n; i++ {
			for !tx.Enqueue(arq.Datagram{ID: uint64(i), Payload: []byte(fmt.Sprintf("live datagram %03d", i))}) {
				time.Sleep(time.Millisecond)
			}
		}
	}()

	ticker := time.NewTicker(500 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			mu.Lock()
			got := len(received)
			mu.Unlock()
			fmt.Printf("\nall %d delivered in %v wall time\n", got, time.Since(start).Round(time.Millisecond))
			fmt.Printf("writes corrupted by the wire: %d\n", noisy.hits.Load())
			fmt.Printf("receiver: %d delivered, %d NAK entries issued, %d checkpoints\n",
				rx.Metrics.Delivered.Value(), rx.Metrics.NAKsSent.Value(), rx.Metrics.Checkpoints.Value())
			fmt.Printf("sender: %d first transmissions + %d retransmissions, zero loss\n",
				tx.Metrics.FirstTx.Value(), tx.Metrics.Retransmissions.Value())
			return
		case <-ticker.C:
			mu.Lock()
			got := len(received)
			mu.Unlock()
			fmt.Printf("  %v: %d/%d delivered (retx so far: %d)\n",
				time.Since(start).Round(100*time.Millisecond), got, n,
				tx.Metrics.Retransmissions.Value())
		case <-time.After(30 * time.Second):
			fmt.Println("timed out")
			return
		}
	}
}
