// Quickstart: move 2,000 datagrams across a simulated 4,000 km laser
// crosslink with LAMS-DLC, then run the identical transfer with SR-HDLC,
// and print what the paper's abstract promises — the NAK-based protocol
// keeps the pipe full while the positive-ack baseline stalls every window.
package main

import (
	"fmt"
	"time"

	lams "repro"
)

func main() {
	link := lams.LinkParams{
		RateBps:    300e6, // 300 Mbps laser crosslink
		DistanceKm: 4000,
		BER:        1e-6, // post-interleaving channel BER
	}
	const (
		n       = 2000
		payload = 1024
	)

	fmt.Printf("link: 300 Mbps, 4000 km (one-way %v), BER 1e-6\n", link.OneWay())
	fmt.Printf("transfer: %d datagrams x %d B\n\n", n, payload)

	type outcome struct {
		name      string
		delivered int
		elapsed   time.Duration
		eff       float64
		retx      uint64
	}
	var results []outcome

	// --- LAMS-DLC ---------------------------------------------------------
	{
		simu := lams.NewSimulation(1)
		l := simu.NewLink(link)
		delivered := 0
		var last lams.Time
		pair := simu.NewLAMSPair(l, lams.DefaultsFor(link), func(now lams.Time, dg lams.Datagram, _ uint32) {
			delivered++
			last = now
		}, nil)
		for i := 0; i < n; i++ {
			pair.Sender.Enqueue(lams.Datagram{ID: uint64(i), Payload: make([]byte, payload)})
		}
		simu.RunFor(time.Minute)
		results = append(results, outcome{
			name:      "LAMS-DLC",
			delivered: delivered,
			elapsed:   time.Duration(last),
			eff:       float64(delivered*payload*8) / (link.RateBps * time.Duration(last).Seconds()),
			retx:      pair.Metrics().Retransmissions.Value(),
		})
	}

	// --- SR-HDLC baseline --------------------------------------------------
	{
		simu := lams.NewSimulation(1)
		l := simu.NewLink(link)
		delivered := 0
		var last lams.Time
		pair := simu.NewHDLCPair(l, lams.HDLCDefaultsFor(link), func(now lams.Time, dg lams.Datagram, _ uint32) {
			delivered++
			last = now
		}, nil)
		for i := 0; i < n; i++ {
			pair.Sender.Enqueue(lams.Datagram{ID: uint64(i), Payload: make([]byte, payload)})
		}
		simu.RunFor(time.Minute)
		results = append(results, outcome{
			name:      "SR-HDLC",
			delivered: delivered,
			elapsed:   time.Duration(last),
			eff:       float64(delivered*payload*8) / (link.RateBps * time.Duration(last).Seconds()),
			retx:      pair.Metrics().Retransmissions.Value(),
		})
	}

	for _, r := range results {
		fmt.Printf("%-9s delivered %d/%d in %v  efficiency %.3f  retransmissions %d\n",
			r.name, r.delivered, n, r.elapsed.Round(time.Microsecond), r.eff, r.retx)
	}
	fmt.Printf("\nspeedup: LAMS-DLC finishes %.1fx faster than SR-HDLC on this link\n",
		results[1].elapsed.Seconds()/results[0].elapsed.Seconds())

	// The paper's closed forms for the same scenario.
	p := lams.AnalysisFor(link, lams.DefaultsFor(link), payload, 64, 13*time.Millisecond)
	fmt.Printf("analysis: eta_LAMS=%.3f eta_HDLC=%.3f at N=%d (Section 4 model)\n",
		p.EtaLAMS(n), p.EtaHDLC(n, 0), n)
}
