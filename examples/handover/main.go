// Handover: the defining constraint of the LAMS environment — links live
// for minutes, then the constellation geometry takes them away. A bulk
// transfer larger than one pass can carry is pushed through a sequence of
// short visibility windows; each pass begins with a retargeting overhead,
// unfinished traffic carries across the gaps, and the application still
// receives every datagram exactly once, in order.
package main

import (
	"fmt"
	"time"

	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/fec"
	"repro/internal/lamsdlc"
	"repro/internal/session"
	"repro/internal/sim"
)

func main() {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(11)

	// Three short passes with dead gaps between them (compressed versions
	// of real multi-minute windows so the demo prints quickly).
	passes := []session.Pass{
		{Start: 0, End: sim.Time(400 * sim.Millisecond)},
		{Start: sim.Time(1200 * sim.Millisecond), End: sim.Time(1700 * sim.Millisecond)},
		{Start: sim.Time(2500 * sim.Millisecond), End: sim.Time(6 * sim.Second)},
	}

	proto := lamsdlc.Defaults(27 * sim.Millisecond) // ~4,000 km
	proto.CheckpointInterval = 10 * sim.Millisecond

	cfg := session.Config{
		Engine:   arq.MustEngine("lams", proto),
		Retarget: 50 * sim.Millisecond, // pointing acquisition per pass
	}

	mgr := session.New(sched, cfg, passes, func(i int, p session.Pass) *channel.Link {
		// Every pass gets a fresh link; the channel worsens pass to pass
		// to make the carry-over visible.
		ber := []float64{1e-5, 3e-5, 1e-5}[i%3]
		return channel.NewLink(sched, channel.PipeConfig{
			RateBps: 300e6,
			Delay:   channel.ConstantDelay(13340 * sim.Microsecond),
			IModel:  &channel.BSC{BER: ber, Scheme: fec.Hamming74},
			CModel:  &channel.BSC{BER: ber, Scheme: fec.Repetition3},
		}, rng.Split())
	})

	delivered := 0
	var lastID uint64
	ordered := true
	mgr.OnDeliver = func(_ sim.Time, dg arq.Datagram) {
		if delivered > 0 && dg.ID != lastID+1 {
			ordered = false
		}
		lastID = dg.ID
		delivered++
	}

	// A bulk transfer far larger than pass 1 can move.
	const n = 60000
	const payload = 1024
	for i := 0; i < n; i++ {
		mgr.Send(make([]byte, payload))
	}
	fmt.Printf("bulk transfer: %d datagrams (%.0f MB) over three passes\n\n", n, float64(n*payload)/1e6)

	report := func(label string) {
		fmt.Printf("%-22s t=%-7v %s\n", label, sched.Now(), mgr.Summary())
	}
	sched.RunUntil(sim.Time(400 * sim.Millisecond))
	report("pass 1 ended:")
	sched.RunUntil(sim.Time(1700 * sim.Millisecond))
	report("pass 2 ended:")
	sched.RunUntil(sim.Time(6 * sim.Second))
	report("pass 3 ended:")

	fmt.Printf("\ndelivered %d/%d exactly once, in order: %v\n", delivered, n, ordered && delivered == n)
	fmt.Printf("datagrams carried across pass boundaries: %d\n", mgr.Stats.CarriedOver.Value())
	fmt.Printf("cross-pass duplicates suppressed at the destination: %d\n", mgr.Stats.Duplicates.Value())
	_ = time.Second
}
