// Flowcontrol: §3.4's Stop-Go mechanism in action. The receiver's
// processing is deliberately slower than the wire, with a small receive
// buffer. Watch the receiver assert the Stop-Go bit, the sender walk its
// rate down multiplicatively, overflow discards get NAKed and retransmitted
// (so nothing is lost), and the rate recover when the burst ends.
package main

import (
	"fmt"
	"time"

	lams "repro"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	link := lams.LinkParams{RateBps: 300e6, DistanceKm: 2000}
	cfg := lams.DefaultsFor(link)
	cfg.CheckpointInterval = 5 * time.Millisecond
	cfg.RecvBufferCap = 32
	cfg.ProcTime = 100 * time.Microsecond // ~3.6x slower than the wire

	simu := lams.NewSimulation(5)
	l := simu.NewLink(link)
	delivered := 0
	pair := simu.NewLAMSPair(l, cfg, func(_ lams.Time, dg lams.Datagram, _ uint32) {
		delivered++
	}, nil)

	// A 300 ms on / 200 ms off bursty source at full wire rate.
	const payload = 1024
	interval := sim.Duration(float64((payload+21)*8) / link.RateBps * float64(sim.Second))
	gen := workload.NewOnOff(simu.Scheduler(), pair.Sender.Enqueue,
		interval, 300*time.Millisecond, 200*time.Millisecond, payload, -1)

	fmt.Println("t        delivered  rate   stop-go  recvQ  dropped  retx")
	for step := 0; step < 20; step++ {
		simu.RunFor(50 * time.Millisecond)
		m := pair.Metrics()
		fmt.Printf("%-8v %-10d %-6.3f %-8v %-6d %-8d %d\n",
			simu.Now(), delivered, pair.Sender.RateFraction(),
			pair.Receiver.StopGoAsserted(), pair.Receiver.QueueLen(),
			m.RecvDropped.Value(), m.Retransmissions.Value())
	}
	gen.Stop()
	simu.RunFor(5 * time.Second)

	m := pair.Metrics()
	fmt.Printf("\nsubmitted=%d delivered=%d — every accepted datagram arrived (zero loss)\n",
		m.Submitted.Value(), delivered)
	fmt.Printf("flow control: %d rate adjustments; receiver discarded %d overflowing frames,\n",
		m.RateChanges.Value(), m.RecvDropped.Value())
	fmt.Printf("all recovered via checkpoint NAKs (%d retransmissions)\n", m.Retransmissions.Value())
	if uint64(delivered) != m.Submitted.Value() {
		fmt.Println("!! datagrams missing")
	}
}
