// Faultstorm: the recovery machinery under a scripted barrage. One
// LAMS-DLC run absorbs, in sequence, a checkpoint blackout (the return
// beam dies while I-frames keep flowing), a stale-NAK checkpoint storm, a
// burst-loss episode, an orbit-driven handover cut-over, and a clock-skew
// window — with the §3.2 invariant checker attached throughout. The same
// schedule replays bit-identically at any seed and any worker count; the
// demo sweeps seeds 1–5 to show the contract holding under all of them.
package main

import (
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/faults"
	"repro/internal/sim"
)

func main() {
	// The storm: every fault class the harness scripts, back to back.
	// Grammar: kind@start[+dur][:key=value,...] — see internal/faults.
	spec, err := faults.ParseSpec(
		"half@150ms+60ms:dir=ba; " + // checkpoint blackout → Enforced Recovery
			"storm@300ms+100ms:period=2ms,naks=4,serial=1; " + // forged stale checkpoints
			"burst@450ms+150ms:len=1ms,gap=6ms; " + // recurring burst loss, both beams
			"handover@700ms; " + // 30ms cut-over, both beams
			"skew@800ms+200ms:factor=6") // checkpoint cadence 6x slower
	if err != nil {
		panic(err)
	}
	fmt.Printf("schedule: %s\n\n", spec)

	fail := false
	for seed := uint64(1); seed <= 5; seed++ {
		res := bench.Run(bench.RunConfig{
			Protocol:        bench.LAMS,
			N:               120,
			PayloadBytes:    512,
			OfferInterval:   8 * sim.Millisecond,
			RateBps:         10e6,
			OneWay:          10 * sim.Millisecond,
			Icp:             10 * sim.Millisecond,
			Cdepth:          3,
			Tproc:           10 * sim.Microsecond,
			Seed:            seed,
			Horizon:         6 * sim.Second,
			Faults:          spec,
			CheckInvariants: true,
		})
		status := "contract held"
		if len(res.Violations) > 0 {
			status = fmt.Sprintf("%d VIOLATIONS", len(res.Violations))
			fail = true
		}
		fmt.Printf("seed %d: delivered %d/120 (dup=%d lost=%d), %d retransmissions, %d recoveries, %d failures — %s\n",
			seed, res.Delivered-res.Duplicates, res.Duplicates, res.Lost,
			res.Retransmissions, res.Recoveries, res.Failures, status)
		for _, v := range res.Violations {
			fmt.Printf("  %s\n", v)
		}
	}
	if fail {
		os.Exit(1)
	}
	fmt.Println("\nEvery datagram delivered, duplicates only from retransmission,")
	fmt.Println("recovery entered and exited per §3.2, across every seed.")
}
