// Relay: the store-and-forward constellation of §2. Four satellites in a
// chain relay traffic from node 0 to node 3 over lossy LAMS-DLC crosslinks.
// The point of the demo is §2.3's architectural argument: transit nodes
// forward out-of-order frames immediately (no reorder buffers in the
// subnet), and only the destination resequences — exactly-once, in-order
// delivery emerges end to end while every link runs the relaxed protocol.
package main

import (
	"fmt"
	"time"

	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/lamsdlc"
	"repro/internal/node"
	"repro/internal/sim"
)

func main() {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(2024)

	cfg := lamsdlc.Defaults(13 * time.Millisecond) // ~2,000 km hops
	cfg.CheckpointInterval = 5 * time.Millisecond

	pipe := channel.PipeConfig{
		RateBps:    300e6,
		Delay:      channel.ConstantDelay(6670 * time.Microsecond),
		IModelSpec: "fixed:p=0.10", // a rough channel: 10% frame errors
		CModelSpec: "fixed:p=0.02",
	}

	nodes, _ := node.Line(sched, 4, arq.MustEngine("lams", cfg), pipe, rng)
	src, dst := nodes[0], nodes[3]

	var inOrder, outOfOrder int
	var lastSeq uint64
	var first = true
	dst.OnDeliver = func(_ sim.Time, p node.Packet) {
		if !first && p.Seq != lastSeq+1 {
			outOfOrder++
		}
		first = false
		lastSeq = p.Seq
		inOrder++
	}

	const n = 5000
	fmt.Printf("relaying %d packets over 3 hops (10%% frame errors per hop)\n\n", n)
	sent := 0
	var feed func()
	feed = func() {
		for sent < n {
			if !src.Send(3, []byte(fmt.Sprintf("packet %d", sent))) {
				// First-hop buffer full: retry shortly.
				sched.ScheduleAfter(time.Millisecond, feed)
				return
			}
			sent++
		}
	}
	sched.ScheduleAfter(0, feed)

	for t := 0; t < 6; t++ {
		sched.RunFor(500 * time.Millisecond)
		fmt.Printf("t=%-6v delivered=%-6d transit fwd: n1=%-6d n2=%-6d\n",
			sched.Now(), inOrder,
			nodes[1].Stats.Forwarded.Value(), nodes[2].Stats.Forwarded.Value())
		if inOrder == n {
			break
		}
	}
	sched.RunFor(30 * time.Second) // drain stragglers

	fmt.Println()
	for _, nd := range nodes {
		fmt.Println(nd.Summary())
	}
	rs := dst.Resequencer(0)
	fmt.Printf("\nend-to-end: %d/%d delivered, misordered deliveries to the app: %d\n",
		inOrder, n, outOfOrder)
	fmt.Printf("destination resequencer: %s\n", rs.Summary())
	fmt.Printf("transit reorder buffers: n1=%v n2=%v (must be none — §2.3)\n",
		nodes[1].Resequencer(0) != nil, nodes[2].Resequencer(0) != nil)
	perHop := dst.LinkMetrics(2) // dst's outgoing link metrics (reverse dir)
	_ = perHop
	for i := 0; i < 3; i++ {
		m := nodes[i].LinkMetrics(node.ID(i + 1))
		fmt.Printf("hop %d->%d: %d first + %d retx, mean holding %v\n",
			i, i+1, m.FirstTx.Value(), m.Retransmissions.Value(),
			m.MeanHoldingTime().Round(time.Millisecond))
	}
}
