package lams

import (
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/orbit"
	"repro/internal/sim"
)

func TestFacadeEndToEnd(t *testing.T) {
	s := NewSimulation(42)
	lp := LinkParams{RateBps: 300e6, DistanceKm: 4000, BER: 1e-6}
	link := s.NewLink(lp)
	got := map[uint64]int{}
	pair := s.NewLAMSPair(link, DefaultsFor(lp), func(_ Time, dg Datagram, _ uint32) {
		got[dg.ID]++
	}, nil)
	const n = 100
	for i := 0; i < n; i++ {
		if !pair.Sender.Enqueue(Datagram{ID: uint64(i), Payload: make([]byte, 1024)}) {
			t.Fatalf("enqueue %d refused", i)
		}
	}
	s.RunFor(10 * time.Second)
	for i := 0; i < n; i++ {
		if got[uint64(i)] == 0 {
			t.Fatalf("datagram %d lost", i)
		}
	}
	if s.Now() <= 0 {
		t.Fatal("clock did not advance")
	}
}

func TestFacadeHDLC(t *testing.T) {
	s := NewSimulation(7)
	lp := LinkParams{RateBps: 100e6, DistanceKm: 2000, BER: 1e-6}
	link := s.NewLink(lp)
	var order []uint64
	pair := s.NewHDLCPair(link, HDLCDefaultsFor(lp), func(_ Time, dg Datagram, _ uint32) {
		order = append(order, dg.ID)
	}, nil)
	for i := 0; i < 50; i++ {
		pair.Sender.Enqueue(Datagram{ID: uint64(i), Payload: make([]byte, 512)})
	}
	s.RunFor(10 * time.Second)
	if len(order) != 50 {
		t.Fatalf("delivered %d", len(order))
	}
	for i, id := range order {
		if id != uint64(i) {
			t.Fatal("HDLC must deliver in order")
		}
	}
}

func TestLinkParamsVariants(t *testing.T) {
	// Constant distance.
	lp := LinkParams{RateBps: 1e9, DistanceKm: 2998}
	if d := lp.OneWay(); d < 9*time.Millisecond || d > 11*time.Millisecond {
		t.Fatalf("one way %v for ~3000 km", d)
	}
	// Orbit-driven.
	ol := orbit.InPlanePair(1000e3, 30)
	lp2 := LinkParams{RateBps: 1e9, Orbit: &ol}
	if lp2.OneWay() <= 0 {
		t.Fatal("orbit delay")
	}
	// Perfect channel models.
	im, cm := LinkParams{}.models()
	if _, ok := im.(channel.Perfect); !ok {
		t.Fatal("zero BER should be perfect")
	}
	if _, ok := cm.(channel.Perfect); !ok {
		t.Fatal("zero BER control should be perfect")
	}
	// Burst overlay.
	bt := &channel.BurstTrain{Period: sim.Second, BurstLen: sim.Millisecond}
	im, cm = LinkParams{BER: 1e-6, Burst: bt}.models()
	if _, ok := im.(*channel.BurstTrain); !ok {
		t.Fatal("burst I model")
	}
	if _, ok := cm.(*channel.BurstTrain); !ok {
		t.Fatal("burst C model")
	}
}

func TestAnalysisForValid(t *testing.T) {
	lp := LinkParams{RateBps: 300e6, DistanceKm: 4000, BER: 1e-6}
	cfg := DefaultsFor(lp)
	p := AnalysisFor(lp, cfg, 1024, 64, 13*time.Millisecond)
	if err := p.Validate(); err != nil {
		t.Fatalf("analysis params invalid: %v", err)
	}
	if !(p.PC < p.PF) {
		t.Fatal("stronger control FEC not reflected")
	}
}

func TestSimulationDeterminism(t *testing.T) {
	run := func() uint64 {
		s := NewSimulation(99)
		lp := LinkParams{RateBps: 300e6, DistanceKm: 4000, BER: 1e-4}
		link := s.NewLink(lp)
		var count uint64
		pair := s.NewLAMSPair(link, DefaultsFor(lp), func(_ Time, dg Datagram, _ uint32) {
			count++
		}, nil)
		for i := 0; i < 100; i++ {
			pair.Sender.Enqueue(Datagram{ID: uint64(i), Payload: make([]byte, 1024)})
		}
		s.RunFor(5 * time.Second)
		return count + pair.Metrics().Retransmissions.Value()<<32
	}
	if run() != run() {
		t.Fatal("same seed produced different runs")
	}
}
