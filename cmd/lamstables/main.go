// Command lamstables regenerates the paper's evaluation: every experiment
// of the index in DESIGN.md §5 (tables and figures E1–E12), each printed as
// the rows/series the paper reports plus the pass/fail shape checks.
//
// Usage:
//
//	lamstables            # run everything
//	lamstables -run E4    # one experiment
//	lamstables -list      # list experiment IDs and titles
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"repro/internal/bench"
	"repro/internal/stats"
)

func main() {
	runID := flag.String("run", "", "run a single experiment by ID (E1..E21)")
	list := flag.Bool("list", false, "list experiments and exit")
	figures := flag.Bool("figures", false, "render each experiment's series as terminal charts")
	withMetrics := flag.Bool("metrics", false,
		"print the metrics snapshots experiments attach (protocol internals as JSON)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"simulation worker goroutines per experiment (results are identical at any count)")
	flag.Parse()

	bench.SetWorkers(*workers)

	if *list {
		for _, r := range describe() {
			fmt.Printf("%-4s %s\n", r[0], r[1])
		}
		return
	}

	var results []*bench.Result
	if *runID != "" {
		fn := bench.ByID(*runID)
		if fn == nil {
			fmt.Fprintf(os.Stderr, "lamstables: unknown experiment %q (try -list)\n", *runID)
			os.Exit(2)
		}
		results = append(results, fn())
	} else {
		results = bench.All()
	}

	failed := 0
	for _, r := range results {
		fmt.Println(r.Render())
		if *figures && len(r.Series) > 0 {
			logX := r.ID == "E5" || r.ID == "E14" // BER sweeps span decades
			fmt.Println(stats.Chart{
				Title:  fmt.Sprintf("figure %s: %s", r.ID, r.Title),
				Series: r.Series,
				LogX:   logX,
			}.Render())
		}
		if *withMetrics && len(r.Snapshots) > 0 {
			labels := make([]string, 0, len(r.Snapshots))
			for label := range r.Snapshots {
				labels = append(labels, label)
			}
			sort.Strings(labels)
			for _, label := range labels {
				fmt.Printf("metrics %s %s\n", label, r.Snapshots[label].JSON())
			}
		}
		if !r.Passed() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "lamstables: %d experiment(s) with failing shape checks\n", failed)
		os.Exit(1)
	}
	fmt.Printf("all %d experiments passed their shape checks\n", len(results))
}

func describe() [][2]string {
	return [][2]string{
		{"E1", "mean transmissions per I-frame (s̄), NAK-only vs pos-ack"},
		{"E2", "low-traffic delivery time D_low(N)"},
		{"E3", "holding time H_frame and transparent buffer size B_LAMS"},
		{"E4", "throughput efficiency η vs channel traffic N"},
		{"E5", "throughput efficiency η vs BER (FEC-derived P_F, P_C)"},
		{"E6", "throughput efficiency η vs link distance"},
		{"E7", "burst errors vs C_depth·W_cp"},
		{"E8", "link-failure detection latency vs C_depth"},
		{"E9", "Stop-Go flow control under receiver overload"},
		{"E10", "bounded numbering size"},
		{"E11", "simulation-vs-analysis validation grid"},
		{"E12", "HDLC D_retrn variant ablation (paper typo)"},
		{"E13", "stutter (SR+ST) idle-time ablation"},
		{"E14", "hybrid ARQ/FEC code-rate trade-off"},
		{"E15", "cost of the in-sequence constraint (GBN vs SR vs LAMS)"},
		{"E16", "delay vs throughput trade-off under rising load"},
		{"E17", "checkpoint interval W_cp ablation"},
		{"E18", "multi-hop relay over every registered engine"},
		{"E19", "constellation-scale sharded simulation (64→1,024 satellites)"},
		{"E20", "state-corruption convergence sweep (scramble/ghost/reorder)"},
		{"E21", "trace-driven channel record/replay over every registered engine"},
	}
}
