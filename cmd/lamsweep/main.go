// Command lamsweep runs a one-dimensional parameter sweep and emits CSV,
// the plot-ready counterpart of lamstables' fixed experiment grid.
//
// Examples:
//
//	lamsweep -param ber -values 1e-7,1e-6,1e-5,1e-4 -protos lams,srhdlc
//	lamsweep -param km -values 2000,4000,6000,8000,10000
//	lamsweep -param pf -values 0.01,0.05,0.1,0.2 -n 4000 > sweep.csv
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/arq"
	"repro/internal/bench"
	"repro/internal/channel"
	"repro/internal/orbit"
)

func main() {
	var (
		param   = flag.String("param", "ber", "swept parameter: ber | pf | km | n | icp | cdepth | w | alpha | payload")
		values  = flag.String("values", "1e-6,1e-5,1e-4", "comma-separated sweep values")
		protos  = flag.String("protos", "lams,srhdlc", "comma-separated protocols: "+strings.Join(arq.Protocols(), ", "))
		n       = flag.Int("n", 2000, "datagrams per run")
		payload = flag.Int("payload", 1024, "payload bytes")
		rate    = flag.Float64("rate", 300e6, "link rate, bits/s")
		km      = flag.Float64("km", 4000, "link distance, km")
		imodel  = flag.String("imodel", "", "I-frame error model spec when not swept: "+channel.SpecGrammar())
		cmodel  = flag.String("cmodel", "", "control-frame error model spec (same grammar)")
		ber     = flag.Float64("ber", 0, "base BER when not swept (shorthand for bsc specs)")
		pf      = flag.Float64("pf", -1, "fixed P_F when not swept (overrides ber; shorthand for fixed: specs)")
		pc      = flag.Float64("pc", -1, "fixed P_C (with -pf)")
		icp     = flag.Duration("icp", 10*time.Millisecond, "checkpoint interval")
		cdepth  = flag.Int("cdepth", 3, "cumulation depth")
		w       = flag.Int("w", 64, "HDLC window")
		alpha   = flag.Duration("alpha", 13*time.Millisecond, "HDLC timeout slack")
		seed    = flag.Uint64("seed", 1, "seed")
		horizon = flag.Duration("horizon", 2*time.Minute, "virtual-time cap per run")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0),
			"simulation worker goroutines (output is identical at any count)")
		withMetrics = flag.Bool("metrics", false,
			"append a metrics_json column with each run's full counter snapshot")
	)
	flag.Parse()
	bench.SetWorkers(*workers)

	base := bench.RunConfig{
		N:            *n,
		PayloadBytes: *payload,
		RateBps:      *rate,
		OneWay:       orbit.PropagationDelay(*km * 1e3),
		Icp:          *icp,
		Cdepth:       *cdepth,
		W:            *w,
		Alpha:        *alpha,
		Tproc:        10 * time.Microsecond,
		Seed:         *seed,
		Horizon:      *horizon,
	}

	var protoList []bench.Protocol
	for _, p := range strings.Split(*protos, ",") {
		reg, err := arq.ParseProtocol(p)
		if err != nil {
			fatal("%v", err)
		}
		protoList = append(protoList, bench.Protocol(reg.Name))
	}

	// Every (value, protocol) point is an independent run: build the whole
	// grid up front, fan it across the worker pool, and print in grid order
	// (the CSV is byte-identical at any -workers).
	type point struct {
		vs  string
		cfg bench.RunConfig
	}
	var points []point
	for _, vs := range strings.Split(*values, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(vs), 64)
		if err != nil {
			fatal("bad value %q: %v", vs, err)
		}
		c := base
		applyModels(&c, *imodel, *cmodel, *ber, *pf, *pc)
		switch *param {
		case "ber":
			applyModels(&c, "", "", v, -1, -1)
		case "pf":
			applyModels(&c, "", "", 0, v, maxf(*pc, v/4))
		case "km":
			c.OneWay = orbit.PropagationDelay(v * 1e3)
			c.Alpha = c.OneWay
		case "n":
			c.N = int(v)
		case "icp":
			c.Icp = time.Duration(v * float64(time.Millisecond))
		case "cdepth":
			c.Cdepth = int(v)
		case "w":
			c.W = int(v)
		case "alpha":
			c.Alpha = time.Duration(v * float64(time.Millisecond))
		case "payload":
			c.PayloadBytes = int(v)
		default:
			fatal("unknown parameter %q", *param)
		}
		for _, proto := range protoList {
			c.Protocol = proto
			points = append(points, point{vs: vs, cfg: c})
		}
	}

	cfgs := make([]bench.RunConfig, len(points))
	for i, pt := range points {
		cfgs[i] = pt.cfg
	}
	results := bench.RunMany(cfgs)

	header := "param,value,protocol,delivered,lost,duplicates,elapsed_s,efficiency,s_bar,retx,mean_holding_s,mean_delay_s,sendbuf_mean,recoveries,failures"
	if *withMetrics {
		header += ",metrics_json"
	}
	fmt.Println(header)
	for i, pt := range points {
		res := results[i]
		fmt.Printf("%s,%s,%s,%d,%d,%d,%.6f,%.5f,%.4f,%d,%.6f,%.6f,%.1f,%d,%d",
			*param, pt.vs, pt.cfg.Protocol,
			res.Delivered, res.Lost, res.Duplicates,
			res.Elapsed.Seconds(), res.Efficiency, res.TransPerFrame,
			res.Retransmissions, res.MeanHolding.Seconds(), res.MeanDelay.Seconds(),
			res.SendBufMean, res.Recoveries, res.Failures)
		if *withMetrics {
			fmt.Printf(",%s", csvQuote(snapshotJSON(res)))
		}
		fmt.Println()
	}
}

// snapshotJSON renders the run's counter set as a compact JSON object
// (counters only: gauges and histograms are per-instant/per-distribution
// detail that belongs on the /metrics endpoint, not in a sweep row).
func snapshotJSON(res bench.RunResult) string {
	b, err := json.Marshal(res.Snapshot.Counters)
	if err != nil {
		return "{}"
	}
	return string(b)
}

// csvQuote wraps s in double quotes with RFC 4180 escaping.
func csvQuote(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// applyModels installs error model specs: explicit -imodel/-cmodel specs
// win; otherwise the legacy -pf/-pc/-ber shorthands map through
// channel.LegacySpecs (the single home of the per-frame-class FEC
// defaults this CLI used to hardcode).
func applyModels(c *bench.RunConfig, imodel, cmodel string, ber, pf, pc float64) {
	if imodel != "" || cmodel != "" {
		for _, spec := range []string{imodel, cmodel} {
			if spec == "" {
				continue
			}
			if _, err := channel.ParseModel(spec); err != nil {
				fatal("%v", err)
			}
		}
		c.IModelSpec, c.CModelSpec = imodel, cmodel
		return
	}
	c.IModelSpec, c.CModelSpec = channel.LegacySpecs(ber, pf, pc)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lamsweep: "+format+"\n", args...)
	os.Exit(2)
}
