// Command lamsim runs one protocol scenario on the simulated laser
// crosslink and prints the measurements: the quick way to poke at the
// design space outside the fixed experiment grid.
//
// Examples:
//
//	lamsim -proto lams -n 5000 -km 8000 -ber 1e-6
//	lamsim -proto srhdlc -n 5000 -km 8000 -ber 1e-6 -w 128
//	lamsim -proto lams -pf 0.2 -pc 0.05 -icp 5ms -cdepth 5
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/arq"
	"repro/internal/bench"
	"repro/internal/channel"
	"repro/internal/faults"
	"repro/internal/frame"
	"repro/internal/live"
	"repro/internal/metrics"
	"repro/internal/orbit"
	"repro/internal/sim"
	"repro/internal/trace"
)

// chainTaps fans one pipe direction's events out to every non-nil tap.
func chainTaps(taps ...channel.Tap) channel.Tap {
	var set []channel.Tap
	for _, t := range taps {
		if t != nil {
			set = append(set, t)
		}
	}
	switch len(set) {
	case 0:
		return nil
	case 1:
		return set[0]
	}
	return func(now sim.Time, event string, f *frame.Frame) {
		for _, t := range set {
			t(now, event, f)
		}
	}
}

func main() {
	var (
		proto   = flag.String("proto", "lams", "protocol: "+strings.Join(arq.Protocols(), " | "))
		n       = flag.Int("n", 2000, "datagrams to transfer")
		payload = flag.Int("payload", 1024, "payload bytes per datagram")
		rate    = flag.Float64("rate", 300e6, "link rate, bits/s")
		km      = flag.Float64("km", 4000, "link distance, km")
		imodel  = flag.String("imodel", "", "I-frame error model spec: "+channel.SpecGrammar())
		cmodel  = flag.String("cmodel", "", "control-frame error model spec (same grammar)")
		record  = flag.String("record", "", "write the run's per-frame channel decisions to this trace file (replay with -imodel trace:file=...)")
		ber     = flag.Float64("ber", 0, "channel BER (through the link FEC; shorthand for -imodel/-cmodel bsc specs)")
		pf      = flag.Float64("pf", -1, "fixed I-frame error probability (overrides -ber; shorthand for fixed: specs)")
		pc      = flag.Float64("pc", -1, "fixed control-frame error probability (overrides -ber)")
		icp     = flag.Duration("icp", 10*time.Millisecond, "LAMS checkpoint interval W_cp")
		cdepth  = flag.Int("cdepth", 3, "LAMS cumulation depth C_depth")
		w       = flag.Int("w", 64, "HDLC window size")
		alpha   = flag.Duration("alpha", 13*time.Millisecond, "HDLC timeout slack α")
		tproc   = flag.Duration("tproc", 10*time.Microsecond, "per-frame processing time")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		horizon = flag.Duration("horizon", 10*time.Minute, "virtual-time safety stop")
		traceN  = flag.Int("trace", 0, "dump the last N link events after the run")

		traceOut    = flag.String("trace-out", "", "stream the full link-event trace to this file as JSONL")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics (Prometheus text) and /debug/pprof on this address; the process stays up after the run until interrupted")
		faultSpec   = flag.String("faults", "", `fault schedule, e.g. "outage@2s+100ms; storm@4s+200ms:period=2ms,naks=4" (see internal/faults)`)
		invariants  = flag.Bool("invariants", false, "attach the §3.2 invariant checker (its applicable subset for non-checkpointing protocols); violations print and fail the run")
	)
	flag.Parse()

	c := bench.RunConfig{
		N:            *n,
		PayloadBytes: *payload,
		RateBps:      *rate,
		OneWay:       orbit.PropagationDelay(*km * 1e3),
		Icp:          *icp,
		Cdepth:       *cdepth,
		W:            *w,
		Alpha:        *alpha,
		Tproc:        *tproc,
		Seed:         *seed,
		Horizon:      *horizon,
	}
	reg, err := arq.ParseProtocol(*proto)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lamsim: %v\n", err)
		os.Exit(2)
	}
	c.Protocol = bench.Protocol(reg.Name)

	if *faultSpec != "" {
		spec, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lamsim: %v\n", err)
			os.Exit(2)
		}
		c.Faults = spec
	}
	if *invariants {
		c.CheckInvariants = true
	}

	frameBits := (*payload + 21) * 8
	// One spec pair drives both frame classes; the legacy -pf/-pc/-ber
	// shorthands map onto the same registry grammar.
	c.IModelSpec, c.CModelSpec = *imodel, *cmodel
	if c.IModelSpec == "" && c.CModelSpec == "" {
		c.IModelSpec, c.CModelSpec = channel.LegacySpecs(*ber, *pf, *pc)
	}
	for _, spec := range []string{c.IModelSpec, c.CModelSpec} {
		if spec == "" {
			continue
		}
		if _, err := channel.ParseModel(spec); err != nil {
			fmt.Fprintf(os.Stderr, "lamsim: %v\n", err)
			os.Exit(2)
		}
	}
	var recorded *channel.TraceSet
	if *record != "" {
		recorded = channel.NewTraceSet()
		c.RecordChannels = recorded
	}

	var rec *trace.Recorder
	if *traceN > 0 {
		rec = trace.NewRecorder(*traceN)
	}
	var jsonl *trace.JSONL
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lamsim: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		jsonl = trace.NewJSONL(f)
	}
	if rec != nil || jsonl != nil {
		c.TapAB = chainTaps(rec.ChannelTap("A->B"), jsonl.ChannelTap("A->B"))
		c.TapBA = chainTaps(rec.ChannelTap("B->A"), jsonl.ChannelTap("B->A"))
	}

	var msrv *live.MetricsServer
	if *metricsAddr != "" {
		c.Metrics = metrics.New()
		var err error
		msrv, err = live.ServeMetrics(*metricsAddr, c.Metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lamsim: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("metrics         http://%s/metrics (pprof under /debug/pprof/)\n", msrv.Addr)
	}

	res := bench.Run(c)

	fmt.Printf("protocol        %v\n", res.Protocol)
	fmt.Printf("link            %s, %.0f km (R=%v), frame %dB (t_f=%v)\n",
		sim.FormatRate(*rate), *km, 2*c.OneWay,
		*payload+21, sim.Duration(float64(frameBits)/(*rate)*float64(sim.Second)))
	fmt.Printf("delivered       %d/%d (lost=%d dup=%d)\n", res.Delivered, *n, res.Lost, res.Duplicates)
	fmt.Printf("elapsed         %v\n", res.Elapsed)
	fmt.Printf("efficiency      %.4f of channel capacity\n", res.Efficiency)
	fmt.Printf("transmissions   %d first + %d retransmitted (s̄=%.3f)\n",
		res.FirstTx, res.Retransmissions, res.TransPerFrame)
	fmt.Printf("control frames  %d\n", res.ControlSent)
	fmt.Printf("holding time    mean %v, max %v\n", res.MeanHolding, res.MaxHolding)
	fmt.Printf("delivery delay  mean %v\n", res.MeanDelay)
	fmt.Printf("send buffer     mean %.1f, max %.0f frames (backlog at end: %d)\n",
		res.SendBufMean, res.SendBufMax, res.FinalBacklog)
	if res.Protocol == bench.LAMS {
		fmt.Printf("recv buffer     max %.0f frames (dropped %d)\n", res.RecvBufMax, res.RecvDropped)
		fmt.Printf("flow control    %d rate changes, final rate %.3f\n", res.RateChanges, res.FinalRate)
		fmt.Printf("numbering span  %d live sequence numbers max\n", res.MaxLiveSpan)
		fmt.Printf("failures        %d (recoveries %d)\n", res.Failures, res.Recoveries)
	}
	if c.Faults != nil {
		fmt.Printf("faults          %s\n", c.Faults)
	}
	if *invariants {
		if len(res.Violations) == 0 {
			fmt.Printf("invariants      ok (§3.2 contract held)\n")
		} else {
			fmt.Printf("invariants      %d violations:\n", len(res.Violations))
			for _, v := range res.Violations {
				fmt.Printf("  %s\n", v)
			}
		}
	}
	if rec != nil {
		fmt.Printf("\n--- last %d link events ---\n%s", len(rec.Events()), rec.Dump())
	}
	if recorded != nil {
		if err := recorded.WriteFile(*record); err != nil {
			fmt.Fprintf(os.Stderr, "lamsim: channel trace: %v\n", err)
			os.Exit(2)
		}
		frames := 0
		for _, name := range recorded.Names() {
			frames += len(recorded.Get(name).Recs)
		}
		fmt.Printf("channel trace   %d frames (%d streams) -> %s\n",
			frames, len(recorded.Names()), *record)
	}
	if jsonl != nil {
		if err := jsonl.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "lamsim: trace export: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("trace           %d events -> %s\n", jsonl.Count(), *traceOut)
	}
	if msrv != nil {
		fmt.Printf("metrics         final counters stay scrapeable; interrupt (ctrl-c) to exit\n")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		msrv.Close()
	}
	if len(res.Violations) > 0 {
		os.Exit(1)
	}
	// A scripted failure-window outage legitimately strands datagrams; only
	// treat loss as a run failure when the protocol never declared failure.
	if res.Lost > 0 && res.Failures == 0 {
		os.Exit(1)
	}
}
