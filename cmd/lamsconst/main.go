// Command lamsconst runs the constellation-scale sharded simulation: a
// Walker-delta constellation with per-crosslink DLC sessions, polar
// handover churn, and end-to-end flows, executed on the conservative
// parallel shard engine. The report is bit-identical at every -shards
// value; the flag only trades wall-clock time on multi-core hosts.
//
// Examples:
//
//	lamsconst -sats 1024 -shards 8
//	lamsconst -planes 6 -perplane 11 -phasing 2 -incl 86.4 -proto srhdlc
//	lamsconst -sweep 64,256,1024 -shards 4
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/arq"
	"repro/internal/channel"
	_ "repro/internal/engines"
	"repro/internal/orbit"
	"repro/internal/shard"
	"repro/internal/sim"
)

func main() {
	var (
		sats     = flag.Int("sats", 64, "square Walker grid size (perfect square); overridden by -planes/-perplane")
		planes   = flag.Int("planes", 0, "orbital planes (with -perplane; overrides -sats)")
		perplane = flag.Int("perplane", 0, "satellites per plane")
		phasing  = flag.Int("phasing", 1, "Walker phasing factor F")
		altKm    = flag.Float64("alt", 780, "altitude, km")
		incl     = flag.Float64("incl", 86.4, "inclination, degrees")
		polar    = flag.Float64("polar", 60, "cross-plane links unusable above this |latitude| in degrees (0 disables)")
		retarget = flag.Duration("retarget", 200*time.Millisecond, "pointing re-acquisition time after a link becomes usable")

		proto     = flag.String("proto", "lams", "protocol: "+strings.Join(arq.Protocols(), ", "))
		shards    = flag.Int("shards", 1, "parallel shards (report is identical at every value)")
		seed      = flag.Uint64("seed", 1, "seed")
		flows     = flag.Int("flows", 0, "flow count (0 = sats/4)")
		datagrams = flag.Int("datagrams", 50, "datagrams per flow")
		payload   = flag.Int("payload", 256, "payload bytes")
		interval  = flag.Duration("interval", 2*time.Millisecond, "offer interval per flow")
		rate      = flag.Float64("rate", 300e6, "crosslink rate, bits/s")
		imodel    = flag.String("imodel", "", "per-link I-frame error model spec: "+channel.SpecGrammar())
		cmodel    = flag.String("cmodel", "", "per-link control-frame error model spec (same grammar)")
		horizon   = flag.Duration("horizon", 30*time.Second, "virtual-time cap")
		full      = flag.Bool("to-horizon", false, "run the full horizon instead of stopping at completion")
		sweep     = flag.String("sweep", "", "comma-separated grid sizes to sweep (overrides -sats)")
	)
	flag.Parse()

	sizes := []int{*sats}
	if *sweep != "" {
		sizes = sizes[:0]
		for _, f := range strings.Split(*sweep, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fmt.Fprintf(os.Stderr, "lamsconst: bad -sweep entry %q: %v\n", f, err)
				os.Exit(2)
			}
			sizes = append(sizes, n)
		}
	}

	for _, n := range sizes {
		var w orbit.Walker
		if *planes > 0 && *perplane > 0 {
			w = orbit.Walker{Planes: *planes, PerPlane: *perplane, PhasingF: *phasing,
				AltitudeM: *altKm * 1e3, InclinationDeg: *incl}
		} else {
			if p := int(math.Round(math.Sqrt(float64(n)))); p*p != n {
				fmt.Fprintf(os.Stderr, "lamsconst: %d is not a perfect square; use -planes/-perplane for rectangular grids\n", n)
				os.Exit(2)
			}
			w = shard.WalkerGrid(n)
			w.PhasingF = *phasing
			w.AltitudeM = *altKm * 1e3
			w.InclinationDeg = *incl
		}
		cfg := shard.DefaultConfig(w)
		cfg.Proto = *proto
		cfg.Shards = *shards
		cfg.Seed = *seed
		if *flows > 0 {
			cfg.Flows = *flows
		}
		cfg.DatagramsPerFlow = *datagrams
		cfg.PayloadBytes = *payload
		cfg.OfferInterval = sim.Duration(*interval)
		cfg.RateBps = *rate
		cfg.IModelSpec = *imodel
		cfg.CModelSpec = *cmodel
		cfg.Horizon = sim.Duration(*horizon)
		cfg.RunToHorizon = *full
		cfg.PolarDeg = *polar
		cfg.Retarget = sim.Duration(*retarget)

		t0 := time.Now()
		rep, err := shard.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lamsconst: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("# %d satellites, %d shards, proto=%s, wall=%v (%.0f events/s)\n",
			rep.Sats, rep.Shards, *proto, time.Since(t0).Round(time.Millisecond),
			float64(rep.Events)/time.Since(t0).Seconds())
		fmt.Print(rep.Render())
	}
}
