// Command lamspass plans crosslink passes from orbital geometry: given two
// satellites' orbit parameters it prints the visibility windows over a
// horizon, the range statistics of each pass, and the protocol-relevant
// derived numbers — round-trip spread, the HDLC timeout slack α the pass
// would force, and the LAMS-DLC transparent buffer size for a given rate.
//
// Example:
//
//	lamspass -alt 1000 -inc 60 -raansep 90 -hours 4 -rate 300e6
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/fec"
	"repro/internal/orbit"
)

func main() {
	var (
		altKm   = flag.Float64("alt", 1000, "orbit altitude, km")
		incDeg  = flag.Float64("inc", 60, "inclination, degrees")
		raanSep = flag.Float64("raansep", 90, "RAAN separation between planes, degrees")
		phase   = flag.Float64("phase", 0, "phase offset of satellite B, degrees")
		hours   = flag.Float64("hours", 4, "planning horizon, hours")
		rate    = flag.Float64("rate", 300e6, "link rate for protocol sizing, bits/s")
		ber     = flag.Float64("ber", 1e-6, "channel BER for protocol sizing")
		frameB  = flag.Int("frame", 1024, "I-frame payload bytes for protocol sizing")
		icp     = flag.Duration("icp", 10*time.Millisecond, "checkpoint interval W_cp")
		cdepth  = flag.Int("cdepth", 3, "cumulation depth C_depth")
	)
	flag.Parse()

	link := orbit.CrossPlanePair(*altKm*1e3, *incDeg, *raanSep, *phase)
	horizon := time.Duration(*hours * float64(time.Hour))
	windows := link.Windows(horizon, 10*time.Second)

	fmt.Printf("constellation: %.0f km altitude, %.0f° inclination, planes %.0f° apart, phase %.0f°\n",
		*altKm, *incDeg, *raanSep, *phase)
	fmt.Printf("orbital period %v; planning horizon %v\n\n", link.A.Period().Round(time.Second), horizon)

	if len(windows) == 0 {
		fmt.Println("no visibility windows in the horizon")
		return
	}

	var visible time.Duration
	for i, w := range windows {
		st := link.Stats(w, time.Second)
		visible += w.Duration()
		fmt.Printf("pass %d: %v\n", i+1, w)
		fmt.Printf("  range %.0f–%.0f km   round trip %v–%v (midrange %v)\n",
			st.MinM/1e3, st.MaxM/1e3,
			2*orbit.PropagationDelay(st.MinM).Round(time.Microsecond),
			2*orbit.PropagationDelay(st.MaxM).Round(time.Microsecond),
			st.RoundTrip().Round(time.Microsecond))
		fmt.Printf("  HDLC timeout slack α ≥ %v\n", st.TimeoutAlpha().Round(time.Microsecond))

		p := analysis.FromScenario(analysis.Scenario{
			RateBps:      *rate,
			BER:          *ber,
			FrameBytes:   *frameB + 21,
			ControlBytes: 20,
			OneWay:       orbit.PropagationDelay(st.MidrangeM()),
			Icp:          *icp,
			Cdepth:       *cdepth,
			W:            64,
			Tproc:        10 * time.Microsecond,
			Alpha:        st.TimeoutAlpha(),
		})
		fmt.Printf("  LAMS-DLC sizing: holding %v, transparent buffer %.0f frames (%.1f MB), numbering ≥ %.0f\n",
			analysis.Dur(p.HFrameLAMS()).Round(time.Microsecond),
			p.BLAMS(), p.BLAMS()*float64(*frameB)/1e6, p.NumberingSizeLAMS())
		capacity := *rate * w.Duration().Seconds() * p.EtaLAMS(1_000_000) / 8 / 1e6
		fmt.Printf("  pass capacity ≈ %.0f MB at η_LAMS(N→large)=%.2f\n\n",
			capacity, p.EtaLAMS(1_000_000))
	}
	fmt.Printf("total visibility: %v of %v (%.0f%%); FEC: %s / %s\n",
		visible.Round(time.Second), horizon, 100*visible.Seconds()/horizon.Seconds(),
		fec.Hamming74.Name, fec.Repetition3.Name)
}
