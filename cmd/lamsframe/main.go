// Command lamsframe inspects the wire format: it decodes hex-encoded frames
// from stdin (one per line) or, with -samples, prints an annotated gallery
// of every frame kind the codec produces.
//
// Usage:
//
//	lamsframe -samples
//	echo 02000000002a... | lamsframe
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/frame"
)

func main() {
	samples := flag.Bool("samples", false, "print sample encodings of every frame kind")
	flag.Parse()

	if *samples {
		printSamples()
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	status := 0
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		raw, err := hex.DecodeString(strings.ReplaceAll(text, " ", ""))
		if err != nil {
			fmt.Fprintf(os.Stderr, "line %d: bad hex: %v\n", line, err)
			status = 1
			continue
		}
		for len(raw) > 0 {
			f, n, err := frame.Decode(raw)
			if err != nil {
				fmt.Fprintf(os.Stderr, "line %d: %v (%d bytes left)\n", line, err, len(raw))
				status = 1
				break
			}
			fmt.Printf("%4dB  %s\n", n, f)
			raw = raw[n:]
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "lamsframe: %v\n", err)
		status = 1
	}
	os.Exit(status)
}

func printSamples() {
	gallery := []*frame.Frame{
		frame.NewI(17, 3, []byte("user payload bits")),
		frame.NewCheckpoint(9, 18, nil, false, false),
		frame.NewCheckpoint(10, 18, []uint32{12, 15}, false, false),
		frame.NewCheckpoint(11, 18, []uint32{12, 15}, true, true),
		frame.NewRequestNAK(4),
		{Kind: frame.KindHDLCI, Seq: 5, Ack: 3, Payload: []byte("hdlc"), Final: true},
		{Kind: frame.KindRR, Ack: 6, Final: true},
		{Kind: frame.KindREJ, Ack: 4, Seq: 4},
		{Kind: frame.KindSREJ, Ack: 9, Seq: 6},
	}
	for _, f := range gallery {
		buf, err := f.Encode()
		if err != nil {
			fmt.Fprintf(os.Stderr, "encode %v: %v\n", f, err)
			continue
		}
		fmt.Printf("%-44s %3dB  %s\n", f.String(), len(buf), hex.EncodeToString(buf))
	}
}
