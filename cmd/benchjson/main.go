// Command benchjson turns `go test -bench -benchmem` output into a
// machine-readable JSON map of benchmark name to measured cost
// (ns/op, B/op, allocs/op, and MB/s where reported). It echoes every input
// line to stdout unchanged so it can terminate a pipeline without hiding
// the run, and writes the JSON snapshot to -o (BENCH_PR6.json by default)
// for commit alongside the analysis in EXPERIMENTS.md.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type record struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
	MBs      float64 `json:"mb_s,omitempty"`
}

func main() {
	out := flag.String("o", "BENCH_PR6.json", "path of the JSON snapshot to write")
	flag.Parse()

	results := map[string]record{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		f := strings.Fields(line)
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		// Strip the -GOMAXPROCS suffix so names stay stable across hosts.
		name := f[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var r record
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				r.NsOp = v
			case "B/op":
				r.BOp = v
			case "allocs/op":
				r.AllocsOp = v
			case "MB/s":
				r.MBs = v
			}
		}
		results[name] = r
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)
}
