// Package crc implements the frame check sequences used by the frame codec:
// CRC-16/X.25 (the HDLC FCS: reflected polynomial 0x1021, init 0xFFFF, final
// XOR 0xFFFF) for control frames, and CRC-32/IEEE for I-frame bodies, which
// on a 300 Mbps – 1 Gbps laser link are large enough that a 16-bit check
// would leave a non-negligible undetected-error rate.
//
// The paper's link model (assumption 9) treats every channel error as
// detectable; the simulator honours that by marking corrupted frames
// out-of-band, but the codec still carries and verifies real FCS fields so
// the wire format is complete and the live driver can run over real,
// untrusted byte streams.
package crc

// CCITT polynomial (reversed) used by HDLC/X.25.
const ccittPoly = 0x8408

// IEEE 802.3 polynomial (reversed) used by CRC-32.
const ieeePoly = 0xEDB88320

var (
	ccittTable [256]uint16
	ieeeTable  [256]uint32
)

func init() {
	for i := range ccittTable {
		crc := uint16(i)
		for b := 0; b < 8; b++ {
			if crc&1 != 0 {
				crc = (crc >> 1) ^ ccittPoly
			} else {
				crc >>= 1
			}
		}
		ccittTable[i] = crc
	}
	for i := range ieeeTable {
		crc := uint32(i)
		for b := 0; b < 8; b++ {
			if crc&1 != 0 {
				crc = (crc >> 1) ^ ieeePoly
			} else {
				crc >>= 1
			}
		}
		ieeeTable[i] = crc
	}
}

// FCS16 returns the HDLC frame check sequence (CRC-16/X.25) of data.
// The hot loop uses slicing-by-8 (see slicing.go); fcs16Bytewise computes
// the same function one byte at a time and cross-checks it in tests.
func FCS16(data []byte) uint16 {
	return update16(0xFFFF, data) ^ 0xFFFF
}

func fcs16Bytewise(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc = (crc >> 8) ^ ccittTable[byte(crc)^b]
	}
	return crc ^ 0xFFFF
}

// CheckFCS16 reports whether sum is the correct FCS16 of data.
func CheckFCS16(data []byte, sum uint16) bool { return FCS16(data) == sum }

// Sum32 returns the CRC-32/IEEE checksum of data. The hot loop uses
// slicing-by-8; sum32Bytewise is the reference the tests cross-check.
func Sum32(data []byte) uint32 {
	return update32(0xFFFFFFFF, data) ^ 0xFFFFFFFF
}

func sum32Bytewise(data []byte) uint32 {
	crc := uint32(0xFFFFFFFF)
	for _, b := range data {
		crc = (crc >> 8) ^ ieeeTable[byte(crc)^b]
	}
	return crc ^ 0xFFFFFFFF
}

// CheckSum32 reports whether sum is the correct CRC-32 of data.
func CheckSum32(data []byte, sum uint32) bool { return Sum32(data) == sum }
