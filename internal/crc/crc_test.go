package crc

import (
	"hash/crc32"
	"testing"
	"testing/quick"
)

func TestFCS16KnownVectors(t *testing.T) {
	// Standard check value for CRC-16/X.25: "123456789" -> 0x906E.
	if got := FCS16([]byte("123456789")); got != 0x906E {
		t.Fatalf("FCS16(check) = %#04x, want 0x906e", got)
	}
	// Empty input: init ^ final = 0xFFFF ^ 0xFFFF ... compute stable value.
	if got := FCS16(nil); got != 0x0000 {
		t.Fatalf("FCS16(nil) = %#04x, want 0x0000", got)
	}
}

func TestSum32MatchesStdlib(t *testing.T) {
	inputs := [][]byte{
		nil,
		{0},
		[]byte("123456789"),
		[]byte("The LAMS-DLC ARQ Protocol"),
		make([]byte, 4096),
	}
	for _, in := range inputs {
		if got, want := Sum32(in), crc32.ChecksumIEEE(in); got != want {
			t.Fatalf("Sum32(%q...) = %#08x, want %#08x", truncate(in), got, want)
		}
	}
}

func truncate(b []byte) []byte {
	if len(b) > 16 {
		return b[:16]
	}
	return b
}

func TestCheckHelpers(t *testing.T) {
	data := []byte("hello, satellite")
	if !CheckFCS16(data, FCS16(data)) {
		t.Fatal("CheckFCS16 rejected correct sum")
	}
	if CheckFCS16(data, FCS16(data)^1) {
		t.Fatal("CheckFCS16 accepted wrong sum")
	}
	if !CheckSum32(data, Sum32(data)) {
		t.Fatal("CheckSum32 rejected correct sum")
	}
	if CheckSum32(data, Sum32(data)^1) {
		t.Fatal("CheckSum32 accepted wrong sum")
	}
}

func TestFCS16DetectsSingleBitErrors(t *testing.T) {
	// CRC-16 must detect every single-bit error.
	data := []byte("frame body for error detection test")
	sum := FCS16(data)
	for i := range data {
		for bit := 0; bit < 8; bit++ {
			data[i] ^= 1 << bit
			if FCS16(data) == sum {
				t.Fatalf("single-bit flip at byte %d bit %d undetected", i, bit)
			}
			data[i] ^= 1 << bit
		}
	}
}

func TestSum32DetectsSingleBitErrors(t *testing.T) {
	data := []byte("another frame body, this one checked with crc32")
	sum := Sum32(data)
	for i := range data {
		for bit := 0; bit < 8; bit++ {
			data[i] ^= 1 << bit
			if Sum32(data) == sum {
				t.Fatalf("single-bit flip at byte %d bit %d undetected", i, bit)
			}
			data[i] ^= 1 << bit
		}
	}
}

func TestFCS16DetectsBurstsUpTo16Bits(t *testing.T) {
	// Any error burst of length <= 16 bits must be detected by CRC-16.
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i * 37)
	}
	sum := FCS16(data)
	for start := 0; start < len(data)*8-16; start += 5 {
		for blen := 1; blen <= 16; blen++ {
			mutated := append([]byte(nil), data...)
			// Flip first and last bit of the burst (worst cases are
			// covered by polynomial theory; we spot-check patterns).
			flip := func(bitpos int) {
				mutated[bitpos/8] ^= 1 << (bitpos % 8)
			}
			flip(start)
			if blen > 1 {
				flip(start + blen - 1)
			}
			if FCS16(mutated) == sum {
				t.Fatalf("burst start=%d len=%d undetected", start, blen)
			}
		}
	}
}

func TestFCS16Property(t *testing.T) {
	// Property: appending data changes the checksum deterministically and
	// equal inputs give equal sums.
	f := func(a []byte) bool {
		return FCS16(a) == FCS16(append([]byte(nil), a...))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSlicingMatchesBytewise(t *testing.T) {
	// The slicing-by-8 loops must compute exactly the bytewise function
	// for every length (tails shorter than a full 8-byte step included)
	// and for arbitrary content.
	data := make([]byte, 300)
	for i := range data {
		data[i] = byte(i*131 + 17)
	}
	for n := 0; n <= len(data); n++ {
		if got, want := FCS16(data[:n]), fcs16Bytewise(data[:n]); got != want {
			t.Fatalf("FCS16 len=%d: slicing %#04x != bytewise %#04x", n, got, want)
		}
		if got, want := Sum32(data[:n]), sum32Bytewise(data[:n]); got != want {
			t.Fatalf("Sum32 len=%d: slicing %#08x != bytewise %#08x", n, got, want)
		}
	}
	f := func(a []byte) bool {
		return FCS16(a) == fcs16Bytewise(a) && Sum32(a) == sum32Bytewise(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// benchSink keeps the checksum calls observable so the compiler cannot
// eliminate the loop body.
var benchSink uint32

func BenchmarkFCS16_1K(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		benchSink += uint32(FCS16(data))
	}
}

func BenchmarkSum32_4K(b *testing.B) {
	data := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		benchSink += Sum32(data)
	}
}

func BenchmarkFCS16Bytewise_1K(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		benchSink += uint32(fcs16Bytewise(data))
	}
}

func BenchmarkSum32Bytewise_4K(b *testing.B) {
	data := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		benchSink += sum32Bytewise(data)
	}
}
