package crc

// Slicing-by-8 tables: t[0] is the classic bytewise table; t[j][i] extends
// it so that eight input bytes fold into the running CRC with eight table
// lookups and no inter-byte dependency chain. For a reflected CRC the
// recurrence is t[j][i] = t[0][t[j-1][i] & 0xff] ^ (t[j-1][i] >> 8): one
// more zero byte pushed through the register.
var (
	ccittSlice [8][256]uint16
	ieeeSlice  [8][256]uint32
)

func init() {
	ccittSlice[0] = ccittTable
	for j := 1; j < 8; j++ {
		for i := range ccittSlice[j] {
			prev := ccittSlice[j-1][i]
			ccittSlice[j][i] = ccittSlice[0][byte(prev)] ^ (prev >> 8)
		}
	}
	ieeeSlice[0] = ieeeTable
	for j := 1; j < 8; j++ {
		for i := range ieeeSlice[j] {
			prev := ieeeSlice[j-1][i]
			ieeeSlice[j][i] = ieeeSlice[0][byte(prev)] ^ (prev >> 8)
		}
	}
}

// update16 folds data into crc eight bytes at a time, finishing the tail
// bytewise. It computes exactly the same function as the bytewise loop.
func update16(crc uint16, data []byte) uint16 {
	for len(data) >= 8 {
		crc ^= uint16(data[0]) | uint16(data[1])<<8
		crc = ccittSlice[7][byte(crc)] ^
			ccittSlice[6][byte(crc>>8)] ^
			ccittSlice[5][data[2]] ^
			ccittSlice[4][data[3]] ^
			ccittSlice[3][data[4]] ^
			ccittSlice[2][data[5]] ^
			ccittSlice[1][data[6]] ^
			ccittSlice[0][data[7]]
		data = data[8:]
	}
	for _, b := range data {
		crc = (crc >> 8) ^ ccittTable[byte(crc)^b]
	}
	return crc
}

// update32 is the CRC-32 analogue of update16: the 32-bit register absorbs
// the first four bytes, the next four are folded through the low tables.
func update32(crc uint32, data []byte) uint32 {
	for len(data) >= 8 {
		crc ^= uint32(data[0]) | uint32(data[1])<<8 |
			uint32(data[2])<<16 | uint32(data[3])<<24
		crc = ieeeSlice[7][byte(crc)] ^
			ieeeSlice[6][byte(crc>>8)] ^
			ieeeSlice[5][byte(crc>>16)] ^
			ieeeSlice[4][byte(crc>>24)] ^
			ieeeSlice[3][data[4]] ^
			ieeeSlice[2][data[5]] ^
			ieeeSlice[1][data[6]] ^
			ieeeSlice[0][data[7]]
		data = data[8:]
	}
	for _, b := range data {
		crc = (crc >> 8) ^ ieeeTable[byte(crc)^b]
	}
	return crc
}
