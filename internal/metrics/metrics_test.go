package metrics

import (
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("frames_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("frames_total") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("rate_fraction")
	g.Set(0.5)
	g.Set(0.25)
	if got := g.Value(); got != 0.25 {
		t.Fatalf("gauge = %g, want 0.25", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", ExpBuckets(1, 2, 4))
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	h.Observe(2)
	if c.Value() != 0 || g.Value() != 0 || h.N() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if snap := r.Snapshot(); snap.Counters != nil || snap.Gauges != nil {
		t.Fatal("nil registry snapshot must be empty")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := New()
	h := r.Histogram("delay_ns", []float64{10, 100, 1000})
	for _, v := range []float64{5, 10, 11, 150, 5000, -1} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms["delay_ns"]
	// v <= bound: {5,10,-1} -> le=10; {11} -> le=100; {150} -> le=1000; {5000} -> +Inf.
	want := []uint64{3, 1, 1, 1}
	if !reflect.DeepEqual(snap.Counts, want) {
		t.Fatalf("counts = %v, want %v", snap.Counts, want)
	}
	if snap.Count != 6 {
		t.Fatalf("count = %d, want 6", snap.Count)
	}
	if h.Mean() != snap.Sum/6 {
		t.Fatalf("mean = %g, sum = %g", h.Mean(), snap.Sum)
	}
}

func TestExpAndLinearBuckets(t *testing.T) {
	if got := ExpBuckets(1, 2, 4); !reflect.DeepEqual(got, []float64{1, 2, 4, 8}) {
		t.Fatalf("exp buckets = %v", got)
	}
	if got := LinearBuckets(0, 5, 3); !reflect.DeepEqual(got, []float64{0, 5, 10}) {
		t.Fatalf("linear buckets = %v", got)
	}
	if ExpBuckets(0, 2, 4) != nil || ExpBuckets(1, 1, 4) != nil || LinearBuckets(0, 1, 0) != nil {
		t.Fatal("degenerate bucket requests must return nil")
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() Snapshot {
		r := New()
		r.Counter("b_total").Add(2)
		r.Counter("a_total").Add(1)
		r.Gauge("g").Set(3.5)
		r.Histogram("h_ns", ExpBuckets(10, 10, 3)).Observe(42)
		return r.Snapshot()
	}
	s1, s2 := build(), build()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("identical registries must snapshot equal")
	}
	j1, j2 := s1.JSON(), s2.JSON()
	if string(j1) != string(j2) {
		t.Fatalf("snapshot JSON not deterministic:\n%s\n%s", j1, j2)
	}
	var round Snapshot
	if err := json.Unmarshal(j1, &round); err != nil {
		t.Fatal(err)
	}
	if round.Counters["a_total"] != 1 || round.Counters["b_total"] != 2 {
		t.Fatalf("round trip lost counters: %s", j1)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("frames_sent_total").Add(7)
	r.Gauge("queue_len").Set(3)
	h := r.Histogram("delay_ns", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE frames_sent_total counter\nframes_sent_total 7\n",
		"# TYPE queue_len gauge\nqueue_len 3\n",
		"# TYPE delay_ns histogram\n",
		"delay_ns_bucket{le=\"10\"} 1\n",
		"delay_ns_bucket{le=\"100\"} 2\n",
		"delay_ns_bucket{le=\"+Inf\"} 3\n",
		"delay_ns_sum 555\n",
		"delay_ns_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentWritersAndSnapshots(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total")
			h := r.Histogram("shared_ns", ExpBuckets(1, 2, 8))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i))
				if i%100 == 0 {
					_ = r.Snapshot() // concurrent reads must be safe
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("shared_ns", nil).N(); got != workers*perWorker {
		t.Fatalf("histogram N = %d, want %d", got, workers*perWorker)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := New().Counter("x_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("x_ns", ExpBuckets(100, 2, 24))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 100000))
	}
}
