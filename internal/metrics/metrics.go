// Package metrics is the runtime observability substrate every protocol
// layer reports into: counters, gauges, and fixed-bucket histograms keyed by
// a small name registry.
//
// Design constraints, in order:
//
//  1. Allocation-free on the hot path. Instruments are registered once at
//     construction time (the only allocating step); Inc/Set/Observe touch
//     only pre-allocated atomics, so the bench engine's micro-benchmarks
//     (scheduler churn, pipe send/deliver) stay at 0 allocs/op with metrics
//     compiled in and enabled.
//  2. Safe under the bench engine's worker pool and the live driver's
//     HTTP exposition. All instrument state is atomic: concurrent writers
//     (parallel runs sharing a registry, deliberately) and concurrent
//     readers (/metrics scrapes mid-run) need no locks.
//  3. Nil-safe end to end. A nil *Registry hands out nil instruments, and
//     every instrument method is a no-op on a nil receiver, so protocol
//     code instruments unconditionally and pays one predictable branch
//     when observability is off.
//
// Snapshot freezes a registry into plain maps for JSON export (the bench
// harness attaches one per run); WritePrometheus renders the text
// exposition format the live endpoint serves.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. The zero value is ready;
// a nil Counter ignores writes and reads as zero.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins instantaneous measurement. A nil Gauge
// ignores writes and reads as zero.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last value set.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: bucket i counts observations
// v <= bounds[i], with one implicit +Inf bucket past the last bound.
// Bounds are fixed at registration so Observe never allocates. A nil
// Histogram ignores observations.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1
	n      atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (≲32) and the branch pattern is
	// stable, so this beats binary search on the hot path.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// N returns the number of observations.
func (h *Histogram) N() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Mean returns the mean observation, or 0 with none.
func (h *Histogram) Mean() float64 {
	n := h.N()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// ExpBuckets returns n upper bounds growing geometrically from start by
// factor: the standard shape for duration histograms spanning decades.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		return nil
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n upper bounds from start in steps of width.
func LinearBuckets(start, width float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Registry maps metric names to instruments. Registration (the Counter /
// Gauge / Histogram accessors) is get-or-create under a mutex; the returned
// pointers are stable for the registry's lifetime, so callers hold them and
// never touch the map again. A nil *Registry returns nil instruments,
// making instrumentation free to leave unconditionally in place.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Nil receiver returns nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds on first use. Later callers get the existing
// instrument regardless of the bounds they pass (first registration wins).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is a frozen histogram: Counts[i] observations fell at
// or below Bounds[i]; the final element of Counts is the +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a frozen, plain-data view of a registry, suitable for JSON
// export and cross-run comparison. Map JSON marshalling sorts keys, so the
// serialized form is deterministic.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry's current values. Safe concurrently with
// writers; each instrument is read atomically (a snapshot taken mid-run is
// internally consistent per instrument, not across instruments).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistogramSnapshot{
				Bounds: h.bounds,
				Counts: make([]uint64, len(h.counts)),
				Count:  h.N(),
				Sum:    h.Sum(),
			}
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
			}
			s.Histograms[name] = hs
		}
	}
	return s
}

// Counter returns the snapshotted value of a counter (0 if absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// JSON renders the snapshot as compact JSON with sorted keys.
func (s Snapshot) JSON() []byte {
	b, err := json.Marshal(s)
	if err != nil { // plain data: cannot happen
		panic(err)
	}
	return b
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters with a _total-as-named convention,
// gauges, and histograms with cumulative le-labelled buckets.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.Snapshot()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		p("# TYPE %s counter\n%s %d\n", name, name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		p("# TYPE %s gauge\n%s %g\n", name, name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		p("# TYPE %s histogram\n", name)
		var cum uint64
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			p("%s_bucket{le=\"%g\"} %d\n", name, b, cum)
		}
		p("%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		p("%s_sum %g\n", name, h.Sum)
		p("%s_count %d\n", name, h.Count)
	}
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
