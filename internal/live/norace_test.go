//go:build !race

package live

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
