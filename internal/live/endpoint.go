package live

import (
	"io"
	"sync"

	"repro/internal/arq"
	"repro/internal/frame"
	"repro/internal/hdlc"
	"repro/internal/lamsdlc"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// connWire adapts an io.Writer into the arq.Wire the protocol entities
// transmit on: frames are encoded with the real codec, flag-framed, and
// handed to a writer goroutine, so protocol callbacks never block on the
// network. TxTime derives from the configured virtual-rate so pacing
// matches the link the operator says they have.
type connWire struct {
	rateBps float64
	out     chan []byte
	wg      sync.WaitGroup
	onError func(error)
	// dropped counts frames discarded because the outbound queue was
	// full. Send must never block: it is called from the driver loop with
	// the driver mutex held, and blocking there can deadlock two
	// endpoints against each other through a synchronous transport.
	// Dropping is safe — to the protocol a full transmit queue is
	// indistinguishable from wire loss, which it recovers from by design.
	dropped uint64
	// enc is the encode scratch buffer. Send is only ever called from the
	// driver loop with the driver mutex held, so a single buffer suffices;
	// only the flag-stuffed copy crosses the channel to the writer.
	enc []byte
}

func newConnWire(w io.Writer, rateBps float64, onError func(error)) *connWire {
	cw := &connWire{
		rateBps: rateBps,
		out:     make(chan []byte, 1024),
		onError: onError,
	}
	cw.wg.Add(1)
	go func() {
		defer cw.wg.Done()
		for buf := range cw.out {
			if _, err := w.Write(buf); err != nil {
				if cw.onError != nil {
					cw.onError(err)
				}
				// Drain remaining frames so senders never block.
				for range cw.out {
				}
				return
			}
		}
	}()
	return cw
}

// Send encodes and queues the frame. Encoding failures (only possible for
// corrupted or invalid frames, which entities never emit) are reported via
// onError.
func (cw *connWire) Send(f *frame.Frame) {
	raw, err := f.AppendEncode(cw.enc[:0])
	cw.enc = raw[:0]
	if err != nil {
		if cw.onError != nil {
			cw.onError(err)
		}
		return
	}
	select {
	case cw.out <- AppendStuffed(nil, raw):
	default:
		cw.dropped++
	}
}

// Dropped returns the number of frames discarded at the transmit queue.
func (cw *connWire) Dropped() uint64 { return cw.dropped }

// TxTime reports the serialization time at the nominal link rate.
func (cw *connWire) TxTime(f *frame.Frame) sim.Duration {
	if cw.rateBps <= 0 {
		return 0
	}
	return sim.Duration(float64(f.Bits()) / cw.rateBps * float64(sim.Second))
}

// Close flushes and stops the writer.
func (cw *connWire) Close() {
	close(cw.out)
	cw.wg.Wait()
}

// Endpoint binds protocol halves to one full-duplex connection: a data
// sender (outbound I-frames, inbound acknowledgements) and/or a data
// receiver (inbound I-frames, outbound acknowledgements). A unidirectional
// data session sets exactly one of the two; a bidirectional node sets both.
// The protocol is LAMS-DLC by default, or the HDLC baseline when
// EndpointConfig.HDLC is set — the same sans-IO state machines the
// simulator runs.
type Endpoint struct {
	Driver   *Driver
	Sender   *lamsdlc.Sender
	Receiver *lamsdlc.Receiver
	HSender  *hdlc.Sender
	HRecv    *hdlc.Receiver
	Metrics  *arq.Metrics

	wire   *connWire
	conn   io.ReadWriteCloser
	readWG sync.WaitGroup
}

// EndpointConfig parameterizes NewEndpoint.
type EndpointConfig struct {
	// Config is the protocol configuration (shared by both ends).
	Config lamsdlc.Config
	// HDLC, when non-nil, runs the baseline protocol instead of LAMS-DLC
	// (Config is then ignored).
	HDLC *hdlc.Config
	// RateBps is the nominal link rate used for send pacing.
	RateBps float64
	// Speed scales virtual time against the wall clock (1 = real time).
	Speed float64
	// SendSide / RecvSide select which protocol halves this endpoint runs.
	SendSide, RecvSide bool
	// Deliver receives datagrams on the receive side.
	Deliver arq.DeliverFunc
	// OnFailure is invoked if the send side declares link failure.
	OnFailure arq.FailureFunc
	// OnError receives transport errors (decode garbage is not an error;
	// it is a detectably corrupted frame, handled by the protocol).
	OnError func(error)
	// Metrics, when non-nil, instruments the endpoint's scheduler and
	// protocol halves into the registry — the one a ServeMetrics endpoint
	// scrapes.
	Metrics *metrics.Registry
}

// NewEndpoint wires an endpoint over conn and starts its driver and reader.
// Close releases everything.
func NewEndpoint(conn io.ReadWriteCloser, cfg EndpointConfig) *Endpoint {
	if cfg.Speed <= 0 {
		cfg.Speed = 1
	}
	sched := sim.NewScheduler()
	sched.Instrument(cfg.Metrics)
	cfg.Config.Metrics = cfg.Metrics
	drv := NewDriver(sched, cfg.Speed)
	wire := newConnWire(conn, cfg.RateBps, cfg.OnError)
	ep := &Endpoint{Driver: drv, Metrics: &arq.Metrics{}, wire: wire, conn: conn}

	switch {
	case cfg.HDLC != nil:
		hcfg := *cfg.HDLC
		hcfg.Metrics = cfg.Metrics
		if cfg.SendSide {
			ep.HSender = hdlc.NewSender(sched, wire, hcfg, ep.Metrics)
		}
		if cfg.RecvSide {
			ep.HRecv = hdlc.NewReceiver(sched, wire, hcfg, ep.Metrics, cfg.Deliver)
		}
	default:
		if cfg.SendSide {
			ep.Sender = lamsdlc.NewSender(sched, wire, cfg.Config, ep.Metrics, cfg.OnFailure)
		}
		if cfg.RecvSide {
			ep.Receiver = lamsdlc.NewReceiver(sched, wire, cfg.Config, ep.Metrics, cfg.Deliver)
		}
	}

	drv.Post(func() {
		if ep.Sender != nil {
			ep.Sender.Start()
		}
		if ep.Receiver != nil {
			ep.Receiver.Start()
		}
		if ep.HSender != nil {
			ep.HSender.Start()
		}
		if ep.HRecv != nil {
			ep.HRecv.Start()
		}
	})
	go drv.Run()

	ep.readWG.Add(1)
	go func() {
		defer ep.readWG.Done()
		err := ReadStream(conn, func(raw []byte) error {
			f, _, derr := frame.Decode(raw)
			if derr != nil {
				// A damaged frame: deliver it as detectably corrupted,
				// exactly like the simulator's channel marking. Both
				// halves ignore corrupted frames, but arrival ordering
				// side effects (none today) stay faithful.
				f = &frame.Frame{Corrupted: true}
			}
			drv.Post(func() { ep.dispatch(f) })
			return nil
		})
		if err != nil && cfg.OnError != nil {
			cfg.OnError(err)
		}
	}()
	return ep
}

// dispatch routes an inbound frame to the protocol half that consumes it.
func (ep *Endpoint) dispatch(f *frame.Frame) {
	now := ep.Driver.sched.Now()
	if f.Corrupted {
		// Undecodable: receivers handle it (gap detection / discard);
		// senders ignore corrupted control frames either way.
		for _, h := range ep.handlers() {
			h(now, f)
		}
		return
	}
	switch f.Kind {
	case frame.KindI, frame.KindRequestNAK:
		if ep.Receiver != nil {
			ep.Receiver.HandleFrame(now, f)
		}
	case frame.KindCheckpoint:
		if ep.Sender != nil {
			ep.Sender.HandleFrame(now, f)
		}
	case frame.KindHDLCI:
		if ep.HRecv != nil {
			ep.HRecv.HandleFrame(now, f)
		}
	case frame.KindRR, frame.KindREJ, frame.KindSREJ:
		if ep.HSender != nil {
			ep.HSender.HandleFrame(now, f)
		}
	}
}

func (ep *Endpoint) handlers() []func(sim.Time, *frame.Frame) {
	var hs []func(sim.Time, *frame.Frame)
	if ep.Receiver != nil {
		hs = append(hs, ep.Receiver.HandleFrame)
	}
	if ep.Sender != nil {
		hs = append(hs, ep.Sender.HandleFrame)
	}
	if ep.HRecv != nil {
		hs = append(hs, ep.HRecv.HandleFrame)
	}
	if ep.HSender != nil {
		hs = append(hs, ep.HSender.HandleFrame)
	}
	return hs
}

// Enqueue submits a datagram on the send side from any goroutine; it
// reports acceptance synchronously.
func (ep *Endpoint) Enqueue(dg arq.Datagram) bool {
	ok := false
	switch {
	case ep.Sender != nil:
		ep.Driver.Call(func() { ok = ep.Sender.Enqueue(dg) })
	case ep.HSender != nil:
		ep.Driver.Call(func() { ok = ep.HSender.Enqueue(dg) })
	}
	return ok
}

// Close stops the driver, reader, and writer, and closes the connection.
func (ep *Endpoint) Close() {
	ep.Driver.Stop()
	ep.conn.Close() // unblocks the reader
	ep.readWG.Wait()
	ep.wire.Close()
}
