package live

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/metrics"
)

// NewMetricsMux returns a mux serving the registry in Prometheus text
// exposition format on /metrics and the standard pprof suite under
// /debug/pprof/. The pprof handlers are registered explicitly on a private
// mux — importing net/http/pprof for its DefaultServeMux side effect would
// expose profiling on any default-mux server the embedding process runs.
func NewMetricsMux(reg *metrics.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// MetricsServer is a running /metrics + pprof endpoint.
type MetricsServer struct {
	// Addr is the bound listen address (resolves ":0" requests).
	Addr string

	srv *http.Server
	ln  net.Listener
}

// ServeMetrics binds addr (e.g. "localhost:9100", ":0" for an ephemeral
// port) and serves reg's metrics and pprof on it until Close. The server
// runs on its own goroutine; the returned MetricsServer reports the bound
// address.
func ServeMetrics(addr string, reg *metrics.Registry) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           NewMetricsMux(reg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ms := &MetricsServer{Addr: ln.Addr().String(), srv: srv, ln: ln}
	go func() { _ = srv.Serve(ln) }()
	return ms, nil
}

// Close stops the server and releases the listener.
func (s *MetricsServer) Close() error {
	return s.srv.Close()
}
