package live

import (
	"sync"
	"time"

	"repro/internal/sim"
)

// Driver executes a sim.Scheduler against the wall clock: virtual time
// advances 1:1 (or scaled) with real time, due events run on the driver's
// single goroutine, and external goroutines (connection readers) inject
// work with Post. Protocol entities therefore run exactly as in simulation
// — single-threaded, virtual-clock timers — while I/O happens in real time.
type Driver struct {
	mu    sync.Mutex
	sched *sim.Scheduler
	start time.Time
	speed float64 // virtual nanoseconds per wall nanosecond

	wake    chan struct{}
	stopped chan struct{}
	done    chan struct{}
	once    sync.Once
}

// NewDriver wraps the scheduler. speed scales time: 1 is real time, 10
// runs the protocol ten times faster than the wall clock (useful to
// exercise long checkpoint intervals in quick tests). The scheduler must
// only be touched through the driver once Run starts.
func NewDriver(sched *sim.Scheduler, speed float64) *Driver {
	if sched == nil {
		panic("live: nil scheduler")
	}
	if speed <= 0 {
		panic("live: non-positive speed")
	}
	return &Driver{
		sched:   sched,
		speed:   speed,
		start:   time.Now(),
		wake:    make(chan struct{}, 1),
		stopped: make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// virtualNow maps the wall clock to virtual time. Caller holds mu.
func (d *Driver) virtualNow() sim.Time {
	return sim.Time(float64(time.Since(d.start)) * d.speed)
}

// Run processes events until Stop. It blocks; run it on its own goroutine.
func (d *Driver) Run() {
	defer close(d.done)
	for {
		d.mu.Lock()
		now := d.virtualNow()
		d.sched.RunUntil(now)
		next := d.sched.NextEventAt()
		d.mu.Unlock()

		var timer <-chan time.Time
		if next != sim.Never {
			wait := time.Duration(float64(next-now) / d.speed)
			if wait < 0 {
				wait = 0
			}
			t := time.NewTimer(wait)
			timer = t.C
			select {
			case <-timer:
			case <-d.wake:
				t.Stop()
			case <-d.stopped:
				t.Stop()
				return
			}
			continue
		}
		select {
		case <-d.wake:
		case <-d.stopped:
			return
		}
	}
}

// Post schedules fn to run on the driver goroutine at the current virtual
// instant. Safe from any goroutine; the normal entry point for connection
// readers delivering frames.
func (d *Driver) Post(fn func()) {
	d.mu.Lock()
	at := sim.MaxTime(d.sched.Now(), d.virtualNow())
	d.sched.Schedule(at, fn)
	d.mu.Unlock()
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// Call runs fn on the driver goroutine and waits for it to complete —
// synchronous state inspection from tests.
func (d *Driver) Call(fn func()) {
	doneCh := make(chan struct{})
	d.Post(func() {
		fn()
		close(doneCh)
	})
	select {
	case <-doneCh:
	case <-d.done:
	}
}

// Stop terminates Run and waits for it to return. Idempotent.
func (d *Driver) Stop() {
	d.once.Do(func() { close(d.stopped) })
	<-d.done
}
