// Package live runs the sans-IO protocol entities in real time over real
// byte streams (net.Conn, net.Pipe, TCP): the "channels model
// sender/receiver" execution environment, as opposed to the discrete-event
// simulation the experiments use.
//
// Three pieces:
//
//   - flag framing (this file): HDLC-style 0x7E-delimited, byte-stuffed
//     frames so that a damaged frame is contained and detectable instead of
//     desynchronizing the stream — corruption surfaces exactly like the
//     simulator's Corrupted mark;
//   - Driver: a wall-clock event loop around sim.Scheduler, so timers and
//     protocol callbacks run unchanged;
//   - Endpoint: a full-duplex dispatcher binding a LAMS-DLC Sender and/or
//     Receiver to one connection.
package live

import (
	"bufio"
	"errors"
	"io"
)

// Framing constants (HDLC-style).
const (
	flagByte   = 0x7E
	escapeByte = 0x7D
	escapeXOR  = 0x20
)

// maxFrameSize bounds a deframed frame; anything larger indicates a
// desynchronized or hostile stream.
const maxFrameSize = 1 << 20

// ErrFrameTooLarge reports an over-long frame on the stream.
var ErrFrameTooLarge = errors.New("live: frame exceeds size limit")

// AppendStuffed appends the flag-delimited, byte-stuffed encoding of
// payload to dst.
func AppendStuffed(dst, payload []byte) []byte {
	dst = append(dst, flagByte)
	for _, b := range payload {
		if b == flagByte || b == escapeByte {
			dst = append(dst, escapeByte, b^escapeXOR)
			continue
		}
		dst = append(dst, b)
	}
	return append(dst, flagByte)
}

// Deframer incrementally extracts stuffed frames from a byte stream.
// Garbage between flags is skipped; empty frames (back-to-back flags) are
// ignored, so a shared flag between adjacent frames is legal, as in HDLC.
type Deframer struct {
	buf     []byte
	escaped bool
	inFrame bool
}

// Feed consumes stream bytes and invokes emit for each complete frame. The
// emitted slice is only valid during the callback.
func (d *Deframer) Feed(data []byte, emit func(frame []byte) error) error {
	for _, b := range data {
		switch {
		case b == flagByte:
			if d.inFrame && len(d.buf) > 0 {
				frame := d.buf
				d.buf = d.buf[:0]
				d.escaped = false
				if err := emit(frame); err != nil {
					return err
				}
			}
			d.inFrame = true
			d.buf = d.buf[:0]
			d.escaped = false
		case !d.inFrame:
			// Garbage outside a frame: skip until a flag.
		case b == escapeByte:
			d.escaped = true
		default:
			if d.escaped {
				b ^= escapeXOR
				d.escaped = false
			}
			d.buf = append(d.buf, b)
			if len(d.buf) > maxFrameSize {
				d.buf = d.buf[:0]
				d.inFrame = false
				return ErrFrameTooLarge
			}
		}
	}
	return nil
}

// ReadStream pumps r through the deframer until EOF or error, calling emit
// per frame.
func ReadStream(r io.Reader, emit func(frame []byte) error) error {
	br := bufio.NewReaderSize(r, 64<<10)
	buf := make([]byte, 32<<10)
	var d Deframer
	for {
		n, err := br.Read(buf)
		if n > 0 {
			if ferr := d.Feed(buf[:n], emit); ferr != nil {
				return ferr
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
	}
}
