package live

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/arq"
	"repro/internal/frame"
	"repro/internal/hdlc"
	"repro/internal/lamsdlc"
	"repro/internal/sim"
)

func TestStuffingRoundTrip(t *testing.T) {
	payloads := [][]byte{
		{},
		{0x00},
		{flagByte},
		{escapeByte},
		{flagByte, escapeByte, flagByte},
		bytes.Repeat([]byte{flagByte}, 100),
		[]byte("ordinary payload"),
	}
	var d Deframer
	for _, p := range payloads {
		if len(p) == 0 {
			continue // empty frames are elided by design
		}
		wire := AppendStuffed(nil, p)
		var got [][]byte
		if err := d.Feed(wire, func(f []byte) error {
			got = append(got, append([]byte(nil), f...))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || !bytes.Equal(got[0], p) {
			t.Fatalf("round trip of %v gave %v", p, got)
		}
	}
}

func TestStuffingProperty(t *testing.T) {
	f := func(payload []byte, split uint8) bool {
		if len(payload) == 0 {
			return true
		}
		wire := AppendStuffed(nil, payload)
		var got [][]byte
		var d Deframer
		// Feed in two arbitrary chunks: framing must survive segmentation.
		cut := int(split) % len(wire)
		emit := func(fr []byte) error {
			got = append(got, append([]byte(nil), fr...))
			return nil
		}
		if err := d.Feed(wire[:cut], emit); err != nil {
			return false
		}
		if err := d.Feed(wire[cut:], emit); err != nil {
			return false
		}
		return len(got) == 1 && bytes.Equal(got[0], payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDeframerSkipsGarbageAndSharedFlags(t *testing.T) {
	var d Deframer
	var got [][]byte
	emit := func(f []byte) error {
		got = append(got, append([]byte(nil), f...))
		return nil
	}
	// garbage, frame, shared flag, frame, garbage
	stream := append([]byte{1, 2, 3}, AppendStuffed(nil, []byte("a"))...)
	stream = append(stream, AppendStuffed(nil, []byte("b"))...)
	stream = append(stream, 9, 9)
	if err := d.Feed(stream, emit); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got[0]) != "a" || string(got[1]) != "b" {
		t.Fatalf("got %q", got)
	}
}

func TestDeframerSizeLimit(t *testing.T) {
	var d Deframer
	big := make([]byte, maxFrameSize+2)
	stream := AppendStuffed(nil, big)
	err := d.Feed(stream, func([]byte) error { return nil })
	if err != ErrFrameTooLarge {
		t.Fatalf("err = %v", err)
	}
}

func TestDriverRunsTimers(t *testing.T) {
	sched := sim.NewScheduler()
	drv := NewDriver(sched, 100) // 100x so the test is fast
	fired := make(chan sim.Time, 1)
	drv.Post(func() {
		sched.ScheduleAfter(200*sim.Millisecond, func() {
			fired <- sched.Now()
		})
	})
	go drv.Run()
	defer drv.Stop()
	select {
	case at := <-fired:
		if at < sim.Time(200*sim.Millisecond) {
			t.Fatalf("fired early at %v", at)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired (200 virtual ms at 100x)")
	}
}

func TestDriverCallSynchronous(t *testing.T) {
	sched := sim.NewScheduler()
	drv := NewDriver(sched, 1000)
	go drv.Run()
	defer drv.Stop()
	x := 0
	drv.Call(func() { x = 42 })
	if x != 42 {
		t.Fatal("Call did not complete synchronously")
	}
}

func TestDriverBadArgsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"nil sched": func() { NewDriver(nil, 1) },
		"bad speed": func() { NewDriver(sim.NewScheduler(), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// liveSpeed returns the real-to-virtual time multiplier for the live
// transfer tests. Under the race detector the multiplier drops so that
// real-time scheduling hiccups stay small in virtual time relative to
// the checkpoint failure timeout.
func liveSpeed() float64 {
	if raceEnabled {
		return 2
	}
	return 20
}

func liveCfg() lamsdlc.Config {
	cfg := lamsdlc.Defaults(2 * sim.Millisecond)
	cfg.CheckpointInterval = 5 * sim.Millisecond
	cfg.CumulationDepth = 3
	cfg.ProcTime = 10 * sim.Microsecond
	return cfg
}

func TestLiveTransferOverNetPipe(t *testing.T) {
	a, b := net.Pipe()
	var mu sync.Mutex
	got := map[uint64]int{}
	done := make(chan struct{})
	const n = 40

	tx := NewEndpoint(a, EndpointConfig{
		Config:   liveCfg(),
		RateBps:  50e6,
		Speed:    liveSpeed(),
		SendSide: true,
	})
	defer tx.Close()
	rx := NewEndpoint(b, EndpointConfig{
		Config:   liveCfg(),
		RateBps:  50e6,
		Speed:    liveSpeed(),
		RecvSide: true,
		Deliver: func(_ sim.Time, dg arq.Datagram, _ uint32) {
			mu.Lock()
			got[dg.ID]++
			if len(got) == n {
				select {
				case <-done:
				default:
					close(done)
				}
			}
			mu.Unlock()
		},
	})
	defer rx.Close()

	for i := 0; i < n; i++ {
		if !tx.Enqueue(arq.Datagram{ID: uint64(i), Payload: bytes.Repeat([]byte{byte(i)}, 256)}) {
			t.Fatalf("enqueue %d refused", i)
		}
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("timeout: delivered %d/%d", len(got), n)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < n; i++ {
		if got[uint64(i)] == 0 {
			t.Fatalf("datagram %d lost", i)
		}
	}
}

// corruptingConn flips a byte in roughly one of every k written
// frame-buffers, modelling a noisy wire under the real codec: the receiver
// must detect the damage via FCS and recover via the NAK machinery. The
// choice is a seeded xorshift draw rather than a fixed stride: a
// deterministic every-kth pattern can phase-lock with the periodic
// checkpoint-driven retransmit cadence and damage the same frame on every
// recovery attempt (observed as an occasional stall at 28/30 on slow
// hosts).
type corruptingConn struct {
	net.Conn
	mu  sync.Mutex
	k   int
	rng uint64
}

func (c *corruptingConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.rng ^= c.rng << 13
	c.rng ^= c.rng >> 7
	c.rng ^= c.rng << 17
	corrupt := c.rng%uint64(c.k) == 0
	c.mu.Unlock()
	if corrupt && len(p) > 4 {
		q := append([]byte(nil), p...)
		q[len(q)/2] ^= 0x55
		// Keep flag bytes intact so framing survives; if we hit one,
		// flip a different bit.
		if q[len(q)/2] == flagByte || q[len(q)/2] == escapeByte {
			q[len(q)/2] ^= 0x0F
		}
		return c.Conn.Write(q)
	}
	return c.Conn.Write(p)
}

func TestLiveRecoversFromRealCorruption(t *testing.T) {
	a, b := net.Pipe()
	noisy := &corruptingConn{Conn: a, k: 7, rng: 0x9E3779B97F4A7C15} // ~1 in 7 writes damaged
	var mu sync.Mutex
	got := map[uint64]int{}
	done := make(chan struct{})
	const n = 30

	tx := NewEndpoint(noisy, EndpointConfig{
		Config:   liveCfg(),
		RateBps:  50e6,
		Speed:    liveSpeed(),
		SendSide: true,
	})
	defer tx.Close()
	rx := NewEndpoint(b, EndpointConfig{
		Config:   liveCfg(),
		RateBps:  50e6,
		Speed:    liveSpeed(),
		RecvSide: true,
		Deliver: func(_ sim.Time, dg arq.Datagram, _ uint32) {
			mu.Lock()
			got[dg.ID]++
			if len(got) == n {
				select {
				case <-done:
				default:
					close(done)
				}
			}
			mu.Unlock()
		},
	})
	defer rx.Close()

	for i := 0; i < n; i++ {
		tx.Enqueue(arq.Datagram{ID: uint64(i), Payload: bytes.Repeat([]byte{0xA5}, 128)})
	}
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("timeout with corruption: delivered %d/%d", len(got), n)
	}
	if rx.Metrics.Delivered.Value() < n {
		t.Fatalf("metrics delivered %d", rx.Metrics.Delivered.Value())
	}
}

func TestConnWireEncodesDecodableFrames(t *testing.T) {
	var buf bytes.Buffer
	cw := newConnWire(&buf, 1e6, nil)
	f := frame.NewI(7, 9, []byte{flagByte, escapeByte, 0x33})
	cw.Send(f)
	cw.Close()
	var frames []*frame.Frame
	var d Deframer
	if err := d.Feed(buf.Bytes(), func(raw []byte) error {
		g, _, err := frame.Decode(raw)
		if err != nil {
			return err
		}
		frames = append(frames, g)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 || frames[0].Seq != 7 || !bytes.Equal(frames[0].Payload, f.Payload) {
		t.Fatalf("decoded %v", frames)
	}
	if cw.TxTime(f) <= 0 {
		t.Fatal("TxTime should be positive at finite rate")
	}
}

func TestLiveHDLCOverTCP(t *testing.T) {
	// The baseline protocol over a real TCP loopback connection: strict
	// in-order exactly-once delivery through the OS network stack.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	dialConn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	srvConn := <-accepted

	hcfg := hdlc.Defaults(2 * sim.Millisecond)
	hcfg.WindowSize = 16
	hcfg.ModulusBits = 0

	var mu sync.Mutex
	var order []uint64
	done := make(chan struct{})
	const n = 60

	tx := NewEndpoint(dialConn, EndpointConfig{
		HDLC:     &hcfg,
		RateBps:  50e6,
		Speed:    liveSpeed(),
		SendSide: true,
	})
	defer tx.Close()
	rx := NewEndpoint(srvConn, EndpointConfig{
		HDLC:     &hcfg,
		RateBps:  50e6,
		Speed:    liveSpeed(),
		RecvSide: true,
		Deliver: func(_ sim.Time, dg arq.Datagram, _ uint32) {
			mu.Lock()
			order = append(order, dg.ID)
			if len(order) == n {
				close(done)
			}
			mu.Unlock()
		},
	})
	defer rx.Close()

	for i := 0; i < n; i++ {
		if !tx.Enqueue(arq.Datagram{ID: uint64(i), Payload: bytes.Repeat([]byte{byte(i)}, 200)}) {
			t.Fatalf("enqueue %d refused", i)
		}
	}
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("timeout: delivered %d/%d over TCP", len(order), n)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, id := range order {
		if id != uint64(i) {
			t.Fatalf("HDLC over TCP delivered out of order at %d: %v", i, order[:min(len(order), 12)])
		}
	}
}
