package live

import (
	"bytes"
	"testing"
)

// FuzzDeframer feeds arbitrary stream bytes through the deframer: it must
// never panic, and after arbitrary garbage a well-formed frame must still
// be extracted (self-synchronization).
func FuzzDeframer(f *testing.F) {
	f.Add([]byte{}, []byte("hello"))
	f.Add([]byte{flagByte, flagByte}, []byte{flagByte, escapeByte})
	f.Add([]byte{1, 2, 3}, []byte{0})
	f.Fuzz(func(t *testing.T, garbage, payload []byte) {
		if len(payload) == 0 || len(payload) > 4096 || len(garbage) > 4096 {
			return
		}
		var d Deframer
		// Garbage first: whatever it contains, ignore emissions and errors
		// (it may itself contain valid frames).
		_ = d.Feed(garbage, func([]byte) error { return nil })
		// A clean flag resynchronizes the stream even if the garbage ended
		// mid-frame or mid-escape, then the real frame must come through
		// intact as the last emission.
		var got [][]byte
		stream := AppendStuffed(nil, payload)
		if err := d.Feed(stream, func(fr []byte) error {
			got = append(got, append([]byte(nil), fr...))
			return nil
		}); err != nil {
			return // size-limit errors are legal outcomes for huge garbage
		}
		if len(got) == 0 {
			t.Fatalf("frame lost after %d bytes of garbage", len(garbage))
		}
		if !bytes.Equal(got[len(got)-1], payload) {
			t.Fatalf("frame corrupted after garbage: got %x want %x", got[len(got)-1], payload)
		}
	})
}

// FuzzStuffRoundTrip: stuffing then deframing must return the payload for
// any byte content.
func FuzzStuffRoundTrip(f *testing.F) {
	f.Add([]byte{flagByte, escapeByte, 0x00})
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) == 0 || len(payload) > maxFrameSize/2 {
			return
		}
		var d Deframer
		var got [][]byte
		if err := d.Feed(AppendStuffed(nil, payload), func(fr []byte) error {
			got = append(got, append([]byte(nil), fr...))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || !bytes.Equal(got[0], payload) {
			t.Fatalf("round trip failed for %d bytes", len(payload))
		}
	})
}
