//go:build race

package live

// raceEnabled reports whether the race detector is compiled in. The
// live tests widen their real-time margins under it: instrumentation
// pauses of a few real milliseconds are routine, and at high Speed
// multipliers they become tens of virtual milliseconds — enough to
// cross the checkpoint failure timeout or the dedup window.
const raceEnabled = true
