package workload

// arenaChunkSize is the default chunk the arena grows by. It comfortably
// holds hundreds of the experiments' 1 KiB payloads per chunk while staying
// small enough that a pool of per-worker arenas is cheap to keep warm.
const arenaChunkSize = 1 << 18

// Arena is a run-scoped bump allocator for datagram payloads. A run that
// offers tens of thousands of datagrams allocates each payload with
// make([]byte, size) otherwise — the single largest allocation source in
// the experiment hot path. The arena hands out zeroed sub-slices of large
// chunks and, on Reset, reuses the chunks wholesale for the next run.
//
// Ownership contract: every payload returned by Alloc remains live until
// Reset. Reset may only be called once nothing from the run retains any
// payload — in the bench harness that is after the run's scheduler, pair,
// and checker have all been dropped or drained. The arena is not safe for
// concurrent use; the parallel experiment engine gives each worker its own.
type Arena struct {
	chunks [][]byte
	cur    int // index of the chunk being bumped
	off    int // bump offset within chunks[cur]
}

// Alloc returns a zeroed slice of n bytes with capacity exactly n (appends
// by the caller cannot scribble into a neighbouring payload).
func (a *Arena) Alloc(n int) []byte {
	if n < 0 {
		panic("workload: negative payload size")
	}
	for {
		if a.cur == len(a.chunks) {
			size := arenaChunkSize
			if n > size {
				size = n
			}
			a.chunks = append(a.chunks, make([]byte, size))
		}
		c := a.chunks[a.cur]
		if n <= len(c)-a.off {
			s := c[a.off : a.off+n : a.off+n]
			a.off += n
			clear(s)
			return s
		}
		// Chunk exhausted; the tail remainder is wasted, which is bounded
		// by one payload per chunk.
		a.cur++
		a.off = 0
	}
}

// Reset makes every chunk reusable. See the ownership contract above: the
// caller asserts that no payload from the previous run is still referenced.
func (a *Arena) Reset() {
	a.cur, a.off = 0, 0
}
