package workload

import (
	"testing"

	"repro/internal/arq"
	"repro/internal/sim"
)

func TestArenaAllocZeroedAndDisjoint(t *testing.T) {
	var a Arena
	p1 := a.Alloc(100)
	p2 := a.Alloc(100)
	if len(p1) != 100 || len(p2) != 100 {
		t.Fatalf("lengths %d, %d, want 100", len(p1), len(p2))
	}
	if cap(p1) != 100 {
		t.Fatalf("cap %d, want exactly 100 (no append bleed)", cap(p1))
	}
	for i := range p1 {
		p1[i] = 0xAA
	}
	for i, b := range p2 {
		if b != 0 {
			t.Fatalf("p2[%d] = %#x, want 0 (disjoint, zeroed)", i, b)
		}
	}
}

func TestArenaResetReusesAndRezeroes(t *testing.T) {
	var a Arena
	p := a.Alloc(64)
	for i := range p {
		p[i] = 0xFF
	}
	a.Reset()
	q := a.Alloc(64)
	if &p[0] != &q[0] {
		t.Fatal("Reset did not reuse the chunk")
	}
	for i, b := range q {
		if b != 0 {
			t.Fatalf("q[%d] = %#x, want 0 after Reset", i, b)
		}
	}
}

func TestArenaOversizedAndChunkRollover(t *testing.T) {
	var a Arena
	big := a.Alloc(arenaChunkSize + 1)
	if len(big) != arenaChunkSize+1 {
		t.Fatalf("oversized alloc len %d", len(big))
	}
	// Fill chunks past a boundary; every payload stays intact.
	const n = 1024
	ps := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		p := a.Alloc(1000)
		p[0] = byte(i)
		ps = append(ps, p)
	}
	for i, p := range ps {
		if p[0] != byte(i) {
			t.Fatalf("payload %d scribbled: %#x", i, p[0])
		}
	}
}

func TestArenaSteadyStateNoAllocs(t *testing.T) {
	var a Arena
	for i := 0; i < 100; i++ {
		a.Alloc(1000)
	}
	a.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 100; i++ {
			a.Alloc(1000)
		}
		a.Reset()
	})
	if allocs != 0 {
		t.Fatalf("steady-state arena allocated %.1f/run, want 0", allocs)
	}
}

// TestGeneratorTickNoAllocs pins the zero-alloc workload tick: with an
// arena attached, offering a datagram through a consuming sink allocates
// nothing in steady state (ISSUE 6 satellite).
func TestGeneratorTickNoAllocs(t *testing.T) {
	sched := sim.NewScheduler()
	var arena Arena
	sink := func(dg arq.Datagram) bool { return true }
	g := NewConstantRate(sched, sink, sim.Millisecond, 1000, -1)
	g.UseArena(&arena)
	// Warm the scheduler freelist and the arena's first chunk.
	sched.RunUntil(sim.Time(0).Add(100 * sim.Millisecond))
	arena.Reset()
	allocs := testing.AllocsPerRun(10, func() {
		sched.RunUntil(sched.Now().Add(100 * sim.Millisecond))
		arena.Reset()
	})
	if allocs != 0 {
		t.Fatalf("workload tick allocated %.1f/run, want 0", allocs)
	}
}

// TestGeneratorRefusalReusesPayload verifies a refused offer retries with
// the same backing payload rather than a fresh allocation.
func TestGeneratorRefusalReusesPayload(t *testing.T) {
	sched := sim.NewScheduler()
	var arena Arena
	var taken []arq.Datagram
	refuse := true
	sink := func(dg arq.Datagram) bool {
		if refuse {
			return false
		}
		taken = append(taken, dg)
		return true
	}
	g := NewConstantRate(sched, sink, sim.Millisecond, 100, 2)
	g.UseArena(&arena)
	sched.RunUntil(sim.Time(0).Add(3 * sim.Millisecond))
	refused := g.Refused
	if refused == 0 {
		t.Fatal("sink never refused")
	}
	refuse = false
	sched.RunUntil(sim.Time(0).Add(10 * sim.Millisecond))
	if len(taken) != 2 {
		t.Fatalf("delivered %d datagrams, want 2", len(taken))
	}
	// All refusals retried the one pending payload: the arena handed out
	// exactly as many payloads as datagrams accepted.
	used := arena.cur*arenaChunkSize + arena.off
	if want := 2 * 100; used != want {
		t.Fatalf("arena consumed %d bytes, want %d (refusals must reuse)", used, want)
	}
}
