// Package workload generates the traffic patterns the experiments offer to
// the protocols: saturating sources for the high-traffic throughput
// experiments, constant-rate and Poisson arrivals for delay and buffer
// studies, and on-off bursts for flow-control scenarios.
//
// A generator drives a Sink (normally Sender.Enqueue) on the simulation
// clock and assigns consecutive datagram IDs, which is what the destination
// resequencer keys on.
package workload

import (
	"repro/internal/arq"
	"repro/internal/sim"
)

// Sink accepts generated datagrams; it reports false when the receiver's
// buffer refused the datagram (the generator retries or counts the drop).
type Sink func(dg arq.Datagram) bool

// Generator is the common control surface.
type Generator struct {
	sched *sim.Scheduler
	sink  Sink

	nextID    uint64
	size      int
	remaining int // total datagrams still to offer; -1 = unlimited
	stopped   bool

	// arena, when set, supplies payload memory (see UseArena).
	arena *Arena
	// pending holds the payload of a refused offer for the retry, so a
	// saturating source probing a full sender does not burn an allocation
	// per refusal.
	pending []byte

	// Offered and Refused count sink attempts.
	Offered, Refused uint64

	next func() // arms the next arrival
}

// UseArena directs payload allocation through a, under a's ownership
// contract (payloads live until a.Reset). Call it before the generator's
// first arrival fires; passing nil reverts to per-datagram make.
func (g *Generator) UseArena(a *Arena) { g.arena = a }

// Stop halts the generator.
func (g *Generator) Stop() { g.stopped = true }

// NextID returns the next datagram ID to be offered.
func (g *Generator) NextID() uint64 { return g.nextID }

// Done reports whether the generator has offered its full count.
func (g *Generator) Done() bool { return g.remaining == 0 }

func (g *Generator) offer() bool {
	payload := g.pending
	if payload == nil {
		if g.arena != nil {
			payload = g.arena.Alloc(g.size)
		} else {
			payload = make([]byte, g.size)
		}
	}
	dg := arq.Datagram{ID: g.nextID, Payload: payload}
	g.Offered++
	if !g.sink(dg) {
		// A refusing sink does not retain the datagram; reuse the payload
		// at the next attempt.
		g.pending = payload
		g.Refused++
		return false
	}
	g.pending = nil
	g.nextID++
	if g.remaining > 0 {
		g.remaining--
	}
	return true
}

// NewConstantRate offers one datagram of the given size every interval,
// count times (count < 0 means unlimited). Refused datagrams are retried at
// the next tick, preserving ID order.
func NewConstantRate(sched *sim.Scheduler, sink Sink, interval sim.Duration, size, count int) *Generator {
	if interval <= 0 {
		panic("workload: non-positive interval")
	}
	g := &Generator{sched: sched, sink: sink, size: size, remaining: count}
	g.next = func() {
		if g.stopped || g.remaining == 0 {
			return
		}
		g.offer()
		if g.remaining != 0 {
			sched.ScheduleAfterDetached(interval, g.next)
		}
	}
	sched.ScheduleAfterDetached(0, g.next)
	return g
}

// NewPoisson offers datagrams with exponentially distributed inter-arrival
// times of the given mean.
func NewPoisson(sched *sim.Scheduler, rng *sim.RNG, sink Sink, meanInterval sim.Duration, size, count int) *Generator {
	if meanInterval <= 0 {
		panic("workload: non-positive mean interval")
	}
	g := &Generator{sched: sched, sink: sink, size: size, remaining: count}
	g.next = func() {
		if g.stopped || g.remaining == 0 {
			return
		}
		g.offer()
		if g.remaining != 0 {
			sched.ScheduleAfterDetached(rng.ExpDuration(meanInterval), g.next)
		}
	}
	sched.ScheduleAfterDetached(rng.ExpDuration(meanInterval), g.next)
	return g
}

// NewSaturating keeps the sink full: it offers datagrams until refused,
// then retries every pollInterval. It reproduces the "incoming rate into
// the sending buffer is always 1/t_f" assumption of the §4 buffer analysis.
func NewSaturating(sched *sim.Scheduler, sink Sink, pollInterval sim.Duration, size, count int) *Generator {
	if pollInterval <= 0 {
		panic("workload: non-positive poll interval")
	}
	g := &Generator{sched: sched, sink: sink, size: size, remaining: count}
	g.next = func() {
		if g.stopped || g.remaining == 0 {
			return
		}
		for g.remaining != 0 {
			if !g.offer() {
				break
			}
		}
		if g.remaining != 0 {
			sched.ScheduleAfterDetached(pollInterval, g.next)
		}
	}
	sched.ScheduleAfterDetached(0, g.next)
	return g
}

// NewOnOff alternates between an on-phase offering at the given interval
// and a silent off-phase — the bursty arrivals flow-control experiments
// use.
func NewOnOff(sched *sim.Scheduler, sink Sink, interval, onFor, offFor sim.Duration, size, count int) *Generator {
	if interval <= 0 || onFor <= 0 || offFor < 0 {
		panic("workload: bad on/off parameters")
	}
	g := &Generator{sched: sched, sink: sink, size: size, remaining: count}
	phaseEnd := sim.Time(0).Add(onFor)
	g.next = func() {
		if g.stopped || g.remaining == 0 {
			return
		}
		now := sched.Now()
		if now >= phaseEnd {
			// Enter the off phase, then resume.
			phaseEnd = now.Add(offFor).Add(onFor)
			sched.ScheduleAfterDetached(offFor, g.next)
			return
		}
		g.offer()
		if g.remaining != 0 {
			sched.ScheduleAfterDetached(interval, g.next)
		}
	}
	sched.ScheduleAfterDetached(0, g.next)
	return g
}
