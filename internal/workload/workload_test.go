package workload

import (
	"math"
	"testing"

	"repro/internal/arq"
	"repro/internal/sim"
)

func TestConstantRate(t *testing.T) {
	sched := sim.NewScheduler()
	var got []arq.Datagram
	var at []sim.Time
	g := NewConstantRate(sched, func(dg arq.Datagram) bool {
		got = append(got, dg)
		at = append(at, sched.Now())
		return true
	}, 10*sim.Millisecond, 100, 5)
	sched.Run()
	if len(got) != 5 {
		t.Fatalf("offered %d", len(got))
	}
	for i, dg := range got {
		if dg.ID != uint64(i) {
			t.Fatalf("ID %d, want %d", dg.ID, i)
		}
		if len(dg.Payload) != 100 {
			t.Fatalf("size %d", len(dg.Payload))
		}
		if want := sim.Time(10 * sim.Millisecond * sim.Duration(i)); at[i] != want {
			t.Fatalf("arrival %d at %v, want %v", i, at[i], want)
		}
	}
	if !g.Done() {
		t.Fatal("generator should be done")
	}
}

func TestConstantRateRetriesRefused(t *testing.T) {
	sched := sim.NewScheduler()
	reject := true
	var ids []uint64
	g := NewConstantRate(sched, func(dg arq.Datagram) bool {
		if reject {
			return false
		}
		ids = append(ids, dg.ID)
		return true
	}, sim.Millisecond, 10, 3)
	sched.RunFor(5 * sim.Millisecond)
	reject = false
	sched.RunFor(100 * sim.Millisecond)
	sched.Run()
	if len(ids) != 3 || ids[0] != 0 || ids[1] != 1 || ids[2] != 2 {
		t.Fatalf("ids = %v (ID order must survive refusals)", ids)
	}
	if g.Refused == 0 {
		t.Fatal("refusals not counted")
	}
	if g.Offered <= 3 {
		t.Fatal("offered count should include refused attempts")
	}
}

func TestPoissonMeanRate(t *testing.T) {
	sched := sim.NewScheduler()
	n := 0
	NewPoisson(sched, sim.NewRNG(1), func(arq.Datagram) bool {
		n++
		return true
	}, 10*sim.Millisecond, 10, 20000)
	sched.Run()
	elapsed := sched.Now().Seconds()
	rate := float64(n) / elapsed
	if math.Abs(rate-100)/100 > 0.05 {
		t.Fatalf("rate = %v/s, want ~100/s", rate)
	}
}

func TestSaturatingKeepsSinkFull(t *testing.T) {
	sched := sim.NewScheduler()
	capacity := 4
	queue := 0
	accepted := 0
	NewSaturating(sched, func(arq.Datagram) bool {
		if queue >= capacity {
			return false
		}
		queue++
		accepted++
		return true
	}, sim.Millisecond, 10, 20)
	// Drain one slot per 5ms.
	var drain func()
	drain = func() {
		if queue > 0 {
			queue--
		}
		if accepted < 20 {
			sched.ScheduleAfter(5*sim.Millisecond, drain)
		}
	}
	sched.ScheduleAfter(5*sim.Millisecond, drain)
	sched.RunFor(sim.Second)
	if accepted != 20 {
		t.Fatalf("accepted %d, want 20", accepted)
	}
}

func TestOnOffBursts(t *testing.T) {
	sched := sim.NewScheduler()
	var at []sim.Time
	NewOnOff(sched, func(arq.Datagram) bool {
		at = append(at, sched.Now())
		return true
	}, sim.Millisecond, 5*sim.Millisecond, 20*sim.Millisecond, 10, 12)
	sched.Run()
	if len(at) != 12 {
		t.Fatalf("offered %d", len(at))
	}
	// The first burst covers [0, 5ms); the next resumes at 25ms.
	inGap := 0
	for _, tm := range at {
		if tm >= sim.Time(5*sim.Millisecond) && tm < sim.Time(25*sim.Millisecond) {
			inGap++
		}
	}
	if inGap != 0 {
		t.Fatalf("%d arrivals during the off phase", inGap)
	}
}

func TestStop(t *testing.T) {
	sched := sim.NewScheduler()
	n := 0
	g := NewConstantRate(sched, func(arq.Datagram) bool {
		n++
		return true
	}, sim.Millisecond, 10, -1) // unlimited
	sched.RunFor(10 * sim.Millisecond)
	g.Stop()
	sched.RunFor(100 * sim.Millisecond)
	if n == 0 || n > 12 {
		t.Fatalf("n = %d after stop", n)
	}
	if g.NextID() != uint64(n) {
		t.Fatalf("NextID = %d, want %d", g.NextID(), n)
	}
}

func TestBadParamsPanic(t *testing.T) {
	sched := sim.NewScheduler()
	sink := func(arq.Datagram) bool { return true }
	for name, fn := range map[string]func(){
		"constant": func() { NewConstantRate(sched, sink, 0, 1, 1) },
		"poisson":  func() { NewPoisson(sched, sim.NewRNG(1), sink, 0, 1, 1) },
		"saturate": func() { NewSaturating(sched, sink, 0, 1, 1) },
		"onoff":    func() { NewOnOff(sched, sink, 0, 1, 1, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
