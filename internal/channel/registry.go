// Channel-model registry: the named seam between everything that
// *configures* an error process (CLIs, experiment configs, the shard
// engine, the public facade) and everything that *implements* one. It
// mirrors internal/arq's protocol registry — Register from init(),
// ParseModel errors listing what exists, no silent defaults — so a new
// model reaches every consumer by registering once instead of editing
// five construction sites.
//
// The spec grammar is one line:
//
//	spec  = kind [ ":" param *( "," param ) ]
//	param = key "=" value
//	kind  = "perfect" | "fixed" | "bsc" | "ge" | "burst" | "trace" | ...
//
// e.g. "fixed:p=0.05", "bsc:ber=1e-5,fec=hamming74",
// "ge:gber=1e-7,bber=2e-3,mgood=40ms,mbad=4ms", "trace:file=run.trc".
// Durations use Go syntax ("40ms"); FEC schemes are named (fec.Named).
// Unknown kinds, unknown keys, duplicate keys, and malformed values are
// hard errors, like the fault-schedule grammar: a spec the parser merely
// shrugs at is a run measuring the wrong channel.
package channel

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/fec"
	"repro/internal/sim"
)

// Model is a parsed spec bound to a factory. New builds a FRESH ErrorModel
// instance per call — load-bearing for stateful models: a Gilbert-Elliott
// sojourn process or a replay cursor shared across two pipes would couple
// their error processes and break determinism under resharding, so every
// pipe instantiates its own.
type Model struct {
	spec string
	make func() ErrorModel
}

// Spec returns the text the model was parsed from.
func (m Model) Spec() string { return m.spec }

// String returns the spec.
func (m Model) String() string { return m.spec }

// New instantiates a fresh ErrorModel. The zero Model panics (wiring-time
// misuse, like arq's zero Engine).
func (m Model) New() ErrorModel {
	if m.make == nil {
		panic("channel: New on zero Model (build with ParseModel)")
	}
	return m.make()
}

// Params is the typed view of a spec's key=value list a model builder
// reads. Getters record the first error and mark keys used; ParseModel
// rejects any key no getter consumed, so builders never see (and users
// cannot silently misspell) unknown parameters.
type Params struct {
	kind string
	vals map[string]string
	used map[string]bool
	err  error
}

func (p *Params) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf(format, args...)
	}
}

// Err returns the first getter error.
func (p *Params) Err() error { return p.err }

func (p *Params) lookup(key string) (string, bool) {
	v, ok := p.vals[key]
	if ok {
		p.used[key] = true
	}
	return v, ok
}

// Float returns the key as a float64, or def when absent.
func (p *Params) Float(key string, def float64) float64 {
	v, ok := p.lookup(key)
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		p.fail("%s: bad %s %q", p.kind, key, v)
		return def
	}
	return f
}

// RequiredFloat is Float with a missing key as a hard error.
func (p *Params) RequiredFloat(key string) float64 {
	if _, ok := p.vals[key]; !ok {
		p.fail("%s: missing required parameter %q", p.kind, key)
		return 0
	}
	return p.Float(key, 0)
}

// Duration returns the key as a Go-syntax duration, or def when absent.
func (p *Params) Duration(key string, def sim.Duration) sim.Duration {
	v, ok := p.lookup(key)
	if !ok {
		return def
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		p.fail("%s: bad %s %q", p.kind, key, v)
		return def
	}
	return sim.Duration(d)
}

// RequiredDuration is Duration with a missing key as a hard error.
func (p *Params) RequiredDuration(key string) sim.Duration {
	if _, ok := p.vals[key]; !ok {
		p.fail("%s: missing required parameter %q", p.kind, key)
		return 0
	}
	return p.Duration(key, 0)
}

// Text returns the key's raw value, or def when absent.
func (p *Params) Text(key, def string) string {
	v, ok := p.lookup(key)
	if !ok {
		return def
	}
	return v
}

// RequiredText is Text with a missing key as a hard error.
func (p *Params) RequiredText(key string) string {
	if _, ok := p.vals[key]; !ok {
		p.fail("%s: missing required parameter %q", p.kind, key)
		return ""
	}
	return p.Text(key, "")
}

// Scheme resolves the key as a named FEC scheme (fec.Named), or def when
// absent. An unknown name is a hard error carrying the known-scheme list.
func (p *Params) Scheme(key string, def fec.Scheme) fec.Scheme {
	v, ok := p.lookup(key)
	if !ok {
		return def
	}
	s, err := fec.Named(v)
	if err != nil {
		p.fail("%s: %v", p.kind, err)
		return def
	}
	return s
}

// ModelRegistration describes one channel model in the registry.
type ModelRegistration struct {
	// Kind is the canonical spec keyword ("fixed", "ge", "trace").
	Kind string
	// Aliases are additional accepted spellings.
	Aliases []string
	// Usage is the one-line parameter summary flag help shows.
	Usage string
	// Build validates the parameters and returns the instance factory.
	// The factory must return a fresh instance per call (see Model.New).
	Build func(p *Params) (func() ErrorModel, error)
}

var (
	modelRegistry = make(map[string]ModelRegistration)
	modelKinds    []string // canonical kinds, sorted
)

// RegisterModel adds a model to the registry. Models call it from init();
// duplicate kinds panic — the registry is wiring, not configuration.
func RegisterModel(r ModelRegistration) {
	if r.Kind == "" || r.Build == nil {
		panic("channel: incomplete model registration")
	}
	for _, key := range append([]string{r.Kind}, r.Aliases...) {
		key = strings.ToLower(key)
		if _, dup := modelRegistry[key]; dup {
			panic(fmt.Sprintf("channel: duplicate model registration %q", key))
		}
		modelRegistry[key] = r
	}
	modelKinds = append(modelKinds, r.Kind)
	sort.Strings(modelKinds)
}

// ModelKinds returns the registered canonical kinds, sorted.
func ModelKinds() []string {
	out := make([]string, len(modelKinds))
	copy(out, modelKinds)
	return out
}

// SpecGrammar returns the one-line usage summary of every registered kind,
// for flag help.
func SpecGrammar() string {
	parts := make([]string, 0, len(modelKinds))
	for _, k := range modelKinds {
		parts = append(parts, modelRegistry[k].Usage)
	}
	return strings.Join(parts, " | ")
}

// ParseModel parses a model spec ("kind" or "kind:k=v,..."). Unknown
// kinds error listing what is registered; duplicate keys, unknown keys,
// and malformed values are hard errors.
func ParseModel(spec string) (Model, error) {
	text := strings.TrimSpace(spec)
	if text == "" {
		return Model{}, fmt.Errorf("channel: empty model spec")
	}
	kindStr, paramText, hasParams := strings.Cut(text, ":")
	kindStr = strings.TrimSpace(kindStr)
	reg, ok := modelRegistry[strings.ToLower(kindStr)]
	if !ok {
		return Model{}, fmt.Errorf("channel: unknown model kind %q (registered: %s)",
			kindStr, strings.Join(ModelKinds(), ", "))
	}
	p := &Params{kind: reg.Kind, vals: make(map[string]string), used: make(map[string]bool)}
	if hasParams {
		for _, part := range strings.Split(paramText, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			key, val, ok := strings.Cut(part, "=")
			if !ok {
				return Model{}, fmt.Errorf("channel: %s: parameter %q lacks '='", reg.Kind, part)
			}
			key = strings.TrimSpace(key)
			// A repeated key is a hard error, not last-wins: a spec that
			// says p twice is a spec the author mis-edited.
			if _, dup := p.vals[key]; dup {
				return Model{}, fmt.Errorf("channel: %s: duplicate parameter %q", reg.Kind, key)
			}
			p.vals[key] = strings.TrimSpace(val)
		}
	}
	factory, err := reg.Build(p)
	if err == nil {
		err = p.err
	}
	if err != nil {
		return Model{}, fmt.Errorf("channel: %v", err)
	}
	for key := range p.vals {
		if !p.used[key] {
			return Model{}, fmt.Errorf("channel: %s: unknown parameter %q", reg.Kind, key)
		}
	}
	return Model{spec: text, make: factory}, nil
}

// MustParseModel is ParseModel, panicking on error (wiring-time misuse).
func MustParseModel(spec string) Model {
	m, err := ParseModel(spec)
	if err != nil {
		panic(err)
	}
	return m
}

// LegacySpecs maps the historical CLI error knobs onto model specs: fixed
// P_F/P_C when pf >= 0, otherwise a BER through the link FEC stack
// (assumption 4: Hamming(7,4) under I-frames, the stronger repetition
// code under control frames), otherwise a perfect channel (empty specs).
// This is the single home of the per-frame-class FEC defaults the CLIs
// used to hardcode separately.
func LegacySpecs(ber, pf, pc float64) (imodel, cmodel string) {
	switch {
	case pf >= 0:
		if pc < 0 {
			pc = 0
		}
		return fmt.Sprintf("fixed:p=%g", pf), fmt.Sprintf("fixed:p=%g", pc)
	case ber > 0:
		return fmt.Sprintf("bsc:ber=%g,fec=hamming74", ber),
			fmt.Sprintf("bsc:ber=%g,fec=rep3", ber)
	}
	return "", ""
}

// The in-tree models. Stateless values (Perfect, FixedProb) could be
// shared, but the factories return fresh instances uniformly so no model
// author has to reason about which side of that line they are on.
func init() {
	RegisterModel(ModelRegistration{
		Kind:  "perfect",
		Usage: "perfect",
		Build: func(p *Params) (func() ErrorModel, error) {
			return func() ErrorModel { return Perfect{} }, nil
		},
	})
	RegisterModel(ModelRegistration{
		Kind:  "fixed",
		Usage: "fixed:p=",
		Build: func(p *Params) (func() ErrorModel, error) {
			prob := p.RequiredFloat("p")
			if p.err == nil && (prob < 0 || prob > 1) {
				return nil, fmt.Errorf("fixed: p=%g out of [0,1]", prob)
			}
			return func() ErrorModel { return FixedProb{P: prob} }, nil
		},
	})
	RegisterModel(ModelRegistration{
		Kind:  "bsc",
		Usage: "bsc:ber=[,fec=" + strings.Join(fec.Names(), "|") + "]",
		Build: func(p *Params) (func() ErrorModel, error) {
			ber := p.RequiredFloat("ber")
			scheme := p.Scheme("fec", fec.Uncoded)
			if p.err == nil && (ber < 0 || ber > 1) {
				return nil, fmt.Errorf("bsc: ber=%g out of [0,1]", ber)
			}
			return func() ErrorModel { return &BSC{BER: ber, Scheme: scheme} }, nil
		},
	})
	RegisterModel(ModelRegistration{
		Kind:    "ge",
		Aliases: []string{"gilbert-elliott"},
		Usage:   "ge:gber=,bber=,mgood=,mbad=[,fec=]",
		Build: func(p *Params) (func() ErrorModel, error) {
			gber := p.RequiredFloat("gber")
			bber := p.RequiredFloat("bber")
			mgood := p.RequiredDuration("mgood")
			mbad := p.RequiredDuration("mbad")
			scheme := p.Scheme("fec", fec.Uncoded)
			if p.err == nil && (mgood <= 0 || mbad <= 0) {
				return nil, fmt.Errorf("ge: sojourns mgood/mbad must be positive")
			}
			return func() ErrorModel {
				return NewGilbertElliott(gber, bber, mgood, mbad, scheme)
			}, nil
		},
	})
	RegisterModel(ModelRegistration{
		Kind:  "burst",
		Usage: "burst:period=,len=[,offset=,ber=,fec=]",
		Build: func(p *Params) (func() ErrorModel, error) {
			period := p.RequiredDuration("period")
			length := p.RequiredDuration("len")
			offset := p.Duration("offset", 0)
			ber := p.Float("ber", 0)
			scheme := p.Scheme("fec", fec.Uncoded)
			if p.err == nil && period <= 0 {
				return nil, fmt.Errorf("burst: period must be positive")
			}
			if p.err == nil && (length < 0 || length > period) {
				return nil, fmt.Errorf("burst: len=%v out of [0, period]", length)
			}
			return func() ErrorModel {
				return &BurstTrain{Period: period, BurstLen: length, Offset: offset,
					BaseBER: ber, Scheme: scheme}
			}, nil
		},
	})
	RegisterModel(ModelRegistration{
		Kind:  "trace",
		Usage: "trace:file=[,stream=,policy=loop|truncate]",
		Build: func(p *Params) (func() ErrorModel, error) {
			file := p.RequiredText("file")
			stream := p.Text("stream", "")
			policy := LoopReplay
			switch p.Text("policy", "loop") {
			case "loop":
			case "truncate":
				policy = TruncateReplay
			default:
				return nil, fmt.Errorf("trace: bad policy %q (want loop or truncate)", p.vals["policy"])
			}
			if p.err != nil {
				return nil, p.err
			}
			// The file is loaded once at parse time; every New shares the
			// read-only trace and gets its own cursor.
			set, err := ReadTraceFile(file)
			if err != nil {
				return nil, fmt.Errorf("trace: %v", err)
			}
			var tr *Trace
			if stream == "" {
				names := set.Names()
				if len(names) != 1 {
					return nil, fmt.Errorf("trace: %s holds streams %s; pick one with stream=",
						file, strings.Join(names, ", "))
				}
				tr = set.Get(names[0])
			} else if tr = set.Get(stream); tr == nil {
				return nil, fmt.Errorf("trace: %s has no stream %q (streams: %s)",
					file, stream, strings.Join(set.Names(), ", "))
			}
			return func() ErrorModel { return NewReplay(tr, policy) }, nil
		},
	})
}
