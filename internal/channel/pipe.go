package channel

import (
	"time"

	"repro/internal/frame"
	"repro/internal/metrics"
	"repro/internal/orbit"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Handler consumes frames arriving at the far end of a pipe.
//
// Ownership: an information frame (I, HDLC-I) becomes the handler's — it may
// retain the *Frame and its Payload indefinitely, and SHOULD return it with
// frame.Put once done with the header (the Payload may outlive the frame:
// Put drops the reference, it does not scrub the bytes). Control frames and
// frames marked Corrupted are recycled by the pipe as soon as the handler
// returns; a handler must never Put one of those, and one that wants to
// keep one must Clone it. Every protocol entity in this repository consumes
// control frames within the callback.
type Handler func(now sim.Time, f *frame.Frame)

// DelayFn returns the one-way propagation delay for a frame departing the
// wire at the given instant. Constant-delay and orbit-driven helpers below.
type DelayFn func(at sim.Time) sim.Duration

// Tap observes pipe activity for tracing. event is one of "tx" (frame
// entered the wire), "rx" (delivered), "drop" (lost), "corrupt" (marked
// corrupted). The frame must not be retained or mutated.
type Tap func(now sim.Time, event string, f *frame.Frame)

// ConstantDelay returns a DelayFn with a fixed propagation delay.
func ConstantDelay(d sim.Duration) DelayFn {
	return func(sim.Time) sim.Duration { return d }
}

// OrbitDelay derives the propagation delay from an orbital link, with
// simulation time mapped 1:1 onto orbital time offset by epoch.
func OrbitDelay(l orbit.Link, epoch time.Duration) DelayFn {
	return func(at sim.Time) sim.Duration {
		return orbit.PropagationDelay(l.RangeM(epoch + time.Duration(at)))
	}
}

// PipeConfig parameterizes one direction of a link.
type PipeConfig struct {
	// RateBps is the wire data rate in bits per second (300e6–1e9 in the
	// paper's environment). Zero or negative means infinite rate (zero
	// transmission time), used by analytical-validation scenarios.
	RateBps float64
	// Delay gives the one-way propagation delay. Nil means zero delay.
	Delay DelayFn
	// IModel and CModel are the error processes applied to information and
	// control frames respectively (assumption 4: separate FEC strengths).
	// Nil means Perfect.
	IModel, CModel ErrorModel
	// IModelSpec and CModelSpec name the error processes by registry spec
	// ("fixed:p=0.05", "ge:...", "trace:file=..."; see ParseModel). A spec
	// is resolved inside NewPipe to a FRESH instance per pipe — exactly
	// what stateful models (Gilbert-Elliott sojourns, replay cursors) need,
	// since instances must never be shared across pipes. The instance
	// fields above take precedence when non-nil (programmatic use); a
	// malformed spec panics in NewPipe, a wiring error like a nil
	// scheduler — layers taking specs from users validate with ParseModel
	// first.
	IModelSpec, CModelSpec string
	// IExpansion and CExpansion scale the wire occupancy of information
	// and control frames for the FEC code rate (fec.Scheme.Overhead):
	// coded redundancy costs real transmission time, which is the other
	// side of the hybrid ARQ/FEC trade the paper's §1–2 survey discusses.
	// Zero means 1 (no expansion).
	IExpansion, CExpansion float64
	// Tap, when non-nil, observes every pipe event for tracing.
	Tap Tap
	// Metrics, when non-nil, receives the channel-layer counters
	// (channel_frames_*_total, channel_bits_sent_total) and the wire
	// queueing-delay histogram. The two directions of a link share one
	// registry and therefore one set of instruments: the channel metrics
	// are per-link aggregates.
	Metrics *metrics.Registry
}

// PipeStats counts traffic for reports and invariant checks.
//
// Ownership under the shard engine (remote pipes): every field except
// FramesDelivered and FramesLost is written only by Send, i.e. by the
// shard owning the transmit side; FramesDelivered and FramesLost are
// written only by DeliverInbound, i.e. by the shard owning the receive
// side — except that a send into a down pipe counts into FramesLostTx
// (transmit-owned) instead, so the two shards never touch the same
// counter. Total losses for a remote pipe are FramesLost + FramesLostTx;
// local pipes never touch FramesLostTx.
type PipeStats struct {
	FramesSent      stats.Counter
	FramesDelivered stats.Counter
	FramesCorrupted stats.Counter
	FramesLost      stats.Counter // dropped during link failure
	FramesLostTx    stats.Counter // remote pipes only: dropped at send while down
	BitsSent        stats.Counter
	IFrames         stats.Counter
	CFrames         stats.Counter
}

// Pipe is one direction of a point-to-point link: an exclusive-use serial
// wire (frames transmit back to back at RateBps) followed by a propagation
// delay. FIFO delivery is guaranteed even with time-varying delay — a frame
// never overtakes its predecessor, matching a physical serial medium.
type Pipe struct {
	sched   *sim.Scheduler
	cfg     PipeConfig
	rng     *sim.RNG
	handler Handler

	busyUntil   sim.Time // when the wire frees up
	lastArrival sim.Time // FIFO watermark
	down        bool

	// Non-FIFO window (faults kind "reorder"): while reorderJitter > 0
	// every frame's arrival gains a counter-hashed extra delay in
	// [0, reorderJitter) and the FIFO clamp is suspended, so frames overtake
	// each other deterministically — no randomness is consumed, mirroring
	// the burst gate's contract. reorderSeq feeds the hash and never resets,
	// so repeated windows keep drawing fresh jitter.
	reorderJitter sim.Duration
	reorderSeq    uint64
	reordered     *metrics.Counter
	// rxDown is the receive side's own down flag, used instead of down by
	// DeliverInbound when the pipe is remote (post != nil): the two ends of
	// a remote pipe live on different shards, so each side owns its flag
	// and a handover toggles both through events on the respective shard.
	rxDown bool

	// post, when non-nil, marks the pipe remote: its transmit side and its
	// receive side (handler) run on different schedulers. Send hands the
	// in-flight frame and its arrival time to post — the shard engine's
	// mailbox — instead of scheduling the arrival locally; the receiving
	// shard later calls DeliverInbound. Installed once before the
	// simulation starts and read-only afterwards.
	post func(at sim.Time, f *frame.Frame)

	// deliverFn is p.deliver bound once at construction, so every arrival
	// can be scheduled through ScheduleArgDetached with the in-flight
	// frame as the argument — no per-send closure.
	deliverFn func(any)

	// Registry-backed instruments (nil without PipeConfig.Metrics).
	mSent      *metrics.Counter
	mDelivered *metrics.Counter
	mCorrupted *metrics.Counter
	mLost      *metrics.Counter
	mBits      *metrics.Counter
	mQueueNS   *metrics.Histogram

	Stats PipeStats
}

// NewPipe returns a pipe on the given scheduler. rng must not be shared with
// the reverse pipe if runs are to stay reproducible under refactoring.
func NewPipe(sched *sim.Scheduler, cfg PipeConfig, rng *sim.RNG) *Pipe {
	if sched == nil {
		panic("channel: nil scheduler")
	}
	if rng == nil {
		panic("channel: nil rng")
	}
	if cfg.Delay == nil {
		cfg.Delay = ConstantDelay(0)
	}
	if cfg.IModel == nil {
		cfg.IModel = specModel(cfg.IModelSpec)
	}
	if cfg.CModel == nil {
		cfg.CModel = specModel(cfg.CModelSpec)
	}
	p := &Pipe{sched: sched, cfg: cfg, rng: rng}
	p.deliverFn = p.deliver
	p.mSent = cfg.Metrics.Counter("channel_frames_sent_total")
	p.mDelivered = cfg.Metrics.Counter("channel_frames_delivered_total")
	p.mCorrupted = cfg.Metrics.Counter("channel_frames_corrupted_total")
	p.mLost = cfg.Metrics.Counter("channel_frames_lost_total")
	p.mBits = cfg.Metrics.Counter("channel_bits_sent_total")
	p.mQueueNS = cfg.Metrics.Histogram("channel_wire_queue_ns", metrics.ExpBuckets(1e3, 4, 16))
	return p
}

// specModel instantiates a model spec for one pipe ("" = Perfect).
func specModel(spec string) ErrorModel {
	if spec == "" {
		return Perfect{}
	}
	m, err := ParseModel(spec)
	if err != nil {
		panic(err)
	}
	return m.New()
}

// SetHandler installs the receiver callback. Frames arriving with no handler
// installed are counted as lost.
func (p *Pipe) SetHandler(h Handler) { p.handler = h }

// TxTime returns the serialization time of a frame at the pipe's rate,
// including the FEC expansion for its frame class.
func (p *Pipe) TxTime(f *frame.Frame) sim.Duration {
	exp := p.cfg.IExpansion
	if f.Kind.Control() {
		exp = p.cfg.CExpansion
	}
	if exp <= 0 {
		exp = 1
	}
	return sim.Duration(float64(p.TxTimeBits(f.Bits())) * exp)
}

// TxTimeBits returns the serialization time for a frame of the given length.
func (p *Pipe) TxTimeBits(bits int) sim.Duration {
	if p.cfg.RateBps <= 0 {
		return 0
	}
	return sim.Duration(float64(bits) / p.cfg.RateBps * float64(sim.Second))
}

// BusyUntil returns the instant the wire next frees up.
func (p *Pipe) BusyUntil() sim.Time { return p.busyUntil }

// QueueingDelay returns how long a frame sent now would wait for the wire.
func (p *Pipe) QueueingDelay() sim.Duration {
	now := p.sched.Now()
	if p.busyUntil <= now {
		return 0
	}
	return p.busyUntil.Sub(now)
}

// Send transmits a copy of f. The frame starts serializing when the wire is
// free, occupies it for TxTime, suffers the error process, propagates, and
// is delivered to the handler. Send never blocks; back-to-back sends queue
// on the wire, which is how the protocols' send pacing is modelled.
//
// The in-flight copy is shallow for the Payload: header fields are copied
// (so a retransmitting protocol may keep renumbering or re-flagging its own
// frame), but Payload aliases the caller's slice — the caller must not
// mutate those bytes after Send. Both protocols here satisfy this by
// construction: retransmissions build frames around an immutable datagram
// payload. Skipping the payload copy is what keeps a multi-gigabyte sweep
// from spending its time in memmove: at 1 KiB payloads the clone used to
// dominate the per-frame cost. The NAK list, by contrast, IS copied — into
// capacity the frame pool retains — so a checkpoint-emitting receiver may
// reuse its NAK scratch buffer across sends.
func (p *Pipe) Send(f *frame.Frame) {
	now := p.sched.Now()
	g := frame.Get()
	naks := g.NAKs
	*g = *f
	g.NAKs = append(naks[:0], f.NAKs...)
	p.Stats.FramesSent.Inc()
	p.Stats.BitsSent.Addn(uint64(g.Bits()))
	p.mSent.Inc()
	p.mBits.Add(uint64(g.Bits()))
	if p.down {
		// Frames launched into a dead link vanish (beam lost). The modem
		// squelches rather than serializes, so a dead-beam frame occupies
		// no wire time: the wire is immediately usable at restoration, and
		// an outage-era retransmission flood cannot leak airtime into
		// post-restoration queueing. Remote pipes count the drop into the
		// transmit-owned counter so the receive shard's FramesLost writes
		// never race with this one.
		if p.post != nil {
			p.Stats.FramesLostTx.Inc()
		} else {
			p.Stats.FramesLost.Inc()
		}
		p.mLost.Inc()
		if p.cfg.Tap != nil {
			p.cfg.Tap(now, "drop", g)
		}
		frame.Put(g)
		return
	}
	start := sim.MaxTime(now, p.busyUntil)
	tx := p.TxTime(g)
	depart := start.Add(tx)
	p.busyUntil = depart

	p.mQueueNS.Observe(float64(start.Sub(now)))
	var model ErrorModel
	if g.Kind.Control() {
		p.Stats.CFrames.Inc()
		model = p.cfg.CModel
	} else {
		p.Stats.IFrames.Inc()
		model = p.cfg.IModel
	}
	if p.cfg.Tap != nil {
		p.cfg.Tap(now, "tx", g)
	}
	if model.Corrupt(p.rng, start, depart, g.Bits()) {
		g.Corrupted = true
		p.Stats.FramesCorrupted.Inc()
		p.mCorrupted.Inc()
		if p.cfg.Tap != nil {
			p.cfg.Tap(now, "corrupt", g)
		}
	}

	arrival := depart.Add(p.cfg.Delay(depart))
	if p.reorderJitter > 0 {
		p.reorderSeq++
		if extra := sim.Duration(reorderHash(p.reorderSeq) % uint64(p.reorderJitter)); extra > 0 {
			arrival = arrival.Add(extra)
			p.reordered.Inc()
		}
		// The FIFO clamp is suspended, but the watermark still advances:
		// frames sent after the window closes must not overtake a jittered
		// straggler, or the reordering would leak past its schedule.
		if arrival > p.lastArrival {
			p.lastArrival = arrival
		}
	} else {
		// Physical FIFO: with shrinking delay a later frame could compute an
		// earlier arrival; clamp to preserve ordering on the serial medium.
		if arrival <= p.lastArrival {
			arrival = p.lastArrival + 1
		}
		p.lastArrival = arrival
	}
	if p.post != nil {
		p.post(arrival, g)
		return
	}
	p.sched.ScheduleArgDetached(arrival, p.deliverFn, g)
}

// deliver hands an arrived in-flight frame to the handler. It is the local
// arrival-event callback, shared across all sends and invoked with the
// in-flight frame as the argument.
func (p *Pipe) deliver(v any) {
	p.DeliverInbound(p.sched.Now(), v.(*frame.Frame))
}

// DeliverInbound completes the arrival of an in-flight frame: it hands g to
// the handler, or counts it lost when the pipe is dead (rxDown for remote
// pipes, down for local ones) or handler-less. Local pipes reach it through
// their own arrival events; for remote pipes it is the re-entry point the
// shard engine calls — on the receiving shard's goroutine, with now set to
// the stamped arrival time — after the frame crossed the mailbox.
func (p *Pipe) DeliverInbound(now sim.Time, g *frame.Frame) {
	dead := p.rxDown || p.handler == nil
	if !dead && p.post == nil {
		// The shared down flag belongs to the transmit side; only a local
		// pipe (both ends on one scheduler) may read it here.
		dead = p.down
	}
	if dead {
		p.Stats.FramesLost.Inc()
		p.mLost.Inc()
		if p.cfg.Tap != nil {
			p.cfg.Tap(now, "drop", g)
		}
		frame.Put(g)
		return
	}
	p.Stats.FramesDelivered.Inc()
	p.mDelivered.Inc()
	if p.cfg.Tap != nil {
		p.cfg.Tap(now, "rx", g)
	}
	// Decide recycling before the handler runs: an information-frame
	// handler may Put the frame itself (see Handler), and reading g
	// afterwards would race with its reuse.
	recycle := g.Kind.Control() || g.Corrupted
	p.handler(now, g)
	if recycle {
		frame.Put(g)
	}
}

// SetReorder opens (jitter > 0) or closes (jitter = 0) a bounded non-FIFO
// delivery window: see the reorderJitter field for the mechanics. reordered,
// when non-nil, counts each frame actually delayed (nil-safe). Frames
// already scheduled keep their arrivals; only subsequent sends jitter.
func (p *Pipe) SetReorder(jitter sim.Duration, reordered *metrics.Counter) {
	p.reorderJitter = jitter
	p.reordered = reordered
}

// reorderHash is the splitmix64 finalizer over the pipe's send counter: a
// deterministic, well-mixed jitter source that costs no RNG draws.
func reorderHash(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SetDown marks the pipe dead (true) or alive (false). Frames already in
// flight when the pipe goes down are lost at arrival time; frames sent while
// down are lost immediately, without occupying wire time.
//
// For a remote pipe this flag governs only the transmit side (sends while
// down); the receive side's in-flight losses are governed by SetRxDown,
// which the owning shard must toggle with its own event at the same instant.
func (p *Pipe) SetDown(down bool) { p.down = down }

// SetRxDown marks the receive side of a remote pipe dead or alive. It must
// only be called from the shard owning the pipe's handler (or before the
// simulation starts). Local pipes never need it: their DeliverInbound reads
// the shared down flag directly.
func (p *Pipe) SetRxDown(down bool) { p.rxDown = down }

// Down reports whether the pipe is dead.
func (p *Pipe) Down() bool { return p.down }

// SetRemote marks the pipe's two ends as living on different schedulers and
// installs the transport between them: Send will call post(arrival, frame)
// — on the transmit shard's goroutine — instead of scheduling the arrival
// locally, and the receiving shard is responsible for invoking
// DeliverInbound(arrival, frame) once its clock reaches the stamp. Must be
// installed before the simulation starts.
func (p *Pipe) SetRemote(post func(at sim.Time, f *frame.Frame)) { p.post = post }

// Link is a full-duplex connection: two independent pipes. By link-model
// assumption 2 all links are full duplex; the two directions may differ in
// error models (e.g. asymmetric FEC experiments) but normally share config.
type Link struct {
	AtoB, BtoA *Pipe
}

// NewLink builds a full-duplex link with per-direction RNG streams split
// from rng.
func NewLink(sched *sim.Scheduler, cfg PipeConfig, rng *sim.RNG) *Link {
	return &Link{
		AtoB: NewPipe(sched, cfg, rng.Split()),
		BtoA: NewPipe(sched, cfg, rng.Split()),
	}
}

// NewSplitLink builds a link whose two directions live on different
// schedulers: AtoB transmits from sendSched (the forward/data direction of
// a split DLC session), BtoA from recvSched (the reverse/control
// direction). A pipe's scheduler is its transmit-side clock — with
// SetRemote installed the arrival side never touches it — so each pipe is
// homed where its Send calls originate. Both directions still split their
// RNG streams from one rng, in the same order as NewLink, so a split link
// consumes randomness identically to a local one.
func NewSplitLink(sendSched, recvSched *sim.Scheduler, cfg PipeConfig, rng *sim.RNG) *Link {
	return &Link{
		AtoB: NewPipe(sendSched, cfg, rng.Split()),
		BtoA: NewPipe(recvSched, cfg, rng.Split()),
	}
}

// NewAsymmetricLink builds a link with distinct per-direction configs.
func NewAsymmetricLink(sched *sim.Scheduler, ab, ba PipeConfig, rng *sim.RNG) *Link {
	return &Link{
		AtoB: NewPipe(sched, ab, rng.Split()),
		BtoA: NewPipe(sched, ba, rng.Split()),
	}
}

// Fail kills both directions.
func (l *Link) Fail() {
	l.AtoB.SetDown(true)
	l.BtoA.SetDown(true)
}

// Restore revives both directions.
func (l *Link) Restore() {
	l.AtoB.SetDown(false)
	l.BtoA.SetDown(false)
}

// Down reports whether either direction is dead.
func (l *Link) Down() bool { return l.AtoB.Down() || l.BtoA.Down() }
