package channel

import (
	"math"
	"testing"

	"repro/internal/fec"
	"repro/internal/sim"
)

// disableFEPCache fills the cache with keys that can never match (NaN never
// compares equal), so every prob() call falls through to the closed-form
// computation — the exact "no cache" code path the production models used
// before memoization.
func disableFEPCache(c *fepCache) {
	c.n = len(c.keys)
	for i := range c.keys {
		c.keys[i] = fepKey{ber: math.NaN(), bits: -1}
	}
}

// TestFEPCacheDecisionsMatchUncached drives each caching model and an
// identical cache-disabled twin with paired RNG streams and asserts every
// corruption decision matches, including bits=0 frames and enough distinct
// (BER, bits) pairs to exercise both hit and miss paths.
func TestFEPCacheDecisionsMatchUncached(t *testing.T) {
	cases := map[string]func() (cached, plain ErrorModel){
		"bsc": func() (ErrorModel, ErrorModel) {
			a := &BSC{BER: 1e-5, Scheme: fec.Hamming74}
			b := &BSC{BER: 1e-5, Scheme: fec.Hamming74}
			disableFEPCache(&b.cache)
			return a, b
		},
		"gilbert-elliott": func() (ErrorModel, ErrorModel) {
			a := NewGilbertElliott(1e-7, 1e-3, sim.Millisecond, 200*sim.Microsecond, fec.Repetition3)
			b := NewGilbertElliott(1e-7, 1e-3, sim.Millisecond, 200*sim.Microsecond, fec.Repetition3)
			disableFEPCache(&b.cache)
			return a, b
		},
		"burst-train": func() (ErrorModel, ErrorModel) {
			a := &BurstTrain{Period: sim.Millisecond, BurstLen: 100 * sim.Microsecond, BaseBER: 1e-5}
			b := &BurstTrain{Period: sim.Millisecond, BurstLen: 100 * sim.Microsecond, BaseBER: 1e-5}
			disableFEPCache(&b.cache)
			return a, b
		},
	}
	lengths := []int{0, 1, 800, 8192}
	for name, mk := range cases {
		cached, plain := mk()
		r1, r2 := sim.NewRNG(42), sim.NewRNG(42)
		at := sim.Time(0)
		for i := 0; i < 5000; i++ {
			bits := lengths[i%len(lengths)]
			d := sim.Duration(50+i%7*31) * sim.Microsecond
			got := cached.Corrupt(r1, at, at.Add(d), bits)
			want := plain.Corrupt(r2, at, at.Add(d), bits)
			if got != want {
				t.Fatalf("%s: frame %d (bits=%d): cached=%v uncached=%v", name, i, bits, got, want)
			}
			at = at.Add(d)
		}
	}
}

// TestFEPCacheOverflowFallsThrough uses more distinct (BER, bits) keys than
// the cache holds; decisions beyond capacity must still match the direct
// computation exactly.
func TestFEPCacheOverflowFallsThrough(t *testing.T) {
	a := &BSC{Scheme: fec.Hamming74}
	b := &BSC{Scheme: fec.Hamming74}
	disableFEPCache(&b.cache)
	r1, r2 := sim.NewRNG(7), sim.NewRNG(7)
	for pass := 0; pass < 3; pass++ {
		for bits := 1; bits <= 40; bits++ {
			a.BER, b.BER = 1e-4, 1e-4
			if got, want := a.Corrupt(r1, 0, 1, bits*64), b.Corrupt(r2, 0, 1, bits*64); got != want {
				t.Fatalf("pass %d bits=%d: cached=%v uncached=%v", pass, bits*64, got, want)
			}
		}
	}
	if a.cache.n != len(a.cache.keys) {
		t.Fatalf("cache should be full: n=%d", a.cache.n)
	}
}

// TestFEPCacheExtremeBER pins the degenerate probabilities: BER=0 never
// corrupts, BER=1 always corrupts a non-empty frame, and a zero-bit frame is
// never corrupted regardless of BER (FrameErrorProb(·, 0) = 0).
func TestFEPCacheExtremeBER(t *testing.T) {
	zero := &BSC{BER: 0}
	one := &BSC{BER: 1}
	rng := sim.NewRNG(1)
	for i := 0; i < 200; i++ {
		if zero.Corrupt(rng, 0, 1, 1000) {
			t.Fatal("BER=0 corrupted a frame")
		}
		if !one.Corrupt(rng, 0, 1, 1000) {
			t.Fatal("BER=1 delivered a frame intact")
		}
		if one.Corrupt(rng, 0, 1, 0) {
			t.Fatal("zero-bit frame corrupted")
		}
	}
}

// TestGilbertElliottFrameEdge pins the overlap semantics when the state
// transition lands exactly on a frame edge. GoodBER=0 and BadBER=1 turn the
// corruption decision into a direct probe of overlapsBad.
func TestGilbertElliottFrameEdge(t *testing.T) {
	frame := func(m *GilbertElliott, start, end sim.Time) bool {
		return m.Corrupt(sim.NewRNG(3), start, end, 1000)
	}

	// Bad state ends exactly at the frame end: the bad interval covers the
	// whole frame, so it must corrupt.
	m := NewGilbertElliott(0, 1, 3600*sim.Second, 3600*sim.Second, fec.Scheme{})
	m.init, m.inBad, m.stateUntil = true, true, sim.Time(2000)
	if !frame(m, 1000, 2000) {
		t.Fatal("bad state covering [start, end) must corrupt")
	}

	// Bad state ends exactly at the frame start: [.., start) does not
	// overlap [start, end), and with an hour-scale good sojourn the next
	// bad interval is far beyond the frame.
	m = NewGilbertElliott(0, 1, 3600*sim.Second, 3600*sim.Second, fec.Scheme{})
	m.init, m.inBad, m.stateUntil = true, true, sim.Time(1000)
	if frame(m, 1000, 2000) {
		t.Fatal("bad state ending exactly at frame start must not corrupt")
	}

	// The same two scenarios with the cache disabled must decide
	// identically.
	m = NewGilbertElliott(0, 1, 3600*sim.Second, 3600*sim.Second, fec.Scheme{})
	m.init, m.inBad, m.stateUntil = true, true, sim.Time(2000)
	disableFEPCache(&m.cache)
	if !frame(m, 1000, 2000) {
		t.Fatal("uncached: bad state covering frame must corrupt")
	}
	m = NewGilbertElliott(0, 1, 3600*sim.Second, 3600*sim.Second, fec.Scheme{})
	m.init, m.inBad, m.stateUntil = true, true, sim.Time(1000)
	disableFEPCache(&m.cache)
	if frame(m, 1000, 2000) {
		t.Fatal("uncached: adjacent bad state must not corrupt")
	}
}

// TestBurstTrainFrameEdge pins the half-open interval algebra of the
// deterministic burst process: a burst [0, L) does not touch a frame
// starting at L, and a frame ending at the next burst start is clean.
func TestBurstTrainFrameEdge(t *testing.T) {
	bt := &BurstTrain{Period: 10 * sim.Millisecond, BurstLen: 2 * sim.Millisecond, BaseBER: 0}
	rng := sim.NewRNG(5)
	L := sim.Time(2 * sim.Millisecond)
	P := sim.Time(10 * sim.Millisecond)
	if bt.Corrupt(rng, L, L+1000, 800) {
		t.Fatal("frame starting exactly at burst end must be clean")
	}
	if bt.Corrupt(rng, P-1000, P, 800) {
		t.Fatal("frame ending exactly at next burst start must be clean")
	}
	if !bt.Corrupt(rng, L-1, L, 800) {
		t.Fatal("frame overlapping the last burst nanosecond must be destroyed")
	}
	if !bt.Corrupt(rng, P, P+1, 800) {
		t.Fatal("frame overlapping the next burst start must be destroyed")
	}
}
