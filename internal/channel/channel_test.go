package channel

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/fec"
	"repro/internal/frame"
	"repro/internal/metrics"
	"repro/internal/orbit"
	"repro/internal/sim"
)

func newTestPipe(t *testing.T, cfg PipeConfig) (*sim.Scheduler, *Pipe, *[]*frame.Frame, *[]sim.Time) {
	t.Helper()
	sched := sim.NewScheduler()
	p := NewPipe(sched, cfg, sim.NewRNG(1))
	var got []*frame.Frame
	var at []sim.Time
	p.SetHandler(func(now sim.Time, f *frame.Frame) {
		if f.Kind.Control() || f.Corrupted {
			// The pipe recycles these after the handler returns; the tests
			// below inspect them post-run, so keep a private copy.
			f = f.Clone()
		}
		got = append(got, f)
		at = append(at, now)
	})
	return sched, p, &got, &at
}

func iframe(seq uint32, payload int) *frame.Frame {
	return frame.NewI(seq, uint64(seq), make([]byte, payload))
}

func TestPipeDeliversWithDelayAndTxTime(t *testing.T) {
	cfg := PipeConfig{
		RateBps: 1e6, // 1 Mbps: 1 bit per microsecond
		Delay:   ConstantDelay(10 * sim.Millisecond),
	}
	sched, p, got, at := newTestPipe(t, cfg)
	f := iframe(1, 1000) // wire length 1000+25 bytes => 8200 bits => 8.2ms
	wantTx := p.TxTime(f)
	p.Send(f)
	sched.Run()
	if len(*got) != 1 {
		t.Fatalf("delivered %d frames", len(*got))
	}
	want := sim.Time(0).Add(wantTx).Add(10 * sim.Millisecond)
	if (*at)[0] != want {
		t.Fatalf("arrival at %v, want %v", (*at)[0], want)
	}
}

func TestPipeSerializesBackToBack(t *testing.T) {
	cfg := PipeConfig{RateBps: 8e6, Delay: ConstantDelay(sim.Millisecond)}
	sched, p, got, at := newTestPipe(t, cfg)
	f := iframe(1, 979) // 979+21 header+CRC = 1000 bytes = 8000 bits = 1ms at 8 Mbps
	tx := p.TxTime(f)
	if tx != sim.Millisecond {
		t.Fatalf("tx time = %v, want 1ms", tx)
	}
	for i := 0; i < 3; i++ {
		p.Send(iframe(uint32(i), 979))
	}
	if p.QueueingDelay() != 3*sim.Millisecond {
		t.Fatalf("queueing delay = %v, want 3ms", p.QueueingDelay())
	}
	sched.Run()
	if len(*got) != 3 {
		t.Fatalf("delivered %d", len(*got))
	}
	for i, want := range []sim.Time{
		sim.Time(2 * sim.Millisecond),
		sim.Time(3 * sim.Millisecond),
		sim.Time(4 * sim.Millisecond),
	} {
		if (*at)[i] != want {
			t.Fatalf("arrival %d at %v, want %v", i, (*at)[i], want)
		}
	}
}

func TestPipeInfiniteRate(t *testing.T) {
	sched, p, got, at := newTestPipe(t, PipeConfig{Delay: ConstantDelay(5 * sim.Millisecond)})
	p.Send(iframe(1, 100000))
	sched.Run()
	if len(*got) != 1 || (*at)[0] != sim.Time(5*sim.Millisecond) {
		t.Fatalf("infinite-rate delivery wrong: %v", *at)
	}
	if p.TxTimeBits(1e9) != 0 {
		t.Fatal("infinite rate should have zero tx time")
	}
}

func TestPipeCopiesFrameHeader(t *testing.T) {
	// Send takes a shallow copy: header mutations after Send (HDLC-style
	// renumbering/re-flagging) must not affect the frame in flight. Payload
	// bytes alias by contract — the sender must not mutate them.
	sched, p, got, _ := newTestPipe(t, PipeConfig{})
	f := iframe(1, 10)
	p.Send(f)
	f.Seq = 999
	f.Corrupted = true
	sched.Run()
	if (*got)[0].Seq != 1 || (*got)[0].Corrupted {
		t.Fatal("in-flight frame shares header state with sender's copy")
	}
	if &(*got)[0].Payload[0] != &f.Payload[0] {
		t.Fatal("payload should alias the sender's slice (no deep copy on the hot path)")
	}
}

func TestPipeFIFOWithShrinkingDelay(t *testing.T) {
	// Delay drops sharply between two sends; the second frame must still
	// arrive after the first.
	delays := []sim.Duration{20 * sim.Millisecond, sim.Millisecond}
	i := 0
	cfg := PipeConfig{
		RateBps: 1e9,
		Delay: func(sim.Time) sim.Duration {
			d := delays[i%len(delays)]
			i++
			return d
		},
	}
	sched, p, got, at := newTestPipe(t, cfg)
	p.Send(iframe(1, 100))
	p.Send(iframe(2, 100))
	sched.Run()
	if len(*got) != 2 {
		t.Fatalf("delivered %d", len(*got))
	}
	if !(*at)[0].Before((*at)[1]) {
		t.Fatalf("FIFO violated: %v then %v", (*at)[0], (*at)[1])
	}
	if (*got)[0].Seq != 1 || (*got)[1].Seq != 2 {
		t.Fatal("order swapped")
	}
}

func TestCorruptionMarksDetectably(t *testing.T) {
	cfg := PipeConfig{IModel: FixedProb{1}, CModel: Perfect{}}
	sched, p, got, _ := newTestPipe(t, cfg)
	p.Send(iframe(1, 10))
	p.Send(frame.NewCheckpoint(1, 1, nil, false, false))
	sched.Run()
	if len(*got) != 2 {
		t.Fatalf("delivered %d", len(*got))
	}
	if !(*got)[0].Corrupted {
		t.Fatal("I-frame should be corrupted (IModel=always)")
	}
	if (*got)[1].Corrupted {
		t.Fatal("C-frame should be clean (CModel=perfect)")
	}
	if p.Stats.FramesCorrupted.Value() != 1 {
		t.Fatalf("corrupted count = %d", p.Stats.FramesCorrupted.Value())
	}
	if p.Stats.IFrames.Value() != 1 || p.Stats.CFrames.Value() != 1 {
		t.Fatal("frame kind counters wrong")
	}
}

func TestFixedProbRate(t *testing.T) {
	sched := sim.NewScheduler()
	p := NewPipe(sched, PipeConfig{IModel: FixedProb{0.3}}, sim.NewRNG(7))
	corrupted := 0
	p.SetHandler(func(_ sim.Time, f *frame.Frame) {
		if f.Corrupted {
			corrupted++
		}
	})
	const n = 20000
	for i := 0; i < n; i++ {
		p.Send(iframe(uint32(i), 10))
	}
	sched.Run()
	rate := float64(corrupted) / n
	if math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("corruption rate = %v, want ~0.3", rate)
	}
}

func TestBSCMatchesFECAlgebra(t *testing.T) {
	sched := sim.NewScheduler()
	ber := 1e-4
	p := NewPipe(sched, PipeConfig{IModel: &BSC{BER: ber}}, sim.NewRNG(8))
	corrupted := 0
	p.SetHandler(func(_ sim.Time, f *frame.Frame) {
		if f.Corrupted {
			corrupted++
		}
	})
	const n = 20000
	f := iframe(0, 1000)
	for i := 0; i < n; i++ {
		p.Send(f)
	}
	sched.Run()
	want := fec.FrameErrorProbUncoded(ber, f.Bits())
	rate := float64(corrupted) / n
	if math.Abs(rate-want) > 0.02 {
		t.Fatalf("corruption rate = %v, want ~%v", rate, want)
	}
}

func TestGilbertElliottBursts(t *testing.T) {
	sched := sim.NewScheduler()
	ge := NewGilbertElliott(0, 1, 10*sim.Millisecond, 2*sim.Millisecond, fec.Scheme{})
	p := NewPipe(sched, PipeConfig{RateBps: 8e6, IModel: ge}, sim.NewRNG(9))
	var outcomes []bool
	p.SetHandler(func(_ sim.Time, f *frame.Frame) { outcomes = append(outcomes, f.Corrupted) })
	for i := 0; i < 5000; i++ {
		p.Send(iframe(uint32(i), 95)) // ~1000 bits ~ 0.125ms each
	}
	sched.Run()
	// Expect corruption clustered in runs, with overall fraction near
	// MeanBad/(MeanGood+MeanBad) = 1/6.
	var bad, runs int
	prev := false
	for _, c := range outcomes {
		if c {
			bad++
			if !prev {
				runs++
			}
		}
		prev = c
	}
	frac := float64(bad) / float64(len(outcomes))
	if frac < 0.08 || frac > 0.30 {
		t.Fatalf("bad fraction = %v, want ~1/6", frac)
	}
	if runs == 0 || bad/runs < 3 {
		t.Fatalf("bursts not clustered: %d bad in %d runs", bad, runs)
	}
	if ge.MeanBurstLen() != 2*sim.Millisecond {
		t.Fatal("MeanBurstLen accessor")
	}
}

func TestBurstTrainDeterministic(t *testing.T) {
	sched := sim.NewScheduler()
	bt := &BurstTrain{Period: 10 * sim.Millisecond, BurstLen: 2 * sim.Millisecond}
	p := NewPipe(sched, PipeConfig{RateBps: 8e6, IModel: bt}, sim.NewRNG(10))
	var corrupted []bool
	var arrivals []sim.Time
	p.SetHandler(func(now sim.Time, f *frame.Frame) {
		corrupted = append(corrupted, f.Corrupted)
		arrivals = append(arrivals, now)
	})
	// One 1ms frame per 1ms, for 30ms: frames overlapping [0,2), [10,12),
	// [20,22) ms burst windows are corrupted.
	f := iframe(0, 979) // 1000 bytes => 1ms at 8Mbps
	for i := 0; i < 30; i++ {
		p.Send(f)
	}
	sched.Run()
	for i, c := range corrupted {
		// Frame i occupies [i, i+1) ms on the wire.
		start := sim.Duration(i) * sim.Millisecond
		end := start + sim.Millisecond
		inBurst := false
		for _, b := range []sim.Duration{0, 10 * sim.Millisecond, 20 * sim.Millisecond} {
			if end > b && start < b+2*sim.Millisecond {
				inBurst = true
			}
		}
		if c != inBurst {
			t.Fatalf("frame %d corrupted=%v, want %v", i, c, inBurst)
		}
	}
}

func TestLinkFailureDropsFrames(t *testing.T) {
	sched := sim.NewScheduler()
	link := NewLink(sched, PipeConfig{RateBps: 1e9, Delay: ConstantDelay(10 * sim.Millisecond)}, sim.NewRNG(11))
	var delivered int
	link.AtoB.SetHandler(func(sim.Time, *frame.Frame) { delivered++ })
	link.BtoA.SetHandler(func(sim.Time, *frame.Frame) { delivered++ })

	link.AtoB.Send(iframe(1, 10)) // in flight when link dies
	sched.RunUntil(sim.Time(sim.Millisecond))
	link.Fail()
	if !link.Down() {
		t.Fatal("link should be down")
	}
	link.AtoB.Send(iframe(2, 10)) // sent while down
	sched.Run()
	if delivered != 0 {
		t.Fatalf("delivered %d frames across dead link", delivered)
	}
	if link.AtoB.Stats.FramesLost.Value() != 2 {
		t.Fatalf("lost = %d, want 2", link.AtoB.Stats.FramesLost.Value())
	}
	link.Restore()
	link.AtoB.Send(iframe(3, 10))
	sched.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d after restore, want 1", delivered)
	}
}

func TestNoHandlerCountsLost(t *testing.T) {
	sched := sim.NewScheduler()
	p := NewPipe(sched, PipeConfig{}, sim.NewRNG(12))
	p.Send(iframe(1, 10))
	sched.Run()
	if p.Stats.FramesLost.Value() != 1 {
		t.Fatal("frame without handler should count lost")
	}
	if p.Stats.FramesDelivered.Value() != 0 {
		t.Fatal("no delivery expected")
	}
}

func TestOrbitDelayTracksGeometry(t *testing.T) {
	l := orbit.InPlanePair(1000e3, 30)
	fn := OrbitDelay(l, 0)
	want := orbit.PropagationDelay(l.RangeM(0))
	if got := fn(0); got != want {
		t.Fatalf("delay = %v, want %v", got, want)
	}
	// Delay magnitude sanity: ~3800 km chord => ~12.7 ms.
	if got := fn(0); got < 10*time.Millisecond || got > 15*time.Millisecond {
		t.Fatalf("unexpected magnitude %v", got)
	}
}

func TestNewAsymmetricLink(t *testing.T) {
	sched := sim.NewScheduler()
	link := NewAsymmetricLink(sched,
		PipeConfig{IModel: FixedProb{1}},
		PipeConfig{},
		sim.NewRNG(13))
	var abCorrupt, baCorrupt bool
	link.AtoB.SetHandler(func(_ sim.Time, f *frame.Frame) { abCorrupt = f.Corrupted })
	link.BtoA.SetHandler(func(_ sim.Time, f *frame.Frame) { baCorrupt = f.Corrupted })
	link.AtoB.Send(iframe(1, 1))
	link.BtoA.Send(iframe(2, 1))
	sched.Run()
	if !abCorrupt || baCorrupt {
		t.Fatal("asymmetric configs not applied per direction")
	}
}

func TestPipePanicsOnNilArgs(t *testing.T) {
	sched := sim.NewScheduler()
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("nil sched", func() { NewPipe(nil, PipeConfig{}, sim.NewRNG(1)) })
	mustPanic("nil rng", func() { NewPipe(sched, PipeConfig{}, nil) })
	mustPanic("bad GE", func() { NewGilbertElliott(0, 1, 0, 1, fec.Scheme{}) })
	mustPanic("bad train", func() {
		(&BurstTrain{}).Corrupt(sim.NewRNG(1), 0, 1, 1)
	})
}

func TestErrorModelStrings(t *testing.T) {
	for _, s := range []string{
		FixedProb{0.5}.String(),
		(&BSC{BER: 1e-6}).String(),
		NewGilbertElliott(0, 1, 1, 1, fec.Scheme{}).String(),
		(&BurstTrain{Period: 1, BurstLen: 1}).String(),
	} {
		if s == "" {
			t.Fatal("empty model description")
		}
	}
}

func BenchmarkPipeSendDeliver(b *testing.B) {
	sched := sim.NewScheduler()
	// A live registry keeps the benchmark honest about the instrumented
	// hot path: counters and the queue histogram must not allocate.
	p := NewPipe(sched, PipeConfig{
		RateBps: 1e9,
		Delay:   ConstantDelay(10 * sim.Millisecond),
		IModel:  &BSC{BER: 1e-6},
		Metrics: metrics.New(),
	}, sim.NewRNG(1))
	p.SetHandler(func(sim.Time, *frame.Frame) {})
	f := iframe(1, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Send(f)
		if i%1024 == 0 {
			sched.Run()
		}
	}
	sched.Run()
}

func TestFECExpansionScalesTxTime(t *testing.T) {
	sched := sim.NewScheduler()
	p := NewPipe(sched, PipeConfig{
		RateBps:    8e6,
		IExpansion: 1.75, // Hamming(7,4)
		CExpansion: 3,    // repetition-3
	}, sim.NewRNG(20))
	ifr := iframe(1, 979) // 1000 raw bytes = 1ms at 8 Mbps
	if got := p.TxTime(ifr); got != 1750*sim.Microsecond {
		t.Fatalf("I-frame tx = %v, want 1.75ms", got)
	}
	cp := frame.NewCheckpoint(1, 1, nil, false, false) // 20 bytes = 20us raw
	if got := p.TxTime(cp); got != 60*sim.Microsecond {
		t.Fatalf("C-frame tx = %v, want 60us", got)
	}
	// Zero expansion means none.
	q := NewPipe(sched, PipeConfig{RateBps: 8e6}, sim.NewRNG(21))
	if got := q.TxTime(ifr); got != sim.Millisecond {
		t.Fatalf("unexpanded tx = %v", got)
	}
}

func TestPipeFIFOProperty(t *testing.T) {
	// Property: for any sequence of sends with any (nonnegative, varying)
	// delay function, arrivals preserve send order.
	f := func(delaysRaw []uint16, seed uint64) bool {
		if len(delaysRaw) == 0 {
			return true
		}
		delays := make([]sim.Duration, len(delaysRaw))
		for i, d := range delaysRaw {
			delays[i] = sim.Duration(d) * sim.Microsecond
		}
		i := 0
		sched := sim.NewScheduler()
		p := NewPipe(sched, PipeConfig{
			RateBps: 1e9,
			Delay: func(sim.Time) sim.Duration {
				d := delays[i%len(delays)]
				i++
				return d
			},
		}, sim.NewRNG(seed))
		var seqs []uint32
		p.SetHandler(func(_ sim.Time, fr *frame.Frame) { seqs = append(seqs, fr.Seq) })
		n := len(delays)
		if n > 64 {
			n = 64
		}
		for s := 0; s < n; s++ {
			p.Send(iframe(uint32(s), 32))
		}
		sched.Run()
		if len(seqs) != n {
			return false
		}
		for s := 1; s < len(seqs); s++ {
			if seqs[s] <= seqs[s-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
