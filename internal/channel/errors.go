// Package channel simulates the point-to-point laser intersatellite link the
// paper's protocols run over: a full-duplex pair of directed pipes, each with
// a finite data rate (frames serialize onto the wire), a possibly
// time-varying propagation delay driven by orbital geometry, and an error
// process that can be memoryless (post-FEC random errors) or bursty (beam
// mispointing and tracking loss, §2.1).
//
// Per link-model assumption 9, corruption is detectable: the pipe marks the
// frame's Corrupted flag rather than flipping payload bits, and receivers
// must treat such frames exactly like a failed FCS check. Assumption 4 is
// honoured by letting each pipe apply a different error model to I-frames
// and control frames (control frames ride a more powerful FEC, so their
// per-frame error probability P_C is much lower than P_F).
package channel

import (
	"fmt"
	"math"

	"repro/internal/fec"
	"repro/internal/sim"
)

// ErrorModel decides the fate of each frame occupying [start, end) on the
// wire. Implementations may keep state (burst processes advance an internal
// clock) but must be used by a single pipe.
type ErrorModel interface {
	// Corrupt reports whether a frame of the given length in bits,
	// occupying [start, end) of wire time, arrives corrupted.
	Corrupt(rng *sim.RNG, start, end sim.Time, bits int) bool
}

// AnalyticModel is the capability interface for models whose behavior is a
// single closed-form per-frame error probability — the quantity the paper's
// Section 4 analysis is parameterized by. Only models for which that number
// is exact implement it (Perfect, FixedProb); length-dependent, stateful,
// and trace-driven processes deliberately do not, and analytic consumers
// must render their absence (NaN) honestly instead of defaulting to 0 —
// the old bench.modelProb fallback made every non-fixed channel look
// error-free in the analytic columns.
type AnalyticModel interface {
	// MeanFrameErrorProb returns the per-frame corruption probability.
	MeanFrameErrorProb() float64
}

// Perfect is an error-free channel.
type Perfect struct{}

// Corrupt always reports false.
func (Perfect) Corrupt(*sim.RNG, sim.Time, sim.Time, int) bool { return false }

// MeanFrameErrorProb is 0: no frame is ever corrupted.
func (Perfect) MeanFrameErrorProb() float64 { return 0 }

// FixedProb corrupts each frame independently with probability P, regardless
// of length. It is the model the validation experiments use, because the
// paper's analysis is parameterized directly by the frame error
// probabilities P_F and P_C.
type FixedProb struct {
	P float64
}

// Corrupt flips a biased coin.
func (m FixedProb) Corrupt(rng *sim.RNG, _, _ sim.Time, _ int) bool {
	return rng.Bernoulli(m.P)
}

// MeanFrameErrorProb is P, exactly.
func (m FixedProb) MeanFrameErrorProb() float64 { return m.P }

// fepCache memoizes fec.Scheme.FrameErrorProb per error model. A run uses
// only a handful of (BER, frame-length) pairs — I-frames are fixed-size,
// control frames come in two or three lengths — yet the closed form costs a
// Log1p and an Expm1 per frame. The cache is a linear-scanned fixed array:
// at these sizes that beats a map, and when it fills (it never does in
// practice) extra pairs simply fall through to the computation, so cached
// and uncached paths return bit-identical probabilities either way.
//
// Models embedding a fepCache key it by (BER, bits) only, so their Scheme
// field must not change once frames start flowing.
type fepCache struct {
	n    int
	keys [16]fepKey
	vals [16]float64
}

type fepKey struct {
	ber  float64
	bits int
}

func (c *fepCache) prob(s fec.Scheme, ber float64, bits int) float64 {
	k := fepKey{ber, bits}
	for i := 0; i < c.n; i++ {
		if c.keys[i] == k {
			return c.vals[i]
		}
	}
	if s.N == 0 {
		s = fec.Uncoded
	}
	p := s.FrameErrorProb(ber, bits)
	if c.n < len(c.keys) {
		c.keys[c.n] = k
		c.vals[c.n] = p
		c.n++
	}
	return p
}

// BSC is a binary symmetric channel seen through an FEC scheme: bit errors
// occur independently at rate BER, and the frame is corrupted if any FEC
// block is uncorrectable. With Scheme zero-valued, fec.Uncoded is assumed.
type BSC struct {
	BER    float64
	Scheme fec.Scheme

	cache fepCache
}

// Corrupt evaluates the residual frame error probability for this length.
func (m *BSC) Corrupt(rng *sim.RNG, _, _ sim.Time, bits int) bool {
	return rng.Bernoulli(m.cache.prob(m.Scheme, m.BER, bits))
}

// GilbertElliott is the classic two-state burst error model: a Good state
// with low BER and a Bad state (burst) with high BER, with exponentially
// distributed sojourn times. It reproduces the tracking-loss bursts of the
// laser channel (§2.1) with tunable mean burst length.
type GilbertElliott struct {
	GoodBER, BadBER   float64
	MeanGood, MeanBad sim.Duration
	Scheme            fec.Scheme

	// lazily evolved state
	init       bool
	inBad      bool
	stateUntil sim.Time

	cache fepCache
}

// NewGilbertElliott returns a model starting in the Good state.
func NewGilbertElliott(goodBER, badBER float64, meanGood, meanBad sim.Duration, scheme fec.Scheme) *GilbertElliott {
	if meanGood <= 0 || meanBad <= 0 {
		panic("channel: non-positive Gilbert-Elliott sojourn")
	}
	return &GilbertElliott{
		GoodBER: goodBER, BadBER: badBER,
		MeanGood: meanGood, MeanBad: meanBad,
		Scheme: scheme,
	}
}

// Corrupt advances the state process to the frame interval and corrupts the
// frame with the BER of the worst state it overlaps.
func (m *GilbertElliott) Corrupt(rng *sim.RNG, start, end sim.Time, bits int) bool {
	if !m.init {
		m.init = true
		m.stateUntil = sim.Time(rng.ExpDuration(m.MeanGood))
	}
	// Advance through sojourns until the state interval covers `start`,
	// noting whether any bad interval overlaps [start, end).
	overlapsBad := false
	for m.stateUntil < end {
		if m.inBad && m.stateUntil > start {
			overlapsBad = true
		}
		m.inBad = !m.inBad
		mean := m.MeanGood
		if m.inBad {
			mean = m.MeanBad
		}
		soj := rng.ExpDuration(mean)
		if soj <= 0 {
			soj = sim.Nanosecond
		}
		m.stateUntil = m.stateUntil.Add(soj)
	}
	if m.inBad {
		overlapsBad = true
	}
	ber := m.GoodBER
	if overlapsBad {
		ber = m.BadBER
	}
	return rng.Bernoulli(m.cache.prob(m.Scheme, ber, bits))
}

// MeanBurstLen returns the mean duration of a bad-state burst.
func (m *GilbertElliott) MeanBurstLen() sim.Duration { return m.MeanBad }

// BurstTrain is a deterministic burst process: the channel is destroyed for
// BurstLen every Period (bursts at [k*Period, k*Period+BurstLen)), and
// behaves as a BSC with BaseBER otherwise. Experiment E7 uses it to place
// the burst length exactly relative to C_depth*W_cp.
type BurstTrain struct {
	Period   sim.Duration
	BurstLen sim.Duration
	Offset   sim.Duration
	BaseBER  float64
	Scheme   fec.Scheme

	cache fepCache
}

// Corrupt destroys frames overlapping a burst and otherwise applies the
// base BSC.
func (m *BurstTrain) Corrupt(rng *sim.RNG, start, end sim.Time, bits int) bool {
	if m.Period <= 0 {
		panic("channel: BurstTrain with non-positive period")
	}
	if m.BurstLen > 0 && overlapsTrain(start, end, m.Offset, m.Period, m.BurstLen) {
		return true
	}
	return rng.Bernoulli(m.cache.prob(m.Scheme, m.BaseBER, bits))
}

// overlapsTrain reports whether [start, end) intersects any interval
// [offset+k*period, offset+k*period+burst).
func overlapsTrain(start, end sim.Time, offset, period, burst sim.Duration) bool {
	if end <= start {
		end = start + 1
	}
	rel := int64(start) - int64(offset)
	k := int64(math.Floor(float64(rel) / float64(period)))
	for ; ; k++ {
		bs := int64(offset) + k*int64(period)
		if bs >= int64(end) {
			return false
		}
		be := bs + int64(burst)
		if be > int64(start) && bs < int64(end) {
			return true
		}
	}
}

// String summaries for experiment logs.
func (m FixedProb) String() string { return fmt.Sprintf("fixed(p=%g)", m.P) }

func (m *BSC) String() string { return fmt.Sprintf("bsc(ber=%g,%s)", m.BER, schemeName(m.Scheme)) }

func (m *GilbertElliott) String() string {
	return fmt.Sprintf("gilbert-elliott(good=%g,bad=%g,burst=%v)", m.GoodBER, m.BadBER, m.MeanBad)
}

func (m *BurstTrain) String() string {
	return fmt.Sprintf("burst-train(period=%v,len=%v,ber=%g)", m.Period, m.BurstLen, m.BaseBER)
}

func schemeName(s fec.Scheme) string {
	if s.N == 0 {
		return fec.Uncoded.Name
	}
	return s.Name
}
