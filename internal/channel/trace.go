// Trace-driven channels: record the per-frame corrupt/clean decisions of
// any ErrorModel into a compact binary trace, replay them deterministically
// against a different protocol (Kuhn et al., arXiv 1205.3831: link-layer
// ARQ results are unrealistic without physical-layer error traces), and
// import external two-column (time, error) traces into the same machinery.
//
// Ownership rules:
//
//   - A Trace being RECORDED belongs to exactly one Recorder, and therefore
//     to exactly one pipe in exactly one run: Recorder.Corrupt appends.
//   - A Trace being REPLAYED is read-only and may be shared by any number
//     of concurrent runs; each Replay value is a private cursor. This is
//     what lets a replay batch fan across the bench worker pool.
//   - Replay consumes no RNG draws. A pipe's RNG feeds only its models, so
//     substituting a Replay for a live model never shifts other draws.
package channel

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// TraceRec is one recorded channel decision: the wire occupancy
// [Start, End) and length of a frame, and whether the channel corrupted
// it. In a spans-mode trace (see TraceMode) a record is instead a state
// interval: the channel is errored for [Start, End) when Corrupt is set.
type TraceRec struct {
	Start   sim.Time
	End     sim.Time
	Bits    int
	Corrupt bool
}

// TraceMode says how a trace's records are meant to be replayed.
type TraceMode uint8

const (
	// FrameTrace records one decision per Corrupt call (what a Recorder
	// writes); replay hands decisions back in call order, frame timing
	// ignored — the i-th frame of the replayed run gets the i-th recorded
	// fate.
	FrameTrace TraceMode = iota
	// SpanTrace records time intervals of channel state (what
	// ImportTwoColumn builds); replay corrupts every frame whose wire
	// occupancy overlaps an errored span.
	SpanTrace
)

// Trace is one named stream of records — one pipe-direction/frame-class
// error process ("ab/i", "ba/c", ...).
type Trace struct {
	Name string
	Mode TraceMode
	Recs []TraceRec
}

// TraceSet is a named collection of traces: the record/replay unit (one
// file, one run's four streams).
type TraceSet struct {
	order  []string
	byName map[string]*Trace
}

// NewTraceSet returns an empty set.
func NewTraceSet() *TraceSet {
	return &TraceSet{byName: make(map[string]*Trace)}
}

// Stream returns the named trace, creating an empty frames-mode one on
// first use. Creation mutates the set: call it only from the single run
// that owns a recording set, never concurrently.
func (s *TraceSet) Stream(name string) *Trace {
	if tr, ok := s.byName[name]; ok {
		return tr
	}
	tr := &Trace{Name: name}
	s.byName[name] = tr
	s.order = append(s.order, name)
	return tr
}

// Get returns the named trace or nil. Read-only: safe under concurrent
// replay.
func (s *TraceSet) Get(name string) *Trace { return s.byName[name] }

// Add inserts a built trace (e.g. an import), replacing any same-named one.
func (s *TraceSet) Add(tr *Trace) {
	if _, ok := s.byName[tr.Name]; !ok {
		s.order = append(s.order, tr.Name)
	}
	s.byName[tr.Name] = tr
}

// Names returns the stream names in creation order (the file order).
func (s *TraceSet) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Recorder wraps any ErrorModel and captures its decisions into a trace.
type Recorder struct {
	inner ErrorModel
	tr    *Trace
}

// NewRecorder wraps inner (nil = Perfect), recording into tr.
func NewRecorder(inner ErrorModel, tr *Trace) *Recorder {
	if inner == nil {
		inner = Perfect{}
	}
	tr.Mode = FrameTrace
	return &Recorder{inner: inner, tr: tr}
}

// Corrupt delegates to the wrapped model and appends the decision.
func (r *Recorder) Corrupt(rng *sim.RNG, start, end sim.Time, bits int) bool {
	c := r.inner.Corrupt(rng, start, end, bits)
	r.tr.Recs = append(r.tr.Recs, TraceRec{Start: start, End: end, Bits: bits, Corrupt: c})
	return c
}

func (r *Recorder) String() string {
	return fmt.Sprintf("record(%s->%s)", modelName(r.inner), r.tr.Name)
}

// ReplayPolicy says what a replay does past the end of its trace.
type ReplayPolicy uint8

const (
	// LoopReplay wraps around: frame replay restarts the decision
	// sequence, span replay maps time modulo the trace length — the error
	// process becomes periodic, which keeps long replayed runs under a
	// short trace statistically honest.
	LoopReplay ReplayPolicy = iota
	// TruncateReplay goes clean once the trace runs dry.
	TruncateReplay
)

// Replay plays a trace back as an ErrorModel. Each Replay is a private
// cursor over a shared read-only trace; never share one across pipes.
type Replay struct {
	tr     *Trace
	policy ReplayPolicy
	pos    int // next frame-mode record to consume
}

// NewReplay returns a cursor at the start of tr. A nil or empty trace
// replays as a perfect channel.
func NewReplay(tr *Trace, policy ReplayPolicy) *Replay {
	return &Replay{tr: tr, policy: policy}
}

// Seek positions the frame-mode cursor at record n (clamped to the trace).
// The shard engine's split pipes use it to resume a direction's stream
// mid-trace after a handover rebuild.
func (r *Replay) Seek(n int) {
	if r.tr == nil || n < 0 {
		r.pos = 0
		return
	}
	if n > len(r.tr.Recs) {
		n = len(r.tr.Recs)
	}
	r.pos = n
}

// Pos returns the frame-mode cursor.
func (r *Replay) Pos() int { return r.pos }

// Corrupt replays the recorded fate: by call order for frame traces, by
// wire-occupancy overlap for span traces. It draws nothing from rng.
func (r *Replay) Corrupt(_ *sim.RNG, start, end sim.Time, _ int) bool {
	if r.tr == nil || len(r.tr.Recs) == 0 {
		return false
	}
	if r.tr.Mode == SpanTrace {
		return r.corruptSpan(start, end)
	}
	if r.pos >= len(r.tr.Recs) {
		if r.policy == TruncateReplay {
			return false
		}
		r.pos = 0
	}
	c := r.tr.Recs[r.pos].Corrupt
	r.pos++
	return c
}

// corruptSpan reports whether [start, end) overlaps any errored span,
// mapping time modulo the trace length under LoopReplay.
func (r *Replay) corruptSpan(start, end sim.Time) bool {
	if end <= start {
		end = start + 1
	}
	length := r.tr.Recs[len(r.tr.Recs)-1].End
	if length <= 0 || (r.policy == TruncateReplay && start >= length) {
		return false
	}
	if r.policy == LoopReplay && start >= length {
		span := end - start
		start = sim.Time(int64(start) % int64(length))
		end = start + span
	}
	if r.overlapsErrored(start, end) {
		return true
	}
	// A looped frame straddling the wrap point also sees the trace head.
	if r.policy == LoopReplay && end > length {
		return r.overlapsErrored(0, end-length)
	}
	return false
}

func (r *Replay) overlapsErrored(start, end sim.Time) bool {
	recs := r.tr.Recs
	// First span ending after start; spans are sorted and non-overlapping.
	i := sort.Search(len(recs), func(i int) bool { return recs[i].End > start })
	for ; i < len(recs) && recs[i].Start < end; i++ {
		if recs[i].Corrupt {
			return true
		}
	}
	return false
}

func (r *Replay) String() string {
	name := "<nil>"
	if r.tr != nil {
		name = r.tr.Name
	}
	return fmt.Sprintf("replay(%s)", name)
}

func modelName(m ErrorModel) string {
	if s, ok := m.(fmt.Stringer); ok {
		return s.String()
	}
	return fmt.Sprintf("%T", m)
}

// traceMagic opens every trace file: format name + version in 8 bytes.
const traceMagic = "LAMSTRC1"

// Encode serializes the set: magic, stream count, then per stream the
// name, mode, and delta/varint-packed records. Start times within a
// stream must be non-decreasing (every producer here appends in wire
// order) — Encode errors otherwise rather than emit a file ReadTraceSet
// would misparse.
func (s *TraceSet) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(s.order))); err != nil {
		return err
	}
	for _, name := range s.order {
		tr := s.byName[name]
		if err := putUvarint(uint64(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(tr.Mode)); err != nil {
			return err
		}
		if err := putUvarint(uint64(len(tr.Recs))); err != nil {
			return err
		}
		var prev sim.Time
		for _, rec := range tr.Recs {
			if rec.Start < prev || rec.End < rec.Start || rec.Bits < 0 {
				return fmt.Errorf("channel: trace stream %q not in wire order", name)
			}
			if err := putUvarint(uint64(rec.Start - prev)); err != nil {
				return err
			}
			if err := putUvarint(uint64(rec.End - rec.Start)); err != nil {
				return err
			}
			if err := putUvarint(uint64(rec.Bits)); err != nil {
				return err
			}
			var flags byte
			if rec.Corrupt {
				flags = 1
			}
			if err := bw.WriteByte(flags); err != nil {
				return err
			}
			prev = rec.Start
		}
	}
	return bw.Flush()
}

// WriteFile serializes the set to path.
func (s *TraceSet) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTraceSet parses a serialized set.
func ReadTraceSet(r io.Reader) (*TraceSet, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("channel: trace header: %v", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("channel: not a trace file (magic %q)", magic)
	}
	nstreams, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("channel: trace stream count: %v", err)
	}
	set := NewTraceSet()
	for si := uint64(0); si < nstreams; si++ {
		nameLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("channel: trace stream name: %v", err)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("channel: trace stream name: %v", err)
		}
		mode, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("channel: trace stream mode: %v", err)
		}
		if TraceMode(mode) > SpanTrace {
			return nil, fmt.Errorf("channel: trace stream %q: unknown mode %d", name, mode)
		}
		nrecs, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("channel: trace stream %q: %v", name, err)
		}
		tr := set.Stream(string(name))
		tr.Mode = TraceMode(mode)
		tr.Recs = make([]TraceRec, 0, nrecs)
		var prev sim.Time
		for ri := uint64(0); ri < nrecs; ri++ {
			delta, err := binary.ReadUvarint(br)
			if err == nil {
				var dur, bits uint64
				dur, err = binary.ReadUvarint(br)
				if err == nil {
					bits, err = binary.ReadUvarint(br)
					if err == nil {
						var flags byte
						flags, err = br.ReadByte()
						if err == nil {
							start := prev.Add(sim.Duration(delta))
							tr.Recs = append(tr.Recs, TraceRec{
								Start:   start,
								End:     start.Add(sim.Duration(dur)),
								Bits:    int(bits),
								Corrupt: flags&1 != 0,
							})
							prev = start
							continue
						}
					}
				}
			}
			return nil, fmt.Errorf("channel: trace stream %q record %d: %v", name, ri, err)
		}
	}
	return set, nil
}

// ReadTraceFile parses the trace file at path.
func ReadTraceFile(path string) (*TraceSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTraceSet(f)
}

// ImportTwoColumn parses an external error trace in the two-column form
// physical-layer measurement campaigns publish (Kuhn et al.,
// arXiv 1205.3831): one line per channel-state change,
//
//	<time-seconds> <error-flag 0|1>
//
// with '#' comments and blank lines ignored. Each line opens a state that
// lasts until the next line's timestamp; the final line terminates the
// trace (its flag spans nothing). Timestamps must be non-negative and
// strictly increasing. The result is a spans-mode trace replayable with
// NewReplay or the "trace:" model spec.
func ImportTwoColumn(r io.Reader, name string) (*Trace, error) {
	tr := &Trace{Name: name, Mode: SpanTrace}
	sc := bufio.NewScanner(r)
	lineNo := 0
	havePrev := false
	var prevAt sim.Time
	var prevErr bool
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("channel: trace line %d: want \"<seconds> <0|1>\", got %q", lineNo, line)
		}
		secs, err := strconv.ParseFloat(fields[0], 64)
		if err != nil || secs < 0 {
			return nil, fmt.Errorf("channel: trace line %d: bad time %q", lineNo, fields[0])
		}
		at := sim.Time(secs * float64(sim.Second))
		var flag bool
		switch fields[1] {
		case "0":
		case "1":
			flag = true
		default:
			return nil, fmt.Errorf("channel: trace line %d: bad error flag %q", lineNo, fields[1])
		}
		if havePrev {
			if at <= prevAt {
				return nil, fmt.Errorf("channel: trace line %d: time not increasing", lineNo)
			}
			tr.Recs = append(tr.Recs, TraceRec{Start: prevAt, End: at, Corrupt: prevErr})
		}
		havePrev, prevAt, prevErr = true, at, flag
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(tr.Recs) == 0 {
		return nil, fmt.Errorf("channel: trace %q: fewer than two data lines", name)
	}
	return tr, nil
}
