package channel

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/frame"
	"repro/internal/sim"
)

// driveModel runs n frames through m at irregular spacings and returns the
// decision stream. The spacings deliberately straddle Gilbert-Elliott
// sojourn boundaries (mean sojourns of a few ms against gaps of 0.1–3 ms).
func driveModel(m ErrorModel, rng *sim.RNG, n int) []bool {
	out := make([]bool, n)
	at := sim.Time(0)
	for i := range out {
		end := at + sim.Time(27*sim.Microsecond)
		out[i] = m.Corrupt(rng, at, end, 8000)
		at = end + sim.Time((1+3*(i%7))*int(sim.Microsecond)*100)
	}
	return out
}

func TestRecorderReplayEquivalence(t *testing.T) {
	spec := "ge:gber=1e-6,bber=5e-2,mgood=4ms,mbad=2ms"
	live := MustParseModel(spec).New()
	tr := &Trace{Name: "ab/i"}
	rec := NewRecorder(MustParseModel(spec).New(), tr)

	want := driveModel(live, sim.NewRNG(3), 400)
	got := driveModel(rec, sim.NewRNG(3), 400)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("Recorder changed the wrapped model's decisions")
	}

	// Replay hands the identical stream back, drawing nothing from its RNG.
	rep := NewReplay(tr, TruncateReplay)
	replayed := driveModel(rep, nil, 400)
	if !reflect.DeepEqual(want, replayed) {
		t.Fatal("Replay diverged from the recorded decisions")
	}
}

func TestReplayPolicies(t *testing.T) {
	tr := &Trace{Name: "x", Recs: []TraceRec{
		{Start: 0, End: 1, Corrupt: true},
		{Start: 1, End: 2, Corrupt: false},
		{Start: 2, End: 3, Corrupt: true},
	}}
	loop := NewReplay(tr, LoopReplay)
	var got []bool
	for i := 0; i < 7; i++ {
		got = append(got, loop.Corrupt(nil, 0, 1, 8))
	}
	want := []bool{true, false, true, true, false, true, true}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("loop replay = %v, want %v", got, want)
	}

	trunc := NewReplay(tr, TruncateReplay)
	got = got[:0]
	for i := 0; i < 5; i++ {
		got = append(got, trunc.Corrupt(nil, 0, 1, 8))
	}
	want = []bool{true, false, true, false, false}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("truncate replay = %v, want %v", got, want)
	}

	// Seek resumes mid-trace (the shard engine's handover path) and clamps.
	seeker := NewReplay(tr, TruncateReplay)
	seeker.Seek(2)
	if !seeker.Corrupt(nil, 0, 1, 8) {
		t.Fatal("Seek(2) should land on the third record")
	}
	seeker.Seek(99)
	if seeker.Pos() != len(tr.Recs) {
		t.Fatalf("Seek past end: pos = %d, want %d", seeker.Pos(), len(tr.Recs))
	}
	seeker.Seek(-1)
	if seeker.Pos() != 0 {
		t.Fatalf("negative Seek: pos = %d, want 0", seeker.Pos())
	}

	// Nil and empty traces replay as perfect channels.
	if NewReplay(nil, LoopReplay).Corrupt(nil, 0, 1, 8) {
		t.Fatal("nil trace corrupted a frame")
	}
}

func TestTraceSetRoundTrip(t *testing.T) {
	set := NewTraceSet()
	rng := sim.NewRNG(11)
	for _, name := range []string{"ab/i", "ab/c", "ba/i", "ba/c"} {
		tr := set.Stream(name)
		at := sim.Time(0)
		for i := 0; i < 300; i++ {
			end := at + sim.Time(13*sim.Microsecond)
			tr.Recs = append(tr.Recs, TraceRec{
				Start: at, End: end, Bits: 100 + i, Corrupt: rng.Bernoulli(0.3),
			})
			at = end + sim.Time(i%5)*sim.Time(sim.Microsecond)
		}
	}
	set.Stream("spans").Mode = SpanTrace
	set.Get("spans").Recs = []TraceRec{
		{Start: 0, End: 100, Corrupt: false},
		{Start: 100, End: 140, Corrupt: true},
	}

	var buf bytes.Buffer
	if err := set.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Names(), set.Names()) {
		t.Fatalf("stream names: %v != %v", back.Names(), set.Names())
	}
	for _, name := range set.Names() {
		a, b := set.Get(name), back.Get(name)
		if a.Mode != b.Mode || !reflect.DeepEqual(a.Recs, b.Recs) {
			t.Fatalf("stream %q did not round-trip", name)
		}
	}

	// File round-trip too (the CLI path).
	path := filepath.Join(t.TempDir(), "rt.trc")
	if err := set.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTraceFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsDisorderedStream(t *testing.T) {
	set := NewTraceSet()
	set.Stream("bad").Recs = []TraceRec{
		{Start: 100, End: 110},
		{Start: 50, End: 60}, // out of wire order
	}
	if err := set.Encode(&bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "not in wire order") {
		t.Fatalf("want wire-order error, got %v", err)
	}
}

func TestReadTraceSetRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "NOTATRACE", "LAMSTRC1", "LAMSTRC9\x00"} {
		if _, err := ReadTraceSet(strings.NewReader(in)); err == nil {
			t.Errorf("ReadTraceSet(%q): want error", in)
		}
	}
}

func TestImportTwoColumn(t *testing.T) {
	in := `# measured link trace
0.0 0
1.5 1

2.0 0
3.0 0
`
	tr, err := ImportTwoColumn(strings.NewReader(in), "ext")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Mode != SpanTrace {
		t.Fatal("imported trace should be spans-mode")
	}
	want := []TraceRec{
		{Start: 0, End: sim.Time(1500 * sim.Millisecond), Corrupt: false},
		{Start: sim.Time(1500 * sim.Millisecond), End: sim.Time(2000 * sim.Millisecond), Corrupt: true},
		{Start: sim.Time(2000 * sim.Millisecond), End: sim.Time(3000 * sim.Millisecond), Corrupt: false},
	}
	if !reflect.DeepEqual(tr.Recs, want) {
		t.Fatalf("recs = %+v, want %+v", tr.Recs, want)
	}

	// Span replay corrupts exactly the frames overlapping the errored span.
	rep := NewReplay(tr, TruncateReplay)
	sec := sim.Time(sim.Second)
	if rep.Corrupt(nil, 0, sec, 8) {
		t.Fatal("clean span corrupted a frame")
	}
	if !rep.Corrupt(nil, sec, 2*sec, 8) {
		t.Fatal("frame overlapping the errored span survived")
	}
	if rep.Corrupt(nil, 5*sec, 6*sec, 8) {
		t.Fatal("truncate policy corrupted past the trace end")
	}
	// Loop policy maps time modulo the 3 s trace: t=4.6s lands at 1.6s,
	// inside the errored span.
	looped := NewReplay(tr, LoopReplay)
	if !looped.Corrupt(nil, sim.Time(4600*sim.Millisecond), sim.Time(4700*sim.Millisecond), 8) {
		t.Fatal("loop policy missed the wrapped errored span")
	}

	for _, bad := range []string{
		"",                 // no data
		"1.0 0",            // single line terminates nothing
		"0.0 2\n1.0 0",     // bad flag
		"x 0\n1.0 0",       // bad time
		"1.0 0\n0.5 1",     // time not increasing
		"1.0 0\n1.0 1",     // time not strictly increasing
		"0.0 0 extra\n1 0", // wrong column count
		"-1.0 0\n1.0 0",    // negative time
	} {
		if _, err := ImportTwoColumn(strings.NewReader(bad), "bad"); err == nil {
			t.Errorf("ImportTwoColumn(%q): want error", bad)
		}
	}
}

// TestGESplitClockDeterminism pins satellite 3 of the trace work: a
// stateful Gilbert-Elliott model's sojourn bookkeeping across frame
// boundaries must make identical decisions whether its pipe lives on one
// scheduler (NewLink) or has its receive side on another shard's clock
// (NewSplitLink + SetRemote + DeliverInbound). The model is only consulted
// at Send time on the transmit clock, so shards-1-vs-8 runs stay
// deterministic with stateful models.
func TestGESplitClockDeterminism(t *testing.T) {
	cfg := PipeConfig{
		RateBps:    1e8,
		Delay:      ConstantDelay(3 * sim.Millisecond),
		IModelSpec: "ge:gber=1e-6,bber=8e-2,mgood=2ms,mbad=1ms",
	}
	const frames = 300

	send := func(sched *sim.Scheduler, p *Pipe) {
		// Irregular spacing so frames straddle sojourn boundaries.
		for i := 0; i < frames; i++ {
			at := sim.Time(i) * sim.Time(400*sim.Microsecond)
			at += sim.Time(i%7) * sim.Time(90*sim.Microsecond)
			seq := uint32(i)
			sched.Schedule(at, func() { p.Send(frame.NewI(seq, uint64(seq), make([]byte, 200))) })
		}
	}
	collect := func(p *Pipe) *[]bool {
		var got []bool
		p.SetHandler(func(_ sim.Time, f *frame.Frame) { got = append(got, f.Corrupted) })
		return &got
	}

	// Reference: both ends on one scheduler.
	localSched := sim.NewScheduler()
	local := NewLink(localSched, cfg, sim.NewRNG(42))
	localGot := collect(local.AtoB)
	send(localSched, local.AtoB)
	localSched.Run()

	// Split: transmit clock and receive clock are different schedulers,
	// frames crossing via SetRemote/DeliverInbound like the shard engine.
	sendSched, recvSched := sim.NewScheduler(), sim.NewScheduler()
	split := NewSplitLink(sendSched, recvSched, cfg, sim.NewRNG(42))
	splitGot := collect(split.AtoB)
	split.AtoB.SetRemote(func(at sim.Time, f *frame.Frame) {
		recvSched.Schedule(at, func() { split.AtoB.DeliverInbound(at, f) })
	})
	send(sendSched, split.AtoB)
	sendSched.Run()
	recvSched.Run()

	if len(*localGot) != frames || len(*splitGot) != frames {
		t.Fatalf("delivered %d local / %d split, want %d", len(*localGot), len(*splitGot), frames)
	}
	if !reflect.DeepEqual(*localGot, *splitGot) {
		t.Fatal("GE decisions diverged between local and split-clock pipes")
	}
}
