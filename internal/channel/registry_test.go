package channel

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestParseModelValidSpecs(t *testing.T) {
	cases := []struct {
		spec string
		want string // expected concrete type, via %T on the instance
	}{
		{"perfect", "channel.Perfect"},
		{" Perfect ", "channel.Perfect"},
		{"fixed:p=0.05", "channel.FixedProb"},
		{"fixed:p=0", "channel.FixedProb"},
		{"fixed:p=1", "channel.FixedProb"},
		{"bsc:ber=1e-5", "*channel.BSC"},
		{"bsc:ber=1e-5,fec=hamming74", "*channel.BSC"},
		{"bsc:ber=1e-5,fec=rep3", "*channel.BSC"},
		{"ge:gber=1e-7,bber=2e-3,mgood=40ms,mbad=4ms", "*channel.GilbertElliott"},
		{"gilbert-elliott:gber=1e-7,bber=2e-3,mgood=40ms,mbad=4ms,fec=hamming74", "*channel.GilbertElliott"},
		{"burst:period=100ms,len=5ms", "*channel.BurstTrain"},
		{"burst:period=100ms,len=5ms,offset=1ms,ber=1e-6,fec=none", "*channel.BurstTrain"},
	}
	for _, tc := range cases {
		m, err := ParseModel(tc.spec)
		if err != nil {
			t.Errorf("ParseModel(%q): %v", tc.spec, err)
			continue
		}
		if got := fmt.Sprintf("%T", m.New()); got != tc.want {
			t.Errorf("ParseModel(%q).New() = %s, want %s", tc.spec, got, tc.want)
		}
	}
}

// TestParseModelRejectsMalformedSpecs is the fuzz-style rejection table: a
// spec the parser merely shrugs at is a run measuring the wrong channel, so
// every malformed shape here must be a hard error mentioning the problem.
func TestParseModelRejectsMalformedSpecs(t *testing.T) {
	cases := []struct {
		spec    string
		errLike string // substring the error must carry
	}{
		{"", "empty model spec"},
		{"   ", "empty model spec"},
		{"nosuch", "unknown model kind"},
		{"nosuch:p=1", "unknown model kind"},
		{"fixed", "missing required parameter"},
		{"fixed:p", "lacks '='"},
		{"fixed:p=0.5,p=0.6", "duplicate parameter"},
		{"fixed:p=banana", `bad p "banana"`},
		{"fixed:p=1.5", "out of [0,1]"},
		{"fixed:p=-0.1", "out of [0,1]"},
		{"fixed:p=0.5,q=1", `unknown parameter "q"`},
		{"bsc", "missing required parameter"},
		{"bsc:ber=2", "out of [0,1]"},
		{"bsc:ber=1e-5,fec=turbo", "unknown scheme"},
		{"ge:gber=1e-7", "missing required parameter"},
		{"ge:gber=1e-7,bber=2e-3,mgood=40ms,mbad=oops", `bad mbad "oops"`},
		{"ge:gber=1e-7,bber=2e-3,mgood=0s,mbad=4ms", "must be positive"},
		{"burst:period=100ms", "missing required parameter"},
		{"burst:period=0s,len=0s", "period must be positive"},
		{"burst:period=10ms,len=20ms", "out of [0, period]"},
		{"trace", "missing required parameter"},
		{"trace:file=/nonexistent/no.trc", "no such file"},
		{"trace:file=x,policy=sometimes", "bad policy"},
	}
	for _, tc := range cases {
		_, err := ParseModel(tc.spec)
		if err == nil {
			t.Errorf("ParseModel(%q): want error containing %q, got nil", tc.spec, tc.errLike)
			continue
		}
		if !strings.Contains(err.Error(), tc.errLike) {
			t.Errorf("ParseModel(%q) = %q, want substring %q", tc.spec, err, tc.errLike)
		}
	}
}

func TestParseModelUnknownKindListsRegistry(t *testing.T) {
	_, err := ParseModel("bogus:p=1")
	if err == nil {
		t.Fatal("want error")
	}
	for _, kind := range ModelKinds() {
		if !strings.Contains(err.Error(), kind) {
			t.Errorf("unknown-kind error %q does not list registered kind %q", err, kind)
		}
	}
}

// TestModelNewReturnsFreshInstances pins the contract stateful models
// depend on: two pipes resolving the same spec must never share sojourn
// state or replay cursors.
func TestModelNewReturnsFreshInstances(t *testing.T) {
	m := MustParseModel("ge:gber=1e-9,bber=0.5,mgood=1ms,mbad=1ms")
	a, b := m.New(), m.New()
	if a == b {
		t.Fatal("Model.New returned the same instance twice")
	}
	// Drive a's sojourn process far ahead, then check b still produces the
	// same decision stream as a brand-new instance under identical RNGs:
	// any state shared through the factory would desynchronize them.
	rngA := sim.NewRNG(7)
	for i := 0; i < 500; i++ {
		start := sim.Time(i) * sim.Time(sim.Millisecond)
		a.Corrupt(rngA, start, start+sim.Time(100*sim.Microsecond), 8000)
	}
	fresh := m.New()
	rngB, rngF := sim.NewRNG(7), sim.NewRNG(7)
	for i := 0; i < 200; i++ {
		start := sim.Time(i) * sim.Time(sim.Millisecond)
		end := start + sim.Time(100*sim.Microsecond)
		if b.Corrupt(rngB, start, end, 8000) != fresh.Corrupt(rngF, start, end, 8000) {
			t.Fatalf("instance b diverged from a fresh instance at frame %d: shared state", i)
		}
	}
}

func TestLegacySpecs(t *testing.T) {
	cases := []struct {
		ber, pf, pc  float64
		wantI, wantC string
	}{
		{0, -1, -1, "", ""},
		{1e-5, -1, -1, "bsc:ber=1e-05,fec=hamming74", "bsc:ber=1e-05,fec=rep3"},
		{1e-5, 0.05, 0.01, "fixed:p=0.05", "fixed:p=0.01"}, // pf overrides ber
		{0, 0.2, -1, "fixed:p=0.2", "fixed:p=0"},           // pc unset -> clean control
		{0, 0, -1, "fixed:p=0", "fixed:p=0"},
	}
	for _, tc := range cases {
		i, c := LegacySpecs(tc.ber, tc.pf, tc.pc)
		if i != tc.wantI || c != tc.wantC {
			t.Errorf("LegacySpecs(%g, %g, %g) = (%q, %q), want (%q, %q)",
				tc.ber, tc.pf, tc.pc, i, c, tc.wantI, tc.wantC)
		}
		// Non-empty legacy specs must round-trip through the parser.
		for _, spec := range []string{i, c} {
			if spec == "" {
				continue
			}
			if _, err := ParseModel(spec); err != nil {
				t.Errorf("LegacySpecs produced unparseable %q: %v", spec, err)
			}
		}
	}
}

func TestTraceSpecSelectsStream(t *testing.T) {
	dir := t.TempDir()
	set := NewTraceSet()
	for _, name := range []string{"ab/i", "ab/c"} {
		tr := set.Stream(name)
		tr.Recs = append(tr.Recs, TraceRec{Start: 0, End: 10, Bits: 80, Corrupt: name == "ab/i"})
	}
	path := filepath.Join(dir, "two.trc")
	if err := set.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	// Ambiguous: two streams, none selected.
	_, err := ParseModel("trace:file=" + path)
	if err == nil || !strings.Contains(err.Error(), "pick one with stream=") {
		t.Fatalf("ambiguous trace spec: got %v", err)
	}
	// Unknown stream name lists what the file holds.
	_, err = ParseModel("trace:file=" + path + ",stream=ba/i")
	if err == nil || !strings.Contains(err.Error(), "ab/i") {
		t.Fatalf("unknown stream error should list streams: got %v", err)
	}
	// Explicit stream works and replays the recorded fate.
	m, err := ParseModel("trace:file=" + path + ",stream=ab/i")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.New().Corrupt(nil, 0, 10, 80); !got {
		t.Fatal("replayed decision lost")
	}

	// Single-stream files need no stream= key.
	solo := NewTraceSet()
	solo.Stream("ab/i").Recs = []TraceRec{{Start: 0, End: 5, Bits: 40, Corrupt: true}}
	soloPath := filepath.Join(dir, "one.trc")
	if err := solo.WriteFile(soloPath); err != nil {
		t.Fatal(err)
	}
	m, err = ParseModel("trace:file=" + soloPath)
	if err != nil {
		t.Fatal(err)
	}
	if !m.New().Corrupt(nil, 0, 5, 40) {
		t.Fatal("single-stream default replay lost the decision")
	}
}

func TestSpecGrammarMentionsEveryKind(t *testing.T) {
	g := SpecGrammar()
	for _, kind := range ModelKinds() {
		if !strings.Contains(g, kind) {
			t.Errorf("SpecGrammar() %q missing kind %q", g, kind)
		}
	}
}
