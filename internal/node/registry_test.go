package node_test

import (
	"fmt"
	"testing"

	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/node"
	"repro/internal/sim"

	_ "repro/internal/engines" // link every registered engine in
)

// TestLineRelayEveryRegisteredEngine drives a 3-node store-and-forward line
// with each engine the registry knows about, purely through the arq
// contract: the test compiles against no protocol package, so a newly
// registered engine is covered (or caught) automatically.
func TestLineRelayEveryRegisteredEngine(t *testing.T) {
	protos := arq.Protocols()
	if len(protos) < 2 {
		t.Fatalf("registry holds %d engines, want at least lams + one baseline", len(protos))
	}
	for _, name := range protos {
		t.Run(name, func(t *testing.T) {
			reg, err := arq.ParseProtocol(name)
			if err != nil {
				t.Fatal(err)
			}
			sched := sim.NewScheduler()
			pipe := channel.PipeConfig{
				RateBps: 100e6,
				Delay:   channel.ConstantDelay(2 * sim.Millisecond),
				IModel:  channel.FixedProb{P: 0.05},
				CModel:  channel.FixedProb{P: 0.01},
			}
			eng := arq.MustEngine(reg.Name, reg.Defaults(2*2*sim.Millisecond))
			nodes, _ := node.Line(sched, 3, eng, pipe, sim.NewRNG(5))
			src, dst := nodes[0], nodes[2]
			var got []node.Packet
			dst.OnDeliver = func(_ sim.Time, p node.Packet) { got = append(got, p) }
			const n = 150
			for i := 0; i < n; i++ {
				if !src.Send(dst.ID(), []byte(fmt.Sprintf("pkt-%d", i))) {
					t.Fatalf("send %d refused", i)
				}
			}
			sched.RunFor(60 * sim.Second)
			if len(got) != n {
				t.Fatalf("%s delivered %d/%d across the relay", name, len(got), n)
			}
			for i, p := range got {
				if p.Seq != uint64(i) {
					t.Fatalf("%s order broken at %d: seq %d", name, i, p.Seq)
				}
			}
			if fwd := nodes[1].Stats.Forwarded.Value(); fwd < uint64(n) {
				t.Fatalf("%s middle node forwarded %d, want >= %d", name, fwd, n)
			}
		})
	}
}
