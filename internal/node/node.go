package node

import (
	"fmt"
	"sort"

	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/resequence"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Stats counts network-layer activity at one node.
type Stats struct {
	Originated stats.Counter // packets this node sourced
	Forwarded  stats.Counter // packets relayed toward another node
	Delivered  stats.Counter // packets released in order to OnDeliver
	NoRoute    stats.Counter // packets dropped for lack of a route
	BufferFull stats.Counter // packets refused by a link's sending buffer
	LinkDown   stats.Counter // packets dropped on a failed link
	Rerouted   stats.Counter // packets reclaimed from failed links and re-dispatched
}

// outLink is the transmitting side of one neighbor adjacency.
type outLink struct {
	pair      arq.Pair
	nextID    uint64 // per-link DLC datagram IDs
	failed    bool
	reclaimed bool // stranded datagrams already pulled back
}

// Node is a store-and-forward satellite DCE.
type Node struct {
	id    ID
	sched *sim.Scheduler
	eng   arq.Engine

	links  map[ID]*outLink
	routes map[ID]ID // destination -> next hop
	reseq  map[ID]*resequence.Resequencer

	// OnDeliver receives in-order, exactly-once packets addressed to this
	// node. May be nil.
	OnDeliver func(now sim.Time, pkt Packet)

	pendingReroute []Packet

	seqTo map[ID]uint64 // per-destination originating sequence numbers

	Stats Stats
}

// New constructs a node. eng parameterizes every DLC link the node
// terminates: any registered engine works, so an HDLC baseline can run the
// same multi-hop topologies as LAMS-DLC.
func New(sched *sim.Scheduler, id ID, eng arq.Engine) *Node {
	if err := eng.Validate(); err != nil {
		panic(err)
	}
	return &Node{
		id:     id,
		sched:  sched,
		eng:    eng,
		links:  make(map[ID]*outLink),
		routes: make(map[ID]ID),
		reseq:  make(map[ID]*resequence.Resequencer),
		seqTo:  make(map[ID]uint64),
	}
}

// ID returns the node's identity.
func (n *Node) ID() ID { return n.id }

// SetRoute installs a static next-hop route.
func (n *Node) SetRoute(dst, nextHop ID) { n.routes[dst] = nextHop }

// Neighbors lists directly connected nodes, sorted.
func (n *Node) Neighbors() []ID {
	out := make([]ID, 0, len(n.links))
	for id := range n.links {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LinkMetrics exposes the DLC metrics of the outgoing link to a neighbor.
func (n *Node) LinkMetrics(neighbor ID) *arq.Metrics {
	if l, ok := n.links[neighbor]; ok {
		return l.pair.Metrics()
	}
	return nil
}

// Connect joins a and b with a pair of unidirectional DLC sessions
// (data a→b and data b→a), each over its own full-duplex simulated link
// with the given pipe configuration, and wires each session's deliveries
// into the receiving node's network layer. It returns the two underlying
// links (a→b data first) so tests can inject failures.
func Connect(sched *sim.Scheduler, a, b *Node, pipe channel.PipeConfig, rng *sim.RNG) (abData, baData *channel.Link) {
	abData = channel.NewLink(sched, pipe, rng.Split())
	baData = channel.NewLink(sched, pipe, rng.Split())
	a.attach(b, abData)
	b.attach(a, baData)
	return abData, baData
}

// attach creates the outgoing DLC session toward neighbor over link. The
// session's receiver logically lives at the neighbor: its deliveries feed
// the neighbor's network layer.
func (n *Node) attach(neighbor *Node, link *channel.Link) {
	ol := &outLink{}
	ol.pair = n.eng.NewPair(n.sched, link,
		func(now sim.Time, dg arq.Datagram, _ uint32) {
			neighbor.handleArrival(now, dg)
		},
		func(now sim.Time, reason string) {
			ol.failed = true
		})
	n.links[neighbor.id] = ol
	ol.pair.Start()
}

// AttachSplit is attach for topologies partitioned across schedulers (the
// shard engine): the outgoing session's sender entity runs on this node's
// scheduler, its receiver entity — and therefore the deliver callback that
// feeds neighbor's network layer — on the neighbor's. eng is per-adjacency
// (crosslink round trips differ link to link, so the node-wide engine is
// only a default). The caller is responsible for routing link's pipes
// between the two shards (channel.Pipe.SetRemote) before the run starts.
// The wired pair is returned for report collection.
func (n *Node) AttachSplit(neighbor *Node, link *channel.Link, eng arq.Engine) arq.Pair {
	ol := &outLink{}
	ol.pair = eng.NewSplitPair(n.sched, neighbor.sched, link,
		func(now sim.Time, dg arq.Datagram, _ uint32) {
			neighbor.handleArrival(now, dg)
		},
		func(now sim.Time, reason string) {
			ol.failed = true
		})
	n.links[neighbor.id] = ol
	ol.pair.Start()
	return ol.pair
}

// Send originates a packet to dst. It reports whether the packet was
// accepted by the first-hop link (or delivered locally).
func (n *Node) Send(dst ID, payload []byte) bool {
	pkt := Packet{Src: n.id, Dst: dst, Seq: n.seqTo[dst], Payload: payload}
	n.seqTo[dst]++
	n.Stats.Originated.Inc()
	if dst == n.id {
		n.deliverLocal(n.sched.Now(), pkt)
		return true
	}
	return n.dispatch(pkt)
}

// dispatch routes and enqueues an encoded packet on the next-hop link.
func (n *Node) dispatch(pkt Packet) bool {
	nh, ok := n.routes[pkt.Dst]
	if !ok {
		n.Stats.NoRoute.Inc()
		return false
	}
	ol, ok := n.links[nh]
	if !ok {
		n.Stats.NoRoute.Inc()
		return false
	}
	if ol.failed {
		n.Stats.LinkDown.Inc()
		return false
	}
	dg := arq.Datagram{ID: ol.nextID, Payload: pkt.Encode()}
	if !ol.pair.Enqueue(dg) {
		n.Stats.BufferFull.Inc()
		return false
	}
	ol.nextID++
	return true
}

// handleArrival processes a datagram delivered by one of this node's
// incoming DLC sessions: deliver locally or forward immediately (the
// paper's relaxed in-sequence model — no reordering at transit nodes).
func (n *Node) handleArrival(now sim.Time, dg arq.Datagram) {
	pkt, err := DecodePacket(dg.Payload)
	if err != nil {
		return // malformed; a real node would log and count
	}
	if pkt.Dst == n.id {
		n.deliverLocal(now, pkt)
		return
	}
	n.Stats.Forwarded.Inc()
	if !n.dispatch(pkt) {
		// The next hop refused (failed link, buffer full, or no route).
		// A transit node has no upstream to push back on — the DLC behind
		// us already released the frame — so park the packet for the next
		// route recomputation rather than lose it.
		n.pendingReroute = append(n.pendingReroute, pkt)
	}
}

// deliverLocal resequences per source and releases in order.
func (n *Node) deliverLocal(now sim.Time, pkt Packet) {
	rs, ok := n.reseq[pkt.Src]
	if !ok {
		rs = resequence.New(func(now sim.Time, dg arq.Datagram) {
			n.Stats.Delivered.Inc()
			if n.OnDeliver != nil {
				p, err := DecodePacket(dg.Payload)
				if err != nil {
					return
				}
				n.OnDeliver(now, p)
			}
		})
		n.reseq[pkt.Src] = rs
	}
	rs.Push(now, arq.Datagram{ID: pkt.Seq, Payload: pkt.Encode()})
}

// Resequencer exposes the per-source resequencer (nil if none yet), for
// buffer-occupancy measurements.
func (n *Node) Resequencer(src ID) *resequence.Resequencer { return n.reseq[src] }

// Summary renders headline counters.
func (n *Node) Summary() string {
	return fmt.Sprintf("node %d: orig=%d fwd=%d dlv=%d noroute=%d full=%d down=%d",
		n.id, n.Stats.Originated.Value(), n.Stats.Forwarded.Value(),
		n.Stats.Delivered.Value(), n.Stats.NoRoute.Value(),
		n.Stats.BufferFull.Value(), n.Stats.LinkDown.Value())
}

// Line builds a chain topology n0 — n1 — … — n(k−1) with static shortest
// routes, connecting every adjacent pair with the given pipe configuration.
// It returns the nodes and the data links (2(k−1) of them, in connect
// order: forward then reverse per adjacency).
func Line(sched *sim.Scheduler, k int, eng arq.Engine, pipe channel.PipeConfig, rng *sim.RNG) ([]*Node, []*channel.Link) {
	if k < 2 {
		panic("node: line topology needs at least 2 nodes")
	}
	nodes := make([]*Node, k)
	for i := range nodes {
		nodes[i] = New(sched, ID(i), eng)
	}
	var links []*channel.Link
	for i := 0; i+1 < k; i++ {
		ab, ba := Connect(sched, nodes[i], nodes[i+1], pipe, rng)
		links = append(links, ab, ba)
	}
	for i := range nodes {
		for j := range nodes {
			if i == j {
				continue
			}
			if j > i {
				nodes[i].SetRoute(ID(j), ID(i+1))
			} else {
				nodes[i].SetRoute(ID(j), ID(i-1))
			}
		}
	}
	return nodes, links
}
