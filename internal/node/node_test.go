package node

import (
	"bytes"
	"testing"

	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/lamsdlc"
	"repro/internal/sim"
)

func TestPacketRoundTrip(t *testing.T) {
	p := Packet{Src: 3, Dst: 9, Seq: 1 << 40, Payload: []byte("hello relay")}
	got, err := DecodePacket(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != p.Src || got.Dst != p.Dst || got.Seq != p.Seq || !bytes.Equal(got.Payload, p.Payload) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := DecodePacket(make([]byte, 5)); err != ErrShortPacket {
		t.Fatalf("short packet err = %v", err)
	}
	if p.String() == "" {
		t.Fatal("packet string")
	}
}

func testCfg() lamsdlc.Config {
	cfg := lamsdlc.Defaults(6 * sim.Millisecond)
	cfg.CheckpointInterval = 5 * sim.Millisecond
	cfg.CumulationDepth = 3
	cfg.ProcTime = 10 * sim.Microsecond
	return cfg
}

func testEng() arq.Engine { return arq.MustEngine("lams", testCfg()) }

func testPipe() channel.PipeConfig {
	return channel.PipeConfig{
		RateBps: 100e6,
		Delay:   channel.ConstantDelay(3 * sim.Millisecond),
	}
}

func TestTwoNodeExchange(t *testing.T) {
	sched := sim.NewScheduler()
	nodes, _ := Line(sched, 2, testEng(), testPipe(), sim.NewRNG(1))
	a, b := nodes[0], nodes[1]
	var atB, atA []Packet
	b.OnDeliver = func(_ sim.Time, p Packet) { atB = append(atB, p) }
	a.OnDeliver = func(_ sim.Time, p Packet) { atA = append(atA, p) }
	for i := 0; i < 20; i++ {
		if !a.Send(1, []byte{byte(i)}) {
			t.Fatal("send refused")
		}
		if !b.Send(0, []byte{byte(100 + i)}) {
			t.Fatal("reverse send refused")
		}
	}
	sched.RunFor(2 * sim.Second)
	if len(atB) != 20 || len(atA) != 20 {
		t.Fatalf("delivered %d/%d, want 20/20", len(atB), len(atA))
	}
	for i, p := range atB {
		if p.Seq != uint64(i) || p.Src != 0 || p.Payload[0] != byte(i) {
			t.Fatalf("b got %v at %d", p, i)
		}
	}
	for i, p := range atA {
		if p.Seq != uint64(i) || p.Src != 1 {
			t.Fatalf("a got %v at %d", p, i)
		}
	}
}

func TestLocalDelivery(t *testing.T) {
	sched := sim.NewScheduler()
	n := New(sched, 5, testEng())
	var got []Packet
	n.OnDeliver = func(_ sim.Time, p Packet) { got = append(got, p) }
	n.Send(5, []byte("loopback"))
	sched.Run()
	if len(got) != 1 || string(got[0].Payload) != "loopback" {
		t.Fatalf("local delivery: %v", got)
	}
}

func TestNoRouteCounted(t *testing.T) {
	sched := sim.NewScheduler()
	n := New(sched, 0, testEng())
	if n.Send(9, nil) {
		t.Fatal("send without route accepted")
	}
	if n.Stats.NoRoute.Value() != 1 {
		t.Fatal("no-route not counted")
	}
}

func TestThreeHopRelayLossy(t *testing.T) {
	sched := sim.NewScheduler()
	pipe := testPipe()
	pipe.IModel = channel.FixedProb{P: 0.15}
	pipe.CModel = channel.FixedProb{P: 0.03}
	nodes, _ := Line(sched, 4, testEng(), pipe, sim.NewRNG(2))
	dst := nodes[3]
	var got []Packet
	dst.OnDeliver = func(_ sim.Time, p Packet) { got = append(got, p) }
	const n = 100
	for i := 0; i < n; i++ {
		if !nodes[0].Send(3, []byte{byte(i)}) {
			t.Fatalf("send %d refused", i)
		}
	}
	sched.RunFor(60 * sim.Second)
	if len(got) != n {
		t.Fatalf("delivered %d, want %d", len(got), n)
	}
	// End-to-end exactly-once, in-order (the destination resequencer's
	// contract), across two lossy relays.
	for i, p := range got {
		if p.Seq != uint64(i) {
			t.Fatalf("order broken: got seq %d at %d", p.Seq, i)
		}
	}
	if nodes[1].Stats.Forwarded.Value() != uint64(nodes[1].Stats.Forwarded.Value()) ||
		nodes[1].Stats.Forwarded.Value() < n {
		t.Fatalf("middle node forwarded %d", nodes[1].Stats.Forwarded.Value())
	}
	// The resequencer at the destination did real work or at least exists.
	if dst.Resequencer(0) == nil {
		t.Fatal("no resequencer instantiated for source 0")
	}
}

func TestTransitNodesDoNotResequence(t *testing.T) {
	// §2.3's claim: intermediate nodes forward out-of-order frames
	// immediately, so only the destination holds a reorder buffer.
	sched := sim.NewScheduler()
	pipe := testPipe()
	pipe.IModel = channel.FixedProb{P: 0.2}
	nodes, _ := Line(sched, 3, testEng(), pipe, sim.NewRNG(3))
	var got []Packet
	nodes[2].OnDeliver = func(_ sim.Time, p Packet) { got = append(got, p) }
	for i := 0; i < 80; i++ {
		nodes[0].Send(2, []byte{byte(i)})
	}
	sched.RunFor(60 * sim.Second)
	if len(got) != 80 {
		t.Fatalf("delivered %d", len(got))
	}
	if nodes[1].Resequencer(0) != nil {
		t.Fatal("transit node instantiated a resequencer")
	}
	if rs := nodes[2].Resequencer(0); rs == nil || rs.Stats.Released.Value() != 80 {
		t.Fatal("destination resequencer missing or incomplete")
	}
}

func TestLinkFailureCountsDrops(t *testing.T) {
	sched := sim.NewScheduler()
	nodes, links := Line(sched, 2, testEng(), testPipe(), sim.NewRNG(4))
	sched.RunFor(100 * sim.Millisecond)
	// Kill the a->b data link; the DLC declares failure, after which the
	// network layer refuses new packets on that adjacency.
	links[0].Fail()
	sched.RunFor(10 * sim.Second)
	if nodes[0].Send(1, []byte("x")) {
		t.Fatal("send on failed link accepted")
	}
	if nodes[0].Stats.LinkDown.Value() != 1 {
		t.Fatalf("link-down drops = %d", nodes[0].Stats.LinkDown.Value())
	}
}

func TestNeighborsAndSummary(t *testing.T) {
	sched := sim.NewScheduler()
	nodes, _ := Line(sched, 3, testEng(), testPipe(), sim.NewRNG(5))
	nb := nodes[1].Neighbors()
	if len(nb) != 2 || nb[0] != 0 || nb[1] != 2 {
		t.Fatalf("neighbors = %v", nb)
	}
	if nodes[1].LinkMetrics(0) == nil || nodes[1].LinkMetrics(9) != nil {
		t.Fatal("LinkMetrics lookup")
	}
	if nodes[0].Summary() == "" {
		t.Fatal("summary")
	}
	if nodes[0].ID() != 0 {
		t.Fatal("id")
	}
}

func TestLinePanicsOnTooFewNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Line(sim.NewScheduler(), 1, testEng(), testPipe(), sim.NewRNG(1))
}

func TestBidirectionalCrossTraffic(t *testing.T) {
	// Full-duplex chain with simultaneous flows in both directions over
	// lossy links: both destinations see exactly-once in-order streams.
	sched := sim.NewScheduler()
	pipe := testPipe()
	pipe.IModel = channel.FixedProb{P: 0.1}
	pipe.CModel = channel.FixedProb{P: 0.02}
	nodes, _ := Line(sched, 3, testEng(), pipe, sim.NewRNG(10))
	var fwd, rev []Packet
	nodes[2].OnDeliver = func(_ sim.Time, p Packet) { fwd = append(fwd, p) }
	nodes[0].OnDeliver = func(_ sim.Time, p Packet) { rev = append(rev, p) }
	const n = 60
	for i := 0; i < n; i++ {
		nodes[0].Send(2, []byte{byte(i)})
		nodes[2].Send(0, []byte{byte(200 - i)})
	}
	sched.RunFor(60 * sim.Second)
	if len(fwd) != n || len(rev) != n {
		t.Fatalf("delivered fwd=%d rev=%d, want %d each", len(fwd), len(rev), n)
	}
	for i := range fwd {
		if fwd[i].Seq != uint64(i) || rev[i].Seq != uint64(i) {
			t.Fatalf("ordering broken at %d", i)
		}
	}
	// The middle node forwarded both directions.
	if nodes[1].Stats.Forwarded.Value() < 2*n {
		t.Fatalf("middle forwarded %d", nodes[1].Stats.Forwarded.Value())
	}
}

func TestBufferFullCounted(t *testing.T) {
	sched := sim.NewScheduler()
	cfg := testCfg()
	cfg.SendBufferCap = 4
	nodes, _ := Line(sched, 2, arq.MustEngine("lams", cfg), testPipe(), sim.NewRNG(11))
	refused := 0
	for i := 0; i < 20; i++ {
		if !nodes[0].Send(1, []byte{byte(i)}) {
			refused++
		}
	}
	if refused == 0 {
		t.Fatal("tiny send buffer never refused")
	}
	if nodes[0].Stats.BufferFull.Value() != uint64(refused) {
		t.Fatalf("BufferFull = %d, want %d", nodes[0].Stats.BufferFull.Value(), refused)
	}
}

func TestMultipleSourcesResequencedIndependently(t *testing.T) {
	// Two sources converge on one destination; each source's stream is
	// ordered independently by its own resequencer.
	sched := sim.NewScheduler()
	pipe := testPipe()
	pipe.IModel = channel.FixedProb{P: 0.15}
	nodes, _ := Line(sched, 3, testEng(), pipe, sim.NewRNG(12))
	perSrc := map[ID][]uint64{}
	nodes[2].OnDeliver = func(_ sim.Time, p Packet) {
		perSrc[p.Src] = append(perSrc[p.Src], p.Seq)
	}
	const n = 40
	for i := 0; i < n; i++ {
		nodes[0].Send(2, []byte{1})
		nodes[1].Send(2, []byte{2})
	}
	sched.RunFor(60 * sim.Second)
	for src, seqs := range perSrc {
		if len(seqs) != n {
			t.Fatalf("src %d delivered %d", src, len(seqs))
		}
		for i, s := range seqs {
			if s != uint64(i) {
				t.Fatalf("src %d out of order at %d", src, i)
			}
		}
	}
	if len(perSrc) != 2 {
		t.Fatalf("sources seen: %d", len(perSrc))
	}
}

func TestRingShortestPaths(t *testing.T) {
	sched := sim.NewScheduler()
	nodes, _ := Ring(sched, 5, testEng(), testPipe(), sim.NewRNG(20))
	var got []Packet
	nodes[2].OnDeliver = func(_ sim.Time, p Packet) { got = append(got, p) }
	// 0 -> 2 should go clockwise through 1 (2 hops, not 3).
	for i := 0; i < 10; i++ {
		nodes[0].Send(2, []byte{byte(i)})
	}
	sched.RunFor(5 * sim.Second)
	if len(got) != 10 {
		t.Fatalf("delivered %d", len(got))
	}
	if fwd := nodes[1].Stats.Forwarded.Value(); fwd != 10 {
		t.Fatalf("node 1 forwarded %d, want 10 (shortest path)", fwd)
	}
	if fwd := nodes[4].Stats.Forwarded.Value(); fwd != 0 {
		t.Fatalf("node 4 forwarded %d, want 0", fwd)
	}
}

func TestRingFailoverReroutesAndRecoversStrandedTraffic(t *testing.T) {
	sched := sim.NewScheduler()
	pipe := testPipe()
	nodes, links := Ring(sched, 5, testEng(), pipe, sim.NewRNG(21))
	var got []Packet
	nodes[2].OnDeliver = func(_ sim.Time, p Packet) { got = append(got, p) }

	const n = 120
	sent := 0
	var feed func()
	feed = func() {
		if sent < n {
			nodes[0].Send(2, []byte{byte(sent)})
			sent++
			sched.ScheduleAfter(500*sim.Microsecond, feed)
		}
	}
	sched.ScheduleAfter(0, feed)

	// Mid-transfer, sever the 1<->2 adjacency (both data links: indices
	// 2 and 3 in adjacency order).
	sched.Schedule(sim.Time(20*sim.Millisecond), func() {
		links[2].Fail()
		links[3].Fail()
	})
	// Let the DLC declare failure, then recompute routes: traffic reroutes
	// 0 -> 4 -> 3 -> 2 and the datagrams stranded in node 1's dead sender
	// are reclaimed and re-dispatched.
	sched.Schedule(sim.Time(400*sim.Millisecond), func() {
		RecomputeRoutes(nodes)
	})
	sched.RunFor(60 * sim.Second)

	if len(got) != n {
		t.Fatalf("delivered %d/%d after failover", len(got), n)
	}
	for i, p := range got {
		if p.Seq != uint64(i) {
			t.Fatalf("order broken at %d after failover (seq %d)", i, p.Seq)
		}
	}
	// The long way actually carried traffic.
	if nodes[4].Stats.Forwarded.Value() == 0 || nodes[3].Stats.Forwarded.Value() == 0 {
		t.Fatal("counter-clockwise path unused after failover")
	}
	rerouted := nodes[0].Stats.Rerouted.Value() + nodes[1].Stats.Rerouted.Value()
	if rerouted == 0 {
		t.Fatal("no stranded datagrams reclaimed")
	}
}

func TestRecomputeRoutesPartition(t *testing.T) {
	// Severing both adjacencies around a node partitions it; packets to it
	// become unroutable and are counted, not silently lost.
	sched := sim.NewScheduler()
	nodes, links := Ring(sched, 3, testEng(), testPipe(), sim.NewRNG(22))
	sched.RunFor(50 * sim.Millisecond)
	// Node 2's adjacencies: adjacency 1 (1<->2) links[2],links[3]; adjacency
	// 2 (2<->0) links[4],links[5].
	for _, l := range links[2:6] {
		l.Fail()
	}
	sched.RunFor(10 * sim.Second) // DLC failures declared
	RecomputeRoutes(nodes)
	if nodes[0].Send(2, []byte("x")) {
		t.Fatal("send to a partitioned node accepted")
	}
	if nodes[0].Stats.NoRoute.Value() == 0 {
		t.Fatal("partition not reflected in NoRoute")
	}
	if nodes[0].Send(1, []byte("y")) != true {
		t.Fatal("route to the still-reachable node lost")
	}
}

func TestRingPanicsTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Ring(sim.NewScheduler(), 2, testEng(), testPipe(), sim.NewRNG(1))
}
