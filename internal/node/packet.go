// Package node implements the store-and-forward satellite DCE of the
// paper's target network (§2.1): each satellite relays I-frames hop by hop
// over LAMS-DLC links, intermediate nodes forward out-of-order arrivals
// immediately (the receiving buffer never holds good frames for
// resequencing — §2.3's core argument), and only the destination node
// restores per-source order and suppresses duplicates via
// internal/resequence.
package node

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ID names a node in the constellation.
type ID uint16

// Packet is the network-layer unit riding inside DLC datagrams: source,
// destination, a per-(source,destination) consecutive sequence number the
// destination resequences on, and the user payload.
type Packet struct {
	Src, Dst ID
	Seq      uint64
	Payload  []byte
}

// headerLen is the encoded header size.
const headerLen = 2 + 2 + 8

// ErrShortPacket reports a truncated packet buffer.
var ErrShortPacket = errors.New("node: short packet")

// Encode serializes the packet.
func (p Packet) Encode() []byte {
	buf := make([]byte, headerLen+len(p.Payload))
	binary.BigEndian.PutUint16(buf[0:], uint16(p.Src))
	binary.BigEndian.PutUint16(buf[2:], uint16(p.Dst))
	binary.BigEndian.PutUint64(buf[4:], p.Seq)
	copy(buf[headerLen:], p.Payload)
	return buf
}

// DecodePacket parses an encoded packet. The payload aliases buf.
func DecodePacket(buf []byte) (Packet, error) {
	if len(buf) < headerLen {
		return Packet{}, ErrShortPacket
	}
	return Packet{
		Src:     ID(binary.BigEndian.Uint16(buf[0:])),
		Dst:     ID(binary.BigEndian.Uint16(buf[2:])),
		Seq:     binary.BigEndian.Uint64(buf[4:]),
		Payload: buf[headerLen:],
	}, nil
}

// String renders the packet for traces.
func (p Packet) String() string {
	return fmt.Sprintf("pkt %d->%d seq=%d len=%d", p.Src, p.Dst, p.Seq, len(p.Payload))
}
