package node

import (
	"sort"

	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/sim"
)

// This file adds the minimal network-layer machinery a LAMS constellation
// needs around the DLC: topology builders beyond a line, shortest-path
// route computation over the *alive* adjacencies, and reclamation of
// traffic stranded in a failed link's sending buffer (§3.3: "when an
// unexpected unrecoverable link failure occurs, the sender ... can recover
// I-frames without loss"; the recovered datagrams re-enter the network
// layer and ride the recomputed routes).

// LinkAlive reports whether the outgoing DLC session toward neighbor is
// still usable (no declared link failure).
func (n *Node) LinkAlive(neighbor ID) bool {
	ol, ok := n.links[neighbor]
	return ok && !ol.failed
}

// pendingReroute accumulates packets reclaimed from failed links until the
// next RecomputeRoutes pass re-dispatches them.
func (n *Node) reclaimFailedLinks() {
	for _, ol := range n.links {
		if !ol.failed || ol.reclaimed {
			continue
		}
		ol.reclaimed = true
		for _, dg := range ol.pair.Reclaim() {
			pkt, err := DecodePacket(dg.Payload)
			if err != nil {
				continue
			}
			n.pendingReroute = append(n.pendingReroute, pkt)
		}
	}
}

// flushPending re-dispatches reclaimed packets over the current routes.
func (n *Node) flushPending() {
	pending := n.pendingReroute
	n.pendingReroute = nil
	for _, pkt := range pending {
		n.Stats.Rerouted.Inc()
		if pkt.Dst == n.id {
			n.deliverLocal(n.sched.Now(), pkt)
			continue
		}
		if !n.dispatch(pkt) {
			// Still unroutable: keep for the next recompute.
			n.pendingReroute = append(n.pendingReroute, pkt)
		}
	}
}

// RecomputeRoutes rebuilds every node's next-hop table by breadth-first
// search over the alive adjacencies, then re-dispatches any traffic
// reclaimed from failed links. Call it after injecting failures (a real
// constellation would run it from its topology manager on every pass
// schedule or failure notification).
func RecomputeRoutes(nodes []*Node) {
	byID := make(map[ID]*Node, len(nodes))
	for _, n := range nodes {
		byID[n.id] = n
		n.reclaimFailedLinks()
	}
	// Alive adjacency, deterministic order.
	adj := make(map[ID][]ID, len(nodes))
	for _, n := range nodes {
		var out []ID
		for _, nb := range n.Neighbors() {
			peer, ok := byID[nb]
			if !ok {
				continue
			}
			// The adjacency is usable only if both directions live (each
			// direction is its own DLC session).
			if n.LinkAlive(nb) && peer.LinkAlive(n.id) {
				out = append(out, nb)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		adj[n.id] = out
	}
	// BFS from every node.
	for _, src := range nodes {
		routes := make(map[ID]ID)
		type hop struct {
			id    ID
			first ID // first hop on the path from src
		}
		visited := map[ID]bool{src.id: true}
		var queue []hop
		for _, nb := range adj[src.id] {
			visited[nb] = true
			routes[nb] = nb
			queue = append(queue, hop{nb, nb})
		}
		for len(queue) > 0 {
			h := queue[0]
			queue = queue[1:]
			for _, nb := range adj[h.id] {
				if visited[nb] {
					continue
				}
				visited[nb] = true
				routes[nb] = h.first
				queue = append(queue, hop{nb, h.first})
			}
		}
		src.routes = routes
	}
	for _, n := range nodes {
		n.flushPending()
	}
}

// Ring builds a k-node ring with shortest-path routes in both directions.
// It returns the nodes and the data links in adjacency order (forward then
// reverse per adjacency, adjacency i joining node i and node (i+1) mod k).
func Ring(sched *sim.Scheduler, k int, eng arq.Engine, pipe channel.PipeConfig, rng *sim.RNG) ([]*Node, []*channel.Link) {
	if k < 3 {
		panic("node: ring topology needs at least 3 nodes")
	}
	nodes := make([]*Node, k)
	for i := range nodes {
		nodes[i] = New(sched, ID(i), eng)
	}
	var links []*channel.Link
	for i := 0; i < k; i++ {
		ab, ba := Connect(sched, nodes[i], nodes[(i+1)%k], pipe, rng)
		links = append(links, ab, ba)
	}
	RecomputeRoutes(nodes)
	return nodes, links
}
