// Package ring provides a growable circular FIFO whose backing array is
// reused across cycles. The protocol hot paths (sender send queues, the
// receiver's processor queue, dedup aging) push and pop constantly; a plain
// slice used as a queue either leaks capacity (q = q[1:]) or reallocates.
// The ring keeps one backing array, doubling it only when the population
// grows past every previous high-water mark, so steady-state traffic runs
// allocation-free.
package ring

// Ring is a FIFO queue over a circular buffer. The zero value is ready to
// use. Not safe for concurrent use.
type Ring[T any] struct {
	buf  []T
	head int // index of the front element
	n    int // population
}

// Len returns the number of queued elements.
func (r *Ring[T]) Len() int { return r.n }

// grow doubles the backing array and linearizes the contents.
func (r *Ring[T]) grow() {
	c := len(r.buf) * 2
	if c < 8 {
		c = 8
	}
	buf := make([]T, c)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
}

// PushBack appends v at the tail.
func (r *Ring[T]) PushBack(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

// PushFront prepends v at the head.
func (r *Ring[T]) PushFront(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.head = (r.head - 1 + len(r.buf)) % len(r.buf)
	r.buf[r.head] = v
	r.n++
}

// PopFront removes and returns the front element. The vacated slot is
// zeroed so the ring does not pin pointers past their lifetime. Panics on
// an empty ring.
func (r *Ring[T]) PopFront() T {
	if r.n == 0 {
		panic("ring: pop from empty ring")
	}
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v
}

// Front returns the front element without removing it. Panics on an empty
// ring.
func (r *Ring[T]) Front() T {
	if r.n == 0 {
		panic("ring: front of empty ring")
	}
	return r.buf[r.head]
}

// At returns the i-th element from the front (0 = front). Panics when out
// of range.
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.n {
		panic("ring: index out of range")
	}
	return r.buf[(r.head+i)%len(r.buf)]
}

// Reset drops all elements, zeroing the occupied slots but keeping the
// backing array for reuse.
func (r *Ring[T]) Reset() {
	var zero T
	for i := 0; i < r.n; i++ {
		r.buf[(r.head+i)%len(r.buf)] = zero
	}
	r.head, r.n = 0, 0
}
