package ring

import "testing"

func TestFIFOOrder(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 100; i++ {
		r.PushBack(i)
	}
	if r.Len() != 100 {
		t.Fatalf("Len = %d, want 100", r.Len())
	}
	for i := 0; i < 100; i++ {
		if got := r.PopFront(); got != i {
			t.Fatalf("PopFront = %d, want %d", got, i)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after draining, want 0", r.Len())
	}
}

func TestPushFront(t *testing.T) {
	var r Ring[int]
	r.PushBack(2)
	r.PushBack(3)
	r.PushFront(1)
	r.PushFront(0)
	for i := 0; i < 4; i++ {
		if got := r.At(i); got != i {
			t.Fatalf("At(%d) = %d, want %d", i, got, i)
		}
	}
	for i := 0; i < 4; i++ {
		if got := r.PopFront(); got != i {
			t.Fatalf("PopFront = %d, want %d", got, i)
		}
	}
}

func TestWrapAround(t *testing.T) {
	var r Ring[int]
	// Interleave pushes and pops so head walks around the buffer many
	// times without growing it.
	next, want := 0, 0
	for i := 0; i < 1000; i++ {
		r.PushBack(next)
		next++
		r.PushBack(next)
		next++
		if got := r.PopFront(); got != want {
			t.Fatalf("PopFront = %d, want %d", got, want)
		}
		want++
	}
	for r.Len() > 0 {
		if got := r.PopFront(); got != want {
			t.Fatalf("PopFront = %d, want %d", got, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained %d elements, want %d", want, next)
	}
}

func TestPopZeroesSlot(t *testing.T) {
	var r Ring[*int]
	x := new(int)
	r.PushBack(x)
	r.PopFront()
	// The vacated slot must not pin the pointer.
	if r.buf[0] != nil {
		t.Fatal("PopFront left pointer in vacated slot")
	}
	r.PushBack(x)
	r.Reset()
	for i := range r.buf {
		if r.buf[i] != nil {
			t.Fatalf("Reset left pointer in slot %d", i)
		}
	}
}

func TestSteadyStateNoAllocs(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 64; i++ {
		r.PushBack(i)
	}
	r.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			r.PushBack(i)
		}
		for i := 0; i < 64; i++ {
			r.PopFront()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/pop allocated %.1f/run, want 0", allocs)
	}
}
