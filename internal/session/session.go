// Package session manages an ARQ engine across the short link lifetimes that
// define the LAMS environment (§1–2): a crosslink exists only while two
// satellites see each other (minutes), every pass begins with a retargeting
// overhead while the laser terminals acquire pointing, and traffic that a
// pass could not finish must carry over to the next pass without loss and
// reach the application exactly once.
//
// The Manager owns a queue of outstanding datagrams and a sequence of
// passes (visibility windows). For each pass it builds a fresh link and a
// fresh endpoint pair from its configured engine (protocol state does not
// survive retargeting; any registered arq engine works), sets the engine's
// link lifetime to the remaining pass, feeds the queue, and at pass end
// reclaims the sender's unreleased datagrams for the next pass.
// Deliveries from all passes funnel through one resequencer, so duplicates
// created by pass-boundary retransmission are suppressed and the
// application sees each datagram exactly once, in order.
package session

import (
	"fmt"

	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/resequence"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Pass is one usable link opportunity in simulation time.
type Pass struct {
	Start, End sim.Time
}

// Duration returns the pass length.
func (p Pass) Duration() sim.Duration { return p.End.Sub(p.Start) }

// LinkFactory builds the simulated link for pass i. Each pass gets a fresh
// link (new geometry, new error-process state).
type LinkFactory func(i int, p Pass) *channel.Link

// Config parameterizes the Manager.
type Config struct {
	// Engine is the per-pass ARQ engine (protocol + configuration). Its
	// link lifetime is overwritten per pass via WithLinkLifetime.
	Engine arq.Engine
	// Retarget is the pointing-acquisition overhead at the start of every
	// pass during which the link cannot carry traffic (§1: "a large
	// retargeting overhead which occupies a significant portion of the
	// link lifetime").
	Retarget sim.Duration
}

// Stats counts manager activity.
type Stats struct {
	Passes      stats.Counter
	CarriedOver stats.Counter // datagrams reclaimed at pass ends
	Duplicates  stats.Counter // suppressed cross-pass duplicates
	Delivered   stats.Counter // released to the application
	Failures    stats.Counter // in-pass link failures
}

// Manager drives traffic across passes.
type Manager struct {
	sched   *sim.Scheduler
	cfg     Config
	passes  []Pass
	factory LinkFactory

	queue  ring.Ring[arq.Datagram] // waiting for a pass
	nextID uint64
	cur    arq.Pair
	curIdx int

	reseq *resequence.Resequencer
	// OnDeliver receives exactly-once, in-order datagrams.
	OnDeliver func(now sim.Time, dg arq.Datagram)

	Stats Stats
}

// New schedules a manager over the given passes. Passes must be sorted and
// non-overlapping.
func New(sched *sim.Scheduler, cfg Config, passes []Pass, factory LinkFactory) *Manager {
	if err := cfg.Engine.Validate(); err != nil {
		panic(err)
	}
	if cfg.Retarget < 0 {
		panic("session: negative retarget overhead")
	}
	if factory == nil {
		panic("session: nil link factory")
	}
	for i := range passes {
		if passes[i].End <= passes[i].Start {
			panic(fmt.Sprintf("session: degenerate pass %d", i))
		}
		if i > 0 && passes[i].Start < passes[i-1].End {
			panic(fmt.Sprintf("session: pass %d overlaps its predecessor", i))
		}
	}
	m := &Manager{sched: sched, cfg: cfg, passes: passes, factory: factory}
	m.reseq = resequence.New(func(now sim.Time, dg arq.Datagram) {
		m.Stats.Delivered.Inc()
		if m.OnDeliver != nil {
			m.OnDeliver(now, dg)
		}
	})
	for i, p := range passes {
		i, p := i, p
		usable := p.Start.Add(cfg.Retarget)
		if usable.Before(p.End) {
			sched.Schedule(usable, func() { m.startPass(i, p) })
			sched.Schedule(p.End, func() { m.endPass(i) })
		}
		// A pass shorter than the retargeting overhead is unusable and
		// silently skipped — the constellation planner's problem.
	}
	return m
}

// Send enqueues a payload for transfer; datagram IDs are assigned
// consecutively, which is what the cross-pass resequencer orders by.
func (m *Manager) Send(payload []byte) uint64 {
	id := m.nextID
	m.nextID++
	dg := arq.Datagram{ID: id, Payload: payload}
	if m.cur != nil && m.cur.Enqueue(dg) {
		return id
	}
	m.queue.PushBack(dg)
	return id
}

// Pending returns the datagrams waiting for a pass (excluding those inside
// the active pair).
func (m *Manager) Pending() int { return m.queue.Len() }

// Active reports whether a pass is currently carrying traffic.
func (m *Manager) Active() bool { return m.cur != nil }

// CurrentPass returns the index of the active pass, or -1.
func (m *Manager) CurrentPass() int {
	if m.cur == nil {
		return -1
	}
	return m.curIdx
}

func (m *Manager) startPass(i int, p Pass) {
	link := m.factory(i, p)
	eng := m.cfg.Engine.WithLinkLifetime(p.End.Sub(m.sched.Now()))
	pair := eng.NewPair(m.sched, link,
		func(now sim.Time, dg arq.Datagram, _ uint32) {
			// Cross-pass duplicate suppression + ordering.
			before := m.reseq.Stats.Duplicates.Value()
			m.reseq.Push(now, dg)
			m.Stats.Duplicates.Addn(m.reseq.Stats.Duplicates.Value() - before)
		},
		func(now sim.Time, reason string) {
			m.Stats.Failures.Inc()
		})
	pair.Start()
	m.cur = pair
	m.curIdx = i
	m.Stats.Passes.Inc()
	// Feed everything waiting; refusals cycle to the back, preserving
	// their relative order.
	for n := m.queue.Len(); n > 0; n-- {
		dg := m.queue.PopFront()
		if !pair.Enqueue(dg) {
			m.queue.PushBack(dg)
		}
	}
}

func (m *Manager) endPass(i int) {
	if m.cur == nil || m.curIdx != i {
		return
	}
	pair := m.cur
	m.cur = nil
	// Stop the protocol: the beam is gone. Unreleased datagrams (never
	// positively acknowledged) carry over; some may already have arrived —
	// the resequencer absorbs the duplicates.
	pair.Stop()
	pair.Link().Fail()
	carried := pair.Reclaim()
	m.Stats.CarriedOver.Addn(uint64(len(carried)))
	// Carried datagrams go to the front: they are the oldest.
	for i := len(carried) - 1; i >= 0; i-- {
		m.queue.PushFront(carried[i])
	}
}

// Summary renders headline counters.
func (m *Manager) Summary() string {
	return fmt.Sprintf("passes=%d delivered=%d carried=%d dup=%d failures=%d pending=%d",
		m.Stats.Passes.Value(), m.Stats.Delivered.Value(), m.Stats.CarriedOver.Value(),
		m.Stats.Duplicates.Value(), m.Stats.Failures.Value(), m.queue.Len())
}

// PassesFromWindows converts orbital visibility windows (durations since
// epoch) into simulation-time passes 1:1.
func PassesFromWindows(starts, ends []sim.Duration) []Pass {
	if len(starts) != len(ends) {
		panic("session: mismatched window slices")
	}
	out := make([]Pass, len(starts))
	for i := range starts {
		out[i] = Pass{Start: sim.Time(starts[i]), End: sim.Time(ends[i])}
	}
	return out
}
