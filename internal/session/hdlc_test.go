package session

import (
	"testing"

	"repro/internal/arq"
	"repro/internal/hdlc"
	"repro/internal/sim"
)

// hdlcCfg binds the selective-repeat HDLC baseline to the Manager: the
// session layer must deliver exactly-once across pass boundaries without
// knowing which engine carries the traffic.
func hdlcCfg() Config {
	p := hdlc.Defaults(13 * sim.Millisecond)
	return Config{Engine: arq.MustEngine("srhdlc", p), Retarget: 10 * sim.Millisecond}
}

// TestHandoverOverHDLCSelectiveRepeat reruns the carry-over contract with
// the SR-HDLC baseline in place of LAMS-DLC: a pass too short to finish the
// transfer, a lossy channel, and the remainder crossing the gap — every
// datagram must still reach the application exactly once, in order.
func TestHandoverOverHDLCSelectiveRepeat(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(11)
	passes := []Pass{
		{Start: 0, End: sim.Time(60 * sim.Millisecond)}, // ~1 RTT of usable time
		{Start: sim.Time(500 * sim.Millisecond), End: sim.Time(8 * sim.Second)},
	}
	m := New(sched, hdlcCfg(), passes, factory(sched, rng, 0.1))
	var got collected
	m.OnDeliver = got.hook()
	const n = 400
	for i := 0; i < n; i++ {
		m.Send(make([]byte, 512))
	}
	sched.RunUntil(sim.Time(400 * sim.Millisecond))
	if m.Stats.CarriedOver.Value() == 0 {
		t.Fatal("nothing carried over: the first pass was long enough to finish")
	}
	sched.RunFor(8 * sim.Second)
	got.exactlyOnceInOrder(t, n)
	if m.Stats.Passes.Value() != 2 {
		t.Fatalf("passes = %d, want 2", m.Stats.Passes.Value())
	}
}
