package session

import (
	"testing"
	"time"

	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/lamsdlc"
	"repro/internal/orbit"
	"repro/internal/sim"
)

func testCfg() Config {
	p := lamsdlc.Defaults(13 * sim.Millisecond)
	p.CheckpointInterval = 5 * sim.Millisecond
	p.ProcTime = 10 * sim.Microsecond
	return Config{Engine: arq.MustEngine("lams", p), Retarget: 20 * sim.Millisecond}
}

func factory(sched *sim.Scheduler, rng *sim.RNG, pf float64) LinkFactory {
	return func(i int, p Pass) *channel.Link {
		return channel.NewLink(sched, channel.PipeConfig{
			RateBps: 100e6,
			Delay:   channel.ConstantDelay(6 * sim.Millisecond),
			IModel:  channel.FixedProb{P: pf},
			CModel:  channel.FixedProb{P: pf / 5},
		}, rng.Split())
	}
}

type collected struct {
	ids []uint64
}

func (c *collected) hook() func(sim.Time, arq.Datagram) {
	return func(_ sim.Time, dg arq.Datagram) { c.ids = append(c.ids, dg.ID) }
}

func (c *collected) exactlyOnceInOrder(t *testing.T, n int) {
	t.Helper()
	if len(c.ids) != n {
		t.Fatalf("delivered %d, want %d", len(c.ids), n)
	}
	for i, id := range c.ids {
		if id != uint64(i) {
			t.Fatalf("order broken at %d: id %d", i, id)
		}
	}
}

func TestSinglePassDeliversAll(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(1)
	passes := []Pass{{Start: 0, End: sim.Time(2 * sim.Second)}}
	m := New(sched, testCfg(), passes, factory(sched, rng, 0.1))
	var got collected
	m.OnDeliver = got.hook()
	const n = 200
	for i := 0; i < n; i++ {
		m.Send(make([]byte, 512))
	}
	sched.RunFor(2 * sim.Second)
	got.exactlyOnceInOrder(t, n)
	if m.Stats.Passes.Value() != 1 {
		t.Fatalf("passes = %d", m.Stats.Passes.Value())
	}
}

func TestRetargetOverheadDelaysTraffic(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(2)
	cfg := testCfg()
	cfg.Retarget = 100 * sim.Millisecond
	passes := []Pass{{Start: 0, End: sim.Time(sim.Second)}}
	m := New(sched, cfg, passes, factory(sched, rng, 0))
	var got collected
	m.OnDeliver = got.hook()
	m.Send([]byte("x"))
	sched.RunFor(90 * sim.Millisecond)
	if len(got.ids) != 0 {
		t.Fatal("delivered during retargeting")
	}
	if m.Active() {
		t.Fatal("pass active during retargeting")
	}
	sched.RunFor(sim.Second)
	got.exactlyOnceInOrder(t, 1)
}

func TestHandoverCarriesUnfinishedTraffic(t *testing.T) {
	// A pass too short to finish the transfer; the remainder must cross
	// the gap to the second pass and still arrive exactly once, in order.
	sched := sim.NewScheduler()
	rng := sim.NewRNG(3)
	cfg := testCfg()
	cfg.Retarget = 10 * sim.Millisecond
	passes := []Pass{
		{Start: 0, End: sim.Time(60 * sim.Millisecond)}, // ~1 RTT of usable time
		{Start: sim.Time(500 * sim.Millisecond), End: sim.Time(5 * sim.Second)},
	}
	m := New(sched, cfg, passes, factory(sched, rng, 0.1))
	var got collected
	m.OnDeliver = got.hook()
	const n = 400
	for i := 0; i < n; i++ {
		m.Send(make([]byte, 512))
	}
	// After pass 1 some must have been carried over.
	sched.RunUntil(sim.Time(400 * sim.Millisecond))
	if m.Stats.CarriedOver.Value() == 0 {
		t.Fatal("nothing carried over from the truncated pass")
	}
	if m.Active() {
		t.Fatal("pass 1 still active in the gap")
	}
	sched.RunFor(10 * sim.Second)
	got.exactlyOnceInOrder(t, n)
	if m.Stats.Passes.Value() != 2 {
		t.Fatalf("passes = %d", m.Stats.Passes.Value())
	}
	if m.Pending() != 0 {
		t.Fatalf("pending = %d after final pass", m.Pending())
	}
}

func TestCrossPassDuplicatesSuppressed(t *testing.T) {
	// End a pass abruptly right after frames arrive but before the sender
	// sees their checkpoint: those datagrams are delivered in pass 1 AND
	// carried over and re-sent in pass 2. The application must see each
	// exactly once.
	sched := sim.NewScheduler()
	rng := sim.NewRNG(4)
	cfg := testCfg()
	cfg.Retarget = 1 * sim.Millisecond
	passes := []Pass{
		// Usable ~14ms: one-way flight 6ms, so frames land ~7–9ms in, but
		// the first covering checkpoint would only reach the sender at
		// ~17ms — after the beam is gone. Everything delivered in pass 1
		// is also carried into pass 2.
		{Start: 0, End: sim.Time(15 * sim.Millisecond)},
		{Start: sim.Time(100 * sim.Millisecond), End: sim.Time(3 * sim.Second)},
	}
	m := New(sched, cfg, passes, factory(sched, rng, 0))
	var got collected
	m.OnDeliver = got.hook()
	const n = 50
	for i := 0; i < n; i++ {
		m.Send(make([]byte, 256))
	}
	sched.RunFor(5 * sim.Second)
	got.exactlyOnceInOrder(t, n)
	if m.Stats.Duplicates.Value() == 0 {
		t.Fatal("expected cross-pass duplicates to be created and suppressed")
	}
}

func TestSendDuringActivePassGoesDirect(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(5)
	passes := []Pass{{Start: 0, End: sim.Time(2 * sim.Second)}}
	m := New(sched, testCfg(), passes, factory(sched, rng, 0))
	var got collected
	m.OnDeliver = got.hook()
	sched.RunFor(100 * sim.Millisecond) // pass active
	if !m.Active() || m.CurrentPass() != 0 {
		t.Fatal("pass should be active")
	}
	m.Send([]byte("direct"))
	if m.Pending() != 0 {
		t.Fatal("datagram queued instead of entering the active pair")
	}
	sched.RunFor(sim.Second)
	got.exactlyOnceInOrder(t, 1)
}

func TestUnusablePassSkipped(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(6)
	cfg := testCfg()
	cfg.Retarget = 50 * sim.Millisecond
	passes := []Pass{
		{Start: 0, End: sim.Time(40 * sim.Millisecond)}, // shorter than retarget
		{Start: sim.Time(sim.Second), End: sim.Time(3 * sim.Second)},
	}
	m := New(sched, cfg, passes, factory(sched, rng, 0))
	var got collected
	m.OnDeliver = got.hook()
	m.Send([]byte("x"))
	sched.RunFor(500 * sim.Millisecond)
	if m.Stats.Passes.Value() != 0 {
		t.Fatal("unusable pass was started")
	}
	sched.RunFor(5 * sim.Second)
	got.exactlyOnceInOrder(t, 1)
}

func TestValidationPanics(t *testing.T) {
	sched := sim.NewScheduler()
	f := factory(sched, sim.NewRNG(7), 0)
	cases := map[string]func(){
		"bad protocol": func() {
			New(sched, Config{}, nil, f)
		},
		"negative retarget": func() {
			c := testCfg()
			c.Retarget = -1
			New(sched, c, nil, f)
		},
		"nil factory": func() {
			New(sched, testCfg(), nil, nil)
		},
		"degenerate pass": func() {
			New(sched, testCfg(), []Pass{{Start: 5, End: 5}}, f)
		},
		"overlapping passes": func() {
			New(sched, testCfg(), []Pass{{0, 10}, {5, 20}}, f)
		},
		"mismatched windows": func() {
			PassesFromWindows([]sim.Duration{1}, nil)
		},
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPassesFromWindows(t *testing.T) {
	ps := PassesFromWindows(
		[]sim.Duration{sim.Second, 3 * sim.Second},
		[]sim.Duration{2 * sim.Second, 4 * sim.Second})
	if len(ps) != 2 || ps[0].Start != sim.Time(sim.Second) || ps[1].End != sim.Time(4*sim.Second) {
		t.Fatalf("passes = %v", ps)
	}
	if ps[0].Duration() != sim.Second {
		t.Fatal("duration")
	}
	if (Pass{}).Duration() != 0 {
		t.Fatal("zero pass duration")
	}
}

func TestSummary(t *testing.T) {
	sched := sim.NewScheduler()
	m := New(sched, testCfg(), nil, factory(sched, sim.NewRNG(8), 0))
	if m.Summary() == "" {
		t.Fatal("summary")
	}
	if m.CurrentPass() != -1 {
		t.Fatal("no pass should be active")
	}
}

func TestSessionOverOrbitWindows(t *testing.T) {
	// End-to-end wiring with real geometry: take the first two visibility
	// windows of a crossing-plane pair, compress them 100x to keep the
	// event count testable, and push a transfer across the handover.
	ol := orbit.CrossPlanePair(1000e3, 60, 90, 0)
	windows := ol.Windows(3*ol.A.Period(), 10*time.Second)
	if len(windows) < 2 {
		t.Skip("fewer than two windows in horizon")
	}
	const compress = 100
	var starts, ends []sim.Duration
	for _, w := range windows[:2] {
		starts = append(starts, sim.Duration(w.Start/compress))
		ends = append(ends, sim.Duration(w.End/compress))
	}
	passes := PassesFromWindows(starts, ends)

	sched := sim.NewScheduler()
	rng := sim.NewRNG(9)
	cfg := testCfg()
	cfg.Retarget = 100 * sim.Millisecond
	m := New(sched, cfg, passes, func(i int, p Pass) *channel.Link {
		st := ol.Stats(windows[i], 10*time.Second)
		return channel.NewLink(sched, channel.PipeConfig{
			RateBps: 50e6,
			Delay:   channel.ConstantDelay(orbit.PropagationDelay(st.MidrangeM())),
			IModel:  channel.FixedProb{P: 0.05},
		}, rng.Split())
	})
	var got collected
	m.OnDeliver = got.hook()
	const n = 300
	for i := 0; i < n; i++ {
		m.Send(make([]byte, 512))
	}
	sched.RunUntil(passes[1].End)
	got.exactlyOnceInOrder(t, n)
}
