// Package resequence implements the destination-node service that LAMS-DLC's
// relaxed reliability model requires (§2.3): because the link layer delivers
// datagrams out of order — and, across enforced recoveries, possibly more
// than once — "the destination node now has responsibility to provide
// sequencing" and duplicate suppression for its users.
//
// The resequencer consumes datagrams keyed by per-source consecutive IDs and
// releases them to the application exactly once, in ID order. Its buffer
// occupancy is the destination-side cost the paper trades against the
// subnet-wide savings of removing the in-sequence constraint; experiments
// read it via Stats.
package resequence

import (
	"fmt"

	"repro/internal/arq"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Stats counts resequencer activity.
type Stats struct {
	Received   stats.Counter      // datagrams handed in by the DLC
	Released   stats.Counter      // datagrams released in order
	Duplicates stats.Counter      // suppressed duplicates
	Buffered   stats.TimeWeighted // reorder-buffer occupancy
	MaxGap     stats.Counter      // largest reorder distance observed
}

// Resequencer restores per-source FIFO order with duplicate suppression.
type Resequencer struct {
	next    uint64
	held    map[uint64]arq.Datagram
	release func(now sim.Time, dg arq.Datagram)
	// Window bounds the reorder buffer; zero means unbounded. When the
	// buffer is full the resequencer releases the lowest held datagram
	// out of strict order rather than deadlock (the DLC below guarantees
	// the gap will eventually fill, so this only triggers if the
	// destination under-provisions the buffer the paper sizes in §2.3).
	Window int

	Stats Stats
}

// New returns a resequencer releasing in-order datagrams via release.
func New(release func(now sim.Time, dg arq.Datagram)) *Resequencer {
	if release == nil {
		panic("resequence: nil release callback")
	}
	return &Resequencer{held: make(map[uint64]arq.Datagram), release: release}
}

// Next returns the next ID the resequencer is waiting for.
func (r *Resequencer) Next() uint64 { return r.next }

// Held returns the reorder-buffer occupancy.
func (r *Resequencer) Held() int { return len(r.held) }

// Push accepts one datagram from the DLC.
func (r *Resequencer) Push(now sim.Time, dg arq.Datagram) {
	r.Stats.Received.Inc()
	if dg.ID < r.next {
		r.Stats.Duplicates.Inc()
		return
	}
	if dg.ID == r.next && len(r.held) == 0 {
		// In order with nothing buffered — the overwhelming steady-state
		// case. Bypass the reorder buffer entirely: same observable
		// effects as the general path (one release, occupancy stays 0),
		// without the map insert/lookup/delete churn.
		r.next++
		r.Stats.Released.Inc()
		r.release(now, dg)
		r.Stats.Buffered.Update(int64(now), 0)
		return
	}
	if _, dup := r.held[dg.ID]; dup {
		r.Stats.Duplicates.Inc()
		return
	}
	if gap := dg.ID - r.next; gap > r.Stats.MaxGap.Value() {
		// Addn keeps Counter monotone; set via difference.
		r.Stats.MaxGap.Addn(gap - r.Stats.MaxGap.Value())
	}
	r.held[dg.ID] = dg
	r.drain(now)
	if r.Window > 0 && len(r.held) > r.Window {
		r.forceLowest(now)
	}
	r.Stats.Buffered.Update(int64(now), float64(len(r.held)))
}

// drain releases the contiguous prefix starting at next.
func (r *Resequencer) drain(now sim.Time) {
	for {
		dg, ok := r.held[r.next]
		if !ok {
			return
		}
		delete(r.held, r.next)
		r.next++
		r.Stats.Released.Inc()
		r.release(now, dg)
	}
}

// forceLowest skips the missing IDs below the lowest held datagram and
// releases forward from there — the overload escape hatch.
func (r *Resequencer) forceLowest(now sim.Time) {
	var lowest uint64
	first := true
	for id := range r.held {
		if first || id < lowest {
			lowest = id
			first = false
		}
	}
	if first {
		return
	}
	r.next = lowest
	r.drain(now)
}

// Flush releases everything held, in ID order, skipping gaps. Call at link
// teardown when the missing datagrams are known to be rerouted elsewhere.
func (r *Resequencer) Flush(now sim.Time) {
	for len(r.held) > 0 {
		r.forceLowest(now)
	}
}

// Summary renders headline counters.
func (r *Resequencer) Summary() string {
	return fmt.Sprintf("released=%d dup=%d held=%d maxgap=%d",
		r.Stats.Released.Value(), r.Stats.Duplicates.Value(), len(r.held), r.Stats.MaxGap.Value())
}
