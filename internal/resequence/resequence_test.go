package resequence

import (
	"testing"
	"testing/quick"

	"repro/internal/arq"
	"repro/internal/sim"
)

func collector() (*Resequencer, *[]uint64) {
	var out []uint64
	r := New(func(_ sim.Time, dg arq.Datagram) { out = append(out, dg.ID) })
	return r, &out
}

func TestInOrderPassThrough(t *testing.T) {
	r, out := collector()
	for i := uint64(0); i < 10; i++ {
		r.Push(0, arq.Datagram{ID: i})
	}
	if len(*out) != 10 {
		t.Fatalf("released %d", len(*out))
	}
	for i, id := range *out {
		if id != uint64(i) {
			t.Fatalf("order broken at %d", i)
		}
	}
	if r.Held() != 0 {
		t.Fatal("buffer not empty")
	}
}

func TestReordering(t *testing.T) {
	r, out := collector()
	for _, id := range []uint64{2, 0, 3, 1, 4} {
		r.Push(0, arq.Datagram{ID: id})
	}
	want := []uint64{0, 1, 2, 3, 4}
	if len(*out) != len(want) {
		t.Fatalf("released %v", *out)
	}
	for i := range want {
		if (*out)[i] != want[i] {
			t.Fatalf("released %v, want %v", *out, want)
		}
	}
	if r.Stats.MaxGap.Value() != 2 {
		t.Fatalf("max gap = %d, want 2", r.Stats.MaxGap.Value())
	}
}

func TestDuplicateSuppression(t *testing.T) {
	r, out := collector()
	r.Push(0, arq.Datagram{ID: 0})
	r.Push(0, arq.Datagram{ID: 0}) // dup of released
	r.Push(0, arq.Datagram{ID: 2})
	r.Push(0, arq.Datagram{ID: 2}) // dup of held
	r.Push(0, arq.Datagram{ID: 1})
	if got := r.Stats.Duplicates.Value(); got != 2 {
		t.Fatalf("duplicates = %d, want 2", got)
	}
	if len(*out) != 3 {
		t.Fatalf("released %v", *out)
	}
}

func TestExactlyOnceInOrderProperty(t *testing.T) {
	// Property: any permutation with arbitrary duplications releases each
	// ID exactly once, in order.
	f := func(seed uint16, n uint8, dupEvery uint8) bool {
		count := int(n%50) + 1
		rng := sim.NewRNG(uint64(seed))
		perm := rng.Perm(count)
		r, out := collector()
		for _, idx := range perm {
			r.Push(0, arq.Datagram{ID: uint64(idx)})
			if dupEvery > 0 && idx%int(dupEvery%7+1) == 0 {
				r.Push(0, arq.Datagram{ID: uint64(idx)}) // duplicate
			}
		}
		if len(*out) != count {
			return false
		}
		for i, id := range *out {
			if id != uint64(i) {
				return false
			}
		}
		return r.Held() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowOverflowForcesRelease(t *testing.T) {
	r, out := collector()
	r.Window = 3
	// ID 0 never arrives; 1..4 fill past the window.
	for _, id := range []uint64{1, 2, 3, 4} {
		r.Push(0, arq.Datagram{ID: id})
	}
	if len(*out) == 0 {
		t.Fatal("overflow did not force release")
	}
	if (*out)[0] != 1 {
		t.Fatalf("forced release started at %d, want 1", (*out)[0])
	}
	// Late arrival of 0 is now a stale duplicate.
	r.Push(0, arq.Datagram{ID: 0})
	if r.Stats.Duplicates.Value() != 1 {
		t.Fatal("late arrival below next not counted as duplicate")
	}
}

func TestFlush(t *testing.T) {
	r, out := collector()
	for _, id := range []uint64{5, 2, 9} {
		r.Push(0, arq.Datagram{ID: id})
	}
	if len(*out) != 0 {
		t.Fatal("nothing should be released yet")
	}
	r.Flush(0)
	want := []uint64{2, 5, 9}
	if len(*out) != 3 {
		t.Fatalf("flush released %v", *out)
	}
	for i := range want {
		if (*out)[i] != want[i] {
			t.Fatalf("flush order %v, want %v", *out, want)
		}
	}
	if r.Held() != 0 {
		t.Fatal("flush left datagrams")
	}
}

func TestSummaryAndNilCallback(t *testing.T) {
	r, _ := collector()
	r.Push(0, arq.Datagram{ID: 0})
	if r.Summary() == "" {
		t.Fatal("empty summary")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback accepted")
		}
	}()
	New(nil)
}
