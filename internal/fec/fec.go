// Package fec models the forward-error-correction layer that the paper's
// link model makes an integral part of the transmission medium (assumptions
// 4–5): laser intersatellite links run a codec below the DLC, and the DLC
// sees only the *residual* error process the codec fails to correct.
//
// The paper cites a convolutional codec with interleaving [10] delivering a
// residual BER of 1e-7; building that exact codec is unnecessary (and its
// details are not in the paper), so this package substitutes the closest
// synthetic equivalent that exercises the same code path:
//
//   - Hamming(7,4) single-error-correcting block code for I-frames,
//   - a triple-redundancy repetition code for control frames (assumption 4:
//     "another more powerful FEC is used to transmit control frames"),
//   - a block interleaver that converts burst errors into near-random
//     errors, reproducing the role of the interleaving code of [10],
//   - closed-form residual-error algebra used by the analysis and by the
//     channel model to derive P_F and P_C from a raw channel BER.
//
// The bit-level codecs are real (encode, corrupt, decode, correct) and are
// exercised by the live driver and tests; the simulation fast path uses the
// closed forms.
package fec

import (
	"fmt"
	"math"
	"strings"
)

// Scheme describes an error-correcting code by its combinatorial parameters,
// sufficient for residual-error-rate computation.
type Scheme struct {
	// Name identifies the scheme in reports.
	Name string
	// N and K are the block length and data length in bits.
	N, K int
	// T is the number of bit errors per block the code corrects.
	T int
}

// Overhead returns the expansion factor N/K applied to transmitted data.
func (s Scheme) Overhead() float64 {
	if s.K == 0 {
		return 1
	}
	return float64(s.N) / float64(s.K)
}

// BlockErrorProb returns the probability that a block of N code bits with
// independent bit error rate ber contains more than T errors, i.e. is
// uncorrectable.
func (s Scheme) BlockErrorProb(ber float64) float64 {
	if ber <= 0 {
		return 0
	}
	if ber >= 1 {
		return 1
	}
	// 1 - sum_{i=0..T} C(N,i) ber^i (1-ber)^(N-i), computed in log space
	// for numerical stability at small ber.
	var ok float64
	for i := 0; i <= s.T && i <= s.N; i++ {
		ok += math.Exp(logChoose(s.N, i) +
			float64(i)*math.Log(ber) +
			float64(s.N-i)*math.Log1p(-ber))
	}
	if ok > 1 {
		ok = 1
	}
	return 1 - ok
}

// ResidualBER approximates the post-decoding bit error rate: when a block is
// uncorrectable, roughly (T+1)/N of its data bits are wrong (the minimal
// uncorrectable pattern); correctable blocks come out clean.
func (s Scheme) ResidualBER(ber float64) float64 {
	pe := s.BlockErrorProb(ber)
	frac := float64(s.T+1) / float64(s.N)
	r := pe * frac
	if r > 1 {
		return 1
	}
	return r
}

// FrameErrorProb returns the probability that a frame of frameBits data bits,
// segmented into ceil(frameBits/K) blocks, is received in error: at least
// one uncorrectable block.
func (s Scheme) FrameErrorProb(ber float64, frameBits int) float64 {
	if frameBits <= 0 {
		return 0
	}
	blocks := (frameBits + s.K - 1) / s.K
	pb := s.BlockErrorProb(ber)
	// 1 - (1-pb)^blocks, stable for small pb.
	return -math.Expm1(float64(blocks) * math.Log1p(-pb))
}

// Uncoded is the no-FEC scheme: every bit error corrupts the frame.
var Uncoded = Scheme{Name: "uncoded", N: 1, K: 1, T: 0}

// Hamming74 is the single-error-correcting Hamming(7,4) code used for
// I-frames.
var Hamming74 = Scheme{Name: "hamming(7,4)", N: 7, K: 4, T: 1}

// Repetition3 is the rate-1/3 repetition code used for control frames: the
// "more powerful FEC" of link-model assumption 4. Majority vote corrects any
// single error per 3-bit group.
var Repetition3 = Scheme{Name: "repetition-3", N: 3, K: 1, T: 1}

// schemesByName resolves the flag/spec spelling of each scheme. Canonical
// names are the short ones the channel-model spec grammar uses
// ("fec=hamming74"); the Scheme.Name display strings are accepted as
// aliases so a spec can round-trip a rendered model description.
var schemesByName = map[string]Scheme{
	"none":         Uncoded,
	"uncoded":      Uncoded,
	"hamming74":    Hamming74,
	"hamming(7,4)": Hamming74,
	"rep3":         Repetition3,
	"repetition-3": Repetition3,
	"repetition3":  Repetition3,
}

// Names returns the canonical scheme names, sorted — the list an unknown
// name error shows.
func Names() []string { return []string{"hamming74", "none", "rep3"} }

// Named resolves a scheme by name (canonical or alias, case insensitive).
// Unknown names error, listing what exists — no silent default: the
// hardcoded per-CLI fallbacks this replaces were exactly the bug.
func Named(name string) (Scheme, error) {
	s, ok := schemesByName[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return Scheme{}, fmt.Errorf("fec: unknown scheme %q (known: %s)",
			name, strings.Join(Names(), ", "))
	}
	return s, nil
}

// logChoose returns ln C(n, k).
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return lgamma(n+1) - lgamma(k+1) - lgamma(n-k+1)
}

func lgamma(x int) float64 {
	v, _ := math.Lgamma(float64(x))
	return v
}

// FrameErrorProbUncoded returns 1-(1-ber)^bits, the frame error rate with no
// coding — the P_F/P_C the paper's analysis uses directly.
func FrameErrorProbUncoded(ber float64, bits int) float64 {
	if ber <= 0 || bits <= 0 {
		return 0
	}
	if ber >= 1 {
		return 1
	}
	return -math.Expm1(float64(bits) * math.Log1p(-ber))
}
