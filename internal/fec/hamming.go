package fec

// Bit-level Hamming(7,4) codec. Each 4-bit nibble of the input becomes a
// 7-bit codeword; the decoder corrects any single bit error per codeword and
// reports uncorrectable-looking blocks via the returned count of corrections
// (double errors miscorrect, as real Hamming does — the Scheme algebra
// accounts for that as residual errors).
//
// Layout: codeword bits [p1 p2 d1 p3 d2 d3 d4] with parity positions 1,2,4
// (1-indexed), the classic systematic-ish Hamming arrangement where the
// syndrome directly names the flipped position.

// hammingEncodeNibble maps a 4-bit value to its 7-bit codeword.
func hammingEncodeNibble(d byte) byte {
	d1 := d & 1
	d2 := (d >> 1) & 1
	d3 := (d >> 2) & 1
	d4 := (d >> 3) & 1
	p1 := d1 ^ d2 ^ d4
	p2 := d1 ^ d3 ^ d4
	p3 := d2 ^ d3 ^ d4
	// positions (1-indexed): 1=p1 2=p2 3=d1 4=p3 5=d2 6=d3 7=d4
	return p1 | p2<<1 | d1<<2 | p3<<3 | d2<<4 | d3<<5 | d4<<6
}

// hammingDecodeWord corrects a single-bit error in the 7-bit codeword and
// returns the 4-bit data plus whether a correction was applied.
func hammingDecodeWord(w byte) (data byte, corrected bool) {
	bit := func(pos uint) byte { return (w >> (pos - 1)) & 1 }
	s1 := bit(1) ^ bit(3) ^ bit(5) ^ bit(7)
	s2 := bit(2) ^ bit(3) ^ bit(6) ^ bit(7)
	s3 := bit(4) ^ bit(5) ^ bit(6) ^ bit(7)
	syndrome := s1 | s2<<1 | s3<<2
	if syndrome != 0 {
		w ^= 1 << (syndrome - 1)
		corrected = true
	}
	d1 := bit(3)
	d2 := bit(5)
	d3 := bit(6)
	d4 := bit(7)
	return d1 | d2<<1 | d3<<2 | d4<<3, corrected
}

// HammingEncode expands data into Hamming(7,4) codewords, one output byte
// per input nibble (the top bit of each output byte is unused padding; the
// wire expansion factor modelled by Scheme.Overhead is 7/4 in bits, and this
// byte-aligned layout trades density for simplicity in the live driver).
func HammingEncode(data []byte) []byte {
	out := make([]byte, 0, len(data)*2)
	for _, b := range data {
		out = append(out, hammingEncodeNibble(b&0x0F), hammingEncodeNibble(b>>4))
	}
	return out
}

// HammingDecode inverts HammingEncode, correcting up to one bit error per
// codeword. It returns the decoded bytes and the number of codewords that
// needed correction. Odd-length input drops the trailing half-byte.
func HammingDecode(code []byte) (data []byte, corrections int) {
	n := len(code) / 2
	data = make([]byte, n)
	for i := 0; i < n; i++ {
		lo, c1 := hammingDecodeWord(code[2*i] & 0x7F)
		hi, c2 := hammingDecodeWord(code[2*i+1] & 0x7F)
		data[i] = lo | hi<<4
		if c1 {
			corrections++
		}
		if c2 {
			corrections++
		}
	}
	return data, corrections
}

// RepetitionEncode triples every byte; majority vote per bit decodes it.
func RepetitionEncode(data []byte) []byte {
	out := make([]byte, 0, len(data)*3)
	for _, b := range data {
		out = append(out, b, b, b)
	}
	return out
}

// RepetitionDecode inverts RepetitionEncode by bitwise majority vote. It
// returns the decoded bytes and the number of bytes where any vote was not
// unanimous. Input length is truncated to a multiple of 3.
func RepetitionDecode(code []byte) (data []byte, corrections int) {
	n := len(code) / 3
	data = make([]byte, n)
	for i := 0; i < n; i++ {
		a, b, c := code[3*i], code[3*i+1], code[3*i+2]
		maj := (a & b) | (a & c) | (b & c)
		data[i] = maj
		if a != b || b != c {
			corrections++
		}
	}
	return data, corrections
}

// Interleaver is a block interleaver of the kind Paul et al. [10] propose to
// turn burst errors on a laser link into scattered, FEC-correctable random
// errors: bytes are written into a rows×cols matrix row-wise and read out
// column-wise. Deinterleaving restores the original order, so a burst of up
// to `rows` consecutive channel bytes lands at least `cols` apart after
// deinterleaving.
type Interleaver struct {
	rows, cols int
}

// NewInterleaver returns a block interleaver with the given matrix shape.
// Both dimensions must be positive.
func NewInterleaver(rows, cols int) *Interleaver {
	if rows <= 0 || cols <= 0 {
		panic("fec: interleaver dimensions must be positive")
	}
	return &Interleaver{rows: rows, cols: cols}
}

// BlockSize returns the interleaving block size in bytes.
func (il *Interleaver) BlockSize() int { return il.rows * il.cols }

// Depth returns the burst length (in bytes) the interleaver disperses: a
// burst of up to Depth consecutive bytes is spread so no two land in the
// same FEC block row.
func (il *Interleaver) Depth() int { return il.rows }

// Interleave permutes data block by block. The final partial block, if any,
// is passed through unpermuted (real systems pad; passing through keeps the
// transform length-preserving and invertible, which the property tests
// verify).
func (il *Interleaver) Interleave(data []byte) []byte {
	return il.permute(data, false)
}

// Deinterleave inverts Interleave.
func (il *Interleaver) Deinterleave(data []byte) []byte {
	return il.permute(data, true)
}

func (il *Interleaver) permute(data []byte, inverse bool) []byte {
	bs := il.BlockSize()
	out := make([]byte, len(data))
	i := 0
	for ; i+bs <= len(data); i += bs {
		block := data[i : i+bs]
		dst := out[i : i+bs]
		for r := 0; r < il.rows; r++ {
			for c := 0; c < il.cols; c++ {
				rowMajor := r*il.cols + c
				colMajor := c*il.rows + r
				if inverse {
					dst[rowMajor] = block[colMajor]
				} else {
					dst[colMajor] = block[rowMajor]
				}
			}
		}
	}
	copy(out[i:], data[i:])
	return out
}

// DisperseBurst reports the minimum separation (in bytes) after
// deinterleaving between any two bytes of a burst of length burstLen that
// was contiguous on the channel, for bursts within one block. It quantifies
// the interleaver's burst-randomization quality for the channel model.
func (il *Interleaver) DisperseBurst(burstLen int) int {
	if burstLen <= 1 {
		return il.BlockSize()
	}
	if burstLen > il.rows {
		// Burst wraps a column boundary: two burst bytes become adjacent.
		return 1
	}
	// Consecutive channel bytes within one column are `cols` apart in the
	// original order.
	return il.cols
}
