package fec

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestSchemeOverhead(t *testing.T) {
	if Uncoded.Overhead() != 1 {
		t.Fatalf("uncoded overhead = %v", Uncoded.Overhead())
	}
	if got := Hamming74.Overhead(); got != 1.75 {
		t.Fatalf("hamming overhead = %v, want 1.75", got)
	}
	if got := Repetition3.Overhead(); got != 3 {
		t.Fatalf("repetition overhead = %v, want 3", got)
	}
	if (Scheme{K: 0, N: 5}).Overhead() != 1 {
		t.Fatal("zero-K overhead should be 1")
	}
}

func TestBlockErrorProbEdges(t *testing.T) {
	for _, s := range []Scheme{Uncoded, Hamming74, Repetition3} {
		if p := s.BlockErrorProb(0); p != 0 {
			t.Fatalf("%s: P(0) = %v", s.Name, p)
		}
		if p := s.BlockErrorProb(1); p != 1 {
			t.Fatalf("%s: P(1) = %v", s.Name, p)
		}
		if p := s.BlockErrorProb(-0.5); p != 0 {
			t.Fatalf("%s: P(-) = %v", s.Name, p)
		}
	}
}

func TestBlockErrorProbHamming(t *testing.T) {
	// For Hamming(7,4) at BER p, uncorrectable = P(>=2 errors in 7 bits).
	p := 1e-3
	want := 0.0
	for i := 2; i <= 7; i++ {
		want += math.Exp(logChoose(7, i)) * math.Pow(p, float64(i)) * math.Pow(1-p, float64(7-i))
	}
	got := Hamming74.BlockErrorProb(p)
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("BlockErrorProb = %v, want %v", got, want)
	}
}

func TestCodingGain(t *testing.T) {
	// At small BER the coded schemes must beat uncoded by orders of
	// magnitude; this is the premise of assumption 4 (control frames on a
	// stronger code have much lower P_C).
	ber := 1e-5
	bits := 8192
	pUn := Uncoded.FrameErrorProb(ber, bits)
	pH := Hamming74.FrameErrorProb(ber, bits)
	pR := Repetition3.FrameErrorProb(ber, bits)
	if !(pH < pUn/10) {
		t.Fatalf("hamming gain too small: %v vs %v", pH, pUn)
	}
	if !(pR < pH) {
		t.Fatalf("repetition should beat hamming at this BER: %v vs %v", pR, pH)
	}
}

func TestFrameErrorProbMonotone(t *testing.T) {
	prev := 0.0
	for _, ber := range []float64{1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3} {
		p := Hamming74.FrameErrorProb(ber, 8192)
		if p < prev {
			t.Fatalf("frame error prob not monotone in BER: %v after %v", p, prev)
		}
		prev = p
	}
	prev = 0.0
	for _, bits := range []int{64, 512, 4096, 32768} {
		p := Hamming74.FrameErrorProb(1e-5, bits)
		if p < prev {
			t.Fatalf("frame error prob not monotone in size")
		}
		prev = p
	}
	if Hamming74.FrameErrorProb(1e-5, 0) != 0 {
		t.Fatal("zero-size frame should never error")
	}
}

func TestFrameErrorProbUncodedMatchesScheme(t *testing.T) {
	for _, ber := range []float64{0, 1e-7, 1e-4, 0.5, 1} {
		for _, bits := range []int{1, 100, 10000} {
			a := FrameErrorProbUncoded(ber, bits)
			b := Uncoded.FrameErrorProb(ber, bits)
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("ber=%v bits=%d: %v vs %v", ber, bits, a, b)
			}
		}
	}
}

func TestResidualBER(t *testing.T) {
	if Hamming74.ResidualBER(0) != 0 {
		t.Fatal("residual at 0")
	}
	r := Hamming74.ResidualBER(1e-4)
	if r <= 0 || r >= 1e-4 {
		t.Fatalf("residual BER = %v, want in (0, 1e-4)", r)
	}
	if Uncoded.ResidualBER(1) != 1 {
		t.Fatalf("uncoded residual at ber=1: %v", Uncoded.ResidualBER(1))
	}
}

func TestHammingRoundTripClean(t *testing.T) {
	data := []byte("The LAMS-DLC ARQ Protocol, CSE-91-03")
	code := HammingEncode(data)
	if len(code) != 2*len(data) {
		t.Fatalf("code length %d, want %d", len(code), 2*len(data))
	}
	got, corrections := HammingDecode(code)
	if corrections != 0 {
		t.Fatalf("clean decode reported %d corrections", corrections)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch")
	}
}

func TestHammingCorrectsSingleBitPerWord(t *testing.T) {
	data := []byte{0x00, 0xFF, 0xA5, 0x3C, 0x7B}
	code := HammingEncode(data)
	for wi := range code {
		for bit := 0; bit < 7; bit++ {
			mutated := append([]byte(nil), code...)
			mutated[wi] ^= 1 << bit
			got, corrections := HammingDecode(mutated)
			if !bytes.Equal(got, data) {
				t.Fatalf("word %d bit %d: decode mismatch", wi, bit)
			}
			if corrections != 1 {
				t.Fatalf("word %d bit %d: corrections = %d", wi, bit, corrections)
			}
		}
	}
}

func TestHammingRandomizedSingleErrors(t *testing.T) {
	rng := sim.NewRNG(99)
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		code := HammingEncode(data)
		// Flip one bit in each codeword.
		for i := range code {
			code[i] ^= 1 << uint(rng.Intn(7))
		}
		got, _ := HammingDecode(code)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRepetitionRoundTrip(t *testing.T) {
	data := []byte{0, 1, 2, 250, 255}
	code := RepetitionEncode(data)
	if len(code) != 3*len(data) {
		t.Fatalf("code length %d", len(code))
	}
	got, corrections := RepetitionDecode(code)
	if corrections != 0 || !bytes.Equal(got, data) {
		t.Fatal("clean repetition round trip failed")
	}
	// Corrupt one copy of each byte arbitrarily: majority vote fixes it.
	for i := 0; i < len(data); i++ {
		code[3*i+1] ^= 0xFF
	}
	got, corrections = RepetitionDecode(code)
	if !bytes.Equal(got, data) {
		t.Fatal("repetition failed to correct single-copy corruption")
	}
	if corrections != len(data) {
		t.Fatalf("corrections = %d, want %d", corrections, len(data))
	}
}

func TestInterleaverRoundTrip(t *testing.T) {
	f := func(data []byte, rows, cols uint8) bool {
		il := NewInterleaver(int(rows%16)+1, int(cols%16)+1)
		return bytes.Equal(il.Deinterleave(il.Interleave(data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleaverDispersesBursts(t *testing.T) {
	il := NewInterleaver(8, 16)
	n := il.BlockSize()
	data := make([]byte, n)
	inter := il.Interleave(data)
	// Corrupt a burst of 8 consecutive channel bytes.
	for i := 16; i < 24; i++ {
		inter[i] = 0xFF
	}
	back := il.Deinterleave(inter)
	// The corrupted positions in the original order must be >= cols apart.
	var hits []int
	for i, b := range back {
		if b == 0xFF {
			hits = append(hits, i)
		}
	}
	if len(hits) != 8 {
		t.Fatalf("expected 8 corrupted bytes, got %d", len(hits))
	}
	for i := 1; i < len(hits); i++ {
		if hits[i]-hits[i-1] < il.cols {
			t.Fatalf("burst bytes only %d apart after deinterleave", hits[i]-hits[i-1])
		}
	}
}

func TestInterleaverPartialBlockPassThrough(t *testing.T) {
	il := NewInterleaver(4, 4)
	data := []byte{1, 2, 3, 4, 5} // shorter than one block
	if !bytes.Equal(il.Interleave(data), data) {
		t.Fatal("partial block should pass through")
	}
}

func TestInterleaverDepthAndDisperse(t *testing.T) {
	il := NewInterleaver(8, 16)
	if il.Depth() != 8 {
		t.Fatalf("Depth = %d", il.Depth())
	}
	if il.DisperseBurst(1) != il.BlockSize() {
		t.Fatal("single byte burst should report block size")
	}
	if il.DisperseBurst(8) != 16 {
		t.Fatalf("DisperseBurst(8) = %d, want 16", il.DisperseBurst(8))
	}
	if il.DisperseBurst(9) != 1 {
		t.Fatal("over-depth burst should report adjacency")
	}
}

func TestInterleaverBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero dims should panic")
		}
	}()
	NewInterleaver(0, 4)
}

func TestEmpiricalHammingResidualMatchesAlgebra(t *testing.T) {
	// Monte-Carlo check: corrupt encoded bits at BER p, decode, and compare
	// the fraction of wrong codewords with Scheme.BlockErrorProb (decoded
	// errors include miscorrections, so compare against that upper bound's
	// order of magnitude).
	rng := sim.NewRNG(4242)
	const p = 0.01
	const words = 200000
	bad := 0
	for w := 0; w < words; w++ {
		nibble := byte(rng.Intn(16))
		cw := hammingEncodeNibble(nibble)
		for bit := 0; bit < 7; bit++ {
			if rng.Bernoulli(p) {
				cw ^= 1 << bit
			}
		}
		got, _ := hammingDecodeWord(cw & 0x7F)
		if got != nibble {
			bad++
		}
	}
	empirical := float64(bad) / words
	predicted := Hamming74.BlockErrorProb(p)
	if empirical < predicted/2 || empirical > predicted*2 {
		t.Fatalf("empirical word error %v vs predicted %v", empirical, predicted)
	}
}

func BenchmarkHammingEncode1K(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		HammingEncode(data)
	}
}

func BenchmarkFrameErrorProb(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Hamming74.FrameErrorProb(1e-6, 8192)
	}
}
