// Package analysis implements the closed-form performance model of the
// paper's Section 4: mean retransmission periods, transmission and
// retransmission period lengths, low- and high-traffic total delivery
// times, sender holding time, transparent buffer sizes, and throughput
// efficiency, for both LAMS-DLC and SR-HDLC.
//
// Each function's doc comment names the equation it reproduces. All
// computation is in float64 seconds; adapters convert to sim.Duration.
//
// One discrepancy in the paper is handled explicitly: the printed
// D_retrn^HDLC swaps the coefficients of α and (2·t_proc + t_c) relative to
// the derivation two lines above it (the resolve delay d_resol = R +
// 2t_proc + t_c occurs with probability (1−P_F)(1−P_C), the timeout delay
// d_retrn = t_out = R + α with the complement). HDLCVariant selects either
// the paper-as-printed form or the re-derived form; experiment E12 shows
// the paper's conclusions are insensitive to the choice.
package analysis

import (
	"fmt"
	"math"

	"repro/internal/fec"
	"repro/internal/sim"
)

// Params carries the symbols of Section 4.
type Params struct {
	// PF and PC are the I-frame and control-frame error probabilities.
	PF, PC float64
	// R is the mean round-trip time in seconds.
	R float64
	// Icp is the checkpoint interval W_cp (= I_cp) in seconds.
	Icp float64
	// Cdepth is the cumulation depth C_depth.
	Cdepth int
	// W is the SR-HDLC window size.
	W int
	// Tf and Tc are the I-frame and control-frame transmission times in
	// seconds.
	Tf, Tc float64
	// Tproc is the per-frame processing time in seconds.
	Tproc float64
	// Alpha is the HDLC timeout slack α = t_out − R in seconds.
	Alpha float64
}

// Validate reports the first nonsensical parameter.
func (p Params) Validate() error {
	switch {
	case p.PF < 0 || p.PF >= 1:
		return fmt.Errorf("analysis: PF %v outside [0,1)", p.PF)
	case p.PC < 0 || p.PC >= 1:
		return fmt.Errorf("analysis: PC %v outside [0,1)", p.PC)
	case p.R < 0 || p.Icp <= 0 || p.Tf <= 0 || p.Tc < 0 || p.Tproc < 0 || p.Alpha < 0:
		return fmt.Errorf("analysis: negative or zero timing parameter")
	case p.Cdepth < 1:
		return fmt.Errorf("analysis: Cdepth %d < 1", p.Cdepth)
	case p.W < 1:
		return fmt.Errorf("analysis: W %d < 1", p.W)
	}
	return nil
}

// HDLCVariant selects the D_retrn^HDLC form.
type HDLCVariant int

// Variants (see the package comment).
const (
	// PaperPrinted reproduces the formula exactly as printed in §4.
	PaperPrinted HDLCVariant = iota
	// Rederived composes d_resol and d_retrn with the probabilities the
	// paper's own derivation assigns them.
	Rederived
)

// String names the variant.
func (v HDLCVariant) String() string {
	if v == PaperPrinted {
		return "paper-printed"
	}
	return "re-derived"
}

// --- Retransmission probabilities and mean period counts -------------------

// PRLAMS is P_R^LAMS = P_F: a NAK-based scheme retransmits only when the
// I-frame itself was in error.
func (p Params) PRLAMS() float64 { return p.PF }

// PRHDLC is P_R^HDLC = P_F + P_C − P_F·P_C: positive-ack schemes also
// retransmit when the acknowledgement is lost.
func (p Params) PRHDLC() float64 { return p.PF + p.PC - p.PF*p.PC }

// SBarLAMS is s̄_LAMS = 1/(1−P_F), the mean number of periods to deliver an
// I-frame.
func (p Params) SBarLAMS() float64 { return 1 / (1 - p.PRLAMS()) }

// SBarHDLC is s̄_HDLC = 1/(1−(P_F+P_C−P_F·P_C)).
func (p Params) SBarHDLC() float64 { return 1 / (1 - p.PRHDLC()) }

// NBarCP is n̄_cp = 1/(1−P_C), the mean number of checkpoint commands needed
// to acknowledge an I-frame reliably.
func (p Params) NBarCP() float64 { return 1 / (1 - p.PC) }

// --- LAMS-DLC period lengths (§4) ------------------------------------------

// cpDelay is the checkpoint-related delay term (n̄_cp − ½)·I_cp that appears
// in every LAMS period: half an interval of expected wait to the next
// checkpoint plus (n̄_cp − 1) intervals for possibly lost checkpoints.
func (p Params) cpDelay() float64 { return (p.NBarCP() - 0.5) * p.Icp }

// DTransLAMS is D_trans^LAMS(N) = N·t_f + t_c + t_proc + R + (n̄_cp−½)·I_cp.
func (p Params) DTransLAMS(n int) float64 {
	return float64(n)*p.Tf + p.Tc + p.Tproc + p.R + p.cpDelay()
}

// DRetrnLAMS is D_retrn^LAMS = t_f + t_c + t_proc + R + (n̄_cp−½)·I_cp.
func (p Params) DRetrnLAMS() float64 { return p.DTransLAMS(1) }

// DLowLAMS is the mean total time for safe delivery of N I-frames in low
// traffic: D_trans^LAMS(N) + (s̄−1)·D_retrn^LAMS.
func (p Params) DLowLAMS(n int) float64 {
	return p.DTransLAMS(n) + (p.SBarLAMS()-1)*p.DRetrnLAMS()
}

// --- SR-HDLC period lengths (§4) -------------------------------------------

// DTransHDLC is D_trans^HDLC(W) = W·t_f + (1−P_C)(R+2t_proc+t_c) + P_C(R+α).
func (p Params) DTransHDLC(w int) float64 {
	return float64(w)*p.Tf +
		(1-p.PC)*(p.R+2*p.Tproc+p.Tc) +
		p.PC*(p.R+p.Alpha)
}

// DRetrnHDLC is the mean retransmission-period length.
//
// PaperPrinted: t_f + R + α(1−P_F−P_C+P_F·P_C) + (P_F+P_C−P_F·P_C)(2t_proc+t_c)
// Rederived:    t_f + R + α(P_F+P_C−P_F·P_C) + (1−P_F)(1−P_C)(2t_proc+t_c)
func (p Params) DRetrnHDLC(v HDLCVariant) float64 {
	success := (1 - p.PF) * (1 - p.PC) // this period resolves
	fail := 1 - success
	base := p.Tf + p.R
	if v == PaperPrinted {
		return base + p.Alpha*success + fail*(2*p.Tproc+p.Tc)
	}
	return base + p.Alpha*fail + success*(2*p.Tproc+p.Tc)
}

// DLowHDLC is D_low^HDLC(W) = D_trans^HDLC(W) + (s̄_HDLC−1)·D_retrn^HDLC.
func (p Params) DLowHDLC(w int, v HDLCVariant) float64 {
	return p.DTransHDLC(w) + (p.SBarHDLC()-1)*p.DRetrnHDLC(v)
}

// --- Holding time and transparent buffer size (§4) --------------------------

// HFrameLAMS is the mean sending-buffer holding time of an I-frame:
// H = s̄_LAMS · (R + t_f + t_c + t_proc + (n̄_cp−½)·I_cp).
func (p Params) HFrameLAMS() float64 {
	return p.SBarLAMS() * (p.R + p.Tf + p.Tc + p.Tproc + p.cpDelay())
}

// BLAMS is the transparent buffer size of LAMS-DLC in frames:
// B = H_frame/t_f + t_proc/t_f (sending buffer inflow during one holding
// time, plus the transparent receive buffer).
func (p Params) BLAMS() float64 {
	return p.HFrameLAMS()/p.Tf + p.Tproc/p.Tf
}

// BHDLC reports the SR-HDLC buffer for continuous operation: §4 proves
// there is no transparent sending-buffer size (the backlog grows without
// bound), so the function returns +Inf.
func (p Params) BHDLC() float64 { return math.Inf(1) }

// --- High-traffic totals (§4) -----------------------------------------------

// HoldingFrames is h = H_frame^LAMS / t_f, the holding time expressed in
// frame times — the subperiod capacity of the N_total recursion.
func (p Params) HoldingFrames() float64 { return p.HFrameLAMS() / p.Tf }

// NTotalLAMS evaluates the paper's subperiod recursion for the total number
// of transmissions (new + retransmitted) needed to move N new frames in
// high traffic. Each subperiod carries h frame slots; retransmissions of
// generation j occupy N_j·P_R^(i−j) slots of subperiod i; new admissions
// fill the rest. The printed closing equation is typographically garbled;
// this evaluation follows the construction, and in the P_R→0 limit returns
// exactly N, while for P_R>0 it approaches N·s̄ (the tail is flushed after
// admissions end). It also returns the number of subperiods used.
func (p Params) NTotalLAMS(n int) (total float64, subperiods int) {
	return nTotal(n, p.HoldingFrames(), p.PRLAMS())
}

// NTotalHDLCWindow evaluates the same recursion for one HDLC window: the
// total transmissions to resolve W frames with P_R^HDLC.
func (p Params) NTotalHDLCWindow() (total float64, subperiods int) {
	return nTotal(p.W, float64(p.W), p.PRHDLC())
}

func nTotal(n int, h, pr float64) (float64, int) {
	if n <= 0 {
		return 0, 0
	}
	if h < 1 {
		h = 1
	}
	remaining := float64(n)
	var gens []float64 // N_j, new frames admitted in generation j
	var total float64
	periods := 0
	for remaining > 0 || pendingRetx(gens, pr, periods) > 1e-9 {
		load := 0.0
		for j, nj := range gens {
			load += nj * math.Pow(pr, float64(periods-j))
		}
		slots := h - load
		if slots < 0 {
			slots = 0
		}
		admit := math.Min(slots, remaining)
		gens = append(gens, admit)
		remaining -= admit
		total += load + admit
		periods++
		if periods > 10_000_000 {
			break // defensive: pr pathologically close to 1
		}
	}
	return total, periods
}

func pendingRetx(gens []float64, pr float64, period int) float64 {
	if pr <= 0 {
		return 0
	}
	load := 0.0
	for j, nj := range gens {
		// Geometric tail of retransmissions still owed by generation j.
		steps := float64(period - j)
		load += nj * math.Pow(pr, steps) / (1 - pr)
	}
	return load
}

// DHighLAMS is the high-traffic total time for N frames:
// D_low^LAMS evaluated at the inflated transmission count N_total (§4).
func (p Params) DHighLAMS(n int) float64 {
	total, _ := p.NTotalLAMS(n)
	return p.DLowLAMS(int(math.Round(total)))
}

// DHighHDLC is m·D_low^HDLC(N_win) + D_low^HDLC(r_w) with m = ⌊N/W⌋,
// r_w = N mod W, and N_win the inflated per-window transmission count.
func (p Params) DHighHDLC(n int, v HDLCVariant) float64 {
	m := n / p.W
	rw := n % p.W
	nwin, _ := p.NTotalHDLCWindow()
	d := float64(m) * p.DLowHDLC(int(math.Round(nwin)), v)
	if rw > 0 {
		d += p.DLowHDLC(rw, v)
	}
	return d
}

// --- Throughput efficiency (§4 final equations) -----------------------------

// EtaLAMS is the high-traffic throughput efficiency of LAMS-DLC with the
// transparent buffer size: useful frame time over total time,
// N·t_f / D_high^LAMS(N) (dimensionless; 1.0 = the wire never idles or
// repeats).
func (p Params) EtaLAMS(n int) float64 {
	return float64(n) * p.Tf / p.DHighLAMS(n)
}

// EtaHDLC is the corresponding SR-HDLC efficiency N·t_f / D_high^HDLC(N).
func (p Params) EtaHDLC(n int, v HDLCVariant) float64 {
	return float64(n) * p.Tf / p.DHighHDLC(n, v)
}

// --- Inconsistency gap and numbering (§2.3, §3.3) ---------------------------

// InconsistencyGapLAMS is the bound on LAMS-DLC's protocol-state
// inconsistency window: the expected normal response time plus
// C_depth·I_cp.
func (p Params) InconsistencyGapLAMS() float64 {
	return p.R + p.Tc + p.Tproc + float64(p.Cdepth)*p.Icp
}

// ResolvingPeriod is R + ½·I_cp + C_depth·I_cp, the bound on a frame's
// unresolved lifetime (§3.3) and therefore on H_frame for numbering.
func (p Params) ResolvingPeriod() float64 {
	return p.R + 0.5*p.Icp + float64(p.Cdepth)*p.Icp
}

// NumberingSizeLAMS is the bound on simultaneously live sequence numbers:
// resolving period divided by the mean frame time.
func (p Params) NumberingSizeLAMS() float64 {
	return p.ResolvingPeriod() / p.Tf
}

// LinkFrameLength is §2.3's "maximum number of in-transit frames at a
// time": (D_link · T_data) / (V · L_frame), with distance in metres, rate
// in bits/s, and frame length in bits. GBN discards this many good frames
// per error in the worst case, which is the paper's argument against it on
// long fat links.
func LinkFrameLength(distanceM, rateBps float64, frameBits int) float64 {
	if frameBits <= 0 {
		return 0
	}
	const c = 2.99792458e8
	return distanceM * rateBps / (c * float64(frameBits))
}

// --- Parameter construction helpers -----------------------------------------

// Scenario describes a physical link; FromScenario converts it to analysis
// parameters using the FEC schemes of the link model (assumption 4).
type Scenario struct {
	// RateBps is the wire rate.
	RateBps float64
	// BER is the post-interleaving channel bit error rate.
	BER float64
	// FrameBytes and ControlBytes are wire sizes of I- and C-frames.
	FrameBytes, ControlBytes int
	// OneWay is the one-way propagation delay.
	OneWay sim.Duration
	// Icp, Cdepth, W, Tproc, Alpha mirror Params.
	Icp    sim.Duration
	Cdepth int
	W      int
	Tproc  sim.Duration
	Alpha  sim.Duration
	// IFEC and CFEC are the codec strengths; zero values mean
	// fec.Hamming74 for I-frames and fec.Repetition3 for control frames.
	IFEC, CFEC fec.Scheme
}

// FromScenario derives Params: P_F and P_C from the BER through the two FEC
// schemes, t_f and t_c from the rate.
func FromScenario(s Scenario) Params {
	ifec := s.IFEC
	if ifec.N == 0 {
		ifec = fec.Hamming74
	}
	cfec := s.CFEC
	if cfec.N == 0 {
		cfec = fec.Repetition3
	}
	return Params{
		PF:     ifec.FrameErrorProb(s.BER, s.FrameBytes*8),
		PC:     cfec.FrameErrorProb(s.BER, s.ControlBytes*8),
		R:      2 * s.OneWay.Seconds(),
		Icp:    s.Icp.Seconds(),
		Cdepth: s.Cdepth,
		W:      s.W,
		Tf:     float64(s.FrameBytes*8) / s.RateBps,
		Tc:     float64(s.ControlBytes*8) / s.RateBps,
		Tproc:  s.Tproc.Seconds(),
		Alpha:  s.Alpha.Seconds(),
	}
}

// Dur converts a seconds figure from this package to a sim.Duration.
func Dur(seconds float64) sim.Duration {
	return sim.Duration(seconds * float64(sim.Second))
}
