package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// baseParams mirrors the paper's environment: 4000 km link, 300 Mbps,
// 1 KiB frames, BER-driven error probabilities.
func baseParams() Params {
	return Params{
		PF:     0.05,
		PC:     0.005,
		R:      0.027, // ~4000 km round trip
		Icp:    0.010,
		Cdepth: 3,
		W:      64,
		Tf:     8192 / 300e6,
		Tc:     256 / 300e6,
		Tproc:  50e-6,
		Alpha:  0.013,
	}
}

func TestValidate(t *testing.T) {
	if err := baseParams().Validate(); err != nil {
		t.Fatalf("base params invalid: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.PF = -0.1 },
		func(p *Params) { p.PF = 1 },
		func(p *Params) { p.PC = 1.5 },
		func(p *Params) { p.Tf = 0 },
		func(p *Params) { p.Icp = 0 },
		func(p *Params) { p.Cdepth = 0 },
		func(p *Params) { p.W = 0 },
		func(p *Params) { p.Alpha = -1 },
	}
	for i, mut := range bad {
		p := baseParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRetransmissionProbabilities(t *testing.T) {
	p := baseParams()
	if p.PRLAMS() != p.PF {
		t.Fatal("P_R^LAMS must equal P_F")
	}
	want := p.PF + p.PC - p.PF*p.PC
	if math.Abs(p.PRHDLC()-want) > 1e-15 {
		t.Fatalf("P_R^HDLC = %v, want %v", p.PRHDLC(), want)
	}
	// The central claim of §2: pos-ack ARQ retransmits strictly more.
	if !(p.PRHDLC() > p.PRLAMS()) {
		t.Fatal("P_R^HDLC must exceed P_R^LAMS for PC > 0")
	}
	if !(p.SBarHDLC() > p.SBarLAMS()) {
		t.Fatal("s̄_HDLC must exceed s̄_LAMS")
	}
}

func TestSBarLimits(t *testing.T) {
	p := baseParams()
	p.PF, p.PC = 0, 0
	if p.SBarLAMS() != 1 || p.SBarHDLC() != 1 || p.NBarCP() != 1 {
		t.Fatal("error-free means exactly one period")
	}
	p.PF = 0.5
	if got := p.SBarLAMS(); got != 2 {
		t.Fatalf("s̄ at PF=0.5 = %v, want 2", got)
	}
}

func TestDTransLAMSComposition(t *testing.T) {
	p := baseParams()
	// D_trans(N) - D_trans(0) must be exactly N*t_f.
	d0 := p.DTransLAMS(0)
	d10 := p.DTransLAMS(10)
	if math.Abs(d10-d0-10*p.Tf) > 1e-15 {
		t.Fatal("transmission time term wrong")
	}
	// At PC=0, the cp delay is exactly Icp/2.
	q := p
	q.PC = 0
	want := q.Tc + q.Tproc + q.R + 0.5*q.Icp
	if math.Abs(q.DTransLAMS(0)-want) > 1e-15 {
		t.Fatalf("D_trans(0) = %v, want %v", q.DTransLAMS(0), want)
	}
	if q.DRetrnLAMS() != q.DTransLAMS(1) {
		t.Fatal("D_retrn must equal D_trans(1)")
	}
}

func TestDLowLAMSErrorFree(t *testing.T) {
	p := baseParams()
	p.PF, p.PC = 0, 0
	// s̄=1: no retransmission term at all.
	if math.Abs(p.DLowLAMS(10)-p.DTransLAMS(10)) > 1e-15 {
		t.Fatal("error-free D_low must equal D_trans")
	}
}

func TestDRetrnHDLCVariants(t *testing.T) {
	p := baseParams()
	printed := p.DRetrnHDLC(PaperPrinted)
	rederived := p.DRetrnHDLC(Rederived)
	// Both share t_f + R; they differ in how α and (2t_proc+t_c) are
	// weighted. With small error rates the printed form pays ~α·1, the
	// re-derived form ~α·P_R.
	if printed <= rederived {
		t.Fatalf("at small P the printed form should be larger: %v vs %v", printed, rederived)
	}
	// At zero errors: printed = tf+R+α, re-derived = tf+R+2tproc+tc.
	q := p
	q.PF, q.PC = 0, 0
	if math.Abs(q.DRetrnHDLC(PaperPrinted)-(q.Tf+q.R+q.Alpha)) > 1e-15 {
		t.Fatal("printed variant at P=0")
	}
	if math.Abs(q.DRetrnHDLC(Rederived)-(q.Tf+q.R+2*q.Tproc+q.Tc)) > 1e-15 {
		t.Fatal("re-derived variant at P=0")
	}
	if PaperPrinted.String() == Rederived.String() {
		t.Fatal("variant names")
	}
}

func TestHoldingTimeAndBufferScale(t *testing.T) {
	p := baseParams()
	h := p.HFrameLAMS()
	// Holding at least a round trip, and divergent as PF -> 1.
	if h < p.R {
		t.Fatalf("holding %v below round trip", h)
	}
	q := p
	q.PF = 0.9
	if q.HFrameLAMS() < 5*h {
		t.Fatal("holding must blow up with PF")
	}
	// B_LAMS is H/t_f + t_proc/t_f.
	want := h/p.Tf + p.Tproc/p.Tf
	if math.Abs(p.BLAMS()-want) > 1e-9 {
		t.Fatalf("B_LAMS = %v, want %v", p.BLAMS(), want)
	}
	if !math.IsInf(p.BHDLC(), 1) {
		t.Fatal("SR-HDLC has no transparent buffer size")
	}
}

func TestNTotalErrorFree(t *testing.T) {
	p := baseParams()
	p.PF, p.PC = 0, 0
	total, periods := p.NTotalLAMS(1000)
	if total != 1000 {
		t.Fatalf("error-free N_total = %v, want 1000", total)
	}
	h := p.HoldingFrames()
	wantPeriods := int(math.Ceil(1000 / h))
	if periods != wantPeriods {
		t.Fatalf("periods = %d, want %d", periods, wantPeriods)
	}
}

func TestNTotalApproachesNSBar(t *testing.T) {
	p := baseParams()
	for _, pf := range []float64{0.01, 0.1, 0.3} {
		q := p
		q.PF = pf
		const n = 5000
		total, _ := q.NTotalLAMS(n)
		want := float64(n) * q.SBarLAMS()
		if math.Abs(total-want)/want > 0.01 {
			t.Fatalf("PF=%v: N_total = %v, want ~%v", pf, total, want)
		}
	}
}

func TestNTotalZeroAndWindow(t *testing.T) {
	p := baseParams()
	if total, periods := p.NTotalLAMS(0); total != 0 || periods != 0 {
		t.Fatal("N_total(0)")
	}
	total, _ := p.NTotalHDLCWindow()
	want := float64(p.W) * p.SBarHDLC()
	if math.Abs(total-want)/want > 0.02 {
		t.Fatalf("window N_total = %v, want ~%v", total, want)
	}
}

func TestEfficiencyShapeClaims(t *testing.T) {
	p := baseParams()
	// Claim 1 (§4 conclusion): in high traffic LAMS-DLC beats SR-HDLC.
	const n = 10000
	etaL := p.EtaLAMS(n)
	etaH := p.EtaHDLC(n, PaperPrinted)
	if !(etaL > etaH) {
		t.Fatalf("η_LAMS %v must exceed η_HDLC %v", etaL, etaH)
	}
	// ...under either variant.
	if !(etaL > p.EtaHDLC(n, Rederived)) {
		t.Fatal("claim must hold for the re-derived variant too")
	}
	// Claim 2: η_LAMS increases with N (amortizing s̄R + δ).
	prev := 0.0
	for _, ni := range []int{100, 1000, 10000, 100000} {
		eta := p.EtaLAMS(ni)
		if eta < prev {
			t.Fatalf("η_LAMS not increasing at N=%d", ni)
		}
		prev = eta
	}
	// Sanity: efficiencies are in (0, 1].
	if etaL <= 0 || etaL > 1 || etaH <= 0 || etaH > 1 {
		t.Fatalf("efficiencies out of range: %v, %v", etaL, etaH)
	}
}

func TestEfficiencyDegradesWithBER(t *testing.T) {
	prev := 1.0
	for _, pf := range []float64{0.001, 0.01, 0.05, 0.2, 0.5} {
		p := baseParams()
		p.PF = pf
		eta := p.EtaLAMS(10000)
		if eta >= prev {
			t.Fatalf("η did not degrade at PF=%v", pf)
		}
		prev = eta
	}
}

func TestEfficiencyGapGrowsWithAlpha(t *testing.T) {
	// The paper: "it is likely that α >> n̄_cp in a highly changing
	// network", driving the HDLC disadvantage.
	p := baseParams()
	gapSmall := p.EtaLAMS(10000) - p.EtaHDLC(10000, PaperPrinted)
	q := p
	q.Alpha = 0.2 // 200 ms of timeout slack
	gapLarge := q.EtaLAMS(10000) - q.EtaHDLC(10000, PaperPrinted)
	if !(gapLarge > gapSmall) {
		t.Fatalf("gap should grow with α: %v vs %v", gapLarge, gapSmall)
	}
}

func TestInconsistencyGapAndNumbering(t *testing.T) {
	p := baseParams()
	ig := p.InconsistencyGapLAMS()
	want := p.R + p.Tc + p.Tproc + 3*p.Icp
	if math.Abs(ig-want) > 1e-15 {
		t.Fatalf("inconsistency gap = %v, want %v", ig, want)
	}
	rp := p.ResolvingPeriod()
	if math.Abs(rp-(p.R+0.5*p.Icp+3*p.Icp)) > 1e-15 {
		t.Fatalf("resolving period = %v", rp)
	}
	if p.NumberingSizeLAMS() != rp/p.Tf {
		t.Fatal("numbering size")
	}
}

func TestFromScenario(t *testing.T) {
	s := Scenario{
		RateBps:      300e6,
		BER:          1e-6,
		FrameBytes:   1024,
		ControlBytes: 32,
		OneWay:       13 * sim.Millisecond,
		Icp:          10 * sim.Millisecond,
		Cdepth:       3,
		W:            64,
		Tproc:        50 * sim.Microsecond,
		Alpha:        13 * sim.Millisecond,
	}
	p := FromScenario(s)
	if err := p.Validate(); err != nil {
		t.Fatalf("scenario params invalid: %v", err)
	}
	if math.Abs(p.Tf-1024*8/300e6) > 1e-18 {
		t.Fatalf("t_f = %v", p.Tf)
	}
	if math.Abs(p.R-0.026) > 1e-12 {
		t.Fatalf("R = %v", p.R)
	}
	// The stronger control FEC must yield P_C << P_F (assumption 4).
	if !(p.PC < p.PF/10) {
		t.Fatalf("P_C %v not much below P_F %v", p.PC, p.PF)
	}
	if Dur(0.5) != 500*sim.Millisecond {
		t.Fatal("Dur conversion")
	}
}

func TestNTotalProperty(t *testing.T) {
	// N_total >= N always, and monotone in N.
	f := func(nRaw uint16, pfRaw uint8) bool {
		n := int(nRaw%2000) + 1
		p := baseParams()
		p.PF = float64(pfRaw%60) / 100
		total, _ := p.NTotalLAMS(n)
		if total < float64(n)-1e-9 {
			return false
		}
		total2, _ := p.NTotalLAMS(n + 100)
		return total2 >= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLowTrafficComparisonMatchesPaperDiscussion(t *testing.T) {
	// §4: "the total period ... are nearly equivalent if s̄_LAMS equals
	// s̄_HDLC and α is small". Force that regime and check.
	p := baseParams()
	p.PC = 0 // s̄_HDLC == s̄_LAMS
	p.Alpha = 0
	p.Icp = 0.002 // the residual gap is the (n̄cp−½)·I_cp checkpoint wait
	n := 50
	dl := p.DLowLAMS(n)
	dh := p.DLowHDLC(n, PaperPrinted)
	if math.Abs(dl-dh)/dh > 0.05 {
		t.Fatalf("low-traffic totals should nearly match: %v vs %v", dl, dh)
	}
	// And with α large, HDLC is strictly worse even at low traffic.
	q := baseParams()
	q.Alpha = 0.2
	if !(q.DLowHDLC(n, PaperPrinted) > q.DLowLAMS(n)) {
		t.Fatal("large α should hurt HDLC at low traffic")
	}
}

func TestLinkFrameLength(t *testing.T) {
	// 4,000 km at 300 Mbps with 8,360-bit frames: ~478 frames in flight.
	got := LinkFrameLength(4e6, 300e6, 8360)
	if math.Abs(got-478.7)/478.7 > 0.01 {
		t.Fatalf("LinkFrameLength = %v, want ~478.7", got)
	}
	if LinkFrameLength(4e6, 300e6, 0) != 0 {
		t.Fatal("zero frame bits")
	}
	// The quantity §2.3 uses to argue GBN is hopeless on long fat links:
	// it grows linearly with both distance and rate.
	if !(LinkFrameLength(8e6, 300e6, 8360) > 1.9*got) {
		t.Fatal("not linear in distance")
	}
	if !(LinkFrameLength(4e6, 1e9, 8360) > 3*got) {
		t.Fatal("not linear in rate")
	}
}
