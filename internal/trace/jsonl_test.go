package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/sim"
)

// TestTapCopiesFrameAtAddTime is the regression test for the frame-pooling
// ownership contract: the channel layer recycles control and corrupted
// frames the instant the handler returns, so a tap that retained the *Frame
// (or any of its slices) would see its history rewritten by the next Send.
// The tap must copy everything it keeps at Add time.
func TestTapCopiesFrameAtAddTime(t *testing.T) {
	r := NewRecorder(8)
	tap := r.ChannelTap("A->B")
	f := frame.NewCheckpoint(7, 41, []uint32{1, 2, 3}, true, false)
	tap(sim.Time(5), "rx", f)

	// Poison: overwrite every field, exactly as frame.Put + frame.Get reuse
	// by an unrelated transmission would.
	*f = frame.Frame{Kind: frame.KindI, Seq: 9999, DatagramID: 4242, Payload: []byte("poison")}

	e := r.Events()[0]
	if e.Info == nil {
		t.Fatal("tap recorded no structured frame info")
	}
	want := FrameInfo{Kind: "CP", Serial: 7, Ack: 41, NAKs: 3, Bits: e.Info.Bits, StopGo: true}
	if *e.Info != want {
		t.Fatalf("recorded info %+v, want %+v (poisoned frame leaked through)", *e.Info, want)
	}
	if !strings.Contains(e.Frame, "CP") || strings.Contains(e.Frame, "9999") {
		t.Fatalf("recorded frame string %q reflects the poisoned frame", e.Frame)
	}
}

// TestTapSurvivesPoolRecycling drives the real pipeline: a control frame
// through a pipe (whose in-flight copy is pooled and recycled after the
// handler returns), then poisons recycled pool objects and checks the
// recorded events are bit-identical.
func TestTapSurvivesPoolRecycling(t *testing.T) {
	r := NewRecorder(16)
	sched := sim.NewScheduler()
	p := channel.NewPipe(sched, channel.PipeConfig{Tap: r.ChannelTap("x")}, sim.NewRNG(3))
	p.SetHandler(func(sim.Time, *frame.Frame) {})
	p.Send(frame.NewCheckpoint(9, 100, []uint32{5}, false, true))
	sched.Run() // delivery fires; the pipe recycles its in-flight copy

	before := r.Events()
	// Drain the pool and poison everything in it: one of these objects is
	// the recycled in-flight copy the tap saw.
	var drained []*frame.Frame
	for i := 0; i < 64; i++ {
		g := frame.Get()
		*g = frame.Frame{Kind: frame.KindI, Seq: 0xBAD, DatagramID: 0xBAD, Serial: 0xBAD}
		drained = append(drained, g)
	}
	after := r.Events()
	for _, g := range drained {
		frame.Put(g)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("recorded events changed after pool recycling:\nbefore %+v\nafter  %+v", before, after)
	}
}

func TestJSONLStreamsEvents(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	tap := j.ChannelTap("A->B")
	f := frame.NewI(3, 77, []byte("abcd"))
	tap(sim.Time(1500), "tx", f)
	j.Note(sim.Time(2000), "sender", "recovery #%d", 2)

	if j.Err() != nil {
		t.Fatalf("unexpected error: %v", j.Err())
	}
	if j.Count() != 2 {
		t.Fatalf("count = %d, want 2", j.Count())
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	if lines[0]["kind"] != "TX" || lines[0]["at_ns"] != float64(1500) {
		t.Fatalf("first line = %v", lines[0])
	}
	fr, ok := lines[0]["frame"].(map[string]any)
	if !ok || fr["seq"] != float64(3) || fr["datagram_id"] != float64(77) {
		t.Fatalf("frame field = %v", lines[0]["frame"])
	}
	if lines[1]["kind"] != "PROTO" || lines[1]["note"] != "recovery #2" {
		t.Fatalf("second line = %v", lines[1])
	}
	if _, has := lines[1]["frame"]; has {
		t.Fatal("protocol note carries a frame field")
	}
}

func TestJSONLFilter(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Filter = func(e Event) bool { return e.Kind == KindDrop }
	j.Add(Event{Kind: KindTx})
	j.Add(Event{Kind: KindDrop})
	if j.Count() != 1 {
		t.Fatalf("count = %d, want 1 (filter not applied)", j.Count())
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, errors.New("disk full")
}

func TestJSONLStickyError(t *testing.T) {
	w := &failWriter{}
	j := NewJSONL(w)
	j.Add(Event{Kind: KindTx})
	j.Add(Event{Kind: KindTx})
	j.Add(Event{Kind: KindTx})
	if j.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	if j.Count() != 0 {
		t.Fatalf("count = %d after failed writes", j.Count())
	}
	if w.n != 1 {
		t.Fatalf("writer called %d times; error is not sticky", w.n)
	}
}

func TestJSONLNilSafety(t *testing.T) {
	var j *JSONL
	j.Add(Event{Kind: KindTx})
	j.Note(0, "x", "y")
	if j.Count() != 0 || j.Err() != nil {
		t.Fatal("nil JSONL not inert")
	}
	if j.ChannelTap("x") != nil {
		t.Fatal("nil JSONL tap should be nil")
	}
	var r *Recorder
	if r.ChannelTap("x") != nil {
		t.Fatal("nil Recorder tap should be nil")
	}
}

func TestRecorderWriteJSONL(t *testing.T) {
	r := NewRecorder(8)
	tap := r.ChannelTap("B->A")
	tap(sim.Time(10), "drop", frame.NewRequestNAK(4))
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("%q: %v", buf.String(), err)
	}
	if m["kind"] != "DROP" || m["where"] != "B->A" {
		t.Fatalf("line = %v", m)
	}
	fr := m["frame"].(map[string]any)
	if fr["kind"] != "REQNAK" || fr["serial"] != float64(4) {
		t.Fatalf("frame = %v", fr)
	}
}
