// Package trace records protocol events for debugging and for the CLI's
// --trace output: a fixed-capacity ring of structured events with
// deterministic ordering (virtual time, then insertion), cheap enough to
// leave compiled into the hot path.
//
// The channel layer exposes a Tap hook per pipe; Recorder implements it and
// can also be fed protocol-level events (recoveries, releases, failures).
package trace

import (
	"fmt"
	"strings"

	"repro/internal/frame"
	"repro/internal/sim"
)

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	KindTx      Kind = iota // frame entered the wire
	KindRx                  // frame delivered to the far end
	KindDrop                // frame lost (link down / no handler)
	KindCorrupt             // frame marked corrupted by the channel
	KindProto               // protocol-level note (recovery, release, ...)
)

var kindNames = [...]string{"TX", "RX", "DROP", "CORRUPT", "PROTO"}

// String returns the event-kind mnemonic.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// FrameInfo is a structured summary of a frame, with every field copied out
// of the *frame.Frame at tap time. The copy is what makes retaining an Event
// safe under the channel layer's ownership contract: the pipe recycles
// control and corrupted frames the moment the handler returns, so a tap must
// never keep the pointer (see channel.Handler and the poisoning regression
// test in this package).
type FrameInfo struct {
	Kind       string `json:"kind"`
	Seq        uint32 `json:"seq"`
	Ack        uint32 `json:"ack,omitempty"`
	Serial     uint32 `json:"serial,omitempty"`
	NAKs       int    `json:"naks,omitempty"`
	Bits       int    `json:"bits"`
	DatagramID uint64 `json:"datagram_id,omitempty"`
	StopGo     bool   `json:"stop_go,omitempty"`
	Enforced   bool   `json:"enforced,omitempty"`
	Final      bool   `json:"final,omitempty"`
	Corrupted  bool   `json:"corrupted,omitempty"`
}

// infoOf copies the loggable fields of f. The returned struct shares no
// memory with the frame.
func infoOf(f *frame.Frame) *FrameInfo {
	return &FrameInfo{
		Kind:       f.Kind.String(),
		Seq:        f.Seq,
		Ack:        f.Ack,
		Serial:     f.Serial,
		NAKs:       len(f.NAKs),
		Bits:       f.Bits(),
		DatagramID: f.DatagramID,
		StopGo:     f.StopGo,
		Enforced:   f.Enforced,
		Final:      f.Final,
		Corrupted:  f.Corrupted,
	}
}

// kindFromChannelEvent maps the channel layer's tap event strings onto
// trace kinds.
func kindFromChannelEvent(event string) Kind {
	switch event {
	case "tx":
		return KindTx
	case "rx":
		return KindRx
	case "drop":
		return KindDrop
	case "corrupt":
		return KindCorrupt
	}
	return KindProto
}

// Event is one recorded occurrence.
type Event struct {
	At   sim.Time
	Kind Kind
	// Where identifies the pipe or entity ("A->B", "sender", ...).
	Where string
	// Frame summarizes the frame involved, if any.
	Frame string
	// Info holds the structured frame summary (nil for protocol notes).
	Info *FrameInfo
	// Note carries protocol-level detail.
	Note string
}

// String renders one line.
func (e Event) String() string {
	parts := []string{fmt.Sprintf("%-12v %-7s %-6s", e.At, e.Kind, e.Where)}
	if e.Frame != "" {
		parts = append(parts, e.Frame)
	}
	if e.Note != "" {
		parts = append(parts, e.Note)
	}
	return strings.Join(parts, " ")
}

// Recorder is a fixed-capacity ring buffer of events. The zero value is
// disabled (capacity 0, every Add dropped); construct with NewRecorder.
type Recorder struct {
	ring  []Event
	next  int
	count uint64
	// Filter, when non-nil, drops events for which it returns false.
	Filter func(Event) bool
}

// NewRecorder returns a recorder keeping the most recent capacity events.
func NewRecorder(capacity int) *Recorder {
	if capacity < 0 {
		capacity = 0
	}
	return &Recorder{ring: make([]Event, 0, capacity)}
}

// Add records an event (subject to Filter).
func (r *Recorder) Add(e Event) {
	if cap(r.ring) == 0 {
		return
	}
	if r.Filter != nil && !r.Filter(e) {
		return
	}
	r.count++
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, e)
		return
	}
	r.ring[r.next] = e
	r.next = (r.next + 1) % cap(r.ring)
}

// Total returns the number of events offered and kept (before overwrite).
func (r *Recorder) Total() uint64 { return r.count }

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	if len(r.ring) < cap(r.ring) {
		return append([]Event(nil), r.ring...)
	}
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Dump renders the retained events, one per line.
func (r *Recorder) Dump() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// PipeTap returns a tap function for a channel pipe direction label that
// records TX/RX/corruption events into the recorder.
func (r *Recorder) PipeTap(where string) func(now sim.Time, kind Kind, f *frame.Frame) {
	return func(now sim.Time, kind Kind, f *frame.Frame) {
		e := Event{At: now, Kind: kind, Where: where}
		if f != nil {
			e.Frame = f.String()
			e.Info = infoOf(f)
		}
		r.Add(e)
	}
}

// Note records a protocol-level event.
func (r *Recorder) Note(now sim.Time, where, format string, args ...any) {
	r.Add(Event{At: now, Kind: KindProto, Where: where, Note: fmt.Sprintf(format, args...)})
}

// ChannelTap adapts the recorder to the channel layer's tap signature for
// one pipe direction.
func (r *Recorder) ChannelTap(where string) func(now sim.Time, event string, f *frame.Frame) {
	if r == nil {
		return nil
	}
	return func(now sim.Time, event string, f *frame.Frame) {
		e := Event{At: now, Kind: kindFromChannelEvent(event), Where: where}
		if f != nil {
			e.Frame = f.String()
			e.Info = infoOf(f)
		}
		r.Add(e)
	}
}
