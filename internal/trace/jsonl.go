package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/frame"
	"repro/internal/sim"
)

// jsonEvent is the wire schema of one JSONL trace line. Virtual time is
// exported in nanoseconds since the run epoch; the human-readable Frame
// string of the in-memory Event is dropped in favour of the structured
// summary.
type jsonEvent struct {
	AtNS  int64      `json:"at_ns"`
	Kind  string     `json:"kind"`
	Where string     `json:"where"`
	Frame *FrameInfo `json:"frame,omitempty"`
	Note  string     `json:"note,omitempty"`
}

func toJSONEvent(e Event) jsonEvent {
	return jsonEvent{
		AtNS:  int64(e.At),
		Kind:  e.Kind.String(),
		Where: e.Where,
		Frame: e.Info,
		Note:  e.Note,
	}
}

// JSONL streams trace events to a writer, one JSON object per line, as they
// happen — unlike Recorder it retains nothing, so a full run's trace can be
// exported without bounding its length. Frame fields are copied at Add time
// (FrameInfo), preserving the channel layer's ownership contract.
//
// Write errors are sticky: the first one is kept (Err) and all later events
// are dropped, so a simulation never fails mid-run because its trace file
// did.
type JSONL struct {
	enc *json.Encoder
	n   uint64
	err error
	// Filter, when non-nil, drops events for which it returns false.
	Filter func(Event) bool
}

// NewJSONL returns an exporter writing to w. The caller owns w's lifetime
// (flush/close); JSONL only writes.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Add exports one event (subject to Filter).
func (j *JSONL) Add(e Event) {
	if j == nil || j.err != nil {
		return
	}
	if j.Filter != nil && !j.Filter(e) {
		return
	}
	if err := j.enc.Encode(toJSONEvent(e)); err != nil {
		j.err = err
		return
	}
	j.n++
}

// Count returns the number of events successfully written.
func (j *JSONL) Count() uint64 {
	if j == nil {
		return 0
	}
	return j.n
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error {
	if j == nil {
		return nil
	}
	return j.err
}

// ChannelTap adapts the exporter to the channel layer's tap signature for
// one pipe direction.
func (j *JSONL) ChannelTap(where string) func(now sim.Time, event string, f *frame.Frame) {
	if j == nil {
		return nil
	}
	return func(now sim.Time, event string, f *frame.Frame) {
		e := Event{At: now, Kind: kindFromChannelEvent(event), Where: where}
		if f != nil {
			e.Info = infoOf(f)
		}
		j.Add(e)
	}
}

// Note exports a protocol-level event.
func (j *JSONL) Note(now sim.Time, where, format string, args ...any) {
	j.Add(Event{At: now, Kind: KindProto, Where: where, Note: fmt.Sprintf(format, args...)})
}

// WriteJSONL exports the recorder's retained events (oldest first) in the
// same schema the streaming exporter writes.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range r.Events() {
		if err := enc.Encode(toJSONEvent(e)); err != nil {
			return err
		}
	}
	return nil
}
