package trace

import (
	"strings"
	"testing"

	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/sim"
)

func TestRingKeepsMostRecent(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.Add(Event{At: sim.Time(i), Note: string(rune('a' + i))})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("kept %d", len(evs))
	}
	for i, want := range []sim.Time{2, 3, 4} {
		if evs[i].At != want {
			t.Fatalf("events = %v", evs)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestRingUnderCapacity(t *testing.T) {
	r := NewRecorder(10)
	r.Add(Event{At: 1})
	r.Add(Event{At: 2})
	evs := r.Events()
	if len(evs) != 2 || evs[0].At != 1 || evs[1].At != 2 {
		t.Fatalf("events = %v", evs)
	}
}

func TestZeroAndNegativeCapacity(t *testing.T) {
	var zero Recorder
	zero.Add(Event{At: 1})
	if len(zero.Events()) != 0 {
		t.Fatal("zero recorder retained events")
	}
	neg := NewRecorder(-5)
	neg.Add(Event{At: 1})
	if len(neg.Events()) != 0 {
		t.Fatal("negative capacity retained events")
	}
}

func TestFilter(t *testing.T) {
	r := NewRecorder(10)
	r.Filter = func(e Event) bool { return e.Kind == KindCorrupt }
	r.Add(Event{Kind: KindTx})
	r.Add(Event{Kind: KindCorrupt})
	if len(r.Events()) != 1 || r.Events()[0].Kind != KindCorrupt {
		t.Fatal("filter not applied")
	}
}

func TestEventAndKindStrings(t *testing.T) {
	e := Event{At: sim.Time(sim.Millisecond), Kind: KindRx, Where: "A->B", Frame: "I seq=1", Note: "x"}
	s := e.String()
	for _, want := range []string{"RX", "A->B", "I seq=1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event string %q missing %q", s, want)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind string")
	}
}

func TestNoteAndDump(t *testing.T) {
	r := NewRecorder(4)
	r.Note(sim.Time(5), "sender", "enforced recovery #%d", 1)
	d := r.Dump()
	if !strings.Contains(d, "enforced recovery #1") || !strings.Contains(d, "PROTO") {
		t.Fatalf("dump = %q", d)
	}
}

func TestChannelTapIntegration(t *testing.T) {
	r := NewRecorder(64)
	sched := sim.NewScheduler()
	p := channel.NewPipe(sched, channel.PipeConfig{
		IModel: channel.FixedProb{P: 1}, // corrupt everything
		Tap:    r.ChannelTap("A->B"),
	}, sim.NewRNG(1))
	p.SetHandler(func(sim.Time, *frame.Frame) {})
	p.Send(frame.NewI(1, 1, []byte("x")))
	sched.Run()
	var haveTx, haveCorrupt, haveRx bool
	for _, e := range r.Events() {
		switch e.Kind {
		case KindTx:
			haveTx = true
		case KindCorrupt:
			haveCorrupt = true
		case KindRx:
			haveRx = true
		}
		if e.Where != "A->B" {
			t.Fatalf("where = %q", e.Where)
		}
	}
	if !haveTx || !haveCorrupt || !haveRx {
		t.Fatalf("missing events: tx=%v corrupt=%v rx=%v\n%s", haveTx, haveCorrupt, haveRx, r.Dump())
	}
}

func TestChannelTapDropOnDeadLink(t *testing.T) {
	r := NewRecorder(16)
	sched := sim.NewScheduler()
	p := channel.NewPipe(sched, channel.PipeConfig{Tap: r.ChannelTap("x")}, sim.NewRNG(2))
	p.SetDown(true)
	p.Send(frame.NewI(1, 1, nil))
	sched.Run()
	found := false
	for _, e := range r.Events() {
		if e.Kind == KindDrop {
			found = true
		}
	}
	if !found {
		t.Fatalf("no drop event:\n%s", r.Dump())
	}
}

func TestPipeTapDirect(t *testing.T) {
	r := NewRecorder(4)
	tap := r.PipeTap("B->A")
	tap(sim.Time(1), KindTx, frame.NewRequestNAK(9))
	tap(sim.Time(2), KindRx, nil)
	evs := r.Events()
	if len(evs) != 2 || !strings.Contains(evs[0].Frame, "REQNAK") || evs[1].Frame != "" {
		t.Fatalf("events = %v", evs)
	}
}
