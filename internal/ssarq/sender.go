package ssarq

import (
	"sort"

	"repro/internal/arq"
	"repro/internal/frame"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// lane is one stop-and-wait channel. Its entire per-flight state is the
// (label, token) pair packed into seq — which is exactly what makes the
// lane self-stabilizing: any corruption of that state is indistinguishable
// from a renumbering retransmission, and the exact-echo release rule plus
// the periodic retransmission timer repair it within one round trip.
type lane struct {
	busy    bool
	label   uint32 // alternating label, mod labelMod
	token   uint32 // fresh pseudo-random draw per load
	seq     uint32 // Pack(label, slot, token), cached
	dg      arq.Datagram
	firstTx sim.Time
	lastTx  sim.Time
	loadSeq uint64 // monotone load order, for oldest-first Reclaim
}

// Sender is the A-side endpoint: it spreads submitted datagrams over the
// configured lanes, retransmits every busy lane each RetxInterval, and
// releases a lane only on an exact echo of its current packed sequence
// value. It never declares link failure (see the package comment).
type Sender struct {
	sched *sim.Scheduler
	wire  arq.Wire
	cfg   Config
	m     *arq.Metrics
	probe *arq.Probe
	instr senderInstr

	lanes   []lane
	queue   []arq.Datagram
	qhead   int
	nbusy   int
	loadCtr uint64
	tokCtr  uint64
	started bool
	stopped bool
}

type senderInstr struct {
	retx      *metrics.Counter // ssarq_retransmissions_total
	staleAcks *metrics.Counter // ssarq_stale_acks_total: well-formed acks not matching any live lane value
	lanesBusy *metrics.Gauge   // ssarq_lanes_busy
}

func newSenderInstr(reg *metrics.Registry) senderInstr {
	return senderInstr{
		retx:      reg.Counter("ssarq_retransmissions_total"),
		staleAcks: reg.Counter("ssarq_stale_acks_total"),
		lanesBusy: reg.Gauge("ssarq_lanes_busy"),
	}
}

// NewSender builds the sending endpoint. onFailure is accepted for engine
// contract parity but never invoked: SS-ARQ has no failure declaration.
func NewSender(sched *sim.Scheduler, wire arq.Wire, cfg Config, m *arq.Metrics, _ arq.FailureFunc) *Sender {
	if err := cfg.Validate(); err != nil {
		panic("ssarq: invalid config: " + err.Error())
	}
	return &Sender{
		sched: sched,
		wire:  wire,
		cfg:   cfg,
		m:     m,
		instr: newSenderInstr(cfg.Metrics),
		lanes: make([]lane, cfg.Slots),
	}
}

// SetProbe installs the transition observer; nil detaches.
func (s *Sender) SetProbe(p *arq.Probe) { s.probe = p }

// Start arms the retransmission scanner. The scan period is half the
// retransmission interval so a lane is never more than RetxInterval/2
// late, which the ConvergenceSlack default absorbs.
func (s *Sender) Start() {
	if s.started {
		return
	}
	s.started = true
	s.sched.ScheduleAfterDetached(s.scanPeriod(), s.tick)
}

func (s *Sender) scanPeriod() sim.Duration {
	p := s.cfg.RetxInterval / 2
	if p <= 0 {
		p = s.cfg.RetxInterval
	}
	return p
}

func (s *Sender) tick() {
	if s.stopped {
		return
	}
	now := s.sched.Now()
	for i := range s.lanes {
		ln := &s.lanes[i]
		if ln.busy && now.Sub(ln.lastTx) >= s.cfg.RetxInterval {
			s.retransmit(ln, now)
		}
	}
	s.sched.ScheduleAfterDetached(s.scanPeriod(), s.tick)
}

// Enqueue accepts a datagram: straight into a free lane if one exists,
// otherwise the FIFO queue.
func (s *Sender) Enqueue(dg arq.Datagram) bool {
	if s.stopped {
		return false
	}
	if s.cfg.BufferLimit > 0 && s.Outstanding() >= s.cfg.BufferLimit {
		return false
	}
	s.m.Submitted.Inc()
	if i := s.freeLane(); i >= 0 {
		s.load(i, dg)
	} else {
		s.queue = append(s.queue, dg)
	}
	s.noteOcc()
	return true
}

func (s *Sender) freeLane() int {
	if s.nbusy == len(s.lanes) {
		return -1
	}
	for i := range s.lanes {
		if !s.lanes[i].busy {
			return i
		}
	}
	return -1
}

// nextToken draws a fresh 22-bit token from a splitmix64 counter hash —
// deterministic per sender, uncorrelated with anything an adversary can
// have written into the receiver's slot memory.
func (s *Sender) nextToken() uint32 {
	s.tokCtr++
	x := s.tokCtr + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return uint32(x^(x>>31)) & tokenMask
}

func (s *Sender) load(slot int, dg arq.Datagram) {
	now := s.sched.Now()
	ln := &s.lanes[slot]
	ln.busy = true
	ln.dg = dg
	ln.token = s.nextToken()
	ln.seq = Pack(ln.label, slot, ln.token)
	ln.firstTx, ln.lastTx = now, now
	s.loadCtr++
	ln.loadSeq = s.loadCtr
	s.nbusy++
	s.instr.lanesBusy.Set(float64(s.nbusy))
	s.send(ln)
	s.m.FirstTx.Inc()
	if s.probe != nil && s.probe.FirstTransmission != nil {
		s.probe.FirstTransmission(now, ln.seq, ln.dg.ID)
	}
}

func (s *Sender) retransmit(ln *lane, now sim.Time) {
	s.send(ln)
	ln.lastTx = now
	s.m.Retransmissions.Inc()
	s.instr.retx.Inc()
	if s.probe != nil && s.probe.Retransmitted != nil {
		s.probe.Retransmitted(now, ln.seq, ln.seq, ln.dg.ID, arq.RetxTimeout)
	}
}

func (s *Sender) send(ln *lane) {
	f := frame.Get()
	f.Kind = frame.KindI
	f.Seq = ln.seq
	f.DatagramID = ln.dg.ID
	f.Payload = ln.dg.Payload
	f.EnqueuedNS = int64(ln.dg.EnqueuedAt)
	s.wire.Send(f)
	frame.Put(f)
}

// HandleFrame processes an acknowledgement. Only an exact echo of a busy
// lane's current packed value releases it; anything else — damaged, stale
// label, forged — is counted and dropped, and the retransmission timer
// carries the lane forward.
func (s *Sender) HandleFrame(now sim.Time, f *frame.Frame) {
	if f.Corrupted || f.Kind != frame.KindRR {
		return
	}
	slot := Slot(f.Ack)
	if slot >= len(s.lanes) {
		s.instr.staleAcks.Inc()
		return
	}
	ln := &s.lanes[slot]
	if !ln.busy || f.Ack != ln.seq {
		s.instr.staleAcks.Inc()
		return
	}
	s.release(ln, now)
}

func (s *Sender) release(ln *lane, now sim.Time) {
	s.m.HoldingTime.Add(float64(now.Sub(ln.firstTx)))
	if s.probe != nil && s.probe.Released != nil {
		s.probe.Released(now, ln.seq, ln.dg.ID)
	}
	slot := Slot(ln.seq)
	ln.busy = false
	ln.dg = arq.Datagram{}
	ln.label = (ln.label + 1) % labelMod
	s.nbusy--
	if s.qhead < len(s.queue) {
		dg := s.queue[s.qhead]
		s.queue[s.qhead] = arq.Datagram{}
		s.qhead++
		if s.qhead == len(s.queue) {
			s.queue = s.queue[:0]
			s.qhead = 0
		}
		s.load(slot, dg)
	} else {
		s.instr.lanesBusy.Set(float64(s.nbusy))
	}
	s.noteOcc()
}

func (s *Sender) noteOcc() {
	s.m.SendBufOcc.Update(int64(s.sched.Now()), float64(s.Outstanding()))
}

// Outstanding returns busy lanes plus queued datagrams.
func (s *Sender) Outstanding() int { return s.nbusy + len(s.queue) - s.qhead }

// Failed implements the engine contract: SS-ARQ never declares failure.
// A failure declaration would itself be corruptible state — the protocol's
// only terminal condition is an orderly Shutdown.
func (s *Sender) Failed() bool { return s.stopped }

// Shutdown is orderly teardown: timers stop, new work is refused, held
// datagrams stay reclaimable.
func (s *Sender) Shutdown() { s.stopped = true }

// UnreleasedDatagrams returns every datagram the sender still holds,
// oldest first (busy lanes in load order, then the queue).
func (s *Sender) UnreleasedDatagrams() []arq.Datagram {
	held := make([]*lane, 0, s.nbusy)
	for i := range s.lanes {
		if s.lanes[i].busy {
			held = append(held, &s.lanes[i])
		}
	}
	sort.Slice(held, func(i, j int) bool { return held[i].loadSeq < held[j].loadSeq })
	out := make([]arq.Datagram, 0, len(held)+len(s.queue)-s.qhead)
	for _, ln := range held {
		out = append(out, ln.dg)
	}
	out = append(out, s.queue[s.qhead:]...)
	return out
}
