package ssarq

import (
	"repro/internal/arq"
	"repro/internal/frame"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Receiver is the B-side endpoint. Its whole state is one packed value per
// slot: the last sequence value it delivered there. Every well-formed
// I-frame is acknowledged by echoing its packed value verbatim; the frame
// is delivered upward exactly when the value differs from the slot's
// remembered one. The state needs no initialization agreement with the
// sender — whatever a slot holds, the first differing frame on it is
// delivered and overwrites it, which is the self-stabilization step.
type Receiver struct {
	sched   *sim.Scheduler
	wire    arq.Wire
	cfg     Config
	m       *arq.Metrics
	probe   *arq.Probe
	deliver arq.DeliverFunc
	instr   receiverInstr

	last []uint32 // last delivered packed value, per slot
	have []bool   // whether last[slot] is meaningful
}

type receiverInstr struct {
	acks     *metrics.Counter // ssarq_acks_sent_total
	badSlots *metrics.Counter // ssarq_bad_slots_total: I-frames addressing slots beyond the lane count
	dups     *metrics.Counter // ssarq_dup_suppressed_total
}

func newReceiverInstr(reg *metrics.Registry) receiverInstr {
	return receiverInstr{
		acks:     reg.Counter("ssarq_acks_sent_total"),
		badSlots: reg.Counter("ssarq_bad_slots_total"),
		dups:     reg.Counter("ssarq_dup_suppressed_total"),
	}
}

// NewReceiver builds the receiving endpoint. deliver may be nil.
func NewReceiver(sched *sim.Scheduler, wire arq.Wire, cfg Config, m *arq.Metrics, deliver arq.DeliverFunc) *Receiver {
	if err := cfg.Validate(); err != nil {
		panic("ssarq: invalid config: " + err.Error())
	}
	return &Receiver{
		sched:   sched,
		wire:    wire,
		cfg:     cfg,
		m:       m,
		deliver: deliver,
		instr:   newReceiverInstr(cfg.Metrics),
		last:    make([]uint32, cfg.Slots),
		have:    make([]bool, cfg.Slots),
	}
}

// SetProbe installs the transition observer; nil detaches. The receiver
// has no checkpoint or recovery process, so no receiver-side probe
// callbacks fire — the checker's applicable subset follows.
func (r *Receiver) SetProbe(p *arq.Probe) { r.probe = p }

// Start is a no-op: the receiver is purely reactive.
func (r *Receiver) Start() {}

// Stop is a no-op for contract parity (no periodic process to halt).
func (r *Receiver) Stop() {}

// HandleFrame processes one arriving I-frame: ack always, deliver on
// change. Damaged frames vanish silently — the sender's retransmission
// timer is the only loss-repair mechanism.
func (r *Receiver) HandleFrame(now sim.Time, f *frame.Frame) {
	if f.Corrupted || f.Kind != frame.KindI {
		return
	}
	slot := Slot(f.Seq)
	if slot >= len(r.last) {
		r.instr.badSlots.Inc()
		return
	}
	if r.have[slot] && r.last[slot] == f.Seq {
		r.m.DupSuppressed.Inc()
		r.instr.dups.Inc()
		r.ack(f.Seq)
		return
	}
	r.last[slot] = f.Seq
	r.have[slot] = true
	dg := arq.Datagram{ID: f.DatagramID, Payload: f.Payload, EnqueuedAt: sim.Time(f.EnqueuedNS)}
	r.m.NoteDelivery(now, dg)
	if r.deliver != nil {
		r.deliver(now, dg, f.Seq)
	}
	r.ack(f.Seq)
}

func (r *Receiver) ack(seq uint32) {
	f := frame.Get()
	f.Kind = frame.KindRR
	f.Ack = seq
	r.wire.Send(f)
	frame.Put(f)
	r.m.ControlSent.Inc()
	r.instr.acks.Inc()
}
