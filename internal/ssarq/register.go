package ssarq

import (
	"fmt"

	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/sim"
)

// init publishes SS-ARQ in the engine registry, so every protocol-agnostic
// layer (node, session, bench, faults, the CLIs) can run the
// self-stabilizing engine by name next to LAMS-DLC and the HDLC baselines.
func init() {
	arq.Register(arq.Registration{
		Name:    "ssarq",
		Aliases: []string{"ss", "ss-arq", "stab"},
		Display: "SS-ARQ",
		Defaults: func(roundTrip sim.Duration) arq.EngineConfig {
			return Defaults(roundTrip)
		},
		New: func(sched *sim.Scheduler, link *channel.Link, cfg arq.EngineConfig, deliver arq.DeliverFunc, onFailure arq.FailureFunc) arq.Pair {
			c, ok := cfg.(Config)
			if !ok {
				panic(fmt.Sprintf("ssarq: engine %q given %T, want ssarq.Config", "ssarq", cfg))
			}
			return NewPair(sched, link, c, deliver, onFailure)
		},
		NewSplit: func(sendSched, recvSched *sim.Scheduler, link *channel.Link, cfg arq.EngineConfig, deliver arq.DeliverFunc, onFailure arq.FailureFunc) arq.Pair {
			c, ok := cfg.(Config)
			if !ok {
				panic(fmt.Sprintf("ssarq: engine %q given %T, want ssarq.Config", "ssarq", cfg))
			}
			return NewSplitPair(sendSched, recvSched, link, c, deliver, onFailure)
		},
	})
}
