package ssarq

import (
	"testing"

	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/sim"
)

type scenario struct {
	sched *sim.Scheduler
	pair  *Pair
	got   map[uint64]int
	last  sim.Time
}

func newScenario(cfg Config, pipe channel.PipeConfig, seed uint64) *scenario {
	sched := sim.NewScheduler()
	link := channel.NewLink(sched, pipe, sim.NewRNG(seed))
	sc := &scenario{sched: sched, got: make(map[uint64]int)}
	sc.pair = NewPair(sched, link, cfg, func(now sim.Time, dg arq.Datagram, _ uint32) {
		sc.got[dg.ID]++
		sc.last = now
	}, nil)
	sc.pair.Start()
	return sc
}

func (sc *scenario) enqueueAll(n, size int) {
	for i := 0; i < n; i++ {
		if !sc.pair.Enqueue(arq.Datagram{ID: uint64(i + 1), Payload: make([]byte, size), EnqueuedAt: sc.sched.Now()}) {
			panic("enqueue refused")
		}
	}
}

func (sc *scenario) assertExactlyOnce(t *testing.T, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		if sc.got[uint64(i)] != 1 {
			t.Fatalf("datagram %d delivered %d times, want exactly once", i, sc.got[uint64(i)])
		}
	}
	if len(sc.got) != n {
		t.Fatalf("delivered %d distinct IDs, want %d", len(sc.got), n)
	}
}

func baseCfg() Config { return Defaults(20 * sim.Millisecond) }
func basePipe() channel.PipeConfig {
	return channel.PipeConfig{
		RateBps: 100e6,
		Delay:   channel.ConstantDelay(10 * sim.Millisecond),
	}
}

func TestPacking(t *testing.T) {
	for slot := 0; slot < MaxSlots; slot += 17 {
		for label := uint32(0); label < labelMod; label++ {
			v := Pack(label, slot, 0x2A5A5A)
			if Slot(v) != slot {
				t.Fatalf("Slot(Pack(%d,%d,·)) = %d", label, slot, Slot(v))
			}
			if v&3 != label {
				t.Fatalf("label bits of Pack(%d,%d,·) = %d", label, slot, v&3)
			}
		}
	}
	if Pack(1, 3, tokenMask+5) != Pack(1, 3, 4) {
		t.Fatal("token not masked to tokenBits")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := baseCfg().Validate(); err != nil {
		t.Fatalf("defaults: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Slots = 0 },
		func(c *Config) { c.Slots = MaxSlots + 1 },
		func(c *Config) { c.RetxInterval = 0 },
		func(c *Config) { c.BufferLimit = -1 },
		func(c *Config) { c.ConvergenceSlack = -1 },
		func(c *Config) { c.RoundTrip = -1 },
	}
	for i, mut := range bad {
		cfg := baseCfg()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: Validate accepted invalid config", i)
		}
	}
}

func TestCleanChannelExactlyOnce(t *testing.T) {
	sc := newScenario(baseCfg(), basePipe(), 1)
	sc.enqueueAll(200, 512)
	sc.sched.RunUntil(sim.Time(20 * int64(sim.Second)))
	sc.assertExactlyOnce(t, 200)
	if sc.pair.Metrics().DupSuppressed.Value() != 0 {
		t.Fatalf("clean channel produced %d duplicate suppressions", sc.pair.Metrics().DupSuppressed.Value())
	}
}

func TestLossyChannelExactlyOnce(t *testing.T) {
	pipe := basePipe()
	pipe.IModel = channel.FixedProb{P: 0.2}
	pipe.CModel = channel.FixedProb{P: 0.2}
	sc := newScenario(baseCfg(), pipe, 7)
	sc.enqueueAll(100, 256)
	sc.sched.RunUntil(sim.Time(60 * int64(sim.Second)))
	sc.assertExactlyOnce(t, 100)
	if sc.pair.Metrics().Retransmissions.Value() == 0 {
		t.Fatal("20% loss produced zero retransmissions")
	}
}

// TestConvergenceFromScrambledState is the self-stabilization property
// test: from ANY starting state — here, CorruptState applied repeatedly
// with per-seed randomness while traffic flows — the engine must return to
// exactly-once delivery for everything submitted after the corruption era,
// within ConvergenceBound. The assertion is deliberately the Dolev claim,
// not strict reliability: in-era datagrams may be casualties (bounded by
// the era), post-era datagrams may not.
func TestConvergenceFromScrambledState(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		cfg := baseCfg()
		pipe := basePipe()
		pipe.IModel = channel.FixedProb{P: 0.05}
		pipe.CModel = channel.FixedProb{P: 0.05}
		sc := newScenario(cfg, pipe, seed)
		rng := sim.NewRNG(seed ^ 0xC0FFEE)

		// Era 1: submit traffic while scrambling both ends every 5 ms.
		const eraDatagrams = 60
		for i := 0; i < eraDatagrams; i++ {
			at := sim.Time(int64(i) * int64(5*sim.Millisecond))
			sc.sched.Schedule(at, func() {
				sc.pair.CorruptState(rng)
				sc.pair.Enqueue(arq.Datagram{ID: uint64(i + 1), Payload: make([]byte, 128), EnqueuedAt: sc.sched.Now()})
			})
		}
		eraEnd := sim.Time(int64(eraDatagrams) * int64(5*sim.Millisecond))
		sc.sched.RunUntil(eraEnd)

		// Convergence window: run the clock past the bound with no new
		// corruption so in-flight repair completes.
		deadline := eraEnd.Add(cfg.ConvergenceBound())
		sc.sched.RunUntil(deadline)

		// Era 2: post-corruption traffic must be delivered exactly once.
		postStart := uint64(1000)
		const postDatagrams = 100
		for i := 0; i < postDatagrams; i++ {
			at := deadline.Add(sim.Duration(int64(i) * int64(2*sim.Millisecond)))
			sc.sched.Schedule(at, func() {
				sc.pair.Enqueue(arq.Datagram{ID: postStart + uint64(i), Payload: make([]byte, 128), EnqueuedAt: sc.sched.Now()})
			})
		}
		sc.sched.RunUntil(deadline.Add(sim.Duration(30 * int64(sim.Second))))

		for i := 0; i < postDatagrams; i++ {
			id := postStart + uint64(i)
			if sc.got[id] != 1 {
				t.Fatalf("seed %d: post-era datagram %d delivered %d times, want exactly once", seed, id, sc.got[id])
			}
		}
		// In-era casualties are allowed but must be bounded linearly in
		// the number of corruption events: each scramble of a receiver
		// slot can cause at most one spurious re-delivery before the
		// slot's value re-stabilizes, so total excess deliveries are
		// capped by scrambles × slots hit per scramble (~Slots/3 each).
		excess := 0
		for i := 1; i <= eraDatagrams; i++ {
			if n := sc.got[uint64(i)]; n > 1 {
				excess += n - 1
			}
		}
		if cap := eraDatagrams * cfg.Slots / 3; excess > cap {
			t.Fatalf("seed %d: %d excess in-era deliveries, casualty bound is %d", seed, excess, cap)
		}
	}
}

// TestGhostFloodHarmlessAfterConvergence drives ForgeGhost output into
// both ends of a converged pair and asserts fresh traffic still flows
// exactly once: forged frames are the adversary's, so any casualty they
// cause must stay confined to the flood era.
func TestGhostFloodHarmlessAfterConvergence(t *testing.T) {
	cfg := baseCfg()
	sc := newScenario(cfg, basePipe(), 3)
	rng := sim.NewRNG(99)

	// Flood era: 200 forged frames in both directions while 40 real
	// datagrams flow.
	for i := 0; i < 40; i++ {
		at := sim.Time(int64(i) * int64(3*sim.Millisecond))
		sc.sched.Schedule(at, func() {
			sc.pair.Enqueue(arq.Datagram{ID: uint64(i + 1), Payload: make([]byte, 128), EnqueuedAt: sc.sched.Now()})
		})
	}
	for i := 0; i < 200; i++ {
		at := sim.Time(int64(i) * int64(600*sim.Microsecond))
		sc.sched.Schedule(at, func() {
			if f := sc.pair.ForgeGhost(rng, true); f != nil {
				sc.pair.Link().AtoB.Send(f)
			}
			if f := sc.pair.ForgeGhost(rng, false); f != nil {
				sc.pair.Link().BtoA.Send(f)
			}
		})
	}
	floodEnd := sim.Time(int64(200) * int64(600*sim.Microsecond))
	deadline := floodEnd.Add(cfg.ConvergenceBound())
	sc.sched.RunUntil(deadline)

	for i := 0; i < 50; i++ {
		at := deadline.Add(sim.Duration(int64(i) * int64(2*sim.Millisecond)))
		sc.sched.Schedule(at, func() {
			sc.pair.Enqueue(arq.Datagram{ID: 2000 + uint64(i), Payload: make([]byte, 128), EnqueuedAt: sc.sched.Now()})
		})
	}
	sc.sched.RunUntil(deadline.Add(sim.Duration(10 * int64(sim.Second))))

	for i := 0; i < 50; i++ {
		if n := sc.got[2000+uint64(i)]; n != 1 {
			t.Fatalf("post-flood datagram %d delivered %d times, want exactly once", 2000+i, n)
		}
	}
}

func TestReclaimOldestFirst(t *testing.T) {
	cfg := baseCfg()
	cfg.Slots = 4
	sc := newScenario(cfg, basePipe(), 5)
	sc.enqueueAll(10, 64)
	// Stop before anything can be acknowledged (ack needs a full round trip).
	sc.sched.RunUntil(sim.Time(int64(time5ms())))
	sc.pair.Stop()
	held := sc.pair.Reclaim()
	if len(held) != 10 {
		t.Fatalf("Reclaim returned %d datagrams, want 10", len(held))
	}
	for i, dg := range held {
		if dg.ID != uint64(i+1) {
			t.Fatalf("Reclaim[%d].ID = %d: not oldest-first", i, dg.ID)
		}
	}
	if sc.pair.Enqueue(arq.Datagram{ID: 99}) {
		t.Fatal("Enqueue accepted after Stop")
	}
}

func time5ms() sim.Duration { return 5 * sim.Millisecond }

func TestBufferLimitRefusal(t *testing.T) {
	cfg := baseCfg()
	cfg.Slots = 2
	cfg.BufferLimit = 4
	sc := newScenario(cfg, basePipe(), 2)
	for i := 0; i < 4; i++ {
		if !sc.pair.Enqueue(arq.Datagram{ID: uint64(i + 1), Payload: make([]byte, 32)}) {
			t.Fatalf("enqueue %d refused below limit", i)
		}
	}
	if sc.pair.Enqueue(arq.Datagram{ID: 5, Payload: make([]byte, 32)}) {
		t.Fatal("enqueue accepted above BufferLimit")
	}
	if sc.pair.Outstanding() != 4 {
		t.Fatalf("Outstanding = %d, want 4", sc.pair.Outstanding())
	}
}
