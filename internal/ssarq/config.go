// Package ssarq implements SS-ARQ, a self-stabilizing ARQ engine in the
// style of Dolev et al. (arXiv:2006.05901): an automatic repeat request
// protocol that regains eventual exactly-once delivery from ANY starting
// state — including states an adversary wrote into it mid-run — after a
// bounded convergence interval, paying at most a bounded number of
// duplicate or lost deliveries while it converges.
//
// The construction trades the windowed pipelines of LAMS-DLC and HDLC for
// redundancy that needs no trusted initial agreement: the engine runs
// Slots independent stop-and-wait lanes, each cycling a three-valued
// alternating label. A lane's frame carries a packed 32-bit sequence value
// — label (2 bits), lane slot (8 bits), and a per-load pseudo-random token
// (22 bits) — and the receiver acknowledges by echoing exactly that packed
// value. The sender releases a lane only on an exact echo of the value it
// is currently sending; the receiver delivers a frame exactly when the
// packed value differs from the last value it delivered on that slot.
// Because release requires an exact 32-bit echo and every load draws a
// fresh token, no reachable-or-corrupted receiver state can systematically
// absorb new traffic: a stale or scrambled lastDelivered value collides
// with a fresh (label, token) pair with probability ~2^-24 per load, and a
// single collision costs one datagram, not the lane. The engine never
// declares link failure — self-stabilization is unconditional convergence,
// and a failure declaration would be a state the adversary could force.
//
// Convergence bound: after the last corruption event, every lane is
// retransmitting its current value at least once per RetxInterval. One
// uncorrupted round trip after a retransmission either releases the lane
// (echo matches) or refreshes the receiver's slot state so the next
// reload's fresh token is delivered. Two retransmission periods plus two
// round trips therefore re-establish the legal-execution invariants on
// every lane; ConvergenceBound adds ConvergenceSlack on top of that floor.
// DESIGN.md §13 carries the full derivation.
package ssarq

import (
	"fmt"

	"repro/internal/arq"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Sequence-value packing: label | slot | token, low bits first.
const (
	labelBits = 2
	slotBits  = 8
	tokenBits = 22

	// MaxSlots is the largest lane count the slot field can address.
	MaxSlots = 1 << slotBits

	// labelMod is the alternating-label modulus. Three values (not two)
	// are required so a stale in-flight ack from the previous incarnation
	// can never match the current one even when tokens collide.
	labelMod = 3

	tokenMask = 1<<tokenBits - 1
)

// Pack composes the wire sequence value for (label, slot, token).
func Pack(label uint32, slot int, token uint32) uint32 {
	return label%labelMod | uint32(slot)<<labelBits | (token&tokenMask)<<(labelBits+slotBits)
}

// Slot extracts the lane index from a packed sequence value.
func Slot(v uint32) int { return int(v>>labelBits) & (MaxSlots - 1) }

// Config parameterizes one SS-ARQ pair.
type Config struct {
	arq.Timing

	// Slots is the number of independent stop-and-wait lanes (1..MaxSlots).
	// More lanes buy pipelining — the engine keeps up to Slots datagrams
	// in flight — at the price of a larger state surface to re-stabilize.
	Slots int

	// RetxInterval is the per-lane retransmission period: a busy lane
	// re-sends its current frame whenever it has been silent this long.
	// It is also the engine's only timer — there is no failure timeout.
	RetxInterval sim.Duration

	// BufferLimit caps Outstanding (busy lanes plus queued datagrams);
	// Enqueue refuses above it. Zero means unlimited.
	BufferLimit int

	// ConvergenceSlack widens ConvergenceBound beyond its derived floor
	// of 2·RetxInterval + 2·RoundTrip, absorbing processing delays and
	// the retransmission scan granularity.
	ConvergenceSlack sim.Duration

	// Metrics optionally publishes ssarq_* instruments.
	Metrics *metrics.Registry
}

// Defaults returns the paper-style operating point for a given round trip:
// 16 lanes, retransmission at 1.5·R (the HDLC baseline's timeout), and a
// generous 1024-datagram buffer.
func Defaults(roundTrip sim.Duration) Config {
	retx := roundTrip + roundTrip/2
	if retx <= 0 {
		retx = sim.Millisecond
	}
	return Config{
		Timing: arq.Timing{
			RoundTrip: roundTrip,
			ProcTime:  10 * sim.Microsecond,
		},
		Slots:            16,
		RetxInterval:     retx,
		BufferLimit:      1024,
		ConvergenceSlack: retx,
	}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if c.Slots < 1 || c.Slots > MaxSlots {
		return fmt.Errorf("ssarq: Slots %d out of range [1,%d]", c.Slots, MaxSlots)
	}
	if c.RetxInterval <= 0 {
		return fmt.Errorf("ssarq: RetxInterval must be positive, got %v", c.RetxInterval)
	}
	if c.BufferLimit < 0 {
		return fmt.Errorf("ssarq: BufferLimit must be non-negative, got %d", c.BufferLimit)
	}
	if c.ConvergenceSlack < 0 {
		return fmt.Errorf("ssarq: ConvergenceSlack must be non-negative, got %v", c.ConvergenceSlack)
	}
	return nil
}

// WithLinkLifetime implements arq.EngineConfig. SS-ARQ has no
// lifetime-aware behavior (no failure declaration to time), so the
// configuration is returned unchanged.
func (c Config) WithLinkLifetime(sim.Duration) arq.EngineConfig { return c }

// ConvergenceBound implements arq.StabilizationBound: the longest interval
// after the corruption era closes within which the engine returns to legal
// executions, from any state. Floor derivation in the package comment and
// DESIGN.md §13.
func (c Config) ConvergenceBound() sim.Duration {
	return 2*c.RetxInterval + 2*c.RoundTrip + c.ConvergenceSlack
}
