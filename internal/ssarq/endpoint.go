package ssarq

import (
	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/sim"
)

// Pair wires a Sender and Receiver across a full-duplex link: I-frames
// A→B, echo acknowledgements B→A. It is the SS-ARQ implementation of the
// arq.Pair engine contract, plus the two corruption-adversary surfaces
// (arq.StateCorruptor, arq.GhostForger) that let the fault injector
// exercise the self-stabilization claim directly.
type Pair struct {
	Sender   *Sender
	Receiver *Receiver
	cfg      Config
	metrics  *arq.Metrics
	rmetrics *arq.Metrics
	merged   arq.Metrics
	link     *channel.Link
}

// NewPair builds and wires the endpoints. deliver and onFailure may be
// nil; onFailure is never invoked (SS-ARQ declares no failures).
func NewPair(sched *sim.Scheduler, link *channel.Link, cfg Config, deliver arq.DeliverFunc, onFailure arq.FailureFunc) *Pair {
	m := &arq.Metrics{}
	s := NewSender(sched, link.AtoB, cfg, m, onFailure)
	r := NewReceiver(sched, link.BtoA, cfg, m, deliver)
	link.AtoB.SetHandler(r.HandleFrame)
	link.BtoA.SetHandler(s.HandleFrame)
	return &Pair{Sender: s, Receiver: r, cfg: cfg, metrics: m, link: link}
}

// NewSplitPair is NewPair for a session whose two ends live on different
// shards; each side gets its own metrics block (see lamsdlc.NewSplitPair).
// The corruption adversary is not wired across shards — CorruptState and
// ForgeGhost are driven only by the single-scheduler fault harness.
func NewSplitPair(sendSched, recvSched *sim.Scheduler, link *channel.Link, cfg Config, deliver arq.DeliverFunc, onFailure arq.FailureFunc) *Pair {
	ms, mr := &arq.Metrics{}, &arq.Metrics{}
	s := NewSender(sendSched, link.AtoB, cfg, ms, onFailure)
	r := NewReceiver(recvSched, link.BtoA, cfg, mr, deliver)
	link.AtoB.SetHandler(r.HandleFrame)
	link.BtoA.SetHandler(s.HandleFrame)
	return &Pair{Sender: s, Receiver: r, cfg: cfg, metrics: ms, rmetrics: mr, link: link}
}

// Start activates both ends.
func (p *Pair) Start() {
	p.Sender.Start()
	p.Receiver.Start()
}

// Stop is orderly teardown; undelivered datagrams stay reclaimable.
func (p *Pair) Stop() {
	p.Receiver.Stop()
	p.Sender.Shutdown()
}

// Enqueue accepts a datagram from the network layer.
func (p *Pair) Enqueue(dg arq.Datagram) bool { return p.Sender.Enqueue(dg) }

// Reclaim returns the datagrams the sender still holds, oldest first.
func (p *Pair) Reclaim() []arq.Datagram { return p.Sender.UnreleasedDatagrams() }

// Outstanding returns the sending-buffer occupancy.
func (p *Pair) Outstanding() int { return p.Sender.Outstanding() }

// Failed reports whether the pair was stopped; SS-ARQ never declares
// link failure on its own.
func (p *Pair) Failed() bool { return p.Sender.Failed() }

// Metrics exposes the pair's measurement block (merged on demand for a
// split pair; call only while both shards are quiesced).
func (p *Pair) Metrics() *arq.Metrics {
	if p.rmetrics == nil {
		return p.metrics
	}
	p.merged = arq.MergeSplit(p.metrics, p.rmetrics)
	return &p.merged
}

// Link exposes the underlying simulated link.
func (p *Pair) Link() *channel.Link { return p.link }

// SetProbe installs the transition observer on both ends.
func (p *Pair) SetProbe(pr *arq.Probe) {
	p.Sender.SetProbe(pr)
	p.Receiver.SetProbe(pr)
}

// CorruptState implements arq.StateCorruptor with the strongest contract
// in the registry: ANY protocol state may be overwritten — that is the
// self-stabilization claim under test. Each call rewrites, per lane with
// independent 1-in-3 probability, the sender's label and token, and per
// slot with the same probability the receiver's remembered packed value
// and its validity bit. Only the datagram buffer itself is out of scope,
// mirroring the Dolev model where corruption hits protocol state, not the
// application's packet store. A rewrite of a busy lane is reported through
// the probe as a renumbering retransmission — and transmitted — so the
// external observation stays consistent with the wire (the §13 ownership
// contract) and the checker keeps measuring the engine.
func (p *Pair) CorruptState(rng *sim.RNG) {
	s := p.Sender
	now := s.sched.Now()
	for i := range s.lanes {
		if rng.Intn(3) != 0 {
			continue
		}
		ln := &s.lanes[i]
		ln.label = uint32(rng.Intn(labelMod))
		ln.token = uint32(rng.Uint64()) & tokenMask
		if !ln.busy {
			continue
		}
		old := ln.seq
		ln.seq = Pack(ln.label, i, ln.token)
		if ln.seq == old {
			continue
		}
		s.send(ln)
		ln.lastTx = now
		s.m.Retransmissions.Inc()
		s.instr.retx.Inc()
		if s.probe != nil && s.probe.Retransmitted != nil {
			s.probe.Retransmitted(now, old, ln.seq, ln.dg.ID, arq.RetxTimeout)
		}
	}
	r := p.Receiver
	for i := range r.last {
		if rng.Intn(3) != 0 {
			continue
		}
		r.last[i] = uint32(rng.Uint64())
		r.have[i] = rng.Intn(2) == 0
	}
}

// ghostPayload is the shared body of forged I-frames. The pipe copies
// frames on Send and payload bytes are never mutated downstream, so one
// package-level slice serves every forgery.
var ghostPayload = make([]byte, 32)

// ForgeGhost implements arq.GhostForger. Half the forgeries replay live
// sender state — the exact current packed value of a random busy lane —
// which toward the receiver substitutes the ghost's payload for the real
// frame's, and toward the sender forces a spurious release; the other half
// carry uniformly random packed values, which a converged engine must
// shrug off (random token collision probability ~2^-24). Both halves are
// bounded-casualty events the checker excuses inside the corruption era.
func (p *Pair) ForgeGhost(rng *sim.RNG, toReceiver bool) *frame.Frame {
	s := p.Sender
	var seq uint32
	var dgID uint64
	if rng.Intn(2) == 0 && s.nbusy > 0 {
		// Replay a live lane, scanning from a random start so every busy
		// lane is reachable.
		start := rng.Intn(len(s.lanes))
		for k := range s.lanes {
			ln := &s.lanes[(start+k)%len(s.lanes)]
			if ln.busy {
				seq, dgID = ln.seq, ln.dg.ID
				break
			}
		}
	} else {
		seq = Pack(uint32(rng.Intn(labelMod)), rng.Intn(len(s.lanes)), uint32(rng.Uint64())&tokenMask)
		dgID = 1<<63 | rng.Uint64()>>1 // high bit keeps forged IDs clear of real ones
	}
	f := frame.Get()
	if toReceiver {
		f.Kind = frame.KindI
		f.Seq = seq
		f.DatagramID = dgID
		f.Payload = ghostPayload
		f.EnqueuedNS = int64(s.sched.Now())
	} else {
		f.Kind = frame.KindRR
		f.Ack = seq
	}
	return f
}

// Compile-time contract checks.
var (
	_ arq.Pair               = (*Pair)(nil)
	_ arq.StateCorruptor     = (*Pair)(nil)
	_ arq.GhostForger        = (*Pair)(nil)
	_ arq.StabilizationBound = Config{}
	_ arq.EngineConfig       = Config{}
	_ arq.Endpoint           = (*Sender)(nil)
	_ arq.Endpoint           = (*Receiver)(nil)
)
