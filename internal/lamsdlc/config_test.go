package lamsdlc

import (
	"testing"

	"repro/internal/sim"
)

func TestDefaultsValid(t *testing.T) {
	if err := Defaults(20 * sim.Millisecond).Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := Defaults(20 * sim.Millisecond)
	mutations := []struct {
		name string
		fn   func(*Config)
	}{
		{"zero checkpoint interval", func(c *Config) { c.CheckpointInterval = 0 }},
		{"zero cumulation depth", func(c *Config) { c.CumulationDepth = 0 }},
		{"negative send buffer", func(c *Config) { c.SendBufferCap = -1 }},
		{"negative recv buffer", func(c *Config) { c.RecvBufferCap = -1 }},
		{"rate decrease 0", func(c *Config) { c.RateDecrease = 0 }},
		{"rate decrease 1", func(c *Config) { c.RateDecrease = 1 }},
		{"rate increase 1", func(c *Config) { c.RateIncrease = 1 }},
		{"min fraction 0", func(c *Config) { c.MinRateFraction = 0 }},
		{"min fraction >1", func(c *Config) { c.MinRateFraction = 2 }},
		{"stopgo inverted", func(c *Config) { c.StopGoHigh, c.StopGoLow = 0.2, 0.8 }},
		{"negative retries", func(c *Config) { c.RequestRetries = -1 }},
		{"negative rtt", func(c *Config) { c.RoundTrip = -1 }},
	}
	for _, m := range mutations {
		c := base
		m.fn(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
}

func TestDerivedTimings(t *testing.T) {
	c := Defaults(20 * sim.Millisecond)
	c.CheckpointInterval = 10 * sim.Millisecond
	c.CumulationDepth = 3
	if got := c.CheckpointTimeout(); got != 30*sim.Millisecond {
		t.Fatalf("CheckpointTimeout = %v", got)
	}
	if got := c.ExpectedResponse(); got != 20*sim.Millisecond+c.ProcTime {
		t.Fatalf("ExpectedResponse = %v", got)
	}
	if got := c.FailureTimeout(); got != c.ExpectedResponse()+30*sim.Millisecond {
		t.Fatalf("FailureTimeout = %v", got)
	}
	// R + W_cp/2 + C_depth*W_cp = 20 + 5 + 30 = 55ms
	if got := c.ResolvingPeriod(); got != 55*sim.Millisecond {
		t.Fatalf("ResolvingPeriod = %v", got)
	}
}

func TestNumberingSize(t *testing.T) {
	c := Defaults(20 * sim.Millisecond)
	c.CheckpointInterval = 10 * sim.Millisecond
	c.CumulationDepth = 3
	// Resolving period 55ms; at t_f = 100µs the numbering size must cover
	// 550 outstanding frames.
	if got := c.NumberingSize(100 * sim.Microsecond); got != 551 {
		t.Fatalf("NumberingSize = %d, want 551", got)
	}
	if c.NumberingSize(0) != 0 {
		t.Fatal("zero frame time should yield 0")
	}
}
