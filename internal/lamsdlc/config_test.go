package lamsdlc

import (
	"testing"

	"repro/internal/sim"
)

func TestDefaultsValid(t *testing.T) {
	if err := Defaults(20 * sim.Millisecond).Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := Defaults(20 * sim.Millisecond)
	mutations := []struct {
		name string
		fn   func(*Config)
	}{
		{"zero checkpoint interval", func(c *Config) { c.CheckpointInterval = 0 }},
		{"zero cumulation depth", func(c *Config) { c.CumulationDepth = 0 }},
		{"negative send buffer", func(c *Config) { c.SendBufferCap = -1 }},
		{"negative recv buffer", func(c *Config) { c.RecvBufferCap = -1 }},
		{"rate decrease 0", func(c *Config) { c.RateDecrease = 0 }},
		{"rate decrease 1", func(c *Config) { c.RateDecrease = 1 }},
		{"rate increase 1", func(c *Config) { c.RateIncrease = 1 }},
		{"min fraction 0", func(c *Config) { c.MinRateFraction = 0 }},
		{"min fraction >1", func(c *Config) { c.MinRateFraction = 2 }},
		{"stopgo inverted", func(c *Config) { c.StopGoHigh, c.StopGoLow = 0.2, 0.8 }},
		{"stopgo high 0", func(c *Config) { c.StopGoHigh = 0 }},
		{"stopgo high negative", func(c *Config) { c.StopGoHigh = -0.5 }},
		{"stopgo high >1", func(c *Config) { c.StopGoHigh = 1.5 }},
		{"stopgo low 0", func(c *Config) { c.StopGoLow = 0 }},
		{"stopgo low negative", func(c *Config) { c.StopGoLow = -0.1 }},
		{"stopgo low >1", func(c *Config) { c.StopGoHigh, c.StopGoLow = 1, 1.01 }},
		{"negative retries", func(c *Config) { c.RequestRetries = -1 }},
		{"negative rtt", func(c *Config) { c.RoundTrip = -1 }},
		// C_depth·W_cp products that saturate sim.Scale: the failure and
		// resolving windows degenerate, silently disabling §3.2's failure
		// declaration.
		{"checkpoint timeout saturates", func(c *Config) {
			c.CheckpointInterval = sim.Duration(1 << 62)
			c.CumulationDepth = 4
		}},
		{"failure timeout wraps negative", func(c *Config) {
			// CheckpointTimeout lands just under the horizon without
			// saturating; adding the round trip overflows int64.
			c.CheckpointInterval = sim.Duration(1<<62 - 1)
			c.CumulationDepth = 2
			c.RoundTrip = sim.Second
		}},
	}
	for _, m := range mutations {
		c := base
		m.fn(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
}

func TestDerivedTimings(t *testing.T) {
	c := Defaults(20 * sim.Millisecond)
	c.CheckpointInterval = 10 * sim.Millisecond
	c.CumulationDepth = 3
	if got := c.CheckpointTimeout(); got != 30*sim.Millisecond {
		t.Fatalf("CheckpointTimeout = %v", got)
	}
	if got := c.ExpectedResponse(); got != 20*sim.Millisecond+c.ProcTime {
		t.Fatalf("ExpectedResponse = %v", got)
	}
	if got := c.FailureTimeout(); got != c.ExpectedResponse()+30*sim.Millisecond {
		t.Fatalf("FailureTimeout = %v", got)
	}
	// R + W_cp/2 + C_depth*W_cp = 20 + 5 + 30 = 55ms
	if got := c.ResolvingPeriod(); got != 55*sim.Millisecond {
		t.Fatalf("ResolvingPeriod = %v", got)
	}
}

func TestNumberingSize(t *testing.T) {
	c := Defaults(20 * sim.Millisecond)
	c.CheckpointInterval = 10 * sim.Millisecond
	c.CumulationDepth = 3
	// Resolving period 55ms; at t_f = 100µs the numbering size must cover
	// 550 outstanding frames (exact division: ceiling changes nothing).
	if got := c.NumberingSize(100 * sim.Microsecond); got != 551 {
		t.Fatalf("NumberingSize = %d, want 551", got)
	}
	if c.NumberingSize(0) != 0 {
		t.Fatal("zero frame time should yield 0")
	}
	if c.NumberingSize(-sim.Millisecond) != 0 {
		t.Fatal("negative frame time should yield 0")
	}
}

// TestNumberingSizeNonDividing pins the ceiling at frame times that do not
// divide the resolving period: truncating 55ms/150µs to 366 undercounted
// the window by one — a frame started at 54.9ms into the period still
// occupies a number.
func TestNumberingSizeNonDividing(t *testing.T) {
	c := Defaults(20 * sim.Millisecond)
	c.CheckpointInterval = 10 * sim.Millisecond
	c.CumulationDepth = 3 // resolving period 55ms
	cases := []struct {
		frameTime sim.Duration
		want      int
	}{
		// 55ms / 150µs = 366.67 → ceil 367 (+1) = 368; truncation gave 367.
		{150 * sim.Microsecond, 368},
		// 55ms / 7ms = 7.857 → ceil 8 (+1) = 9; truncation gave 8.
		{7 * sim.Millisecond, 9},
		// One nanosecond under the period: ceil 2 (+1) = 3.
		{55*sim.Millisecond - 1, 3},
		// Exactly the period: 1 (+1) = 2.
		{55 * sim.Millisecond, 2},
		// Frame time beyond the resolving period: one outstanding frame
		// plus the leading-edge slot.
		{sim.Second, 2},
	}
	for _, tc := range cases {
		if got := c.NumberingSize(tc.frameTime); got != tc.want {
			t.Errorf("NumberingSize(%v) = %d, want %d", tc.frameTime, got, tc.want)
		}
	}
}
