package lamsdlc

import (
	"fmt"

	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/sim"
)

// init publishes the protocol in the engine registry, so protocol-agnostic
// layers (node, session, bench, faults, the CLIs) can build LAMS-DLC pairs
// by name. Blank-import repro/internal/engines to link every registered
// engine into a binary.
func init() {
	arq.Register(arq.Registration{
		Name:    "lams",
		Aliases: []string{"lamsdlc", "lams-dlc"},
		Display: "LAMS-DLC",
		Defaults: func(roundTrip sim.Duration) arq.EngineConfig {
			return Defaults(roundTrip)
		},
		New: func(sched *sim.Scheduler, link *channel.Link, cfg arq.EngineConfig, deliver arq.DeliverFunc, onFailure arq.FailureFunc) arq.Pair {
			c, ok := cfg.(Config)
			if !ok {
				panic(fmt.Sprintf("lamsdlc: engine %q given %T, want lamsdlc.Config", "lams", cfg))
			}
			return NewPair(sched, link, c, deliver, onFailure)
		},
		NewSplit: func(sendSched, recvSched *sim.Scheduler, link *channel.Link, cfg arq.EngineConfig, deliver arq.DeliverFunc, onFailure arq.FailureFunc) arq.Pair {
			c, ok := cfg.(Config)
			if !ok {
				panic(fmt.Sprintf("lamsdlc: engine %q given %T, want lamsdlc.Config", "lams", cfg))
			}
			return NewSplitPair(sendSched, recvSched, link, c, deliver, onFailure)
		},
	})
}
