//go:build race

package lamsdlc

// raceEnabled reports whether the race detector is compiled in. The
// zero-alloc pins skip under it: sync.Pool deliberately drops items at
// random when racing, so a pool Get can allocate even in steady state.
const raceEnabled = true
