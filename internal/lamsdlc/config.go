// Package lamsdlc implements the paper's primary contribution: the LAMS-DLC
// data link control protocol (Ward & Choi, Auburn CSE-91-03), a NAK-based
// ARQ scheme for low-altitude multiple-satellite laser crosslinks.
//
// The protocol relaxes the in-sequence reliability constraint and replaces
// positive acknowledgements with periodic cumulative negative
// acknowledgements:
//
//   - The receiver emits a Check-Point command every CheckpointInterval
//     (W_cp). The command carries the highest-seen watermark — an implicit
//     positive acknowledgement that lets the sender release buffer space —
//     and the sequence numbers of I-frames found erroneous during the last
//     CumulationDepth (C_depth) intervals, so each error is reported
//     C_depth times and a lost NAK costs only one W_cp of holding time.
//   - The sender retransmits a NAKed frame exactly once per report
//     generation, under a fresh sequence number (legal because in-sequence
//     delivery is not promised); stale NAKs for renumbered frames are
//     recognized and ignored, exactly as §3.2 specifies.
//   - If no checkpoint arrives for C_depth·W_cp, the sender runs Enforced
//     Recovery: it sends a Request-NAK, stops new I-frames, and starts a
//     failure timer. The receiver answers immediately with an Enforced-NAK
//     (or Resolving command when it has nothing to report). Silence past
//     the expected response time plus C_depth·W_cp declares link failure.
//   - A Stop-Go bit in checkpoint commands drives multiplicative-decrease /
//     multiplicative-increase send-rate flow control (§3.4).
//
// Two engineering completions beyond the paper's prose are documented in
// DESIGN.md: gap-based identification of corrupted frames (the receiver
// infers the sequence numbers of damaged frames from holes in the monotone
// sequence space, which works precisely because LAMS-DLC renumbers
// retransmissions), and checkpoint-serial coverage tracking that turns the
// paper's "P_C^C_depth is negligible" argument into a true zero-loss
// guarantee (when C_depth consecutive checkpoints are lost the sender
// retransmits rather than releases; duplicates are resolved by the
// destination resequencer, as §2.3 assigns that responsibility).
package lamsdlc

import (
	"fmt"

	"repro/internal/arq"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Config parameterizes a LAMS-DLC endpoint pair. The zero value is not
// valid; use Defaults or fill every field and call Validate.
type Config struct {
	arq.Timing

	// CheckpointInterval is W_cp (= I_cp in the analysis), the period of
	// the receiver's Check-Point commands.
	CheckpointInterval sim.Duration

	// CumulationDepth is C_depth: how many consecutive checkpoints report
	// each detected error, and how many silent checkpoint intervals the
	// sender tolerates before Enforced Recovery.
	CumulationDepth int

	// SendBufferCap bounds the sending buffer (queued + unacknowledged
	// frames). Zero means unbounded. The transparent buffer size B_LAMS of
	// §4 is the natural setting.
	SendBufferCap int

	// RecvBufferCap bounds the receiver's processing queue. Zero means
	// unbounded (the paper's transparent receive buffer, t_proc/t_f
	// frames, makes overflow impossible in steady state).
	RecvBufferCap int

	// StopGoHigh and StopGoLow are the receive-queue thresholds (as
	// fractions of RecvBufferCap) that set and clear the Stop-Go bit.
	StopGoHigh, StopGoLow float64

	// RateDecrease scales the send rate on each checkpoint with Stop-Go
	// set; RateIncrease scales it (capped at 1) on each checkpoint with
	// Stop-Go clear.
	RateDecrease, RateIncrease float64

	// MinRateFraction floors the flow-control rate fraction.
	MinRateFraction float64

	// LinkLifetime, when positive, is the remaining lifetime of the link
	// at Start. Enforced Recovery is only attempted while its expected
	// response time fits in the remaining lifetime (a "recoverable"
	// failure, §3.2); otherwise the sender declares failure at once.
	LinkLifetime sim.Duration

	// RequestRetries is how many additional Request-NAKs the sender emits
	// after the first failure-timer expiry before declaring link failure.
	// The paper sends exactly one (zero retries).
	RequestRetries int

	// DedupWindow, when positive, enables the "more recent version" of
	// LAMS-DLC the paper teases in §3.2 ("guarantees zero duplication as
	// well as zero loss"): the receiver remembers the datagram identities
	// it delivered within the window and suppresses re-deliveries. The
	// window is sound when it covers the maximum interval between a
	// delivery and a duplicate retransmission's arrival — duplicates stem
	// from conservative retransmission of frames whose acknowledgement
	// chain broke, so a few resolving periods suffice; DedupHorizon
	// returns a safe default. Memory cost is one entry per delivery
	// within the window (bounded, unlike full in-sequence state).
	DedupWindow sim.Duration

	// MaxSeqJump bounds the forward distance between the receiver's next
	// expected sequence number and an arriving I-frame's. The monotone
	// numbering makes the legitimate jump small — at most the live window,
	// itself bounded by the numbering size (§2.3) — so a frame claiming a
	// far-future number can only be forged or corrupted-yet-CRC-valid, and
	// accepting it would both flood the NAK lists with millions of
	// phantom gaps and advance the watermark past every genuine frame in
	// flight (permanently wedging the link, since all real traffic then
	// classifies as duplicate). Frames beyond the bound are discarded and
	// counted (lams_implausible_seq_total). Zero means DefaultMaxSeqJump.
	MaxSeqJump uint32

	// Metrics, when non-nil, is the registry the endpoints report their
	// lams_* observability counters, gauges, and histograms into (see
	// instruments.go for the full name list). Nil leaves the endpoints
	// uninstrumented at near-zero cost.
	Metrics *metrics.Registry
}

// DefaultMaxSeqJump is the MaxSeqJump applied when the field is zero: far
// wider than any legitimate live window the paper's operating points
// produce (NumberingSize tops out in the hundreds), yet small enough that
// a forged far-future sequence number cannot materialize phantom state.
const DefaultMaxSeqJump = 1 << 12

// SeqJumpLimit returns the effective MaxSeqJump.
func (c Config) SeqJumpLimit() uint32 {
	if c.MaxSeqJump == 0 {
		return DefaultMaxSeqJump
	}
	return c.MaxSeqJump
}

// Defaults returns a configuration tuned for the paper's environment: a
// 2,000–10,000 km laser link at a few hundred Mbps.
func Defaults(roundTrip sim.Duration) Config {
	return Config{
		Timing: arq.Timing{
			RoundTrip: roundTrip,
			ProcTime:  10 * sim.Microsecond, // below t_f at 300 Mbps/1 KiB: the removal-rate assumption of §4 holds
		},
		CheckpointInterval: 10 * sim.Millisecond,
		CumulationDepth:    3,
		StopGoHigh:         0.75,
		StopGoLow:          0.5,
		RateDecrease:       0.5,
		RateIncrease:       1.25,
		MinRateFraction:    1.0 / 64,
	}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if c.CheckpointInterval <= 0 {
		return fmt.Errorf("lamsdlc: checkpoint interval must be positive, got %v", c.CheckpointInterval)
	}
	if c.CumulationDepth < 1 {
		return fmt.Errorf("lamsdlc: cumulation depth must be >= 1, got %d", c.CumulationDepth)
	}
	if c.SendBufferCap < 0 || c.RecvBufferCap < 0 {
		return fmt.Errorf("lamsdlc: negative buffer capacity")
	}
	if c.RateDecrease <= 0 || c.RateDecrease >= 1 {
		return fmt.Errorf("lamsdlc: RateDecrease must be in (0,1), got %v", c.RateDecrease)
	}
	if c.RateIncrease <= 1 {
		return fmt.Errorf("lamsdlc: RateIncrease must be > 1, got %v", c.RateIncrease)
	}
	if c.MinRateFraction <= 0 || c.MinRateFraction > 1 {
		return fmt.Errorf("lamsdlc: MinRateFraction must be in (0,1], got %v", c.MinRateFraction)
	}
	if c.StopGoHigh <= 0 || c.StopGoHigh > 1 {
		return fmt.Errorf("lamsdlc: StopGoHigh must be in (0,1], got %v", c.StopGoHigh)
	}
	if c.StopGoLow <= 0 || c.StopGoLow > 1 {
		return fmt.Errorf("lamsdlc: StopGoLow must be in (0,1], got %v", c.StopGoLow)
	}
	if c.StopGoHigh < c.StopGoLow {
		return fmt.Errorf("lamsdlc: StopGoHigh below StopGoLow")
	}
	if c.RequestRetries < 0 {
		return fmt.Errorf("lamsdlc: negative RequestRetries")
	}
	// Every recovery window must come out positive and un-saturated, or the
	// sender's timers are nonsense: CheckpointTimeout saturates to the int64
	// horizon when C_depth·W_cp overflows (sim.Scale clamps), after which
	// FailureTimeout and ResolvingPeriod wrap negative when the round trip
	// is added. A failure timer that never fires — or fires instantly —
	// silently disables §3.2's failure declaration.
	if ct := c.CheckpointTimeout(); ct <= 0 || ct == sim.Duration(1<<63-1) {
		return fmt.Errorf("lamsdlc: CheckpointTimeout (C_depth*W_cp) overflows, got %v", ct)
	}
	if ft := c.FailureTimeout(); ft <= 0 {
		return fmt.Errorf("lamsdlc: FailureTimeout must be positive, got %v", ft)
	}
	if rp := c.ResolvingPeriod(); rp <= 0 {
		return fmt.Errorf("lamsdlc: ResolvingPeriod must be positive, got %v", rp)
	}
	return nil
}

// WithLinkLifetime implements arq.EngineConfig: the session layer sets the
// remaining pass duration so §3.2's recoverable-failure test has the real
// lifetime.
func (c Config) WithLinkLifetime(d sim.Duration) arq.EngineConfig {
	c.LinkLifetime = d
	return c
}

// RecoveryWindows implements arq.WindowsProvider: the timing bounds the
// §3.2 invariant checker asserts against this configuration.
func (c Config) RecoveryWindows() arq.RecoveryWindows {
	return arq.RecoveryWindows{
		CheckpointTimer: c.CheckpointTimerTimeout(),
		FailureTimeout:  c.FailureTimeout(),
		ResolvingPeriod: c.ResolvingPeriod(),
		RoundTrip:       c.RoundTrip,
	}
}

// CheckpointTimeout is the nominal checkpoint-timer timeout, C_depth·W_cp
// (§3.2).
func (c Config) CheckpointTimeout() sim.Duration {
	return sim.Scale(c.CheckpointInterval, c.CumulationDepth)
}

// CheckpointTimerTimeout is the timeout the sender actually arms:
// C_depth·W_cp plus 1.5 intervals of phase grace. The grace makes §3.3's
// burst-immunity condition exact: a burst of length just under
// C_depth·W_cp can, at worst phase, destroy C_depth consecutive checkpoint
// emissions, leaving an inter-arrival gap of (C_depth+1)·W_cp — the paper's
// nominal timeout would read that as link failure even though the condition
// C_depth·W_cp > L_burst holds.
func (c Config) CheckpointTimerTimeout() sim.Duration {
	return c.CheckpointTimeout() + c.CheckpointInterval + c.CheckpointInterval/2
}

// ExpectedResponse is the normal time from emitting a Request-NAK to
// receiving its Enforced-NAK: a round trip plus processing.
func (c Config) ExpectedResponse() sim.Duration {
	return c.RoundTrip + c.ProcTime
}

// FailureTimeout is the failure-timer duration: the expected response time
// plus C_depth·W_cp (§3.2).
func (c Config) FailureTimeout() sim.Duration {
	return c.ExpectedResponse() + c.CheckpointTimeout()
}

// ResolvingPeriod bounds how long a transmitted I-frame can remain
// unresolved while checkpoints keep flowing: R + ½W_cp + C_depth·W_cp
// (§3.3). The sender retransmits (renumbered) any frame older than this
// that no checkpoint has covered.
func (c Config) ResolvingPeriod() sim.Duration {
	return c.RoundTrip + c.CheckpointInterval/2 + c.CheckpointTimeout()
}

// DedupHorizon returns a safe DedupWindow: four resolving periods, covering
// a conservative retransmission triggered at the very end of the coverage
// break plus its flight and processing.
func (c Config) DedupHorizon() sim.Duration {
	return 4 * c.ResolvingPeriod()
}

// NumberingSize returns the bound on simultaneously outstanding sequence
// numbers implied by the resolving period for the given mean frame time
// t_f (§2.3: numbering size = H_frame / t_f, with H_frame bounded by the
// resolving period in LAMS-DLC). The division rounds up: at frame times
// that do not divide the resolving period, truncation would undercount by
// one — a frame started just inside the period still occupies a number —
// so the bound is ceil(RP/t_f) + 1 (the +1 covers the partially elapsed
// slot at the window's leading edge).
func (c Config) NumberingSize(frameTime sim.Duration) int {
	if frameTime <= 0 {
		return 0
	}
	rp := c.ResolvingPeriod()
	n := rp / frameTime
	if rp%frameTime != 0 {
		n++
	}
	return int(n) + 1
}
