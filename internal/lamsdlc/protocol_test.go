package lamsdlc

import (
	"testing"
	"testing/quick"

	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/sim"
)

// scenario bundles a wired-up protocol run for tests.
type scenario struct {
	sched    *sim.Scheduler
	pair     *Pair
	link     *channel.Link
	got      map[uint64]int // datagram ID -> delivery count
	order    []uint64
	failedAt sim.Time
	failMsg  string
}

type scenarioOpts struct {
	cfg      Config
	pipe     channel.PipeConfig
	seed     uint64
	asymBtoA *channel.PipeConfig
}

func newScenario(t *testing.T, opts scenarioOpts) *scenario {
	t.Helper()
	sched := sim.NewScheduler()
	rng := sim.NewRNG(opts.seed)
	var link *channel.Link
	if opts.asymBtoA != nil {
		link = channel.NewAsymmetricLink(sched, opts.pipe, *opts.asymBtoA, rng)
	} else {
		link = channel.NewLink(sched, opts.pipe, rng)
	}
	sc := &scenario{sched: sched, link: link, got: make(map[uint64]int)}
	sc.pair = NewPair(sched, link, opts.cfg,
		func(now sim.Time, dg arq.Datagram, seq uint32) {
			sc.got[dg.ID]++
			sc.order = append(sc.order, dg.ID)
		},
		func(now sim.Time, reason string) {
			sc.failedAt = now
			sc.failMsg = reason
		})
	sc.pair.Start()
	return sc
}

// enqueueAll submits n datagrams of the given payload size immediately.
func (sc *scenario) enqueueAll(n, size int) {
	for i := 0; i < n; i++ {
		if !sc.pair.Sender.Enqueue(arq.Datagram{ID: uint64(i), Payload: make([]byte, size)}) {
			panic("enqueue rejected")
		}
	}
}

// baseCfg is the standard test configuration: a 4000 km link (R ~ 27ms)
// checkpointed every 10ms with depth 3.
func baseCfg() Config {
	cfg := Defaults(26 * sim.Millisecond)
	cfg.CheckpointInterval = 10 * sim.Millisecond
	cfg.CumulationDepth = 3
	cfg.ProcTime = 10 * sim.Microsecond
	return cfg
}

func basePipe() channel.PipeConfig {
	return channel.PipeConfig{
		RateBps: 100e6,
		Delay:   channel.ConstantDelay(13 * sim.Millisecond),
	}
}

func (sc *scenario) runFor(d sim.Duration) { sc.sched.RunFor(d) }

func (sc *scenario) assertAllDelivered(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if sc.got[uint64(i)] == 0 {
			t.Fatalf("datagram %d lost (delivered %d/%d)", i, len(sc.got), n)
		}
	}
}

func (sc *scenario) duplicates() int {
	d := 0
	for _, c := range sc.got {
		if c > 1 {
			d += c - 1
		}
	}
	return d
}

func TestPerfectChannelDeliversAllInOrderNoRetx(t *testing.T) {
	sc := newScenario(t, scenarioOpts{cfg: baseCfg(), pipe: basePipe(), seed: 1})
	const n = 500
	sc.enqueueAll(n, 1024)
	sc.runFor(5 * sim.Second)
	sc.assertAllDelivered(t, n)
	if d := sc.duplicates(); d != 0 {
		t.Fatalf("%d duplicates on a perfect channel", d)
	}
	m := sc.pair.Metrics()
	if m.Retransmissions.Value() != 0 {
		t.Fatalf("%d retransmissions on a perfect channel", m.Retransmissions.Value())
	}
	// Out-of-sequence service: on a perfect channel delivery order is
	// nevertheless FIFO.
	for i, id := range sc.order {
		if id != uint64(i) {
			t.Fatalf("order[%d] = %d", i, id)
		}
	}
	if sc.pair.Sender.Unacked() != 0 {
		t.Fatalf("%d frames never released", sc.pair.Sender.Unacked())
	}
}

func TestSenderBufferDrainsAndHoldingBounded(t *testing.T) {
	sc := newScenario(t, scenarioOpts{cfg: baseCfg(), pipe: basePipe(), seed: 2})
	sc.enqueueAll(200, 1024)
	sc.runFor(5 * sim.Second)
	m := sc.pair.Metrics()
	if m.HoldingTime.N() != 200 {
		t.Fatalf("released %d frames, want 200", m.HoldingTime.N())
	}
	// Error-free holding time is bounded by roughly R + 1.5*W_cp + proc.
	bound := float64(baseCfg().RoundTrip + 2*baseCfg().CheckpointInterval)
	if m.HoldingTime.Max() > bound {
		t.Fatalf("max holding %v exceeds error-free bound %v",
			sim.Duration(m.HoldingTime.Max()), sim.Duration(bound))
	}
}

// corruptEveryNth corrupts I-frame transmissions count ≡ 0 (mod n), 1-based.
type corruptNth struct {
	targets map[int]bool
	count   int
}

func (c *corruptNth) Corrupt(_ *sim.RNG, _, _ sim.Time, _ int) bool {
	c.count++
	return c.targets[c.count]
}

func TestSingleCorruptionRecoversViaCheckpointNAK(t *testing.T) {
	pipe := basePipe()
	pipe.IModel = &corruptNth{targets: map[int]bool{3: true}} // third I-frame dies
	sc := newScenario(t, scenarioOpts{cfg: baseCfg(), pipe: pipe, seed: 3})
	sc.enqueueAll(10, 1024)
	sc.runFor(2 * sim.Second)
	sc.assertAllDelivered(t, 10)
	m := sc.pair.Metrics()
	if m.Retransmissions.Value() != 1 {
		t.Fatalf("retransmissions = %d, want exactly 1 (stale NAKs must be ignored)",
			m.Retransmissions.Value())
	}
	if d := sc.duplicates(); d != 0 {
		t.Fatalf("%d duplicates", d)
	}
	// The retransmission carries a fresh sequence number: 10 firsts + 1
	// retransmission = 11 sequence numbers consumed.
	if got := sc.pair.Sender.NextSeq(); got != 11 {
		t.Fatalf("NextSeq = %d, want 11", got)
	}
}

func TestCorruptedTrailingFrameRecoveredByResolvingTimeout(t *testing.T) {
	// The last frame of a burst is corrupted and no later frame reveals
	// the gap; the sender's resolving-period timeout must recover it.
	pipe := basePipe()
	pipe.IModel = &corruptNth{targets: map[int]bool{10: true}} // last of 10
	sc := newScenario(t, scenarioOpts{cfg: baseCfg(), pipe: pipe, seed: 4})
	sc.enqueueAll(10, 1024)
	sc.runFor(3 * sim.Second)
	sc.assertAllDelivered(t, 10)
	if sc.pair.Metrics().Retransmissions.Value() == 0 {
		t.Fatal("expected a resolving-timeout retransmission")
	}
	if sc.pair.Sender.Unacked() != 0 {
		t.Fatal("trailing frame never released")
	}
}

func TestRandomLossZeroLossInvariant(t *testing.T) {
	pipe := basePipe()
	pipe.IModel = channel.FixedProb{P: 0.2}
	pipe.CModel = channel.FixedProb{P: 0.05}
	sc := newScenario(t, scenarioOpts{cfg: baseCfg(), pipe: pipe, seed: 5})
	const n = 300
	sc.enqueueAll(n, 1024)
	sc.runFor(30 * sim.Second)
	sc.assertAllDelivered(t, n)
	if sc.failedAt != 0 {
		t.Fatalf("spurious link failure: %s", sc.failMsg)
	}
}

func TestZeroLossProperty(t *testing.T) {
	// Property: for random error rates and seeds, every datagram is
	// delivered at least once while the link stays up.
	f := func(seed uint16, pfRaw, pcRaw uint8) bool {
		pf := float64(pfRaw%40) / 100 // 0..0.39
		pc := float64(pcRaw%20) / 100 // 0..0.19
		pipe := basePipe()
		pipe.IModel = channel.FixedProb{P: pf}
		pipe.CModel = channel.FixedProb{P: pc}
		cfg := baseCfg()
		sched := sim.NewScheduler()
		link := channel.NewLink(sched, pipe, sim.NewRNG(uint64(seed)+1))
		got := map[uint64]int{}
		pair := NewPair(sched, link, cfg,
			func(_ sim.Time, dg arq.Datagram, _ uint32) { got[dg.ID]++ }, nil)
		pair.Start()
		const n = 60
		for i := 0; i < n; i++ {
			pair.Sender.Enqueue(arq.Datagram{ID: uint64(i), Payload: make([]byte, 512)})
		}
		sched.RunFor(60 * sim.Second)
		for i := 0; i < n; i++ {
			if got[uint64(i)] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointLossCostsOneIntervalNotRoundTrip(t *testing.T) {
	// §3.3's key claim: a lost checkpoint adds ~W_cp to holding time, not
	// a round trip. Corrupt exactly one checkpoint and compare max holding
	// with the clean run.
	clean := newScenario(t, scenarioOpts{cfg: baseCfg(), pipe: basePipe(), seed: 6})
	clean.enqueueAll(50, 1024)
	clean.runFor(3 * sim.Second)

	pipe := basePipe()
	lossy := newScenario(t, scenarioOpts{cfg: baseCfg(), pipe: pipe, seed: 6,
		asymBtoA: &channel.PipeConfig{
			RateBps: pipe.RateBps,
			Delay:   pipe.Delay,
			CModel:  &corruptNth{targets: map[int]bool{2: true}},
		}})
	lossy.enqueueAll(50, 1024)
	lossy.runFor(3 * sim.Second)

	lossy.assertAllDelivered(t, 50)
	dmax := lossy.pair.Metrics().HoldingTime.Max() - clean.pair.Metrics().HoldingTime.Max()
	wcp := float64(baseCfg().CheckpointInterval)
	if dmax > 2*wcp {
		t.Fatalf("checkpoint loss cost %v of holding, want <= ~%v",
			sim.Duration(dmax), sim.Duration(2*wcp))
	}
	if lossy.pair.Metrics().Retransmissions.Value() != 0 {
		t.Fatalf("checkpoint loss must not cause retransmissions, got %d",
			lossy.pair.Metrics().Retransmissions.Value())
	}
}

func TestEnforcedRecoveryAfterCheckpointSilence(t *testing.T) {
	sc := newScenario(t, scenarioOpts{cfg: baseCfg(), pipe: basePipe(), seed: 7})
	sc.enqueueAll(20, 1024)
	sc.runFor(200 * sim.Millisecond) // everything delivered, link idle

	// Kill the reverse path: checkpoints stop reaching the sender.
	sc.link.BtoA.SetDown(true)
	sc.runFor(baseCfg().CheckpointTimerTimeout() + 5*sim.Millisecond)
	if !sc.pair.Sender.Recovering() {
		t.Fatal("sender should be in enforced recovery after checkpoint silence")
	}
	if sc.pair.Sender.Failed() {
		t.Fatal("failed too early")
	}
	// New I-frames are suspended during recovery.
	sc.pair.Sender.Enqueue(arq.Datagram{ID: 1000, Payload: make([]byte, 64)})
	sc.runFor(5 * sim.Millisecond)
	if sc.got[1000] != 0 {
		t.Fatal("new I-frame sent during enforced recovery")
	}

	// Restore the reverse path; the next checkpoint is not enforced (the
	// Request-NAK was lost with the link down), so the sender still can't
	// send new frames, but its retry/request must eventually elicit an
	// Enforced-NAK and resume.
	sc.link.BtoA.SetDown(false)
	sc.runFor(2 * sim.Second)
	if sc.pair.Sender.Recovering() || sc.pair.Sender.Failed() {
		t.Fatalf("recovery did not complete: recovering=%v failed=%v (%s)",
			sc.pair.Sender.Recovering(), sc.pair.Sender.Failed(), sc.failMsg)
	}
	if sc.got[1000] == 0 {
		t.Fatal("datagram queued during recovery never delivered")
	}
}

func TestLinkFailureDeclaredWithinBound(t *testing.T) {
	cfg := baseCfg()
	sc := newScenario(t, scenarioOpts{cfg: cfg, pipe: basePipe(), seed: 8})
	sc.enqueueAll(5, 512)
	sc.runFor(200 * sim.Millisecond)
	killAt := sc.sched.Now()
	sc.link.Fail()
	sc.runFor(10 * sim.Second)
	if sc.failedAt == 0 {
		t.Fatal("link failure never declared")
	}
	// Detection bound: last checkpoint + the armed checkpoint timer
	// + failure timeout, plus one checkpoint interval of phase slack.
	bound := cfg.CheckpointTimerTimeout() + cfg.FailureTimeout() + cfg.CheckpointInterval
	if got := sc.failedAt.Sub(killAt); got > bound {
		t.Fatalf("failure declared after %v, bound %v", got, bound)
	}
	if !sc.pair.Sender.Failed() {
		t.Fatal("Failed() should report true")
	}
	// Post-failure enqueues are refused.
	if sc.pair.Sender.Enqueue(arq.Datagram{ID: 9999}) {
		t.Fatal("enqueue accepted after failure")
	}
}

func TestFailureRetainsUndeliveredDatagramsForRerouting(t *testing.T) {
	cfg := baseCfg()
	sc := newScenario(t, scenarioOpts{cfg: cfg, pipe: basePipe(), seed: 9})
	// Kill the link instantly so nothing gets through.
	sc.link.Fail()
	sc.enqueueAll(7, 512)
	sc.runFor(20 * sim.Second)
	if sc.failedAt == 0 {
		t.Fatal("failure not declared")
	}
	und := sc.pair.Sender.UnreleasedDatagrams()
	if len(und) != 7 {
		t.Fatalf("%d unreleased datagrams, want 7", len(und))
	}
}

func TestRequestRetriesExtendRecovery(t *testing.T) {
	cfg := baseCfg()
	cfg.RequestRetries = 2
	sc := newScenario(t, scenarioOpts{cfg: cfg, pipe: basePipe(), seed: 10})
	sc.runFor(100 * sim.Millisecond)
	killAt := sc.sched.Now()
	sc.link.Fail()
	sc.runFor(20 * sim.Second)
	if sc.failedAt == 0 {
		t.Fatal("failure not declared")
	}
	// 1 try + 2 retries, minus up to one checkpoint interval of phase slack
	// (the checkpoint timer was last re-armed by the final checkpoint
	// before the kill).
	minBound := cfg.CheckpointTimeout() - cfg.CheckpointInterval + 3*cfg.FailureTimeout()
	if got := sc.failedAt.Sub(killAt); got < minBound {
		t.Fatalf("failed after %v, want >= %v with retries", got, minBound)
	}
}

func TestUnrecoverableFailureByLinkLifetime(t *testing.T) {
	cfg := baseCfg()
	cfg.LinkLifetime = 100 * sim.Millisecond
	sc := newScenario(t, scenarioOpts{cfg: cfg, pipe: basePipe(), seed: 11})
	sc.runFor(90 * sim.Millisecond)
	sc.link.Fail()
	// The checkpoint timer fires ~45ms later, at which point the remaining
	// lifetime (< 0) cannot fit the expected response: fail immediately,
	// without waiting out the failure timer.
	sc.runFor(cfg.CheckpointTimerTimeout() + 15*sim.Millisecond)
	if sc.failedAt == 0 {
		t.Fatal("unrecoverable failure not declared promptly")
	}
}

func TestFlowControlThrottlesAndRecovers(t *testing.T) {
	cfg := baseCfg()
	cfg.RecvBufferCap = 16
	cfg.ProcTime = 500 * sim.Microsecond // receiver slower than the wire
	pipe := basePipe()
	sc := newScenario(t, scenarioOpts{cfg: cfg, pipe: pipe, seed: 12})
	const n = 400
	sc.enqueueAll(n, 1024)
	sc.runFor(60 * sim.Second)
	sc.assertAllDelivered(t, n)
	m := sc.pair.Metrics()
	if m.RateChanges.Value() == 0 {
		t.Fatal("flow control never engaged")
	}
	if sc.pair.Sender.RateFraction() > 1 {
		t.Fatal("rate fraction above 1")
	}
	// Receiver queue must have respected its cap.
	if occ := m.RecvBufOcc.Max(); occ > float64(cfg.RecvBufferCap) {
		t.Fatalf("receive buffer exceeded cap: %v", occ)
	}
}

func TestSendBufferCapRejectsEnqueue(t *testing.T) {
	cfg := baseCfg()
	cfg.SendBufferCap = 5
	sc := newScenario(t, scenarioOpts{cfg: cfg, pipe: basePipe(), seed: 13})
	accepted := 0
	for i := 0; i < 10; i++ {
		if sc.pair.Sender.Enqueue(arq.Datagram{ID: uint64(i), Payload: make([]byte, 64)}) {
			accepted++
		}
	}
	if accepted != 5 {
		t.Fatalf("accepted %d, want 5", accepted)
	}
	sc.runFor(sim.Second)
	// After the buffer drains, capacity is available again.
	if !sc.pair.Sender.Enqueue(arq.Datagram{ID: 100, Payload: make([]byte, 64)}) {
		t.Fatal("enqueue refused after drain")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, uint64, uint64, int) {
		pipe := basePipe()
		pipe.IModel = channel.FixedProb{P: 0.15}
		pipe.CModel = channel.FixedProb{P: 0.05}
		sc := newScenario(t, scenarioOpts{cfg: baseCfg(), pipe: pipe, seed: 99})
		sc.enqueueAll(200, 1024)
		sc.runFor(20 * sim.Second)
		m := sc.pair.Metrics()
		return m.Retransmissions.Value(), m.Delivered.Value(),
			m.ControlSent.Value(), len(sc.order)
	}
	r1a, r1b, r1c, r1d := run()
	r2a, r2b, r2c, r2d := run()
	if r1a != r2a || r1b != r2b || r1c != r2c || r1d != r2d {
		t.Fatalf("nondeterministic run: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			r1a, r1b, r1c, r1d, r2a, r2b, r2c, r2d)
	}
}

func TestReceiverGapDetectionAndCumulativeNAKs(t *testing.T) {
	// Drive a receiver directly: deliver seqs 0,1,4 — the checkpoint must
	// NAK 2,3 and repeat them for C_depth checkpoints.
	sched := sim.NewScheduler()
	cfg := baseCfg()
	var sent []*frame.Frame
	w := &recordWire{frames: &sent}
	m := &arq.Metrics{}
	r := NewReceiver(sched, w, cfg, m, nil)
	r.Start()
	for _, seq := range []uint32{0, 1, 4} {
		r.HandleFrame(sched.Now(), frame.NewI(seq, uint64(seq), nil))
	}
	// Run through C_depth+1 checkpoint intervals.
	sched.RunFor(cfg.CheckpointInterval*sim.Duration(cfg.CumulationDepth+1) + sim.Millisecond)
	if len(sent) < cfg.CumulationDepth+1 {
		t.Fatalf("only %d checkpoints emitted", len(sent))
	}
	for i := 0; i < cfg.CumulationDepth; i++ {
		cp := sent[i]
		if cp.Ack != 5 {
			t.Fatalf("checkpoint %d ack = %d, want 5", i, cp.Ack)
		}
		if len(cp.NAKs) != 2 || cp.NAKs[0] != 2 || cp.NAKs[1] != 3 {
			t.Fatalf("checkpoint %d naks = %v, want [2 3]", i, cp.NAKs)
		}
	}
	// After C_depth checkpoints the report generation expires.
	if last := sent[cfg.CumulationDepth]; len(last.NAKs) != 0 {
		t.Fatalf("expired errors still reported: %v", last.NAKs)
	}
}

func TestReceiverAnswersRequestNAKImmediately(t *testing.T) {
	sched := sim.NewScheduler()
	cfg := baseCfg()
	var sent []*frame.Frame
	m := &arq.Metrics{}
	r := NewReceiver(sched, &recordWire{frames: &sent}, cfg, m, nil)
	r.Start()
	r.HandleFrame(sched.Now(), frame.NewI(0, 0, nil))
	r.HandleFrame(sched.Now(), frame.NewI(3, 3, nil)) // gap: 1,2
	r.HandleFrame(sched.Now(), frame.NewRequestNAK(7))
	if len(sent) != 1 {
		t.Fatalf("%d frames sent, want immediate enforced NAK", len(sent))
	}
	e := sent[0]
	if !e.Enforced {
		t.Fatal("response not enforced")
	}
	if e.Seq != 7 {
		t.Fatalf("request serial echo = %d, want 7", e.Seq)
	}
	if len(e.NAKs) != 2 {
		t.Fatalf("enforced NAKs = %v", e.NAKs)
	}
	// Corrupted Request-NAK is ignored.
	req := frame.NewRequestNAK(8)
	req.Corrupted = true
	r.HandleFrame(sched.Now(), req)
	if len(sent) != 1 {
		t.Fatal("corrupted request answered")
	}
}

func TestReceiverIgnoresStaleAndCorrupted(t *testing.T) {
	sched := sim.NewScheduler()
	m := &arq.Metrics{}
	var sent []*frame.Frame
	r := NewReceiver(sched, &recordWire{frames: &sent}, baseCfg(), m, nil)
	r.Start()
	r.HandleFrame(sched.Now(), frame.NewI(0, 0, nil))
	r.HandleFrame(sched.Now(), frame.NewI(1, 1, nil))
	before := m.Delivered.Value()
	r.HandleFrame(sched.Now(), frame.NewI(0, 0, nil)) // stale duplicate
	corrupt := frame.NewI(2, 2, nil)
	corrupt.Corrupted = true
	r.HandleFrame(sched.Now(), corrupt)
	sched.RunFor(sim.Millisecond)
	if r.Expected() != 2 {
		t.Fatalf("expected = %d, want 2", r.Expected())
	}
	_ = before
	if m.Delivered.Value() != 2 {
		t.Fatalf("delivered = %d, want 2", m.Delivered.Value())
	}
}

// recordWire captures outbound frames for direct-drive tests.
type recordWire struct {
	frames *[]*frame.Frame
}

func (w *recordWire) Send(f *frame.Frame)              { *w.frames = append(*w.frames, f.Clone()) }
func (w *recordWire) TxTime(*frame.Frame) sim.Duration { return 0 }

func TestSenderIgnoresCorruptedCheckpoints(t *testing.T) {
	sched := sim.NewScheduler()
	var sent []*frame.Frame
	m := &arq.Metrics{}
	s := NewSender(sched, &recordWire{frames: &sent}, baseCfg(), m, nil)
	s.Start()
	s.Enqueue(arq.Datagram{ID: 1, Payload: make([]byte, 16)})
	sched.RunFor(sim.Millisecond)
	cp := frame.NewCheckpoint(1, 1, nil, false, false)
	cp.Corrupted = true
	s.HandleFrame(sched.Now(), cp)
	if s.Unacked() != 1 {
		t.Fatal("corrupted checkpoint affected sender state")
	}
	// A clean one releases.
	s.HandleFrame(sched.Now(), frame.NewCheckpoint(2, 1, nil, false, false))
	if s.Unacked() != 0 {
		t.Fatal("clean checkpoint did not release")
	}
}

func TestCoverageGapTriggersConservativeRetransmit(t *testing.T) {
	// A serial jump greater than C_depth means a whole report generation
	// may have been lost; watermark releases would risk silent loss, so
	// the sender must retransmit instead.
	sched := sim.NewScheduler()
	var sent []*frame.Frame
	m := &arq.Metrics{}
	cfg := baseCfg() // C_depth = 3
	s := NewSender(sched, &recordWire{frames: &sent}, cfg, m, nil)
	s.Start()
	s.Enqueue(arq.Datagram{ID: 1, Payload: make([]byte, 16)})
	sched.RunFor(sim.Millisecond)
	s.HandleFrame(sched.Now(), frame.NewCheckpoint(1, 0, nil, false, false))
	// Let more than a round trip pass so the frame is not considered
	// in-flight, then jump the serial by C_depth+1.
	sched.RunFor(cfg.RoundTrip + sim.Millisecond)
	s.HandleFrame(sched.Now(), frame.NewCheckpoint(5, 1, nil, false, false))
	if m.Retransmissions.Value() != 1 {
		t.Fatalf("retransmissions = %d, want 1 (conservative path)", m.Retransmissions.Value())
	}
	if s.Unacked() != 1 {
		t.Fatal("entry should remain held under a new seq")
	}
	// Continuous coverage with the new seq acked releases it.
	s.HandleFrame(sched.Now(), frame.NewCheckpoint(6, s.NextSeq(), nil, false, false))
	if s.Unacked() != 0 {
		t.Fatal("release after coverage restored failed")
	}
}

func TestSaturatedSenderBufferIsTransparentSized(t *testing.T) {
	// Under saturation with moderate errors the unacked population must
	// stabilize near B_LAMS = (1/t_f)*s*(R + (n_cp - 1/2) I_cp) rather
	// than grow: LAMS-DLC's transparent buffer property (§4).
	cfg := baseCfg()
	pipe := basePipe()
	pipe.IModel = channel.FixedProb{P: 0.1}
	pipe.CModel = channel.FixedProb{P: 0.02}
	sc := newScenario(t, scenarioOpts{cfg: cfg, pipe: pipe, seed: 14})
	const n = 3000
	sc.enqueueAll(n, 1024)
	sc.runFor(60 * sim.Second)
	sc.assertAllDelivered(t, n)

	tf := 1045 * 8.0 / 100e6 // wire bytes / rate, seconds
	sBar := 1 / (1 - 0.1)
	nCp := 1 / (1 - 0.02)
	r := baseCfg().RoundTrip.Seconds()
	icp := baseCfg().CheckpointInterval.Seconds()
	bLams := (1 / tf) * sBar * (r + (nCp-0.5)*icp)
	maxUnacked := sc.pair.Metrics().SendBufOcc.Max()
	if maxUnacked > 3*bLams+float64(n) { // queue includes untransmitted backlog
		t.Fatalf("sender occupancy %v way beyond transparent size %v", maxUnacked, bLams)
	}
}

func TestShutdownStopsWithoutFailure(t *testing.T) {
	sc := newScenario(t, scenarioOpts{cfg: baseCfg(), pipe: basePipe(), seed: 30})
	sc.enqueueAll(5, 256)
	sc.runFor(5 * sim.Millisecond)
	sc.pair.Sender.Shutdown()
	sc.runFor(20 * sim.Second)
	if sc.pair.Metrics().Failures.Value() != 0 {
		t.Fatal("shutdown counted as failure")
	}
	if sc.failedAt != 0 {
		t.Fatal("failure callback invoked after shutdown")
	}
	if sc.pair.Sender.Enqueue(arq.Datagram{ID: 99}) {
		t.Fatal("enqueue accepted after shutdown")
	}
	// Idempotent.
	sc.pair.Sender.Shutdown()
}
