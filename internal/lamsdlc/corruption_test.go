package lamsdlc

import (
	"testing"

	"repro/internal/arq"
	"repro/internal/frame"
	"repro/internal/sim"
)

// Regression tests for the recovery-path bugs the corruption adversary
// surfaced (ISSUE 9). Each pins the specific failure mode with the seed or
// the direct frame sequence that reproduced it.

// TestImplausibleSeqJumpDiscarded: before MaxSeqJump, one forged I-frame
// with a far-future sequence number appended millions of phantom NAKs and
// advanced the watermark past all genuine traffic, permanently wedging the
// link (every real frame then classified as a below-watermark duplicate).
func TestImplausibleSeqJumpDiscarded(t *testing.T) {
	sc := newScenario(t, scenarioOpts{cfg: baseCfg(), pipe: basePipe(), seed: 11})
	sc.enqueueAll(20, 256)
	sc.runFor(200 * sim.Millisecond)
	before := sc.pair.Receiver.Expected()

	ghost := frame.Get()
	ghost.Kind = frame.KindI
	ghost.Seq = before + sc.pair.cfg.SeqJumpLimit() + 1000
	ghost.DatagramID = 1 << 62
	ghost.Payload = make([]byte, 64)
	sc.link.AtoB.Send(ghost)
	frame.Put(ghost)
	sc.runFor(100 * sim.Millisecond)

	if got := sc.pair.Receiver.Expected(); got != before+20 && got < before {
		t.Fatalf("watermark moved implausibly: %d -> %d", before, got)
	}
	if sc.got[1<<62] != 0 {
		t.Fatal("forged datagram was delivered")
	}
	// The link must still work: fresh traffic flows to completion.
	for i := 0; i < 20; i++ {
		sc.pair.Sender.Enqueue(arq.Datagram{ID: 100 + uint64(i), Payload: make([]byte, 256)})
	}
	sc.runFor(2 * sim.Second)
	for i := 0; i < 20; i++ {
		if sc.got[100+uint64(i)] == 0 {
			t.Fatalf("post-ghost datagram %d never delivered: link wedged", 100+i)
		}
	}
}

// TestFutureDedupRecordExpires: a future-dated dedup record (writable only
// by state corruption) made now.Sub(at) negative, which the expiry loop
// read as "inside the window" — the FIFO wedged behind it and the seen map
// grew without bound, breaking §3.2's memory-bound argument.
func TestFutureDedupRecordExpires(t *testing.T) {
	cfg := baseCfg()
	cfg.DedupWindow = cfg.DedupHorizon()
	sc := newScenario(t, scenarioOpts{cfg: cfg, pipe: basePipe(), seed: 12})
	sc.enqueueAll(10, 128)
	sc.runFor(200 * sim.Millisecond)

	// Corrupt: wedge the FIFO head with a far-future record.
	r := sc.pair.Receiver
	now := sc.sched.Now()
	future := now.Add(1000 * cfg.DedupWindow)
	r.seen[1<<62] = future
	r.dedupAge.PushBack(dedupRec{id: 1 << 62, at: future})

	// Drive steady traffic across four windows so incremental expiry (it
	// runs on each delivery) has continuous opportunities to age records
	// out past the wedge.
	for i := 0; i < 200; i++ {
		at := now.Add(sim.Duration(int64(i) * int64(5*sim.Millisecond)))
		sc.sched.Schedule(at, func() {
			sc.pair.Sender.Enqueue(arq.Datagram{ID: 1000 + uint64(i), Payload: make([]byte, 128)})
		})
	}
	sc.runFor(4 * cfg.DedupWindow)

	// Population must be bounded by one window's deliveries (~49 at 5 ms
	// spacing with a ~244 ms window), not the whole history: with the bug,
	// every record behind the wedge persists (200+).
	if n := r.DedupEntries(); n > 100 {
		t.Fatalf("dedup memory holds %d entries after 4 windows: expiry wedged", n)
	}
}

// TestImplausibleWatermarkNoRelease: a forged checkpoint acknowledging
// sequence numbers never sent released every outstanding entry, silently
// dropping undelivered datagrams. The sender must refuse the watermark but
// keep the checkpoint's liveness and recovery signals.
func TestImplausibleWatermarkNoRelease(t *testing.T) {
	sc := newScenario(t, scenarioOpts{cfg: baseCfg(), pipe: basePipe(), seed: 13})
	// Hold acks back: kill the return path so nothing releases on its own.
	sc.link.BtoA.SetHandler(func(sim.Time, *frame.Frame) {})
	sc.enqueueAll(30, 256)
	sc.runFor(100 * sim.Millisecond)
	out := sc.pair.Outstanding()
	if out == 0 {
		t.Fatal("setup: nothing outstanding")
	}

	ghost := frame.Get()
	ghost.Kind = frame.KindCheckpoint
	ghost.Serial = 1
	ghost.Ack = sc.pair.Sender.NextSeq() + 5000
	sc.pair.Sender.HandleFrame(sc.sched.Now(), ghost)
	frame.Put(ghost)

	if got := sc.pair.Outstanding(); got < out {
		t.Fatalf("implausible watermark released %d entries", out-got)
	}
}

// TestRecoveryReentryWithFutureClock: a corrupted future reqSentAt made
// the overdue-response test permanently false, so a sender in Enforced
// Recovery never re-solicited on heard checkpoints and burned its retry
// budget instead. The monotone-clock repair clamps it.
func TestRecoveryReentryWithFutureClock(t *testing.T) {
	sc := newScenario(t, scenarioOpts{cfg: baseCfg(), pipe: basePipe(), seed: 14})
	sc.enqueueAll(5, 128)
	sc.runFor(100 * sim.Millisecond)
	s := sc.pair.Sender
	now := sc.sched.Now()

	// Force recovery with a poisoned future solicitation clock.
	s.recovering = true
	s.reqSentAt = now.Add(1000 * sim.Second)
	reqBefore := s.reqSerial

	// A plain (non-enforced) checkpoint arrives: with the clamp the
	// response is overdue relative to the repaired clock only after
	// ExpectedResponse, so advance past it and deliver another.
	cp := frame.Frame{Kind: frame.KindCheckpoint, Serial: 100, Ack: 0}
	s.HandleFrame(now, &cp)
	if s.reqSentAt > now {
		t.Fatalf("reqSentAt still in the future after repair: %v > %v", s.reqSentAt, now)
	}
	sc.runFor(2 * sc.pair.cfg.ExpectedResponse())
	cp2 := frame.Frame{Kind: frame.KindCheckpoint, Serial: 101, Ack: 0}
	s.HandleFrame(sc.sched.Now(), &cp2)
	if s.reqSerial == reqBefore {
		t.Fatal("sender never re-solicited: recovery re-entry still wedged")
	}
}

// TestScrambleConvergence is the seed-pinned scramble sweep for LAMS-DLC's
// bounded corruption contract: after repeated CorruptState calls stop,
// fresh traffic must flow to completion with no failure declaration.
func TestScrambleConvergence(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		cfg := baseCfg()
		cfg.DedupWindow = cfg.DedupHorizon()
		sc := newScenario(t, scenarioOpts{cfg: cfg, pipe: basePipe(), seed: seed})
		rng := sim.NewRNG(seed * 7919)
		for i := 0; i < 30; i++ {
			at := sim.Time(int64(i) * int64(10*sim.Millisecond))
			sc.sched.Schedule(at, func() {
				sc.pair.CorruptState(rng)
				sc.pair.Sender.Enqueue(arq.Datagram{ID: uint64(i + 1), Payload: make([]byte, 128)})
			})
		}
		sc.runFor(500 * sim.Millisecond)
		for i := 0; i < 40; i++ {
			sc.pair.Sender.Enqueue(arq.Datagram{ID: 1000 + uint64(i), Payload: make([]byte, 128)})
		}
		sc.runFor(5 * sim.Second)
		if sc.pair.Failed() {
			t.Fatalf("seed %d: scramble era led to failure declaration: %s", seed, sc.failMsg)
		}
		for i := 0; i < 40; i++ {
			if sc.got[1000+uint64(i)] == 0 {
				t.Fatalf("seed %d: post-scramble datagram %d never delivered", seed, 1000+i)
			}
		}
	}
}
