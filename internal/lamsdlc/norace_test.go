//go:build !race

package lamsdlc

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
