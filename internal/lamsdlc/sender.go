package lamsdlc

import (
	"fmt"
	"sync"

	"repro/internal/arq"
	"repro/internal/frame"
	"repro/internal/ring"
	"repro/internal/sim"
)

// entryPool recycles buffer entries across sender lifetimes: within one run
// release→Enqueue cycles reuse the same objects, and across a sweep of
// hermetic runs (bench.RunMany) each worker's entry population is allocated
// once instead of once per run. Entries are always zeroed before Put, so Get
// never observes stale state or pinned payload memory.
var entryPool = sync.Pool{New: func() any { return new(entry) }}

// entry is one datagram held in the sending buffer, keyed by the sequence
// number of its current incarnation (LAMS-DLC renumbers retransmissions).
type entry struct {
	dg        arq.Datagram
	seq       uint32   // current sequence number
	lastTx    sim.Time // start of the latest transmission
	holdStart sim.Time // start of the first transmission (holding time base)
	txCount   int
}

// Sender is the transmitting half of a LAMS-DLC endpoint. It is a sans-IO
// state machine driven by the scheduler's virtual clock and checkpoint
// arrivals; output goes to the wire. Not safe for concurrent use — drivers
// serialize all calls (the simulation is single-threaded; the live driver
// owns a per-endpoint event loop).
type Sender struct {
	sched *sim.Scheduler
	wire  arq.Wire
	cfg   Config
	m     *arq.Metrics
	im    senderInstr

	queue   ring.Ring[arq.Datagram] // accepted, not yet first-transmitted
	ordered []*entry                // unacknowledged, ascending current seq
	nextSeq uint32

	// Run-scoped scratch, recycled across checkpoints so the steady state
	// allocates nothing (ISSUE 6): released buffer entries return to
	// entryPool, the per-checkpoint naked-seq set is a bitset spanning the
	// live window, the retransmit decision list keeps its capacity, and
	// outbound frames are built in a reusable scratch frame (the Wire
	// contract says implementations copy on Send).
	nakBits []uint64
	retxBuf []retxDecision
	txf     frame.Frame

	// Send pacing.
	pumpTimer    *sim.Timer
	pumpArmed    bool
	wireFreeAt   sim.Time
	rateFraction float64

	// Checkpoint / failure supervision.
	cpTimer      *sim.Timer
	failTimer    *sim.Timer
	lastRxSerial uint32
	haveRxSerial bool
	recovering   bool
	failed       bool
	reqSerial    uint32
	retriesLeft  int
	startAt      sim.Time
	lastCpAt     sim.Time
	reqSentAt    sim.Time
	maxLiveSpan  uint32 // widest nextSeq − oldestUnacked observed

	probe     *Probe
	onFailure arq.FailureFunc
}

// NewSender constructs a sender. metrics may be shared with the peer
// receiver; onFailure may be nil.
func NewSender(sched *sim.Scheduler, wire arq.Wire, cfg Config, m *arq.Metrics, onFailure arq.FailureFunc) *Sender {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Sender{
		sched:        sched,
		wire:         wire,
		cfg:          cfg,
		m:            m,
		im:           newSenderInstr(cfg.Metrics),
		rateFraction: 1,
		retriesLeft:  cfg.RequestRetries,
		onFailure:    onFailure,
	}
	s.im.rateFraction.Set(1)
	s.pumpTimer = sim.NewTimer(sched, s.pump)
	s.cpTimer = sim.NewTimer(sched, s.onCheckpointTimeout)
	s.failTimer = sim.NewTimer(sched, s.onFailureTimeout)
	return s
}

// Start records the link-activation instant (for LinkLifetime accounting)
// and arms the checkpoint timer with an initialization grace of the expected
// response time plus C_depth·W_cp. §3.2 arms the timer at the first
// checkpoint arrival, which presumes a separate link-initialization
// procedure; arming at Start closes the gap where a link that never comes up
// would never be declared failed.
func (s *Sender) Start() {
	s.startAt = s.sched.Now()
	s.cpTimer.Start(s.cfg.ExpectedResponse() + s.cfg.CheckpointTimerTimeout())
}

// Failed reports whether the sender has declared the link failed.
func (s *Sender) Failed() bool { return s.failed }

// Recovering reports whether an Enforced Recovery is in progress (new
// I-frames suspended).
func (s *Sender) Recovering() bool { return s.recovering }

// Outstanding returns the number of unacknowledged frames plus queued
// datagrams — the sending-buffer occupancy whose transparent bound §4
// derives.
func (s *Sender) Outstanding() int { return len(s.ordered) + s.queue.Len() }

// QueuedDatagrams returns only the not-yet-transmitted backlog.
func (s *Sender) QueuedDatagrams() int { return s.queue.Len() }

// Unacked returns the number of transmitted-but-unreleased frames.
func (s *Sender) Unacked() int { return len(s.ordered) }

// NextSeq exposes the next sequence number to be assigned (tests and the
// numbering-size experiment use it).
func (s *Sender) NextSeq() uint32 { return s.nextSeq }

// RateFraction returns the current flow-control send-rate fraction.
func (s *Sender) RateFraction() float64 { return s.rateFraction }

// MaxLiveSpan returns the widest span of simultaneously live sequence
// numbers observed (next assignment minus the oldest unacknowledged). The
// numbering-size experiment checks it against the resolving-period bound of
// §2.3/§3.3.
func (s *Sender) MaxLiveSpan() uint32 { return s.maxLiveSpan }

func (s *Sender) noteSpan() {
	if len(s.ordered) == 0 {
		return
	}
	if span := s.nextSeq - s.ordered[0].seq; span > s.maxLiveSpan {
		s.maxLiveSpan = span
	}
}

// Enqueue accepts a datagram from the network layer. It returns false when
// the sending buffer is at capacity or the link has failed; the network
// layer retries or routes around, mirroring the store-and-forward model.
func (s *Sender) Enqueue(dg arq.Datagram) bool {
	if s.failed {
		return false
	}
	if s.cfg.SendBufferCap > 0 && s.Outstanding() >= s.cfg.SendBufferCap {
		return false
	}
	dg.EnqueuedAt = s.sched.Now()
	s.queue.PushBack(dg)
	s.m.Submitted.Inc()
	s.noteOccupancy()
	s.schedulePump(0)
	return true
}

// newEntry fetches a zeroed buffer entry from the pool.
func (s *Sender) newEntry() *entry {
	return entryPool.Get().(*entry)
}

// freeEntry recycles a released buffer entry. The entry is zeroed before Put
// so the pool never pins payload memory and Get hands out clean objects.
func (s *Sender) freeEntry(e *entry) {
	*e = entry{}
	entryPool.Put(e)
}

// sendI transmits e's current incarnation via the scratch frame, returning
// the frame for pacing math. The Wire contract (arq.Wire) says Send copies;
// the scratch is valid until the sender's next send.
func (s *Sender) sendI(e *entry) *frame.Frame {
	s.txf = frame.Frame{
		Kind:       frame.KindI,
		Seq:        e.seq,
		DatagramID: e.dg.ID,
		Payload:    e.dg.Payload,
		EnqueuedNS: int64(e.dg.EnqueuedAt),
	}
	s.wire.Send(&s.txf)
	return &s.txf
}

// schedulePump arms the pump after d, unless an earlier pump is pending.
func (s *Sender) schedulePump(d sim.Duration) {
	at := s.sched.Now().Add(d)
	if s.pumpArmed && s.pumpTimer.Deadline() <= at {
		return
	}
	s.pumpArmed = true
	s.pumpTimer.StartAt(at)
}

// pump transmits new I-frames while the protocol and pacing allow. New
// frames are paced at the wire rate scaled by the flow-control fraction;
// retransmissions bypass pacing (§4: retransmitted I-frames mix freely with
// transmissions).
func (s *Sender) pump() {
	s.pumpArmed = false
	if s.failed || s.recovering {
		return
	}
	now := s.sched.Now()
	// The pacing debt is bounded by one resolving period (see retransmit);
	// a wireFreeAt further out than that was written by state corruption,
	// not by budget accounting, and honoring it would halt new I-frames
	// for arbitrarily long on an otherwise healthy link.
	if limit := now.Add(s.cfg.ResolvingPeriod()); s.wireFreeAt > limit {
		s.wireFreeAt = limit
	}
	if now < s.wireFreeAt {
		s.schedulePump(s.wireFreeAt.Sub(now))
		return
	}
	if s.queue.Len() == 0 {
		return
	}
	dg := s.queue.PopFront()
	e := s.newEntry()
	e.dg, e.seq, e.lastTx, e.holdStart = dg, s.nextSeq, now, now
	s.nextSeq++
	s.ordered = append(s.ordered, e)
	e.txCount = 1
	f := s.sendI(e)
	s.m.FirstTx.Inc()
	s.im.firstTx.Inc()
	if s.probe != nil && s.probe.FirstTransmission != nil {
		s.probe.FirstTransmission(now, e.seq, e.dg.ID)
	}
	s.noteSpan()
	s.noteOccupancy()

	// Pace the next new frame: one frame time at the scaled rate.
	tx := s.wire.TxTime(f)
	gap := sim.Duration(float64(tx) / s.rateFraction)
	s.wireFreeAt = now.Add(gap)
	if s.queue.Len() > 0 {
		s.schedulePump(gap)
	}
}

// HandleFrame processes an arriving control frame. Information frames never
// arrive at a sender; the endpoint wiring routes frames by direction.
func (s *Sender) HandleFrame(now sim.Time, f *frame.Frame) {
	if s.failed {
		return
	}
	if f.Corrupted {
		return // undecodable; the periodic process retries implicitly
	}
	switch f.Kind {
	case frame.KindCheckpoint:
		s.handleCheckpoint(now, f)
	default:
		// A sender can legitimately see no other kinds; ignore garbage.
	}
}

func (s *Sender) handleCheckpoint(now sim.Time, f *frame.Frame) {
	// A watermark above anything ever transmitted cannot be a genuine
	// positive acknowledgement: either the frame is forged, or the
	// receiver's own watermark was poisoned past nextSeq by forged
	// I-frames. Trusting it would release every outstanding entry —
	// silently losing datagrams that were never delivered. Distrust ONLY
	// the watermark (effAck = 0 disables releases this round) and keep
	// processing everything else: the liveness re-arm, the NAK list
	// (window-checked, so worst case is a spurious retransmission), and
	// the enforced-recovery correlation. Discarding the whole frame
	// instead would wedge a live link whose receiver watermark ran ahead
	// — every checkpoint would read as silence, recovery would halt the
	// pump, and nextSeq could never catch up to re-legitimize the
	// watermark.
	effAck := f.Ack
	if f.Ack > s.nextSeq {
		effAck = 0
		s.im.implausibleCp.Inc()
	}
	// Any readable checkpoint proves the receiver is alive: re-arm the
	// checkpoint timer (§3.2: reset to zero after each Check-Point).
	s.lastCpAt = now
	s.cpTimer.Start(s.cfg.CheckpointTimerTimeout())
	s.im.cpHeard.Inc()
	s.im.naksHeard.Add(uint64(len(f.NAKs)))
	if s.probe != nil && s.probe.CheckpointHeard != nil {
		s.probe.CheckpointHeard(now, f.Serial, f.Enforced)
	}

	// Coverage tracking: each error is reported in C_depth consecutive
	// checkpoints. If the serial jumped by more than C_depth, at least one
	// error report generation may have been lost entirely, so watermark
	// releases below are unsafe this round (DESIGN.md §4.2).
	covered := true
	if s.haveRxSerial && f.Serial > s.lastRxSerial {
		covered = f.Serial-s.lastRxSerial <= uint32(s.cfg.CumulationDepth)
	}
	if !s.haveRxSerial || f.Serial > s.lastRxSerial {
		s.haveRxSerial = true
		s.lastRxSerial = f.Serial
	}

	// Naked-sequence lookup as a bitset over the live window [base,
	// nextSeq): the live span is bounded by the numbering size (§2.3), so
	// the bitset is small, and it recycles across checkpoints where the
	// old per-checkpoint map allocated. Stale NAKs naming retired seqs
	// fall outside the window and are dropped here, exactly as they
	// missed the old map.
	var nakBase, nakSpan uint32
	if len(f.NAKs) > 0 && len(s.ordered) > 0 {
		nakBase = s.ordered[0].seq
		nakSpan = s.nextSeq - nakBase
		words := int(nakSpan+63) / 64
		if cap(s.nakBits) < words {
			s.nakBits = make([]uint64, words)
		} else {
			s.nakBits = s.nakBits[:words]
			clear(s.nakBits)
		}
		for _, n := range f.NAKs {
			if d := n - nakBase; d < nakSpan {
				s.nakBits[d>>6] |= 1 << (d & 63)
			}
		}
	}

	// Flow control (§3.4): every checkpoint adjusts the rate.
	s.applyStopGo(f.StopGo)

	if f.Enforced {
		s.im.enforcedHeard.Inc()
	}
	if s.recovering {
		// Monotone-clock repair: reqSentAt can only sit in the future if
		// state corruption wrote it there, and a future solicitation
		// instant disables the overdue-response re-solicit below (and the
		// free retry in onFailureTimeout) indefinitely. Clamping to now
		// restores the invariant every later comparison assumes; the cost
		// is at most one ExpectedResponse of extra patience.
		if s.reqSentAt > now {
			s.reqSentAt = now
		}
		if f.Enforced {
			// Enforced-NAK / Resolving command answers our Request-NAK and
			// ends Enforced Recovery. The C_depth·W_cp silence window
			// restarts from this response (the unconditional cpTimer.Start
			// above), not from the original Request-NAK.
			s.failTimer.Stop()
			s.recovering = false
			s.retriesLeft = s.cfg.RequestRetries
			if s.probe != nil && s.probe.RecoveryEnded != nil {
				s.probe.RecoveryEnded(now, true)
			}
		} else if now.Sub(s.reqSentAt) >= s.cfg.ExpectedResponse() {
			// A plain checkpoint during recovery, arriving after the
			// outstanding solicitation's response is already overdue,
			// proves the receiver alive and the Request-NAK (or its
			// Enforced-NAK) lost. Solicit again immediately — §3.2 keeps
			// new I-frames suspended until the enforced response, so
			// waiting out the rest of the failure timer before re-asking
			// stalled a demonstrably live link for up to a FailureTimeout
			// after a checkpoint blackout ended. Re-arming from here also
			// restarts the failure timer, so the silence window is always
			// measured from the latest solicitation. Bounded to one
			// solicitation per heard checkpoint (W_cp apart) and gated on
			// the overdue response, this cannot storm. The retry budget is
			// not consumed: it guards against a genuinely silent peer.
			s.sendRequestNAK()
		}
	}

	// Walk the ordered buffer once, deciding each entry's fate. Kept
	// entries compact in place (w is the write index) and the
	// retransmission list reuses its backing array, so the walk itself
	// allocates nothing.
	resolving := s.cfg.ResolvingPeriod()
	retransmit := s.retxBuf[:0]
	w := 0
	for _, e := range s.ordered {
		d := e.seq - nakBase
		isNaked := nakSpan > 0 && d < nakSpan && s.nakBits[d>>6]&(1<<(d&63)) != 0
		switch {
		case isNaked:
			// First notification for this incarnation: retransmit under
			// a new number. (Stale NAKs name retired seqs and miss.)
			retransmit = append(retransmit, retxDecision{e, RetxNAK})
			s.im.retxNAK.Inc()
		case e.seq < effAck && covered:
			// Covered positive acknowledgement: release buffer space.
			s.release(now, e)
		case e.seq < effAck && !covered:
			// Watermark says delivered but the report chain is broken;
			// retransmit rather than risk loss (duplicates are resolved
			// downstream). Frames still in flight are left alone.
			if now.Sub(e.lastTx) >= s.cfg.RoundTrip {
				retransmit = append(retransmit, retxDecision{e, RetxCoverage})
				s.im.retxCoverage.Inc()
			} else {
				s.ordered[w] = e
				w++
			}
		case f.Enforced && now.Sub(e.lastTx) >= s.cfg.RoundTrip:
			// Enforced recovery: the receiver has never seen this frame
			// although it has had a full round trip to arrive — resend.
			retransmit = append(retransmit, retxDecision{e, RetxEnforced})
			s.im.retxEnforced.Inc()
		case now.Sub(e.lastTx) >= resolving:
			// Resolving-period timeout (§3.3): an unreported frame this
			// old can only be a corrupted trailing frame with no
			// successor to reveal the gap.
			retransmit = append(retransmit, retxDecision{e, RetxResolving})
			s.im.retxResolving.Inc()
		default:
			s.ordered[w] = e
			w++
		}
	}
	for i := w; i < len(s.ordered); i++ {
		s.ordered[i] = nil
	}
	s.ordered = s.ordered[:w]
	s.retxBuf = retransmit
	for _, d := range retransmit {
		s.retransmit(now, d.e, d.cause)
	}
	if len(s.ordered) > 0 {
		s.im.liveSpan.Observe(float64(s.nextSeq - s.ordered[0].seq))
	}
	s.noteSpan()
	s.noteOccupancy()
	s.schedulePump(0)
}

// retxDecision pairs a buffer entry with the reason the checkpoint walk
// chose to retransmit it.
type retxDecision struct {
	e     *entry
	cause RetxCause
}

// retransmit re-sends e under a fresh sequence number and re-appends it to
// the ordered buffer (new seq = highest, so order is preserved).
func (s *Sender) retransmit(now sim.Time, e *entry, cause RetxCause) {
	old := e.seq
	e.seq = s.nextSeq
	s.nextSeq++
	e.lastTx = now
	e.txCount++
	s.ordered = append(s.ordered, e)
	f := s.sendI(e)
	s.m.Retransmissions.Inc()
	s.im.retx.Inc()
	if s.probe != nil && s.probe.Retransmitted != nil {
		s.probe.Retransmitted(now, old, e.seq, e.dg.ID, cause)
	}
	// Retransmissions jump the pacing queue (§4: they mix freely with
	// transmissions) but still consume send-rate budget; without this,
	// under overload, unpaced retransmissions inflate the wire backlog
	// past the resolving period and false resolving timeouts feed a
	// retransmission storm.
	s.wireFreeAt = sim.MaxTime(now, s.wireFreeAt).Add(s.wire.TxTime(f))
	// But the budget debt must stay bounded: during a one-directional
	// outage (I-frames vanishing while checkpoints keep flowing) every
	// outstanding frame is retransmitted once per resolving period into
	// the dead beam, and unbounded accumulation here left wireFreeAt
	// minutes ahead of the clock — a re-established link stayed halted
	// for new I-frames long after traffic could flow again. One resolving
	// period of debt preserves the anti-storm back-pressure (retransmission
	// volume per checkpoint refills it faster than it drains under real
	// overload) while capping the post-restoration stall.
	if limit := now.Add(s.cfg.ResolvingPeriod()); s.wireFreeAt > limit {
		s.wireFreeAt = limit
	}
}

// release frees the buffer slot and records the holding time. The entry
// returns to the freelist; the caller must drop its reference.
func (s *Sender) release(now sim.Time, e *entry) {
	s.m.HoldingTime.Add(float64(now.Sub(e.holdStart)))
	s.im.releases.Inc()
	s.im.holdingNS.Observe(float64(now.Sub(e.holdStart)))
	if s.probe != nil && s.probe.Released != nil {
		s.probe.Released(now, e.seq, e.dg.ID)
	}
	s.freeEntry(e)
}

func (s *Sender) applyStopGo(stop bool) {
	old := s.rateFraction
	if stop {
		s.rateFraction *= s.cfg.RateDecrease
		if s.rateFraction < s.cfg.MinRateFraction {
			s.rateFraction = s.cfg.MinRateFraction
		}
	} else if s.rateFraction < 1 {
		s.rateFraction *= s.cfg.RateIncrease
		if s.rateFraction > 1 {
			s.rateFraction = 1
		}
	}
	if s.rateFraction != old {
		s.m.RateChanges.Inc()
		s.im.rateChanges.Inc()
		s.im.rateFraction.Set(s.rateFraction)
	}
}

// onCheckpointTimeout fires when C_depth·W_cp passed with no checkpoint:
// the sender suspects link failure and begins Enforced Recovery (§3.2).
func (s *Sender) onCheckpointTimeout() {
	if s.failed || s.recovering {
		return
	}
	if !s.recoverableFailure() {
		s.declareFailure("link lifetime exhausted before enforced recovery could complete")
		return
	}
	s.startEnforcedRecovery()
}

func (s *Sender) startEnforcedRecovery() {
	s.recovering = true
	if s.probe != nil && s.probe.RecoveryStarted != nil {
		s.probe.RecoveryStarted(s.sched.Now())
	}
	s.sendRequestNAK()
}

func (s *Sender) sendRequestNAK() {
	s.reqSerial++
	s.reqSentAt = s.sched.Now()
	if s.probe != nil && s.probe.RequestNAKSent != nil {
		s.probe.RequestNAKSent(s.reqSentAt, s.reqSerial)
	}
	s.txf = frame.Frame{Kind: frame.KindRequestNAK, Serial: s.reqSerial}
	s.wire.Send(&s.txf)
	s.m.ControlSent.Inc()
	s.m.Recoveries.Inc()
	s.im.reqNAKs.Inc()
	s.im.recoveries.Inc()
	s.failTimer.Start(s.cfg.FailureTimeout())
}

// recoverableFailure implements §3.2's "provided that the expected response
// time is within the remaining link lifetime".
func (s *Sender) recoverableFailure() bool {
	if s.cfg.LinkLifetime <= 0 {
		return true
	}
	elapsed := s.sched.Now().Sub(s.startAt)
	remaining := s.cfg.LinkLifetime - elapsed
	return s.cfg.ExpectedResponse() <= remaining
}

func (s *Sender) onFailureTimeout() {
	if s.failed {
		return
	}
	// Same monotone-clock repair as the recovery branch of
	// handleCheckpoint: a corrupted future reqSentAt must not turn the
	// live-receiver free retry below into a budgeted one.
	if now := s.sched.Now(); s.reqSentAt > now {
		s.reqSentAt = now
	}
	// If regular checkpoints arrived after the Request-NAK went out, the
	// receiver is demonstrably alive and only the Request-NAK or its
	// Enforced-NAK was lost on the noisy channel: solicit again rather
	// than declare a live link dead. This does not consume the retry
	// budget — the budget guards against a genuinely silent peer.
	if s.lastCpAt > s.reqSentAt && s.recoverableFailure() {
		s.sendRequestNAK()
		return
	}
	if s.retriesLeft > 0 && s.recoverableFailure() {
		s.retriesLeft--
		s.sendRequestNAK()
		return
	}
	s.declareFailure(fmt.Sprintf("no enforced-NAK within %v of request-NAK", s.cfg.FailureTimeout()))
}

func (s *Sender) declareFailure(reason string) {
	s.failed = true
	s.recovering = false
	s.cpTimer.Stop()
	s.failTimer.Stop()
	s.pumpTimer.Stop()
	s.pumpArmed = false
	s.m.Failures.Inc()
	s.im.failures.Inc()
	if s.probe != nil && s.probe.FailureDeclared != nil {
		s.probe.FailureDeclared(s.sched.Now(), reason)
	}
	if s.onFailure != nil {
		s.onFailure(s.sched.Now(), reason)
	}
}

// Shutdown stops all timers and refuses further work without declaring a
// failure: orderly link teardown at the end of a pass (the session layer
// reclaims UnreleasedDatagrams for the next pass).
func (s *Sender) Shutdown() {
	if s.failed {
		return
	}
	s.failed = true
	s.recovering = false
	s.cpTimer.Stop()
	s.failTimer.Stop()
	s.pumpTimer.Stop()
	s.pumpArmed = false
}

// UnreleasedDatagrams returns the datagrams still held (queued or unacked),
// in order. After a declared failure the network layer re-routes them.
func (s *Sender) UnreleasedDatagrams() []arq.Datagram {
	out := make([]arq.Datagram, 0, s.Outstanding())
	for _, e := range s.ordered {
		out = append(out, e.dg)
	}
	for i := 0; i < s.queue.Len(); i++ {
		out = append(out, s.queue.At(i))
	}
	return out
}

func (s *Sender) noteOccupancy() {
	s.m.SendBufOcc.Update(int64(s.sched.Now()), float64(s.Outstanding()))
	s.im.outstanding.Set(float64(s.Outstanding()))
}
