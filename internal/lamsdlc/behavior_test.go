package lamsdlc

import (
	"bytes"
	"testing"

	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/sim"
)

// TestPayloadIntegrityEndToEnd verifies the bytes that come out are the
// bytes that went in, per datagram, across a lossy channel with
// retransmissions and renumbering.
func TestPayloadIntegrityEndToEnd(t *testing.T) {
	pipe := basePipe()
	pipe.IModel = channel.FixedProb{P: 0.25}
	pipe.CModel = channel.FixedProb{P: 0.05}
	sched := sim.NewScheduler()
	link := channel.NewLink(sched, pipe, sim.NewRNG(77))
	got := map[uint64][]byte{}
	pair := NewPair(sched, link, baseCfg(), func(_ sim.Time, dg arq.Datagram, _ uint32) {
		if _, dup := got[dg.ID]; !dup {
			got[dg.ID] = append([]byte(nil), dg.Payload...)
		}
	}, nil)
	pair.Start()
	const n = 150
	want := make([][]byte, n)
	for i := 0; i < n; i++ {
		p := make([]byte, 64+i)
		for j := range p {
			p[j] = byte(i * (j + 3))
		}
		want[i] = p
		pair.Sender.Enqueue(arq.Datagram{ID: uint64(i), Payload: p})
	}
	sched.RunFor(30 * sim.Second)
	for i := 0; i < n; i++ {
		if !bytes.Equal(got[uint64(i)], want[i]) {
			t.Fatalf("datagram %d payload mismatch", i)
		}
	}
}

// TestDeliveryDelayMeasured checks that the enqueue-to-delivery delay
// metric reflects propagation: it must be at least the one-way flight time
// and close to it on a clean link.
func TestDeliveryDelayMeasured(t *testing.T) {
	sc := newScenario(t, scenarioOpts{cfg: baseCfg(), pipe: basePipe(), seed: 40})
	sc.enqueueAll(50, 512)
	sc.runFor(2 * sim.Second)
	mean := sim.Duration(sc.pair.Metrics().DeliveryDelay.Mean())
	oneWay := 13 * sim.Millisecond
	if mean < oneWay {
		t.Fatalf("mean delay %v below flight time %v", mean, oneWay)
	}
	if mean > oneWay+5*sim.Millisecond {
		t.Fatalf("mean delay %v too large for a clean link", mean)
	}
}

// TestRateFloorRespected drives Stop-Go continuously and checks the rate
// never undershoots MinRateFraction.
func TestRateFloorRespected(t *testing.T) {
	sched := sim.NewScheduler()
	var sent []*frame.Frame
	cfg := baseCfg()
	cfg.MinRateFraction = 0.1
	m := &arq.Metrics{}
	s := NewSender(sched, &recordWire{frames: &sent}, cfg, m, nil)
	s.Start()
	for i := uint32(1); i <= 30; i++ {
		s.HandleFrame(sched.Now(), frame.NewCheckpoint(i, 0, nil, true, false))
		if s.RateFraction() < cfg.MinRateFraction {
			t.Fatalf("rate %v under floor after %d stop checkpoints", s.RateFraction(), i)
		}
	}
	if s.RateFraction() != cfg.MinRateFraction {
		t.Fatalf("rate %v, want pinned at floor %v", s.RateFraction(), cfg.MinRateFraction)
	}
	// Recovery is multiplicative and capped at 1.
	for i := uint32(31); i <= 80; i++ {
		s.HandleFrame(sched.Now(), frame.NewCheckpoint(i, 0, nil, false, false))
	}
	if s.RateFraction() != 1 {
		t.Fatalf("rate %v after sustained go, want 1", s.RateFraction())
	}
}

// TestStopGoHysteresis exercises the receiver's high/low watermarks.
func TestStopGoHysteresis(t *testing.T) {
	sched := sim.NewScheduler()
	cfg := baseCfg()
	cfg.RecvBufferCap = 8
	cfg.StopGoHigh = 0.75     // assert at 6
	cfg.StopGoLow = 0.25      // clear at 2
	cfg.ProcTime = sim.Second // park frames in the queue
	var sent []*frame.Frame
	m := &arq.Metrics{}
	r := NewReceiver(sched, &recordWire{frames: &sent}, cfg, m, nil)
	r.Start()
	for seq := uint32(0); seq < 6; seq++ {
		r.HandleFrame(sched.Now(), frame.NewI(seq, uint64(seq), nil))
	}
	// Queue length 5 + 1 in service... occupancy counts queued frames.
	if !r.StopGoAsserted() {
		t.Fatalf("stop-go not asserted at queue %d/8", r.QueueLen())
	}
	// Drain: with a 1s proc time, run virtual time forward.
	sched.RunFor(5 * sim.Second)
	if r.StopGoAsserted() {
		t.Fatalf("stop-go still asserted at queue %d", r.QueueLen())
	}
}

// TestErrorReportedExactlyCdepthTimes is the cumulative-NAK contract: a
// detected error appears in exactly C_depth consecutive checkpoints.
func TestErrorReportedExactlyCdepthTimes(t *testing.T) {
	for _, cd := range []int{1, 2, 3, 5} {
		sched := sim.NewScheduler()
		cfg := baseCfg()
		cfg.CumulationDepth = cd
		var sent []*frame.Frame
		r := NewReceiver(sched, &recordWire{frames: &sent}, cfg, &arq.Metrics{}, nil)
		r.Start()
		r.HandleFrame(sched.Now(), frame.NewI(0, 0, nil))
		r.HandleFrame(sched.Now(), frame.NewI(2, 2, nil)) // gap: seq 1
		sched.RunFor(cfg.CheckpointInterval * sim.Duration(cd+3))
		reports := 0
		for _, cp := range sent {
			for _, nak := range cp.NAKs {
				if nak == 1 {
					reports++
				}
			}
		}
		if reports != cd {
			t.Fatalf("C_depth=%d: error reported %d times", cd, reports)
		}
	}
}

// TestRecoveryBlocksNewFramesButAllowsRetransmission pins down the §3.2
// rule: during enforced recovery, plain checkpoints may trigger Check-Point
// Recovery (retransmissions) but no new I-frames flow.
func TestRecoveryBlocksNewFramesButAllowsRetransmission(t *testing.T) {
	sched := sim.NewScheduler()
	var sent []*frame.Frame
	cfg := baseCfg()
	m := &arq.Metrics{}
	s := NewSender(sched, &recordWire{frames: &sent}, cfg, m, nil)
	s.Start()
	s.Enqueue(arq.Datagram{ID: 1, Payload: make([]byte, 8)})
	sched.RunFor(sim.Millisecond) // first frame out (seq 0)
	// Silence until enforced recovery.
	sched.RunFor(cfg.ExpectedResponse() + cfg.CheckpointTimerTimeout() + sim.Millisecond)
	if !s.Recovering() {
		t.Fatal("not recovering")
	}
	txBefore := len(sent)
	// New datagram is accepted but must not be transmitted.
	s.Enqueue(arq.Datagram{ID: 2, Payload: make([]byte, 8)})
	sched.RunFor(10 * sim.Millisecond)
	// A plain (non-enforced) checkpoint NAKing seq 0 arrives.
	s.HandleFrame(sched.Now(), frame.NewCheckpoint(1, 0, []uint32{0}, false, false))
	sched.RunFor(10 * sim.Millisecond)
	var retx, newTx int
	for _, f := range sent[txBefore:] {
		if f.Kind != frame.KindI {
			continue
		}
		if f.DatagramID == 1 {
			retx++
		} else {
			newTx++
		}
	}
	if retx != 1 {
		t.Fatalf("checkpoint recovery during enforced recovery: retx = %d, want 1", retx)
	}
	if newTx != 0 {
		t.Fatalf("%d new I-frames sent during enforced recovery", newTx)
	}
	if m.Retransmissions.Value() != 1 {
		t.Fatalf("retransmissions metric = %d", m.Retransmissions.Value())
	}
	// The enforced response resumes normal service.
	s.HandleFrame(sched.Now(), frame.NewCheckpoint(2, 0, nil, false, true))
	sched.RunFor(10 * sim.Millisecond)
	found := false
	for _, f := range sent {
		if f.Kind == frame.KindI && f.DatagramID == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("queued datagram not sent after recovery completed")
	}
}

// TestOverflowDiscardIsNAKed confirms §3.4: "the receiver discards the
// overflowing I-frames while sending control with the Stop-Go-bit set" and
// the discard is reported like an error so the sender retransmits.
func TestOverflowDiscardIsNAKed(t *testing.T) {
	sched := sim.NewScheduler()
	cfg := baseCfg()
	cfg.RecvBufferCap = 2
	cfg.ProcTime = sim.Second // nothing drains
	var sent []*frame.Frame
	m := &arq.Metrics{}
	r := NewReceiver(sched, &recordWire{frames: &sent}, cfg, m, nil)
	r.Start()
	for seq := uint32(0); seq < 4; seq++ {
		r.HandleFrame(sched.Now(), frame.NewI(seq, uint64(seq), nil))
	}
	if m.RecvDropped.Value() == 0 {
		t.Fatal("no overflow discard")
	}
	sched.RunFor(cfg.CheckpointInterval + sim.Millisecond)
	last := sent[len(sent)-1]
	if last.Kind != frame.KindCheckpoint {
		t.Fatal("no checkpoint emitted")
	}
	if len(last.NAKs) == 0 {
		t.Fatal("overflow discard not NAKed")
	}
	if !last.StopGo {
		t.Fatal("overflow checkpoint without Stop-Go")
	}
}

// TestSenderSeqMonotone is the numbering discipline: every transmitted
// I-frame, first or retransmitted, carries a strictly increasing N(S).
func TestSenderSeqMonotone(t *testing.T) {
	pipe := basePipe()
	pipe.IModel = channel.FixedProb{P: 0.3}
	pipe.CModel = channel.FixedProb{P: 0.1}
	sched := sim.NewScheduler()
	link := channel.NewLink(sched, pipe, sim.NewRNG(88))
	var seqs []uint32
	link.AtoB.SetHandler(func(_ sim.Time, f *frame.Frame) {
		if !f.Corrupted && f.Kind == frame.KindI {
			seqs = append(seqs, f.Seq)
		}
	})
	m := &arq.Metrics{}
	s := NewSender(sched, link.AtoB, baseCfg(), m, nil)
	// Feed checkpoints from a scripted receiver to exercise renumbering.
	r := NewReceiver(sched, link.BtoA, baseCfg(), m, nil)
	link.BtoA.SetHandler(s.HandleFrame)
	link.AtoB.SetHandler(func(now sim.Time, f *frame.Frame) {
		if !f.Corrupted && f.Kind == frame.KindI {
			seqs = append(seqs, f.Seq)
		}
		r.HandleFrame(now, f)
	})
	s.Start()
	r.Start()
	for i := 0; i < 100; i++ {
		s.Enqueue(arq.Datagram{ID: uint64(i), Payload: make([]byte, 256)})
	}
	sched.RunFor(20 * sim.Second)
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("sequence numbers not strictly increasing at %d: %d then %d",
				i, seqs[i-1], seqs[i])
		}
	}
	if m.Retransmissions.Value() == 0 {
		t.Fatal("expected renumbered retransmissions at 30% frame loss")
	}
}

// TestDedupWindowZeroDuplication exercises the "more recent version" of
// §3.2: with DedupWindow enabled the DLC itself guarantees zero duplication
// even across coverage breaks that force conservative retransmission.
func TestDedupWindowZeroDuplication(t *testing.T) {
	cfg := baseCfg()
	cfg.DedupWindow = cfg.DedupHorizon()
	// At P_C = 0.5 genuinely silent failure-timeout windows occur; a
	// generous retry budget keeps the link up so the test isolates the
	// duplicate path.
	cfg.RequestRetries = 10
	// Corrupt long trains of checkpoints to force coverage gaps (the
	// duplicate-generating path).
	pipe := basePipe()
	pipe.IModel = channel.FixedProb{P: 0.1}
	pipe.CModel = channel.FixedProb{P: 0.5} // brutal control channel
	sc := newScenario(t, scenarioOpts{cfg: cfg, pipe: pipe, seed: 60})
	// Trickle traffic so frames are in flight whenever a coverage break
	// (≥ C_depth consecutive checkpoint losses) happens; a burst transfer
	// would complete before the first break.
	const n = 3000
	id := uint64(0)
	var feed func()
	feed = func() {
		if id < n {
			sc.pair.Sender.Enqueue(arq.Datagram{ID: id, Payload: make([]byte, 512)})
			id++
			sc.sched.ScheduleAfter(3*sim.Millisecond, feed)
		}
	}
	sc.sched.ScheduleAfter(0, feed)
	sc.runFor(120 * sim.Second)
	sc.assertAllDelivered(t, n)
	if d := sc.duplicates(); d != 0 {
		t.Fatalf("%d duplicates reached the network layer with dedup enabled", d)
	}
	if sc.pair.Metrics().DupSuppressed.Value() == 0 {
		t.Fatal("expected the dedup window to actually suppress something at P_C=0.5")
	}
}

// TestDedupMemoryBounded: the dedup map must not grow with the transfer
// size, only with deliveries inside the window.
func TestDedupMemoryBounded(t *testing.T) {
	cfg := baseCfg()
	cfg.DedupWindow = 50 * sim.Millisecond
	sc := newScenario(t, scenarioOpts{cfg: cfg, pipe: basePipe(), seed: 61})
	const n = 2000
	sc.enqueueAll(n, 512)
	sc.runFor(10 * sim.Second)
	sc.assertAllDelivered(t, n)
	// 100 Mbps / 533-byte frames ≈ 23k frames/s; a 50ms window holds
	// ~1170; pruning is amortized per window so allow 3x.
	if got := sc.pair.Receiver.DedupEntries(); got > 3500 {
		t.Fatalf("dedup memory %d entries, want bounded by the window", got)
	}
}

// TestDedupOffByDefault keeps the baseline behavior unchanged.
func TestDedupOffByDefault(t *testing.T) {
	sc := newScenario(t, scenarioOpts{cfg: baseCfg(), pipe: basePipe(), seed: 62})
	sc.enqueueAll(10, 64)
	sc.runFor(sim.Second)
	if sc.pair.Receiver.DedupEntries() != 0 {
		t.Fatal("dedup memory allocated without DedupWindow")
	}
}
