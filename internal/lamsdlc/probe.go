package lamsdlc

import "repro/internal/arq"

// Probe and RetxCause moved to internal/arq when the endpoint contract was
// lifted out of this package (every engine shares one probe surface); the
// aliases keep the protocol-local spelling the tests and checker grew up
// with.
type (
	// Probe observes protocol state transitions (see arq.Probe).
	Probe = arq.Probe
	// RetxCause classifies why the sender retransmitted a frame.
	RetxCause = arq.RetxCause
)

// Retransmission causes (the LAMS-DLC subset of arq's partition).
const (
	RetxNAK       = arq.RetxNAK
	RetxCoverage  = arq.RetxCoverage
	RetxEnforced  = arq.RetxEnforced
	RetxResolving = arq.RetxResolving
)

// SetProbe installs the transition observer; nil detaches. Install before
// Start: the probe is read synchronously by the state machine.
func (s *Sender) SetProbe(p *Probe) { s.probe = p }

// SetProbe installs the transition observer; nil detaches.
func (r *Receiver) SetProbe(p *Probe) { r.probe = p }
