package lamsdlc

import (
	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/sim"
)

// Pair wires a Sender and a Receiver across a full-duplex simulated link:
// I-frames flow A→B, checkpoint traffic flows B→A. It is the one-line setup
// the experiments and examples use for unidirectional data transfer (a
// bidirectional node runs one Pair per direction; see internal/node), and
// the LAMS-DLC implementation of the arq.Pair engine contract.
type Pair struct {
	Sender   *Sender
	Receiver *Receiver
	cfg      Config
	metrics  *arq.Metrics
	link     *channel.Link
}

// NewPair builds and wires the endpoints. deliver and onFailure may be nil.
func NewPair(sched *sim.Scheduler, link *channel.Link, cfg Config, deliver arq.DeliverFunc, onFailure arq.FailureFunc) *Pair {
	m := &arq.Metrics{}
	s := NewSender(sched, link.AtoB, cfg, m, onFailure)
	r := NewReceiver(sched, link.BtoA, cfg, m, deliver)
	link.AtoB.SetHandler(r.HandleFrame)
	link.BtoA.SetHandler(s.HandleFrame)
	return &Pair{Sender: s, Receiver: r, cfg: cfg, metrics: m, link: link}
}

// Start activates both ends (receiver checkpointing begins immediately).
func (p *Pair) Start() {
	p.Sender.Start()
	p.Receiver.Start()
}

// Stop is orderly teardown at the end of a pass: the checkpoint process
// halts and the sender refuses further work without declaring failure;
// undelivered datagrams stay reclaimable.
func (p *Pair) Stop() {
	p.Receiver.Stop()
	p.Sender.Shutdown()
}

// Enqueue accepts a datagram from the network layer.
func (p *Pair) Enqueue(dg arq.Datagram) bool { return p.Sender.Enqueue(dg) }

// Reclaim returns the datagrams the sender still holds, oldest first.
func (p *Pair) Reclaim() []arq.Datagram { return p.Sender.UnreleasedDatagrams() }

// Outstanding returns the sending-buffer occupancy.
func (p *Pair) Outstanding() int { return p.Sender.Outstanding() }

// Failed reports whether the sender declared the link failed.
func (p *Pair) Failed() bool { return p.Sender.Failed() }

// Metrics exposes the pair's shared measurement block.
func (p *Pair) Metrics() *arq.Metrics { return p.metrics }

// Link exposes the underlying simulated link.
func (p *Pair) Link() *channel.Link { return p.link }

// SetProbe installs the transition observer on both ends.
func (p *Pair) SetProbe(pr *arq.Probe) {
	p.Sender.SetProbe(pr)
	p.Receiver.SetProbe(pr)
}

// MaxLiveSpan implements arq.SpanReporter.
func (p *Pair) MaxLiveSpan() uint32 { return p.Sender.MaxLiveSpan() }

// RateFraction implements arq.RateReporter.
func (p *Pair) RateFraction() float64 { return p.Sender.RateFraction() }

// SetCheckpointPeriod implements arq.CheckpointRetimer (fault-injected
// clock skew).
func (p *Pair) SetCheckpointPeriod(d sim.Duration) { p.Receiver.SetCheckpointPeriod(d) }

// Compile-time contract checks.
var (
	_ arq.Pair              = (*Pair)(nil)
	_ arq.SpanReporter      = (*Pair)(nil)
	_ arq.RateReporter      = (*Pair)(nil)
	_ arq.CheckpointRetimer = (*Pair)(nil)
	_ arq.Endpoint          = (*Sender)(nil)
	_ arq.Endpoint          = (*Receiver)(nil)
)
