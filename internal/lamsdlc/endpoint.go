package lamsdlc

import (
	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/sim"
)

// Pair wires a Sender and a Receiver across a full-duplex simulated link:
// I-frames flow A→B, checkpoint traffic flows B→A. It is the one-line setup
// the experiments and examples use for unidirectional data transfer (a
// bidirectional node runs one Pair per direction; see internal/node).
type Pair struct {
	Sender   *Sender
	Receiver *Receiver
	Metrics  *arq.Metrics
	Link     *channel.Link
}

// NewPair builds and wires the endpoints. deliver and onFailure may be nil.
func NewPair(sched *sim.Scheduler, link *channel.Link, cfg Config, deliver arq.DeliverFunc, onFailure arq.FailureFunc) *Pair {
	m := &arq.Metrics{}
	s := NewSender(sched, link.AtoB, cfg, m, onFailure)
	r := NewReceiver(sched, link.BtoA, cfg, m, deliver)
	link.AtoB.SetHandler(r.HandleFrame)
	link.BtoA.SetHandler(s.HandleFrame)
	return &Pair{Sender: s, Receiver: r, Metrics: m, Link: link}
}

// Start activates both ends (receiver checkpointing begins immediately).
func (p *Pair) Start() {
	p.Sender.Start()
	p.Receiver.Start()
}
