package lamsdlc

import (
	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/sim"
)

// Pair wires a Sender and a Receiver across a full-duplex simulated link:
// I-frames flow A→B, checkpoint traffic flows B→A. It is the one-line setup
// the experiments and examples use for unidirectional data transfer (a
// bidirectional node runs one Pair per direction; see internal/node), and
// the LAMS-DLC implementation of the arq.Pair engine contract.
type Pair struct {
	Sender   *Sender
	Receiver *Receiver
	cfg      Config
	metrics  *arq.Metrics
	// rmetrics is non-nil only for split pairs (NewSplitPair): the receiver
	// entity runs on another scheduler and gets its own block; Metrics
	// merges the two on demand into merged.
	rmetrics *arq.Metrics
	merged   arq.Metrics
	link     *channel.Link
}

// NewPair builds and wires the endpoints. deliver and onFailure may be nil.
func NewPair(sched *sim.Scheduler, link *channel.Link, cfg Config, deliver arq.DeliverFunc, onFailure arq.FailureFunc) *Pair {
	m := &arq.Metrics{}
	s := NewSender(sched, link.AtoB, cfg, m, onFailure)
	r := NewReceiver(sched, link.BtoA, cfg, m, deliver)
	link.AtoB.SetHandler(r.HandleFrame)
	link.BtoA.SetHandler(s.HandleFrame)
	return &Pair{Sender: s, Receiver: r, cfg: cfg, metrics: m, link: link}
}

// NewSplitPair is NewPair for a session whose two satellites live on
// different shards: the sender entity and its timers run on sendSched, the
// receiver entity on recvSched. The entities are unchanged — the sans-IO
// construction already takes scheduler and wire separately — but each side
// gets its own metrics block so the two shards never write the same counter,
// and link.AtoB must carry frames from sendSched's shard to recvSched's
// (SetRemote) and link.BtoA the reverse. deliver runs on recvSched's shard.
func NewSplitPair(sendSched, recvSched *sim.Scheduler, link *channel.Link, cfg Config, deliver arq.DeliverFunc, onFailure arq.FailureFunc) *Pair {
	ms, mr := &arq.Metrics{}, &arq.Metrics{}
	s := NewSender(sendSched, link.AtoB, cfg, ms, onFailure)
	r := NewReceiver(recvSched, link.BtoA, cfg, mr, deliver)
	link.AtoB.SetHandler(r.HandleFrame)
	link.BtoA.SetHandler(s.HandleFrame)
	return &Pair{Sender: s, Receiver: r, cfg: cfg, metrics: ms, rmetrics: mr, link: link}
}

// Start activates both ends (receiver checkpointing begins immediately).
func (p *Pair) Start() {
	p.Sender.Start()
	p.Receiver.Start()
}

// Stop is orderly teardown at the end of a pass: the checkpoint process
// halts and the sender refuses further work without declaring failure;
// undelivered datagrams stay reclaimable.
func (p *Pair) Stop() {
	p.Receiver.Stop()
	p.Sender.Shutdown()
}

// Enqueue accepts a datagram from the network layer.
func (p *Pair) Enqueue(dg arq.Datagram) bool { return p.Sender.Enqueue(dg) }

// Reclaim returns the datagrams the sender still holds, oldest first.
func (p *Pair) Reclaim() []arq.Datagram { return p.Sender.UnreleasedDatagrams() }

// Outstanding returns the sending-buffer occupancy.
func (p *Pair) Outstanding() int { return p.Sender.Outstanding() }

// Failed reports whether the sender declared the link failed.
func (p *Pair) Failed() bool { return p.Sender.Failed() }

// Metrics exposes the pair's measurement block. For a split pair the two
// per-entity blocks are merged on demand; call only while both shards are
// quiesced (between rounds or after the run).
func (p *Pair) Metrics() *arq.Metrics {
	if p.rmetrics == nil {
		return p.metrics
	}
	p.merged = arq.MergeSplit(p.metrics, p.rmetrics)
	return &p.merged
}

// Link exposes the underlying simulated link.
func (p *Pair) Link() *channel.Link { return p.link }

// SetProbe installs the transition observer on both ends.
func (p *Pair) SetProbe(pr *arq.Probe) {
	p.Sender.SetProbe(pr)
	p.Receiver.SetProbe(pr)
}

// MaxLiveSpan implements arq.SpanReporter.
func (p *Pair) MaxLiveSpan() uint32 { return p.Sender.MaxLiveSpan() }

// RateFraction implements arq.RateReporter.
func (p *Pair) RateFraction() float64 { return p.Sender.RateFraction() }

// SetCheckpointPeriod implements arq.CheckpointRetimer (fault-injected
// clock skew).
func (p *Pair) SetCheckpointPeriod(d sim.Duration) { p.Receiver.SetCheckpointPeriod(d) }

// Compile-time contract checks.
var (
	_ arq.Pair              = (*Pair)(nil)
	_ arq.SpanReporter      = (*Pair)(nil)
	_ arq.RateReporter      = (*Pair)(nil)
	_ arq.CheckpointRetimer = (*Pair)(nil)
	_ arq.Endpoint          = (*Sender)(nil)
	_ arq.Endpoint          = (*Receiver)(nil)
)
