package lamsdlc

// Allocation pins for the ISSUE 6 zero-alloc steady paths. These fail in
// plain `go test` when a regression reintroduces per-event garbage, instead
// of waiting for a bench diff to notice.

import (
	"testing"

	"repro/internal/arq"
	"repro/internal/frame"
	"repro/internal/sim"
)

// nullWire swallows frames without copying or retaining them, so the pins
// measure only the protocol state machines.
type nullWire struct{}

func (nullWire) Send(*frame.Frame)                {}
func (nullWire) TxTime(*frame.Frame) sim.Duration { return 0 }

// TestSenderCheckpointProcessingNoAllocs pins the full steady-state sender
// cycle — enqueue, pump, checkpoint with a NAK (bitset classification,
// renumbered retransmission, releases) — at zero allocations.
func TestSenderCheckpointProcessingNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector; the zero-alloc pin cannot hold")
	}
	sched := sim.NewScheduler()
	m := &arq.Metrics{}
	s := NewSender(sched, nullWire{}, baseCfg(), m, nil)
	s.Start()

	payload := make([]byte, 64)
	id := uint64(0)
	serial := uint32(0)
	cp := frame.Get()
	defer frame.Put(cp)

	round := func() {
		for i := 0; i < 4; i++ {
			if !s.Enqueue(arq.Datagram{ID: id, Payload: payload}) {
				t.Fatal("enqueue rejected")
			}
			id++
		}
		sched.RunFor(2 * sim.Microsecond) // pump the batch (TxTime is 0)
		// Checkpoint acking everything, NAKing the last seq sent: exercises
		// the naked bitset, one renumbered retransmission, and releases.
		serial++
		cp.Kind, cp.Serial, cp.Ack = frame.KindCheckpoint, serial, s.nextSeq
		cp.NAKs = append(cp.NAKs[:0], s.nextSeq-1)
		s.HandleFrame(sched.Now(), cp)
	}

	for i := 0; i < 50; i++ { // warm pools, rings, and scratch capacities
		round()
	}
	if avg := testing.AllocsPerRun(100, round); avg != 0 {
		t.Fatalf("sender checkpoint cycle allocates %.2f/op, want 0", avg)
	}
	if m.Delivered.Value() != 0 && s.Unacked() < 0 {
		t.Fatal("unreachable") // keep m live
	}
}

// TestReceiverResolveNoAllocs pins the steady-state receiver cycle — I-frame
// arrival with a gap, t_proc processing and delivery, checkpoint emission
// with a cumulative NAK list — at zero allocations.
func TestReceiverResolveNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector; the zero-alloc pin cannot hold")
	}
	sched := sim.NewScheduler()
	cfg := baseCfg()
	m := &arq.Metrics{}
	r := NewReceiver(sched, nullWire{}, cfg, m, nil)
	r.Start()

	seq := uint32(0)
	sendI := func(s uint32) {
		f := frame.Get()
		f.Kind, f.Seq, f.DatagramID = frame.KindI, s, uint64(s)
		f.EnqueuedNS = int64(sched.Now()) // keep the delay histogram's bucket fixed
		r.HandleFrame(sched.Now(), f)     // receiver recycles f after t_proc
	}
	round := func() {
		sendI(seq)
		seq += 2 // skip one: a fresh gap enters intervals[0] every cycle
		sendI(seq)
		seq++
		// Process both frames and emit one checkpoint (NAK union over the
		// C_depth cumulation window, interval rotation).
		sched.RunFor(cfg.CheckpointInterval)
	}

	for i := 0; i < 50; i++ {
		round()
	}
	if avg := testing.AllocsPerRun(100, round); avg != 0 {
		t.Fatalf("receiver resolve cycle allocates %.2f/op, want 0", avg)
	}
	if m.Delivered.Value() == 0 {
		t.Fatal("no deliveries happened; the pin measured nothing")
	}
}

// TestDedupSeenPrunedAfter100k pins the dedup memory's population after
// 100k datagrams: incremental expiry must hold it at exactly one window's
// deliveries, independent of transfer length (ISSUE 6 satellite).
func TestDedupSeenPrunedAfter100k(t *testing.T) {
	sched := sim.NewScheduler()
	cfg := baseCfg()
	cfg.DedupWindow = 50 * sim.Millisecond
	r := NewReceiver(sched, nullWire{}, cfg, &arq.Metrics{}, nil)

	const (
		n   = 100_000
		gap = 50 * sim.Microsecond // 1000 deliveries per window
	)
	now := sim.Time(0)
	for i := 0; i < n; i++ {
		now = now.Add(gap)
		r.recordSeen(uint64(i), now)
	}
	// Entries at most DedupWindow old survive: window/gap + 1 = 1001.
	want := int(cfg.DedupWindow/gap) + 1
	if got := r.DedupEntries(); got != want {
		t.Fatalf("dedup memory after %d datagrams = %d entries, want %d", n, got, want)
	}
	if got := r.dedupAge.Len(); got != want {
		t.Fatalf("dedup FIFO after %d datagrams = %d records, want %d", n, got, want)
	}
}
