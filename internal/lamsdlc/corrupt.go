package lamsdlc

import (
	"repro/internal/arq"
	"repro/internal/frame"
	"repro/internal/sim"
)

// Corruption-adversary surfaces (ISSUE 9). LAMS-DLC is not
// self-stabilizing — §3.2's invariants presume the state machines start
// legal and stay legal — so the contract here is the BOUNDED one DESIGN.md
// §13 states: CorruptState scrambles supervision and bookkeeping state
// within one recovery-window scale and never touches the sequence-number
// incarnations the external probe tracks (scrambling those desyncs the
// checker's observation, measuring the adversary instead of the engine;
// ssarq, whose probe story is renumbering-closed, takes the unbounded
// contract). Everything scrambled here is state the protocol's own timers
// and multiplicative flow control demonstrably repair.
//
// Determinism: no map iteration — Go randomizes map order independently of
// the simulation seed, which would break the byte-identical workers-1-vs-8
// pins. Poisoned dedup entries are INSERTED (deterministic) rather than
// found by walking r.seen.

// CorruptState implements arq.StateCorruptor.
func (p *Pair) CorruptState(rng *sim.RNG) {
	s, r := p.Sender, p.Receiver
	now := s.sched.Now()

	// Sender: flow-control fraction anywhere in its legal range (repaired
	// multiplicatively by subsequent checkpoints).
	s.rateFraction = s.cfg.MinRateFraction + rng.Float64()*(1-s.cfg.MinRateFraction)
	s.im.rateFraction.Set(s.rateFraction)
	// Supervision clocks jittered within one window scale, including into
	// the future — the monotone-clock repairs in handleCheckpoint,
	// onFailureTimeout, and pump are what make this bounded.
	s.reqSentAt = now.Add(jitter(rng, s.cfg.FailureTimeout()))
	s.lastCpAt = now.Add(jitter(rng, s.cfg.CheckpointTimeout()))
	s.wireFreeAt = now.Add(sim.Duration(rng.Int63n(int64(4 * s.cfg.ResolvingPeriod()))))
	if s.cfg.RequestRetries > 0 {
		s.retriesLeft = rng.Intn(s.cfg.RequestRetries + 1)
	}

	// Receiver: Stop-Go bit (repaired by updateStopGo on the next
	// admission), a phantom error report naming a near-future sequence
	// number (a live frame retransmits renumbered; an unsent one misses
	// the sender's window check), and poisoned dedup memory — including
	// future-dated records, which exercise the expiry path that must treat
	// them as expired rather than eternally fresh.
	r.stopGo = rng.Intn(2) == 0
	if len(r.intervals) > 0 {
		r.intervals[0] = append(r.intervals[0], r.expected+uint32(rng.Intn(64)))
	}
	if r.seen != nil {
		for i := 0; i < 3; i++ {
			id := 1<<63 | rng.Uint64()>>1
			at := now.Add(sim.Duration(rng.Int63n(int64(2*r.cfg.DedupWindow + 1))))
			r.seen[id] = at
			r.dedupAge.PushBack(dedupRec{id: id, at: at})
		}
	}
}

func jitter(rng *sim.RNG, scale sim.Duration) sim.Duration {
	return sim.Duration(rng.Int63n(int64(2*scale+1)) - int64(scale))
}

// ghostPayload is the shared body of forged I-frames; the pipe copies on
// Send and nothing downstream mutates payload bytes.
var ghostPayload = make([]byte, 32)

// ForgeGhost implements arq.GhostForger. Toward the receiver it forges
// I-frames split between small watermark jumps (phantom gaps that NAK —
// and so force renumbered retransmission of — genuine in-flight frames)
// and far-future jumps the MaxSeqJump guard must discard. Toward the
// sender it forges checkpoints split between plausible watermarks (early
// releases: bounded in-era casualties) and impossible ones the
// effAck guard must refuse to release on.
func (p *Pair) ForgeGhost(rng *sim.RNG, toReceiver bool) *frame.Frame {
	s, r := p.Sender, p.Receiver
	f := frame.Get()
	if toReceiver {
		f.Kind = frame.KindI
		jump := uint32(rng.Intn(64))
		if rng.Intn(2) == 0 {
			jump = r.cfg.SeqJumpLimit() + 1 + uint32(rng.Intn(1<<16))
		}
		f.Seq = r.expected + jump
		f.DatagramID = 1<<63 | rng.Uint64()>>1
		f.Payload = ghostPayload
		f.EnqueuedNS = int64(s.sched.Now())
		return f
	}
	f.Kind = frame.KindCheckpoint
	f.Serial = r.serial + uint32(rng.Intn(4))
	if rng.Intn(2) == 0 && s.nextSeq > 0 {
		f.Ack = uint32(rng.Int63n(int64(s.nextSeq) + 1))
	} else {
		f.Ack = s.nextSeq + 1 + uint32(rng.Intn(1<<16))
	}
	f.StopGo = rng.Intn(2) == 0
	f.Enforced = rng.Intn(2) == 0
	return f
}

// Compile-time checks for the corruption surfaces.
var (
	_ arq.StateCorruptor = (*Pair)(nil)
	_ arq.GhostForger    = (*Pair)(nil)
)
