package lamsdlc

import "repro/internal/metrics"

// Registry-backed observability instruments for the two protocol halves.
// They run alongside the arq.Metrics experiment aggregates — arq.Metrics is
// what the bench harness reduces into RunResults, the registry is what
// snapshots, /metrics scrapes, and cross-layer reconciliation read — and a
// test (internal/bench) asserts the two stay consistent. All instruments
// are nil with a nil registry, which makes every increment a no-op.
//
// Histogram unit convention: *_ns instruments record virtual-time
// durations in nanoseconds.
type senderInstr struct {
	firstTx       *metrics.Counter   // lams_iframes_first_tx_total
	retx          *metrics.Counter   // lams_iframes_retx_total (all causes)
	retxNAK       *metrics.Counter   // lams_retx_nak_total: checkpoint NAK named the frame
	retxCoverage  *metrics.Counter   // lams_retx_coverage_total: watermark release unsafe (report chain broken)
	retxEnforced  *metrics.Counter   // lams_retx_enforced_total: enforced recovery resend
	retxResolving *metrics.Counter   // lams_retx_resolving_total: resolving-period timeout
	cpHeard       *metrics.Counter   // lams_checkpoints_heard_total
	naksHeard     *metrics.Counter   // lams_cp_naks_heard_total: NAK entries in heard checkpoints
	reqNAKs       *metrics.Counter   // lams_request_naks_sent_total
	recoveries    *metrics.Counter   // lams_enforced_recoveries_total
	enforcedHeard *metrics.Counter   // lams_enforced_naks_heard_total
	failures      *metrics.Counter   // lams_link_failures_total
	releases      *metrics.Counter   // lams_releases_total: frames positively released
	rateChanges   *metrics.Counter   // lams_rate_changes_total: Stop-Go rate adjustments
	implausibleCp *metrics.Counter   // lams_implausible_cp_total: checkpoint watermarks distrusted for exceeding nextSeq
	rateFraction  *metrics.Gauge     // lams_send_rate_fraction
	outstanding   *metrics.Gauge     // lams_send_outstanding
	liveSpan      *metrics.Histogram // lams_resolving_span: live seq span per checkpoint
	holdingNS     *metrics.Histogram // lams_holding_time_ns
}

func newSenderInstr(reg *metrics.Registry) senderInstr {
	return senderInstr{
		firstTx:       reg.Counter("lams_iframes_first_tx_total"),
		retx:          reg.Counter("lams_iframes_retx_total"),
		retxNAK:       reg.Counter("lams_retx_nak_total"),
		retxCoverage:  reg.Counter("lams_retx_coverage_total"),
		retxEnforced:  reg.Counter("lams_retx_enforced_total"),
		retxResolving: reg.Counter("lams_retx_resolving_total"),
		cpHeard:       reg.Counter("lams_checkpoints_heard_total"),
		naksHeard:     reg.Counter("lams_cp_naks_heard_total"),
		reqNAKs:       reg.Counter("lams_request_naks_sent_total"),
		recoveries:    reg.Counter("lams_enforced_recoveries_total"),
		enforcedHeard: reg.Counter("lams_enforced_naks_heard_total"),
		failures:      reg.Counter("lams_link_failures_total"),
		releases:      reg.Counter("lams_releases_total"),
		rateChanges:   reg.Counter("lams_rate_changes_total"),
		implausibleCp: reg.Counter("lams_implausible_cp_total"),
		rateFraction:  reg.Gauge("lams_send_rate_fraction"),
		outstanding:   reg.Gauge("lams_send_outstanding"),
		liveSpan:      reg.Histogram("lams_resolving_span", metrics.ExpBuckets(1, 2, 16)),
		holdingNS:     reg.Histogram("lams_holding_time_ns", metrics.ExpBuckets(1e5, 2, 24)),
	}
}

type receiverInstr struct {
	checkpoints    *metrics.Counter   // lams_checkpoints_sent_total
	naksReported   *metrics.Counter   // lams_cp_naks_reported_total: NAK entries in emitted checkpoints
	enforcedSent   *metrics.Counter   // lams_enforced_naks_sent_total
	reqNAKsHeard   *metrics.Counter   // lams_request_naks_heard_total
	gaps           *metrics.Counter   // lams_gaps_detected_total: missing seqs found
	implausibleSeq *metrics.Counter   // lams_implausible_seq_total: I-frames discarded for a seq jump beyond MaxSeqJump
	dropped        *metrics.Counter   // lams_recv_dropped_total: receive-buffer overflow discards
	dups           *metrics.Counter   // lams_dup_suppressed_total
	delivered      *metrics.Counter   // lams_delivered_total
	stopGoFlips    *metrics.Counter   // lams_stopgo_transitions_total
	queueLen       *metrics.Gauge     // lams_recv_queue_len
	cpSpacingNS    *metrics.Histogram // lams_checkpoint_spacing_ns
}

func newReceiverInstr(reg *metrics.Registry) receiverInstr {
	return receiverInstr{
		checkpoints:    reg.Counter("lams_checkpoints_sent_total"),
		naksReported:   reg.Counter("lams_cp_naks_reported_total"),
		enforcedSent:   reg.Counter("lams_enforced_naks_sent_total"),
		reqNAKsHeard:   reg.Counter("lams_request_naks_heard_total"),
		gaps:           reg.Counter("lams_gaps_detected_total"),
		implausibleSeq: reg.Counter("lams_implausible_seq_total"),
		dropped:        reg.Counter("lams_recv_dropped_total"),
		dups:           reg.Counter("lams_dup_suppressed_total"),
		delivered:      reg.Counter("lams_delivered_total"),
		stopGoFlips:    reg.Counter("lams_stopgo_transitions_total"),
		queueLen:       reg.Gauge("lams_recv_queue_len"),
		cpSpacingNS:    reg.Histogram("lams_checkpoint_spacing_ns", metrics.ExpBuckets(1e5, 2, 24)),
	}
}
