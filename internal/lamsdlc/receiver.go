package lamsdlc

import (
	"repro/internal/arq"
	"repro/internal/frame"
	"repro/internal/sim"
)

// Receiver is the receiving half of a LAMS-DLC endpoint. It emits periodic
// Check-Point commands for as long as the link is active ("commands are
// sent by the receiver so long as the link is active"), identifies damaged
// I-frames from gaps in the monotone sequence space, cumulates error
// reports over C_depth checkpoint intervals, and answers Request-NAKs
// immediately with Enforced-NAKs.
//
// Because LAMS-DLC relaxes the in-sequence constraint, arriving I-frames
// are delivered upward as soon as processing (t_proc) completes, regardless
// of order; the receive buffer holds only frames awaiting processing, which
// is what makes its size transparent (§3.3, §4).
type Receiver struct {
	sched *sim.Scheduler
	wire  arq.Wire
	cfg   Config
	m     *arq.Metrics
	im    receiverInstr

	expected  uint32     // next expected sequence number; all below are classified
	intervals [][]uint32 // error lists; intervals[0] is the current W_cp
	serial    uint32
	ticker    *sim.Ticker
	started   bool

	// Checkpoint-spacing observation base (virtual time of the previous
	// emission; zero until the first checkpoint goes out).
	lastCpEmit sim.Time
	haveCpEmit bool

	// Receive processing queue (the receiving buffer of §3.4).
	procQueue []*frame.Frame
	procBusy  bool
	stopGo    bool

	// DLC-level duplicate suppression (Config.DedupWindow).
	seen      map[uint64]sim.Time // datagram ID -> delivery instant
	lastPrune sim.Time

	deliver arq.DeliverFunc
	probe   *Probe
}

// NewReceiver constructs a receiver delivering upward via deliver (which
// may be nil for pure measurement runs).
func NewReceiver(sched *sim.Scheduler, wire arq.Wire, cfg Config, m *arq.Metrics, deliver arq.DeliverFunc) *Receiver {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	r := &Receiver{
		sched:     sched,
		wire:      wire,
		cfg:       cfg,
		m:         m,
		im:        newReceiverInstr(cfg.Metrics),
		intervals: make([][]uint32, cfg.CumulationDepth),
		deliver:   deliver,
	}
	if cfg.DedupWindow > 0 {
		r.seen = make(map[uint64]sim.Time)
	}
	r.ticker = sim.NewTicker(sched, cfg.CheckpointInterval, r.emitCheckpoint)
	return r
}

// SetDeliver replaces the upward delivery callback. The node layer uses it
// to route a link's deliveries into the receiving node's network layer
// after the endpoints are wired.
func (r *Receiver) SetDeliver(fn arq.DeliverFunc) { r.deliver = fn }

// Start begins the periodic checkpoint process.
func (r *Receiver) Start() {
	if r.started {
		return
	}
	r.started = true
	r.ticker.Start()
}

// Stop halts the checkpoint process (link teardown).
func (r *Receiver) Stop() { r.ticker.Stop() }

// SetCheckpointPeriod re-times the running checkpoint ticker. The fault
// injector uses it to open and close clock-skew windows: a skewed receiver
// emits checkpoints faster or slower than the sender's timers assume, which
// is exactly the drift §3.2's silence windows must absorb. Takes effect from
// the next emission; panics on non-positive periods like the Ticker does.
func (r *Receiver) SetCheckpointPeriod(d sim.Duration) {
	if d <= 0 {
		panic("lamsdlc: non-positive checkpoint period")
	}
	r.ticker.SetPeriod(d)
}

// Expected exposes the next expected sequence number (tests).
func (r *Receiver) Expected() uint32 { return r.expected }

// StopGoAsserted reports whether flow control is currently asserting stop.
func (r *Receiver) StopGoAsserted() bool { return r.stopGo }

// QueueLen returns the receive-buffer occupancy in frames.
func (r *Receiver) QueueLen() int { return len(r.procQueue) }

// HandleFrame processes one arriving frame.
func (r *Receiver) HandleFrame(now sim.Time, f *frame.Frame) {
	if f.Corrupted {
		// Undecodable (assumption 9: detectably damaged). Its sequence
		// number is unknown; the gap left in the monotone sequence space
		// identifies it when the next good frame arrives.
		return
	}
	switch f.Kind {
	case frame.KindI:
		r.handleI(now, f)
	case frame.KindRequestNAK:
		r.handleRequestNAK(now, f)
	default:
		// Checkpoints and HDLC frames are never addressed to a LAMS
		// receiver; ignore.
	}
}

func (r *Receiver) handleI(now sim.Time, f *frame.Frame) {
	if f.Seq < r.expected {
		// Below the watermark means a duplicate of a classified frame.
		// With monotone numbering and a FIFO wire this cannot happen in
		// normal operation; tolerate it silently for robustness.
		return
	}
	// Gap detection: every sequence number skipped over was a frame
	// damaged or destroyed on the wire (the sender numbers all
	// transmissions, including retransmissions, consecutively).
	for missing := r.expected; missing < f.Seq; missing++ {
		r.intervals[0] = append(r.intervals[0], missing)
		r.m.NAKsSent.Inc()
		r.im.gaps.Inc()
	}
	r.expected = f.Seq + 1

	// Receive buffer admission (§3.4): a full processing queue discards
	// the frame; the discard is reported like any other error so the
	// sender retransmits it, and Stop-Go throttles the sender meanwhile.
	if r.cfg.RecvBufferCap > 0 && len(r.procQueue) >= r.cfg.RecvBufferCap {
		r.intervals[0] = append(r.intervals[0], f.Seq)
		r.m.NAKsSent.Inc()
		r.m.RecvDropped.Inc()
		r.im.dropped.Inc()
		if !r.stopGo {
			r.im.stopGoFlips.Inc()
			if r.probe != nil && r.probe.StopGoChanged != nil {
				r.probe.StopGoChanged(now, true)
			}
		}
		r.stopGo = true
		return
	}
	r.procQueue = append(r.procQueue, f)
	r.noteRecvOccupancy()
	r.updateStopGo()
	r.processNext()
}

// processNext runs the t_proc processing pipeline, one frame at a time.
func (r *Receiver) processNext() {
	if r.procBusy || len(r.procQueue) == 0 {
		return
	}
	r.procBusy = true
	r.sched.ScheduleAfterDetached(r.cfg.ProcTime, func() {
		f := r.procQueue[0]
		r.procQueue = r.procQueue[1:]
		r.procBusy = false
		r.noteRecvOccupancy()
		r.updateStopGo()
		now := r.sched.Now()
		if r.seen != nil {
			if _, dup := r.seen[f.DatagramID]; dup {
				// The "more recent version" of §3.2: the link layer
				// itself guarantees zero duplication. Refresh the entry:
				// under sustained acknowledgement failure the sender keeps
				// retransmitting, so a chain of duplicates can outlive any
				// fixed window, but the gap between consecutive arrivals
				// of one datagram is bounded by the retransmission cadence
				// (well inside DedupWindow).
				r.seen[f.DatagramID] = now
				r.m.DupSuppressed.Inc()
				r.im.dups.Inc()
				r.pruneSeen(now)
				r.processNext()
				return
			}
			r.seen[f.DatagramID] = now
			r.pruneSeen(now)
		}
		dg := arq.Datagram{ID: f.DatagramID, Payload: f.Payload, EnqueuedAt: sim.Time(f.EnqueuedNS)}
		r.m.NoteDelivery(now, dg)
		r.im.delivered.Inc()
		if r.deliver != nil {
			r.deliver(now, dg, f.Seq)
		}
		r.processNext()
	})
}

func (r *Receiver) updateStopGo() {
	if r.cfg.RecvBufferCap <= 0 {
		return
	}
	occ := float64(len(r.procQueue)) / float64(r.cfg.RecvBufferCap)
	if occ >= r.cfg.StopGoHigh {
		if !r.stopGo {
			r.im.stopGoFlips.Inc()
			if r.probe != nil && r.probe.StopGoChanged != nil {
				r.probe.StopGoChanged(r.sched.Now(), true)
			}
		}
		r.stopGo = true
	} else if occ <= r.cfg.StopGoLow {
		if r.stopGo {
			r.im.stopGoFlips.Inc()
			if r.probe != nil && r.probe.StopGoChanged != nil {
				r.probe.StopGoChanged(r.sched.Now(), false)
			}
		}
		r.stopGo = false
	}
}

// emitCheckpoint sends the periodic Check-Point command: watermark, the
// union of the last C_depth intervals' error lists, and the Stop-Go bit.
func (r *Receiver) emitCheckpoint() {
	r.serial++
	r.send(false)
	// Rotate the cumulation window: a fresh current interval, oldest
	// report generation expires.
	copy(r.intervals[1:], r.intervals[:len(r.intervals)-1])
	r.intervals[0] = nil
	r.m.Checkpoints.Inc()
	r.im.checkpoints.Inc()
	now := r.sched.Now()
	if r.haveCpEmit {
		r.im.cpSpacingNS.Observe(float64(now.Sub(r.lastCpEmit)))
	}
	r.lastCpEmit, r.haveCpEmit = now, true
}

// handleRequestNAK answers immediately with an Enforced-NAK (or Resolving
// command when there is nothing to report), per §3.2.
func (r *Receiver) handleRequestNAK(_ sim.Time, req *frame.Frame) {
	r.im.reqNAKsHeard.Inc()
	r.serial++
	r.sendEnforced(req.Serial)
}

func (r *Receiver) send(enforced bool) {
	naks := r.cumulativeNAKs()
	cp := frame.NewCheckpoint(r.serial, r.expected, naks, r.stopGo, enforced)
	if r.probe != nil && r.probe.CheckpointSent != nil {
		r.probe.CheckpointSent(r.sched.Now(), r.serial, enforced)
	}
	r.wire.Send(cp)
	r.m.ControlSent.Inc()
	r.im.naksReported.Add(uint64(len(naks)))
}

func (r *Receiver) sendEnforced(reqSerial uint32) {
	naks := r.cumulativeNAKs()
	cp := frame.NewCheckpoint(r.serial, r.expected, naks, r.stopGo, true)
	cp.Seq = reqSerial // echo for correlation
	if r.probe != nil && r.probe.CheckpointSent != nil {
		r.probe.CheckpointSent(r.sched.Now(), r.serial, true)
	}
	r.wire.Send(cp)
	r.m.ControlSent.Inc()
	r.im.naksReported.Add(uint64(len(naks)))
	r.im.enforcedSent.Inc()
}

// cumulativeNAKs returns the union of the stored intervals, deduplicated
// and in ascending order (the lists are built ascending and intervals are
// disjoint in normal operation, but overflow discards can repeat a seq).
func (r *Receiver) cumulativeNAKs() []uint32 {
	var total int
	for _, iv := range r.intervals {
		total += len(iv)
	}
	if total == 0 {
		return nil
	}
	seen := make(map[uint32]bool, total)
	out := make([]uint32, 0, total)
	// Oldest generation first keeps ascending order overall.
	for i := len(r.intervals) - 1; i >= 0; i-- {
		for _, seq := range r.intervals[i] {
			if !seen[seq] {
				seen[seq] = true
				out = append(out, seq)
			}
		}
	}
	return out
}

// pruneSeen expires dedup entries older than the window, amortized to one
// sweep per window.
func (r *Receiver) pruneSeen(now sim.Time) {
	if now.Sub(r.lastPrune) < r.cfg.DedupWindow {
		return
	}
	r.lastPrune = now
	for id, at := range r.seen {
		if now.Sub(at) > r.cfg.DedupWindow {
			delete(r.seen, id)
		}
	}
}

// DedupEntries returns the current dedup-memory population (tests and the
// memory-bound claim).
func (r *Receiver) DedupEntries() int { return len(r.seen) }

func (r *Receiver) noteRecvOccupancy() {
	r.m.RecvBufOcc.Update(int64(r.sched.Now()), float64(len(r.procQueue)))
	r.im.queueLen.Set(float64(len(r.procQueue)))
}
