package lamsdlc

import (
	"repro/internal/arq"
	"repro/internal/frame"
	"repro/internal/ring"
	"repro/internal/sim"
)

// Receiver is the receiving half of a LAMS-DLC endpoint. It emits periodic
// Check-Point commands for as long as the link is active ("commands are
// sent by the receiver so long as the link is active"), identifies damaged
// I-frames from gaps in the monotone sequence space, cumulates error
// reports over C_depth checkpoint intervals, and answers Request-NAKs
// immediately with Enforced-NAKs.
//
// Because LAMS-DLC relaxes the in-sequence constraint, arriving I-frames
// are delivered upward as soon as processing (t_proc) completes, regardless
// of order; the receive buffer holds only frames awaiting processing, which
// is what makes its size transparent (§3.3, §4).
type Receiver struct {
	sched *sim.Scheduler
	wire  arq.Wire
	cfg   Config
	m     *arq.Metrics
	im    receiverInstr

	expected  uint32     // next expected sequence number; all below are classified
	intervals [][]uint32 // error lists; intervals[0] is the current W_cp
	serial    uint32
	ticker    *sim.Ticker
	started   bool

	// Checkpoint-spacing observation base (virtual time of the previous
	// emission; zero until the first checkpoint goes out).
	lastCpEmit sim.Time
	haveCpEmit bool

	// Receive processing queue (the receiving buffer of §3.4).
	procQueue ring.Ring[*frame.Frame]
	procBusy  bool
	procDone  func() // finishProc bound once; the t_proc completion event
	stopGo    bool

	// DLC-level duplicate suppression (Config.DedupWindow). dedupAge is
	// the FIFO of recordings that drives incremental expiry: entries
	// leave seen as soon as they age past the window, so the map's
	// population is bounded by the deliveries of one window rather than
	// growing until an amortized sweep.
	seen     map[uint64]sim.Time // datagram ID -> delivery instant
	dedupAge ring.Ring[dedupRec]

	// Checkpoint-emission scratch, recycled across cycles (ISSUE 6): the
	// NAK union's dedup set and output list keep their backing storage
	// (safe to reuse because the channel copies NAK lists on Send), and
	// outbound checkpoints are built in a reusable scratch frame.
	nakSeen map[uint32]bool
	nakOut  []uint32
	cpf     frame.Frame

	deliver arq.DeliverFunc
	probe   *Probe
}

// dedupRec is one dedup-memory recording awaiting expiry. A refreshed
// datagram ID leaves a stale record behind; expiry detects it by instant
// mismatch and skips the delete.
type dedupRec struct {
	id uint64
	at sim.Time
}

// NewReceiver constructs a receiver delivering upward via deliver (which
// may be nil for pure measurement runs).
func NewReceiver(sched *sim.Scheduler, wire arq.Wire, cfg Config, m *arq.Metrics, deliver arq.DeliverFunc) *Receiver {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	r := &Receiver{
		sched:     sched,
		wire:      wire,
		cfg:       cfg,
		m:         m,
		im:        newReceiverInstr(cfg.Metrics),
		intervals: make([][]uint32, cfg.CumulationDepth),
		deliver:   deliver,
	}
	if cfg.DedupWindow > 0 {
		r.seen = make(map[uint64]sim.Time)
	}
	r.procDone = r.finishProc
	r.ticker = sim.NewTicker(sched, cfg.CheckpointInterval, r.emitCheckpoint)
	return r
}

// SetDeliver replaces the upward delivery callback. The node layer uses it
// to route a link's deliveries into the receiving node's network layer
// after the endpoints are wired.
func (r *Receiver) SetDeliver(fn arq.DeliverFunc) { r.deliver = fn }

// Start begins the periodic checkpoint process.
func (r *Receiver) Start() {
	if r.started {
		return
	}
	r.started = true
	r.ticker.Start()
}

// Stop halts the checkpoint process (link teardown).
func (r *Receiver) Stop() { r.ticker.Stop() }

// SetCheckpointPeriod re-times the running checkpoint ticker. The fault
// injector uses it to open and close clock-skew windows: a skewed receiver
// emits checkpoints faster or slower than the sender's timers assume, which
// is exactly the drift §3.2's silence windows must absorb. Takes effect from
// the next emission; panics on non-positive periods like the Ticker does.
func (r *Receiver) SetCheckpointPeriod(d sim.Duration) {
	if d <= 0 {
		panic("lamsdlc: non-positive checkpoint period")
	}
	r.ticker.SetPeriod(d)
}

// Expected exposes the next expected sequence number (tests).
func (r *Receiver) Expected() uint32 { return r.expected }

// StopGoAsserted reports whether flow control is currently asserting stop.
func (r *Receiver) StopGoAsserted() bool { return r.stopGo }

// QueueLen returns the receive-buffer occupancy in frames.
func (r *Receiver) QueueLen() int { return r.procQueue.Len() }

// HandleFrame processes one arriving frame.
func (r *Receiver) HandleFrame(now sim.Time, f *frame.Frame) {
	if f.Corrupted {
		// Undecodable (assumption 9: detectably damaged). Its sequence
		// number is unknown; the gap left in the monotone sequence space
		// identifies it when the next good frame arrives.
		return
	}
	switch f.Kind {
	case frame.KindI:
		r.handleI(now, f)
	case frame.KindRequestNAK:
		r.handleRequestNAK(now, f)
	default:
		// Checkpoints and HDLC frames are never addressed to a LAMS
		// receiver; ignore.
	}
}

func (r *Receiver) handleI(now sim.Time, f *frame.Frame) {
	if f.Seq < r.expected {
		// Below the watermark means a duplicate of a classified frame.
		// With monotone numbering and a FIFO wire this cannot happen in
		// normal operation; tolerate it silently for robustness.
		frame.Put(f)
		return
	}
	if f.Seq-r.expected > r.cfg.SeqJumpLimit() {
		// A forward jump wider than any legitimate live window can only
		// be a forged or corrupted-yet-CRC-valid frame. Accepting it
		// would append one phantom NAK per skipped number and advance the
		// watermark past every genuine frame in flight, classifying all
		// subsequent real traffic as duplicate — a single such frame
		// permanently wedged the link. Discard without touching state.
		r.im.implausibleSeq.Inc()
		frame.Put(f)
		return
	}
	// Gap detection: every sequence number skipped over was a frame
	// damaged or destroyed on the wire (the sender numbers all
	// transmissions, including retransmissions, consecutively).
	for missing := r.expected; missing < f.Seq; missing++ {
		r.intervals[0] = append(r.intervals[0], missing)
		r.m.NAKsSent.Inc()
		r.im.gaps.Inc()
	}
	r.expected = f.Seq + 1

	// Receive buffer admission (§3.4): a full processing queue discards
	// the frame; the discard is reported like any other error so the
	// sender retransmits it, and Stop-Go throttles the sender meanwhile.
	if r.cfg.RecvBufferCap > 0 && r.procQueue.Len() >= r.cfg.RecvBufferCap {
		r.intervals[0] = append(r.intervals[0], f.Seq)
		r.m.NAKsSent.Inc()
		r.m.RecvDropped.Inc()
		r.im.dropped.Inc()
		if !r.stopGo {
			r.im.stopGoFlips.Inc()
			if r.probe != nil && r.probe.StopGoChanged != nil {
				r.probe.StopGoChanged(now, true)
			}
		}
		r.stopGo = true
		frame.Put(f)
		return
	}
	r.procQueue.PushBack(f)
	r.noteRecvOccupancy()
	r.updateStopGo()
	r.processNext()
}

// processNext runs the t_proc processing pipeline, one frame at a time.
func (r *Receiver) processNext() {
	if r.procBusy || r.procQueue.Len() == 0 {
		return
	}
	r.procBusy = true
	r.sched.ScheduleAfterDetached(r.cfg.ProcTime, r.procDone)
}

// finishProc completes one frame's t_proc: classify (dedup), deliver
// upward, recycle the frame, continue with the next. It is the processing
// pipeline's completion callback, bound once at construction.
func (r *Receiver) finishProc() {
	f := r.procQueue.PopFront()
	r.procBusy = false
	r.noteRecvOccupancy()
	r.updateStopGo()
	now := r.sched.Now()
	if r.seen != nil {
		if _, dup := r.seen[f.DatagramID]; dup {
			// The "more recent version" of §3.2: the link layer
			// itself guarantees zero duplication. Refresh the entry:
			// under sustained acknowledgement failure the sender keeps
			// retransmitting, so a chain of duplicates can outlive any
			// fixed window, but the gap between consecutive arrivals
			// of one datagram is bounded by the retransmission cadence
			// (well inside DedupWindow).
			r.recordSeen(f.DatagramID, now)
			r.m.DupSuppressed.Inc()
			r.im.dups.Inc()
			frame.Put(f)
			r.processNext()
			return
		}
		r.recordSeen(f.DatagramID, now)
	}
	dg := arq.Datagram{ID: f.DatagramID, Payload: f.Payload, EnqueuedAt: sim.Time(f.EnqueuedNS)}
	seq := f.Seq
	frame.Put(f)
	r.m.NoteDelivery(now, dg)
	r.im.delivered.Inc()
	if r.deliver != nil {
		r.deliver(now, dg, seq)
	}
	r.processNext()
}

func (r *Receiver) updateStopGo() {
	if r.cfg.RecvBufferCap <= 0 {
		return
	}
	occ := float64(r.procQueue.Len()) / float64(r.cfg.RecvBufferCap)
	if occ >= r.cfg.StopGoHigh {
		if !r.stopGo {
			r.im.stopGoFlips.Inc()
			if r.probe != nil && r.probe.StopGoChanged != nil {
				r.probe.StopGoChanged(r.sched.Now(), true)
			}
		}
		r.stopGo = true
	} else if occ <= r.cfg.StopGoLow {
		if r.stopGo {
			r.im.stopGoFlips.Inc()
			if r.probe != nil && r.probe.StopGoChanged != nil {
				r.probe.StopGoChanged(r.sched.Now(), false)
			}
		}
		r.stopGo = false
	}
}

// emitCheckpoint sends the periodic Check-Point command: watermark, the
// union of the last C_depth intervals' error lists, and the Stop-Go bit.
func (r *Receiver) emitCheckpoint() {
	r.serial++
	r.send(false)
	// Rotate the cumulation window: the expiring oldest generation's
	// backing array becomes the fresh current interval, so steady-state
	// gap reporting reuses C_depth arrays instead of allocating.
	last := r.intervals[len(r.intervals)-1]
	copy(r.intervals[1:], r.intervals[:len(r.intervals)-1])
	r.intervals[0] = last[:0]
	r.m.Checkpoints.Inc()
	r.im.checkpoints.Inc()
	now := r.sched.Now()
	if r.haveCpEmit {
		r.im.cpSpacingNS.Observe(float64(now.Sub(r.lastCpEmit)))
	}
	r.lastCpEmit, r.haveCpEmit = now, true
}

// handleRequestNAK answers immediately with an Enforced-NAK (or Resolving
// command when there is nothing to report), per §3.2.
func (r *Receiver) handleRequestNAK(_ sim.Time, req *frame.Frame) {
	r.im.reqNAKsHeard.Inc()
	r.serial++
	r.sendEnforced(req.Serial)
}

func (r *Receiver) send(enforced bool) {
	naks := r.cumulativeNAKs()
	r.cpf = frame.Frame{
		Kind:     frame.KindCheckpoint,
		Serial:   r.serial,
		Ack:      r.expected,
		NAKs:     naks,
		StopGo:   r.stopGo,
		Enforced: enforced,
	}
	if r.probe != nil && r.probe.CheckpointSent != nil {
		r.probe.CheckpointSent(r.sched.Now(), r.serial, enforced)
	}
	r.wire.Send(&r.cpf)
	r.m.ControlSent.Inc()
	r.im.naksReported.Add(uint64(len(naks)))
}

func (r *Receiver) sendEnforced(reqSerial uint32) {
	naks := r.cumulativeNAKs()
	r.cpf = frame.Frame{
		Kind:     frame.KindCheckpoint,
		Serial:   r.serial,
		Ack:      r.expected,
		NAKs:     naks,
		StopGo:   r.stopGo,
		Enforced: true,
		Seq:      reqSerial, // echo for correlation
	}
	if r.probe != nil && r.probe.CheckpointSent != nil {
		r.probe.CheckpointSent(r.sched.Now(), r.serial, true)
	}
	r.wire.Send(&r.cpf)
	r.m.ControlSent.Inc()
	r.im.naksReported.Add(uint64(len(naks)))
	r.im.enforcedSent.Inc()
}

// cumulativeNAKs returns the union of the stored intervals, deduplicated
// and in ascending order (the lists are built ascending and intervals are
// disjoint in normal operation, but overflow discards can repeat a seq).
// The returned slice is scratch, valid until the next call; the channel
// copies it on Send.
func (r *Receiver) cumulativeNAKs() []uint32 {
	var total int
	for _, iv := range r.intervals {
		total += len(iv)
	}
	if total == 0 {
		return nil
	}
	if r.nakSeen == nil {
		r.nakSeen = make(map[uint32]bool, total)
	} else {
		clear(r.nakSeen)
	}
	out := r.nakOut[:0]
	// Oldest generation first keeps ascending order overall.
	for i := len(r.intervals) - 1; i >= 0; i-- {
		for _, seq := range r.intervals[i] {
			if !r.nakSeen[seq] {
				r.nakSeen[seq] = true
				out = append(out, seq)
			}
		}
	}
	r.nakOut = out
	return out
}

// recordSeen stamps id in the dedup memory and expires everything past the
// window. Expiry is incremental off the recording FIFO — pop while the
// front is overage — so the map never holds entries older than the window
// plus one delivery gap, keeping its size bounded by a window's deliveries
// (the §3.2 memory-bound argument, enforced rather than amortized).
func (r *Receiver) recordSeen(id uint64, now sim.Time) {
	r.seen[id] = now
	r.dedupAge.PushBack(dedupRec{id: id, at: now})
	for r.dedupAge.Len() > 0 {
		rec := r.dedupAge.Front()
		// A future-dated record (possible only under state corruption —
		// timestamps are stamped from the monotone clock) must count as
		// expired, not fresh: the signed Sub comes out negative, which the
		// window test would read as "well inside the window", wedging the
		// FIFO behind an entry that never ages and growing the map without
		// bound — the exact memory-bound §3.2 argues the dedup design
		// avoids.
		if rec.at <= now && now.Sub(rec.at) <= r.cfg.DedupWindow {
			break
		}
		r.dedupAge.PopFront()
		// A refreshed ID leaves stale records; only the latest recording
		// may delete.
		if at, ok := r.seen[rec.id]; ok && at == rec.at {
			delete(r.seen, rec.id)
		}
	}
}

// DedupEntries returns the current dedup-memory population (tests and the
// memory-bound claim).
func (r *Receiver) DedupEntries() int { return len(r.seen) }

func (r *Receiver) noteRecvOccupancy() {
	r.m.RecvBufOcc.Update(int64(r.sched.Now()), float64(r.procQueue.Len()))
	r.im.queueLen.Set(float64(r.procQueue.Len()))
}
