package frame

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func sampleFrames() []*Frame {
	return []*Frame{
		NewI(0, 0, nil),
		NewI(17, 3, []byte("hello")),
		NewI(1<<31, 1<<60, bytes.Repeat([]byte{0xAB}, 4096)),
		NewCheckpoint(9, 17, nil, false, false),
		NewCheckpoint(9, 17, []uint32{4, 11, 12}, true, false),
		NewCheckpoint(10, 20, []uint32{}, false, true), // Resolving command
		NewCheckpoint(11, 30, []uint32{1}, true, true), // Enforced-NAK with stop
		NewRequestNAK(42),
		{Kind: KindHDLCI, Seq: 5, Ack: 3, Payload: []byte("window"), Final: true},
		{Kind: KindRR, Ack: 8, Final: true},
		{Kind: KindREJ, Ack: 4, Seq: 4},
		{Kind: KindSREJ, Ack: 9, Seq: 6},
	}
}

func framesEqual(a, b *Frame) bool {
	if a.Kind != b.Kind || a.Seq != b.Seq || a.Ack != b.Ack ||
		a.Serial != b.Serial || a.StopGo != b.StopGo ||
		a.Enforced != b.Enforced || a.Final != b.Final ||
		a.DatagramID != b.DatagramID || a.Corrupted != b.Corrupted {
		return false
	}
	if !bytes.Equal(a.Payload, b.Payload) {
		return false
	}
	if len(a.NAKs) != len(b.NAKs) {
		return false
	}
	for i := range a.NAKs {
		if a.NAKs[i] != b.NAKs[i] {
			return false
		}
	}
	return true
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, f := range sampleFrames() {
		buf, err := f.Encode()
		if err != nil {
			t.Fatalf("%v: encode: %v", f, err)
		}
		if len(buf) != f.WireLen() {
			t.Fatalf("%v: encoded %d bytes, WireLen says %d", f, len(buf), f.WireLen())
		}
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", f, err)
		}
		if n != len(buf) {
			t.Fatalf("%v: consumed %d of %d bytes", f, n, len(buf))
		}
		// Decode normalizes empty slices to nil; compare semantically.
		want := f.Clone()
		if len(want.Payload) == 0 {
			want.Payload = nil
		}
		if len(want.NAKs) == 0 {
			want.NAKs = nil
		}
		if !framesEqual(got, want) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestDecodeStream(t *testing.T) {
	// Multiple frames back-to-back decode sequentially.
	var buf []byte
	var err error
	frames := sampleFrames()
	for _, f := range frames {
		buf, err = f.AppendEncode(buf)
		if err != nil {
			t.Fatal(err)
		}
	}
	var decoded int
	var f Frame
	for len(buf) > 0 {
		n, err := f.DecodeFrom(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", decoded, err)
		}
		if f.Kind != frames[decoded].Kind {
			t.Fatalf("frame %d: kind %v, want %v", decoded, f.Kind, frames[decoded].Kind)
		}
		buf = buf[n:]
		decoded++
	}
	if decoded != len(frames) {
		t.Fatalf("decoded %d frames, want %d", decoded, len(frames))
	}
}

func TestDecodeTruncated(t *testing.T) {
	for _, f := range sampleFrames() {
		buf, err := f.Encode()
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(buf); cut++ {
			if _, _, err := Decode(buf[:cut]); !errors.Is(err, ErrTruncated) {
				t.Fatalf("%v cut at %d: err = %v, want ErrTruncated", f, cut, err)
			}
		}
	}
}

func TestDecodeDetectsBitFlips(t *testing.T) {
	for _, f := range sampleFrames() {
		buf, err := f.Encode()
		if err != nil {
			t.Fatal(err)
		}
		for i := range buf {
			mutated := append([]byte(nil), buf...)
			mutated[i] ^= 0x40
			_, _, err := Decode(mutated)
			if err == nil {
				// A flip in the length field may shift framing but must
				// never yield a silently wrong frame of the same kind and
				// content.
				got, _, _ := Decode(mutated)
				if framesEqual(got, f) {
					t.Fatalf("%v: bit flip at byte %d undetected", f, i)
				}
				continue
			}
		}
	}
}

func TestEncodeCorruptedFails(t *testing.T) {
	f := NewI(1, 1, []byte("x"))
	f.Corrupted = true
	if _, err := f.Encode(); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("err = %v, want ErrCorrupted", err)
	}
}

func TestEncodeBadKind(t *testing.T) {
	f := &Frame{Kind: KindInvalid}
	if _, err := f.Encode(); !errors.Is(err, ErrBadKind) {
		t.Fatalf("err = %v, want ErrBadKind", err)
	}
	if _, _, err := Decode([]byte{0xEE, 0, 0, 0}); !errors.Is(err, ErrBadKind) {
		t.Fatalf("decode err = %v, want ErrBadKind", err)
	}
}

func TestOversizeLimits(t *testing.T) {
	f := NewI(1, 1, make([]byte, MaxPayload+1))
	if _, err := f.Encode(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized payload: err = %v", err)
	}
	cp := NewCheckpoint(1, 1, make([]uint32, MaxNAKs+1), false, false)
	if _, err := cp.Encode(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized NAK list: err = %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := NewCheckpoint(1, 2, []uint32{3, 4}, true, false)
	f.Payload = []byte("p")
	g := f.Clone()
	g.NAKs[0] = 99
	g.Payload[0] = 'q'
	if f.NAKs[0] != 3 || f.Payload[0] != 'p' {
		t.Fatal("Clone shares backing arrays")
	}
}

func TestKindPredicates(t *testing.T) {
	if KindInvalid.Valid() || Kind(200).Valid() {
		t.Fatal("invalid kinds reported valid")
	}
	if !KindI.Valid() || !KindSREJ.Valid() {
		t.Fatal("valid kinds reported invalid")
	}
	if KindI.Control() || KindHDLCI.Control() {
		t.Fatal("information frames are not control frames")
	}
	if !KindCheckpoint.Control() || !KindRR.Control() {
		t.Fatal("control frames misclassified")
	}
	if Kind(200).String() != "Kind(200)" {
		t.Fatalf("unknown kind string: %q", Kind(200).String())
	}
}

func TestStringSummaries(t *testing.T) {
	cases := []struct {
		f    *Frame
		want string
	}{
		{NewI(17, 3, []byte("hello")), "I seq=17"},
		{NewCheckpoint(9, 17, []uint32{4}, true, false), "CP serial=9"},
		{NewCheckpoint(9, 17, nil, false, true), "CP*"},
		{NewRequestNAK(42), "REQNAK serial=42"},
		{&Frame{Kind: KindSREJ, Ack: 9, Seq: 6}, "SREJ"},
	}
	for _, c := range cases {
		if got := c.f.String(); !strings.Contains(got, c.want) {
			t.Errorf("String() = %q, want substring %q", got, c.want)
		}
	}
	corrupt := NewI(1, 1, nil)
	corrupt.Corrupted = true
	if !strings.Contains(corrupt.String(), "corrupted") {
		t.Error("corrupted marker missing")
	}
	stop := NewCheckpoint(1, 1, nil, true, false)
	if !strings.Contains(stop.String(), "stop") {
		t.Error("stop marker missing")
	}
}

func TestWireLenControlVsInfo(t *testing.T) {
	// Control frames must be much shorter than a typical I-frame: the
	// analysis depends on t_c << t_f.
	ifr := NewI(1, 1, make([]byte, 1024))
	cp := NewCheckpoint(1, 1, []uint32{1, 2, 3}, false, false)
	if cp.WireLen() >= ifr.WireLen()/4 {
		t.Fatalf("control frame too large: %d vs %d", cp.WireLen(), ifr.WireLen())
	}
	if (&Frame{Kind: KindInvalid}).WireLen() != 0 {
		t.Fatal("invalid frame should have zero wire length")
	}
	if (&Frame{Kind: KindInvalid}).Bits() != 0 {
		t.Fatal("Bits of invalid frame")
	}
	if got := NewRequestNAK(1).Bits(); got != NewRequestNAK(1).WireLen()*8 {
		t.Fatalf("Bits = %d", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	type iSpec struct {
		Seq     uint32
		DgID    uint64
		Payload []byte
	}
	f := func(spec iSpec) bool {
		if len(spec.Payload) > MaxPayload {
			spec.Payload = spec.Payload[:MaxPayload]
		}
		fr := NewI(spec.Seq, spec.DgID, spec.Payload)
		buf, err := fr.Encode()
		if err != nil {
			return false
		}
		got, n, err := Decode(buf)
		if err != nil || n != len(buf) {
			return false
		}
		return got.Seq == spec.Seq && got.DatagramID == spec.DgID &&
			bytes.Equal(got.Payload, spec.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointRoundTripProperty(t *testing.T) {
	f := func(serial, ack uint32, naks []uint32, stop, enforced bool) bool {
		if len(naks) > MaxNAKs {
			naks = naks[:MaxNAKs]
		}
		fr := NewCheckpoint(serial, ack, naks, stop, enforced)
		buf, err := fr.Encode()
		if err != nil {
			return false
		}
		got, _, err := Decode(buf)
		if err != nil {
			return false
		}
		if got.Serial != serial || got.Ack != ack ||
			got.StopGo != stop || got.Enforced != enforced {
			return false
		}
		if len(got.NAKs) != len(naks) {
			return false
		}
		for i := range naks {
			if got.NAKs[i] != naks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeI1K(b *testing.B) {
	f := NewI(17, 3, make([]byte, 1024))
	buf := make([]byte, 0, f.WireLen())
	b.SetBytes(int64(f.WireLen()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = f.AppendEncode(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeI1K(b *testing.B) {
	f := NewI(17, 3, make([]byte, 1024))
	buf, err := f.Encode()
	if err != nil {
		b.Fatal(err)
	}
	var g Frame
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.DecodeFrom(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeCheckpoint(b *testing.B) {
	f := NewCheckpoint(9, 1000, []uint32{1, 5, 9, 44, 902}, true, false)
	buf, err := f.Encode()
	if err != nil {
		b.Fatal(err)
	}
	var g Frame
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.DecodeFrom(buf); err != nil {
			b.Fatal(err)
		}
	}
}
