// Package frame defines the wire format shared by the protocols in this
// repository: LAMS-DLC information and control frames (Check-Point-NAK,
// Enforced-NAK / Resolving command, Request-NAK) and the HDLC frames used by
// the selective-repeat baseline (I, RR, REJ, SREJ).
//
// Design follows the paper's Section 3.1:
//
//   - I-frames carry user bits and a sequence number N(S). LAMS-DLC assigns a
//     fresh sequence number to every transmission, including retransmissions,
//     so frames also carry the datagram identity the destination resequencer
//     needs for duplicate suppression.
//   - Control frames are never piggybacked (link-model assumption 4: control
//     frames ride a more powerful FEC). Check-Point and Enforced-NAK share
//     one format distinguished by the Enforced bit; both carry a Stop-Go bit
//     for flow control and a variable-length list of NAKed sequence numbers.
//   - Request-NAK is a fixed-size solicitation, akin to an HDLC P-bit
//     checkpoint.
//
// In simulation, frames travel as *Frame values and corruption is marked
// out-of-band (assumption 9: every channel error is detectable), but the
// codec is a complete byte-level format with real FCS fields so the live
// driver can run the same state machines over untrusted byte streams:
// Encode/Decode round-trip every frame, and Decode verifies checksums.
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/crc"
)

// Kind identifies the frame type on the wire.
type Kind uint8

// Frame kinds. The LAMS kinds implement the paper's protocol; the HDLC kinds
// serve the selective-repeat/Go-Back-N baseline.
const (
	KindInvalid    Kind = iota
	KindI               // LAMS-DLC information frame
	KindCheckpoint      // Check-Point command / Check-Point-NAK / Enforced-NAK / Resolving
	KindRequestNAK      // Request-NAK solicitation
	KindHDLCI           // HDLC information frame (carries N(S) and piggybacked N(R))
	KindRR              // HDLC Receive Ready (positive ack, window credit)
	KindREJ             // HDLC Reject (Go-Back-N negative ack)
	KindSREJ            // HDLC Selective Reject
	kindMax
)

var kindNames = [...]string{
	KindInvalid:    "INVALID",
	KindI:          "I",
	KindCheckpoint: "CP",
	KindRequestNAK: "REQNAK",
	KindHDLCI:      "HDLC-I",
	KindRR:         "RR",
	KindREJ:        "REJ",
	KindSREJ:       "SREJ",
}

// String returns the conventional mnemonic for the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k names a real frame kind.
func (k Kind) Valid() bool { return k > KindInvalid && k < kindMax }

// Control reports whether the kind is a control frame (no user payload).
func (k Kind) Control() bool { return k != KindI && k != KindHDLCI }

// Flag bits of the control-frame flags octet.
const (
	flagStopGo   = 1 << 0 // receiver anticipates receive-buffer overflow
	flagEnforced = 1 << 1 // checkpoint answers a Request-NAK (Enforced-NAK)
	flagFinal    = 1 << 2 // HDLC P/F bit
)

// Frame is the in-memory representation of any frame either protocol sends.
// It is a tagged union: which fields are meaningful depends on Kind. The
// zero Frame is invalid.
type Frame struct {
	Kind Kind

	// Seq is N(S) for information frames (both protocols) and the sequence
	// number being rejected for REJ/SREJ.
	Seq uint32

	// Ack is protocol-dependent: for LAMS checkpoint frames it is the
	// highest-seen watermark (the implicit positive acknowledgement); for
	// HDLC frames it is N(R), the next expected sequence number.
	Ack uint32

	// Serial numbers checkpoint commands (and Request-NAKs) so the sender
	// can correlate an Enforced-NAK with its Request-NAK.
	Serial uint32

	// NAKs lists the sequence numbers reported erroneous, cumulated over
	// the last C_depth checkpoint intervals (KindCheckpoint only).
	NAKs []uint32

	// StopGo is the flow-control bit (§3.4).
	StopGo bool

	// Enforced marks a checkpoint as an Enforced-NAK / Resolving command.
	Enforced bool

	// Final is the HDLC P/F bit.
	Final bool

	// DatagramID identifies the user datagram an I-frame carries, so the
	// destination can resequence and de-duplicate after renumbered
	// retransmissions. The DLC never exposes it to its peer logic.
	DatagramID uint64

	// Payload is the user data of an information frame. The codec limits
	// payloads to MaxPayload bytes.
	Payload []byte

	// Corrupted marks a frame damaged in transit. It is simulation
	// metadata: the channel sets it instead of flipping payload bits, and
	// receivers treat a corrupted frame exactly as a failed FCS check
	// (the frame's content must not be inspected). Encode refuses to
	// serialize corrupted frames.
	Corrupted bool

	// EnqueuedNS carries the datagram's network-layer enqueue instant
	// (virtual nanoseconds) so the receiving endpoint can measure
	// end-to-end delay. Simulation metadata: not serialized, zero over
	// real transports.
	EnqueuedNS int64
}

// MaxPayload is the largest I-frame payload the codec accepts. 64 KiB covers
// the frame sizes the paper's environment sweeps (1–8 KiB typical).
const MaxPayload = 1 << 16

// MaxNAKs bounds the NAK list length; a checkpoint cumulating C_depth
// intervals on a fast link can report many errors, but a list longer than
// this indicates a protocol bug rather than a bad channel.
const MaxNAKs = 1 << 16

// Codec errors.
var (
	ErrTruncated   = errors.New("frame: truncated")
	ErrBadChecksum = errors.New("frame: checksum mismatch")
	ErrBadKind     = errors.New("frame: unknown kind")
	ErrTooLarge    = errors.New("frame: payload or NAK list too large")
	ErrCorrupted   = errors.New("frame: refusing to encode corrupted frame")
)

// Wire layout constants.
const (
	iHeaderLen    = 1 + 4 + 8 + 4 // kind, seq, datagram id, payload length
	iTrailerLen   = 4             // CRC-32
	cpHeaderLen   = 1 + 1 + 4 + 4 + 4
	cpTrailerLen  = 2 // FCS16
	reqLen        = 1 + 1 + 4 + cpTrailerLen
	hdlcILen      = 1 + 1 + 4 + 4 + 8 + 4 // kind, flags, ns, nr, datagram id, payload length
	hdlcSLen      = 1 + 1 + 4 + 4         // kind, flags, nr, seq
	sizeofSeq     = 4
	sizeofNAKCnt  = 4
	payloadLenOff = 13
)

// WireLen returns the exact encoded length of the frame in bytes. It is what
// the channel model uses to compute transmission time t_f / t_c, so it must
// agree with Encode.
func (f *Frame) WireLen() int {
	switch f.Kind {
	case KindI:
		return iHeaderLen + len(f.Payload) + iTrailerLen
	case KindCheckpoint:
		return cpHeaderLen + sizeofNAKCnt + sizeofSeq*len(f.NAKs) + cpTrailerLen
	case KindRequestNAK:
		return reqLen
	case KindHDLCI:
		return hdlcILen + len(f.Payload) + iTrailerLen
	case KindRR, KindREJ, KindSREJ:
		return hdlcSLen + cpTrailerLen
	default:
		return 0
	}
}

// Bits returns the frame length in bits, the unit the throughput analysis
// works in.
func (f *Frame) Bits() int { return f.WireLen() * 8 }

func (f *Frame) flags() byte {
	var fl byte
	if f.StopGo {
		fl |= flagStopGo
	}
	if f.Enforced {
		fl |= flagEnforced
	}
	if f.Final {
		fl |= flagFinal
	}
	return fl
}

func (f *Frame) setFlags(fl byte) {
	f.StopGo = fl&flagStopGo != 0
	f.Enforced = fl&flagEnforced != 0
	f.Final = fl&flagFinal != 0
}

// AppendEncode serializes the frame onto dst and returns the extended slice.
// It fails on corrupted frames, unknown kinds, and oversized payloads or NAK
// lists.
func (f *Frame) AppendEncode(dst []byte) ([]byte, error) {
	if f.Corrupted {
		return dst, ErrCorrupted
	}
	switch f.Kind {
	case KindI:
		if len(f.Payload) > MaxPayload {
			return dst, ErrTooLarge
		}
		start := len(dst)
		dst = append(dst, byte(KindI))
		dst = binary.BigEndian.AppendUint32(dst, f.Seq)
		dst = binary.BigEndian.AppendUint64(dst, f.DatagramID)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Payload)))
		dst = append(dst, f.Payload...)
		sum := crc.Sum32(dst[start:])
		return binary.BigEndian.AppendUint32(dst, sum), nil

	case KindCheckpoint:
		if len(f.NAKs) > MaxNAKs {
			return dst, ErrTooLarge
		}
		start := len(dst)
		dst = append(dst, byte(KindCheckpoint), f.flags())
		dst = binary.BigEndian.AppendUint32(dst, f.Serial)
		dst = binary.BigEndian.AppendUint32(dst, f.Ack)
		dst = binary.BigEndian.AppendUint32(dst, f.Seq)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.NAKs)))
		for _, n := range f.NAKs {
			dst = binary.BigEndian.AppendUint32(dst, n)
		}
		sum := crc.FCS16(dst[start:])
		return binary.BigEndian.AppendUint16(dst, sum), nil

	case KindRequestNAK:
		start := len(dst)
		dst = append(dst, byte(KindRequestNAK), f.flags())
		dst = binary.BigEndian.AppendUint32(dst, f.Serial)
		sum := crc.FCS16(dst[start:])
		return binary.BigEndian.AppendUint16(dst, sum), nil

	case KindHDLCI:
		if len(f.Payload) > MaxPayload {
			return dst, ErrTooLarge
		}
		start := len(dst)
		dst = append(dst, byte(KindHDLCI), f.flags())
		dst = binary.BigEndian.AppendUint32(dst, f.Seq)
		dst = binary.BigEndian.AppendUint32(dst, f.Ack)
		dst = binary.BigEndian.AppendUint64(dst, f.DatagramID)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Payload)))
		dst = append(dst, f.Payload...)
		sum := crc.Sum32(dst[start:])
		return binary.BigEndian.AppendUint32(dst, sum), nil

	case KindRR, KindREJ, KindSREJ:
		start := len(dst)
		dst = append(dst, byte(f.Kind), f.flags())
		dst = binary.BigEndian.AppendUint32(dst, f.Ack)
		dst = binary.BigEndian.AppendUint32(dst, f.Seq)
		sum := crc.FCS16(dst[start:])
		return binary.BigEndian.AppendUint16(dst, sum), nil

	default:
		return dst, ErrBadKind
	}
}

// Encode serializes the frame into a fresh buffer.
func (f *Frame) Encode() ([]byte, error) {
	return f.AppendEncode(make([]byte, 0, f.WireLen()))
}

// Decode parses one frame from the beginning of buf, returning the frame and
// the number of bytes consumed. The returned frame's Payload and NAKs alias
// fresh allocations, never buf.
func Decode(buf []byte) (*Frame, int, error) {
	var f Frame
	n, err := f.DecodeFrom(buf)
	if err != nil {
		return nil, 0, err
	}
	return &f, n, nil
}

// DecodeFrom parses one frame from buf into f (gopacket-style reuse: the
// caller may hold one Frame and decode into it repeatedly; Payload and NAKs
// are copied out of buf so the frame stays valid after the buffer is
// recycled). The copies reuse f's existing Payload and NAKs capacity, so a
// steady-state decode loop stops allocating — which also means the previous
// decode's Payload/NAKs are only valid until the next DecodeFrom into the
// same Frame. It returns the number of bytes consumed.
func (f *Frame) DecodeFrom(buf []byte) (int, error) {
	if len(buf) < 1 {
		return 0, ErrTruncated
	}
	k := Kind(buf[0])
	payload, naks := f.Payload[:0], f.NAKs[:0]
	*f = Frame{Kind: k}
	switch k {
	case KindI:
		if len(buf) < iHeaderLen {
			return 0, ErrTruncated
		}
		f.Seq = binary.BigEndian.Uint32(buf[1:])
		f.DatagramID = binary.BigEndian.Uint64(buf[5:])
		plen := int(binary.BigEndian.Uint32(buf[payloadLenOff:]))
		if plen > MaxPayload {
			return 0, ErrTooLarge
		}
		total := iHeaderLen + plen + iTrailerLen
		if len(buf) < total {
			return 0, ErrTruncated
		}
		body := buf[:iHeaderLen+plen]
		sum := binary.BigEndian.Uint32(buf[iHeaderLen+plen:])
		if !crc.CheckSum32(body, sum) {
			return 0, ErrBadChecksum
		}
		f.Payload = append(payload, buf[iHeaderLen:iHeaderLen+plen]...)
		return total, nil

	case KindCheckpoint:
		if len(buf) < cpHeaderLen+sizeofNAKCnt {
			return 0, ErrTruncated
		}
		f.setFlags(buf[1])
		f.Serial = binary.BigEndian.Uint32(buf[2:])
		f.Ack = binary.BigEndian.Uint32(buf[6:])
		f.Seq = binary.BigEndian.Uint32(buf[10:])
		cnt := int(binary.BigEndian.Uint32(buf[14:]))
		if cnt > MaxNAKs {
			return 0, ErrTooLarge
		}
		total := cpHeaderLen + sizeofNAKCnt + sizeofSeq*cnt + cpTrailerLen
		if len(buf) < total {
			return 0, ErrTruncated
		}
		body := buf[:total-cpTrailerLen]
		sum := binary.BigEndian.Uint16(buf[total-cpTrailerLen:])
		if !crc.CheckFCS16(body, sum) {
			return 0, ErrBadChecksum
		}
		if cnt > 0 {
			off := cpHeaderLen + sizeofNAKCnt
			for i := 0; i < cnt; i++ {
				naks = append(naks, binary.BigEndian.Uint32(buf[off+4*i:]))
			}
			f.NAKs = naks
		}
		return total, nil

	case KindRequestNAK:
		if len(buf) < reqLen {
			return 0, ErrTruncated
		}
		body := buf[:reqLen-cpTrailerLen]
		sum := binary.BigEndian.Uint16(buf[reqLen-cpTrailerLen:])
		if !crc.CheckFCS16(body, sum) {
			return 0, ErrBadChecksum
		}
		f.setFlags(buf[1])
		f.Serial = binary.BigEndian.Uint32(buf[2:])
		return reqLen, nil

	case KindHDLCI:
		if len(buf) < hdlcILen {
			return 0, ErrTruncated
		}
		f.setFlags(buf[1])
		f.Seq = binary.BigEndian.Uint32(buf[2:])
		f.Ack = binary.BigEndian.Uint32(buf[6:])
		f.DatagramID = binary.BigEndian.Uint64(buf[10:])
		plen := int(binary.BigEndian.Uint32(buf[18:]))
		if plen > MaxPayload {
			return 0, ErrTooLarge
		}
		total := hdlcILen + plen + iTrailerLen
		if len(buf) < total {
			return 0, ErrTruncated
		}
		body := buf[:hdlcILen+plen]
		sum := binary.BigEndian.Uint32(buf[hdlcILen+plen:])
		if !crc.CheckSum32(body, sum) {
			return 0, ErrBadChecksum
		}
		f.Payload = append(payload, buf[hdlcILen:hdlcILen+plen]...)
		return total, nil

	case KindRR, KindREJ, KindSREJ:
		total := hdlcSLen + cpTrailerLen
		if len(buf) < total {
			return 0, ErrTruncated
		}
		body := buf[:hdlcSLen]
		sum := binary.BigEndian.Uint16(buf[hdlcSLen:])
		if !crc.CheckFCS16(body, sum) {
			return 0, ErrBadChecksum
		}
		f.setFlags(buf[1])
		f.Ack = binary.BigEndian.Uint32(buf[2:])
		f.Seq = binary.BigEndian.Uint32(buf[6:])
		return total, nil

	default:
		return 0, ErrBadKind
	}
}

// Clone returns a deep copy of the frame. The channel model clones frames at
// the sending boundary so a retransmitting protocol can keep mutating its
// copy without racing the one in flight.
func (f *Frame) Clone() *Frame {
	g := *f
	if f.Payload != nil {
		g.Payload = append([]byte(nil), f.Payload...)
	}
	if f.NAKs != nil {
		g.NAKs = append([]uint32(nil), f.NAKs...)
	}
	return &g
}

// String renders a compact human-readable summary, e.g.
// "I seq=17 dg=3 len=1024" or "CP* serial=9 ack=17 naks=[4 11] stop".
func (f *Frame) String() string {
	var s string
	switch f.Kind {
	case KindI:
		s = fmt.Sprintf("I seq=%d dg=%d len=%d", f.Seq, f.DatagramID, len(f.Payload))
	case KindCheckpoint:
		name := "CP"
		if f.Enforced {
			name = "CP*" // Enforced-NAK / Resolving command
		}
		s = fmt.Sprintf("%s serial=%d ack=%d naks=%v", name, f.Serial, f.Ack, f.NAKs)
		if f.StopGo {
			s += " stop"
		}
	case KindRequestNAK:
		s = fmt.Sprintf("REQNAK serial=%d", f.Serial)
	case KindHDLCI:
		s = fmt.Sprintf("HDLC-I ns=%d nr=%d len=%d", f.Seq, f.Ack, len(f.Payload))
		if f.Final {
			s += " P"
		}
	case KindRR, KindREJ, KindSREJ:
		s = fmt.Sprintf("%s nr=%d", f.Kind, f.Ack)
		if f.Kind == KindSREJ || f.Kind == KindREJ {
			s = fmt.Sprintf("%s nr=%d seq=%d", f.Kind, f.Ack, f.Seq)
		}
		if f.Final {
			s += " F"
		}
	default:
		s = "INVALID"
	}
	if f.Corrupted {
		s += " (corrupted)"
	}
	return s
}

// NewI builds a LAMS-DLC information frame.
func NewI(seq uint32, datagramID uint64, payload []byte) *Frame {
	return &Frame{Kind: KindI, Seq: seq, DatagramID: datagramID, Payload: payload}
}

// NewCheckpoint builds a Check-Point command. With a non-empty nak list it is
// a Check-Point-NAK; with enforced set it is an Enforced-NAK (or, with no
// NAKs, a Resolving command).
func NewCheckpoint(serial, highestSeen uint32, naks []uint32, stopGo, enforced bool) *Frame {
	return &Frame{
		Kind:     KindCheckpoint,
		Serial:   serial,
		Ack:      highestSeen,
		NAKs:     naks,
		StopGo:   stopGo,
		Enforced: enforced,
	}
}

// NewRequestNAK builds a Request-NAK solicitation.
func NewRequestNAK(serial uint32) *Frame {
	return &Frame{Kind: KindRequestNAK, Serial: serial}
}
