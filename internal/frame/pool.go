package frame

import "sync"

// The simulation's hot path creates one short-lived Frame per transmission
// (the channel's in-flight copy) and one per control exchange. Recycling
// them through a pool keeps a multi-thousand-frame experiment run from
// pressuring the allocator; the pool is shared process-wide and safe for
// the parallel experiment engine's concurrent runs.
var pool = sync.Pool{New: func() any { return new(Frame) }}

// Get returns a Frame from the package pool. All fields are zero except
// NAKs, which may be a non-nil empty slice whose capacity the caller may
// append into (Pipe.Send's checkpoint copy relies on this).
func Get() *Frame { return pool.Get().(*Frame) }

// Put resets f and returns it to the pool. The reset drops the Payload
// reference rather than retaining its capacity: pooled payloads alias
// caller-owned slices (see Pipe.Send), and reusing that memory for a later
// frame would scribble over live data. NAKs capacity IS retained: every
// NAK list entering the pool is a pool-owned copy made by Pipe.Send, so
// recycling it is safe and keeps checkpoint traffic allocation-free. The
// caller must not touch f after Put, and must not Put a frame any other
// component still references.
func Put(f *Frame) {
	naks := f.NAKs[:0]
	*f = Frame{NAKs: naks}
	pool.Put(f)
}
