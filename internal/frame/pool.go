package frame

import "sync"

// The simulation's hot path creates one short-lived Frame per transmission
// (the channel's in-flight copy) and one per control exchange. Recycling
// them through a pool keeps a multi-thousand-frame experiment run from
// pressuring the allocator; the pool is shared process-wide and safe for
// the parallel experiment engine's concurrent runs.
var pool = sync.Pool{New: func() any { return new(Frame) }}

// Get returns a zeroed Frame from the package pool.
func Get() *Frame { return pool.Get().(*Frame) }

// Put resets f and returns it to the pool. The reset drops the Payload and
// NAKs references rather than retaining their capacity: pooled frames alias
// caller-owned slices (see Pipe.Send), and reusing that memory for a later
// frame would scribble over live data. The caller must not touch f after
// Put, and must not Put a frame any other component still references.
func Put(f *Frame) {
	*f = Frame{}
	pool.Put(f)
}
