package frame

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the codec with arbitrary bytes: it must never panic,
// never claim to consume more bytes than offered, and any frame it accepts
// must re-encode to exactly the bytes it consumed (checksum included).
func FuzzDecode(f *testing.F) {
	for _, fr := range []*Frame{
		NewI(17, 3, []byte("payload")),
		NewCheckpoint(9, 18, []uint32{4, 11}, true, false),
		NewRequestNAK(42),
		{Kind: KindHDLCI, Seq: 5, Ack: 3, Payload: []byte("h"), Final: true},
		{Kind: KindRR, Ack: 8},
		{Kind: KindSREJ, Ack: 9, Seq: 6},
	} {
		buf, err := fr.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0xFF, 0x00, 0x01, 0x02})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re, eerr := fr.Encode()
		if eerr != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", eerr)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encoding differs from consumed bytes:\n in  %x\n out %x", data[:n], re)
		}
	})
}

// FuzzDecodeReuse checks the gopacket-style reuse path: decoding into a
// dirty Frame must fully reset it.
func FuzzDecodeReuse(f *testing.F) {
	clean, err := NewI(1, 2, []byte("x")).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(clean, clean)
	f.Fuzz(func(t *testing.T, a, b []byte) {
		var fr Frame
		na, ea := fr.DecodeFrom(a)
		snapshotA := fr.Clone()
		nb, eb := fr.DecodeFrom(b)
		var fresh Frame
		nf, ef := fresh.DecodeFrom(b)
		if (eb == nil) != (ef == nil) || nb != nf {
			t.Fatalf("reuse changed outcome: (%v,%v) vs (%v,%v)", nb, eb, nf, ef)
		}
		if eb == nil && !framesEqualFuzz(&fr, &fresh) {
			t.Fatal("dirty-frame decode differs from fresh decode")
		}
		_ = na
		_ = ea
		_ = snapshotA
	})
}

func framesEqualFuzz(a, b *Frame) bool {
	if a.Kind != b.Kind || a.Seq != b.Seq || a.Ack != b.Ack || a.Serial != b.Serial ||
		a.StopGo != b.StopGo || a.Enforced != b.Enforced || a.Final != b.Final ||
		a.DatagramID != b.DatagramID || !bytes.Equal(a.Payload, b.Payload) {
		return false
	}
	if len(a.NAKs) != len(b.NAKs) {
		return false
	}
	for i := range a.NAKs {
		if a.NAKs[i] != b.NAKs[i] {
			return false
		}
	}
	return true
}
