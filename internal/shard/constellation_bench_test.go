package shard

import (
	"fmt"
	"runtime"
	"testing"

	_ "repro/internal/engines"
)

// The constellation benchmarks time only the event loop: the scenario is
// rebuilt outside the timer each iteration (a Constellation runs once), so
// ns/op, events/s and allocs/event all describe the run phase the shard
// engine owns. Each size fans out over shard counts 1, 2, 4 and 8; the
// report is bit-identical at every count, so the sub-benchmarks measure
// pure engine overhead/speedup. On a single-core host (this CI container
// has one CPU) the expectation is near-zero overhead rather than speedup;
// see docs/EXPERIMENTS.md for the recorded numbers and the caveat.

func benchConstellation(b *testing.B, sats, shards int) {
	cfg := DefaultConfig(WalkerGrid(sats))
	cfg.Shards = shards
	cfg.Seed = 7
	cfg.DatagramsPerFlow = 20
	b.ReportAllocs()
	var events, runAllocs uint64
	var m0, m1 runtime.MemStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		runtime.ReadMemStats(&m0)
		b.StartTimer()
		rep := c.Run()
		b.StopTimer()
		runtime.ReadMemStats(&m1)
		runAllocs += m1.Mallocs - m0.Mallocs
		events += rep.Events
		if rep.Delivered != rep.Offered {
			b.Fatalf("delivered %d of %d offered", rep.Delivered, rep.Offered)
		}
		b.StartTimer()
	}
	b.StopTimer()
	if events > 0 {
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		b.ReportMetric(float64(runAllocs)/float64(events), "allocs/event")
	}
}

func benchConstellationShards(b *testing.B, sats int) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			benchConstellation(b, sats, k)
		})
	}
}

func BenchmarkConstellation64(b *testing.B)   { benchConstellationShards(b, 64) }
func BenchmarkConstellation256(b *testing.B)  { benchConstellationShards(b, 256) }
func BenchmarkConstellation1024(b *testing.B) { benchConstellationShards(b, 1024) }
