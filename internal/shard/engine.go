// Package shard is the conservative parallel simulation engine: it
// partitions one scenario across K worker shards, each owning a private
// sim.Scheduler and the protocol entities homed on its satellites, and
// synchronizes them with lookahead-bounded global rounds.
//
// The synchronization model is the classic conservative BSP window. Let W
// be the minimum propagation delay over every inter-satellite link in the
// scenario (the lookahead). Round k covers simulated time [kW, (k+1)W−1]:
// every shard first drains its mailbox of frames stamped inside the round,
// schedules them as ordinary arrival events, and runs its scheduler to the
// round boundary; a barrier separates rounds. A frame posted during round k
// departs at a clock ≥ kW and arrives ≥ W later, i.e. at ≥ (k+1)W — strictly
// beyond the round — so one barrier per round is sufficient: no shard can
// receive an event in its past, and no null messages are needed.
//
// Determinism is independent of K by construction:
//
//   - Every inter-satellite frame crosses a mailbox, even when both ends
//     happen to live on the same shard, so the event-insertion schedule —
//     and therefore FIFO tie-breaking among equal timestamps — is identical
//     at every shard count.
//   - A mailbox drain sorts by the canonical key (arrival time, lane,
//     per-lane sequence) before scheduling, erasing the nondeterministic
//     order in which concurrent senders appended.
//   - Each shard only ever mutates its own scheduler's state; the only
//     shared structures are the mutex-guarded inboxes.
//
// Under those rules a K-shard run is bit-identical to the 1-shard run of
// the same configuration, which is what the constellation pins assert.
package shard

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/sim"
)

// message is one frame in flight between shards: the in-flight frame, the
// pipe it will re-enter through, and the canonical ordering key.
type message struct {
	at   sim.Time
	pipe *channel.Pipe
	f    *frame.Frame
	lane uint32 // Wire() lane of the posting pipe
	seq  uint64 // per-lane post counter
}

// before is the canonical drain order: arrival time, then lane, then the
// lane's own FIFO counter. Lanes are unique per pipe and seq unique per
// lane, so the order is total — sort.Slice needs no stability.
func (m message) before(n message) bool {
	if m.at != n.at {
		return m.at.Before(n.at)
	}
	if m.lane != n.lane {
		return m.lane < n.lane
	}
	return m.seq < n.seq
}

// Shard is one partition: a scheduler plus the mailbox other shards post
// into. All fields below the inbox are touched only by the shard's own
// round, which runs on one goroutine at a time.
type Shard struct {
	id    int
	sched *sim.Scheduler

	in struct {
		mu   sync.Mutex
		msgs []message
	}

	spare   []message  // retired inbox backing array, swapped back next drain
	pending []message  // posted but not yet due (beyond the round boundary)
	due     []message  // drain scratch
	free    []*message // recycled arrival-event arguments
	deliver func(any)  // deliverMsg bound once, for ScheduleArgDetached
}

// ID returns the shard's index in [0, Engine.Shards()).
func (sh *Shard) ID() int { return sh.id }

// Scheduler returns the shard's private scheduler. Entities homed on the
// shard must be built on it, and it must only be driven through Engine.Run.
func (sh *Shard) Scheduler() *sim.Scheduler { return sh.sched }

// take returns a heap slot for one due message.
func (sh *Shard) take() *message {
	if n := len(sh.free); n > 0 {
		m := sh.free[n-1]
		sh.free = sh.free[:n-1]
		return m
	}
	return new(message)
}

// deliverMsg is the arrival event for one mailbox message: re-enter the
// pipe on the receiving side at the stamped time.
func (sh *Shard) deliverMsg(v any) {
	m := v.(*message)
	p, at, f := m.pipe, m.at, m.f
	m.pipe, m.f = nil, nil
	sh.free = append(sh.free, m)
	p.DeliverInbound(at, f)
}

// round drains the mailbox of everything due by end, schedules it in
// canonical order, and advances the shard's clock to the round boundary.
func (sh *Shard) round(end sim.Time) {
	sh.in.mu.Lock()
	incoming := sh.in.msgs
	sh.in.msgs = sh.spare[:0]
	sh.in.mu.Unlock()
	sh.pending = append(sh.pending, incoming...)
	sh.spare = incoming[:0]

	due := sh.due[:0]
	keep := sh.pending[:0]
	for _, m := range sh.pending {
		if m.at.After(end) {
			keep = append(keep, m)
		} else {
			due = append(due, m)
		}
	}
	sh.pending = keep
	sort.Slice(due, func(i, j int) bool { return due[i].before(due[j]) })
	for i := range due {
		m := sh.take()
		*m = due[i]
		sh.sched.ScheduleArgDetached(m.at, sh.deliver, m)
	}
	sh.due = due[:0]

	sh.sched.RunUntil(end)
}

// Engine couples K shards to one lookahead window and runs them in rounds.
type Engine struct {
	shards []*Shard
	window sim.Duration
}

// New builds an engine of k shards with the given lookahead window — the
// minimum propagation delay over every wired pipe, which the scenario
// builder must establish from its own geometry. The window is the engine's
// correctness contract: Wire panics at runtime if any frame undercuts it.
func New(k int, window sim.Duration) *Engine {
	if k < 1 {
		panic("shard: need at least one shard")
	}
	if window <= 0 {
		panic("shard: lookahead window must be positive")
	}
	e := &Engine{shards: make([]*Shard, k), window: window}
	for i := range e.shards {
		sh := &Shard{id: i, sched: sim.NewScheduler()}
		sh.deliver = sh.deliverMsg
		e.shards[i] = sh
	}
	return e
}

// Shards returns K.
func (e *Engine) Shards() int { return len(e.shards) }

// Shard returns shard i.
func (e *Engine) Shard(i int) *Shard { return e.shards[i] }

// Window returns the lookahead window.
func (e *Engine) Window() sim.Duration { return e.window }

// Executed sums events executed across all shards. Because every
// inter-satellite frame is mailboxed at every K, the sum is invariant
// across shard counts — a cheap canary for determinism regressions.
func (e *Engine) Executed() uint64 {
	var n uint64
	for _, sh := range e.shards {
		n += sh.sched.Executed()
	}
	return n
}

// Wire routes p's deliveries through dst's mailbox. src is the shard that
// owns p's transmit side (whose scheduler p was built on); dst owns the
// receive side. lane must be unique per wired pipe — it is the tiebreak
// that makes drains deterministic. Every inter-satellite pipe must be
// wired, including pipes whose two ends share a shard: uniform mailboxing
// is what keeps the event schedule identical at every K.
func (e *Engine) Wire(src, dst *Shard, p *channel.Pipe, lane uint32) {
	window := e.window
	var seq uint64
	p.SetRemote(func(at sim.Time, f *frame.Frame) {
		if now := src.sched.Now(); at.Before(now.Add(window)) {
			panic(fmt.Sprintf("shard: lookahead violation on lane %d: arrival %v < %v + window %v",
				lane, at, now, window))
		}
		seq++
		m := message{at: at, pipe: p, f: f, lane: lane, seq: seq}
		dst.in.mu.Lock()
		dst.in.msgs = append(dst.in.msgs, m)
		dst.in.mu.Unlock()
	})
}

// Run executes the simulation to the horizon in conservative rounds and
// returns the number of rounds run. stop, if non-nil, is evaluated on the
// coordinating goroutine at every round barrier (all shards quiescent, so
// it may read any shard-owned state) and ends the run early when true.
//
// At K == 1 the rounds run inline on the caller's goroutine; otherwise one
// long-lived worker per shard executes its rounds, with a channel barrier
// between rounds.
func (e *Engine) Run(horizon sim.Duration, stop func() bool) int {
	final := sim.Time(0).Add(horizon)
	w := int64(e.window)
	rounds := 0

	roundEnd := func() sim.Time {
		end := sim.Time(w*int64(rounds) - 1)
		if !end.Before(final) {
			end = final
		}
		return end
	}

	if len(e.shards) == 1 {
		sh := e.shards[0]
		for {
			rounds++
			end := roundEnd()
			sh.round(end)
			if stop != nil && stop() {
				break
			}
			if end == final {
				break
			}
		}
		return rounds
	}

	starts := make([]chan sim.Time, len(e.shards))
	done := make(chan struct{}, len(e.shards))
	for i, sh := range e.shards {
		starts[i] = make(chan sim.Time, 1)
		go func(sh *Shard, c <-chan sim.Time) {
			for end := range c {
				sh.round(end)
				done <- struct{}{}
			}
		}(sh, starts[i])
	}
	defer func() {
		for _, c := range starts {
			close(c)
		}
	}()

	for {
		rounds++
		end := roundEnd()
		for _, c := range starts {
			c <- end
		}
		for range e.shards {
			<-done
		}
		if stop != nil && stop() {
			break
		}
		if end == final {
			break
		}
	}
	return rounds
}

// DropInflight releases every frame still crossing a mailbox back to the
// frame pool. Call it once after Run: frames cut off by the horizon are
// owned by nobody else.
func (e *Engine) DropInflight() {
	for _, sh := range e.shards {
		sh.in.mu.Lock()
		msgs := sh.in.msgs
		sh.in.msgs = nil
		sh.in.mu.Unlock()
		for _, m := range msgs {
			frame.Put(m.f)
		}
		for _, m := range sh.pending {
			frame.Put(m.f)
		}
		sh.pending = sh.pending[:0]
	}
}
