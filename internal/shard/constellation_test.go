package shard

import (
	"strings"
	"testing"

	_ "repro/internal/engines"
	"repro/internal/sim"
)

// smallConfig is a 64-satellite scenario scaled down enough for unit tests
// and the race-enabled smoke target.
func smallConfig() Config {
	cfg := DefaultConfig(WalkerGrid(64))
	cfg.Flows = 8
	cfg.DatagramsPerFlow = 10
	cfg.Horizon = 5 * sim.Second
	return cfg
}

func TestConstellationSmoke(t *testing.T) {
	cfg := smallConfig()
	cfg.Shards = 2
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Offered == 0 || r.Delivered != r.Offered {
		t.Fatalf("delivered %d of %d offered", r.Delivered, r.Offered)
	}
	if r.Unroutable != 0 {
		t.Fatalf("%d unroutable flows in a connected grid", r.Unroutable)
	}
	if r.DelayP50 <= 0 || r.DelayMax < r.DelayP95 || r.DelayP95 < r.DelayP50 {
		t.Fatalf("implausible delay stats: p50=%v p95=%v max=%v", r.DelayP50, r.DelayP95, r.DelayMax)
	}
	if r.Events == 0 || r.Rounds == 0 {
		t.Fatalf("empty run: events=%d rounds=%d", r.Events, r.Rounds)
	}
	if strings.Contains(r.Render(), "shard") {
		t.Fatalf("Render leaks shard count:\n%s", r.Render())
	}
}

// TestConstellationShardInvariance is the determinism pin the engine's
// whole design serves: the full E19-style report — delivery counts, delay
// percentiles, frame totals, executed-event count — must be byte-identical
// whether the constellation runs on one shard or eight. Same style as the
// worker-count pins in internal/bench.
func TestConstellationShardInvariance(t *testing.T) {
	cfg := smallConfig()
	cfg.Shards = 1
	one, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 8
	eight, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if one.Render() != eight.Render() {
		t.Fatalf("report differs between 1 and 8 shards:\n--- shards=1\n%s--- shards=8\n%s",
			one.Render(), eight.Render())
	}
	if one.Events != eight.Events {
		t.Fatalf("executed events differ: %d vs %d", one.Events, eight.Events)
	}
}

// TestConstellationEveryProto runs the small scenario over each registered
// split-capable engine: the sharded path must uphold the same exactly-once
// delivery contract for the HDLC baselines as for LAMS-DLC.
func TestConstellationEveryProto(t *testing.T) {
	for _, proto := range []string{"lams", "srhdlc", "gbn"} {
		cfg := smallConfig()
		cfg.Proto = proto
		cfg.Shards = 4
		cfg.Flows = 4
		cfg.DatagramsPerFlow = 5
		r, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if r.Delivered != r.Offered || r.Offered == 0 {
			t.Fatalf("%s: delivered %d of %d", proto, r.Delivered, r.Offered)
		}
	}
}

// TestWalkerGridValidate pins the preset shapes used by E19.
func TestWalkerGridValidate(t *testing.T) {
	for _, n := range []int{64, 256, 1024} {
		w := WalkerGrid(n)
		if err := w.Validate(); err != nil {
			t.Fatalf("WalkerGrid(%d): %v", n, err)
		}
		if w.Total() != n {
			t.Fatalf("WalkerGrid(%d).Total() = %d", n, w.Total())
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("WalkerGrid(65) should panic")
		}
	}()
	WalkerGrid(65)
}
