package shard

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/node"
	"repro/internal/orbit"
	"repro/internal/sim"
)

// This file builds the constellation scenario on top of the shard engine:
// a Walker-delta constellation with grid crosslinks (intra-plane ring plus
// cross-plane same-index neighbors), every crosslink terminated by a full
// DLC session pair in each direction, polar-latitude handover churn on the
// cross-plane links, and a set of store-and-forward flows measured end to
// end. It is experiment family E19 and the lamsconst CLI in library form.

// flowStream offsets the flow-permutation RNG stream far away from the
// per-session link streams (session index space), so adding links never
// perturbs flow selection.
const flowStream = 1 << 30

// relVelMS bounds the relative velocity of two LEO crosslink endpoints
// [m/s]; it converts the delay-sampling step into a safety margin when the
// minimum propagation delay (the lookahead window) is estimated from
// discrete samples. Two counter-rotating LEO satellites close at well under
// 2 × 7.8 km/s.
const relVelMS = 16e3

// Config parameterizes one constellation run. Build one with
// DefaultConfig and override fields; Run validates.
type Config struct {
	Walker orbit.Walker
	// Proto names a registered ARQ engine ("lams", "srhdlc", "gbn").
	Proto string
	// Shards is K, the number of parallel partitions. Results are
	// bit-identical for every K ≥ 1.
	Shards int
	Seed   uint64

	// Flows is the number of source→destination packet flows, drawn from a
	// seed-determined permutation (each node is source of at most one flow
	// and destination of at most one). Clamped to Total/2.
	Flows int
	// DatagramsPerFlow is how many datagrams each flow originates.
	DatagramsPerFlow int
	PayloadBytes     int
	// OfferInterval spaces a flow's consecutive datagrams.
	OfferInterval sim.Duration

	// RateBps is the crosslink wire rate; IErrProb and CErrProb are the
	// per-frame corruption probabilities for information and control
	// frames.
	RateBps            float64
	IErrProb, CErrProb float64
	// IModelSpec and CModelSpec, when set, name the per-link error models
	// by registry spec (channel.ParseModel; "ge:...", "trace:file=...")
	// and take precedence over IErrProb/CErrProb. Every adjacency pipe
	// instantiates a FRESH model from its spec inside channel.NewPipe, and
	// each pipe's RNG stream is keyed by adjacency index, not by shard —
	// so stateful models (Gilbert-Elliott sojourns, replay cursors) stay
	// bit-identical at every shard count.
	IModelSpec, CModelSpec string

	// Horizon bounds simulated time. Unless RunToHorizon is set, the run
	// stops early once every routable flow has delivered everything it
	// sent.
	Horizon      sim.Duration
	RunToHorizon bool

	// PolarDeg gates cross-plane crosslinks: they are unusable while
	// either endpoint is above this |latitude| (0 disables gating).
	// Retarget is the pointing re-acquisition time after a link becomes
	// geometrically usable again.
	PolarDeg float64
	Retarget sim.Duration
	// GrazingAltitudeM is the line-of-sight grazing altitude for
	// visibility.
	GrazingAltitudeM float64
}

// WalkerGrid returns the canonical square Walker constellation used by the
// constellation experiments: √n planes of √n satellites at 780 km, 86.4°
// inclination (Iridium-like near-polar), phasing F=1 so that cross-plane
// neighbors never collide at the plane crossings. n must be a perfect
// square.
func WalkerGrid(n int) orbit.Walker {
	p := int(math.Round(math.Sqrt(float64(n))))
	if p*p != n {
		panic(fmt.Sprintf("shard: WalkerGrid(%d): not a perfect square", n))
	}
	return orbit.Walker{
		Planes:         p,
		PerPlane:       p,
		PhasingF:       1,
		AltitudeM:      780e3,
		InclinationDeg: 86.4,
	}
}

// DefaultConfig returns the standard constellation scenario over w.
func DefaultConfig(w orbit.Walker) Config {
	n := w.Total()
	flows := n / 4
	if flows < 1 {
		flows = 1
	}
	return Config{
		Walker:           w,
		Proto:            "lams",
		Shards:           1,
		Seed:             1,
		Flows:            flows,
		DatagramsPerFlow: 50,
		PayloadBytes:     256,
		OfferInterval:    2 * sim.Millisecond,
		RateBps:          300e6,
		IErrProb:         0.01,
		CErrProb:         0.002,
		Horizon:          30 * sim.Second,
		PolarDeg:         60,
		Retarget:         200 * sim.Millisecond,
		GrazingAltitudeM: 80e3,
	}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	if err := c.Walker.Validate(); err != nil {
		return err
	}
	n := c.Walker.Total()
	if n < 2 {
		return fmt.Errorf("shard: constellation needs >=2 satellites, got %d", n)
	}
	if n > 65535 {
		return fmt.Errorf("shard: %d satellites exceed the node.ID space", n)
	}
	if c.Shards < 1 || c.Shards > n {
		return fmt.Errorf("shard: %d shards for %d satellites", c.Shards, n)
	}
	if _, err := arq.ParseProtocol(c.Proto); err != nil {
		return err
	}
	if c.Flows < 1 || c.DatagramsPerFlow < 1 || c.PayloadBytes < 1 {
		return fmt.Errorf("shard: flows, datagrams/flow and payload must be positive")
	}
	if c.OfferInterval <= 0 || c.Horizon <= 0 {
		return fmt.Errorf("shard: offer interval and horizon must be positive")
	}
	if c.RateBps <= 0 {
		return fmt.Errorf("shard: rate must be positive")
	}
	for _, spec := range []string{c.IModelSpec, c.CModelSpec} {
		if spec == "" {
			continue
		}
		if _, err := channel.ParseModel(spec); err != nil {
			return err
		}
	}
	return nil
}

// Report is the outcome of one constellation run. Every field except
// Shards is invariant across shard counts; Render prints only the
// invariant fields, which is what the determinism pins compare.
type Report struct {
	Sats        int
	Adjacencies int
	Flows       int
	Unroutable  int
	Shards      int

	Window sim.Duration
	Rounds int
	Events uint64
	// EndTime is the simulated clock when the run stopped (early stop or
	// horizon).
	EndTime sim.Time

	Offered   uint64
	Delivered uint64
	DelayP50  sim.Duration
	DelayP95  sim.Duration
	DelayMax  sim.Duration
	// Makespan is the time of the last end-to-end delivery.
	Makespan sim.Time

	// Handover counts link-state transitions (down or up) actually applied
	// within the horizon, over all crosslink adjacencies.
	Handover int

	FramesSent      uint64
	FramesDelivered uint64
	FramesLost      uint64
	ControlFrames   uint64
	BitsSent        uint64
	Retransmissions uint64
	// Utilization is BitsSent over the aggregate wire capacity of every
	// pipe up to EndTime.
	Utilization float64
}

// Render prints the shard-count-invariant report, one experiment row per
// line. It deliberately excludes Shards (and any wall-clock quantity): the
// determinism pins require the output to be byte-identical at every K.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "constellation: sats=%d adjacencies=%d flows=%d unroutable=%d window=%s rounds=%d events=%d end=%s\n",
		r.Sats, r.Adjacencies, r.Flows, r.Unroutable, sim.Duration(r.Window), r.Rounds, r.Events, r.EndTime)
	fmt.Fprintf(&b, "delivery: offered=%d delivered=%d delay p50=%s p95=%s max=%s makespan=%s\n",
		r.Offered, r.Delivered, r.DelayP50, r.DelayP95, r.DelayMax, r.Makespan)
	fmt.Fprintf(&b, "links: handover=%d frames sent=%d delivered=%d lost=%d control=%d retx=%d bits=%d util=%.6f\n",
		r.Handover, r.FramesSent, r.FramesDelivered, r.FramesLost, r.ControlFrames, r.Retransmissions, r.BitsSent, r.Utilization)
	return b.String()
}

// span is one usable interval of an adjacency within [0, horizon].
type span struct{ start, end time.Duration }

// adjacency is one undirected crosslink: satellites u < v, their geometry,
// and the precomputed usability schedule.
type adjacency struct {
	u, v  int
	cross bool
	geom  orbit.Link
	spans []span
	// always marks an adjacency usable throughout the horizon; routes are
	// computed over always-adjacencies only, so no flow ever depends on a
	// link mid-handover.
	always             bool
	minDelay, maxDelay sim.Duration
}

// upAt reports the usability state at time t according to the spans.
func (a *adjacency) upAt(t time.Duration) bool {
	for _, s := range a.spans {
		if s.start <= t && t < s.end {
			return true
		}
	}
	return false
}

// scanSpans samples usable at step resolution over [0, horizon] and
// bisects each transition to millisecond precision, mirroring
// orbit.Link.Windows. The edge times are pure functions of the geometry —
// never of the partitioning — so every shard count sees identical
// handover schedules.
func scanSpans(usable func(time.Duration) bool, horizon, step time.Duration) []span {
	bisect := func(lo, hi time.Duration, want bool) time.Duration {
		for hi-lo > time.Millisecond {
			mid := lo + (hi-lo)/2
			if usable(mid) == want {
				hi = mid
			} else {
				lo = mid
			}
		}
		return hi
	}
	var spans []span
	open := false
	var start time.Duration
	if usable(0) {
		open = true
	}
	prev := time.Duration(0)
	for t := step; ; t += step {
		if t > horizon {
			t = horizon
		}
		up := usable(t)
		if up != open {
			edge := bisect(prev, t, up)
			if up {
				start, open = edge, true
			} else {
				spans = append(spans, span{start, edge})
				open = false
			}
		}
		prev = t
		if t == horizon {
			break
		}
	}
	if open {
		spans = append(spans, span{start, horizon})
	}
	return spans
}

// buildAdjacencies enumerates the grid crosslinks in canonical order —
// every intra-plane ring edge plane-major, then every cross-plane rung —
// and precomputes each one's usability spans and delay envelope.
func buildAdjacencies(cfg Config, orbits []orbit.Orbit) []adjacency {
	w := cfg.Walker
	sat := func(p, s int) int { return p*w.PerPlane + s }
	var adjs []adjacency
	add := func(u, v int, cross bool) {
		if u > v {
			u, v = v, u
		}
		adjs = append(adjs, adjacency{u: u, v: v, cross: cross,
			geom: orbit.Link{A: orbits[u], B: orbits[v], GrazingAltitudeM: cfg.GrazingAltitudeM}})
	}
	if w.PerPlane >= 2 {
		for p := 0; p < w.Planes; p++ {
			for s := 0; s < w.PerPlane; s++ {
				if w.PerPlane == 2 && s == 1 {
					break // the 2-ring has a single edge
				}
				add(sat(p, s), sat(p, (s+1)%w.PerPlane), false)
			}
		}
	}
	if w.Planes >= 2 {
		for p := 0; p < w.Planes; p++ {
			if w.Planes == 2 && p == 1 {
				break
			}
			for s := 0; s < w.PerPlane; s++ {
				add(sat(p, s), sat((p+1)%w.Planes, s), true)
			}
		}
	}

	step := time.Second
	polar := cfg.PolarDeg * math.Pi / 180
	horizon := time.Duration(cfg.Horizon)
	for i := range adjs {
		a := &adjs[i]
		usable := func(t time.Duration) bool {
			if !a.geom.Visible(t) {
				return false
			}
			if a.cross && polar > 0 {
				if math.Abs(a.geom.A.Latitude(t)) > polar || math.Abs(a.geom.B.Latitude(t)) > polar {
					return false
				}
			}
			return true
		}
		a.spans = scanSpans(usable, horizon, step)
		a.always = len(a.spans) == 1 && a.spans[0].start == 0 && a.spans[0].end == horizon

		lo, hi := sim.Duration(math.MaxInt64), sim.Duration(0)
		for t := time.Duration(0); ; t += step {
			if t > horizon {
				t = horizon
			}
			d := orbit.PropagationDelay(a.geom.RangeM(t))
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
			if t == horizon {
				break
			}
		}
		a.minDelay, a.maxDelay = lo, hi
	}
	return adjs
}

// lookahead derives the engine window: the minimum propagation delay over
// every adjacency across the horizon, minus the sampling safety margin.
// It is a pure function of the geometry, never of K.
func lookahead(adjs []adjacency) (sim.Duration, error) {
	w := sim.Duration(math.MaxInt64)
	for i := range adjs {
		if adjs[i].minDelay < w {
			w = adjs[i].minDelay
		}
	}
	w -= orbit.PropagationDelay(relVelMS * time.Second.Seconds())
	if w <= 0 {
		return 0, fmt.Errorf("shard: degenerate geometry: lookahead window %v (satellites too close)", w)
	}
	return w, nil
}

// flowState is one measured end-to-end flow. sent is written only by the
// source's shard, delivered/delays/last only by the destination's; the
// coordinator reads them at round barriers.
type flowState struct {
	src, dst  node.ID
	routable  bool
	sent      int
	delivered int
	last      sim.Time
	delays    []sim.Duration
}

// session is one directed DLC adjacency direction, kept for report
// aggregation in canonical order.
type session struct {
	link *channel.Link
	pair arq.Pair
}

// Constellation is a fully built scenario, ready to run once. Splitting
// construction from execution lets benchmarks time (and measure the
// allocations of) the event loop separately from scenario building.
type Constellation struct {
	cfg      Config
	eng      *Engine
	window   sim.Duration
	adjs     int
	sessions []session
	flows    []flowState
	handover int
	ran      bool
}

// Run executes one constellation scenario and returns its report. The
// report's Render output is bit-identical for every cfg.Shards ≥ 1.
func Run(cfg Config) (Report, error) {
	c, err := Build(cfg)
	if err != nil {
		return Report{}, err
	}
	return c.Run(), nil
}

// Build validates cfg and constructs the whole scenario — geometry,
// engine, sessions, handover schedule, routes and flows — without
// advancing simulated time.
func Build(cfg Config) (*Constellation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := cfg.Walker
	n := w.Total()
	orbits := w.Orbits()
	adjs := buildAdjacencies(cfg, orbits)
	window, err := lookahead(adjs)
	if err != nil {
		return nil, err
	}

	eng := New(cfg.Shards, window)
	shardOf := func(i int) *Shard { return eng.Shard(i * cfg.Shards / n) }

	// One node per satellite, homed on its shard's scheduler. The node-wide
	// engine is only the default for plain attach(), which the
	// constellation never uses — every session is per-adjacency.
	var maxDelay sim.Duration
	for i := range adjs {
		if adjs[i].maxDelay > maxDelay {
			maxDelay = adjs[i].maxDelay
		}
	}
	defEng, err := arq.DefaultEngine(cfg.Proto, 2*maxDelay)
	if err != nil {
		return nil, err
	}
	nodes := make([]*node.Node, n)
	for i := range nodes {
		nodes[i] = node.New(shardOf(i).Scheduler(), node.ID(i), defEng)
	}

	// Sessions: each adjacency carries one directed DLC session per
	// direction, each over its own split link. Lane numbering, RNG streams
	// and engine round trips are all keyed by adjacency index, so they are
	// identical at every K.
	sessions := make([]session, 0, 2*len(adjs))
	pipeCfg := channel.PipeConfig{
		RateBps:    cfg.RateBps,
		IModelSpec: cfg.IModelSpec,
		CModelSpec: cfg.CModelSpec,
	}
	if pipeCfg.IModelSpec == "" && cfg.IErrProb > 0 {
		pipeCfg.IModel = channel.FixedProb{P: cfg.IErrProb}
	}
	if pipeCfg.CModelSpec == "" && cfg.CErrProb > 0 {
		pipeCfg.CModel = channel.FixedProb{P: cfg.CErrProb}
	}
	for ai := range adjs {
		a := &adjs[ai]
		linkEng, err := arq.DefaultEngine(cfg.Proto, 2*a.maxDelay)
		if err != nil {
			return nil, err
		}
		pc := pipeCfg
		pc.Delay = channel.OrbitDelay(a.geom, 0)
		for dir := 0; dir < 2; dir++ {
			src, dst := a.u, a.v
			if dir == 1 {
				src, dst = a.v, a.u
			}
			si := 2*ai + dir
			rng := sim.NewRNG(sim.DeriveSeed(cfg.Seed, si))
			ss, ds := shardOf(src), shardOf(dst)
			link := channel.NewSplitLink(ss.Scheduler(), ds.Scheduler(), pc, rng)
			pair := nodes[src].AttachSplit(nodes[dst], link, linkEng)
			eng.Wire(ss, ds, link.AtoB, uint32(2*si))
			eng.Wire(ds, ss, link.BtoA, uint32(2*si+1))
			sessions = append(sessions, session{link: link, pair: pair})
		}
	}

	// Handover schedule. Each transition toggles both directions of the
	// adjacency. A remote pipe's down flag belongs to its transmit shard
	// and its rxDown flag to its receive shard, so each transition is two
	// simultaneous events — one per shard — each flipping exactly the four
	// flags that shard owns. For session u→v over link uv and session v→u
	// over link vu: shard(u) owns uv.AtoB.down, vu.BtoA.down,
	// vu.AtoB.rxDown and uv.BtoA.rxDown; shard(v) owns the mirror set.
	// Up-transitions are delayed by the retarget time; a usable window
	// shorter than the retarget never comes up at all.
	handover := 0
	for ai := range adjs {
		a := &adjs[ai]
		su, sv := shardOf(a.u), shardOf(a.v)
		uv, vu := sessions[2*ai].link, sessions[2*ai+1].link
		atU := func(down bool) {
			uv.AtoB.SetDown(down)
			vu.BtoA.SetDown(down)
			vu.AtoB.SetRxDown(down)
			uv.BtoA.SetRxDown(down)
		}
		atV := func(down bool) {
			vu.AtoB.SetDown(down)
			uv.BtoA.SetDown(down)
			uv.AtoB.SetRxDown(down)
			vu.BtoA.SetRxDown(down)
		}
		if !a.upAt(0) {
			atU(true) // pre-run: no ownership constraint yet
			atV(true)
		}
		schedule := func(at time.Duration, down bool) {
			t := sim.Time(0).Add(at)
			su.Scheduler().ScheduleDetached(t, func() { atU(down) })
			sv.Scheduler().ScheduleDetached(t, func() { atV(down) })
			handover++
		}
		for _, s := range a.spans {
			if s.start > 0 {
				up := s.start + time.Duration(cfg.Retarget)
				if up >= s.end {
					continue // window shorter than re-acquisition: stays down
				}
				schedule(up, false)
			}
			if s.end < time.Duration(cfg.Horizon) {
				schedule(s.end, true)
			}
		}
	}

	// Routing: shortest paths over the adjacencies usable throughout the
	// horizon, BFS per flow destination with neighbors visited in index
	// order.
	neighbors := make([][]int, n)
	for i := range adjs {
		if !adjs[i].always {
			continue
		}
		a := &adjs[i]
		neighbors[a.u] = append(neighbors[a.u], a.v)
		neighbors[a.v] = append(neighbors[a.v], a.u)
	}
	for i := range neighbors {
		sort.Ints(neighbors[i])
	}

	flows := make([]flowState, 0, cfg.Flows)
	nf := cfg.Flows
	if nf > n/2 {
		nf = n / 2
	}
	perm := sim.NewRNG(sim.DeriveSeed(cfg.Seed, flowStream)).Perm(n)
	parent := make([]int, n)
	queue := make([]int, 0, n)
	for f := 0; f < nf; f++ {
		dst := perm[f]
		src := perm[(f+n/2)%n]
		// BFS from dst installs next hops toward dst at every reachable
		// node; the flow is routable iff src is among them.
		for i := range parent {
			parent[i] = -1
		}
		parent[dst] = dst
		queue = append(queue[:0], dst)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range neighbors[u] {
				if parent[v] < 0 {
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		for i := range parent {
			if i != dst && parent[i] >= 0 {
				nodes[i].SetRoute(node.ID(dst), node.ID(parent[i]))
			}
		}
		flows = append(flows, flowState{src: node.ID(src), dst: node.ID(dst), routable: parent[src] >= 0})
	}

	// Feeds and delivery measurement. A datagram's send time is a pure
	// function of (flow, seq), so the destination needs no timestamp in
	// the payload to measure delay.
	payload := make([]byte, cfg.PayloadBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	interval := cfg.OfferInterval
	for fi := range flows {
		fl := &flows[fi]
		if !fl.routable {
			continue
		}
		srcNode := nodes[fl.src]
		srcSched := shardOf(int(fl.src)).Scheduler()
		var tick func()
		tick = func() {
			srcNode.Send(fl.dst, payload)
			fl.sent++
			if fl.sent < cfg.DatagramsPerFlow {
				srcSched.ScheduleAfterDetached(interval, tick)
			}
		}
		srcSched.ScheduleDetached(0, tick)
		nodes[fl.dst].OnDeliver = func(now sim.Time, p node.Packet) {
			if p.Src != fl.src {
				return
			}
			sent := sim.Time(0).Add(sim.Duration(p.Seq) * interval)
			fl.delays = append(fl.delays, now.Sub(sent))
			fl.delivered++
			if now.After(fl.last) {
				fl.last = now
			}
		}
	}

	return &Constellation{
		cfg:      cfg,
		eng:      eng,
		window:   window,
		adjs:     len(adjs),
		sessions: sessions,
		flows:    flows,
		handover: handover,
	}, nil
}

// Run executes the built scenario to completion (or the horizon) and
// aggregates the report in canonical order — flows, then sessions —
// independent of the partitioning. It may be called once.
func (c *Constellation) Run() Report {
	if c.ran {
		panic("shard: Constellation.Run called twice")
	}
	c.ran = true
	cfg, flows := c.cfg, c.flows

	stop := func() bool {
		if cfg.RunToHorizon {
			return false
		}
		for fi := range flows {
			fl := &flows[fi]
			if !fl.routable {
				continue
			}
			if fl.sent < cfg.DatagramsPerFlow || fl.delivered < fl.sent {
				return false
			}
		}
		return true
	}

	rounds := c.eng.Run(cfg.Horizon, stop)
	c.eng.DropInflight()

	r := Report{
		Sats:        cfg.Walker.Total(),
		Adjacencies: c.adjs,
		Flows:       len(flows),
		Shards:      cfg.Shards,
		Window:      c.window,
		Rounds:      rounds,
		Events:      c.eng.Executed(),
		EndTime:     c.eng.Shard(0).Scheduler().Now(),
		Handover:    c.handover,
	}
	var delays []sim.Duration
	for fi := range flows {
		fl := &flows[fi]
		if !fl.routable {
			r.Unroutable++
		}
		r.Offered += uint64(fl.sent)
		r.Delivered += uint64(fl.delivered)
		if fl.last.After(r.Makespan) {
			r.Makespan = fl.last
		}
		delays = append(delays, fl.delays...)
	}
	sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
	if m := len(delays); m > 0 {
		i95 := m * 95 / 100
		if i95 >= m {
			i95 = m - 1
		}
		r.DelayP50 = delays[m/2]
		r.DelayP95 = delays[i95]
		r.DelayMax = delays[m-1]
	}
	for _, s := range c.sessions {
		for _, p := range []*channel.Pipe{s.link.AtoB, s.link.BtoA} {
			r.FramesSent += p.Stats.FramesSent.Value()
			r.FramesDelivered += p.Stats.FramesDelivered.Value()
			r.FramesLost += p.Stats.FramesLost.Value() + p.Stats.FramesLostTx.Value()
			r.ControlFrames += p.Stats.CFrames.Value()
			r.BitsSent += p.Stats.BitsSent.Value()
		}
		r.Retransmissions += s.pair.Metrics().Retransmissions.Value()
	}
	if capacity := cfg.RateBps * r.EndTime.Seconds() * float64(4*c.adjs); capacity > 0 {
		r.Utilization = float64(r.BitsSent) / capacity
	}
	return r
}
