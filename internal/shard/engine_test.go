package shard

import (
	"fmt"
	"testing"

	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/sim"
)

// runMailboxScenario drives one fixed traffic pattern — two pipes crossing
// between two entities, sends scheduled from both sides — through the
// engine at the given shard count and returns a trace of every delivery.
// src entity lives on shard 0, dst on shard min(k-1, 1).
func runMailboxScenario(t *testing.T, k int) []string {
	t.Helper()
	const window = 2 * sim.Millisecond
	eng := New(k, window)
	s0 := eng.Shard(0)
	s1 := eng.Shard(k - 1)

	cfg := channel.PipeConfig{RateBps: 1e6, Delay: channel.ConstantDelay(window)}
	fwd := channel.NewPipe(s0.Scheduler(), cfg, sim.NewRNG(7))
	rev := channel.NewPipe(s1.Scheduler(), cfg, sim.NewRNG(8))
	eng.Wire(s0, s1, fwd, 0)
	eng.Wire(s1, s0, rev, 1)

	// Each handler runs on its own shard, so each gets its own trace
	// slice; the two are concatenated only after the run.
	var fwdTrace, revTrace []string
	fwd.SetHandler(func(now sim.Time, f *frame.Frame) {
		fwdTrace = append(fwdTrace, fmt.Sprintf("fwd seq=%d at=%v", f.Seq, now))
		// bounce a reply so traffic crosses shards both ways
		if f.Seq < 8 {
			g := frame.NewI(f.Seq+100, 0, nil)
			rev.Send(g)
			frame.Put(g)
		}
		frame.Put(f)
	})
	rev.SetHandler(func(now sim.Time, f *frame.Frame) {
		revTrace = append(revTrace, fmt.Sprintf("rev seq=%d at=%v", f.Seq, now))
		frame.Put(f)
	})

	for i := 0; i < 10; i++ {
		seq := uint32(i)
		s0.Scheduler().ScheduleDetached(sim.Time(0).Add(sim.Duration(i)*sim.Millisecond), func() {
			g := frame.NewI(seq, 0, nil)
			fwd.Send(g)
			frame.Put(g)
		})
	}
	eng.Run(100*sim.Millisecond, nil)
	eng.DropInflight()
	return append(fwdTrace, revTrace...)
}

// TestEngineMailboxDeterminism pins the mailbox machinery: the same
// scenario yields the identical delivery trace at one and two shards, and
// deliveries happen at the stamped arrival times (send + wire + window).
func TestEngineMailboxDeterminism(t *testing.T) {
	one := runMailboxScenario(t, 1)
	two := runMailboxScenario(t, 2)
	if len(one) == 0 {
		t.Fatal("no deliveries")
	}
	if fmt.Sprint(one) != fmt.Sprint(two) {
		t.Fatalf("trace differs between 1 and 2 shards:\n1: %v\n2: %v", one, two)
	}
}

// TestEngineLookaheadViolation pins the window contract: wiring a pipe
// whose delay undercuts the engine window must panic at send time.
func TestEngineLookaheadViolation(t *testing.T) {
	eng := New(2, 5*sim.Millisecond)
	s0, s1 := eng.Shard(0), eng.Shard(1)
	p := channel.NewPipe(s0.Scheduler(), channel.PipeConfig{
		Delay: channel.ConstantDelay(1 * sim.Millisecond), // < window
	}, sim.NewRNG(1))
	p.SetHandler(func(sim.Time, *frame.Frame) {})
	eng.Wire(s0, s1, p, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("send below the lookahead window did not panic")
		}
	}()
	g := frame.NewI(1, 0, nil)
	defer frame.Put(g)
	p.Send(g)
}

// TestEngineRoundCount pins the round arithmetic: horizon exactly divisible
// by the window, horizon smaller than the window, and early stop.
func TestEngineRoundCount(t *testing.T) {
	// Round k ends at k·W−1 (the boundary instant belongs to the next
	// round), so a horizon of exactly 10 windows takes 11 rounds: ten full
	// windows plus the horizon instant itself.
	eng := New(1, 10*sim.Millisecond)
	if got := eng.Run(100*sim.Millisecond, nil); got != 11 {
		t.Fatalf("100ms/10ms = %d rounds, want 11", got)
	}
	eng = New(1, 10*sim.Millisecond)
	if got := eng.Run(3*sim.Millisecond, nil); got != 1 {
		t.Fatalf("3ms horizon under a 10ms window = %d rounds, want 1", got)
	}
	eng = New(1, 10*sim.Millisecond)
	calls := 0
	got := eng.Run(100*sim.Millisecond, func() bool { calls++; return calls >= 3 })
	if got != 3 {
		t.Fatalf("early stop after 3 barriers ran %d rounds", got)
	}
}
