// Package stats provides the measurement primitives the experiment harness
// uses to reproduce the paper's tables and figures: streaming moments
// (Welford), duration/value histograms, time-weighted averages for queue
// lengths, and labelled series for figure-style sweeps.
//
// Everything is plain data with deterministic behaviour; nothing here locks
// or touches the wall clock, so collectors can live inside the single-
// threaded simulation without ceremony.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Welford accumulates streaming mean and variance without storing samples.
// The zero value is an empty accumulator.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the sample mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation, or 0 with none.
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return 0
	}
	return w.min
}

// Max returns the largest observation, or 0 with none.
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return 0
	}
	return w.max
}

// Merge folds other into w, as if every observation of other had been Added
// to w. Useful when per-entity collectors are combined for a report.
func (w *Welford) Merge(other *Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *other
		return
	}
	n := w.n + other.n
	d := other.mean - w.mean
	mean := w.mean + d*float64(other.n)/float64(n)
	m2 := w.m2 + other.m2 + d*d*float64(w.n)*float64(other.n)/float64(n)
	w.mean, w.m2, w.n = mean, m2, n
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
}

// String summarizes the accumulator for reports.
func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.6g std=%.6g min=%.6g max=%.6g",
		w.n, w.Mean(), w.Std(), w.Min(), w.Max())
}

// Histogram is a base-2 logarithmic-bucket histogram over non-negative
// float64 values. Bucket i covers [2^(i-1), 2^i) with bucket 0 covering
// [0, 1). It answers approximate quantiles, which is all the experiment
// tables need (holding-time and delay distributions).
type Histogram struct {
	buckets []uint64
	n       uint64
	sum     float64
	w       Welford
}

// Add records one observation; negative values clamp to zero.
func (h *Histogram) Add(x float64) {
	if x < 0 {
		x = 0
	}
	i := 0
	if x >= 1 {
		i = int(math.Floor(math.Log2(x))) + 1
	}
	if i >= len(h.buckets) {
		nb := make([]uint64, i+1)
		copy(nb, h.buckets)
		h.buckets = nb
	}
	h.buckets[i]++
	h.n++
	h.sum += x
	h.w.Add(x)
}

// N returns the number of observations.
func (h *Histogram) N() uint64 { return h.n }

// Mean returns the exact mean of the observations.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Std returns the exact standard deviation of the observations.
func (h *Histogram) Std() float64 { return h.w.Std() }

// Max returns the exact maximum observation.
func (h *Histogram) Max() float64 { return h.w.Max() }

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) using the
// bucket upper edges; accurate to within a factor of 2, which suffices for
// order-of-magnitude delay tables.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= rank {
			if i == 0 {
				return 1
			}
			return math.Pow(2, float64(i))
		}
	}
	return h.w.Max()
}

// Counter is a named monotonically increasing count.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Addn adds n.
func (c *Counter) Addn(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// TimeWeighted tracks the time-average of a step function, e.g. queue
// length or buffer occupancy over virtual time. Update must be called with
// non-decreasing timestamps (in nanoseconds or any consistent unit).
type TimeWeighted struct {
	lastT    int64
	lastV    float64
	area     float64
	started  bool
	max      float64
	duration int64
}

// Update records that the tracked quantity changed to v at time t.
func (tw *TimeWeighted) Update(t int64, v float64) {
	if !tw.started {
		tw.started = true
		tw.lastT, tw.lastV = t, v
		tw.max = v
		return
	}
	if t < tw.lastT {
		panic("stats: TimeWeighted time went backwards")
	}
	tw.area += tw.lastV * float64(t-tw.lastT)
	tw.duration += t - tw.lastT
	tw.lastT, tw.lastV = t, v
	if v > tw.max {
		tw.max = v
	}
}

// Mean returns the time-weighted average up to the last update.
func (tw *TimeWeighted) Mean() float64 {
	if tw.duration == 0 {
		return tw.lastV
	}
	return tw.area / float64(tw.duration)
}

// Max returns the largest value observed.
func (tw *TimeWeighted) Max() float64 { return tw.max }

// Current returns the most recent value.
func (tw *TimeWeighted) Current() float64 { return tw.lastV }

// Point is one (x, y) sample of a figure series.
type Point struct {
	X, Y float64
}

// Series is a labelled sequence of points: one curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// Ys returns the y values in order.
func (s *Series) Ys() []float64 {
	ys := make([]float64, len(s.Points))
	for i, p := range s.Points {
		ys[i] = p.Y
	}
	return ys
}

// Monotone reports whether the series is non-decreasing (dir > 0) or
// non-increasing (dir < 0) in y, within a relative tolerance tol. The
// experiment harness uses it to assert shape claims like "η rises with N".
func (s *Series) Monotone(dir int, tol float64) bool {
	for i := 1; i < len(s.Points); i++ {
		prev, cur := s.Points[i-1].Y, s.Points[i].Y
		slack := tol * math.Max(math.Abs(prev), math.Abs(cur))
		if dir > 0 && cur < prev-slack {
			return false
		}
		if dir < 0 && cur > prev+slack {
			return false
		}
	}
	return true
}

// Crossover returns the x at which series a first drops below (or rises
// above) series b, interpolating linearly, and reports whether a crossover
// exists. Both series must be sampled at the same x values.
func Crossover(a, b *Series) (float64, bool) {
	n := len(a.Points)
	if n != len(b.Points) || n == 0 {
		return 0, false
	}
	sign := func(i int) int {
		d := a.Points[i].Y - b.Points[i].Y
		switch {
		case d > 0:
			return 1
		case d < 0:
			return -1
		}
		return 0
	}
	prev := sign(0)
	for i := 1; i < n; i++ {
		cur := sign(i)
		if cur != prev && cur != 0 && prev != 0 {
			// Linear interpolation of the zero of (a-b).
			x0, x1 := a.Points[i-1].X, a.Points[i].X
			d0 := a.Points[i-1].Y - b.Points[i-1].Y
			d1 := a.Points[i].Y - b.Points[i].Y
			t := d0 / (d0 - d1)
			return x0 + t*(x1-x0), true
		}
		if cur != 0 {
			prev = cur
		}
	}
	return 0, false
}

// Table is a simple fixed-column text table used by the harness to print the
// same rows the paper reports.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells beyond the column count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted values; each value is rendered with %v
// unless it is a float64, which uses %.4g.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.4g", v))
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, w := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w, cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// SortRowsByColumn sorts the table rows by the numeric value of column i
// (non-numeric cells sort last, lexically).
func (t *Table) SortRowsByColumn(i int) {
	sort.SliceStable(t.Rows, func(a, b int) bool {
		va, ea := parseFloat(t.Rows[a][i])
		vb, eb := parseFloat(t.Rows[b][i])
		switch {
		case ea == nil && eb == nil:
			return va < vb
		case ea == nil:
			return true
		case eb == nil:
			return false
		}
		return t.Rows[a][i] < t.Rows[b][i]
	})
}

func parseFloat(s string) (float64, error) {
	var v float64
	_, err := fmt.Sscanf(strings.TrimSpace(s), "%g", &v)
	return v, err
}
