package stats

import (
	"math"
	"strings"
	"testing"
)

// A series with no points is the same as no series at all.
func TestChartEmptySeries(t *testing.T) {
	out := Chart{Title: "t", Series: []*Series{{Label: "empty"}}}.Render()
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty series should render as no data:\n%s", out)
	}
}

// A single point degenerates both axis ranges to zero width; the chart must
// widen them rather than divide by zero.
func TestChartSinglePoint(t *testing.T) {
	s := &Series{Label: "one"}
	s.Add(3, 7)
	out := Chart{Series: []*Series{s}, Width: 20, Height: 6}.Render()
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("degenerate axis bounds:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("point not plotted:\n%s", out)
	}
	if !strings.Contains(out, "7") || !strings.Contains(out, "3") {
		t.Fatalf("axis labels missing the point's coordinates:\n%s", out)
	}
}

// Non-finite points (NaN efficiency from a zero-delivery run, an Inf ratio)
// must neither plot nor poison the axis bounds.
func TestChartNaNFreeAxisBounds(t *testing.T) {
	s := &Series{Label: "mixed"}
	s.Add(1, 1)
	s.Add(2, math.NaN())
	s.Add(math.Inf(1), 3)
	s.Add(4, 4)
	out := Chart{Series: []*Series{s}, Width: 20, Height: 6}.Render()
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("non-finite point leaked into axis bounds:\n%s", out)
	}
	for _, want := range []string{"1", "4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("finite bounds missing %q:\n%s", want, out)
		}
	}

	// All points non-finite: nothing plottable remains.
	bad := &Series{Label: "bad"}
	bad.Add(math.NaN(), math.NaN())
	if out := (Chart{Series: []*Series{bad}}).Render(); !strings.Contains(out, "no data") {
		t.Fatalf("all-NaN series should render as no data:\n%s", out)
	}
}

// Log-x with a nonpositive x must not produce a -Inf axis bound.
func TestChartLogXNonpositive(t *testing.T) {
	s := &Series{Label: "ber"}
	s.Add(0, 1) // log10(0) would be -Inf
	s.Add(1e-5, 2)
	s.Add(1e-3, 3)
	out := Chart{LogX: true, Series: []*Series{s}, Width: 20, Height: 6}.Render()
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("log axis bounds not finite:\n%s", out)
	}
}
