package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Var() != 0 || w.Min() != 0 || w.Max() != 0 {
		t.Fatal("zero value not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if math.Abs(w.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("Var = %v, want %v", w.Var(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", w.Min(), w.Max())
	}
	if !strings.Contains(w.String(), "n=8") {
		t.Fatalf("String = %q", w.String())
	}
}

func TestWelfordSingleObservation(t *testing.T) {
	var w Welford
	w.Add(3.5)
	if w.Var() != 0 || w.Std() != 0 {
		t.Fatal("variance of one sample should be 0")
	}
	if w.Min() != 3.5 || w.Max() != 3.5 {
		t.Fatal("min/max of one sample")
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		clean := func(xs []float64) []float64 {
			out := xs[:0]
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
					out = append(out, x)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var wa, wb, wall Welford
		for _, x := range a {
			wa.Add(x)
			wall.Add(x)
		}
		for _, x := range b {
			wb.Add(x)
			wall.Add(x)
		}
		wa.Merge(&wb)
		if wa.N() != wall.N() {
			return false
		}
		if wa.N() == 0 {
			return true
		}
		tol := 1e-6 * (1 + math.Abs(wall.Mean()))
		if math.Abs(wa.Mean()-wall.Mean()) > tol {
			return false
		}
		tolV := 1e-6 * (1 + wall.Var())
		return math.Abs(wa.Var()-wall.Var()) <= tolV &&
			wa.Min() == wall.Min() && wa.Max() == wall.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeIntoEmpty(t *testing.T) {
	var a, b Welford
	b.Add(1)
	b.Add(2)
	a.Merge(&b)
	if a.N() != 2 || a.Mean() != 1.5 {
		t.Fatalf("merge into empty: %v", a.String())
	}
	var c Welford
	a.Merge(&c) // merging empty is a no-op
	if a.N() != 2 {
		t.Fatal("merge of empty changed accumulator")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for i := 1; i <= 1000; i++ {
		h.Add(float64(i))
	}
	if h.N() != 1000 {
		t.Fatalf("N = %d", h.N())
	}
	if math.Abs(h.Mean()-500.5) > 1e-9 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	// Median is 500; log2 bucket upper bound gives 512.
	if q := h.Quantile(0.5); q != 512 {
		t.Fatalf("Quantile(0.5) = %v, want 512", q)
	}
	if q := h.Quantile(1.0); q != 1024 && q != 1000 {
		t.Fatalf("Quantile(1.0) = %v", q)
	}
	if h.Max() != 1000 {
		t.Fatalf("Max = %v", h.Max())
	}
}

func TestHistogramNegativeAndSmall(t *testing.T) {
	var h Histogram
	h.Add(-5) // clamps to 0
	h.Add(0.25)
	h.Add(0.75)
	if h.N() != 3 {
		t.Fatalf("N = %d", h.N())
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Fatalf("sub-1 values should land in bucket 0 (upper edge 1), got %v", q)
	}
}

func TestHistogramQuantileClamps(t *testing.T) {
	var h Histogram
	h.Add(4)
	if h.Quantile(-1) != h.Quantile(0) {
		t.Fatal("q<0 should clamp")
	}
	if h.Quantile(2) != h.Quantile(1) {
		t.Fatal("q>1 should clamp")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Inc()
	c.Addn(40)
	if c.Value() != 42 {
		t.Fatalf("Value = %d", c.Value())
	}
}

func TestTimeWeighted(t *testing.T) {
	var tw TimeWeighted
	tw.Update(0, 0)
	tw.Update(10, 4) // value 0 for 10 units
	tw.Update(20, 2) // value 4 for 10 units
	tw.Update(40, 2) // value 2 for 20 units
	// area = 0*10 + 4*10 + 2*20 = 80 over 40 units => 2.0
	if m := tw.Mean(); math.Abs(m-2.0) > 1e-12 {
		t.Fatalf("Mean = %v, want 2", m)
	}
	if tw.Max() != 4 {
		t.Fatalf("Max = %v", tw.Max())
	}
	if tw.Current() != 2 {
		t.Fatalf("Current = %v", tw.Current())
	}
}

func TestTimeWeightedBackwardsPanics(t *testing.T) {
	var tw TimeWeighted
	tw.Update(10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards time did not panic")
		}
	}()
	tw.Update(5, 2)
}

func TestTimeWeightedBeforeUpdates(t *testing.T) {
	var tw TimeWeighted
	if tw.Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
	tw.Update(5, 7)
	if tw.Mean() != 7 {
		t.Fatal("single update mean should be current value")
	}
}

func TestSeriesMonotone(t *testing.T) {
	up := &Series{Label: "up"}
	for i := 0; i < 5; i++ {
		up.Add(float64(i), float64(i*i))
	}
	if !up.Monotone(1, 0) {
		t.Fatal("increasing series not detected")
	}
	if up.Monotone(-1, 0) {
		t.Fatal("increasing series claimed decreasing")
	}
	noisy := &Series{}
	noisy.Add(0, 100)
	noisy.Add(1, 99.5) // 0.5% dip
	noisy.Add(2, 110)
	if noisy.Monotone(1, 0) {
		t.Fatal("dip should break strict monotonicity")
	}
	if !noisy.Monotone(1, 0.01) {
		t.Fatal("1% tolerance should absorb the dip")
	}
	if got := len(up.Ys()); got != 5 {
		t.Fatalf("Ys length %d", got)
	}
}

func TestCrossover(t *testing.T) {
	a, b := &Series{}, &Series{}
	for i := 0; i <= 4; i++ {
		x := float64(i)
		a.Add(x, 10-2*x) // 10, 8, 6, 4, 2
		b.Add(x, 2+2*x)  // 2, 4, 6, 8, 10
	}
	x, ok := Crossover(a, b)
	if !ok {
		t.Fatal("crossover not found")
	}
	if math.Abs(x-2.0) > 1e-9 {
		t.Fatalf("crossover at %v, want 2", x)
	}
	// No crossover case.
	c := &Series{}
	for i := 0; i <= 4; i++ {
		c.Add(float64(i), 100)
	}
	if _, ok := Crossover(a, c); ok {
		t.Fatal("a stays below c; no crossover expected")
	}
	// Mismatched lengths.
	d := &Series{}
	d.Add(0, 0)
	if _, ok := Crossover(a, d); ok {
		t.Fatal("mismatched series should not cross")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("T1: demo", "N", "eta_LAMS", "eta_HDLC")
	tb.AddRowf(10, 0.123456, 0.1)
	tb.AddRowf(100, 0.9, 0.5)
	out := tb.String()
	if !strings.Contains(out, "T1: demo") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "eta_LAMS") {
		t.Fatal("missing header")
	}
	if !strings.Contains(out, "0.1235") {
		t.Fatalf("float formatting wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableSort(t *testing.T) {
	tb := NewTable("", "x", "y")
	tb.AddRow("10", "a")
	tb.AddRow("2", "b")
	tb.AddRow("abc", "c")
	tb.SortRowsByColumn(0)
	if tb.Rows[0][0] != "2" || tb.Rows[1][0] != "10" || tb.Rows[2][0] != "abc" {
		t.Fatalf("sorted rows: %v", tb.Rows)
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("1") // short row pads
	tb.AddRow("1", "2", "3", "4")
	out := tb.String()
	if strings.Contains(out, "4") {
		t.Fatal("extra cell should be dropped")
	}
}

func TestHistogramQuantileProperty(t *testing.T) {
	// Property: quantile upper bound is >= the true quantile and within 2x
	// for values >= 1.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		vals := make([]float64, len(raw))
		for i, r := range raw {
			v := float64(r) + 1 // >= 1
			vals[i] = v
			h.Add(v)
		}
		// true median
		sorted := append([]float64(nil), vals...)
		for i := range sorted {
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j] < sorted[i] {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		med := sorted[(len(sorted)-1)/2]
		q := h.Quantile(0.5)
		return q >= med && q <= 2*med
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestChartRender(t *testing.T) {
	up := &Series{Label: "rising"}
	down := &Series{Label: "falling"}
	for i := 0; i <= 10; i++ {
		up.Add(float64(i), float64(i))
		down.Add(float64(i), float64(10-i))
	}
	out := Chart{Title: "demo", Series: []*Series{up, down}}.Render()
	for _, want := range []string{"demo", "rising", "falling", "*", "o", "10", "0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 16 {
		t.Fatalf("chart too short: %d lines", len(lines))
	}
}

func TestChartLogX(t *testing.T) {
	s := &Series{Label: "ber"}
	for _, x := range []float64{1e-6, 1e-5, 1e-4, 1e-3} {
		s.Add(x, x*1e3)
	}
	out := Chart{LogX: true, Series: []*Series{s}, Width: 30, Height: 8}.Render()
	if !strings.Contains(out, "1e-06") && !strings.Contains(out, "1e-6") {
		t.Fatalf("log axis label missing:\n%s", out)
	}
	// Log spacing: the four points should land at roughly even columns;
	// with linear scaling three of them would collapse onto column 0.
	glyphCols := map[int]bool{}
	for _, line := range strings.Split(out, "\n") {
		if i := strings.IndexByte(line, '*'); i >= 0 {
			glyphCols[i] = true
		}
	}
	if len(glyphCols) < 4 {
		t.Fatalf("points collapsed on the x axis: %v\n%s", glyphCols, out)
	}
}

func TestChartEmptyAndFlat(t *testing.T) {
	if out := (Chart{Title: "t"}).Render(); !strings.Contains(out, "no data") {
		t.Fatal("empty chart")
	}
	flat := &Series{Label: "flat"}
	flat.Add(1, 5)
	flat.Add(2, 5)
	if out := (Chart{Series: []*Series{flat}}).Render(); out == "" {
		t.Fatal("flat series render")
	}
}
