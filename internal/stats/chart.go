package stats

import (
	"fmt"
	"math"
	"strings"
)

// Chart renders one or more Series as a terminal scatter chart: the
// "figures" of the experiment harness. Each series gets a distinct glyph;
// axes are annotated with min/max. X may be linear or log-scaled (BER
// sweeps span decades).
type Chart struct {
	Title  string
	Width  int // plot area columns (default 60)
	Height int // plot area rows (default 16)
	LogX   bool
	Series []*Series
}

const chartGlyphs = "*o+x#@%&"

// Render draws the chart.
func (c Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}
	// Non-finite points (a NaN efficiency from a zero-delivery run, an Inf
	// ratio) are unplottable and would poison the axis bounds; skip them.
	var xs, ys []float64
	for _, s := range c.Series {
		for _, p := range s.Points {
			if !finite(c.x(p.X)) || !finite(p.Y) {
				continue
			}
			xs = append(xs, c.x(p.X))
			ys = append(ys, p.Y)
		}
	}
	if len(xs) == 0 {
		return c.Title + "\n(no data)\n"
	}
	xmin, xmax := minMax(xs)
	ymin, ymax := minMax(ys)
	if ymin > 0 && ymin < ymax/10 {
		ymin = 0 // anchor ratio scales at zero for honest proportions
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range c.Series {
		glyph := chartGlyphs[si%len(chartGlyphs)]
		for _, p := range s.Points {
			if !finite(c.x(p.X)) || !finite(p.Y) {
				continue
			}
			cx := int(math.Round((c.x(p.X) - xmin) / (xmax - xmin) * float64(w-1)))
			cy := int(math.Round((p.Y - ymin) / (ymax - ymin) * float64(h-1)))
			row := h - 1 - cy
			if row >= 0 && row < h && cx >= 0 && cx < w {
				grid[row][cx] = glyph
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yLabelTop := fmt.Sprintf("%.3g", ymax)
	yLabelBot := fmt.Sprintf("%.3g", ymin)
	pad := len(yLabelTop)
	if len(yLabelBot) > pad {
		pad = len(yLabelBot)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", pad)
		if i == 0 {
			label = fmt.Sprintf("%*s", pad, yLabelTop)
		}
		if i == h-1 {
			label = fmt.Sprintf("%*s", pad, yLabelBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", w))
	xLabelL := fmt.Sprintf("%.3g", c.invX(xmin))
	xLabelR := fmt.Sprintf("%.3g", c.invX(xmax))
	gap := w - len(xLabelL) - len(xLabelR)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", pad), xLabelL, strings.Repeat(" ", gap), xLabelR)
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%s   %c %s\n", strings.Repeat(" ", pad), chartGlyphs[si%len(chartGlyphs)], s.Label)
	}
	return b.String()
}

func (c Chart) x(v float64) float64 {
	if c.LogX && v > 0 {
		return math.Log10(v)
	}
	return v
}

func (c Chart) invX(v float64) float64 {
	if c.LogX {
		return math.Pow(10, v)
	}
	return v
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
