// Package engines links every in-tree ARQ engine into the importing binary.
// The protocol packages register themselves with repro/internal/arq in their
// init functions; blank-importing this package is how a main (or a
// registry-driven test) pulls them all in without naming any concretely.
package engines

import (
	_ "repro/internal/hdlc"    // registers "srhdlc" and "gbn"
	_ "repro/internal/lamsdlc" // registers "lams"
	_ "repro/internal/ssarq"   // registers "ssarq"
)
