package faults

import (
	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Injector arms a Spec against one simulated link. Lifecycle:
//
//	inj := NewInjector(sched, spec, reg)
//	inj.Seed(rng.Split())           // only when spec.NeedsRNG(): scramble/ghost
//	inj.WrapPipeConfigs(&ab, &ba)   // before the link is built: burst gates
//	link := channel.NewAsymmetricLink(sched, ab, ba, rng)
//	inj.AttachLink(link)            // outages, handovers, storms, reorder
//	inj.AttachEndpoint(pair, wcp)   // skew, scramble, ghost (capability-gated)
//
// Legacy kinds are purely schedule-driven — no randomness, so a faulted run
// is exactly as reproducible as a clean one. The corruption adversaries
// (scramble, ghost) draw from the stream Seed installs; since that stream is
// split off the run's root RNG exactly once, deterministically, corrupted
// runs are just as reproducible — same spec, same seed, same event sequence
// at any worker count.
type Injector struct {
	sched *sim.Scheduler
	spec  *Spec
	rng   *sim.RNG // corruption adversaries only; nil for legacy schedules

	link       *channel.Link
	downAB     int // overlap-safe down-counters per direction
	downBA     int
	retimer    arq.CheckpointRetimer
	basePeriod sim.Duration

	mEvents      *metrics.Counter // lams_fault_events_total
	mInjected    *metrics.Counter // lams_fault_frames_injected_total
	mBurstHits   *metrics.Counter // lams_fault_burst_corrupted_total
	mTransitions *metrics.Counter // lams_fault_link_transitions_total
	mSkews       *metrics.Counter // lams_fault_skew_windows_total
	mScrambles   *metrics.Counter // lams_fault_corrupt_scrambles_total
	mGhosts      *metrics.Counter // lams_fault_corrupt_ghosts_total
	mReordered   *metrics.Counter // lams_fault_corrupt_reordered_total
}

// NewInjector builds an injector for the spec. reg may be nil (the
// lams_fault_* instruments are nil-safe like every registry consumer). The
// spec must satisfy Validate — ParseSpec output always does; a hand-built
// schedule that doesn't is a programming error and panics here.
func NewInjector(sched *sim.Scheduler, spec *Spec, reg *metrics.Registry) *Injector {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	return &Injector{
		sched:        sched,
		spec:         spec,
		mEvents:      reg.Counter("lams_fault_events_total"),
		mInjected:    reg.Counter("lams_fault_frames_injected_total"),
		mBurstHits:   reg.Counter("lams_fault_burst_corrupted_total"),
		mTransitions: reg.Counter("lams_fault_link_transitions_total"),
		mSkews:       reg.Counter("lams_fault_skew_windows_total"),
		mScrambles:   reg.Counter("lams_fault_corrupt_scrambles_total"),
		mGhosts:      reg.Counter("lams_fault_corrupt_ghosts_total"),
		mReordered:   reg.Counter("lams_fault_corrupt_reordered_total"),
	}
}

// Seed installs the RNG stream the scramble and ghost adversaries draw
// from. Call it (with a stream split off the run's root RNG) if and only if
// spec.NeedsRNG(); legacy schedules skip it and stay draw-free.
func (inj *Injector) Seed(rng *sim.RNG) { inj.rng = rng }

// WrapPipeConfigs overlays the spec's burst episodes on the two directions'
// error processes. Call before building the link: the gates wrap IModel and
// CModel in place. Directions with no burst events are left untouched.
func (inj *Injector) WrapPipeConfigs(ab, ba *channel.PipeConfig) {
	var abBursts, baBursts []Event
	for _, ev := range inj.spec.Events {
		if ev.Kind != Burst {
			continue
		}
		if ev.Dir == AtoB || ev.Dir == Both {
			abBursts = append(abBursts, ev)
		}
		if ev.Dir == BtoA || ev.Dir == Both {
			baBursts = append(baBursts, ev)
		}
	}
	if len(abBursts) > 0 {
		ab.IModel = &burstGate{inner: ab.IModel, events: abBursts, hits: inj.mBurstHits}
		ab.CModel = &burstGate{inner: ab.CModel, events: abBursts, hits: inj.mBurstHits}
	}
	if len(baBursts) > 0 {
		ba.IModel = &burstGate{inner: ba.IModel, events: baBursts, hits: inj.mBurstHits}
		ba.CModel = &burstGate{inner: ba.CModel, events: baBursts, hits: inj.mBurstHits}
	}
}

// burstGate overlays scripted burst-loss episodes on an error model: a frame
// whose wire occupancy overlaps a burst interval is corrupted regardless of
// the underlying process. The schedule is computed, not drawn, so the gate
// consumes no randomness — the inner model's rng stream is untouched except
// that it is still consulted first for every frame, keeping draw sequences
// identical with and without overlapping bursts.
type burstGate struct {
	inner  channel.ErrorModel
	events []Event
	hits   *metrics.Counter
}

func (g *burstGate) Corrupt(rng *sim.RNG, start, end sim.Time, bits int) bool {
	base := false
	if g.inner != nil {
		base = g.inner.Corrupt(rng, start, end, bits)
	}
	for _, ev := range g.events {
		if g.overlaps(ev, start, end) {
			if !base {
				g.hits.Inc()
			}
			return true
		}
	}
	return base
}

func (g *burstGate) overlaps(ev Event, start, end sim.Time) bool {
	ws, we := sim.Time(ev.Start), sim.Time(ev.End())
	if end <= ws || start >= we {
		return false
	}
	// Clip the frame's occupancy to the window, then test the recurring
	// bursts at ws + k·(len+gap), each lasting len.
	s, e := sim.MaxTime(start, ws), sim.MinTime(end, we)
	period := ev.BurstLen + ev.BurstGap
	if period <= 0 {
		return true // len>0, gap=0: the whole window is one burst
	}
	first := int64(s.Sub(ws)) / int64(period)
	last := int64(e.Sub(ws)) / int64(period)
	for k := first; k <= last; k++ {
		bs := ws.Add(sim.Duration(k) * period)
		be := bs.Add(ev.BurstLen)
		if s < be && e > bs {
			return true
		}
	}
	return false
}

// AttachLink schedules the spec's outage, handover, and storm episodes
// against the link. Overlapping outages are reference-counted per direction,
// so a direction revives only when every episode covering it has closed.
func (inj *Injector) AttachLink(l *channel.Link) {
	inj.link = l
	for _, ev := range inj.spec.Events {
		ev := ev
		switch ev.Kind {
		case Outage, Handover:
			inj.at(ev.Start, func() { inj.mEvents.Inc(); inj.setDown(AtoB, +1); inj.setDown(BtoA, +1) })
			inj.at(ev.End(), func() { inj.setDown(AtoB, -1); inj.setDown(BtoA, -1) })
		case HalfDuplex:
			inj.at(ev.Start, func() { inj.mEvents.Inc(); inj.setDown(ev.Dir, +1) })
			inj.at(ev.End(), func() { inj.setDown(ev.Dir, -1) })
		case Storm:
			inj.at(ev.Start, func() { inj.mEvents.Inc(); inj.stormTick(ev, sim.Time(ev.End())) })
		case Reorder:
			inj.at(ev.Start, func() { inj.mEvents.Inc(); inj.setReorder(ev.Dir, ev.Jitter) })
			inj.at(ev.End(), func() { inj.setReorder(ev.Dir, 0) })
		}
	}
}

func (inj *Injector) setReorder(dir Dir, jitter sim.Duration) {
	counter := inj.mReordered
	if jitter == 0 {
		counter = nil
	}
	if dir == AtoB || dir == Both {
		inj.link.AtoB.SetReorder(jitter, counter)
	}
	if dir == BtoA || dir == Both {
		inj.link.BtoA.SetReorder(jitter, counter)
	}
}

// AttachEndpoint schedules the spec's endpoint-directed episodes against a
// pair, each gated on the capability it needs: clock-skew windows scale the
// checkpoint period through arq.CheckpointRetimer (restored to basePeriod,
// W_cp, at close), scramble episodes drive arq.StateCorruptor, and ghost
// episodes forge frames through arq.GhostForger. An engine lacking a
// capability skips those episodes — the HDLC baselines skip skew, an engine
// without corruption support skips scramble/ghost — and all other fault
// kinds apply to any engine. Overlapping same-kind windows are rejected by
// Spec.Validate, so open/close transitions never contend.
func (inj *Injector) AttachEndpoint(p arq.Pair, basePeriod sim.Duration) {
	if inj.rng == nil && inj.spec.NeedsRNG() {
		panic("faults: schedule has scramble/ghost events but Seed was never called")
	}
	if rt, ok := p.(arq.CheckpointRetimer); ok {
		inj.retimer = rt
		inj.basePeriod = basePeriod
		for _, ev := range inj.spec.Events {
			ev := ev
			if ev.Kind != Skew {
				continue
			}
			skewed := sim.Duration(float64(basePeriod) * ev.Factor)
			if skewed <= 0 {
				skewed = 1
			}
			inj.at(ev.Start, func() { inj.mEvents.Inc(); inj.mSkews.Inc(); rt.SetCheckpointPeriod(skewed) })
			inj.at(ev.End(), func() { rt.SetCheckpointPeriod(basePeriod) })
		}
	}
	if sc, ok := p.(arq.StateCorruptor); ok {
		for _, ev := range inj.spec.Events {
			ev := ev
			if ev.Kind != Scramble {
				continue
			}
			inj.at(ev.Start, func() { inj.mEvents.Inc(); inj.scrambleTick(sc, ev, sim.Time(ev.End())) })
		}
	}
	if gf, ok := p.(arq.GhostForger); ok {
		for _, ev := range inj.spec.Events {
			ev := ev
			if ev.Kind != Ghost {
				continue
			}
			inj.at(ev.Start, func() { inj.mEvents.Inc(); inj.ghostTick(gf, ev, sim.Time(ev.End())) })
		}
	}
}

// scrambleTick fires one state-corruption strike and re-arms until the
// episode closes. The strike runs synchronously on the pair's scheduler, so
// the engine sees its state change exactly as a cosmic-ray upset would look
// between two of its own events.
func (inj *Injector) scrambleTick(sc arq.StateCorruptor, ev Event, until sim.Time) {
	if inj.sched.Now() >= until {
		return
	}
	sc.CorruptState(inj.rng)
	inj.mScrambles.Inc()
	inj.sched.ScheduleAfterDetached(ev.Period, func() { inj.scrambleTick(sc, ev, until) })
}

// ghostTick injects one forged frame per armed direction and re-arms until
// the episode closes. Ghosts go through Pipe.Send like storm frames — they
// occupy real wire time and suffer the direction's error process — and the
// pipe copies, so the forger's frame is recycled immediately.
func (inj *Injector) ghostTick(gf arq.GhostForger, ev Event, until sim.Time) {
	if inj.sched.Now() >= until {
		return
	}
	if ev.Dir == AtoB || ev.Dir == Both {
		if g := gf.ForgeGhost(inj.rng, true); g != nil {
			inj.link.AtoB.Send(g)
			frame.Put(g)
			inj.mGhosts.Inc()
			inj.mInjected.Inc()
		}
	}
	if ev.Dir == BtoA || ev.Dir == Both {
		if g := gf.ForgeGhost(inj.rng, false); g != nil {
			inj.link.BtoA.Send(g)
			frame.Put(g)
			inj.mGhosts.Inc()
			inj.mInjected.Inc()
		}
	}
	inj.sched.ScheduleAfterDetached(ev.Period, func() { inj.ghostTick(gf, ev, until) })
}

func (inj *Injector) at(d sim.Duration, fn func()) {
	inj.sched.ScheduleDetached(sim.Time(d), fn)
}

func (inj *Injector) setDown(dir Dir, delta int) {
	inj.mTransitions.Inc()
	switch dir {
	case AtoB:
		inj.downAB += delta
		inj.link.AtoB.SetDown(inj.downAB > 0)
	case BtoA:
		inj.downBA += delta
		inj.link.BtoA.SetDown(inj.downBA > 0)
	}
}

// stormTick injects one spurious control frame and re-arms until the
// episode closes. Injected frames go through Pipe.Send, so they occupy real
// wire time and suffer the direction's error process — a storm starves
// legitimate control traffic exactly the way a jammed return beam would.
func (inj *Injector) stormTick(ev Event, until sim.Time) {
	now := inj.sched.Now()
	if now >= until {
		return
	}
	inj.injectStorm(ev)
	inj.sched.ScheduleAfterDetached(ev.Period, func() { inj.stormTick(ev, until) })
}

func (inj *Injector) injectStorm(ev Event) {
	if ev.Dir == BtoA || ev.Dir == Both {
		// Spurious checkpoint toward the sender: stale serial, zero
		// watermark (never releases anything), and a NAK list naming the
		// first ev.NAKs sequence numbers — stale-NAK robustness is exactly
		// what §3.2's renumbering is supposed to buy.
		var naks []uint32
		for i := 0; i < ev.NAKs; i++ {
			naks = append(naks, uint32(i))
		}
		inj.link.BtoA.Send(frame.NewCheckpoint(ev.Serial, 0, naks, false, ev.Enforced))
		inj.mInjected.Inc()
	}
	if ev.Dir == AtoB || ev.Dir == Both {
		// Spurious Request-NAK toward the receiver: each one forces an
		// immediate Enforced-NAK answer, doubling the storm back onto the
		// checkpoint channel.
		inj.link.AtoB.Send(frame.NewRequestNAK(ev.Serial))
		inj.mInjected.Inc()
	}
}
