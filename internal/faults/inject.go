package faults

import (
	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Injector arms a Spec against one simulated link. Lifecycle:
//
//	inj := NewInjector(sched, spec, reg)
//	inj.WrapPipeConfigs(&ab, &ba)   // before the link is built: burst gates
//	link := channel.NewAsymmetricLink(sched, ab, ba, rng)
//	inj.AttachLink(link)            // outages, handovers, storms
//	inj.AttachEndpoint(pair, wcp)   // skew windows (checkpointing engines)
//
// Everything is schedule-driven: the injector draws no randomness, so a
// faulted run is exactly as reproducible as a clean one — same spec, same
// seed, same event sequence at any worker count.
type Injector struct {
	sched *sim.Scheduler
	spec  *Spec

	link       *channel.Link
	downAB     int // overlap-safe down-counters per direction
	downBA     int
	retimer    arq.CheckpointRetimer
	basePeriod sim.Duration

	mEvents      *metrics.Counter // lams_fault_events_total
	mInjected    *metrics.Counter // lams_fault_frames_injected_total
	mBurstHits   *metrics.Counter // lams_fault_burst_corrupted_total
	mTransitions *metrics.Counter // lams_fault_link_transitions_total
	mSkews       *metrics.Counter // lams_fault_skew_windows_total
}

// NewInjector builds an injector for the spec. reg may be nil (the
// lams_fault_* instruments are nil-safe like every registry consumer).
func NewInjector(sched *sim.Scheduler, spec *Spec, reg *metrics.Registry) *Injector {
	return &Injector{
		sched:        sched,
		spec:         spec,
		mEvents:      reg.Counter("lams_fault_events_total"),
		mInjected:    reg.Counter("lams_fault_frames_injected_total"),
		mBurstHits:   reg.Counter("lams_fault_burst_corrupted_total"),
		mTransitions: reg.Counter("lams_fault_link_transitions_total"),
		mSkews:       reg.Counter("lams_fault_skew_windows_total"),
	}
}

// WrapPipeConfigs overlays the spec's burst episodes on the two directions'
// error processes. Call before building the link: the gates wrap IModel and
// CModel in place. Directions with no burst events are left untouched.
func (inj *Injector) WrapPipeConfigs(ab, ba *channel.PipeConfig) {
	var abBursts, baBursts []Event
	for _, ev := range inj.spec.Events {
		if ev.Kind != Burst {
			continue
		}
		if ev.Dir == AtoB || ev.Dir == Both {
			abBursts = append(abBursts, ev)
		}
		if ev.Dir == BtoA || ev.Dir == Both {
			baBursts = append(baBursts, ev)
		}
	}
	if len(abBursts) > 0 {
		ab.IModel = &burstGate{inner: ab.IModel, events: abBursts, hits: inj.mBurstHits}
		ab.CModel = &burstGate{inner: ab.CModel, events: abBursts, hits: inj.mBurstHits}
	}
	if len(baBursts) > 0 {
		ba.IModel = &burstGate{inner: ba.IModel, events: baBursts, hits: inj.mBurstHits}
		ba.CModel = &burstGate{inner: ba.CModel, events: baBursts, hits: inj.mBurstHits}
	}
}

// burstGate overlays scripted burst-loss episodes on an error model: a frame
// whose wire occupancy overlaps a burst interval is corrupted regardless of
// the underlying process. The schedule is computed, not drawn, so the gate
// consumes no randomness — the inner model's rng stream is untouched except
// that it is still consulted first for every frame, keeping draw sequences
// identical with and without overlapping bursts.
type burstGate struct {
	inner  channel.ErrorModel
	events []Event
	hits   *metrics.Counter
}

func (g *burstGate) Corrupt(rng *sim.RNG, start, end sim.Time, bits int) bool {
	base := false
	if g.inner != nil {
		base = g.inner.Corrupt(rng, start, end, bits)
	}
	for _, ev := range g.events {
		if g.overlaps(ev, start, end) {
			if !base {
				g.hits.Inc()
			}
			return true
		}
	}
	return base
}

func (g *burstGate) overlaps(ev Event, start, end sim.Time) bool {
	ws, we := sim.Time(ev.Start), sim.Time(ev.End())
	if end <= ws || start >= we {
		return false
	}
	// Clip the frame's occupancy to the window, then test the recurring
	// bursts at ws + k·(len+gap), each lasting len.
	s, e := sim.MaxTime(start, ws), sim.MinTime(end, we)
	period := ev.BurstLen + ev.BurstGap
	if period <= 0 {
		return true // len>0, gap=0: the whole window is one burst
	}
	first := int64(s.Sub(ws)) / int64(period)
	last := int64(e.Sub(ws)) / int64(period)
	for k := first; k <= last; k++ {
		bs := ws.Add(sim.Duration(k) * period)
		be := bs.Add(ev.BurstLen)
		if s < be && e > bs {
			return true
		}
	}
	return false
}

// AttachLink schedules the spec's outage, handover, and storm episodes
// against the link. Overlapping outages are reference-counted per direction,
// so a direction revives only when every episode covering it has closed.
func (inj *Injector) AttachLink(l *channel.Link) {
	inj.link = l
	for _, ev := range inj.spec.Events {
		ev := ev
		switch ev.Kind {
		case Outage, Handover:
			inj.at(ev.Start, func() { inj.mEvents.Inc(); inj.setDown(AtoB, +1); inj.setDown(BtoA, +1) })
			inj.at(ev.End(), func() { inj.setDown(AtoB, -1); inj.setDown(BtoA, -1) })
		case HalfDuplex:
			inj.at(ev.Start, func() { inj.mEvents.Inc(); inj.setDown(ev.Dir, +1) })
			inj.at(ev.End(), func() { inj.setDown(ev.Dir, -1) })
		case Storm:
			inj.at(ev.Start, func() { inj.mEvents.Inc(); inj.stormTick(ev, sim.Time(ev.End())) })
		}
	}
}

// AttachEndpoint schedules the spec's clock-skew windows against an endpoint
// pair: the checkpoint period is scaled by the window's factor at open and
// restored to basePeriod (W_cp) at close. Engines with no checkpoint process
// (no arq.CheckpointRetimer — the HDLC baselines) skip the skew events; all
// other fault kinds apply to any engine. Skew windows should not overlap;
// with overlap, the last transition wins.
func (inj *Injector) AttachEndpoint(p arq.Pair, basePeriod sim.Duration) {
	rt, ok := p.(arq.CheckpointRetimer)
	if !ok {
		return
	}
	inj.retimer = rt
	inj.basePeriod = basePeriod
	for _, ev := range inj.spec.Events {
		ev := ev
		if ev.Kind != Skew {
			continue
		}
		skewed := sim.Duration(float64(basePeriod) * ev.Factor)
		if skewed <= 0 {
			skewed = 1
		}
		inj.at(ev.Start, func() { inj.mEvents.Inc(); inj.mSkews.Inc(); rt.SetCheckpointPeriod(skewed) })
		inj.at(ev.End(), func() { rt.SetCheckpointPeriod(basePeriod) })
	}
}

func (inj *Injector) at(d sim.Duration, fn func()) {
	inj.sched.ScheduleDetached(sim.Time(d), fn)
}

func (inj *Injector) setDown(dir Dir, delta int) {
	inj.mTransitions.Inc()
	switch dir {
	case AtoB:
		inj.downAB += delta
		inj.link.AtoB.SetDown(inj.downAB > 0)
	case BtoA:
		inj.downBA += delta
		inj.link.BtoA.SetDown(inj.downBA > 0)
	}
}

// stormTick injects one spurious control frame and re-arms until the
// episode closes. Injected frames go through Pipe.Send, so they occupy real
// wire time and suffer the direction's error process — a storm starves
// legitimate control traffic exactly the way a jammed return beam would.
func (inj *Injector) stormTick(ev Event, until sim.Time) {
	now := inj.sched.Now()
	if now >= until {
		return
	}
	inj.injectStorm(ev)
	inj.sched.ScheduleAfterDetached(ev.Period, func() { inj.stormTick(ev, until) })
}

func (inj *Injector) injectStorm(ev Event) {
	if ev.Dir == BtoA || ev.Dir == Both {
		// Spurious checkpoint toward the sender: stale serial, zero
		// watermark (never releases anything), and a NAK list naming the
		// first ev.NAKs sequence numbers — stale-NAK robustness is exactly
		// what §3.2's renumbering is supposed to buy.
		var naks []uint32
		for i := 0; i < ev.NAKs; i++ {
			naks = append(naks, uint32(i))
		}
		inj.link.BtoA.Send(frame.NewCheckpoint(ev.Serial, 0, naks, false, ev.Enforced))
		inj.mInjected.Inc()
	}
	if ev.Dir == AtoB || ev.Dir == Both {
		// Spurious Request-NAK toward the receiver: each one forces an
		// immediate Enforced-NAK answer, doubling the storm back onto the
		// checkpoint channel.
		inj.link.AtoB.Send(frame.NewRequestNAK(ev.Serial))
		inj.mInjected.Inc()
	}
}
