package faults_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/arq"
	"repro/internal/bench"
	"repro/internal/channel"
	"repro/internal/faults"
	"repro/internal/lamsdlc"
	"repro/internal/sim"
)

// --- Spec grammar -----------------------------------------------------------

func TestParseSpecGrammar(t *testing.T) {
	spec, err := faults.ParseSpec(
		"half@2s+500ms:dir=ab; outage@1s+100ms; storm@4s+200ms:period=2ms,naks=4,serial=7,enforced=true; " +
			"burst@5s+1s:len=2ms,gap=8ms,dir=ba; skew@6s:factor=2.5; handover@8s")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Events) != 6 {
		t.Fatalf("parsed %d events, want 6", len(spec.Events))
	}
	// Sorted by start.
	if spec.Events[0].Kind != faults.Outage || spec.Events[0].Start != sim.Duration(sim.Second) {
		t.Fatalf("events not sorted by start: first = %+v", spec.Events[0])
	}
	half := spec.Events[1]
	if half.Kind != faults.HalfDuplex || half.Dir != faults.AtoB || half.Dur != 500*sim.Millisecond {
		t.Fatalf("half event = %+v", half)
	}
	storm := spec.Events[2]
	if storm.Period != 2*sim.Millisecond || storm.NAKs != 4 || storm.Serial != 7 || !storm.Enforced {
		t.Fatalf("storm event = %+v", storm)
	}
	if spec.Events[4].Factor != 2.5 || spec.Events[4].Dur != sim.Second {
		t.Fatalf("skew defaults wrong: %+v", spec.Events[4])
	}
	if spec.Events[5].Dur != 30*sim.Millisecond {
		t.Fatalf("handover default duration = %v, want 30ms", spec.Events[5].Dur)
	}
	if spec.End() != 8*sim.Second+30*sim.Millisecond {
		t.Fatalf("End() = %v", spec.End())
	}

	// String round-trips through the parser.
	again, err := faults.ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("round-trip parse of %q: %v", spec.String(), err)
	}
	if !reflect.DeepEqual(spec, again) {
		t.Fatalf("round trip changed the spec:\n%q\n%q", spec.String(), again.String())
	}
}

func TestParseSpecRejects(t *testing.T) {
	bad := []string{
		"nonsense@1s",               // unknown kind
		"outage",                    // missing @start
		"outage@-1s",                // negative start
		"outage@1s+0s",              // non-positive duration
		"half@1s:dir=both",          // half needs a single direction
		"half@1s:dir=sideways",      // unknown direction
		"storm@1s:period=0s",        // non-positive period
		"storm@1s:naks=-1",          // negative NAK count
		"skew@1s:factor=0",          // non-positive factor
		"outage@1s:factor=2",        // parameter on wrong kind
		"burst@1s:len=1ms,gap=oops", // unparsable duration
		"storm@1s:period",           // parameter without '='
		"outage@banana",             // unparsable start
		// Hardening (ISSUE 9): repeated keys and overlapping same-kind
		// episodes are mis-edited schedules, rejected outright.
		"storm@1s:period=2ms,period=3ms",       // duplicate parameter key
		"ghost@1s:dir=ba,dir=ab",               // duplicate key, different values
		"outage@1s+2s; outage@2s+500ms",        // overlapping same-kind windows
		"half@1s+2s:dir=ab; half@2s+2s:dir=ab", // overlapping, same direction
		"ghost@1s+1s; ghost@1500ms+1s:dir=ab",  // dir=both contends with ab
		"scramble@1s:period=0s",                // non-positive corruption period
		"reorder@1s:jitter=0s",                 // non-positive reorder jitter
		"scramble@1s:jitter=1ms",               // parameter on wrong kind
		"reorder@1s:period=1ms",                // parameter on wrong kind
	}
	for _, text := range bad {
		if _, err := faults.ParseSpec(text); err == nil {
			t.Errorf("ParseSpec(%q) accepted", text)
		}
	}
}

// TestParseSpecCorruptionGrammar pins the state-corruption kinds' defaults
// and the overlap rule's legitimate edges: half-open windows that merely
// touch, and same-kind episodes on disjoint directions.
func TestParseSpecCorruptionGrammar(t *testing.T) {
	spec, err := faults.ParseSpec(
		"scramble@100ms+400ms; ghost@100ms+400ms:period=2ms,dir=ab; reorder@100ms+400ms:jitter=2ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Events) != 3 {
		t.Fatalf("parsed %d events, want 3", len(spec.Events))
	}
	sc, gh, re := spec.Events[0], spec.Events[1], spec.Events[2]
	if sc.Kind != faults.Scramble || sc.Period != 10*sim.Millisecond {
		t.Fatalf("scramble defaults wrong: %+v", sc)
	}
	if gh.Kind != faults.Ghost || gh.Period != 2*sim.Millisecond || gh.Dir != faults.AtoB {
		t.Fatalf("ghost event wrong: %+v", gh)
	}
	if re.Kind != faults.Reorder || re.Jitter != 2*sim.Millisecond || re.Dir != faults.Both {
		t.Fatalf("reorder event wrong: %+v", re)
	}
	for _, e := range spec.Events {
		if !e.Kind.Corruption() {
			t.Fatalf("%s should classify as a corruption kind", e.Kind)
		}
	}
	start, end, ok := spec.CorruptionWindow()
	if !ok || start != 100*sim.Millisecond || end != 500*sim.Millisecond {
		t.Fatalf("CorruptionWindow() = %v, %v, %v", start, end, ok)
	}

	// String round-trips through the parser.
	again, err := faults.ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("round-trip parse of %q: %v", spec.String(), err)
	}
	if !reflect.DeepEqual(spec, again) {
		t.Fatalf("round trip changed the spec:\n%q\n%q", spec.String(), again.String())
	}

	// Merely-touching windows and direction-disjoint episodes are legal.
	for _, text := range []string{
		"ghost@1s+1s; ghost@2s+1s",                   // half-open windows touch, no overlap
		"reorder@1s+2s:dir=ab; reorder@2s+2s:dir=ba", // same window, opposite beams
	} {
		if _, err := faults.ParseSpec(text); err != nil {
			t.Errorf("ParseSpec(%q) rejected: %v", text, err)
		}
	}
}

// --- Fault matrix -----------------------------------------------------------

// comboSpec chains a checkpoint blackout, a stale-NAK storm, burst loss, a
// handover cut-over, and a clock-skew window into one schedule.
const comboSpec = "half@150ms+60ms:dir=ba; storm@300ms+100ms:period=2ms,naks=4,serial=1; " +
	"burst@450ms+150ms:len=1ms,gap=6ms; handover@700ms; skew@800ms+200ms:factor=6"

func matrixConfig(t *testing.T, spec string, seed uint64) bench.RunConfig {
	t.Helper()
	s, err := faults.ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	return bench.RunConfig{
		Protocol:        bench.LAMS,
		N:               120,
		PayloadBytes:    512,
		OfferInterval:   8 * sim.Millisecond,
		RateBps:         10e6,
		OneWay:          10 * sim.Millisecond,
		Icp:             10 * sim.Millisecond,
		Cdepth:          3,
		Tproc:           10 * sim.Microsecond,
		Seed:            seed,
		Horizon:         6 * sim.Second,
		Faults:          s,
		CheckInvariants: true,
	}
}

// TestFaultMatrix is the standing acceptance gate: the §3.2 invariant
// checker must hold over every fault class at seeds 1–5. Schedules that end
// inside the failure window legitimately declare link failure (the paper's
// behavior); everything else must deliver every datagram.
func TestFaultMatrix(t *testing.T) {
	cases := []struct {
		name       string
		spec       string
		expectFail bool // schedule outlives the failure window by design
	}{
		{"outage-recover", "outage@200ms+60ms", false},
		{"outage-fail", "outage@200ms+400ms", true},
		{"blackout-ba", "half@200ms+60ms:dir=ba", false},
		{"blackout-ba-fail", "half@200ms+400ms:dir=ba", true},
		{"iframe-ab", "half@200ms+300ms:dir=ab", false},
		{"storm-checkpoint", "storm@150ms+200ms:period=2ms,naks=6,serial=1", false},
		{"storm-reqnak", "storm@150ms+100ms:period=3ms,dir=ab", false},
		{"burst", "burst@150ms+200ms:len=2ms,gap=5ms", false},
		// A 2ms+8ms burst cycle phase-locks with the 10ms checkpoint
		// cadence: every checkpoint is corrupted for 200ms, a full silence
		// window passes, and declaring failure is the correct §3.2 outcome.
		{"burst-jam", "burst@150ms+200ms:len=2ms,gap=8ms", true},
		{"skew", "skew@150ms+300ms:factor=6", false},
		{"handover", "handover@250ms", false},
		{"combo", comboSpec, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				res := bench.Run(matrixConfig(t, tc.spec, seed))
				for _, v := range res.Violations {
					t.Errorf("seed %d: %s", seed, v)
				}
				if tc.expectFail {
					if res.Failures == 0 {
						t.Errorf("seed %d: schedule should have declared link failure", seed)
					}
					continue
				}
				if res.Failures != 0 {
					t.Errorf("seed %d: spurious link failure", seed)
				}
				if res.Lost != 0 {
					t.Errorf("seed %d: lost %d datagrams", seed, res.Lost)
				}
			}
		})
	}
}

// TestFaultDeterminismAcrossWorkers pins the injection path's determinism
// contract: a faulted, checked batch is byte-identical at 1 and 8 workers.
func TestFaultDeterminismAcrossWorkers(t *testing.T) {
	var cfgs []bench.RunConfig
	for seed := uint64(1); seed <= 5; seed++ {
		cfgs = append(cfgs, matrixConfig(t, comboSpec, seed))
	}
	var serial, parallel []bench.RunResult
	bench.SetWorkers(1)
	serial = bench.RunMany(cfgs)
	bench.SetWorkers(8)
	parallel = bench.RunMany(cfgs)
	bench.SetWorkers(0)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("faulted runs differ across worker counts")
	}
	for i := range serial {
		if len(serial[i].Violations) != 0 {
			t.Fatalf("seed %d: violations: %v", cfgs[i].Seed, serial[i].Violations)
		}
	}
}

// TestFaultDeterminismWithPoolReuse extends the worker-count pin to the
// pooled hot path (ISSUE 6): the batch interleaves three fault schedules and
// then repeats the whole block, so every config runs again on a worker whose
// arenas, entry pools, and event pools are warm from a *different*
// predecessor. Any state leaking through a pool shows up as a mismatch
// between a config's first and second execution, or between worker counts.
func TestFaultDeterminismWithPoolReuse(t *testing.T) {
	specs := []string{
		comboSpec,
		"burst@150ms+200ms:len=2ms,gap=5ms",
		"storm@150ms+200ms:period=2ms,naks=6,serial=1",
	}
	var block []bench.RunConfig
	for seed := uint64(1); seed <= 2; seed++ {
		for _, spec := range specs {
			block = append(block, matrixConfig(t, spec, seed))
		}
	}
	cfgs := append(append([]bench.RunConfig{}, block...), block...)

	var serial, parallel []bench.RunResult
	bench.SetWorkers(1)
	serial = bench.RunMany(cfgs)
	bench.SetWorkers(8)
	parallel = bench.RunMany(cfgs)
	bench.SetWorkers(0)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("faulted pooled runs differ across worker counts")
	}
	n := len(block)
	for i := range block {
		if !reflect.DeepEqual(serial[i], serial[i+n]) {
			t.Errorf("config %d (spec %q, seed %d): first and repeat execution differ — pooled state leaked across runs",
				i, specs[i%len(specs)], cfgs[i].Seed)
		}
	}
}

// --- Satellite regressions --------------------------------------------------

// TestEnforcedRecoveryResolicitAfterBlackout is the Enforced-Recovery
// re-arm regression: when a checkpoint blackout swallows the Enforced-NAK
// response but periodic checkpoints resume, the sender must solicit again
// off the first live checkpoint (silence window re-measured from that
// solicitation) instead of waiting out the remainder of the original
// failure timer. Pre-fix, recovery here ended only at the failure-timer
// expiry (~285ms) plus a round trip; the bound below caught it.
func TestEnforcedRecoveryResolicitAfterBlackout(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(1)
	pcfg := channel.PipeConfig{RateBps: 10e6, Delay: channel.ConstantDelay(10 * sim.Millisecond)}
	link := channel.NewLink(sched, pcfg, rng)

	cfg := lamsdlc.Defaults(20 * sim.Millisecond)
	cfg.CheckpointInterval = 10 * sim.Millisecond
	cfg.CumulationDepth = 8 // widen FailureTimeout so the stall is visible

	pair := lamsdlc.NewPair(sched, link, cfg, nil, nil)
	var started, ended []sim.Time
	var failures int
	pair.Sender.SetProbe(&lamsdlc.Probe{
		RecoveryStarted: func(now sim.Time) { started = append(started, now) },
		RecoveryEnded:   func(now sim.Time, enforced bool) { ended = append(ended, now) },
		FailureDeclared: func(now sim.Time, reason string) { failures++ },
	})

	// Checkpoint blackout 100ms–240ms: recovery begins mid-blackout, the
	// Enforced-NAK answer dies on the dead return beam, checkpoints resume
	// at restore.
	spec, err := faults.ParseSpec("half@100ms+140ms:dir=ba")
	if err != nil {
		t.Fatal(err)
	}
	faults.NewInjector(sched, spec, nil).AttachLink(link)

	pair.Start()
	for i := 0; i < 40; i++ {
		pair.Sender.Enqueue(arq.Datagram{ID: uint64(i + 1), Payload: make([]byte, 512)})
	}
	sched.RunUntil(sim.Time(600 * sim.Millisecond))

	if failures != 0 {
		t.Fatal("blackout shorter than the failure window still declared failure")
	}
	if len(started) != 1 || len(ended) != 1 {
		t.Fatalf("recovery episodes: started %d times, ended %d times, want 1/1", len(started), len(ended))
	}
	restore := sim.Time(240 * sim.Millisecond)
	// One checkpoint interval for the next emission, a round trip for the
	// re-solicitation, small slack for wire and processing time.
	bound := restore.Add(cfg.CheckpointInterval + cfg.RoundTrip + 5*sim.Millisecond)
	if ended[0] > bound {
		t.Fatalf("recovery ended at %v, want <= %v (re-solicit off the first live checkpoint)", ended[0], bound)
	}
}

// TestNoStallAfterIFrameBeamOutage is the halted-link regression: during an
// I-frame beam outage (checkpoints keep flowing, so no failure is ever
// declared) every outstanding frame retransmits into the dead beam once per
// resolving period, and each retransmission charges the send-rate budget.
// Pre-fix that debt compounded for the whole outage — the longer the beam
// was dark, the longer the re-established link stayed halted for new
// I-frames (~530ms after a 4s outage here, growing linearly). The fix caps
// the budget debt at one resolving period, so new traffic resumes as soon
// as the outstanding frames clear (~110ms). The assertion: the first new
// transmission after restore lands within four resolving periods.
func TestNoStallAfterIFrameBeamOutage(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(1)
	pcfg := channel.PipeConfig{RateBps: 1e6, Delay: channel.ConstantDelay(10 * sim.Millisecond)}
	link := channel.NewLink(sched, pcfg, rng)

	cfg := lamsdlc.Defaults(20 * sim.Millisecond)
	cfg.CheckpointInterval = 10 * sim.Millisecond
	cfg.CumulationDepth = 3

	delivered := make(map[uint64]bool)
	pair := lamsdlc.NewPair(sched, link, cfg,
		func(_ sim.Time, dg arq.Datagram, _ uint32) { delivered[dg.ID] = true }, nil)
	var firstTx []sim.Time
	var failures int
	pair.Sender.SetProbe(&lamsdlc.Probe{
		FirstTransmission: func(now sim.Time, seq uint32, dgID uint64) { firstTx = append(firstTx, now) },
		FailureDeclared:   func(sim.Time, string) { failures++ },
	})

	spec, err := faults.ParseSpec("half@300ms+4s:dir=ab")
	if err != nil {
		t.Fatal(err)
	}
	faults.NewInjector(sched, spec, nil).AttachLink(link)

	pair.Start()
	// A deep backlog keeps the pump saturated across the outage, so the
	// post-restore resume time is visible as the next first transmission.
	for i := 0; i < 400; i++ {
		pair.Sender.Enqueue(arq.Datagram{ID: uint64(i + 1), Payload: make([]byte, 1024)})
	}
	sched.RunUntil(sim.Time(12 * sim.Second))

	if failures != 0 {
		t.Fatal("I-frame outage with live checkpoints declared failure")
	}
	restore := sim.Time(4300 * sim.Millisecond)
	var resumed sim.Time
	for _, ts := range firstTx {
		if ts > restore {
			resumed = ts
			break
		}
	}
	if resumed == 0 {
		t.Fatal("no new I-frame transmission after the beam was restored")
	}
	if bound := restore.Add(4 * cfg.ResolvingPeriod()); resumed > bound {
		t.Fatalf("first new transmission %v after restore at %v, want <= %v: link stayed halted", resumed, restore, bound)
	}
	if len(delivered) != 400 {
		t.Fatalf("delivered %d of 400 datagrams", len(delivered))
	}
}

// --- Checker self-tests -----------------------------------------------------

// TestCheckerFlagsBreaches drives the checker's probe directly with
// histories that violate each rule, confirming the harness can actually see
// the bugs it exists to catch.
func TestCheckerFlagsBreaches(t *testing.T) {
	cfg := lamsdlc.Defaults(20 * sim.Millisecond)
	at := func(ms int64) sim.Time { return sim.Time(sim.Duration(ms) * sim.Millisecond) }

	rules := func(vs []faults.Violation) []string {
		var out []string
		for _, v := range vs {
			out = append(out, v.Rule)
		}
		return out
	}
	expect := func(t *testing.T, vs []faults.Violation, rule string) {
		t.Helper()
		for _, v := range vs {
			if v.Rule == rule {
				return
			}
		}
		t.Fatalf("no %q violation recorded; got %v", rule, rules(vs))
	}

	t.Run("recovery entered early", func(t *testing.T) {
		c := faults.NewChecker(cfg.RecoveryWindows())
		p := c.Probe()
		p.CheckpointHeard(at(100), 1, false)
		p.RecoveryStarted(at(110)) // 10ms of silence, want >= CheckpointTimerTimeout
		expect(t, c.Violations(), "recovery-entry")
	})
	t.Run("recovery exit without response", func(t *testing.T) {
		c := faults.NewChecker(cfg.RecoveryWindows())
		p := c.Probe()
		p.CheckpointHeard(at(100), 1, false)
		p.RecoveryStarted(at(200))
		p.RecoveryEnded(at(210), false) // no enforced frame heard at 210ms
		expect(t, c.Violations(), "recovery-exit")
	})
	t.Run("new frame during recovery", func(t *testing.T) {
		c := faults.NewChecker(cfg.RecoveryWindows())
		p := c.Probe()
		p.RecoveryStarted(at(200))
		p.FirstTransmission(at(210), 5, 1)
		expect(t, c.Violations(), "recovery-gate")
	})
	t.Run("failure before the silence window", func(t *testing.T) {
		c := faults.NewChecker(cfg.RecoveryWindows())
		p := c.Probe()
		p.RecoveryStarted(at(200))
		p.RequestNAKSent(at(200), 1)
		p.FailureDeclared(at(210), "no enforced-NAK") // want >= FailureTimeout
		expect(t, c.Violations(), "failure-window")
	})
	t.Run("stale incarnation outlives the resolving period", func(t *testing.T) {
		c := faults.NewChecker(cfg.RecoveryWindows())
		p := c.Probe()
		p.FirstTransmission(at(0), 0, 1)
		p.CheckpointHeard(at(10), 1, false)
		// Steady 10ms checkpoint cadence, but seq 0 never resolves.
		horizon := cfg.ResolvingPeriod() + cfg.RoundTrip + 100*sim.Millisecond
		for ts := at(20); ts < sim.Time(horizon); ts = ts.Add(10 * sim.Millisecond) {
			p.CheckpointHeard(ts, 1, false)
		}
		expect(t, c.Violations(), "numbering")
	})
	t.Run("datagram lost", func(t *testing.T) {
		c := faults.NewChecker(cfg.RecoveryWindows())
		accepted := c.WrapSink(func(arq.Datagram) bool { return true })
		accepted(arq.Datagram{ID: 7})
		vs := c.Finish(nil) // neither delivered nor held
		expect(t, vs, "no-loss")
		expect(t, vs, "completion")
	})
	t.Run("duplicate without retransmission", func(t *testing.T) {
		c := faults.NewChecker(cfg.RecoveryWindows())
		accepted := c.WrapSink(func(arq.Datagram) bool { return true })
		deliver := c.WrapDeliver(nil)
		accepted(arq.Datagram{ID: 7})
		c.Probe().FirstTransmission(at(1), 0, 7)
		deliver(at(30), arq.Datagram{ID: 7}, 0)
		deliver(at(40), arq.Datagram{ID: 7}, 1) // second copy, only one tx
		expect(t, c.Finish(nil), "duplicates")
	})
	t.Run("clean run stays clean", func(t *testing.T) {
		c := faults.NewChecker(cfg.RecoveryWindows())
		accepted := c.WrapSink(func(arq.Datagram) bool { return true })
		deliver := c.WrapDeliver(nil)
		p := c.Probe()
		accepted(arq.Datagram{ID: 7})
		p.FirstTransmission(at(1), 0, 7)
		p.CheckpointHeard(at(10), 1, false)
		deliver(at(30), arq.Datagram{ID: 7}, 0)
		p.CheckpointHeard(at(20), 2, false)
		p.Released(at(20), 0, 7)
		if vs := c.Finish(nil); len(vs) != 0 {
			t.Fatalf("clean history produced violations: %v", vs)
		}
	})
}

// TestViolationString pins the report format the CLI prints.
func TestViolationString(t *testing.T) {
	v := faults.Violation{At: sim.Time(5 * sim.Millisecond), Rule: "no-loss", Detail: "datagram 3 vanished"}
	s := v.String()
	if !strings.Contains(s, "no-loss") || !strings.Contains(s, "datagram 3 vanished") {
		t.Fatalf("Violation.String() = %q", s)
	}
}
