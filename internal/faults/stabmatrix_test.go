package faults_test

import (
	"reflect"
	"testing"

	"repro/internal/bench"
	_ "repro/internal/engines" // the matrix sweeps the full registry, ssarq included
	"repro/internal/faults"
	"repro/internal/sim"
)

// --- Corruption matrix (ISSUE 9) --------------------------------------------

// stabConfig mirrors E20's geometry at reduced scale: the corruption era
// (100ms–500ms) covers the whole arrival span, N2 supervision is armed so a
// wedged HDLC link declares instead of hanging, and the checker runs with
// the convergence rule installed (bench wires it whenever the schedule
// carries a corruption window).
func stabConfig(t *testing.T, proto bench.Protocol, spec string, seed uint64) bench.RunConfig {
	t.Helper()
	s, err := faults.ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	c := bench.Base()
	c.Protocol = proto
	c.N = 600
	c.OfferInterval = 500 * sim.Microsecond
	c.Horizon = 5 * sim.Second
	c.N2 = 16
	c.Seed = seed
	c.Faults = s
	c.CheckInvariants = true
	return c
}

var stabEngines = []bench.Protocol{bench.LAMS, bench.SRHDLC, bench.GBNHDLC, "ssarq"}

const stabAllSpec = "scramble@100ms+400ms:period=10ms; ghost@100ms+400ms:period=2ms; reorder@100ms+400ms:jitter=2ms"

// TestStabMatrix is the state-corruption acceptance gate: scramble, ghost,
// and reorder adversaries against every registry engine at seeds 1–5. The
// contract is per-engine. SS-ARQ self-stabilizes: zero violations AND zero
// failure declarations — it must converge from any state the adversary
// leaves it in. The legacy engines hold the bounded contract: corruption-era
// casualties are excused by the checker's convergence rule, a post-era N2
// failure declaration is legitimate triage (DESIGN.md §13), but an unexcused
// §3.2 violation — silent loss, unexplained duplicate, a wedged link that
// never declares — fails the matrix for any engine.
func TestStabMatrix(t *testing.T) {
	kinds := []struct{ name, spec string }{
		{"scramble", "scramble@100ms+400ms:period=10ms"},
		{"ghost", "ghost@100ms+400ms:period=2ms"},
		{"reorder", "reorder@100ms+400ms:jitter=2ms"},
	}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.name, func(t *testing.T) {
			// One batch per kind keeps the worker pool busy across the
			// engine×seed grid instead of running 20 sims serially.
			var cfgs []bench.RunConfig
			for _, eng := range stabEngines {
				for seed := uint64(1); seed <= 5; seed++ {
					cfgs = append(cfgs, stabConfig(t, eng, kind.spec, seed))
				}
			}
			results := bench.RunMany(cfgs)
			for i, res := range results {
				eng, seed := cfgs[i].Protocol, cfgs[i].Seed
				for _, v := range res.Violations {
					t.Errorf("%s seed %d: %s", eng, seed, v)
				}
				if eng == "ssarq" && res.Failures != 0 {
					t.Errorf("ssarq seed %d: declared failure %d times; a self-stabilizing engine converges instead",
						seed, res.Failures)
				}
				// A legacy engine may declare failure (bounded triage), but a
				// run that neither finished nor declared is a silent wedge.
				if res.Failures == 0 && res.Delivered == 0 {
					t.Errorf("%s seed %d: delivered nothing and declared nothing", eng, seed)
				}
			}
		})
	}
}

// TestStabDeterminismAcrossWorkers extends the workers-1-vs-8 byte-identical
// pin to the corruption path: the combined scramble+ghost+reorder schedule
// against every engine at seeds 1–5. State corruption draws from the
// injector's own RNG split and poisons state at derived (non-map-order)
// keys, so the full RunResult — violations, excused breaches, convergence
// time, metrics snapshot — must be independent of worker count.
func TestStabDeterminismAcrossWorkers(t *testing.T) {
	var cfgs []bench.RunConfig
	for _, eng := range stabEngines {
		for seed := uint64(1); seed <= 5; seed++ {
			cfgs = append(cfgs, stabConfig(t, eng, stabAllSpec, seed))
		}
	}
	var serial, parallel []bench.RunResult
	bench.SetWorkers(1)
	serial = bench.RunMany(cfgs)
	bench.SetWorkers(8)
	parallel = bench.RunMany(cfgs)
	bench.SetWorkers(0)
	if !reflect.DeepEqual(serial, parallel) {
		for i := range serial {
			if !reflect.DeepEqual(serial[i], parallel[i]) {
				t.Errorf("%s seed %d: corrupted run differs across worker counts",
					cfgs[i].Protocol, cfgs[i].Seed)
			}
		}
		t.Fatal("corrupted runs are not byte-identical at 1 and 8 workers")
	}
}
