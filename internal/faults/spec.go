// Package faults is the deterministic fault-injection harness for the
// recovery machinery: it scripts link outages (full and half-duplex, so
// checkpoints can die while I-frames survive), NAK/checkpoint storms,
// burst-loss episodes, clock-skew windows, handover cut-overs, and — since
// the self-stabilization work — state-corruption attacks (scramble of live
// engine state, ghost-frame forgery, bounded non-FIFO reordering) against a
// channel.Link. Legacy kinds are seed-free schedules — same spec, same run,
// byte for byte, at any worker count; the scramble/ghost adversaries draw
// from a dedicated RNG stream the harness splits only when a schedule needs
// one, so legacy runs keep their exact historical draw sequences.
//
// A Spec is a semicolon-separated list of events:
//
//	kind@start[+dur][:key=value,...]
//
// e.g. "half@2s+500ms:dir=ba; storm@4s+200ms:period=2ms,naks=4". See
// ParseSpec for the kinds and their parameters, and DESIGN.md §9 for the
// fault model. The Injector arms a spec against a run; the Checker
// (checker.go) asserts the paper's §3.2 reliability contract under it.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
)

// Kind enumerates the fault classes.
type Kind uint8

// Fault kinds.
const (
	// Outage kills both directions for the duration.
	Outage Kind = iota
	// HalfDuplex kills one direction (param dir=ab|ba, default ba — the
	// checkpoint blackout: I-frames survive, acknowledgement dies).
	HalfDuplex
	// Storm injects spurious control frames into one direction every
	// period (params dir=ab|ba default ba, period default W_cp-ish 1ms,
	// naks=N spurious NAK count per frame, serial=S stale serial,
	// enforced=true to forge Enforced-NAKs). Injected frames consume real
	// wire time, so a storm is also a bandwidth attack on control traffic.
	Storm
	// Burst overlays recurring burst-loss episodes on a direction's error
	// process (params dir=ab|ba|both default both, len=burst length
	// default 1ms, gap=inter-burst quiet time default 9ms): every frame
	// whose wire occupancy overlaps a burst is marked corrupted.
	Burst
	// Skew re-times the receiver's checkpoint ticker by factor (param
	// factor, default 1.5) for the duration, then restores it: the
	// sender's silence windows must absorb the drift without spurious
	// recovery or failure.
	Skew
	// Handover models an orbit-driven cut-over: both beams drop for the
	// duration (default 30ms) — a short, sharp outage with its own kind so
	// schedules read like the scenario they script.
	Handover
	// Scramble is the state-corruption adversary (Dolev et al.,
	// arXiv 2006.05901): every period it overwrites a bounded slice of the
	// engine's live protocol state through arq.StateCorruptor (param
	// period, default 10ms). Engines without the capability skip it.
	Scramble
	// Ghost injects well-formed forged frames — CRC-valid bodies with
	// fabricated sequence/serial/ack state — through arq.GhostForger
	// (params dir=ab|ba|both default both, period default 1ms). Forged
	// frames consume real wire time like storm frames.
	Ghost
	// Reorder opens a bounded non-FIFO delivery window on a direction:
	// each frame's arrival gains a deterministic counter-hashed extra
	// delay in [0, jitter) and the pipe's FIFO clamp is suspended (params
	// dir=ab|ba|both default both, jitter default 1ms). Consumes no
	// randomness, like the burst gate.
	Reorder
)

var kindNames = map[Kind]string{
	Outage:     "outage",
	HalfDuplex: "half",
	Storm:      "storm",
	Burst:      "burst",
	Skew:       "skew",
	Handover:   "handover",
	Scramble:   "scramble",
	Ghost:      "ghost",
	Reorder:    "reorder",
}

var kindsByName = map[string]Kind{
	"outage":   Outage,
	"half":     HalfDuplex,
	"storm":    Storm,
	"burst":    Burst,
	"skew":     Skew,
	"handover": Handover,
	"scramble": Scramble,
	"ghost":    Ghost,
	"reorder":  Reorder,
}

// Corruption reports whether the kind belongs to the state-corruption
// family (scramble, ghost, reorder) the §3.2 checker's convergence rule
// keys off.
func (k Kind) Corruption() bool {
	return k == Scramble || k == Ghost || k == Reorder
}

// String names the kind as the grammar spells it.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Dir selects the link direction(s) an event applies to.
type Dir uint8

// Directions. AtoB carries I-frames, BtoA carries checkpoint traffic in a
// lamsdlc.Pair.
const (
	Both Dir = iota
	AtoB
	BtoA
)

// String names the direction as the grammar spells it.
func (d Dir) String() string {
	switch d {
	case AtoB:
		return "ab"
	case BtoA:
		return "ba"
	}
	return "both"
}

func parseDir(s string) (Dir, error) {
	switch s {
	case "ab":
		return AtoB, nil
	case "ba":
		return BtoA, nil
	case "both", "":
		return Both, nil
	}
	return Both, fmt.Errorf("faults: unknown direction %q (want ab, ba, or both)", s)
}

// Event is one scripted fault episode.
type Event struct {
	Kind  Kind
	Start sim.Duration // virtual time the episode opens
	Dur   sim.Duration // episode length (instantaneous kinds get defaults)

	Dir Dir // Outage-family and Storm/Burst direction selector

	// Storm parameters.
	Period   sim.Duration // inter-injection spacing
	NAKs     int          // spurious NAK count per injected checkpoint
	Serial   uint32       // serial carried by injected checkpoints
	Enforced bool         // forge the Enforced bit

	// Burst parameters.
	BurstLen, BurstGap sim.Duration

	// Skew parameter: checkpoint-period multiplier.
	Factor float64

	// Reorder parameter: upper bound (exclusive) on the extra per-frame
	// arrival delay inside the non-FIFO window.
	Jitter sim.Duration
}

// End returns the instant the episode closes.
func (e Event) End() sim.Duration { return e.Start + e.Dur }

// String renders the event in the grammar (round-trips through ParseSpec).
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%s+%s", e.Kind, fmtSpecDur(e.Start), fmtSpecDur(e.Dur))
	var params []string
	add := func(k, v string) { params = append(params, k+"="+v) }
	switch e.Kind {
	case HalfDuplex, Storm, Burst, Ghost, Reorder:
		if e.Dir != Both || e.Kind == HalfDuplex {
			add("dir", e.Dir.String())
		}
	}
	switch e.Kind {
	case Storm:
		add("period", fmtSpecDur(e.Period))
		add("naks", strconv.Itoa(e.NAKs))
		if e.Serial != 0 {
			add("serial", strconv.FormatUint(uint64(e.Serial), 10))
		}
		if e.Enforced {
			add("enforced", "true")
		}
	case Burst:
		add("len", fmtSpecDur(e.BurstLen))
		add("gap", fmtSpecDur(e.BurstGap))
	case Skew:
		add("factor", strconv.FormatFloat(e.Factor, 'g', -1, 64))
	case Scramble, Ghost:
		add("period", fmtSpecDur(e.Period))
	case Reorder:
		add("jitter", fmtSpecDur(e.Jitter))
	}
	if len(params) > 0 {
		b.WriteString(":" + strings.Join(params, ","))
	}
	return b.String()
}

// Spec is a complete fault schedule: zero or more events, sorted by start.
type Spec struct {
	Events []Event
}

// String renders the schedule in the grammar.
func (s *Spec) String() string {
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, "; ")
}

// End returns the instant the last episode closes (0 for an empty spec).
func (s *Spec) End() sim.Duration {
	var end sim.Duration
	for _, e := range s.Events {
		if e.End() > end {
			end = e.End()
		}
	}
	return end
}

// CorruptionWindow returns the span covering every state-corruption event
// (scramble, ghost, reorder). ok is false when the schedule has none — the
// checker's convergence rule then stays dormant.
func (s *Spec) CorruptionWindow() (start, end sim.Duration, ok bool) {
	for _, e := range s.Events {
		if !e.Kind.Corruption() {
			continue
		}
		if !ok || e.Start < start {
			start = e.Start
		}
		if e.End() > end {
			end = e.End()
		}
		ok = true
	}
	return start, end, ok
}

// NeedsRNG reports whether arming the schedule consumes randomness: the
// scramble and ghost adversaries draw, while every legacy kind — and
// reorder, whose jitter is counter-hashed — is purely schedule-driven.
// The harness splits the injector an RNG stream only when this is true, so
// legacy schedules keep their exact historical draw sequences.
func (s *Spec) NeedsRNG() bool {
	for _, e := range s.Events {
		if e.Kind == Scramble || e.Kind == Ghost {
			return true
		}
	}
	return false
}

// Validate reports the first structural error in the schedule. ParseSpec
// runs it on everything it parses; NewInjector runs it again so
// programmatically built Specs meet the same bar. Two classes of error:
// every kind here scripts a window, so a non-positive duration is always a
// mistake (parseEvent rejects an explicit "+0s", but a hand-built Event can
// carry one); and two same-kind episodes whose windows and directions
// intersect are rejected outright — the half-duplex ref count and the skew
// restore are the subtle casualties, and no schedule legitimately needs the
// same fault twice at once.
func (s *Spec) Validate() error {
	for _, e := range s.Events {
		if e.Start < 0 {
			return fmt.Errorf("faults: event %s: negative start", e)
		}
		if e.Dur <= 0 {
			return fmt.Errorf("faults: event %s: non-positive duration", e)
		}
	}
	for i, a := range s.Events {
		for _, b := range s.Events[i+1:] {
			if a.Kind != b.Kind {
				continue
			}
			if a.End() <= b.Start || b.End() <= a.Start {
				continue // half-open windows merely touching are fine
			}
			if !dirsIntersect(a, b) {
				continue
			}
			return fmt.Errorf("faults: overlapping %s events (%s and %s)", a.Kind, a, b)
		}
	}
	return nil
}

// dirsIntersect reports whether two events of one kind contend for the same
// link direction. Kinds without a direction selector always contend.
func dirsIntersect(a, b Event) bool {
	switch a.Kind {
	case HalfDuplex, Storm, Burst, Ghost, Reorder:
		return a.Dir == Both || b.Dir == Both || a.Dir == b.Dir
	}
	return true
}

// ParseSpec parses the fault-schedule grammar:
//
//	spec    = event *( ";" event )
//	event   = kind "@" dur [ "+" dur ] [ ":" param *( "," param ) ]
//	param   = key "=" value
//	kind    = "outage" | "half" | "storm" | "burst" | "skew" | "handover" |
//	          "scramble" | "ghost" | "reorder"
//
// Durations use Go syntax ("500ms", "2s"). Defaults: half dir=ba; storm
// dir=ba period=1ms naks=0 serial=0; burst dir=both len=1ms gap=9ms; skew
// factor=1.5 dur=1s; handover dur=30ms; scramble period=10ms; ghost
// dir=both period=1ms; reorder dir=both jitter=1ms; other durations 100ms.
// Repeated parameter keys and overlapping same-kind episodes are hard
// errors (Spec.Validate).
func ParseSpec(text string) (*Spec, error) {
	spec := &Spec{}
	for _, part := range strings.Split(text, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ev, err := parseEvent(part)
		if err != nil {
			return nil, err
		}
		spec.Events = append(spec.Events, ev)
	}
	sort.SliceStable(spec.Events, func(i, j int) bool {
		return spec.Events[i].Start < spec.Events[j].Start
	})
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

func parseEvent(text string) (Event, error) {
	var ev Event
	head, params, hasParams := strings.Cut(text, ":")
	kindStr, when, ok := strings.Cut(head, "@")
	if !ok {
		return ev, fmt.Errorf("faults: event %q lacks '@start'", text)
	}
	kind, ok := kindsByName[strings.TrimSpace(kindStr)]
	if !ok {
		return ev, fmt.Errorf("faults: unknown kind %q", kindStr)
	}
	ev.Kind = kind
	startStr, durStr, hasDur := strings.Cut(when, "+")
	start, err := parseSpecDur(startStr)
	if err != nil {
		return ev, fmt.Errorf("faults: event %q: bad start: %v", text, err)
	}
	if start < 0 {
		return ev, fmt.Errorf("faults: event %q: negative start", text)
	}
	ev.Start = start

	// Kind defaults, overridable below.
	ev.Dur = 100 * sim.Millisecond
	switch kind {
	case HalfDuplex, Storm:
		ev.Dir = BtoA
	case Burst, Ghost, Reorder:
		ev.Dir = Both
	}
	ev.Period = sim.Millisecond
	ev.BurstLen = sim.Millisecond
	ev.BurstGap = 9 * sim.Millisecond
	ev.Factor = 1.5
	ev.Jitter = sim.Millisecond
	if kind == Skew {
		ev.Dur = sim.Second
	}
	if kind == Handover {
		ev.Dur = 30 * sim.Millisecond
	}
	if kind == Scramble {
		ev.Period = 10 * sim.Millisecond
	}

	if hasDur {
		d, err := parseSpecDur(durStr)
		if err != nil {
			return ev, fmt.Errorf("faults: event %q: bad duration: %v", text, err)
		}
		if d <= 0 {
			return ev, fmt.Errorf("faults: event %q: non-positive duration", text)
		}
		ev.Dur = d
	}
	if !hasParams {
		return ev, nil
	}
	seen := make(map[string]bool)
	for _, p := range strings.Split(params, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		key, val, ok := strings.Cut(p, "=")
		if !ok {
			return ev, fmt.Errorf("faults: event %q: parameter %q lacks '='", text, p)
		}
		key = strings.TrimSpace(key)
		// A repeated key is a hard error, not last-wins: a schedule that
		// says period twice is a schedule the author mis-edited.
		if seen[key] {
			return ev, fmt.Errorf("faults: event %q: duplicate parameter %q", text, key)
		}
		seen[key] = true
		if err := ev.setParam(key, strings.TrimSpace(val)); err != nil {
			return ev, fmt.Errorf("faults: event %q: %v", text, err)
		}
	}
	if ev.Kind == Skew && ev.Factor <= 0 {
		return ev, fmt.Errorf("faults: event %q: factor must be positive", text)
	}
	return ev, nil
}

func (e *Event) setParam(key, val string) error {
	switch key {
	case "dir":
		switch e.Kind {
		case HalfDuplex, Storm, Burst, Ghost, Reorder:
		default:
			return fmt.Errorf("dir does not apply to %s", e.Kind)
		}
		d, err := parseDir(val)
		if err != nil {
			return err
		}
		if e.Kind == HalfDuplex && d == Both {
			return fmt.Errorf("half-duplex outage needs dir=ab or dir=ba (use outage for both)")
		}
		e.Dir = d
		return nil
	case "period":
		if e.Kind != Storm && e.Kind != Scramble && e.Kind != Ghost {
			return fmt.Errorf("period does not apply to %s", e.Kind)
		}
		d, err := parseSpecDur(val)
		if err != nil || d <= 0 {
			return fmt.Errorf("bad period %q", val)
		}
		e.Period = d
		return nil
	case "jitter":
		if e.Kind != Reorder {
			return fmt.Errorf("jitter does not apply to %s", e.Kind)
		}
		d, err := parseSpecDur(val)
		if err != nil || d <= 0 {
			return fmt.Errorf("bad jitter %q", val)
		}
		e.Jitter = d
		return nil
	case "naks":
		if e.Kind != Storm {
			return fmt.Errorf("naks does not apply to %s", e.Kind)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return fmt.Errorf("bad naks %q", val)
		}
		e.NAKs = n
		return nil
	case "serial":
		if e.Kind != Storm {
			return fmt.Errorf("serial does not apply to %s", e.Kind)
		}
		n, err := strconv.ParseUint(val, 10, 32)
		if err != nil {
			return fmt.Errorf("bad serial %q", val)
		}
		e.Serial = uint32(n)
		return nil
	case "enforced":
		if e.Kind != Storm {
			return fmt.Errorf("enforced does not apply to %s", e.Kind)
		}
		b, err := strconv.ParseBool(val)
		if err != nil {
			return fmt.Errorf("bad enforced %q", val)
		}
		e.Enforced = b
		return nil
	case "len":
		if e.Kind != Burst {
			return fmt.Errorf("len does not apply to %s", e.Kind)
		}
		d, err := parseSpecDur(val)
		if err != nil || d <= 0 {
			return fmt.Errorf("bad len %q", val)
		}
		e.BurstLen = d
		return nil
	case "gap":
		if e.Kind != Burst {
			return fmt.Errorf("gap does not apply to %s", e.Kind)
		}
		d, err := parseSpecDur(val)
		if err != nil || d < 0 {
			return fmt.Errorf("bad gap %q", val)
		}
		e.BurstGap = d
		return nil
	case "factor":
		if e.Kind != Skew {
			return fmt.Errorf("factor does not apply to %s", e.Kind)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("bad factor %q", val)
		}
		e.Factor = f
		return nil
	}
	return fmt.Errorf("unknown parameter %q", key)
}

func parseSpecDur(s string) (sim.Duration, error) {
	d, err := time.ParseDuration(strings.TrimSpace(s))
	if err != nil {
		return 0, err
	}
	return sim.Duration(d), nil
}

func fmtSpecDur(d sim.Duration) string { return time.Duration(d).String() }
