package faults

import (
	"fmt"
	"strings"

	"repro/internal/arq"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Violation is one observed breach of the §3.2 contract.
type Violation struct {
	At     sim.Time
	Rule   string // short rule id, e.g. "recovery-entry"
	Detail string
}

// String renders the violation for reports.
func (v Violation) String() string {
	return fmt.Sprintf("t=%v [%s] %s", v.At, v.Rule, v.Detail)
}

// Checker asserts the paper's reliability and recovery contract over one
// ARQ run, from outside the protocol: it observes state transitions through
// an arq.Probe and the datagram flow through wrapped workload/delivery
// callbacks, and accumulates violations instead of panicking so a single
// run can report every breach it provoked. The recovery and numbering rules
// key off probe callbacks only a checkpointing engine fires, so against an
// HDLC baseline (zero arq.RecoveryWindows) the applicable subset — no-loss,
// duplicates, completion, and the recovery-gate after a declared failure —
// runs and the rest stays dormant.
//
// The rules (DESIGN.md §9 states them with their derivations):
//
//	recovery-entry   Enforced Recovery begins only after a full
//	                 CheckpointTimerTimeout of checkpoint silence.
//	recovery-exit    Recovery ends only on an Enforced-NAK/Resolving
//	                 response the sender actually heard at that instant.
//	recovery-gate    No first transmissions while recovering or failed.
//	failure-window   Link failure is declared only from recovery, only
//	                 after a full FailureTimeout of response silence, and
//	                 never while checkpoints flowed after the solicitation.
//	numbering        No live sequence-number incarnation outlives
//	                 max(ResolvingPeriod, RoundTrip) plus the observed
//	                 checkpoint gap — the §2.3 bound that keeps the
//	                 numbering size finite.
//	no-loss          Every accepted datagram is delivered or still held by
//	                 the sender at the end of the run.
//	duplicates       A datagram delivered k times was transmitted at least
//	                 k times (duplicates stem only from retransmission).
//	completion       With RequireCompletion and no declared failure, every
//	                 accepted datagram is delivered by the end of the run —
//	                 the rule that catches a permanently halted link.
//	convergence      (SetCorruption) Under a state-corruption schedule the
//	                 contract is the Dolev self-stabilization guarantee:
//	                 bounded casualties while the adversary runs, then legal
//	                 executions forever. Violations timestamped inside the
//	                 corruption era plus the engine's convergence bound are
//	                 excused (recorded separately); anything after the
//	                 deadline is a real breach — the engine failed to
//	                 stabilize. End-of-run rules are excused per datagram:
//	                 a loss is excused only if the datagram was submitted
//	                 before the deadline (a corruption-era casualty), a
//	                 duplicate or unsolicited delivery only if its last
//	                 delivery predates the deadline.
type Checker struct {
	w arq.RecoveryWindows

	// RequireCompletion enables the completion rule at Finish. Leave it
	// set (the default from NewChecker) whenever the run's horizon
	// comfortably covers the fault schedule plus recovery settle time.
	RequireCompletion bool

	// Now, when non-nil, supplies the virtual clock WrapSink stamps
	// submissions with. Engines set Datagram.EnqueuedAt on their own copy
	// inside Enqueue — the sink wrapper never sees it — so without a clock
	// every submission reads t=0 and the convergence rule would excuse
	// post-deadline losses as era casualties. The harness installs the
	// scheduler's clock whenever it arms a corruption window.
	Now func() sim.Time

	probe arq.Probe

	submitted   []uint64
	submitSet   map[uint64]bool
	delivered   map[uint64]int
	transmitted map[uint64]int // total tx per datagram (first + retx)
	liveTx      map[uint32]txRecord

	recovering    bool
	lastCpHeard   sim.Time
	haveCp        bool
	lastEnforced  sim.Time
	haveEnforced  bool
	lastReqNAK    sim.Time
	haveReq       bool
	failed        bool
	checkpointsRx int

	// Corruption era (SetCorruption): [corrStart, corrEnd] is the scheduled
	// adversary window, corrDeadline = corrEnd + the engine's convergence
	// bound. submitAt/deliverAt give the end-of-run rules per-datagram
	// timestamps to classify against the deadline.
	haveCorr     bool
	corrStart    sim.Time
	corrEnd      sim.Time
	corrDeadline sim.Time
	submitAt     map[uint64]sim.Time
	deliverAt    map[uint64]sim.Time
	lastBreach   sim.Time

	violations []Violation
	excused    []Violation
}

type txRecord struct {
	dgID uint64
	at   sim.Time
}

// NewChecker builds a checker for endpoints whose recovery timing is w
// (arq.WindowsProvider yields it from an engine config; the zero value is
// correct for engines without enforced recovery). Install its Probe() on
// the pair before Start, wrap the workload sink and delivery callback, run,
// then call Finish.
func NewChecker(w arq.RecoveryWindows) *Checker {
	c := &Checker{
		w:                 w,
		RequireCompletion: true,
		submitSet:         make(map[uint64]bool),
		delivered:         make(map[uint64]int),
		transmitted:       make(map[uint64]int),
		liveTx:            make(map[uint32]txRecord),
		submitAt:          make(map[uint64]sim.Time),
		deliverAt:         make(map[uint64]sim.Time),
	}
	c.probe = arq.Probe{
		CheckpointHeard:   c.onCheckpointHeard,
		RecoveryStarted:   c.onRecoveryStarted,
		RequestNAKSent:    c.onRequestNAK,
		RecoveryEnded:     c.onRecoveryEnded,
		FailureDeclared:   c.onFailure,
		FirstTransmission: c.onFirstTx,
		Retransmitted:     c.onRetx,
		Released:          c.onReleased,
	}
	return c
}

// Probe returns the transition observer to install on the pair.
func (c *Checker) Probe() *arq.Probe { return &c.probe }

// SetCorruption arms the convergence rule for a state-corruption schedule
// running over [start, end]: breaches timestamped up to end+bound are
// excused as corruption-era casualties (Excused lists them), and everything
// later stays a real violation — the self-stabilization contract. bound is
// the engine's arq.StabilizationBound (or the harness fallback).
func (c *Checker) SetCorruption(start, end sim.Time, bound sim.Duration) {
	c.haveCorr = true
	c.corrStart = start
	c.corrEnd = end
	c.corrDeadline = end.Add(bound)
}

// Excused returns the corruption-era breaches the convergence rule waved
// through. E20 reads their spread; an empty list under an aggressive
// schedule usually means the adversary never actually bit.
func (c *Checker) Excused() []Violation { return c.excused }

// LastBreach returns the instant of the latest timed breach, excused or
// real (zero when none): LastBreach − corruption end is the engine's
// measured convergence time.
func (c *Checker) LastBreach() sim.Time { return c.lastBreach }

// ConvergenceTime returns the measured stabilization time: how long after
// the corruption era closed the last breach (excused or real) landed. Zero
// when the engine never breached after the era closed.
func (c *Checker) ConvergenceTime() sim.Duration {
	if !c.haveCorr || c.lastBreach <= c.corrEnd {
		return 0
	}
	return c.lastBreach.Sub(c.corrEnd)
}

// WrapSink interposes submission tracking on a workload sink. Only
// accepted datagrams (inner returned true) enter the contract.
func (c *Checker) WrapSink(inner workload.Sink) workload.Sink {
	return func(dg arq.Datagram) bool {
		ok := inner(dg)
		if ok && !c.submitSet[dg.ID] {
			c.submitSet[dg.ID] = true
			c.submitted = append(c.submitted, dg.ID)
			at := dg.EnqueuedAt
			if c.Now != nil {
				at = c.Now()
			}
			c.submitAt[dg.ID] = at
		}
		return ok
	}
}

// WrapDeliver interposes delivery tracking on a delivery callback (inner
// may be nil).
func (c *Checker) WrapDeliver(inner arq.DeliverFunc) arq.DeliverFunc {
	return func(now sim.Time, dg arq.Datagram, seq uint32) {
		c.delivered[dg.ID]++
		c.deliverAt[dg.ID] = now
		if inner != nil {
			inner(now, dg, seq)
		}
	}
}

func (c *Checker) violate(at sim.Time, rule, format string, args ...any) {
	v := Violation{At: at, Rule: rule, Detail: fmt.Sprintf(format, args...)}
	if c.haveCorr && at > 0 {
		if at > c.lastBreach {
			c.lastBreach = at
		}
		if at >= c.corrStart && at <= c.corrDeadline {
			// Corruption-era casualty: the self-stabilization contract
			// tolerates it, the convergence measurement records it.
			c.excused = append(c.excused, v)
			return
		}
	}
	c.violations = append(c.violations, v)
}

// excuseFinish routes an end-of-run breach whose per-datagram evidence
// predates the convergence deadline into the excused list. at is the
// datagram's classifying timestamp (submission for loss rules, last
// delivery for duplicate rules).
func (c *Checker) excuseFinish(at sim.Time, rule, format string, args ...any) bool {
	if !c.haveCorr || at > c.corrDeadline {
		return false
	}
	if at > c.lastBreach {
		c.lastBreach = at
	}
	c.excused = append(c.excused, Violation{At: at, Rule: rule, Detail: fmt.Sprintf(format, args...)})
	return true
}

func (c *Checker) onCheckpointHeard(now sim.Time, serial uint32, enforced bool) {
	c.checkpointsRx++
	// numbering: between this checkpoint and the previous one the sender
	// had no opportunity to sweep, so every live incarnation must be
	// younger than the steady-state bound stretched by the observed gap.
	// The sweep the sender is about to run keeps the bound inductive.
	gap := now.Sub(c.lastCpHeard) // from t=0 when this is the first
	bound := c.w.ResolvingPeriod
	if rt := c.w.RoundTrip; rt > bound {
		bound = rt
	}
	bound += gap
	for seq, rec := range c.liveTx {
		if age := now.Sub(rec.at); age > bound {
			c.violate(now, "numbering", "seq %d (datagram %d) unresolved for %v, bound %v (resolving period %v + checkpoint gap %v)",
				seq, rec.dgID, age, bound, c.w.ResolvingPeriod, gap)
		}
	}
	c.lastCpHeard, c.haveCp = now, true
	if enforced {
		c.lastEnforced, c.haveEnforced = now, true
	}
}

func (c *Checker) onRecoveryStarted(now sim.Time) {
	if c.recovering {
		c.violate(now, "recovery-entry", "recovery re-entered while already recovering")
	}
	silence := now.Sub(c.lastCpHeard) // from t=0 before the first checkpoint
	if min := c.w.CheckpointTimer; silence < min {
		c.violate(now, "recovery-entry", "recovery entered after only %v of checkpoint silence, want >= %v", silence, min)
	}
	c.recovering = true
}

func (c *Checker) onRequestNAK(now sim.Time, serial uint32) {
	if !c.recovering {
		c.violate(now, "recovery-entry", "Request-NAK %d sent outside Enforced Recovery", serial)
	}
	c.lastReqNAK, c.haveReq = now, true
}

func (c *Checker) onRecoveryEnded(now sim.Time, enforced bool) {
	if !c.recovering {
		c.violate(now, "recovery-exit", "recovery ended while not recovering")
	}
	if !enforced {
		c.violate(now, "recovery-exit", "recovery ended by a non-enforced checkpoint")
	}
	if !c.haveEnforced || c.lastEnforced != now {
		c.violate(now, "recovery-exit", "recovery ended with no Enforced-NAK heard at this instant")
	}
	c.recovering = false
}

func (c *Checker) onFailure(now sim.Time, reason string) {
	defer func() { c.failed = true; c.recovering = false }()
	if c.w.FailureTimeout == 0 {
		// No enforced-recovery protocol to validate (an HDLC baseline's N2
		// declaration): record the failure so the recovery-gate and
		// completion rules adjust, and skip the solicitation-window rules.
		return
	}
	if strings.Contains(reason, "lifetime") {
		// Lifetime-based declarations (§3.2's unrecoverable case) bypass
		// the solicitation protocol by design.
		return
	}
	if !c.recovering {
		c.violate(now, "failure-window", "failure declared outside Enforced Recovery: %s", reason)
		return
	}
	if !c.haveReq {
		c.violate(now, "failure-window", "failure declared with no Request-NAK ever sent")
		return
	}
	if silence := now.Sub(c.lastReqNAK); silence < c.w.FailureTimeout {
		c.violate(now, "failure-window", "failure declared %v after the last solicitation, want >= %v", silence, c.w.FailureTimeout)
	}
	if c.haveCp && c.lastCpHeard > c.lastReqNAK {
		c.violate(now, "failure-window", "failure declared although checkpoints arrived after the last solicitation")
	}
}

func (c *Checker) onFirstTx(now sim.Time, seq uint32, dgID uint64) {
	if c.recovering {
		c.violate(now, "recovery-gate", "new I-frame (seq %d) transmitted during Enforced Recovery", seq)
	}
	if c.failed {
		c.violate(now, "recovery-gate", "new I-frame (seq %d) transmitted after declared failure", seq)
	}
	c.liveTx[seq] = txRecord{dgID: dgID, at: now}
	c.transmitted[dgID]++
}

func (c *Checker) onRetx(now sim.Time, oldSeq, newSeq uint32, dgID uint64, cause arq.RetxCause) {
	if _, ok := c.liveTx[oldSeq]; !ok {
		c.violate(now, "numbering", "retransmission retires unknown incarnation seq %d", oldSeq)
	}
	delete(c.liveTx, oldSeq)
	c.liveTx[newSeq] = txRecord{dgID: dgID, at: now}
	c.transmitted[dgID]++
}

func (c *Checker) onReleased(now sim.Time, seq uint32, dgID uint64) {
	if _, ok := c.liveTx[seq]; !ok {
		c.violate(now, "numbering", "release of unknown incarnation seq %d", seq)
	}
	delete(c.liveTx, seq)
}

// Checkpoints returns how many checkpoint-family frames the sender heard
// (tests use it to confirm a schedule actually bit).
func (c *Checker) Checkpoints() int { return c.checkpointsRx }

// Failed reports whether the sender declared link failure during the run.
func (c *Checker) Failed() bool { return c.failed }

// Finish evaluates the end-of-run rules and returns every violation
// accumulated over the run. unreleased is the sender's remaining buffer
// (arq.Pair.Reclaim) — datagrams the contract still charges to the sender
// rather than counting as lost.
func (c *Checker) Finish(unreleased []arq.Datagram) []Violation {
	held := make(map[uint64]bool, len(unreleased))
	for _, dg := range unreleased {
		held[dg.ID] = true
	}
	for _, id := range c.submitted {
		n := c.delivered[id]
		if n == 0 && !held[id] {
			if !c.excuseFinish(c.submitAt[id], "no-loss", "datagram %d accepted but neither delivered nor held by the sender (corruption-era casualty)", id) {
				c.violate(0, "no-loss", "datagram %d accepted but neither delivered nor held by the sender", id)
			}
		}
		if n == 0 && !c.failed && c.RequireCompletion {
			if !c.excuseFinish(c.submitAt[id], "completion", "datagram %d undelivered at end of run (corruption-era casualty)", id) {
				c.violate(0, "completion", "datagram %d undelivered at end of run with no declared failure", id)
			}
		}
		if n > 1 && c.transmitted[id] < n {
			if !c.excuseFinish(c.deliverAt[id], "duplicates", "datagram %d delivered %d times, transmitted %d (corruption-era duplicate)", id, n, c.transmitted[id]) {
				c.violate(0, "duplicates", "datagram %d delivered %d times but transmitted only %d times", id, n, c.transmitted[id])
			}
		}
	}
	for id := range c.delivered {
		if len(c.submitSet) > 0 && !c.submitSet[id] {
			if !c.excuseFinish(c.deliverAt[id], "no-loss", "datagram %d delivered but never accepted (ghost-era delivery)", id) {
				c.violate(0, "no-loss", "datagram %d delivered but never accepted from the workload", id)
			}
		}
	}
	return c.violations
}

// Violations returns the breaches recorded so far (Finish appends the
// end-of-run rules).
func (c *Checker) Violations() []Violation { return c.violations }
