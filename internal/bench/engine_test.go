package bench

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// withWorkers runs fn with the pool fixed at n, restoring the default after.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	SetWorkers(n)
	defer SetWorkers(0)
	fn()
}

func TestSetWorkers(t *testing.T) {
	withWorkers(t, 3, func() {
		if Workers() != 3 {
			t.Fatalf("Workers() = %d, want 3", Workers())
		}
	})
	if Workers() < 1 {
		t.Fatalf("default Workers() = %d, want >= 1", Workers())
	}
	SetWorkers(-5) // negative restores the default, never a dead pool
	if Workers() < 1 {
		t.Fatalf("Workers() after SetWorkers(-5) = %d", Workers())
	}
}

func TestDeriveSeedDistinctAndStable(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 10000; i++ {
		s := DeriveSeed(1, i)
		if s == 0 {
			t.Fatalf("DeriveSeed(1, %d) = 0", i)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("DeriveSeed collision: i=%d and i=%d", prev, i)
		}
		seen[s] = i
	}
	if DeriveSeed(1, 7) != DeriveSeed(1, 7) {
		t.Fatal("DeriveSeed is not a pure function")
	}
	if DeriveSeed(1, 7) == DeriveSeed(2, 7) {
		t.Fatal("DeriveSeed ignores the base seed")
	}
}

// batchConfigs is a small mixed batch covering both protocols and a few
// distinct shapes, cheap enough to run twice under -race.
func batchConfigs() []RunConfig {
	var cfgs []RunConfig
	for i, pf := range []float64{0.02, 0.1, 0.25} {
		cl := withErrors(Base(), pf, pf/4)
		cl.N = 200
		cl.Seed = uint64(i) + 1
		ch := cl
		ch.Protocol = SRHDLC
		cfgs = append(cfgs, cl, ch)
	}
	return cfgs
}

// TestRunManyDeterministicAcrossWorkers is the engine's core guarantee: the
// result table is a pure function of the configs, independent of worker
// count, scheduling, and completion order.
func TestRunManyDeterministicAcrossWorkers(t *testing.T) {
	cfgs := batchConfigs()
	var serial, parallel []RunResult
	withWorkers(t, 1, func() { serial = RunMany(cfgs) })
	withWorkers(t, 8, func() { parallel = RunMany(cfgs) })
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("RunMany results differ across worker counts:\n1 worker:  %+v\n8 workers: %+v", serial, parallel)
	}
	// And against the plain serial Run loop: RunMany must reproduce it
	// exactly (the configs' own seeds are used verbatim).
	for i, c := range cfgs {
		if got := Run(c); !reflect.DeepEqual(got, serial[i]) {
			t.Fatalf("RunMany[%d] != Run(cfgs[%d])", i, i)
		}
	}
}

// TestExperimentDeterministicAcrossWorkers renders a full experiment Result
// at 1 and 8 workers and requires byte-identical output.
func TestExperimentDeterministicAcrossWorkers(t *testing.T) {
	var one, eight string
	withWorkers(t, 1, func() { one = E2LowTrafficDelay().Render() })
	withWorkers(t, 8, func() { eight = E2LowTrafficDelay().Render() })
	if one != eight {
		t.Fatalf("E2 output differs across worker counts:\n--- 1 worker ---\n%s\n--- 8 workers ---\n%s", one, eight)
	}
}

// TestMultiHopDeterministicAcrossWorkers extends the determinism pin to a
// constellation run carried over the HDLC baselines: E18 relays through a
// 3-node line under every registered engine, so its rendered table covers
// multi-hop-over-HDLC as well as LAMS. Byte-identical output at 1 and 8
// workers, like E2's pin.
func TestMultiHopDeterministicAcrossWorkers(t *testing.T) {
	var one, eight string
	withWorkers(t, 1, func() { one = E18MultiHopRelay().Render() })
	withWorkers(t, 8, func() { eight = E18MultiHopRelay().Render() })
	if one != eight {
		t.Fatalf("E18 output differs across worker counts:\n--- 1 worker ---\n%s\n--- 8 workers ---\n%s", one, eight)
	}
	for _, proto := range []string{"SR-HDLC", "GBN-HDLC", "LAMS-DLC"} {
		if !strings.Contains(one, proto) {
			t.Fatalf("E18 table is missing the %s row:\n%s", proto, one)
		}
	}
}

func TestSweepParallelDerivesSeeds(t *testing.T) {
	// An error process makes the runs seed-sensitive; on a perfect channel
	// every replicate is identical by design.
	base := withErrors(Base(), 0.1, 0.025)
	base.N = 100
	withWorkers(t, 4, func() {
		results := SweepParallel(base, 6, func(i int, c *RunConfig) {
			// Runs on worker goroutines; testing.T is safe for concurrent use.
			if c.Seed != DeriveSeed(base.Seed, i) {
				t.Errorf("point %d: seed %d, want DeriveSeed(%d, %d)", i, c.Seed, base.Seed, i)
			}
		})
		if len(results) != 6 {
			t.Fatalf("got %d results, want 6", len(results))
		}
		// Replicates with independent seeds should not all be identical.
		same := true
		for _, res := range results[1:] {
			if !reflect.DeepEqual(res, results[0]) {
				same = false
			}
		}
		if same {
			t.Fatal("all replicate points identical; seed derivation is not taking effect")
		}
	})
}

func TestMapIndexedPanicPropagates(t *testing.T) {
	withWorkers(t, 4, func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("worker panic did not propagate")
			}
			if !strings.Contains(r.(string), "boom") {
				t.Fatalf("panic value %v does not carry the cause", r)
			}
		}()
		mapIndexed(64, func(i int) int {
			if i == 13 {
				panic("boom")
			}
			return i
		})
	})
}

func TestMapIndexedOrderAndCoverage(t *testing.T) {
	withWorkers(t, 7, func() {
		out := mapIndexed(100, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
			}
		}
	})
	if n := len(mapIndexed(0, func(int) int { return 0 })); n != 0 {
		t.Fatalf("empty batch returned %d results", n)
	}
}

// TestRunManySharesNothing runs two identical configs concurrently and
// expects identical results — a canary for hidden shared state (a shared
// RNG or scheduler would make them diverge).
func TestRunManySharesNothing(t *testing.T) {
	c := Base()
	c.N = 300
	c.Tproc = 10 * sim.Microsecond
	withWorkers(t, 2, func() {
		res := RunMany([]RunConfig{c, c})
		if !reflect.DeepEqual(res[0], res[1]) {
			t.Fatalf("identical configs diverged under concurrency:\n%+v\n%+v", res[0], res[1])
		}
	})
}
