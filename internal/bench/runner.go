// Package bench is the experiment harness that regenerates the paper's
// evaluation: every table and figure of Section 4 (and the protocol-design
// claims of §2.3/§3.3) has an experiment here that (a) evaluates the paper's
// closed-form model via internal/analysis and (b) re-measures the same
// quantity by running the real protocol implementations over the simulated
// laser link, then checks the paper's shape claims (who wins, by what
// factor, where the trend bends).
//
// The experiment index lives in DESIGN.md §5; cmd/lamstables prints every
// experiment, and bench_test.go exposes each as a testing.B benchmark.
package bench

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/analysis"
	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/faults"
	"repro/internal/hdlc"
	"repro/internal/lamsdlc"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Protocol selects the DLC under test by its registry name (see
// internal/arq: Register/ParseProtocol). The zero value means LAMS-DLC, for
// compatibility with configs that never set the field.
type Protocol string

// The in-tree protocols, for convenience; any registered name works.
const (
	LAMS    Protocol = "lams"
	SRHDLC  Protocol = "srhdlc"
	GBNHDLC Protocol = "gbn"
)

// String names the protocol by its registry display name ("LAMS-DLC",
// "SR-HDLC", "GBN-HDLC"), keeping table and CSV output byte-stable with the
// pre-registry harness.
func (p Protocol) String() string {
	name := string(p)
	if name == "" {
		name = string(LAMS)
	}
	reg, err := arq.ParseProtocol(name)
	if err != nil {
		return fmt.Sprintf("Protocol(%q)", name)
	}
	return reg.Display
}

// RunConfig describes one protocol run.
type RunConfig struct {
	Protocol Protocol

	// Traffic: N datagrams of PayloadBytes each, offered all at once
	// (saturating the sending buffer, the §4 high-traffic model) unless
	// OfferInterval is set (constant-rate arrivals).
	N             int
	PayloadBytes  int
	OfferInterval sim.Duration
	// Poisson makes OfferInterval the mean of exponential inter-arrivals
	// instead of a fixed spacing.
	Poisson bool

	// Link.
	RateBps float64
	OneWay  sim.Duration
	IModel  channel.ErrorModel // nil = Perfect
	CModel  channel.ErrorModel
	// IModelSpec and CModelSpec name the error models by registry spec
	// ("fixed:p=0.05", "ge:gber=1e-7,...", "trace:file=..."; see
	// channel.ParseModel). Each of the link's pipes instantiates a FRESH
	// model from its spec, so stateful models (Gilbert-Elliott, replay
	// cursors) work per direction — unlike the instance fields above,
	// which both directions share and which therefore must stay
	// stateless. Instances take precedence when non-nil; a malformed spec
	// panics in Run (validate with channel.ParseModel at the flag layer).
	IModelSpec, CModelSpec string

	// RecordChannels, when non-nil, wraps every channel model in a
	// channel.Recorder capturing its per-frame decisions into the set's
	// streams "ab/i", "ab/c", "ba/i", "ba/c" (direction/frame-class). A
	// recording set belongs to exactly one run — never share one across a
	// RunMany batch.
	RecordChannels *channel.TraceSet
	// ReplayChannels, when non-nil, REPLACES the channel models with
	// channel.Replay cursors over the same four streams (missing streams
	// replay clean). The set is read read-only and may be shared by any
	// number of concurrent runs. Fault-injector burst gates still wrap the
	// replayed models: faults compose on top of a replayed channel exactly
	// as on a live one.
	ReplayChannels *channel.TraceSet
	// ReplayPolicy governs a replay cursor that outlives its trace
	// (default channel.LoopReplay).
	ReplayPolicy channel.ReplayPolicy
	// IExpansion/CExpansion scale wire occupancy for the FEC code rate.
	IExpansion, CExpansion float64
	// TapAB and TapBA, when non-nil, observe the two link directions for
	// tracing.
	TapAB, TapBA channel.Tap

	// Protocol parameters.
	Icp     sim.Duration // LAMS checkpoint interval
	Cdepth  int
	W       int          // HDLC window
	Alpha   sim.Duration // HDLC timeout slack
	Stutter bool         // HDLC idle-time stutter retransmission
	N2      int          // HDLC MaxTimeouts retry budget (0 = supervision off, the historical default)
	Tproc   sim.Duration
	RecvCap int // LAMS receive buffer cap (0 = unbounded)
	SendCap int

	Seed    uint64
	Horizon sim.Duration // safety stop; 0 = 10 virtual minutes

	// Faults, when non-nil, scripts deterministic link faults (outages,
	// storms, bursts, skew, handovers) against the run; see
	// internal/faults for the schedule grammar. Purely schedule-driven:
	// a faulted run stays bit-identical at any worker count.
	Faults *faults.Spec
	// CheckInvariants attaches the §3.2 invariant checker; breaches land
	// in RunResult.Violations. Against a non-checkpointing engine the
	// checker's applicable subset (no-loss, duplicates, completion) runs
	// and the recovery rules stay dormant.
	CheckInvariants bool

	// Metrics, when non-nil, is the registry the run's scheduler, channel,
	// and protocol instruments report into (a live /metrics endpoint shares
	// one registry across the run). When nil, Run creates a fresh per-run
	// registry — runs stay hermetic, so RunMany/SweepParallel results are
	// bit-identical at any worker count — and RunResult.Snapshot carries
	// its final state either way.
	Metrics *metrics.Registry
}

// RunResult carries the measurements every experiment reads.
type RunResult struct {
	Protocol        Protocol
	Delivered       uint64
	Duplicates      uint64
	Lost            int // datagrams never delivered within the horizon
	FirstTx         uint64
	Retransmissions uint64
	ControlSent     uint64
	Elapsed         sim.Duration // offer start to last delivery
	Efficiency      float64      // delivered payload bits / (rate × elapsed)
	TransPerFrame   float64      // empirical s̄: transmissions per delivered frame
	MeanHolding     sim.Duration
	MaxHolding      sim.Duration
	MeanDelay       sim.Duration // enqueue → delivery
	SendBufMean     float64
	SendBufMax      float64
	RecvBufMax      float64
	RecvDropped     uint64
	RateChanges     uint64
	Recoveries      uint64
	Failures        uint64
	FinalBacklog    int // sending buffer population at the horizon
	MaxLiveSpan     uint32
	FinalRate       float64 // LAMS flow-control rate fraction at the end

	// Snapshot is the final state of the run's metrics registry: every
	// counter, gauge, and histogram the instrumented layers reported
	// (lams_*/hdlc_*/channel_*/sim_*; see each package's instruments).
	Snapshot metrics.Snapshot

	// Violations holds the invariant-checker findings when
	// RunConfig.CheckInvariants was set (nil/empty = contract held).
	Violations []faults.Violation

	// Convergence measurements, populated only when the checker ran under a
	// corruption schedule (CheckInvariants + corruption events). Both are
	// order-independent scalars, so RunMany results stay bit-identical at
	// any worker count. ExcusedBreaches counts the corruption-era casualties
	// the convergence rule waved through; ConvergenceTime is how long after
	// the adversary stopped the last breach landed (zero = instant).
	ExcusedBreaches uint64
	ConvergenceTime sim.Duration
}

func (c RunConfig) lamsConfig() lamsdlc.Config {
	cfg := lamsdlc.Defaults(2 * c.OneWay)
	cfg.CheckpointInterval = c.Icp
	cfg.CumulationDepth = c.Cdepth
	cfg.ProcTime = c.Tproc
	cfg.RecvBufferCap = c.RecvCap
	cfg.SendBufferCap = c.SendCap
	cfg.Metrics = c.Metrics
	return cfg
}

func (c RunConfig) hdlcConfig() hdlc.Config {
	cfg := hdlc.Defaults(2 * c.OneWay)
	cfg.WindowSize = c.W
	cfg.ModulusBits = 0
	cfg.Timeout = 2*c.OneWay + c.Alpha
	cfg.ProcTime = c.Tproc
	cfg.Stutter = c.Stutter
	cfg.MaxTimeouts = c.N2
	cfg.Metrics = c.Metrics
	return cfg
}

// engineConfig maps the harness knobs onto the named engine's configuration.
// The registry's New forces the recovery mode for the HDLC names, so only
// the config family matters here.
func (c RunConfig) engineConfig(reg arq.Registration) arq.EngineConfig {
	switch reg.Name {
	case string(LAMS):
		return c.lamsConfig()
	case string(SRHDLC), string(GBNHDLC):
		return c.hdlcConfig()
	default:
		// A protocol registered outside this package runs on its own
		// defaults for the link's round trip.
		return reg.Defaults(2 * c.OneWay)
	}
}

// pipe builds one direction's config. dir ("ab" or "ba") names the
// direction's trace streams. Model specs are resolved here rather than in
// channel.NewPipe so the record/replay wrappers below — and the fault
// injector's burst gates, which Run applies after this — compose around
// the concrete per-direction instance.
func (c RunConfig) pipe(dir string) channel.PipeConfig {
	p := channel.PipeConfig{
		RateBps:    c.RateBps,
		Delay:      channel.ConstantDelay(c.OneWay),
		IModel:     c.IModel,
		CModel:     c.CModel,
		IExpansion: c.IExpansion,
		CExpansion: c.CExpansion,
		Metrics:    c.Metrics,
	}
	if p.IModel == nil && c.IModelSpec != "" {
		p.IModel = channel.MustParseModel(c.IModelSpec).New()
	}
	if p.CModel == nil && c.CModelSpec != "" {
		p.CModel = channel.MustParseModel(c.CModelSpec).New()
	}
	if c.ReplayChannels != nil {
		// Get, not Stream: replay must not mutate a set shared across a
		// concurrent batch; absent streams replay clean.
		p.IModel = channel.NewReplay(c.ReplayChannels.Get(dir+"/i"), c.ReplayPolicy)
		p.CModel = channel.NewReplay(c.ReplayChannels.Get(dir+"/c"), c.ReplayPolicy)
	}
	if c.RecordChannels != nil {
		p.IModel = channel.NewRecorder(p.IModel, c.RecordChannels.Stream(dir+"/i"))
		p.CModel = channel.NewRecorder(p.CModel, c.RecordChannels.Stream(dir+"/c"))
	}
	return p
}

// runScratch is the per-run mutable state a worker recycles across runs:
// the delivery-count map and the payload arena. RunMany at W workers keeps
// at most W scratches warm instead of allocating ~N map entries plus
// N×PayloadBytes per run. Reuse is safe because nothing in RunResult
// references either — the map is read out into counts and every payload
// consumer (checker, metrics, taps) retains IDs and sizes, not bytes.
type runScratch struct {
	got   map[uint64]int
	arena workload.Arena
}

var scratchPool = sync.Pool{New: func() any { return &runScratch{got: make(map[uint64]int)} }}

// Run executes the configured scenario to completion (all N datagrams
// delivered) or to the horizon, and returns the measurements.
func Run(c RunConfig) RunResult {
	if c.Horizon == 0 {
		c.Horizon = 10 * sim.Minute
	}
	if c.Metrics == nil {
		c.Metrics = metrics.New()
	}
	sched := sim.NewScheduler()
	sched.Instrument(c.Metrics)
	rng := sim.NewRNG(c.Seed)
	ab := c.pipe("ab")
	ab.Tap = c.TapAB
	ba := c.pipe("ba")
	ba.Tap = c.TapBA
	var inj *faults.Injector
	if c.Faults != nil && len(c.Faults.Events) > 0 {
		inj = faults.NewInjector(sched, c.Faults, c.Metrics)
		if c.Faults.NeedsRNG() {
			// Only corruption schedules consume randomness; splitting the
			// stream unconditionally would shift every legacy run's draws.
			inj.Seed(rng.Split())
		}
		inj.WrapPipeConfigs(&ab, &ba)
	}
	link := channel.NewAsymmetricLink(sched, ab, ba, rng)
	if inj != nil {
		inj.AttachLink(link)
	}

	sc := scratchPool.Get().(*runScratch)
	got := sc.got
	var lastDelivery sim.Time
	genuine := 0
	deliver := func(now sim.Time, dg arq.Datagram, _ uint32) {
		got[dg.ID]++
		// Only the workload's own datagrams (sequential IDs below N) count
		// toward completion: a ghost-forgery schedule delivers fabricated
		// high-bit IDs, and counting those would stop the run before the
		// genuine tail arrives.
		if dg.ID < uint64(c.N) && got[dg.ID] == 1 {
			genuine++
			lastDelivery = now
			// Stop early once everything has arrived at least once.
			if genuine == c.N {
				sched.Stop()
			}
		}
	}

	protoName := string(c.Protocol)
	if protoName == "" {
		protoName = string(LAMS)
	}
	reg, err := arq.ParseProtocol(protoName)
	if err != nil {
		panic("bench: " + err.Error())
	}
	ecfg := c.engineConfig(reg)

	var chk *faults.Checker
	var finish func(*RunResult)
	if c.CheckInvariants {
		// Engines without enforced recovery provide no RecoveryWindows; the
		// zero value keeps the checker's recovery rules dormant.
		var w arq.RecoveryWindows
		if wp, ok := ecfg.(arq.WindowsProvider); ok {
			w = wp.RecoveryWindows()
		}
		chk = faults.NewChecker(w)
		deliver = chk.WrapDeliver(deliver)
		if c.Faults != nil {
			if start, end, ok := c.Faults.CorruptionWindow(); ok {
				chk.Now = sched.Now
				// The engine's published stabilization bound governs the
				// convergence rule; engines without one get a generous
				// harness fallback (a handful of round trips).
				bound := 8 * 2 * c.OneWay
				if sb, ok := ecfg.(arq.StabilizationBound); ok {
					bound = sb.ConvergenceBound()
				}
				chk.SetCorruption(sim.Time(start), sim.Time(end), bound)
			}
		}
	}

	pair := reg.New(sched, link, ecfg, deliver, nil)
	if chk != nil {
		pair.SetProbe(chk.Probe())
		finish = func(res *RunResult) {
			res.Violations = chk.Finish(pair.Reclaim())
			res.ExcusedBreaches = uint64(len(chk.Excused()))
			res.ConvergenceTime = chk.ConvergenceTime()
		}
	}
	if inj != nil {
		inj.AttachEndpoint(pair, c.Icp)
	}
	pair.Start()
	m := pair.Metrics()
	var enqueue workload.Sink = pair.Enqueue
	if chk != nil {
		enqueue = chk.WrapSink(enqueue)
	}
	backlog := pair.Outstanding
	maxSpan := func() uint32 { return 0 }
	if sr, ok := pair.(arq.SpanReporter); ok {
		maxSpan = sr.MaxLiveSpan
	}
	finalRate := func() float64 { return 1 }
	if rr, ok := pair.(arq.RateReporter); ok {
		finalRate = rr.RateFraction
	}

	var gen *workload.Generator
	switch {
	case c.OfferInterval > 0 && c.Poisson:
		gen = workload.NewPoisson(sched, rng.Split(), enqueue, c.OfferInterval, c.PayloadBytes, c.N)
	case c.OfferInterval > 0:
		gen = workload.NewConstantRate(sched, enqueue, c.OfferInterval, c.PayloadBytes, c.N)
	default:
		gen = workload.NewSaturating(sched, enqueue, c.Icp, c.PayloadBytes, c.N)
	}
	gen.UseArena(&sc.arena)

	sched.RunUntil(sim.Time(c.Horizon))

	res := RunResult{
		Protocol:        c.Protocol,
		Delivered:       m.Delivered.Value(),
		FirstTx:         m.FirstTx.Value(),
		Retransmissions: m.Retransmissions.Value(),
		ControlSent:     m.ControlSent.Value(),
		MeanHolding:     m.MeanHoldingTime(),
		MaxHolding:      sim.Duration(m.HoldingTime.Max()),
		MeanDelay:       sim.Duration(m.DeliveryDelay.Mean()),
		SendBufMean:     m.SendBufOcc.Mean(),
		SendBufMax:      m.SendBufOcc.Max(),
		RecvBufMax:      m.RecvBufOcc.Max(),
		RecvDropped:     m.RecvDropped.Value(),
		RateChanges:     m.RateChanges.Value(),
		Recoveries:      m.Recoveries.Value(),
		Failures:        m.Failures.Value(),
		FinalBacklog:    backlog(),
		MaxLiveSpan:     maxSpan(),
		FinalRate:       finalRate(),
	}
	for id, n := range got {
		if id < uint64(c.N) && n > 1 {
			res.Duplicates += uint64(n - 1)
		}
	}
	res.Lost = c.N - genuine
	res.Elapsed = sim.Duration(lastDelivery)
	if lastDelivery > 0 {
		bits := float64(genuine) * float64(c.PayloadBytes) * 8
		res.Efficiency = bits / (c.RateBps * lastDelivery.Seconds())
	}
	if genuine > 0 {
		res.TransPerFrame = float64(res.FirstTx+res.Retransmissions) / float64(genuine)
	}
	if finish != nil {
		finish(&res)
	}
	res.Snapshot = c.Metrics.Snapshot()
	// The result is fully extracted; recycle the scratch. Everything built
	// from the arena (payloads, frames in the dead scheduler) is
	// unreachable once this frame returns, and the next run re-zeroes
	// each allocation.
	clear(sc.got)
	sc.arena.Reset()
	scratchPool.Put(sc)
	// The scheduler is done: donate its retired-event freelist to the
	// process-wide pool so the next run's scheduler starts warm.
	sched.Recycle()
	return res
}

// Analytical builds the analysis parameters matching a RunConfig, using the
// configured per-frame error probabilities when the models carry them
// (channel.AnalyticModel — the validation experiments' FixedProb) and
// frame sizes from the codec. Non-analytic channels (BSC, Gilbert-Elliott,
// traces) yield NaN probabilities; render them as "-", never as 0.
func (c RunConfig) Analytical() analysis.Params {
	pf := modelProb(analyticModel(c.IModel, c.IModelSpec))
	pc := modelProb(analyticModel(c.CModel, c.CModelSpec))
	frameBytes := c.PayloadBytes + 21 // I-frame header + CRC
	ctrlBytes := 20                   // empty checkpoint
	return analysis.Params{
		PF:     pf,
		PC:     pc,
		R:      (2 * c.OneWay).Seconds(),
		Icp:    c.Icp.Seconds(),
		Cdepth: c.Cdepth,
		W:      c.W,
		Tf:     float64(frameBytes*8) / c.RateBps,
		Tc:     float64(ctrlBytes*8) / c.RateBps,
		Tproc:  c.Tproc.Seconds(),
		Alpha:  c.Alpha.Seconds(),
	}
}

// analyticModel resolves the effective model for the analysis: the
// instance when set, else a transient instantiation of the spec, else nil
// (a perfect channel).
func analyticModel(inst channel.ErrorModel, spec string) channel.ErrorModel {
	if inst != nil || spec == "" {
		return inst
	}
	return channel.MustParseModel(spec).New()
}

// modelProb extracts the per-frame error probability through the
// channel.AnalyticModel capability. A model without it has no closed-form
// probability, and the honest answer is NaN — the old FixedProb type
// switch silently returned 0, making every other channel read as
// error-free in the analytic columns.
func modelProb(m channel.ErrorModel) float64 {
	if m == nil {
		return 0 // nil means Perfect
	}
	if am, ok := m.(channel.AnalyticModel); ok {
		return am.MeanFrameErrorProb()
	}
	return math.NaN()
}

// fmtProb renders an analytic probability for tables: "-" for NaN (the
// channel has no closed form), %.3g otherwise.
func fmtProb(p float64) string {
	if math.IsNaN(p) {
		return "-"
	}
	return fmt.Sprintf("%.3g", p)
}

// Check is a pass/fail assertion of one of the paper's shape claims.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// Result is one regenerated table/figure plus its shape checks.
type Result struct {
	ID     string
	Title  string
	Table  *stats.Table
	Series []*stats.Series
	Checks []Check
	Notes  []string
	// Snapshots carries selected runs' full metrics snapshots, keyed by a
	// label the experiment chooses (e.g. "LAMS-DLC@N=8000"). Experiments
	// attach them where the protocol-internals view adds something the
	// table cannot show; cmd/lamstables -metrics prints them as JSON.
	Snapshots map[string]metrics.Snapshot
}

// check records an assertion.
func (r *Result) check(name string, pass bool, format string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
}

// Passed reports whether every check passed.
func (r *Result) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Render formats the result for terminal output.
func (r *Result) Render() string {
	out := fmt.Sprintf("=== %s: %s ===\n", r.ID, r.Title)
	if r.Table != nil {
		out += r.Table.String()
	}
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		out += fmt.Sprintf("check [%s] %s: %s\n", status, c.Name, c.Detail)
	}
	return out
}

// fmtDur renders a duration rounded for tables.
func fmtDur(d sim.Duration) string {
	switch {
	case d >= sim.Second:
		return fmt.Sprintf("%.3gs", d.Seconds())
	case d >= sim.Millisecond:
		return fmt.Sprintf("%.3gms", float64(d)/float64(sim.Millisecond))
	default:
		return fmt.Sprintf("%.3gus", float64(d)/float64(sim.Microsecond))
	}
}

// fmtRatio renders a/b guarding division by zero.
func fmtRatio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", a/b)
}

// near reports |a−b| ≤ tol·max(|a|,|b|).
func near(a, b, tol float64) bool {
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return true
	}
	return math.Abs(a-b) <= tol*m
}
