package bench

import "testing"

// withConstellationShards mirrors withWorkers for the constellation knob.
func withConstellationShards(t *testing.T, n int, fn func()) {
	t.Helper()
	SetConstellationShards(n)
	defer SetConstellationShards(0)
	fn()
}

// TestE19ShardCountInvariance pins the sharded engine's determinism
// contract at the experiment level, in the same style as the worker-count
// pins above it in this package: the full E19 render — delivery counts,
// delay percentiles, handover churn, utilization, executed events, round
// count — must be byte-identical at 1 shard and 8 shards.
func TestE19ShardCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("constellation suite skipped in -short mode")
	}
	var one, eight string
	withConstellationShards(t, 1, func() { one = E19ConstellationScale().Render() })
	withConstellationShards(t, 8, func() { eight = E19ConstellationScale().Render() })
	if one != eight {
		t.Fatalf("E19 output differs between 1 and 8 shards:\n--- shards=1\n%s\n--- shards=8\n%s", one, eight)
	}
}

func TestSetConstellationShards(t *testing.T) {
	SetConstellationShards(3)
	if got := ConstellationShards(); got != 3 {
		t.Fatalf("ConstellationShards() = %d, want 3", got)
	}
	SetConstellationShards(-1) // negative restores the default
	if got := ConstellationShards(); got < 1 || got > 8 {
		t.Fatalf("default ConstellationShards() = %d", got)
	}
}
