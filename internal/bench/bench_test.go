package bench

import (
	"math"
	"strings"
	"testing"

	"repro/internal/channel"
	"repro/internal/sim"
)

func TestRunPerfectChannel(t *testing.T) {
	c := Base()
	c.N = 200
	res := Run(c)
	if res.Lost != 0 {
		t.Fatalf("lost %d on perfect channel", res.Lost)
	}
	if res.Duplicates != 0 {
		t.Fatalf("%d duplicates", res.Duplicates)
	}
	if res.Retransmissions != 0 {
		t.Fatal("retransmissions on perfect channel")
	}
	if res.Efficiency <= 0 || res.Efficiency > 1 {
		t.Fatalf("efficiency = %v", res.Efficiency)
	}
	if res.TransPerFrame != 1 {
		t.Fatalf("s̄ = %v, want 1", res.TransPerFrame)
	}
}

func TestRunHDLCAndGBN(t *testing.T) {
	for _, proto := range []Protocol{SRHDLC, GBNHDLC} {
		c := withErrors(Base(), 0.05, 0.01)
		c.Protocol = proto
		c.N = 200
		res := Run(c)
		if res.Lost != 0 {
			t.Fatalf("%v lost %d", proto, res.Lost)
		}
		if res.TransPerFrame < 1 {
			t.Fatalf("%v s̄ = %v", proto, res.TransPerFrame)
		}
	}
	if LAMS.String() == "" || SRHDLC.String() == "" || GBNHDLC.String() == "" || Protocol("bogus").String() == "" {
		t.Fatal("protocol names")
	}
}

func TestRunDeterministic(t *testing.T) {
	c := withErrors(Base(), 0.1, 0.02)
	c.N = 300
	a := Run(c)
	b := Run(c)
	if a.Retransmissions != b.Retransmissions || a.Elapsed != b.Elapsed {
		t.Fatalf("nondeterministic run: %+v vs %+v", a, b)
	}
}

func TestAnalyticalMapping(t *testing.T) {
	c := withErrors(Base(), 0.1, 0.02)
	p := c.Analytical()
	if p.PF != 0.1 || p.PC != 0.02 {
		t.Fatal("error probabilities not mapped")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("mapped params invalid: %v", err)
	}
	// Models without a closed-form per-frame probability map to NaN (the
	// analytic columns render "-"), never to a silent 0.
	c.IModel = &channel.BSC{BER: 1e-6}
	if !math.IsNaN(c.Analytical().PF) {
		t.Fatal("BSC should map to NaN, not a fixed P_F")
	}
}

func TestResultRendering(t *testing.T) {
	r := &Result{ID: "EX", Title: "demo"}
	r.check("always", true, "fine")
	r.check("never", false, "broken")
	out := r.Render()
	for _, want := range []string{"EX", "demo", "PASS", "FAIL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if r.Passed() {
		t.Fatal("Passed with a failing check")
	}
}

func TestByID(t *testing.T) {
	if ByID("E1") == nil || ByID("E12") == nil {
		t.Fatal("known experiment missing")
	}
	if ByID("E99") != nil {
		t.Fatal("unknown experiment resolved")
	}
}

func TestHelpers(t *testing.T) {
	if fmtDur(2*sim.Second) != "2s" {
		t.Fatalf("fmtDur s: %q", fmtDur(2*sim.Second))
	}
	if fmtDur(3*sim.Millisecond) != "3ms" {
		t.Fatalf("fmtDur ms: %q", fmtDur(3*sim.Millisecond))
	}
	if fmtDur(5*sim.Microsecond) != "5us" {
		t.Fatalf("fmtDur us: %q", fmtDur(5*sim.Microsecond))
	}
	if fmtRatio(1, 0) != "inf" {
		t.Fatal("fmtRatio zero")
	}
	if fmtRatio(3, 2) != "1.50x" {
		t.Fatalf("fmtRatio: %q", fmtRatio(3, 2))
	}
	if !near(100, 101, 0.02) || near(100, 150, 0.02) || !near(0, 0, 0.1) {
		t.Fatal("near")
	}
}

// TestExperimentsPass runs the full experiment suite and requires every
// shape check to pass — the repository-level statement that the paper's
// claims reproduce. This is the long tail of the test suite (~seconds).
func TestExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	for _, res := range All() {
		res := res
		t.Run(res.ID, func(t *testing.T) {
			for _, c := range res.Checks {
				if !c.Pass {
					t.Errorf("%s check %q failed: %s\n%s", res.ID, c.Name, c.Detail, res.Table.String())
				}
			}
		})
	}
}
