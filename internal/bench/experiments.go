package bench

import (
	"bytes"
	"fmt"
	"math"

	"repro/internal/analysis"
	"repro/internal/arq"
	"repro/internal/channel"
	_ "repro/internal/engines" // E18/E20 sweep the full engine registry
	"repro/internal/faults"
	"repro/internal/fec"
	"repro/internal/lamsdlc"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Base returns the canonical scenario of the paper's environment: a
// 4,000 km laser crosslink at 300 Mbps with 1 KiB I-frames, checkpointed
// every 10 ms at depth 3, against SR-HDLC with a 64-frame window and
// α = R/2 of timeout slack.
func Base() RunConfig {
	return RunConfig{
		Protocol:     LAMS,
		N:            2000,
		PayloadBytes: 1024,
		RateBps:      300e6,
		OneWay:       13340 * sim.Microsecond, // 4,000 km
		Icp:          10 * sim.Millisecond,
		Cdepth:       3,
		W:            64,
		Alpha:        13 * sim.Millisecond,
		Tproc:        10 * sim.Microsecond, // < t_f: the receive buffer stays transparent (§3.4)
		Seed:         1,
	}
}

// withErrors sets FixedProb error models.
func withErrors(c RunConfig, pf, pc float64) RunConfig {
	c.IModel = channel.FixedProb{P: pf}
	c.CModel = channel.FixedProb{P: pc}
	return c
}

// E1MeanPeriods regenerates the s̄ comparison: the mean number of
// transmissions per delivered I-frame for LAMS-DLC vs SR-HDLC, swept over
// the I-frame error probability, against the closed forms
// s̄_LAMS = 1/(1−P_F) and s̄_HDLC = 1/(1−(P_F+P_C−P_F·P_C)).
func E1MeanPeriods() *Result {
	r := &Result{
		ID:    "E1",
		Title: "mean transmissions per I-frame (s̄): NAK-only vs pos-ack ARQ",
		Table: stats.NewTable("", "P_F", "P_C", "s_LAMS(anal)", "s_LAMS(sim)", "s_HDLC(anal)", "s_HDLC(sim)"),
	}
	pcOf := func(pf float64) float64 { return pf / 4 } // piggyback-free control channel
	okShape := true
	okMatch := true
	pfs := []float64{0.02, 0.05, 0.1, 0.2, 0.3}
	cfgs := make([]RunConfig, 0, 2*len(pfs))
	for _, pf := range pfs {
		cl := withErrors(Base(), pf, pcOf(pf))
		cl.N = 3000
		ch := cl
		ch.Protocol = SRHDLC
		cfgs = append(cfgs, cl, ch)
	}
	results := RunMany(cfgs)
	for i, pf := range pfs {
		pc := pcOf(pf)
		lams, hd := results[2*i], results[2*i+1]
		p := cfgs[2*i].Analytical()
		r.Table.AddRowf(pf, pc, p.SBarLAMS(), lams.TransPerFrame, p.SBarHDLC(), hd.TransPerFrame)
		// Simulated HDLC acknowledges cumulatively, so its empirical s̄ is
		// a hair above LAMS rather than the model's full product form;
		// require the weak ordering in sim and the strict one analytically.
		if hd.TransPerFrame < lams.TransPerFrame-0.005 || p.SBarHDLC() <= p.SBarLAMS() {
			okShape = false
		}
		if !near(lams.TransPerFrame, p.SBarLAMS(), 0.06) {
			okMatch = false
		}
	}
	r.check("pos-ack retransmits more", okShape,
		"s̄_HDLC ≥ s̄_LAMS in simulation and strictly more in the model")
	r.check("LAMS matches 1/(1-P_F)", okMatch,
		"simulated s̄_LAMS within 6%% of the closed form")
	r.Notes = append(r.Notes,
		"the implemented SR-HDLC acknowledges cumulatively (one RR per window), so a lost ack",
		"rarely forces a retransmission; the model's per-frame-ack assumption makes the printed",
		"s̄_HDLC an upper bound. The gap the paper cares about reappears as window stall in E4/E6.")
	return r
}

// E2LowTrafficDelay regenerates the low-traffic D_low(N) comparison: total
// time to safely deliver N I-frames, analysis vs simulation, LAMS vs HDLC.
func E2LowTrafficDelay() *Result {
	r := &Result{
		ID:    "E2",
		Title: "low-traffic delivery time D_low(N)",
		Table: stats.NewTable("", "N", "LAMS anal", "LAMS sim", "HDLC anal", "HDLC sim"),
	}
	sLams := &stats.Series{Label: "lams"}
	sHdlc := &stats.Series{Label: "hdlc"}
	pf, pc := 0.05, 0.01
	ns := []int{8, 16, 32, 48, 64}
	cfgs := make([]RunConfig, 0, 2*len(ns))
	for _, n := range ns {
		cl := withErrors(Base(), pf, pc)
		cl.N = n
		ch := cl
		ch.Protocol = SRHDLC
		cfgs = append(cfgs, cl, ch)
	}
	results := RunMany(cfgs)
	for i, n := range ns {
		lams, hd := results[2*i], results[2*i+1]
		p := cfgs[2*i].Analytical()
		r.Table.AddRow(fmt.Sprint(n),
			fmtDur(analysis.Dur(p.DLowLAMS(n))), fmtDur(lams.Elapsed),
			fmtDur(analysis.Dur(p.DLowHDLC(n, analysis.PaperPrinted))), fmtDur(hd.Elapsed))
		sLams.Add(float64(n), lams.Elapsed.Seconds())
		sHdlc.Add(float64(n), hd.Elapsed.Seconds())
	}
	r.Series = []*stats.Series{sLams, sHdlc}
	r.check("delay grows with N", sLams.Monotone(1, 0.02) && sHdlc.Monotone(1, 0.02),
		"both protocols' D_low increase with N")
	// §4's verdict at low traffic: "nearly equivalent if s̄_LAMS equals
	// s̄_HDLC and α is small", but α >> n̄_cp in a highly mobile network
	// tips it to LAMS. Check both regimes on the model, and that the
	// simulation lands within 2x of its analysis column.
	pSmall := withErrors(Base(), pf, pc).Analytical()
	if !near(pSmall.DLowLAMS(64), pSmall.DLowHDLC(64, analysis.PaperPrinted), 0.35) {
		r.check("small-α regime nearly equivalent", false,
			"D_low differs by more than 35%% at α=R/2")
	} else {
		r.check("small-α regime nearly equivalent", true,
			"LAMS %.4gs vs HDLC %.4gs", pSmall.DLowLAMS(64), pSmall.DLowHDLC(64, analysis.PaperPrinted))
	}
	pBig := pSmall
	pBig.Alpha = 0.5 // a highly mobile constellation
	r.check("large-α regime favours LAMS", pBig.DLowHDLC(64, analysis.PaperPrinted) > pBig.DLowLAMS(64),
		"at α=500ms: HDLC %.4gs vs LAMS %.4gs", pBig.DLowHDLC(64, analysis.PaperPrinted), pBig.DLowLAMS(64))
	okClose := true
	for i, pt := range sLams.Points {
		n := int(pt.X)
		if pt.Y > 2*pSmall.DLowLAMS(n) || sHdlc.Points[i].Y > 2*pSmall.DLowHDLC(n, analysis.PaperPrinted) {
			okClose = false
		}
	}
	r.check("simulation tracks the model", okClose, "sim delays within 2x of the closed forms")
	return r
}

// E3HoldingAndBuffer regenerates the holding-time and transparent-buffer
// table: mean sender holding time H_frame and buffer occupancy for
// LAMS-DLC (finite, ≈ B_LAMS) vs SR-HDLC (backlog grows without bound
// under sustained arrivals).
func E3HoldingAndBuffer() *Result {
	r := &Result{
		ID:    "E3",
		Title: "holding time H_frame and transparent buffer size B_LAMS",
		Table: stats.NewTable("", "P_F", "H anal", "H sim", "B_LAMS anal", "sbuf sim(max)", "HDLC backlog@end"),
	}
	okHold := true
	okBuf := true
	okHdlc := false
	pfs := []float64{0.01, 0.05, 0.1, 0.2}
	cfgs := make([]RunConfig, 0, 2*len(pfs))
	for _, pf := range pfs {
		cl := withErrors(Base(), pf, pf/4)
		p := cl.Analytical()

		// Both protocols under the §4 buffer model: sustained arrivals
		// just inside LAMS-DLC's sustainable rate 1/(s̄·t_f) — the wire
		// must carry s̄ transmissions per delivered frame, so offering at
		// the raw 1/t_f of the paper's idealized deterministic model
		// would overload any ARQ. LAMS's occupancy must stabilize near
		// B_LAMS; the SR-HDLC backlog accumulates without bound because
		// every window turn wastes a round trip.
		cl.N = 80000
		cl.OfferInterval = sim.Duration(1.1 * p.SBarLAMS() * p.Tf * float64(sim.Second))
		cl.Horizon = 2 * sim.Second
		ch := cl
		ch.Protocol = SRHDLC
		cfgs = append(cfgs, cl, ch)
	}
	results := RunMany(cfgs)
	for i, pf := range pfs {
		cl := cfgs[2*i]
		lams, hd := results[2*i], results[2*i+1]
		p := cl.Analytical()

		r.Table.AddRow(fmt.Sprint(pf),
			fmtDur(analysis.Dur(p.HFrameLAMS())), fmtDur(lams.MeanHolding),
			fmt.Sprintf("%.0f", p.BLAMS()), fmt.Sprintf("%.0f", lams.SendBufMax),
			fmt.Sprint(hd.FinalBacklog))
		if !near(float64(lams.MeanHolding), p.HFrameLAMS()*float64(sim.Second), 0.25) {
			okHold = false
		}
		if lams.SendBufMax > 3*p.BLAMS() {
			okBuf = false
		}
		if hd.FinalBacklog > 4*cl.W {
			okHdlc = true // backlog clearly outgrew the window at least once
		}
	}
	r.check("holding matches s̄(R+t_f+t_c+t_proc+(n̄cp−½)I_cp)", okHold,
		"simulated mean holding within 25%% of H_frame")
	r.check("LAMS buffer transparent", okBuf,
		"sender occupancy bounded by ~B_LAMS under saturation")
	r.check("HDLC buffer diverges", okHdlc,
		"SR-HDLC backlog grows far beyond its window under 1/t_f arrivals")
	return r
}

// E4ThroughputVsTraffic regenerates the headline figure: throughput
// efficiency η as channel traffic N grows, LAMS-DLC vs SR-HDLC, analysis
// and simulation.
func E4ThroughputVsTraffic() *Result {
	r := &Result{
		ID:    "E4",
		Title: "throughput efficiency η vs channel traffic N (high traffic)",
		Table: stats.NewTable("", "N", "η_LAMS anal", "η_LAMS sim", "η_HDLC anal", "η_HDLC sim", "gain sim"),
	}
	sL := &stats.Series{Label: "lams-sim"}
	sH := &stats.Series{Label: "hdlc-sim"}
	pf, pc := 0.05, 0.0125
	ns := []int{250, 500, 1000, 2000, 4000, 8000}
	cfgs := make([]RunConfig, 0, 2*len(ns))
	for _, n := range ns {
		cl := withErrors(Base(), pf, pc)
		cl.N = n
		ch := cl
		ch.Protocol = SRHDLC
		cfgs = append(cfgs, cl, ch)
	}
	results := RunMany(cfgs)
	for i, n := range ns {
		lams, hd := results[2*i], results[2*i+1]
		p := cfgs[2*i].Analytical()
		r.Table.AddRow(fmt.Sprint(n),
			fmt.Sprintf("%.3f", p.EtaLAMS(n)), fmt.Sprintf("%.3f", lams.Efficiency),
			fmt.Sprintf("%.3f", p.EtaHDLC(n, analysis.PaperPrinted)), fmt.Sprintf("%.3f", hd.Efficiency),
			fmtRatio(lams.Efficiency, hd.Efficiency))
		sL.Add(float64(n), lams.Efficiency)
		sH.Add(float64(n), hd.Efficiency)
	}
	r.Series = []*stats.Series{sL, sH}
	// Attach the protocol-internals view of the heaviest point per
	// protocol: the snapshot lets a reader reconcile the efficiency row
	// with what the layers actually did (first-tx vs retx vs control).
	last2 := len(results) - 2
	r.Snapshots = map[string]metrics.Snapshot{
		fmt.Sprintf("LAMS-DLC@N=%d", ns[len(ns)-1]): results[last2].Snapshot,
		fmt.Sprintf("SR-HDLC@N=%d", ns[len(ns)-1]):  results[last2+1].Snapshot,
	}
	r.check("η_LAMS rises with N", sL.Monotone(1, 0.03),
		"efficiency amortizes s̄R + δ as N grows")
	okWin := true
	for i := range sL.Points {
		if sL.Points[i].Y <= sH.Points[i].Y {
			okWin = false
		}
	}
	r.check("LAMS wins at every N", okWin, "η_LAMS(sim) > η_HDLC(sim) throughout")
	last := len(sL.Points) - 1
	r.check("the gap is large", sL.Points[last].Y > 3*sH.Points[last].Y,
		"η_LAMS %.3f vs η_HDLC %.3f at N=8000 (window-stall dominated)",
		sL.Points[last].Y, sH.Points[last].Y)
	return r
}

// E5ThroughputVsBER regenerates the η-vs-BER figure with FEC-derived frame
// error probabilities: I-frames on Hamming(7,4), control frames on the
// stronger repetition code (assumption 4).
func E5ThroughputVsBER() *Result {
	r := &Result{
		ID:    "E5",
		Title: "throughput efficiency η vs channel BER (FEC-derived P_F, P_C)",
		Table: stats.NewTable("", "BER", "P_F", "P_C", "η_LAMS sim", "η_HDLC sim", "gain"),
	}
	sL := &stats.Series{Label: "lams"}
	sH := &stats.Series{Label: "hdlc"}
	base := Base()
	frameBits := (base.PayloadBytes + 21) * 8
	ctrlBits := 20 * 8
	bers := []float64{1e-6, 1e-5, 1e-4, 3e-4, 1e-3, 2e-3}
	cfgs := make([]RunConfig, 0, 2*len(bers))
	for _, ber := range bers {
		pf := fec.Hamming74.FrameErrorProb(ber, frameBits)
		pc := fec.Repetition3.FrameErrorProb(ber, ctrlBits)
		cl := withErrors(base, pf, pc)
		cl.N = 2000
		ch := cl
		ch.Protocol = SRHDLC
		cfgs = append(cfgs, cl, ch)
	}
	results := RunMany(cfgs)
	for i, ber := range bers {
		pf := fec.Hamming74.FrameErrorProb(ber, frameBits)
		pc := fec.Repetition3.FrameErrorProb(ber, ctrlBits)
		lams, hd := results[2*i], results[2*i+1]
		r.Table.AddRow(fmt.Sprintf("%.0e", ber),
			fmt.Sprintf("%.2e", pf), fmt.Sprintf("%.2e", pc),
			fmt.Sprintf("%.3f", lams.Efficiency), fmt.Sprintf("%.3f", hd.Efficiency),
			fmtRatio(lams.Efficiency, hd.Efficiency))
		sL.Add(ber, lams.Efficiency)
		sH.Add(ber, hd.Efficiency)
	}
	r.Series = []*stats.Series{sL, sH}
	r.check("η degrades with BER", sL.Monotone(-1, 0.03),
		"LAMS efficiency falls as the channel worsens")
	okWin := true
	for i := range sL.Points {
		if sL.Points[i].Y <= sH.Points[i].Y {
			okWin = false
		}
	}
	r.check("LAMS wins across the BER range", okWin, "η_LAMS > η_HDLC at every BER")
	return r
}

// E6ThroughputVsDistance regenerates the η-vs-link-distance figure across
// the paper's 2,000–10,000 km range, with α tied to R (mobile
// constellation).
func E6ThroughputVsDistance() *Result {
	r := &Result{
		ID:    "E6",
		Title: "throughput efficiency η vs link distance (2,000–10,000 km)",
		Table: stats.NewTable("", "km", "R", "η_LAMS sim", "η_HDLC sim", "gain"),
	}
	sL := &stats.Series{Label: "lams"}
	sH := &stats.Series{Label: "hdlc"}
	kms := []float64{2000, 4000, 6000, 8000, 10000}
	cfgs := make([]RunConfig, 0, 2*len(kms))
	for _, km := range kms {
		oneWay := sim.Duration(km * 1e3 / 2.99792458e8 * float64(sim.Second))
		cl := withErrors(Base(), 0.05, 0.0125)
		cl.OneWay = oneWay
		cl.Alpha = oneWay // α = R/2
		cl.N = 2000
		ch := cl
		ch.Protocol = SRHDLC
		cfgs = append(cfgs, cl, ch)
	}
	results := RunMany(cfgs)
	for i, km := range kms {
		oneWay := cfgs[2*i].OneWay
		lams, hd := results[2*i], results[2*i+1]
		r.Table.AddRow(fmt.Sprint(km), fmtDur(2*oneWay),
			fmt.Sprintf("%.3f", lams.Efficiency), fmt.Sprintf("%.3f", hd.Efficiency),
			fmtRatio(lams.Efficiency, hd.Efficiency))
		sL.Add(km, lams.Efficiency)
		sH.Add(km, hd.Efficiency)
	}
	r.Series = []*stats.Series{sL, sH}
	r.check("HDLC degrades with distance", sH.Monotone(-1, 0.03),
		"window stall grows with R")
	gainFirst := sL.Points[0].Y / sH.Points[0].Y
	gainLast := sL.Points[len(sL.Points)-1].Y / sH.Points[len(sH.Points)-1].Y
	r.check("LAMS advantage grows with distance", gainLast > gainFirst,
		"gain %.1fx at 2,000 km vs %.1fx at 10,000 km", gainFirst, gainLast)
	return r
}

// E7BurstResilience regenerates the §3.3 burst-error claim: cumulative
// NAKs ride out bursts shorter than C_depth·W_cp without resynchronization,
// where an event-based pos-ack scheme loses a window.
func E7BurstResilience() *Result {
	r := &Result{
		ID:    "E7",
		Title: "burst errors: cumulative NAK vs C_depth·W_cp (30ms here)",
		Table: stats.NewTable("", "burst", "vs CdWcp", "LAMS dlv", "dup", "LAMS η", "recoveries", "HDLC dlv", "HDLC η"),
	}
	base := Base()
	cdwcp := sim.Scale(base.Icp, base.Cdepth)
	okShort := true
	okNoRecovery := true
	okLoss := true
	bursts := []sim.Duration{5 * sim.Millisecond, 15 * sim.Millisecond, 25 * sim.Millisecond, 60 * sim.Millisecond}
	cfgs := make([]RunConfig, 0, 2*len(bursts))
	for _, burst := range bursts {
		mk := func() *channel.BurstTrain {
			return &channel.BurstTrain{
				Period:   250 * sim.Millisecond,
				BurstLen: burst,
				Offset:   40 * sim.Millisecond,
				BaseBER:  1e-7,
			}
		}
		cl := Base()
		cl.N = 3000
		cl.IModel = mk()
		cl.CModel = mk()
		ch := cl
		ch.Protocol = SRHDLC
		cfgs = append(cfgs, cl, ch)
	}
	results := RunMany(cfgs)
	for i, burst := range bursts {
		cl, ch := cfgs[2*i], cfgs[2*i+1]
		lams, hd := results[2*i], results[2*i+1]
		rel := "<"
		if burst > cdwcp {
			rel = ">"
		}
		r.Table.AddRow(fmtDur(burst), rel,
			fmt.Sprint(cl.N-lams.Lost), fmt.Sprint(lams.Duplicates),
			fmt.Sprintf("%.3f", lams.Efficiency), fmt.Sprint(lams.Recoveries),
			fmt.Sprint(uint64(ch.N)-uint64(hd.Lost)), fmt.Sprintf("%.3f", hd.Efficiency))
		if lams.Lost > 0 || hd.Lost > 0 {
			okLoss = false
		}
		if burst < cdwcp && lams.Failures > 0 {
			okShort = false
		}
		if burst < cdwcp && lams.Recoveries > 0 {
			okNoRecovery = false
		}
	}
	r.check("zero loss through every burst", okLoss,
		"all datagrams delivered regardless of burst length")
	r.check("short bursts never trigger enforced recovery", okNoRecovery,
		"cumulative NAKs absorb bursts < C_depth*W_cp without resynchronization (§3.3)")
	r.check("short bursts never simulate link failure", okShort,
		"no failure declarations for bursts < C_depth*W_cp")
	return r
}

// E8FailureDetection regenerates the inconsistency-gap / failure-detection
// bound: the time from killing the link to the sender declaring failure,
// swept over C_depth, against the expected response + C_depth·W_cp bound.
func E8FailureDetection() *Result {
	r := &Result{
		ID:    "E8",
		Title: "link-failure detection latency vs C_depth",
		Table: stats.NewTable("", "C_depth", "bound", "detected", "within"),
	}
	okBound := true
	okMono := true
	cds := []int{1, 2, 3, 5, 8}
	// E8 drives its own scheduler (link kill mid-run) rather than Run, so it
	// rides the engine's worker pool directly.
	type e8point struct {
		bound, detect sim.Duration
		within        bool
	}
	points := mapIndexed(len(cds), func(pi int) e8point {
		base := Base()
		cfg := base.lamsConfig()
		cfg.CumulationDepth = cds[pi]
		sched := sim.NewScheduler()
		link := channel.NewLink(sched, base.pipe("ab"), sim.NewRNG(7))
		var failedAt sim.Time
		pair := lamsdlc.NewPair(sched, link, cfg, nil, func(now sim.Time, _ string) { failedAt = now })
		pair.Start()
		for i := 0; i < 50; i++ {
			pair.Sender.Enqueue(arq.Datagram{ID: uint64(i), Payload: make([]byte, 512)})
		}
		sched.RunFor(300 * sim.Millisecond)
		killAt := sched.Now()
		link.Fail()
		sched.RunFor(10 * sim.Second)
		detect := failedAt.Sub(killAt)
		// Bound: the armed checkpoint timer (C_depth·W_cp plus phase
		// grace, plus one interval of phase) then the failure timer
		// (response + C_depth·W_cp).
		bound := cfg.CheckpointTimerTimeout() + cfg.CheckpointInterval + cfg.FailureTimeout()
		return e8point{bound: bound, detect: detect, within: failedAt != 0 && detect <= bound}
	})
	prev := sim.Duration(0)
	for i, cd := range cds {
		pt := points[i]
		r.Table.AddRow(fmt.Sprint(cd), fmtDur(pt.bound), fmtDur(pt.detect), fmt.Sprint(pt.within))
		if !pt.within {
			okBound = false
		}
		if pt.detect < prev {
			okMono = false
		}
		prev = pt.detect
	}
	r.check("detection within the §3.2 bound", okBound,
		"declared within C_depth·W_cp + (response + C_depth·W_cp)")
	r.check("latency grows with C_depth", okMono,
		"deeper cumulation trades detection speed for burst immunity")
	return r
}

// E9FlowControl regenerates the §3.4 Stop-Go experiment: a receiver slower
// than the wire, swept over its buffer capacity.
func E9FlowControl() *Result {
	r := &Result{
		ID:    "E9",
		Title: "Stop-Go flow control with an overloaded receiver",
		Table: stats.NewTable("", "recvCap", "delivered", "dropped", "rateChanges", "finalRate", "lost"),
	}
	okLoss := true
	okEngaged := true
	caps := []int{8, 16, 32, 64}
	cfgs := make([]RunConfig, 0, len(caps))
	for _, cap := range caps {
		cl := Base()
		cl.N = 1500
		cl.RecvCap = cap
		cl.Tproc = 150 * sim.Microsecond // ~5× the frame time: receiver-bound
		cl.Horizon = 5 * sim.Minute
		cfgs = append(cfgs, cl)
	}
	results := RunMany(cfgs)
	for i, cap := range caps {
		res := results[i]
		r.Table.AddRow(fmt.Sprint(cap), fmt.Sprint(res.Delivered),
			fmt.Sprint(res.RecvDropped), fmt.Sprint(res.RateChanges),
			fmt.Sprintf("%.3f", res.FinalRate), fmt.Sprint(res.Lost))
		if res.Lost > 0 {
			okLoss = false
		}
		if res.RateChanges == 0 {
			okEngaged = false
		}
	}
	r.check("overflow discards never lose data", okLoss,
		"discarded frames are NAKed and retransmitted; zero datagram loss")
	r.check("Stop-Go engages", okEngaged,
		"the sender adjusted its rate under receiver overload")
	return r
}

// E10NumberingSize regenerates the §2.3/§3.3 numbering-size bound: the
// widest span of simultaneously live sequence numbers stays within the
// resolving period divided by t_f.
func E10NumberingSize() *Result {
	r := &Result{
		ID:    "E10",
		Title: "bounded numbering: live sequence span vs resolving-period bound",
		Table: stats.NewTable("", "P_F", "I_cp", "bound(frames)", "max span sim", "within"),
	}
	ok := true
	pfs := []float64{0.02, 0.1, 0.25}
	icps := []sim.Duration{5 * sim.Millisecond, 10 * sim.Millisecond, 20 * sim.Millisecond}
	cfgs := make([]RunConfig, 0, len(pfs)*len(icps))
	for _, pf := range pfs {
		for _, icp := range icps {
			cl := withErrors(Base(), pf, pf/4)
			cl.N = 4000
			cl.Icp = icp
			cfgs = append(cfgs, cl)
		}
	}
	results := RunMany(cfgs)
	for i, pf := range pfs {
		for j, icp := range icps {
			res := results[i*len(icps)+j]
			p := cfgs[i*len(icps)+j].Analytical()
			// The analytical bound assumes the sender is never idle; add
			// the holding-time inflation factor s̄ for the sweep's worst
			// case.
			bound := p.NumberingSizeLAMS() * p.SBarLAMS()
			within := float64(res.MaxLiveSpan) <= bound
			r.Table.AddRow(fmt.Sprint(pf), fmtDur(icp),
				fmt.Sprintf("%.0f", bound), fmt.Sprint(res.MaxLiveSpan), fmt.Sprint(within))
			if !within {
				ok = false
			}
		}
	}
	r.check("numbering size bounded", ok,
		"live span ≤ s̄·(R + ½I_cp + C_depth·I_cp)/t_f in every cell")
	return r
}

// E11Validation cross-checks the simulator against the closed forms on a
// grid: empirical s̄ vs 1/(1−P_F), holding time vs H_frame, and completion
// time vs D_high^LAMS.
func E11Validation() *Result {
	r := &Result{
		ID:    "E11",
		Title: "simulation vs analysis validation grid (LAMS-DLC)",
		Table: stats.NewTable("", "P_F", "P_C", "N", "s̄ anal/sim", "H anal/sim", "D anal/sim"),
	}
	okS, okH, okD := true, true, true
	pfs := []float64{0.02, 0.1, 0.2}
	pcs := []float64{0.002, 0.02}
	cfgs := make([]RunConfig, 0, len(pfs)*len(pcs))
	for _, pf := range pfs {
		for _, pc := range pcs {
			cl := withErrors(Base(), pf, pc)
			cl.N = 6000
			cfgs = append(cfgs, cl)
		}
	}
	results := RunMany(cfgs)
	for i, pf := range pfs {
		for j, pc := range pcs {
			n := 6000
			res := results[i*len(pcs)+j]
			p := cfgs[i*len(pcs)+j].Analytical()
			sA, sS := p.SBarLAMS(), res.TransPerFrame
			hA := p.HFrameLAMS() * float64(sim.Second)
			hS := float64(res.MeanHolding)
			dA := p.DHighLAMS(n) * float64(sim.Second)
			dS := float64(res.Elapsed)
			r.Table.AddRow(fmt.Sprint(pf), fmt.Sprint(pc), fmt.Sprint(n),
				fmt.Sprintf("%.3f/%.3f", sA, sS),
				fmt.Sprintf("%s/%s", fmtDur(sim.Duration(hA)), fmtDur(sim.Duration(hS))),
				fmt.Sprintf("%s/%s", fmtDur(sim.Duration(dA)), fmtDur(sim.Duration(dS))))
			if !near(sA, sS, 0.05) {
				okS = false
			}
			if !near(hA, hS, 0.25) {
				okH = false
			}
			if !near(dA, dS, 0.30) {
				okD = false
			}
		}
	}
	r.check("s̄ within 5%", okS, "transmissions per frame match the geometric model")
	r.check("holding within 25%", okH, "H_frame matches (the model folds t_f queueing into one term)")
	r.check("completion within 30%", okD,
		"D_high matches (the model measures to release, the sim to delivery)")
	return r
}

// E12VariantAblation re-evaluates the headline comparison under both
// readings of the paper's D_retrn^HDLC formula (the printed coefficients
// are swapped relative to its own derivation), showing the conclusions are
// insensitive to the typo.
func E12VariantAblation() *Result {
	r := &Result{
		ID:    "E12",
		Title: "HDLC D_retrn variant ablation (paper typo)",
		Table: stats.NewTable("", "P_F", "η_HDLC printed", "η_HDLC rederived", "η_LAMS", "LAMS wins both"),
	}
	ok := true
	n := 4000
	for _, pf := range []float64{0.02, 0.1, 0.25} {
		cl := withErrors(Base(), pf, pf/4)
		p := cl.Analytical()
		printed := p.EtaHDLC(n, analysis.PaperPrinted)
		rederived := p.EtaHDLC(n, analysis.Rederived)
		lams := p.EtaLAMS(n)
		wins := lams > printed && lams > rederived
		r.Table.AddRow(fmt.Sprint(pf),
			fmt.Sprintf("%.4f", printed), fmt.Sprintf("%.4f", rederived),
			fmt.Sprintf("%.4f", lams), fmt.Sprint(wins))
		if !wins {
			ok = false
		}
	}
	r.check("conclusion invariant to the typo", ok,
		"η_LAMS exceeds η_HDLC under both variants at every P_F")
	r.Notes = append(r.Notes,
		"printed form: α weighted by (1−P_F)(1−P_C); re-derived: α weighted by 1−(1−P_F)(1−P_C)")
	return r
}

// E13StutterAblation evaluates the Stutter/mixed-mode ARQ idea the paper's
// §1 surveys (Stutter GBN, SR+ST of Miller & Lin): use the idle time of the
// window-stalled SR sender to repeat unacknowledged frames. The experiment
// sweeps the frame error probability and compares SR-HDLC with and without
// stutter, and against LAMS-DLC (which has no idle time to harvest).
func E13StutterAblation() *Result {
	r := &Result{
		ID:    "E13",
		Title: "stutter (SR+ST) ablation: harvesting SR-HDLC's idle time",
		Table: stats.NewTable("", "P_F", "η SR", "η SR+ST", "extra tx SR+ST", "η LAMS"),
	}
	okNotWorse := true
	okStillLoses := true
	pfs := []float64{0.05, 0.15, 0.3}
	cfgs := make([]RunConfig, 0, 3*len(pfs))
	for _, pf := range pfs {
		base := withErrors(Base(), pf, pf/4)
		base.N = 1000
		sr := base
		sr.Protocol = SRHDLC
		st := sr
		st.Stutter = true
		cfgs = append(cfgs, sr, st, base)
	}
	results := RunMany(cfgs)
	for i, pf := range pfs {
		plain, stuttered, lams := results[3*i], results[3*i+1], results[3*i+2]
		extra := float64(stuttered.Retransmissions) / float64(cfgs[3*i+1].N)
		r.Table.AddRow(fmt.Sprint(pf),
			fmt.Sprintf("%.3f", plain.Efficiency),
			fmt.Sprintf("%.3f", stuttered.Efficiency),
			fmt.Sprintf("%.2f/frame", extra),
			fmt.Sprintf("%.3f", lams.Efficiency))
		if stuttered.Efficiency < plain.Efficiency*0.95 {
			okNotWorse = false
		}
		if lams.Efficiency <= stuttered.Efficiency {
			okStillLoses = false
		}
	}
	r.check("stutter never hurts goodput", okNotWorse,
		"repeats ride otherwise-idle capacity (≥95%% of plain SR at every P_F)")
	r.check("stutter cannot close the gap to LAMS", okStillLoses,
		"idle-time harvesting does not remove the window stall LAMS avoids")
	r.Notes = append(r.Notes,
		"stutter preempts timeout recovery: duplicates of damaged frames often arrive before the SREJ round trip completes")
	return r
}

// E14HybridFECTradeoff regenerates the ARQ+FEC trade the paper's §1–2
// survey frames (Type-I hybrid schemes): stronger codes pay a constant
// code-rate tax on every frame but suppress retransmissions. Sweeping the
// channel BER with LAMS-DLC under three I-frame codecs exposes the
// crossover: below it, uncoded ARQ wins (retransmissions are rare anyway);
// above it, the coded schemes win (the channel is too dirty for bare ARQ).
func E14HybridFECTradeoff() *Result {
	r := &Result{
		ID:    "E14",
		Title: "hybrid ARQ/FEC: code-rate tax vs retransmission savings (LAMS-DLC)",
		Table: stats.NewTable("", "BER", "η uncoded", "η hamming(7,4)", "η repetition-3"),
	}
	type codec struct {
		name   string
		scheme fec.Scheme
	}
	codecs := []codec{
		{"uncoded", fec.Uncoded},
		{"hamming", fec.Hamming74},
		{"rep3", fec.Repetition3},
	}
	series := map[string]*stats.Series{}
	for _, c := range codecs {
		series[c.name] = &stats.Series{Label: c.name}
	}
	bers := []float64{1e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3}
	frameBits := (Base().PayloadBytes + 21) * 8
	cfgs := make([]RunConfig, 0, len(bers)*len(codecs))
	for _, ber := range bers {
		for _, c := range codecs {
			cl := Base()
			// Large N so the per-frame code-rate tax dominates the
			// constant straggler-recovery tail; a tight horizon bounds
			// the hopeless uncoded runs at high BER (they report 0).
			cl.N = 5000
			cl.Horizon = 20 * sim.Second
			cl.IModel = &channel.BSC{BER: ber, Scheme: c.scheme}
			cl.CModel = &channel.BSC{BER: ber, Scheme: fec.Repetition3}
			cl.IExpansion = c.scheme.Overhead()
			cl.CExpansion = fec.Repetition3.Overhead()
			cfgs = append(cfgs, cl)
		}
	}
	results := RunMany(cfgs)
	for i, ber := range bers {
		row := []string{fmt.Sprintf("%.0e", ber)}
		for j, c := range codecs {
			res := results[i*len(codecs)+j]
			eff := res.Efficiency
			if res.Lost > 0 {
				eff = 0 // could not complete within the horizon
			}
			row = append(row, fmt.Sprintf("%.3f", eff))
			series[c.name].Add(ber, eff)
		}
		r.Table.AddRow(row...)
	}
	r.Series = []*stats.Series{series["uncoded"], series["hamming"], series["rep3"]}
	// Shape: clean channel -> uncoded wins (no code-rate tax); dirty
	// channel -> hamming overtakes uncoded.
	un, ham := series["uncoded"], series["hamming"]
	r.check("clean channel favours bare ARQ", un.Points[0].Y > ham.Points[0].Y,
		"at BER %.0e: uncoded %.3f vs hamming %.3f", bers[0], un.Points[0].Y, ham.Points[0].Y)
	last := len(bers) - 1
	r.check("dirty channel favours coding", ham.Points[last].Y > un.Points[last].Y,
		"at BER %.0e: hamming %.3f vs uncoded %.3f", bers[last], ham.Points[last].Y, un.Points[last].Y)
	if x, ok := stats.Crossover(un, ham); ok {
		r.Notes = append(r.Notes, fmt.Sprintf("uncoded/hamming crossover near BER %.1e", x))
	}
	r.check("frame size matters", frameBits > 0, "sanity")
	return r
}

// E15InSequenceCost quantifies §2.3's reliability-constraint ladder on one
// link: Go-Back-N (discard out-of-order, full in-sequence at the link),
// Selective Repeat (hold out-of-order in a window-sized receive buffer),
// and LAMS-DLC (forward immediately, resequence at the destination).
func E15InSequenceCost() *Result {
	r := &Result{
		ID:    "E15",
		Title: "the cost of in-sequence delivery: GBN vs SR vs LAMS-DLC",
		Table: stats.NewTable("", "P_F", "η GBN", "η SR", "η LAMS", "GBN retx/frame", "SR rbuf(max)", "LAMS rbuf(max)"),
	}
	okLadder := true
	okBuffers := true
	pfs := []float64{0.02, 0.1, 0.25}
	cfgs := make([]RunConfig, 0, 3*len(pfs))
	for _, pf := range pfs {
		base := withErrors(Base(), pf, pf/4)
		base.N = 1000
		gbn := base
		gbn.Protocol = GBNHDLC
		sr := base
		sr.Protocol = SRHDLC
		cfgs = append(cfgs, gbn, sr, base)
	}
	results := RunMany(cfgs)
	for i, pf := range pfs {
		g, s, l := results[3*i], results[3*i+1], results[3*i+2]
		n := cfgs[3*i].N
		r.Table.AddRow(fmt.Sprint(pf),
			fmt.Sprintf("%.3f", g.Efficiency), fmt.Sprintf("%.3f", s.Efficiency),
			fmt.Sprintf("%.3f", l.Efficiency),
			fmt.Sprintf("%.2f", float64(g.Retransmissions)/float64(n)),
			fmt.Sprintf("%.0f", s.RecvBufMax), fmt.Sprintf("%.0f", l.RecvBufMax))
		if !(g.Efficiency <= s.Efficiency*1.02 && s.Efficiency < l.Efficiency) {
			okLadder = false
		}
		// SR must buffer out-of-order frames; LAMS's receive buffer stays
		// transparent (only frames awaiting t_proc).
		if s.RecvBufMax == 0 || l.RecvBufMax > s.RecvBufMax {
			okBuffers = false
		}
	}
	r.check("efficiency ladder η_GBN ≤ η_SR < η_LAMS", okLadder,
		"each relaxation of the in-sequence constraint buys throughput")
	r.check("receive-buffer ladder", okBuffers,
		"SR holds a window of out-of-order frames; the LAMS receive buffer is transparent")
	return r
}

// E16DelayThroughput regenerates the introduction's framing observation:
// "there is a tradeoff point between high user throughput and low user
// delay in end-to-end data transmission". Offered load sweeps from light to
// near-saturation; mean enqueue-to-delivery delay and achieved goodput are
// measured for LAMS-DLC with a transparent-sized sending buffer.
func E16DelayThroughput() *Result {
	r := &Result{
		ID:    "E16",
		Title: "delay vs throughput as offered load rises (LAMS-DLC)",
		Table: stats.NewTable("", "load", "goodput (Mb/s)", "mean delay", "sendbuf(mean)"),
	}
	sDelay := &stats.Series{Label: "delay"}
	sTput := &stats.Series{Label: "goodput"}
	pf, pc := 0.05, 0.0125
	base := withErrors(Base(), pf, pc)
	p := base.Analytical()
	// Sustainable inter-arrival: s̄·t_f.
	sustain := p.SBarLAMS() * p.Tf
	loads := []float64{0.3, 0.6, 0.9, 1.0, 1.1}
	cfgs := make([]RunConfig, 0, len(loads))
	for _, load := range loads {
		cl := base
		cl.Poisson = true // stochastic arrivals expose queueing delay
		cl.OfferInterval = sim.Duration(sustain / load * float64(sim.Second))
		cl.N = int(2.0 / (sustain / load)) // ~2 virtual seconds of arrivals
		cl.Horizon = sim.Minute
		cfgs = append(cfgs, cl)
	}
	results := RunMany(cfgs)
	for i, load := range loads {
		res := results[i]
		goodput := res.Efficiency * cfgs[i].RateBps / 1e6
		r.Table.AddRow(fmt.Sprintf("%.2f", load),
			fmt.Sprintf("%.1f", goodput),
			fmtDur(res.MeanDelay),
			fmt.Sprintf("%.1f", res.SendBufMean))
		sDelay.Add(load, res.MeanDelay.Seconds())
		sTput.Add(load, goodput)
	}
	r.Series = []*stats.Series{sDelay, sTput}
	r.check("throughput rises with load", sTput.Monotone(1, 0.05),
		"goodput tracks offered load below saturation")
	r.check("delay rises with load", sDelay.Monotone(1, 0.05),
		"queueing adds delay as the load point approaches saturation")
	first, last := sDelay.Points[0].Y, sDelay.Points[len(sDelay.Points)-1].Y
	r.check("the knee is visible", last > 2*first,
		"past saturation (110%% load) delay %.4gs dwarfs light-load delay %.4gs", last, first)
	return r
}

// E17CheckpointIntervalAblation sweeps W_cp, the protocol's central tuning
// knob. §3.4: "If we decrease the check point interval, that holding time
// will be decreased... the sending buffer is under control" — but each
// checkpoint costs control-channel capacity and receiver work. The sweep
// exposes both sides: holding time/buffer shrink with W_cp while the
// control-frame count grows inversely.
func E17CheckpointIntervalAblation() *Result {
	r := &Result{
		ID:    "E17",
		Title: "checkpoint interval W_cp ablation: holding time vs control overhead",
		Table: stats.NewTable("", "W_cp", "H anal", "H sim", "B_LAMS", "ctrl frames", "η"),
	}
	sHold := &stats.Series{Label: "holding"}
	sCtrl := &stats.Series{Label: "control"}
	okHold := true
	prevCtrl := uint64(1 << 62)
	okCtrl := true
	icps := []sim.Duration{2 * sim.Millisecond, 5 * sim.Millisecond,
		10 * sim.Millisecond, 20 * sim.Millisecond, 40 * sim.Millisecond}
	cfgs := make([]RunConfig, 0, len(icps))
	for _, icp := range icps {
		cl := withErrors(Base(), 0.05, 0.0125)
		cl.N = 3000
		cl.Icp = icp
		cfgs = append(cfgs, cl)
	}
	results := RunMany(cfgs)
	for i, icp := range icps {
		res := results[i]
		p := cfgs[i].Analytical()
		r.Table.AddRow(fmtDur(icp),
			fmtDur(analysis.Dur(p.HFrameLAMS())), fmtDur(res.MeanHolding),
			fmt.Sprintf("%.0f", p.BLAMS()),
			fmt.Sprint(res.ControlSent),
			fmt.Sprintf("%.3f", res.Efficiency))
		sHold.Add(icp.Seconds(), res.MeanHolding.Seconds())
		sCtrl.Add(icp.Seconds(), float64(res.ControlSent))
		if !near(res.MeanHolding.Seconds(), p.HFrameLAMS(), 0.3) {
			okHold = false
		}
		if res.ControlSent > prevCtrl {
			okCtrl = false
		}
		prevCtrl = res.ControlSent
	}
	r.Series = []*stats.Series{sHold, sCtrl}
	r.check("holding time grows with W_cp", sHold.Monotone(1, 0.05),
		"buffer control by shrinking the checkpoint interval works as §3.4 claims")
	r.check("holding matches the closed form across the sweep", okHold,
		"H_frame tracks s̄(R+t_f+t_c+t_proc+(n̄cp−½)W_cp) within 30%%")
	r.check("control overhead falls with W_cp", okCtrl,
		"fewer checkpoints per unit time at larger intervals")
	return r
}

// E18MultiHopRelay exercises the protocol-agnostic endpoint layer: every
// registered engine carries the same store-and-forward traffic across a
// 3-node relay line (src → transit → dst), and each must hand the
// destination every packet exactly once, in order — the reliability
// contract is per-protocol, but the network layer above it is one codebase.
// The table doubles as the registry's conformance report: a newly
// registered engine shows up (and is held to the contract) automatically.
func E18MultiHopRelay() *Result {
	r := &Result{
		ID:    "E18",
		Title: "multi-hop relay over every registered engine",
		Table: stats.NewTable("", "protocol", "delivered", "dup", "misordered", "fwd", "elapsed"),
	}
	const n = 400
	names := arq.Protocols()
	type e18point struct {
		display    string
		delivered  int
		misordered int
		forwarded  uint64
		dup        int
		elapsed    sim.Duration
	}
	points := mapIndexed(len(names), func(pi int) e18point {
		reg, err := arq.ParseProtocol(names[pi])
		if err != nil {
			panic(err)
		}
		sched := sim.NewScheduler()
		roundTrip := 2 * 6670 * sim.Microsecond // ~2,000 km hops
		eng := arq.MustEngine(reg.Name, reg.Defaults(roundTrip))
		// Model specs, not instances: each hop's pipes instantiate their
		// own models inside channel.NewPipe — the spec path the node layer
		// (and anything else that fans one PipeConfig across many links)
		// must use for stateful models. FixedProb resolves to the exact
		// instances the hand-built config used, so draws are unchanged.
		pipe := channel.PipeConfig{
			RateBps:    300e6,
			Delay:      channel.ConstantDelay(6670 * sim.Microsecond),
			IModelSpec: "fixed:p=0.05",
			CModelSpec: "fixed:p=0.01",
		}
		nodes, _ := node.Line(sched, 3, eng, pipe, sim.NewRNG(uint64(41+pi)))
		src, dst := nodes[0], nodes[2]
		pt := e18point{display: reg.Display}
		seen := make(map[uint64]int, n)
		var last sim.Time
		dst.OnDeliver = func(now sim.Time, p node.Packet) {
			seen[p.Seq]++
			if p.Seq != uint64(pt.delivered) {
				pt.misordered++
			}
			pt.delivered++
			last = now
		}
		for i := 0; i < n; i++ {
			src.Send(2, []byte{byte(i), byte(i >> 8)})
		}
		sched.RunFor(30 * sim.Second)
		for _, k := range seen {
			if k > 1 {
				pt.dup += k - 1
			}
		}
		pt.forwarded = nodes[1].Stats.Forwarded.Value()
		pt.elapsed = sim.Duration(last)
		return pt
	})
	okAll := true
	for _, pt := range points {
		r.Table.AddRow(pt.display, fmt.Sprint(pt.delivered), fmt.Sprint(pt.dup),
			fmt.Sprint(pt.misordered), fmt.Sprint(pt.forwarded), fmtDur(pt.elapsed))
		if pt.delivered != n || pt.dup != 0 || pt.misordered != 0 {
			okAll = false
		}
	}
	r.check("every engine relays exactly-once in order", okAll,
		"%d/%d packets per protocol, zero duplicates, zero misordering across 2 hops", n, n)
	return r
}

// E20CorruptionConvergence is the state-corruption fault sweep (ISSUE 9):
// every registry engine faces the scramble/ghost/reorder adversaries, alone
// and combined, under the §3.2 checker's convergence rule. The contract
// differs by engine and the table shows it: SS-ARQ (Dolev-style
// self-stabilizing) must converge from ANY state — corruption-era
// casualties excused, zero violations and zero failure declarations after
// its published bound. The legacy engines carry the BOUNDED contract:
// breaches inside the era are excused, a post-era N2/§3.2 failure
// declaration is legitimate triage (DESIGN.md §13), but an unexcused
// contract violation — silent loss, unexplained duplicate, wedged link with
// no declaration — fails the experiment for any engine.
func E20CorruptionConvergence() *Result {
	r := &Result{
		ID:    "E20",
		Title: "state-corruption sweep: convergence and casualties per engine",
		Table: stats.NewTable("", "engine", "schedule", "excused", "conv time", "violations", "failures", "delivered"),
	}
	schedules := []struct{ name, spec string }{
		{"scramble", "scramble@100ms+400ms:period=10ms"},
		{"ghost", "ghost@100ms+400ms:period=2ms"},
		{"reorder", "reorder@100ms+400ms:jitter=2ms"},
		{"all", "scramble@100ms+400ms:period=10ms; ghost@100ms+400ms:period=2ms; reorder@100ms+400ms:jitter=2ms"},
	}
	engines := []Protocol{LAMS, SRHDLC, GBNHDLC, "ssarq"}
	cfgs := make([]RunConfig, 0, len(engines)*len(schedules))
	for _, eng := range engines {
		for _, sch := range schedules {
			spec, err := faults.ParseSpec(sch.spec)
			if err != nil {
				panic(err)
			}
			c := Base()
			c.Protocol = eng
			c.N = 2000
			c.OfferInterval = 500 * sim.Microsecond // arrivals span the era
			c.Horizon = 30 * sim.Second
			c.N2 = 16 // corruption demands supervision: a wedged HDLC link must declare, not hang
			c.Faults = spec
			c.CheckInvariants = true
			cfgs = append(cfgs, c)
		}
	}
	results := RunMany(cfgs)
	ssarqClean, legacyClean, adversaryBit := true, true, false
	for i, res := range results {
		eng := engines[i/len(schedules)]
		sch := schedules[i%len(schedules)]
		r.Table.AddRow(eng.String(), sch.name,
			fmt.Sprint(res.ExcusedBreaches),
			fmtDur(res.ConvergenceTime),
			fmt.Sprint(len(res.Violations)),
			fmt.Sprint(res.Failures),
			fmt.Sprint(res.Delivered))
		if res.ExcusedBreaches > 0 {
			adversaryBit = true
		}
		if eng == "ssarq" && (len(res.Violations) > 0 || res.Failures > 0) {
			ssarqClean = false
		}
		if eng != "ssarq" && len(res.Violations) > 0 {
			legacyClean = false
			for _, v := range res.Violations {
				r.Notes = append(r.Notes, fmt.Sprintf("%s/%s: %s", eng.String(), sch.name, v))
			}
		}
	}
	r.check("ssarq self-stabilizes under every schedule", ssarqClean,
		"no violations, no failure declarations after the convergence bound")
	r.check("legacy engines hold the bounded contract", legacyClean,
		"era casualties excused; post-era breaches are fixes or documented triage, never silent")
	r.check("the adversary actually bit", adversaryBit,
		"at least one schedule produced excused corruption-era breaches")
	return r
}

// E21TraceReplay exercises the trace-driven channel engine end to end
// (Kuhn et al., arXiv 1205.3831: link-layer results need physical-layer
// error traces): a live Gilbert-Elliott run is recorded through
// channel.Recorder, the trace round-trips through the binary file format,
// and the reloaded trace is replayed against the SAME engine — the replayed
// run must be byte-identical to the live one (every counter of the metrics
// snapshot), for every registered engine. The same four traces then drive
// every OTHER engine too: the cross-replay rows show what a fixed recorded
// error process does to each protocol, which is the experimental setup the
// registry + trace seam exists for. The analytic P_F column renders "-":
// a Gilbert-Elliott channel has no closed-form per-frame probability, and
// pretending 0 was the bug the AnalyticModel capability fixed.
func E21TraceReplay() *Result {
	r := &Result{
		ID:    "E21",
		Title: "trace-driven channel record/replay over every registered engine",
		Table: stats.NewTable("", "protocol", "P_F(anal)", "delivered", "retx", "elapsed", "I-recs", "replay=live"),
	}
	const n = 400
	base := Base()
	base.N = n
	base.Seed = 21
	base.Horizon = 2 * sim.Minute
	// Tracking-loss bursts (§2.1) through the paper's FEC stack: ~4 ms bad
	// sojourns against a 10 ms checkpoint interval, control frames on the
	// stronger code.
	base.IModelSpec = "ge:gber=1e-7,bber=2e-3,mgood=40ms,mbad=4ms,fec=hamming74"
	base.CModelSpec = "ge:gber=1e-8,bber=5e-4,mgood=40ms,mbad=4ms,fec=rep3"

	okReplay := true
	okAnalytic := true
	for _, name := range arq.Protocols() {
		reg, err := arq.ParseProtocol(name)
		if err != nil {
			panic(err)
		}
		cfg := base
		cfg.Protocol = Protocol(reg.Name)

		// Record the live run. The recording set belongs to this run alone.
		rec := channel.NewTraceSet()
		liveCfg := cfg
		liveCfg.RecordChannels = rec
		live := Run(liveCfg)

		// Round-trip the trace through the binary format before replaying,
		// so the byte-identity pin covers the file encoding too.
		var buf bytes.Buffer
		if err := rec.Encode(&buf); err != nil {
			panic(err)
		}
		loaded, err := channel.ReadTraceSet(&buf)
		if err != nil {
			panic(err)
		}
		replayCfg := cfg
		replayCfg.ReplayChannels = loaded
		replay := Run(replayCfg)

		same := bytes.Equal(live.Snapshot.JSON(), replay.Snapshot.JSON()) &&
			live.Delivered == replay.Delivered && live.Elapsed == replay.Elapsed
		if !same {
			okReplay = false
		}
		pf := cfg.Analytical().PF
		if !math.IsNaN(pf) {
			okAnalytic = false
		}
		iRecs := len(loaded.Get("ab/i").Recs)
		r.Table.AddRow(live.Protocol.String(), fmtProb(pf),
			fmt.Sprint(live.Delivered), fmt.Sprint(live.Retransmissions),
			fmtDur(live.Elapsed), fmt.Sprint(iRecs), fmt.Sprint(same))
	}
	r.check("replayed run is byte-identical to its recorded live run", okReplay,
		"full metrics snapshot equality across %d engines, trace round-tripped through the file format",
		len(arq.Protocols()))
	r.check("Gilbert-Elliott channel is non-analytic (P_F renders '-')", okAnalytic,
		"modelProb yields NaN, not a silent 0")
	r.Notes = append(r.Notes,
		"record: live ge channel -> Recorder -> 4 streams (ab/i ab/c ba/i ba/c); replay: same streams as the only error process")
	return r
}

// All runs every experiment in order.
func All() []*Result {
	return []*Result{
		E1MeanPeriods(),
		E2LowTrafficDelay(),
		E3HoldingAndBuffer(),
		E4ThroughputVsTraffic(),
		E5ThroughputVsBER(),
		E6ThroughputVsDistance(),
		E7BurstResilience(),
		E8FailureDetection(),
		E9FlowControl(),
		E10NumberingSize(),
		E11Validation(),
		E12VariantAblation(),
		E13StutterAblation(),
		E14HybridFECTradeoff(),
		E15InSequenceCost(),
		E16DelayThroughput(),
		E17CheckpointIntervalAblation(),
		E18MultiHopRelay(),
		E19ConstellationScale(),
		E20CorruptionConvergence(),
		E21TraceReplay(),
	}
}

// ByID returns the experiment runner with the given ID, or nil.
func ByID(id string) func() *Result {
	m := map[string]func() *Result{
		"E1":  E1MeanPeriods,
		"E2":  E2LowTrafficDelay,
		"E3":  E3HoldingAndBuffer,
		"E4":  E4ThroughputVsTraffic,
		"E5":  E5ThroughputVsBER,
		"E6":  E6ThroughputVsDistance,
		"E7":  E7BurstResilience,
		"E8":  E8FailureDetection,
		"E9":  E9FlowControl,
		"E10": E10NumberingSize,
		"E11": E11Validation,
		"E12": E12VariantAblation,
		"E13": E13StutterAblation,
		"E14": E14HybridFECTradeoff,
		"E15": E15InSequenceCost,
		"E16": E16DelayThroughput,
		"E17": E17CheckpointIntervalAblation,
		"E18": E18MultiHopRelay,
		"E19": E19ConstellationScale,
		"E20": E20CorruptionConvergence,
		"E21": E21TraceReplay,
	}
	return m[id]
}
