package bench

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/channel"
)

// traceBase is a small stateful-channel scenario for record/replay tests.
func traceBase(seed uint64) RunConfig {
	c := Base()
	c.N = 150
	c.Seed = seed
	c.IModelSpec = "ge:gber=1e-7,bber=2e-3,mgood=40ms,mbad=4ms,fec=hamming74"
	c.CModelSpec = "ge:gber=1e-8,bber=5e-4,mgood=40ms,mbad=4ms,fec=rep3"
	return c
}

// record runs c live with a recording set attached and returns the result
// plus the trace round-tripped through the binary encoding (so the test
// covers the file format, not just the in-memory path).
func record(t *testing.T, c RunConfig) (RunResult, *channel.TraceSet) {
	t.Helper()
	rec := channel.NewTraceSet()
	c.RecordChannels = rec
	live := Run(c)
	var buf bytes.Buffer
	if err := rec.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := channel.ReadTraceSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return live, loaded
}

// TestTraceRoundTripSeeds pins the tracesmoke contract: for several seeds,
// a run recorded and then replayed from its own trace is byte-identical —
// same metrics snapshot, same delivery, same virtual clock.
func TestTraceRoundTripSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		c := traceBase(seed)
		live, loaded := record(t, c)

		rc := traceBase(seed)
		rc.ReplayChannels = loaded
		replay := Run(rc)

		if !bytes.Equal(live.Snapshot.JSON(), replay.Snapshot.JSON()) {
			t.Fatalf("seed %d: replay snapshot differs from live", seed)
		}
		if live.Delivered != replay.Delivered || live.Elapsed != replay.Elapsed {
			t.Fatalf("seed %d: replay result differs: %d/%v vs %d/%v",
				seed, live.Delivered, live.Elapsed, replay.Delivered, replay.Elapsed)
		}
	}
}

// TestTraceReplayWorkerInvariance fans a replay batch across the worker
// pool: a replayed TraceSet is shared read-only by concurrent runs, so the
// batch must come out identical at 1 and 8 workers (and identical to the
// live runs it was recorded from).
func TestTraceReplayWorkerInvariance(t *testing.T) {
	var cfgs []RunConfig
	var want []RunResult
	for seed := uint64(1); seed <= 4; seed++ {
		c := traceBase(seed)
		live, loaded := record(t, c)
		want = append(want, live)
		rc := traceBase(seed)
		rc.ReplayChannels = loaded
		cfgs = append(cfgs, rc)
	}

	var serial, parallel []RunResult
	withWorkers(t, 1, func() { serial = RunMany(cfgs) })
	withWorkers(t, 8, func() { parallel = RunMany(cfgs) })
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("replay batch differs between 1 and 8 workers")
	}
	for i := range want {
		if want[i].Delivered != serial[i].Delivered || want[i].Elapsed != serial[i].Elapsed {
			t.Fatalf("run %d: replay differs from the live run it was recorded from", i)
		}
	}
}

// TestTraceReplayEveryEngine replays one recorded channel against every
// registered ARQ engine — E21's core claim in miniature: the trace decouples
// the error process from the protocol under test.
func TestTraceReplayEveryEngine(t *testing.T) {
	for _, proto := range []Protocol{LAMS, SRHDLC, GBNHDLC} {
		c := traceBase(9)
		c.Protocol = proto
		live, loaded := record(t, c)
		rc := traceBase(9)
		rc.Protocol = proto
		rc.ReplayChannels = loaded
		replay := Run(rc)
		if !bytes.Equal(live.Snapshot.JSON(), replay.Snapshot.JSON()) {
			t.Fatalf("%v: replay snapshot differs from live", proto)
		}
	}
}

// TestAnalyticalModelProb pins the modelProb fix: channels without a
// closed-form per-frame probability must surface NaN (rendered "-"), not a
// silent 0 that reads as an error-free channel.
func TestAnalyticalModelProb(t *testing.T) {
	c := Base()
	if pf := c.Analytical().PF; pf != 0 {
		t.Fatalf("perfect channel PF = %v, want 0", pf)
	}

	c = withErrors(Base(), 0.05, 0.01)
	if pf := c.Analytical().PF; pf != 0.05 {
		t.Fatalf("fixed instance PF = %v, want 0.05", pf)
	}

	c = Base()
	c.IModelSpec, c.CModelSpec = "fixed:p=0.2", "fixed:p=0.04"
	a := c.Analytical()
	if a.PF != 0.2 || a.PC != 0.04 {
		t.Fatalf("fixed spec PF/PC = %v/%v, want 0.2/0.04", a.PF, a.PC)
	}

	c = Base()
	c.IModelSpec = "ge:gber=1e-7,bber=2e-3,mgood=40ms,mbad=4ms"
	if pf := c.Analytical().PF; !math.IsNaN(pf) {
		t.Fatalf("Gilbert-Elliott PF = %v, want NaN (no closed form)", pf)
	}

	if got := fmtProb(math.NaN()); got != "-" {
		t.Fatalf("fmtProb(NaN) = %q, want \"-\"", got)
	}
	if got := fmtProb(0.05); got != "0.05" {
		t.Fatalf("fmtProb(0.05) = %q", got)
	}
}
