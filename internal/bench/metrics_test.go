package bench

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/trace"
)

// TestSnapshotReconcilesLAMS is the acceptance check for the metrics layer:
// an E4-style run's registry snapshot must reconcile exactly with the
// aggregate measurements the experiment harness reports, and the per-cause
// counters must partition their totals. Any drift means an instrument and
// its arq.Metrics twin disagree about when an event happened.
func TestSnapshotReconcilesLAMS(t *testing.T) {
	c := withErrors(Base(), 0.05, 0.0125)
	c.N = 500
	res := Run(c)
	snap := res.Snapshot

	for name, want := range map[string]uint64{
		"lams_iframes_first_tx_total":    res.FirstTx,
		"lams_iframes_retx_total":        res.Retransmissions,
		"lams_delivered_total":           res.Delivered,
		"lams_enforced_recoveries_total": res.Recoveries,
		"lams_link_failures_total":       res.Failures,
		"lams_recv_dropped_total":        res.RecvDropped,
		"lams_rate_changes_total":        res.RateChanges,
	} {
		if got := snap.Counter(name); got != want {
			t.Errorf("%s = %d, want %d (aggregate)", name, got, want)
		}
	}

	// The per-cause retransmission counters partition the total.
	causes := snap.Counter("lams_retx_nak_total") +
		snap.Counter("lams_retx_coverage_total") +
		snap.Counter("lams_retx_enforced_total") +
		snap.Counter("lams_retx_resolving_total")
	if causes != res.Retransmissions {
		t.Errorf("retx causes sum to %d, want %d", causes, res.Retransmissions)
	}

	// The control-frame counters partition ControlSent.
	ctrl := snap.Counter("lams_checkpoints_sent_total") +
		snap.Counter("lams_enforced_naks_sent_total") +
		snap.Counter("lams_request_naks_sent_total")
	if ctrl != res.ControlSent {
		t.Errorf("control counters sum to %d, want %d", ctrl, res.ControlSent)
	}

	// Cross-layer: everything the protocol sent crossed one of the pipes.
	sent := snap.Counter("channel_frames_sent_total")
	if want := res.FirstTx + res.Retransmissions + res.ControlSent; sent != want {
		t.Errorf("channel_frames_sent_total = %d, want %d (firstTx+retx+control)", sent, want)
	}
	// The link never drops (it only corrupts): every launched frame lands
	// unless it was still in flight when the run stopped at full delivery.
	del, lost := snap.Counter("channel_frames_delivered_total"), snap.Counter("channel_frames_lost_total")
	if lost != 0 {
		t.Errorf("channel_frames_lost_total = %d on a link that never goes down", lost)
	}
	if del > sent {
		t.Errorf("delivered %d > sent %d", del, sent)
	}
	if inFlight := sent - del - lost; inFlight > 16 {
		t.Errorf("%d frames unaccounted for (sent %d, delivered %d, lost %d)", inFlight, sent, del, lost)
	}
	if res.Retransmissions == 0 {
		t.Error("noisy run produced no retransmissions; reconciliation is vacuous")
	}
}

// TestSnapshotReconcilesHDLC is the SR-HDLC variant of the reconciliation
// check.
func TestSnapshotReconcilesHDLC(t *testing.T) {
	c := withErrors(Base(), 0.05, 0.0125)
	c.Protocol = SRHDLC
	c.N = 500
	res := Run(c)
	snap := res.Snapshot

	for name, want := range map[string]uint64{
		"hdlc_iframes_first_tx_total": res.FirstTx,
		"hdlc_iframes_retx_total":     res.Retransmissions,
		"hdlc_delivered_total":        res.Delivered,
	} {
		if got := snap.Counter(name); got != want {
			t.Errorf("%s = %d, want %d (aggregate)", name, got, want)
		}
	}
	ctrl := snap.Counter("hdlc_rr_sent_total") +
		snap.Counter("hdlc_srej_sent_total") +
		snap.Counter("hdlc_rej_sent_total")
	if ctrl != res.ControlSent {
		t.Errorf("control counters sum to %d, want %d", ctrl, res.ControlSent)
	}
	sent := snap.Counter("channel_frames_sent_total")
	if want := res.FirstTx + res.Retransmissions + res.ControlSent; sent != want {
		t.Errorf("channel_frames_sent_total = %d, want %d (firstTx+retx+control)", sent, want)
	}
	if res.Retransmissions == 0 {
		t.Error("noisy run produced no retransmissions; reconciliation is vacuous")
	}
}

// TestTraceStreamDeterministicAcrossWorkers pins down that the JSONL event
// streams — not just the scalar results — are byte-identical whether the
// batch runs on one worker or eight. Each run gets its own exporter, so the
// only way streams could differ is nondeterminism inside a run.
func TestTraceStreamDeterministicAcrossWorkers(t *testing.T) {
	record := func(workers int) []string {
		var out []string
		withWorkers(t, workers, func() {
			cfgs := batchConfigs()
			bufs := make([]*bytes.Buffer, len(cfgs))
			for i := range cfgs {
				bufs[i] = &bytes.Buffer{}
				j := trace.NewJSONL(bufs[i])
				cfgs[i].TapAB = j.ChannelTap("A->B")
				cfgs[i].TapBA = j.ChannelTap("B->A")
			}
			RunMany(cfgs)
			for _, b := range bufs {
				out = append(out, b.String())
			}
		})
		return out
	}

	one := record(1)
	eight := record(8)
	if len(one) != len(eight) {
		t.Fatalf("stream counts differ: %d vs %d", len(one), len(eight))
	}
	for i := range one {
		if one[i] == "" {
			t.Fatalf("run %d recorded no events", i)
		}
		if one[i] != eight[i] {
			t.Fatalf("run %d: trace stream differs between 1 and 8 workers", i)
		}
	}
}

// ExampleRunConfig_metrics shows the snapshot surface an experiment sees.
func ExampleRunConfig_metrics() {
	c := Base()
	c.N = 50
	res := Run(c)
	fmt.Println(res.Snapshot.Counter("lams_delivered_total") == res.Delivered)
	// Output: true
}
