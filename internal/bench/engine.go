package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// This file is the parallel experiment engine. Every Run is hermetic — it
// owns its scheduler, RNG, link, and metrics, and its RunResult is a pure
// function of the RunConfig (including Seed) — so a batch of points is
// embarrassingly parallel. The engine fans points across a worker pool and
// writes each result into the slot matching its input index, which makes
// the output bit-identical regardless of worker count or completion order.

// workerCount is the configured pool size; 0 means GOMAXPROCS.
var workerCount atomic.Int64

// SetWorkers fixes the number of worker goroutines used by RunMany,
// SweepParallel, and the experiment tables. n <= 0 restores the default
// (GOMAXPROCS). Safe to call concurrently; batches already in flight keep
// the pool size they started with.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerCount.Store(int64(n))
}

// Workers returns the pool size the next batch will use.
func Workers() int {
	if n := workerCount.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// DeriveSeed maps a base seed and a point index to a statistically
// independent stream seed. It is sim.DeriveSeed re-exported at the layer
// sweeps are written against; the shard engine derives its per-link streams
// from the same function, so a sweep seed and a constellation seed expand
// identically.
func DeriveSeed(base uint64, i int) uint64 {
	return sim.DeriveSeed(base, i)
}

// RunMany executes every config and returns results in input order. Seeds
// are taken from the configs verbatim, so a RunMany batch reproduces the
// corresponding serial Run loop bit for bit at any worker count.
func RunMany(cfgs []RunConfig) []RunResult {
	return mapIndexed(len(cfgs), func(i int) RunResult {
		return Run(cfgs[i])
	})
}

// SweepParallel runs n replicate points derived from base: point i gets
// Seed DeriveSeed(base.Seed, i), then mutate (if non-nil) may further
// specialize the config. Results come back in point order.
func SweepParallel(base RunConfig, n int, mutate func(i int, c *RunConfig)) []RunResult {
	return mapIndexed(n, func(i int) RunResult {
		c := base
		c.Seed = DeriveSeed(base.Seed, i)
		if mutate != nil {
			mutate(i, &c)
		}
		return Run(c)
	})
}

// mapIndexed evaluates fn(0..n-1) on a pool of Workers() goroutines and
// collects the values by index. Work is handed out through an atomic
// counter, so stragglers never idle the pool. A panic in any worker is
// re-raised on the caller's goroutine after the pool drains.
func mapIndexed[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	workers := Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, fmt.Sprintf("bench: worker panic: %v", r))
				}
			}()
			for panicked.Load() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p)
	}
	return out
}
