package bench

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/stats"
)

// constellationShards is the shard-count knob for the constellation
// experiment family, mirroring the SetWorkers knob of the sweep engine:
// results are bit-identical at every count, so the setting is pure
// wall-clock policy. 0 means min(8, GOMAXPROCS).
var constellationShards atomic.Int64

// SetConstellationShards fixes the shard count used by E19 (and anything
// else that calls ConstellationShards). n <= 0 restores the default.
func SetConstellationShards(n int) {
	if n < 0 {
		n = 0
	}
	constellationShards.Store(int64(n))
}

// ConstellationShards returns the effective shard count.
func ConstellationShards() int {
	if n := constellationShards.Load(); n > 0 {
		return int(n)
	}
	if p := runtime.GOMAXPROCS(0); p < 8 {
		return p
	}
	return 8
}

// e19Sizes are the Walker grids the scale experiment sweeps; the paper's
// multi-satellite setting (§2) motivates the constellation, the shard
// engine makes the top end tractable.
var e19Sizes = []int{64, 256, 1024}

// E19ConstellationScale runs the standard constellation scenario — Walker
// grids with per-crosslink DLC sessions, polar handover churn, and
// permutation flows — at 64, 256 and 1,024 satellites on the sharded
// conservative engine. The table reports constellation-wide delivery time,
// handover churn and crosslink utilization versus size. Every figure is
// invariant across shard counts (see TestE19ShardCountInvariance); the
// shard knob only buys wall-clock time on multi-core hosts.
func E19ConstellationScale() *Result {
	r := &Result{
		ID:    "E19",
		Title: "constellation-scale sharded simulation (Walker grids, 64→1,024 satellites)",
		Table: stats.NewTable("", "sats", "flows", "delivered", "p50", "p95", "makespan", "handover", "util", "events", "rounds"),
	}
	okAll, completed1024 := true, false
	for _, n := range e19Sizes {
		cfg := shard.DefaultConfig(shard.WalkerGrid(n))
		cfg.Shards = ConstellationShards()
		if cfg.Shards > n {
			cfg.Shards = n
		}
		cfg.Seed = 7
		cfg.DatagramsPerFlow = 20
		rep, err := shard.Run(cfg)
		if err != nil {
			panic(err)
		}
		r.Table.AddRow(fmt.Sprint(rep.Sats), fmt.Sprint(rep.Flows),
			fmt.Sprintf("%d/%d", rep.Delivered, rep.Offered),
			fmtDur(rep.DelayP50), fmtDur(rep.DelayP95),
			fmtDur(sim.Duration(rep.Makespan)), fmt.Sprint(rep.Handover),
			fmt.Sprintf("%.6f", rep.Utilization),
			fmt.Sprint(rep.Events), fmt.Sprint(rep.Rounds))
		if rep.Delivered != rep.Offered || rep.Offered == 0 || rep.Unroutable != 0 {
			okAll = false
		}
		if n == 1024 && rep.Delivered == rep.Offered && rep.Offered > 0 {
			completed1024 = true
		}
	}
	r.check("every flow delivers everything at every size", okAll,
		"delivered == offered with zero unroutable flows at %v satellites", e19Sizes)
	r.check("the 1,024-satellite constellation runs to completion", completed1024,
		"full delivery on the largest grid")
	return r
}
