package orbit

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestOrbitPeriodLEO(t *testing.T) {
	// A 1000 km circular orbit has a period of roughly 105 minutes.
	o := Orbit{AltitudeM: 1000e3}
	p := o.Period()
	if p < 100*time.Minute || p > 110*time.Minute {
		t.Fatalf("period = %v, want ~105min", p)
	}
}

func TestPositionStaysOnSphere(t *testing.T) {
	f := func(altKm uint16, incDeg, raanDeg, phaseDeg uint16, seconds uint32) bool {
		o := Orbit{
			AltitudeM:      500e3 + float64(altKm%1500)*1e3,
			InclinationRad: float64(incDeg%180) * math.Pi / 180,
			RAANRad:        float64(raanDeg%360) * math.Pi / 180,
			PhaseRad:       float64(phaseDeg%360) * math.Pi / 180,
		}
		p := o.Position(time.Duration(seconds) * time.Second)
		return math.Abs(p.Norm()-o.Radius()) < 1 // metre tolerance
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPositionPeriodicity(t *testing.T) {
	o := Orbit{AltitudeM: 1000e3, InclinationRad: 1.0, RAANRad: 0.5, PhaseRad: 0.25}
	p0 := o.Position(0)
	p1 := o.Position(o.Period())
	if p1.Sub(p0).Norm() > 100 { // within 100 m after one period
		t.Fatalf("position after one period off by %v m", p1.Sub(p0).Norm())
	}
}

func TestInPlanePairConstantRange(t *testing.T) {
	l := InPlanePair(1000e3, 30)
	r0 := l.RangeM(0)
	for _, dt := range []time.Duration{time.Minute, 10 * time.Minute, time.Hour} {
		r := l.RangeM(dt)
		if math.Abs(r-r0) > 1 {
			t.Fatalf("in-plane range drifted: %v vs %v", r, r0)
		}
	}
	// Chord length for 30 degrees at radius ~7371 km is 2*r*sin(15°).
	want := 2 * (EarthRadiusM + 1000e3) * math.Sin(15*math.Pi/180)
	if math.Abs(r0-want) > 1 {
		t.Fatalf("range = %v, want %v", r0, want)
	}
}

func TestInPlanePairPaperDistances(t *testing.T) {
	// The paper's links are 2,000–10,000 km; check the geometry can produce
	// that range with reasonable separations.
	short := InPlanePair(1000e3, 16)
	long := InPlanePair(1000e3, 85)
	if d := short.RangeM(0); d < 1.8e6 || d > 2.4e6 {
		t.Fatalf("short link %v m", d)
	}
	if d := long.RangeM(0); d < 9e6 || d > 11e6 {
		t.Fatalf("long link %v m", d)
	}
}

func TestVisibilityBlockedByEarth(t *testing.T) {
	// Antipodal satellites at LEO cannot see each other through the Earth.
	l := InPlanePair(1000e3, 180)
	if l.Visible(0) {
		t.Fatal("antipodal satellites should be occluded")
	}
	// Close satellites can.
	l2 := InPlanePair(1000e3, 20)
	if !l2.Visible(0) {
		t.Fatal("nearby satellites should see each other")
	}
}

func TestCrossPlaneWindows(t *testing.T) {
	l := CrossPlanePair(1000e3, 60, 90, 0)
	horizon := 4 * l.A.Period()
	ws := l.Windows(horizon, 10*time.Second)
	if len(ws) == 0 {
		t.Fatal("no visibility windows found over four orbits")
	}
	var total time.Duration
	for _, w := range ws {
		if w.End <= w.Start {
			t.Fatalf("degenerate window %v", w)
		}
		total += w.Duration()
		// Every window midpoint must actually be visible.
		mid := w.Start + w.Duration()/2
		if !l.Visible(mid) {
			t.Fatalf("midpoint of %v not visible", w)
		}
	}
	if total >= horizon {
		t.Fatal("satellites in crossing planes should lose sight sometimes")
	}
	if ws[0].String() == "" {
		t.Fatal("window formatting broken")
	}
}

func TestWindowsEdgeAccuracy(t *testing.T) {
	l := CrossPlanePair(1000e3, 60, 90, 0)
	ws := l.Windows(2*l.A.Period(), 30*time.Second)
	if len(ws) == 0 {
		t.Skip("no window in horizon")
	}
	for _, w := range ws {
		// Just outside the refined edges visibility must flip within a
		// small guard band (bisection refines to ~1ms).
		if w.Start > 0 && l.Visible(w.Start-2*time.Millisecond) && !l.Visible(w.Start+2*time.Millisecond) {
			t.Fatalf("start edge of %v mislocated", w)
		}
	}
}

func TestStats(t *testing.T) {
	l := InPlanePair(1000e3, 30)
	w := Window{Start: 0, End: 10 * time.Minute}
	st := l.Stats(w, time.Second)
	if st.Samples == 0 {
		t.Fatal("no samples")
	}
	if math.Abs(st.MinM-st.MaxM) > 1 {
		t.Fatalf("constant-range link has spread %v", st.MaxM-st.MinM)
	}
	if math.Abs(st.MeanM-st.MidrangeM()) > 1 {
		t.Fatalf("mean %v vs midrange %v", st.MeanM, st.MidrangeM())
	}
	if st.VarM2 > 1 {
		t.Fatalf("variance %v for constant range", st.VarM2)
	}
	if st.AlphaM() > 1 {
		t.Fatalf("alpha %v for constant range", st.AlphaM())
	}
}

func TestStatsVaryingRange(t *testing.T) {
	l := CrossPlanePair(1000e3, 60, 30, 10)
	ws := l.Windows(2*l.A.Period(), 10*time.Second)
	if len(ws) == 0 {
		t.Skip("no window")
	}
	st := l.Stats(ws[0], time.Second)
	if st.MaxM <= st.MinM {
		t.Fatal("cross-plane range should vary")
	}
	if st.AlphaM() <= 0 {
		t.Fatal("alpha should be positive for varying range")
	}
	if st.TimeoutAlpha() <= 0 {
		t.Fatal("timeout alpha should be positive")
	}
	rt := st.RoundTrip()
	want := 2 * PropagationDelay(st.MidrangeM())
	if rt != want {
		t.Fatalf("RoundTrip = %v, want %v", rt, want)
	}
}

func TestPropagationDelay(t *testing.T) {
	d := PropagationDelay(2.99792458e8) // one light-second of range
	if d < 999*time.Millisecond || d > 1001*time.Millisecond {
		t.Fatalf("delay = %v, want ~1s", d)
	}
	// Paper's regime: 10–100 ms one-way for 3,000–30,000 km.
	if d := PropagationDelay(3e6); d < 9*time.Millisecond || d > 11*time.Millisecond {
		t.Fatalf("3000 km delay = %v", d)
	}
	// Round trip through the inverse.
	if r := RangeForDelay(PropagationDelay(5e6)); math.Abs(r-5e6) > 1 {
		t.Fatalf("RangeForDelay inverse off: %v", r)
	}
}

func TestVec3(t *testing.T) {
	v := Vec3{3, 4, 0}
	if v.Norm() != 5 {
		t.Fatalf("Norm = %v", v.Norm())
	}
	if got := v.Scale(2); got != (Vec3{6, 8, 0}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := v.Sub(Vec3{1, 1, 1}); got != (Vec3{2, 3, -1}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := v.Dot(Vec3{1, 2, 3}); got != 11 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestWindowsBadStepPanics(t *testing.T) {
	l := InPlanePair(1000e3, 30)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	l.Windows(time.Hour, 0)
}

func TestStatsBadStepPanics(t *testing.T) {
	l := InPlanePair(1000e3, 30)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	l.Stats(Window{0, time.Hour}, 0)
}

// TestWindowsAlwaysVisible covers the no-transition path of Windows: an
// in-plane close pair never loses line of sight, so the scan must return
// exactly one window spanning the whole horizon — both edges "touching" the
// horizon ends without ever entering the bisection.
func TestWindowsAlwaysVisible(t *testing.T) {
	l := InPlanePair(780e3, 45) // adjacent in-plane neighbors: constant range, clear LOS
	horizon := 2 * l.A.Period()
	ws := l.Windows(horizon, 10*time.Second)
	if len(ws) != 1 {
		t.Fatalf("always-visible pair: %d windows, want 1 (%v)", len(ws), ws)
	}
	if ws[0].Start != 0 || ws[0].End != horizon {
		t.Fatalf("window %v, want [0, %v]", ws[0], horizon)
	}
}

// TestWindowsNeverVisible covers the all-blocked path: two satellites
// antipodal in the same plane stay antipodal forever (same mean motion), so
// the Earth blocks the line of sight at every instant and Windows must
// return nothing.
func TestWindowsNeverVisible(t *testing.T) {
	l := InPlanePair(780e3, 180)
	horizon := 2 * l.A.Period()
	if l.Visible(0) {
		t.Fatal("antipodal pair visible at epoch — geometry broken")
	}
	ws := l.Windows(horizon, 10*time.Second)
	if len(ws) != 0 {
		t.Fatalf("never-visible pair returned windows: %v", ws)
	}
}

// TestWindowsTouchingHorizonEnds covers the boundary cases of the bisection
// scan: a window already open at t=0 must start exactly at 0 (no bisected
// leading edge), and a window still open at the horizon must be closed at
// exactly the horizon. Interior edges, by contrast, must be bisected strictly
// inside the scan range and agree with Visible on both sides.
func TestWindowsTouchingHorizonEnds(t *testing.T) {
	// A phase offset chosen so the pair is visible at the epoch: the scan
	// starts inside a window.
	l := CrossPlanePair(1000e3, 60, 60, 290)
	if !l.Visible(0) {
		t.Fatal("test geometry must be visible at epoch")
	}
	// Pick a horizon that lands inside a visibility window so both ends of
	// the scan are "in window": search forward from two periods for an
	// instant that is visible.
	horizon := 2 * l.A.Period()
	for !l.Visible(horizon) {
		horizon += 10 * time.Second
	}
	ws := l.Windows(horizon, 10*time.Second)
	if len(ws) < 2 {
		t.Fatalf("expected multiple windows over %v, got %v", horizon, ws)
	}
	first, last := ws[0], ws[len(ws)-1]
	if first.Start != 0 {
		t.Fatalf("window open at epoch starts at %v, want 0", first.Start)
	}
	if last.End != horizon {
		t.Fatalf("window open at horizon ends at %v, want %v", last.End, horizon)
	}
	// Interior edges: the bisected boundary must separate visible from
	// blocked within the 1 ms refinement the bisection promises.
	eps := 2 * time.Millisecond
	for i, w := range ws {
		if i > 0 && (l.Visible(w.Start-eps) || !l.Visible(w.Start+eps)) {
			t.Fatalf("window %d leading edge %v not a visibility boundary", i, w.Start)
		}
		if i < len(ws)-1 && (!l.Visible(w.End-eps) || l.Visible(w.End+eps)) {
			t.Fatalf("window %d trailing edge %v not a visibility boundary", i, w.End)
		}
	}
}

// TestWalkerGeometry pins the Walker-delta generator: counts, canonical
// ordering, RAAN/phase spacing, and the latitude bound |lat| <= inclination.
func TestWalkerGeometry(t *testing.T) {
	w := Walker{Planes: 6, PerPlane: 11, PhasingF: 2, AltitudeM: 780e3, InclinationDeg: 86.4}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Total() != 66 {
		t.Fatalf("Total = %d, want 66", w.Total())
	}
	orbits := w.Orbits()
	if len(orbits) != 66 {
		t.Fatalf("Orbits len = %d, want 66", len(orbits))
	}
	// Canonical order: plane-major.
	if orbits[13] != w.Orbit(1, 2) {
		t.Fatal("Orbits order not plane-major")
	}
	// RAAN spacing: full circle over P planes (delta pattern).
	gotSep := orbits[w.PerPlane].RAANRad - orbits[0].RAANRad
	wantSep := 2 * math.Pi / 6
	if math.Abs(gotSep-wantSep) > 1e-12 {
		t.Fatalf("RAAN spacing %v, want %v", gotSep, wantSep)
	}
	// Inter-plane phasing: F*360/T.
	gotPh := w.Orbit(1, 0).PhaseRad - w.Orbit(0, 0).PhaseRad
	wantPh := 2 * math.Pi * 2 / 66
	if math.Abs(gotPh-wantPh) > 1e-12 {
		t.Fatalf("phasing offset %v, want %v", gotPh, wantPh)
	}
	// Latitude stays within the inclination and reaches near it over an orbit.
	inc := 86.4 * math.Pi / 180
	maxLat := 0.0
	o := orbits[0]
	for dt := time.Duration(0); dt < o.Period(); dt += 10 * time.Second {
		lat := math.Abs(o.Latitude(dt))
		if lat > inc+1e-9 {
			t.Fatalf("latitude %v exceeds inclination %v", lat, inc)
		}
		if lat > maxLat {
			maxLat = lat
		}
	}
	if maxLat < inc-0.05 {
		t.Fatalf("max latitude %v never approached inclination %v", maxLat, inc)
	}
	// Validate rejects nonsense.
	if (Walker{Planes: 0, PerPlane: 1, AltitudeM: 1}).Validate() == nil {
		t.Fatal("Validate accepted 0 planes")
	}
	if (Walker{Planes: 4, PerPlane: 4, PhasingF: 4, AltitudeM: 1}).Validate() == nil {
		t.Fatal("Validate accepted F >= P")
	}
	if (Walker{Planes: 4, PerPlane: 4, AltitudeM: 0}).Validate() == nil {
		t.Fatal("Validate accepted zero altitude")
	}
}
