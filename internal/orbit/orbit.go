// Package orbit supplies the low-earth-orbit geometry the paper's target
// network is built from: circular-orbit satellite motion, inter-satellite
// range R_t as a function of time, line-of-sight visibility windows (the
// "link lifetime" of a few minutes the protocol is designed around), and the
// derived timing quantities the analysis needs — mean round-trip time R,
// range variance for the HDLC timeout t_out = R + α, and the retargeting
// overhead between visibility windows.
//
// The model is two-body circular motion in an Earth-centered inertial frame.
// That is deliberately simple — the paper's analysis only consumes link
// distance statistics — but it is a real geometric model: ranges, windows
// and their durations all come from propagated positions, not constants, so
// distance-sweep experiments (E6) and the live examples exercise genuine
// time-varying delay.
package orbit

import (
	"fmt"
	"math"
	"time"
)

// Physical constants (SI units).
const (
	EarthRadiusM = 6.371e6        // mean Earth radius [m]
	MuEarth      = 3.986004418e14 // gravitational parameter [m^3/s^2]
	LightSpeed   = 2.99792458e8   // [m/s]
)

// Vec3 is a Cartesian vector in the Earth-centered inertial frame, metres.
type Vec3 struct{ X, Y, Z float64 }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Dot returns the dot product.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Norm returns the Euclidean length.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Scale returns k*v.
func (v Vec3) Scale(k float64) Vec3 { return Vec3{k * v.X, k * v.Y, k * v.Z} }

// Orbit is a circular orbit parameterized by altitude, inclination, right
// ascension of the ascending node (RAAN), and the satellite's phase angle
// along the orbit at epoch.
type Orbit struct {
	AltitudeM      float64 // altitude above EarthRadiusM [m]
	InclinationRad float64
	RAANRad        float64
	PhaseRad       float64 // argument of latitude at t=0
}

// Radius returns the orbital radius from Earth's centre.
func (o Orbit) Radius() float64 { return EarthRadiusM + o.AltitudeM }

// Period returns the orbital period.
func (o Orbit) Period() time.Duration {
	r := o.Radius()
	secs := 2 * math.Pi * math.Sqrt(r*r*r/MuEarth)
	return time.Duration(secs * float64(time.Second))
}

// MeanMotion returns the angular rate in rad/s.
func (o Orbit) MeanMotion() float64 {
	r := o.Radius()
	return math.Sqrt(MuEarth / (r * r * r))
}

// Position returns the ECI position at time t after epoch.
func (o Orbit) Position(t time.Duration) Vec3 {
	u := o.PhaseRad + o.MeanMotion()*t.Seconds() // argument of latitude
	r := o.Radius()
	cosU, sinU := math.Cos(u), math.Sin(u)
	cosI, sinI := math.Cos(o.InclinationRad), math.Sin(o.InclinationRad)
	cosO, sinO := math.Cos(o.RAANRad), math.Sin(o.RAANRad)
	// Rotate the in-plane position (r cosU, r sinU, 0) by inclination about
	// x then RAAN about z.
	x := r * (cosO*cosU - sinO*sinU*cosI)
	y := r * (sinO*cosU + cosO*sinU*cosI)
	z := r * (sinU * sinI)
	return Vec3{x, y, z}
}

// Link is a prospective laser crosslink between two satellites.
type Link struct {
	A, B Orbit
	// GrazingAltitudeM is the minimum altitude the line of sight may pass
	// above the Earth's surface before atmosphere/terrain blocks it.
	// Typical values are 50–100 km for optical links.
	GrazingAltitudeM float64
}

// RangeM returns the inter-satellite distance at time t.
func (l Link) RangeM(t time.Duration) float64 {
	return l.B.Position(t).Sub(l.A.Position(t)).Norm()
}

// Visible reports whether the two satellites have line of sight at t: the
// segment between them stays above EarthRadius+GrazingAltitude.
func (l Link) Visible(t time.Duration) bool {
	pa := l.A.Position(t)
	pb := l.B.Position(t)
	d := pb.Sub(pa)
	dd := d.Dot(d)
	if dd == 0 {
		return true
	}
	// Closest approach of the segment to the origin.
	s := -pa.Dot(d) / dd
	if s < 0 {
		s = 0
	} else if s > 1 {
		s = 1
	}
	closest := Vec3{pa.X + s*d.X, pa.Y + s*d.Y, pa.Z + s*d.Z}
	return closest.Norm() >= EarthRadiusM+l.GrazingAltitudeM
}

// PropagationDelay converts a range in metres to a one-way light-time.
func PropagationDelay(rangeM float64) time.Duration {
	return time.Duration(rangeM / LightSpeed * float64(time.Second))
}

// RangeForDelay inverts PropagationDelay.
func RangeForDelay(d time.Duration) float64 {
	return d.Seconds() * LightSpeed
}

// Window is one contiguous visibility interval.
type Window struct {
	Start, End time.Duration
}

// Duration returns the window length — the "link lifetime".
func (w Window) Duration() time.Duration { return w.End - w.Start }

// String formats the window for reports.
func (w Window) String() string {
	return fmt.Sprintf("[%v, %v] (%v)", w.Start, w.End, w.Duration())
}

// Windows scans [0, horizon] with the given step and returns the visibility
// windows, refining each edge by bisection to sub-step accuracy.
func (l Link) Windows(horizon, step time.Duration) []Window {
	if step <= 0 {
		panic("orbit: non-positive scan step")
	}
	var out []Window
	inWindow := l.Visible(0)
	var start time.Duration
	if inWindow {
		start = 0
	}
	for t := step; t <= horizon; t += step {
		v := l.Visible(t)
		if v == inWindow {
			continue
		}
		edge := l.bisect(t-step, t)
		if v {
			start = edge
		} else {
			out = append(out, Window{Start: start, End: edge})
		}
		inWindow = v
	}
	if inWindow {
		out = append(out, Window{Start: start, End: horizon})
	}
	return out
}

func (l Link) bisect(lo, hi time.Duration) time.Duration {
	vlo := l.Visible(lo)
	for hi-lo > time.Millisecond {
		mid := lo + (hi-lo)/2
		if l.Visible(mid) == vlo {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// RangeStats summarizes R_t over a window, sampled at the given step. It
// feeds the HDLC timeout rule the paper quotes: t_out = R + α with
// α >= R_max − R and R = (R_min + R_max)/2.
type RangeStats struct {
	MinM, MaxM, MeanM float64
	VarM2             float64 // variance of range [m^2]
	Samples           int
}

// Stats samples the link range over w.
func (l Link) Stats(w Window, step time.Duration) RangeStats {
	if step <= 0 {
		panic("orbit: non-positive sampling step")
	}
	var st RangeStats
	st.MinM = math.Inf(1)
	st.MaxM = math.Inf(-1)
	var sum, sumSq float64
	for t := w.Start; t <= w.End; t += step {
		r := l.RangeM(t)
		if r < st.MinM {
			st.MinM = r
		}
		if r > st.MaxM {
			st.MaxM = r
		}
		sum += r
		sumSq += r * r
		st.Samples++
	}
	if st.Samples > 0 {
		st.MeanM = sum / float64(st.Samples)
		st.VarM2 = sumSq/float64(st.Samples) - st.MeanM*st.MeanM
		if st.VarM2 < 0 {
			st.VarM2 = 0
		}
	}
	return st
}

// MidrangeM returns (R_min + R_max)/2, the paper's choice of mean distance R.
func (st RangeStats) MidrangeM() float64 { return (st.MinM + st.MaxM) / 2 }

// AlphaM returns R_max − R_mid, the paper's lower bound for the timeout
// slack α (in metres of one-way range; convert with PropagationDelay).
func (st RangeStats) AlphaM() float64 { return st.MaxM - st.MidrangeM() }

// RoundTrip returns the round-trip light time for the midrange distance.
func (st RangeStats) RoundTrip() time.Duration {
	return 2 * PropagationDelay(st.MidrangeM())
}

// TimeoutAlpha returns the timeout slack α as a duration for round-trip
// accounting (twice the one-way slack, since t_out bounds a round trip).
func (st RangeStats) TimeoutAlpha() time.Duration {
	return 2 * PropagationDelay(st.AlphaM())
}

// CrossPlanePair returns a canonical two-satellite crosslink: satellites at
// the given altitude in planes separated by raanSepDeg degrees of RAAN with
// the given inclination and initial phase offset. It is the constellation
// cell the examples and distance sweeps use.
func CrossPlanePair(altitudeM, inclinationDeg, raanSepDeg, phaseOffsetDeg float64) Link {
	rad := math.Pi / 180
	return Link{
		A: Orbit{AltitudeM: altitudeM, InclinationRad: inclinationDeg * rad},
		B: Orbit{
			AltitudeM:      altitudeM,
			InclinationRad: inclinationDeg * rad,
			RAANRad:        raanSepDeg * rad,
			PhaseRad:       phaseOffsetDeg * rad,
		},
		GrazingAltitudeM: 80e3,
	}
}

// InPlanePair returns two satellites in the same circular orbit separated by
// sepDeg degrees of phase: the steadiest link in a constellation (range is
// constant), useful as the deterministic-distance case of assumption 8.
func InPlanePair(altitudeM, sepDeg float64) Link {
	rad := math.Pi / 180
	return Link{
		A:                Orbit{AltitudeM: altitudeM},
		B:                Orbit{AltitudeM: altitudeM, PhaseRad: sepDeg * rad},
		GrazingAltitudeM: 80e3,
	}
}
