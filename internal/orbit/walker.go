package orbit

import (
	"fmt"
	"math"
	"time"
)

// Walker describes a Walker-delta constellation i:T/P/F — T satellites in P
// equally spaced orbital planes of T/P satellites each, all circular at the
// same altitude and inclination. Plane p's RAAN is p·360°/P (delta pattern:
// the planes' ascending nodes span the full circle), satellite s of plane p
// sits at phase s·360°/(T/P) within its plane, offset by the inter-plane
// phasing p·F·360°/T. It is the standard parameterization for LEO
// constellations with grid crosslinks, which is the network the paper's
// multi-satellite setting (§2) assumes.
type Walker struct {
	// Planes is P, the number of orbital planes.
	Planes int
	// PerPlane is T/P, the number of satellites in each plane.
	PerPlane int
	// PhasingF is the Walker phasing factor F in [0, Planes): adjacent
	// planes are phase-shifted by F·360°/T, which staggers cross-plane
	// neighbors so they do not bunch at the equator crossings.
	PhasingF int
	// AltitudeM is the shared circular-orbit altitude [m].
	AltitudeM float64
	// InclinationDeg is the shared inclination [degrees].
	InclinationDeg float64
}

// Validate reports the first parameter error.
func (w Walker) Validate() error {
	if w.Planes < 1 || w.PerPlane < 1 {
		return fmt.Errorf("orbit: walker needs >=1 plane and >=1 sat/plane, got %d x %d", w.Planes, w.PerPlane)
	}
	if w.PhasingF < 0 || w.PhasingF >= w.Planes {
		return fmt.Errorf("orbit: walker phasing F=%d outside [0, %d)", w.PhasingF, w.Planes)
	}
	if w.AltitudeM <= 0 {
		return fmt.Errorf("orbit: walker altitude %.0f m must be positive", w.AltitudeM)
	}
	return nil
}

// Total returns T, the satellite count.
func (w Walker) Total() int { return w.Planes * w.PerPlane }

// Orbit returns the orbit of satellite idx (0..PerPlane-1) of plane
// (0..Planes-1).
func (w Walker) Orbit(plane, idx int) Orbit {
	t := float64(w.Total())
	return Orbit{
		AltitudeM:      w.AltitudeM,
		InclinationRad: w.InclinationDeg * math.Pi / 180,
		RAANRad:        2 * math.Pi * float64(plane) / float64(w.Planes),
		PhaseRad: 2*math.Pi*float64(idx)/float64(w.PerPlane) +
			2*math.Pi*float64(plane*w.PhasingF)/t,
	}
}

// Orbits returns every satellite's orbit in canonical order: plane-major,
// i.e. satellite plane*PerPlane+idx is satellite idx of plane. Shard
// partitioning and report aggregation both key off this order, so it is part
// of the determinism contract.
func (w Walker) Orbits() []Orbit {
	out := make([]Orbit, 0, w.Total())
	for p := 0; p < w.Planes; p++ {
		for s := 0; s < w.PerPlane; s++ {
			out = append(out, w.Orbit(p, s))
		}
	}
	return out
}

// Latitude returns the geocentric latitude [rad] of the satellite at time t
// after epoch. Cross-plane crosslinks are conventionally unusable above a
// polar latitude threshold (the planes converge and the relative geometry
// swings too fast for the pointing system), which is what drives the
// handover churn the constellation experiments measure.
func (o Orbit) Latitude(t time.Duration) float64 {
	p := o.Position(t)
	return math.Asin(p.Z / p.Norm())
}
