package arq

import "repro/internal/sim"

// RetxCause classifies why a sender retransmitted a frame. The LAMS-DLC
// causes partition lams_iframes_retx_total exactly the way the per-cause
// counters in lamsdlc/instruments.go do; the HDLC causes do the same for
// the baselines' hdlc_* counters.
type RetxCause uint8

// Retransmission causes.
const (
	// RetxNAK: a checkpoint NAK named the frame's current incarnation
	// (LAMS-DLC).
	RetxNAK RetxCause = iota
	// RetxCoverage: the watermark covered the frame but the checkpoint
	// serial jumped by more than C_depth, so the report chain is broken and
	// releasing would risk loss — the sender retransmits conservatively
	// (duplicates are resolved downstream; LAMS-DLC).
	RetxCoverage
	// RetxEnforced: an Enforced-NAK showed the receiver has never seen the
	// frame although it had a full round trip to arrive (LAMS-DLC).
	RetxEnforced
	// RetxResolving: the frame went unreported for a full resolving period
	// (§3.3) — a corrupted trailing frame with no successor to reveal the
	// gap (LAMS-DLC).
	RetxResolving
	// RetxTimeout: the T1 acknowledgment timer expired and the oldest
	// unacknowledged frame was re-sent as a P-bit poll (HDLC).
	RetxTimeout
	// RetxSREJ: a selective reject named the frame (SR-HDLC).
	RetxSREJ
	// RetxREJ: a reject backed the sender up to the frame (GBN-HDLC).
	RetxREJ
	// RetxStutter: the idle wire repeated an unacknowledged frame
	// (Stutter-mode HDLC).
	RetxStutter
)

// String names the cause.
func (c RetxCause) String() string {
	switch c {
	case RetxNAK:
		return "nak"
	case RetxCoverage:
		return "coverage"
	case RetxEnforced:
		return "enforced"
	case RetxResolving:
		return "resolving"
	case RetxTimeout:
		return "timeout"
	case RetxSREJ:
		return "srej"
	case RetxREJ:
		return "rej"
	case RetxStutter:
		return "stutter"
	}
	return "unknown"
}

// Probe observes protocol state transitions on both halves of an endpoint
// pair. It exists for the fault-injection invariant checker
// (internal/faults), which asserts the paper's §3.2 recovery state rules
// and reliability contract from outside the protocol, and for tests that
// need transition instants rather than aggregate counters.
//
// Every field is optional; a nil Probe (the default) costs one nil check
// per call site. Callbacks run synchronously inside the protocol state
// machine: they must not call back into the endpoint. Engines invoke only
// the callbacks whose transitions exist in their state machine: an HDLC
// pair fires the transmission-lifecycle callbacks (FirstTransmission,
// Retransmitted, Released, FailureDeclared) and never the
// checkpoint/recovery ones.
type Probe struct {
	// Sender-side transitions.

	// CheckpointHeard fires for every readable checkpoint-family frame the
	// sender processes (periodic Check-Point, Check-Point-NAK, Enforced-NAK
	// and Resolving commands alike), before its effects are applied.
	CheckpointHeard func(now sim.Time, serial uint32, enforced bool)
	// RecoveryStarted fires when the checkpoint timer expires and the
	// sender begins Enforced Recovery (new I-frames suspend).
	RecoveryStarted func(now sim.Time)
	// RequestNAKSent fires for every Request-NAK solicitation, including
	// failure-timer retries.
	RequestNAKSent func(now sim.Time, serial uint32)
	// RecoveryEnded fires when Enforced Recovery completes and new
	// I-frames resume. enforced reports whether the response carried the
	// Enforced bit (false when the resumed periodic checkpoint stream
	// answered for a lost Enforced-NAK).
	RecoveryEnded func(now sim.Time, enforced bool)
	// FailureDeclared fires once if the sender declares link failure.
	FailureDeclared func(now sim.Time, reason string)
	// FirstTransmission fires when a datagram is transmitted for the first
	// time under its initial sequence number.
	FirstTransmission func(now sim.Time, seq uint32, dgID uint64)
	// Retransmitted fires when a frame is re-sent; oldSeq is the retired
	// incarnation, newSeq the fresh one. Engines that never renumber
	// (HDLC) report oldSeq == newSeq.
	Retransmitted func(now sim.Time, oldSeq, newSeq uint32, dgID uint64, cause RetxCause)
	// Released fires when a covered positive acknowledgement frees a
	// buffer slot.
	Released func(now sim.Time, seq uint32, dgID uint64)

	// Receiver-side transitions.

	// CheckpointSent fires for every checkpoint-family frame the receiver
	// emits (enforced marks Enforced-NAK / Resolving responses).
	CheckpointSent func(now sim.Time, serial uint32, enforced bool)
	// StopGoChanged fires when the receiver's flow-control bit flips.
	StopGoChanged func(now sim.Time, stop bool)
}
