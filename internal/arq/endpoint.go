package arq

import (
	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/sim"
)

// Endpoint is one half of an ARQ engine: a sans-IO state machine driven by
// the scheduler's virtual clock and by frames the wiring feeds it. Both
// LAMS-DLC and the HDLC baselines implement it for their senders and
// receivers, which is what lets the simulation and live drivers route
// frames without naming a protocol.
type Endpoint interface {
	// Start activates the endpoint's periodic processes (checkpoint
	// emission, timers). Idempotent where the protocol needs it to be.
	Start()
	// HandleFrame processes one arriving frame.
	HandleFrame(now sim.Time, f *frame.Frame)
}

// Pair is the engine contract every layer above the protocols programs
// against: a wired sender/receiver pair running one ARQ engine over one
// full-duplex link. lamsdlc.Pair and hdlc.Pair implement it; the node,
// session, bench, and faults layers consume it, so any registered engine
// runs in any topology or harness.
//
// Datagram ownership: a datagram handed to Enqueue belongs to the engine
// until it is either delivered (the deliver callback fires at the far end)
// or handed back by Reclaim. Stop is an orderly teardown — timers stop, no
// failure is declared, and the undelivered datagrams stay reclaimable.
// Reclaim returns every datagram the engine still holds (never positively
// acknowledged), oldest first; after a declared failure or a Stop the
// caller re-routes or carries them over. Reclaim does not mutate delivery
// state, but a reclaimed datagram may still arrive at the receiver (its
// last transmission may be in flight), so exactly-once is the resequencer's
// job, not the engine's.
type Pair interface {
	// Start activates both ends.
	Start()
	// Stop is orderly teardown: the link is going away (end of pass), not
	// failing. Timers stop, new work is refused, no failure callback fires.
	Stop()
	// Enqueue accepts a datagram from the network layer. False means the
	// engine refused it (buffer at capacity, or the engine failed/stopped).
	Enqueue(dg Datagram) bool
	// Reclaim returns the datagrams the engine still holds (queued or
	// unacknowledged), oldest first.
	Reclaim() []Datagram
	// Outstanding returns the sending-buffer occupancy: unacknowledged
	// frames plus queued datagrams.
	Outstanding() int
	// Failed reports whether the engine declared the link failed (or was
	// stopped).
	Failed() bool
	// Metrics exposes the pair's shared measurement block.
	Metrics() *Metrics
	// Link exposes the underlying simulated link (tests inject failures,
	// the session layer fails it at pass end).
	Link() *channel.Link
	// SetProbe installs the transition observer on both ends; nil
	// detaches. Install before Start. Engines fire the callbacks that
	// exist in their state machine and skip the rest, which is how the
	// invariant checker's applicable subset follows the protocol.
	SetProbe(p *Probe)
}

// Optional capability interfaces, discovered by type assertion on a Pair.
// They keep the core contract small: a consumer that needs a
// protocol-specific surface asserts for it and degrades gracefully when the
// engine lacks it.

// SpanReporter reports the widest span of simultaneously live sequence
// numbers observed — meaningful for engines that renumber retransmissions
// (the §2.3 numbering-size bound).
type SpanReporter interface {
	MaxLiveSpan() uint32
}

// RateReporter reports the current flow-control send-rate fraction
// (engines with Stop-Go rate control).
type RateReporter interface {
	RateFraction() float64
}

// CheckpointRetimer re-times a periodic checkpoint process; the fault
// injector uses it to open clock-skew windows. Engines without a periodic
// receiver process simply don't implement it and skew events are skipped.
type CheckpointRetimer interface {
	SetCheckpointPeriod(d sim.Duration)
}

// RecoveryWindows bundles the timing bounds the §3.2 invariant checker
// asserts. Engines without an enforced-recovery procedure leave it zero:
// the recovery rules then never fire because the probe callbacks they
// watch are never invoked.
type RecoveryWindows struct {
	// CheckpointTimer is the minimum checkpoint silence before recovery
	// entry (C_depth·W_cp plus phase grace for LAMS-DLC).
	CheckpointTimer sim.Duration
	// FailureTimeout is the minimum response silence after a solicitation
	// before failure may be declared.
	FailureTimeout sim.Duration
	// ResolvingPeriod bounds how long a live sequence-number incarnation
	// may go unresolved while acknowledgements keep flowing.
	ResolvingPeriod sim.Duration
	// RoundTrip is R, the floor under the resolving bound.
	RoundTrip sim.Duration
}

// WindowsProvider exposes an engine configuration's recovery windows to
// the invariant checker. Implemented by lamsdlc.Config.
type WindowsProvider interface {
	RecoveryWindows() RecoveryWindows
}

// StateCorruptor is the surface the corruption adversary (faults kind
// "scramble") drives: one call overwrites a bounded, engine-chosen slice of
// live protocol state — serial watermarks, dedup timestamps, recovery
// timers, window bookkeeping — using draws from rng. Implementations must
// scramble only state the external probe observation cannot see directly
// (sequence-number incarnations stay probe-consistent), so the §3.2 checker
// keeps measuring the engine, not the adversary; DESIGN.md §13 states the
// ownership contract. Callbacks run synchronously on the pair's scheduler.
type StateCorruptor interface {
	CorruptState(rng *sim.RNG)
}

// GhostForger builds one well-formed forged frame for the corruption
// adversary (faults kind "ghost"): a frame that passes the engine's CRC and
// kind checks but carries fabricated sequence/serial/ack state drawn from
// rng and from the engine's own live state (which is what makes the forgery
// adversarial rather than noise). toReceiver selects the direction: true
// forges data-channel traffic toward the receiver, false forges
// acknowledgement-channel traffic toward the sender. The returned frame
// comes from frame.Get and belongs to the caller (the injector Sends it —
// the pipe copies — then Puts it); nil skips the tick for that direction.
type GhostForger interface {
	ForgeGhost(rng *sim.RNG, toReceiver bool) *frame.Frame
}

// StabilizationBound exposes an engine configuration's convergence bound:
// the longest interval after the corruption era closes within which the
// engine must return to legal executions (Dolev-style self-stabilization
// for ssarq; a measured, derivation-backed bound for the legacy engines —
// DESIGN.md §13 derives each). The invariant checker excuses violations
// timestamped inside the corruption era plus this bound and enforces
// everything after it.
type StabilizationBound interface {
	ConvergenceBound() sim.Duration
}
