package arq

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/channel"
	"repro/internal/sim"
)

// EngineConfig is the protocol-specific configuration a registered engine
// consumes. Concrete types are lamsdlc.Config and hdlc.Config; the
// interface carries only what protocol-agnostic layers need: validation and
// the link-lifetime hint the session layer sets per pass.
type EngineConfig interface {
	// Validate reports the first configuration error.
	Validate() error
	// WithLinkLifetime returns a copy of the configuration with the
	// remaining link lifetime set. Engines without lifetime-aware behavior
	// return the configuration unchanged.
	WithLinkLifetime(d sim.Duration) EngineConfig
}

// NewPairFunc builds a wired endpoint pair over link. cfg must be the
// registration's concrete configuration type (its Defaults return);
// deliver and onFailure may be nil.
type NewPairFunc func(sched *sim.Scheduler, link *channel.Link, cfg EngineConfig, deliver DeliverFunc, onFailure FailureFunc) Pair

// SplitPairFunc builds a pair whose two entities run on different
// schedulers: the sender (I-frame source, driving link.AtoB) on sendSched,
// the receiver (driving link.BtoA) on recvSched. The shard engine uses it to
// home each end of a crosslink session on the shard owning that satellite.
// Implementations must give each entity its own Metrics block (the two run
// on different goroutines) and merge them in Pair.Metrics — see MergeSplit.
type SplitPairFunc func(sendSched, recvSched *sim.Scheduler, link *channel.Link, cfg EngineConfig, deliver DeliverFunc, onFailure FailureFunc) Pair

// Registration describes one ARQ engine in the protocol registry.
type Registration struct {
	// Name is the canonical flag value ("lams", "srhdlc", "gbn").
	Name string
	// Aliases are additional accepted spellings.
	Aliases []string
	// Display is the human label used in tables and CSV ("LAMS-DLC").
	Display string
	// Defaults returns the engine's default configuration for a round trip.
	Defaults func(roundTrip sim.Duration) EngineConfig
	// New builds a wired pair.
	New NewPairFunc
	// NewSplit builds a pair split across two schedulers. Optional: engines
	// without it can still run under the shard engine when both ends land
	// on the same shard (Engine.NewSplitPair falls back to New).
	NewSplit SplitPairFunc
}

var (
	registry = make(map[string]Registration) // canonical + alias keys
	names    []string                        // canonical names, sorted
)

// Register adds an engine to the registry. Engines call it from init()
// (blank-import repro/internal/engines to link every implementation in).
// Duplicate names panic: the registry is wiring, not configuration.
func Register(r Registration) {
	if r.Name == "" || r.New == nil || r.Defaults == nil {
		panic("arq: incomplete engine registration")
	}
	for _, key := range append([]string{r.Name}, r.Aliases...) {
		key = strings.ToLower(key)
		if _, dup := registry[key]; dup {
			panic(fmt.Sprintf("arq: duplicate engine registration %q", key))
		}
		registry[key] = r
	}
	names = append(names, r.Name)
	sort.Strings(names)
}

// Protocols returns the registered canonical engine names, sorted.
func Protocols() []string {
	out := make([]string, len(names))
	copy(out, names)
	return out
}

// ParseProtocol resolves a protocol name (canonical or alias, case
// insensitive) to its registration. Unknown names error, listing what is
// registered — no silent default.
func ParseProtocol(name string) (Registration, error) {
	r, ok := registry[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return Registration{}, fmt.Errorf("arq: unknown protocol %q (registered: %s)",
			name, strings.Join(Protocols(), ", "))
	}
	return r, nil
}

// New builds a wired pair for the named engine. cfg is required; use
// Registration.Defaults (or DefaultEngine) to build one.
func New(name string, sched *sim.Scheduler, link *channel.Link, cfg EngineConfig, deliver DeliverFunc, onFailure FailureFunc) (Pair, error) {
	r, err := ParseProtocol(name)
	if err != nil {
		return nil, err
	}
	return r.New(sched, link, cfg, deliver, onFailure), nil
}

// Engine binds a registered protocol to a concrete configuration: the
// value the node and session layers carry instead of a lamsdlc.Config.
// The zero Engine is invalid; build one with NewEngine or MustEngine.
type Engine struct {
	reg Registration
	cfg EngineConfig
}

// NewEngine resolves name and validates cfg.
func NewEngine(name string, cfg EngineConfig) (Engine, error) {
	r, err := ParseProtocol(name)
	if err != nil {
		return Engine{}, err
	}
	if cfg == nil {
		return Engine{}, fmt.Errorf("arq: nil configuration for engine %q", name)
	}
	if err := cfg.Validate(); err != nil {
		return Engine{}, err
	}
	return Engine{reg: r, cfg: cfg}, nil
}

// MustEngine is NewEngine, panicking on error (wiring-time misuse).
func MustEngine(name string, cfg EngineConfig) Engine {
	e, err := NewEngine(name, cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// DefaultEngine returns the named engine with its default configuration
// for the given round trip.
func DefaultEngine(name string, roundTrip sim.Duration) (Engine, error) {
	r, err := ParseProtocol(name)
	if err != nil {
		return Engine{}, err
	}
	return Engine{reg: r, cfg: r.Defaults(roundTrip)}, nil
}

// Name returns the canonical engine name; empty for the zero Engine.
func (e Engine) Name() string { return e.reg.Name }

// Display returns the human label for tables.
func (e Engine) Display() string { return e.reg.Display }

// Config returns the bound configuration.
func (e Engine) Config() EngineConfig { return e.cfg }

// Validate reports whether the engine is usable.
func (e Engine) Validate() error {
	if e.reg.Name == "" {
		return fmt.Errorf("arq: zero Engine (build with NewEngine)")
	}
	if e.cfg == nil {
		return fmt.Errorf("arq: engine %q has no configuration", e.reg.Name)
	}
	return e.cfg.Validate()
}

// WithLinkLifetime returns the engine with the configuration's remaining
// link lifetime set (no-op for engines without lifetime awareness).
func (e Engine) WithLinkLifetime(d sim.Duration) Engine {
	e.cfg = e.cfg.WithLinkLifetime(d)
	return e
}

// NewPair builds a wired pair over link with this engine's configuration.
func (e Engine) NewPair(sched *sim.Scheduler, link *channel.Link, deliver DeliverFunc, onFailure FailureFunc) Pair {
	if e.reg.New == nil {
		panic("arq: NewPair on zero Engine")
	}
	return e.reg.New(sched, link, e.cfg, deliver, onFailure)
}

// NewSplitPair builds a pair whose sender entity runs on sendSched and whose
// receiver entity runs on recvSched (the shard engine's session seam). For an
// engine registered without split support it falls back to New when both
// schedulers are the same, and panics otherwise — a cross-shard session
// cannot be faked on one wheel without breaking the ownership model.
func (e Engine) NewSplitPair(sendSched, recvSched *sim.Scheduler, link *channel.Link, deliver DeliverFunc, onFailure FailureFunc) Pair {
	if e.reg.NewSplit != nil {
		return e.reg.NewSplit(sendSched, recvSched, link, e.cfg, deliver, onFailure)
	}
	if sendSched == recvSched {
		return e.NewPair(sendSched, link, deliver, onFailure)
	}
	panic(fmt.Sprintf("arq: engine %q does not support split pairs across schedulers", e.reg.Name))
}
