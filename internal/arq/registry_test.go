package arq_test

import (
	"strings"
	"testing"

	"repro/internal/arq"
	"repro/internal/sim"

	_ "repro/internal/engines" // link every registered engine in
)

func TestRegistryHoldsEveryEngine(t *testing.T) {
	got := strings.Join(arq.Protocols(), ",")
	for _, name := range []string{"gbn", "lams", "srhdlc"} {
		if !strings.Contains(got, name) {
			t.Fatalf("Protocols() = %s, missing %q", got, name)
		}
	}
}

func TestParseProtocolAliasesAndCase(t *testing.T) {
	for spelling, want := range map[string]string{
		"lams": "lams", "LAMS": "lams",
		"sr": "srhdlc", "sr-hdlc": "srhdlc", "hdlc": "srhdlc",
		"gbn": "gbn", "GBN-HDLC": "gbn", " srhdlc ": "srhdlc",
	} {
		reg, err := arq.ParseProtocol(spelling)
		if err != nil {
			t.Fatalf("ParseProtocol(%q): %v", spelling, err)
		}
		if reg.Name != want {
			t.Fatalf("ParseProtocol(%q).Name = %q, want %q", spelling, reg.Name, want)
		}
	}
}

func TestParseProtocolUnknownListsRegistered(t *testing.T) {
	_, err := arq.ParseProtocol("x25")
	if err == nil {
		t.Fatal("unknown protocol accepted")
	}
	for _, name := range arq.Protocols() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list registered engine %q", err, name)
		}
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := arq.NewEngine("lams", nil); err == nil {
		t.Fatal("nil configuration accepted")
	}
	for _, name := range arq.Protocols() {
		eng, err := arq.DefaultEngine(name, 13*sim.Millisecond)
		if err != nil {
			t.Fatalf("DefaultEngine(%q): %v", name, err)
		}
		if err := eng.Validate(); err != nil {
			t.Fatalf("default %q engine invalid: %v", name, err)
		}
		if eng.Display() == "" {
			t.Fatalf("%q has no display name", name)
		}
	}
	var zero arq.Engine
	if zero.Validate() == nil {
		t.Fatal("zero Engine validated")
	}
}
