package arq

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestMetricsNoteDelivery(t *testing.T) {
	var m Metrics
	dg := Datagram{ID: 1, Payload: make([]byte, 125), EnqueuedAt: sim.Time(0)}
	m.NoteDelivery(sim.Time(sim.Second), dg)
	if m.Delivered.Value() != 1 {
		t.Fatal("delivered count")
	}
	if m.DeliveredBits.Value() != 1000 {
		t.Fatalf("bits = %d", m.DeliveredBits.Value())
	}
	if m.FirstDelivery != sim.Time(sim.Second) || m.LastDelivery != m.FirstDelivery {
		t.Fatal("delivery timestamps")
	}
	if m.DeliveryDelay.Mean() != float64(sim.Second) {
		t.Fatalf("delay mean = %v", m.DeliveryDelay.Mean())
	}
	m.NoteDelivery(sim.Time(2*sim.Second), Datagram{ID: 2, EnqueuedAt: sim.Time(sim.Second)})
	if m.FirstDelivery != sim.Time(sim.Second) {
		t.Fatal("first delivery moved")
	}
	if m.LastDelivery != sim.Time(2*sim.Second) {
		t.Fatal("last delivery not updated")
	}
}

func TestMetricsThroughputAndEfficiency(t *testing.T) {
	var m Metrics
	m.NoteDelivery(sim.Time(sim.Second), Datagram{Payload: make([]byte, 12500)}) // 1e5 bits
	tp := m.Throughput(0, sim.Time(sim.Second))
	if tp != 1e5 {
		t.Fatalf("throughput = %v", tp)
	}
	if eff := m.Efficiency(0, sim.Time(sim.Second), 1e6); eff != 0.1 {
		t.Fatalf("efficiency = %v", eff)
	}
	if m.Throughput(sim.Time(sim.Second), sim.Time(sim.Second)) != 0 {
		t.Fatal("empty window throughput should be 0")
	}
	if m.Efficiency(0, sim.Time(sim.Second), 0) != 0 {
		t.Fatal("zero rate efficiency should be 0")
	}
}

func TestMetricsSummaryAndHolding(t *testing.T) {
	var m Metrics
	m.HoldingTime.Add(float64(10 * sim.Millisecond))
	m.HoldingTime.Add(float64(20 * sim.Millisecond))
	if got := m.MeanHoldingTime(); got != 15*sim.Millisecond {
		t.Fatalf("mean holding = %v", got)
	}
	if s := m.Summary(); !strings.Contains(s, "submitted=0") {
		t.Fatalf("summary = %q", s)
	}
}

func TestTimingValidate(t *testing.T) {
	if err := (Timing{RoundTrip: sim.Second, ProcTime: sim.Microsecond}).Validate(); err != nil {
		t.Fatalf("valid timing rejected: %v", err)
	}
	if err := (Timing{RoundTrip: -1}).Validate(); err == nil {
		t.Fatal("negative round trip accepted")
	}
	if err := (Timing{ProcTime: -1}).Validate(); err == nil {
		t.Fatal("negative proc time accepted")
	}
}
