// Package arq holds the vocabulary shared by the LAMS-DLC implementation
// and the HDLC baselines: datagrams, the outbound-wire interface the sans-IO
// protocol entities talk to, delivery callbacks, and the common metrics the
// experiment harness reads.
//
// Protocol entities in this repository are written against two narrow
// dependencies — a *sim.Scheduler for timers and a Wire for output — so the
// same state machines run unchanged under the discrete-event driver
// (internal/channel pipes) and the real-time driver (internal/live).
package arq

import (
	"fmt"

	"repro/internal/frame"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Datagram is the unit of service the DLC offers the network layer: an
// opaque payload with an identity. LAMS-DLC provides a datagram service
// (out-of-sequence, zero-loss); identities let the destination resequence
// and de-duplicate.
type Datagram struct {
	// ID is unique per source; sources assign consecutive IDs so the
	// resequencer can restore order.
	ID uint64
	// Payload is the user data.
	Payload []byte
	// EnqueuedAt records when the network layer handed the datagram to the
	// DLC, for end-to-end delay measurement.
	EnqueuedAt sim.Time
}

// Wire is the outbound interface a protocol entity transmits on. It is
// implemented by *channel.Pipe in simulation and by the live driver's
// transports.
type Wire interface {
	// Send queues a frame for transmission. Implementations clone the
	// frame; the caller may reuse it.
	Send(f *frame.Frame)
	// TxTime returns the serialization time of f at the wire's rate,
	// which protocols use for send pacing.
	TxTime(f *frame.Frame) sim.Duration
}

// DeliverFunc receives datagrams the protocol hands up to the network
// layer. seq is the link-layer sequence number the delivering frame carried
// (diagnostic; LAMS-DLC renumbers retransmissions, so one datagram can
// arrive under different seqs in duplicate cases).
type DeliverFunc func(now sim.Time, dg Datagram, seq uint32)

// FailureFunc is called once if the protocol declares the link failed.
type FailureFunc func(now sim.Time, reason string)

// Metrics aggregates the measurements every experiment reads. A Metrics
// value is owned by one protocol endpoint pair; zero value ready for use.
type Metrics struct {
	// Sender side.
	Submitted       stats.Counter // datagrams accepted from the network layer
	FirstTx         stats.Counter // first transmissions of an I-frame
	Retransmissions stats.Counter
	ControlSent     stats.Counter
	SendBufOcc      stats.TimeWeighted // sending-buffer occupancy (frames)
	HoldingTime     stats.Histogram    // per-frame buffer holding time (ns)
	RateChanges     stats.Counter      // flow-control rate adjustments
	Recoveries      stats.Counter      // enforced recoveries begun (Request-NAKs sent)
	Failures        stats.Counter      // declared link failures

	// Receiver side.
	Delivered     stats.Counter // datagrams handed to the network layer
	DeliveredBits stats.Counter
	RecvBufOcc    stats.TimeWeighted // receive-buffer occupancy (frames)
	RecvDropped   stats.Counter      // overflow discards (flow control)
	DupSuppressed stats.Counter      // DLC-level duplicate suppressions (DedupWindow)
	NAKsSent      stats.Counter
	Checkpoints   stats.Counter

	// Delivery timing.
	FirstDelivery sim.Time
	LastDelivery  sim.Time
	DeliveryDelay stats.Welford // enqueue-to-delivery delay (ns)
}

// NoteDelivery records one upward delivery at the receiver.
func (m *Metrics) NoteDelivery(now sim.Time, dg Datagram) {
	if m.Delivered.Value() == 0 {
		m.FirstDelivery = now
	}
	m.LastDelivery = now
	m.Delivered.Inc()
	m.DeliveredBits.Addn(uint64(len(dg.Payload)) * 8)
	m.DeliveryDelay.Add(float64(now.Sub(dg.EnqueuedAt)))
}

// MergeSplit combines the two Metrics blocks of a split pair (sender entity
// and receiver entity on different schedulers, each with its own block; see
// Engine.NewSplitPair) into the single view a report reads. Sender-side
// fields come from sender, receiver-side fields from receiver, and
// ControlSent — the one counter both sides bump — is summed. The result is a
// read-only snapshot: its Histogram/Welford fields alias the source blocks'
// internals, so call it only when both shards are quiesced and do not Add to
// the returned value.
func MergeSplit(sender, receiver *Metrics) Metrics {
	m := *sender
	m.ControlSent.Addn(receiver.ControlSent.Value())
	m.Delivered = receiver.Delivered
	m.DeliveredBits = receiver.DeliveredBits
	m.RecvBufOcc = receiver.RecvBufOcc
	m.RecvDropped = receiver.RecvDropped
	m.DupSuppressed = receiver.DupSuppressed
	m.NAKsSent = receiver.NAKsSent
	m.Checkpoints = receiver.Checkpoints
	m.FirstDelivery = receiver.FirstDelivery
	m.LastDelivery = receiver.LastDelivery
	m.DeliveryDelay = receiver.DeliveryDelay
	return m
}

// Throughput returns delivered payload bits per second of virtual time over
// [start, end]. Zero if the window is empty.
func (m *Metrics) Throughput(start, end sim.Time) float64 {
	if end <= start {
		return 0
	}
	return float64(m.DeliveredBits.Value()) / end.Sub(start).Seconds()
}

// Efficiency returns throughput normalized by the wire rate: the fraction of
// channel capacity delivering useful bits — the paper's throughput
// efficiency η.
func (m *Metrics) Efficiency(start, end sim.Time, rateBps float64) float64 {
	if rateBps <= 0 {
		return 0
	}
	return m.Throughput(start, end) / rateBps
}

// MeanHoldingTime returns the mean sender-buffer holding time as a duration.
func (m *Metrics) MeanHoldingTime() sim.Duration {
	return sim.Duration(m.HoldingTime.Mean())
}

// Summary renders the headline numbers for logs.
func (m *Metrics) Summary() string {
	return fmt.Sprintf(
		"submitted=%d delivered=%d retx=%d ctrl=%d drop=%d fail=%d hold=%v sbuf=%.1f",
		m.Submitted.Value(), m.Delivered.Value(), m.Retransmissions.Value(),
		m.ControlSent.Value(), m.RecvDropped.Value(), m.Failures.Value(),
		m.MeanHoldingTime(), m.SendBufOcc.Mean(),
	)
}

// Timing bundles the scenario timing parameters shared by both protocols'
// configuration, mirroring the symbols of Section 4.
type Timing struct {
	// RoundTrip is R, the mean round-trip propagation time.
	RoundTrip sim.Duration
	// ProcTime is t_proc, the (maximum) per-frame processing time.
	ProcTime sim.Duration
}

// Validate reports a descriptive error for nonsensical parameters.
func (t Timing) Validate() error {
	if t.RoundTrip < 0 {
		return fmt.Errorf("arq: negative round trip %v", t.RoundTrip)
	}
	if t.ProcTime < 0 {
		return fmt.Errorf("arq: negative processing time %v", t.ProcTime)
	}
	return nil
}
