package sim

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/metrics"
)

// eventPool recycles Event objects across scheduler lifetimes. A scheduler's
// own freelist covers the steady state within one run; the pool covers the
// cold start, so a sweep constructing many hermetic schedulers (bench.RunMany)
// allocates the event working set once per worker instead of once per run.
// Events enter the pool only through Recycle, zeroed except the generation
// counter — that must survive reuse (even under a different scheduler) so a
// stale Handle from a previous life can never match a recycled slot.
var eventPool = sync.Pool{New: func() any { return new(Event) }}

// The executive is a hierarchical timer wheel over absolute nanosecond
// timestamps, replacing the earlier binary heap. Layout:
//
//   - Level 0 ("L0") is 4096 one-nanosecond slots covering the 2^12 ns
//     window containing now. A two-level bitmap (l0sum summarising the 64
//     words of l0occ) finds the earliest occupied slot in two
//     TrailingZeros64 instructions.
//   - Seven upper levels of 64 slots each cover 6 more bits of the
//     timestamp apiece, so the wheel spans 2^(12+7*6) = 2^54 ns (~208
//     simulated days) around now.
//   - Events beyond the wheel span go to an unsorted overflow ladder (an
//     intrusive list with an incrementally maintained minimum) and are
//     pulled into the wheel when the clock enters their 2^54 ns block.
//
// Events at the same instant always hash to the same bucket at every
// level, and buckets are append-ordered intrusive lists, so FIFO order
// among same-instant events is structural — no sequence counter needed.
//
// The determinism contract of the heap version is preserved exactly:
// events fire in (timestamp, insertion-order) order, Cancel is O(1)
// (mark dead, reap lazily when the slot is visited — no sift), and a
// callback observing Now() always sees the fired event's timestamp.
const (
	wheelL0Bits  = 12               // log2 of L0 slot count
	wheelL0Slots = 1 << wheelL0Bits // one slot per nanosecond tick
	wheelLvlBits = 6                // log2 of upper-level fan-out
	wheelSlots   = 1 << wheelLvlBits
	wheelUpper   = 7 // upper levels above L0
	// wheelSpanBits is the number of timestamp bits the wheel resolves;
	// events differing from now above this bit go to the overflow ladder.
	wheelSpanBits = wheelL0Bits + wheelUpper*wheelLvlBits
)

// Event is the scheduler's internal record of a scheduled callback. Public
// callers hold a Handle instead; the *Event form is confined to this package
// (Timer/Ticker, the freelists) so the object can be recycled aggressively.
type Event struct {
	at Time
	fn func()
	// fnArg/arg is the argument-taking callback variant: one long-lived
	// func(any) shared by many events, with the per-event state passed as
	// arg. It lets a hot path (frame delivery) schedule per-item events
	// without a per-item closure allocation. When fnArg is set it is the
	// callback; fn is ignored.
	fnArg  func(any)
	arg    any
	next   *Event     // intrusive link: bucket chain, or freelist chain
	owner  *Scheduler // scheduler that enqueued the event (for Cancel bookkeeping)
	fired  bool
	cancel bool
	// detached marks an event whose handle never escaped to an
	// arbitrary caller (ScheduleDetached, or the managed Timer/Ticker
	// path which drops its handle synchronously on fire/stop): the
	// scheduler may recycle the Event object once it leaves the wheel.
	detached bool
	// overflow marks an event currently parked on the overflow ladder,
	// so Cancel can keep the ladder's dead-event count accurate.
	overflow bool
	// gen is the slot's generation, bumped every time the event object is
	// retired to a freelist. A Handle captures the generation at schedule
	// time; a mismatch later means the slot was recycled for an unrelated
	// event, so the Handle's own event must have fired. The counter
	// survives Recycle and the process-wide pool, so it never repeats a
	// value an outstanding Handle could still hold.
	gen uint64
}

// At returns the instant the event is (or was) scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e.cancel }

// Fired reports whether the event's callback has run.
func (e *Event) Fired() bool { return e.fired }

// Handle is a cancellable reference to a scheduled event, returned by
// Schedule and ScheduleAfter. It is a plain value — copying it is free and
// returning one does not allocate, which is what lets the handle path share
// the freelist with the detached path (the generation check makes reuse safe
// even while handles are still outstanding). The zero Handle is inert: every
// method is a no-op returning the zero answer.
type Handle struct {
	e   *Event
	gen uint64
	at  Time
}

// valid reports whether the handle still refers to its own event (the slot
// has not been recycled for a newer one).
func (h Handle) valid() bool { return h.e != nil && h.e.gen == h.gen }

// At returns the instant the event is (or was) scheduled to fire, or Never
// for the zero Handle.
func (h Handle) At() Time {
	if h.e == nil {
		return Never
	}
	return h.at
}

// Cancel removes the event from the schedule if it has not fired. Cancelling
// an already-fired or already-cancelled event — or through the zero Handle —
// is a no-op, even if the underlying slot has since been recycled.
func (h Handle) Cancel() {
	if h.valid() {
		h.e.owner.Cancel(h.e)
	}
}

// Fired reports whether the event's callback has run.
func (h Handle) Fired() bool {
	// Only firing retires a handled (non-detached) event to the freelist,
	// so a generation mismatch is itself proof the event fired.
	return h.e != nil && (h.e.gen != h.gen || h.e.fired)
}

// Cancelled reports whether Cancel was called before the event fired.
func (h Handle) Cancelled() bool { return h.valid() && h.e.cancel }

// Active reports whether the event is still pending: scheduled, not yet
// fired, not cancelled.
func (h Handle) Active() bool { return h.valid() && !h.e.cancel && !h.e.fired }

// bucket is an append-ordered intrusive event list. Append order is
// insertion order, which is what makes same-instant FIFO structural.
type bucket struct {
	head, tail *Event
}

func (b *bucket) push(e *Event) {
	e.next = nil
	if b.tail == nil {
		b.head = e
	} else {
		b.tail.next = e
	}
	b.tail = e
}

// Scheduler is the discrete-event executive: a clock plus a hierarchical
// timer wheel of pending events. Events scheduled for the same instant fire
// in FIFO order. The zero Scheduler is ready to use.
type Scheduler struct {
	now     Time
	stopped bool
	// executed counts callbacks run; exposed for tests and for guarding
	// against runaway simulations.
	executed uint64
	// live is the number of pending, uncancelled events (wheel + overflow).
	live int
	// peek caches the earliest live event when the scheduler can prove it
	// is the earliest (sole live event, or inserted strictly before a
	// valid peek). It lets the schedule→fire cycle skip the bitmap walk;
	// nil means "unknown" and the fire path falls back to the scan. It is
	// invalidated on fire and on Cancel, so it can never dangle.
	peek *Event

	// Level 0: one slot per nanosecond, two-level occupancy bitmap.
	l0    [wheelL0Slots]bucket
	l0occ [wheelL0Slots / 64]uint64
	l0sum uint64

	// Upper levels: 64 slots each, one occupancy word per level.
	lv  [wheelUpper][wheelSlots]bucket
	occ [wheelUpper]uint64

	// Overflow ladder for events beyond the wheel span. overMin is the
	// minimum live timestamp (valid while overLive > 0); cancellations
	// bump overDead and the next sweep compacts and recomputes.
	over     bucket
	overMin  Time
	overLive int
	overDead int

	// free is the event recycle list (intrusive via next). Detached events
	// return here when reaped; handle-returning events return here once
	// fired, their generation bumped so an outstanding Handle can never
	// alias the reused slot (see retire).
	free *Event

	// Observability instruments (nil when uninstrumented; all nil-safe).
	// The per-event counters are batched: the hot path bumps the plain
	// nSched/nExec/nCanc/nRecy tallies and flushMetrics publishes the
	// deltas at run-loop boundaries, so firing an event costs no atomic
	// operations. qPeak mirrors the pending-event high-water mark locally
	// so the gauge is only written when the peak actually moves.
	mScheduled *metrics.Counter
	mExecuted  *metrics.Counter
	mCancelled *metrics.Counter
	mRecycled  *metrics.Counter
	mQueuePeak *metrics.Gauge
	nSched     uint64
	nExec      uint64
	nCanc      uint64
	nRecy      uint64
	qPeak      int
}

// NewScheduler returns a Scheduler with the clock at the epoch.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Instrument registers the scheduler's event-churn metrics in reg:
// sim_events_scheduled/executed/cancelled/recycled_total and the
// sim_event_queue_peak gauge. A nil reg leaves the scheduler
// uninstrumented (the increments become no-ops on nil instruments).
func (s *Scheduler) Instrument(reg *metrics.Registry) {
	s.flushMetrics() // publish (or drop, when uninstrumented) prior tallies
	s.mScheduled = reg.Counter("sim_events_scheduled_total")
	s.mExecuted = reg.Counter("sim_events_executed_total")
	s.mCancelled = reg.Counter("sim_events_cancelled_total")
	s.mRecycled = reg.Counter("sim_events_recycled_total")
	s.mQueuePeak = reg.Gauge("sim_event_queue_peak")
}

// flushMetrics publishes the batched event-churn tallies to the registered
// counters. Run, RunUntil, and RunFor flush on exit, so snapshots taken
// between runs (and the live endpoint, once per driver slice) see exact
// totals without the hot path paying an atomic per event.
func (s *Scheduler) flushMetrics() {
	if s.nSched != 0 {
		s.mScheduled.Add(s.nSched)
		s.nSched = 0
	}
	if s.nExec != 0 {
		s.mExecuted.Add(s.nExec)
		s.nExec = 0
	}
	if s.nCanc != 0 {
		s.mCancelled.Add(s.nCanc)
		s.nCanc = 0
	}
	if s.nRecy != 0 {
		s.mRecycled.Add(s.nRecy)
		s.nRecy = 0
	}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Len returns the number of pending events.
func (s *Scheduler) Len() int { return s.live }

// Executed returns the number of callbacks that have run.
func (s *Scheduler) Executed() uint64 { return s.executed }

// Schedule queues fn to run at instant at. Scheduling in the past panics:
// that is always a protocol-logic bug and silently reordering events would
// destroy causality. Scheduling exactly at Now is allowed and fires before
// time advances further.
func (s *Scheduler) Schedule(at Time, fn func()) Handle {
	e := s.schedule(at, fn, nil, nil, false)
	return Handle{e: e, gen: e.gen, at: at}
}

// ScheduleDetached queues fn like Schedule but returns no handle: the event
// cannot be cancelled, and the scheduler recycles the Event object after it
// fires. Hot paths that never cancel (frame deliveries, receive-processing
// completions, workload arrivals) use it to keep the event churn of a long
// sweep allocation-free.
func (s *Scheduler) ScheduleDetached(at Time, fn func()) {
	s.schedule(at, fn, nil, nil, true)
}

// ScheduleArgDetached queues a detached event that calls fn(arg) at instant
// at. The point over ScheduleDetached is allocation: a hot path delivering
// many items shares ONE long-lived fn and threads the per-item state
// through arg, so nothing escapes per event. Passing a pointer as arg is
// allocation-free; non-pointer values may box.
func (s *Scheduler) ScheduleArgDetached(at Time, fn func(any), arg any) {
	s.schedule(at, nil, fn, arg, true)
}

// ScheduleAfter queues fn to run d after the current instant. Negative
// delays clamp to zero.
func (s *Scheduler) ScheduleAfter(d Duration, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return s.Schedule(s.now.Add(d), fn)
}

// ScheduleAfterDetached is ScheduleAfter without a cancel handle; see
// ScheduleDetached.
func (s *Scheduler) ScheduleAfterDetached(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.ScheduleDetached(s.now.Add(d), fn)
}

func (s *Scheduler) schedule(at Time, fn func(), fnArg func(any), arg any, detached bool) *Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	if fn == nil && fnArg == nil {
		panic("sim: schedule with nil callback")
	}
	e := s.free
	if e != nil {
		// Recycled events already carry owner == s (the freelist is
		// per-scheduler); only the lifecycle flags need resetting.
		s.free = e.next
		e.fired, e.cancel, e.overflow = false, false, false
		s.nRecy++
	} else {
		// The process-wide pool supplies events recycled from finished
		// schedulers (see Recycle), so a sweep of hermetic runs pays the
		// event working set once, not per run. The generation carries over:
		// it is the one field that must outlive every previous owner.
		e = eventPool.Get().(*Event)
		*e = Event{owner: s, gen: e.gen}
	}
	e.at, e.fn, e.detached = at, fn, detached
	e.fnArg, e.arg = fnArg, arg
	// The L0 case is inlined here: most events land within the current
	// 4096 ns window, and the indirect call into insert costs as much as
	// the bucket push itself.
	if x := uint64(at) ^ uint64(s.now); x < wheelL0Slots {
		sl := int(uint64(at)) & (wheelL0Slots - 1)
		s.l0[sl].push(e)
		s.l0occ[(sl>>6)&63] |= 1 << uint(sl&63)
		s.l0sum |= 1 << uint((sl>>6)&63)
	} else {
		s.insert(e)
	}
	s.live++
	if s.live == 1 || (s.peek != nil && at < s.peek.at) {
		// Strict <: an equal-time insert keeps the earlier event as
		// peek, preserving FIFO.
		s.peek = e
	}
	s.nSched++
	if s.live > s.qPeak {
		s.qPeak = s.live
		s.mQueuePeak.Set(float64(s.qPeak))
	}
	return e
}

// insert places e in the wheel level determined by the highest bit in
// which e.at differs from now, or on the overflow ladder when that bit is
// above the wheel span. Callers cascading a bucket first advance now to
// the bucket's span start so re-inserted events land strictly lower.
func (s *Scheduler) insert(e *Event) {
	x := uint64(e.at) ^ uint64(s.now)
	switch {
	case x>>wheelL0Bits == 0:
		sl := int(uint64(e.at) & (wheelL0Slots - 1))
		s.l0[sl].push(e)
		s.l0occ[sl>>6] |= 1 << uint(sl&63)
		s.l0sum |= 1 << uint(sl>>6)
	case x>>wheelSpanBits != 0:
		e.overflow = true
		s.over.push(e)
		if s.overLive == 0 || e.at < s.overMin {
			s.overMin = e.at
		}
		s.overLive++
	default:
		l := (bits.Len64(x) - wheelL0Bits - 1) / wheelLvlBits
		sl := int(uint64(e.at)>>uint(wheelL0Bits+l*wheelLvlBits)) & (wheelSlots - 1)
		s.lv[l][sl].push(e)
		s.occ[l] |= 1 << uint(sl)
	}
}

func (s *Scheduler) clearL0(sl int) {
	w := (sl >> 6) & 63
	s.l0occ[w] &^= 1 << uint(sl&63)
	if s.l0occ[w] == 0 {
		s.l0sum &^= 1 << uint(w)
	}
}

// retire takes an event that left the wheel: the callback reference is
// dropped so completed closures (and everything they capture) become
// garbage-collectable during long sweeps, and recyclable events return to
// the freelist. Detached events are always recyclable; handled events are
// recyclable once FIRED — the generation bump invalidates every outstanding
// Handle, so reuse cannot alias one. Cancelled handled events are the one
// class left to the garbage collector: their generation must keep matching
// so the Handle keeps answering Cancelled()=true, Fired()=false.
func (s *Scheduler) retire(e *Event) {
	e.fn, e.fnArg, e.arg = nil, nil, nil
	if e.detached || e.fired {
		e.gen++
		e.next = s.free
		s.free = e
	} else {
		e.next = nil
	}
}

// scanReap retires dead events in b, preserving the order of the live
// ones, and returns the minimum live timestamp (Never if the bucket
// drained) plus whether any live event remains.
func (s *Scheduler) scanReap(b *bucket) (Time, bool) {
	var head, tail *Event
	min := Never
	for e := b.head; e != nil; {
		next := e.next
		if e.cancel {
			s.retire(e)
		} else {
			e.next = nil
			if head == nil {
				head = e
			} else {
				tail.next = e
			}
			tail = e
			if e.at < min {
				min = e.at
			}
		}
		e = next
	}
	b.head, b.tail = head, tail
	return min, head != nil
}

// sweepOverflow compacts the overflow ladder: dead events are retired,
// events whose 2^54 ns block the clock has entered are inserted into the
// wheel (in original insertion order, preserving FIFO), and the minimum of
// the remainder is recomputed. Called whenever the clock crosses a block
// boundary — before any user code runs in the new block — and to refresh
// overMin after cancellations.
func (s *Scheduler) sweepOverflow() {
	var head, tail *Event
	min := Never
	live := 0
	blk := uint64(s.now) >> wheelSpanBits
	for e := s.over.head; e != nil; {
		next := e.next
		switch {
		case e.cancel:
			s.retire(e)
		case uint64(e.at)>>wheelSpanBits == blk:
			e.overflow = false
			s.insert(e)
		default:
			e.next = nil
			if head == nil {
				head = e
			} else {
				tail.next = e
			}
			tail = e
			if e.at < min {
				min = e.at
			}
			live++
		}
		e = next
	}
	s.over.head, s.over.tail = head, tail
	s.overMin, s.overLive, s.overDead = min, live, 0
}

// overflowMin returns the earliest live overflow timestamp, compacting
// first if cancellations may have invalidated the cached minimum.
func (s *Scheduler) overflowMin() Time {
	if s.overDead > 0 {
		s.sweepOverflow()
	}
	if s.overLive == 0 {
		return Never
	}
	return s.overMin
}

// Cancel removes e from the schedule if it has not fired: the event is
// marked dead in O(1) and reaped when its bucket is next visited — no
// restructuring. It is safe to call multiple times and on nil.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.fired || e.cancel {
		return
	}
	e.cancel = true
	// The closure is dead weight from here on.
	e.fn, e.fnArg, e.arg = nil, nil, nil
	s.nCanc++
	if o := e.owner; o != nil {
		o.live--
		if o.peek == e {
			o.peek = nil
		}
		if e.overflow {
			o.overLive--
			o.overDead++
		}
	}
}

// stepUntil executes the earliest pending event if its timestamp is at or
// before deadline, advancing the clock to it, and reports whether an event
// fired. It is careful to mutate nothing user-visible (beyond reaping dead
// events) when the answer is "no": cascades only happen once an event at
// or before the deadline is known to exist.
func (s *Scheduler) stepUntil(deadline Time) bool {
	// Fastest path: the cached earliest event, fired straight off its L0
	// bucket without the bitmap walk when it sits at the head.
	if e := s.peek; e != nil {
		if e.at > deadline {
			return false
		}
		sl := int(uint64(e.at)) & (wheelL0Slots - 1)
		bkt := &s.l0[sl]
		if bkt.head == e {
			s.peek = nil
			bkt.head = e.next
			if bkt.head == nil {
				bkt.tail = nil
				s.clearL0(sl)
			}
			s.now = e.at
			e.fired = true
			s.executed++
			s.live--
			s.nExec++
			fn, fnArg, arg := e.fn, e.fnArg, e.arg
			s.retire(e)
			if fnArg != nil {
				fnArg(arg)
			} else {
				fn()
			}
			return true
		}
		// Peek is valid but not an L0 head (upper level, overflow, or
		// behind a dead prefix): fall back to the scan.
		s.peek = nil
	}
	for {
		// Fast path: L0 holds the events of the 4096 ns window around
		// now; its earliest occupied slot is the global minimum.
		if s.l0sum != 0 {
			w := bits.TrailingZeros64(s.l0sum) & 63
			bb := bits.TrailingZeros64(s.l0occ[w]) & 63
			sl := w<<6 | bb
			bkt := &s.l0[sl]
			e := bkt.head
			for e != nil && e.cancel {
				bkt.head = e.next
				s.retire(e)
				e = bkt.head
			}
			if e == nil {
				bkt.tail = nil
				s.clearL0(sl)
				continue
			}
			if e.at > deadline {
				return false
			}
			bkt.head = e.next
			if bkt.head == nil {
				bkt.tail = nil
				s.clearL0(sl)
			}
			s.now = e.at
			e.fired = true
			s.executed++
			s.live--
			s.nExec++
			fn, fnArg, arg := e.fn, e.fnArg, e.arg
			// Retire before invoking: e is off the wheel and, if
			// detached, has no outstanding references, so the callback
			// may immediately reuse the slot for events it schedules.
			s.retire(e)
			if fnArg != nil {
				fnArg(arg)
			} else {
				fn()
			}
			return true
		}

		// L0 drained: cascade the earliest occupied upper bucket. The
		// lowest occupied level's lowest occupied slot holds the global
		// minimum (all levels share their upper timestamp bits with now).
		lvl := -1
		for i := range s.occ {
			if s.occ[i] != 0 {
				lvl = i
				break
			}
		}
		if lvl >= 0 {
			sl := bits.TrailingZeros64(s.occ[lvl])
			bkt := &s.lv[lvl][sl]
			minAt, ok := s.scanReap(bkt)
			if !ok {
				s.occ[lvl] &^= 1 << uint(sl)
				continue
			}
			if minAt > deadline {
				return false
			}
			// Advance the clock to the bucket's span start — there is
			// provably nothing pending in between — then re-insert its
			// events, which now land strictly below lvl.
			shift := uint(wheelL0Bits + lvl*wheelLvlBits)
			start := minAt &^ (Time(1)<<shift - 1)
			head := bkt.head
			bkt.head, bkt.tail = nil, nil
			s.occ[lvl] &^= 1 << uint(sl)
			if start > s.now {
				s.now = start
			}
			for e := head; e != nil; {
				next := e.next
				s.insert(e)
				e = next
			}
			continue
		}

		// Wheel empty: pull the overflow ladder's block if it is due.
		if s.overLive == 0 && s.overDead == 0 {
			return false
		}
		m := s.overflowMin()
		if m == Never || m > deadline {
			return false
		}
		if bs := m >> wheelSpanBits << wheelSpanBits; bs > s.now {
			s.now = bs
		}
		s.sweepOverflow()
	}
}

// Step executes the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (s *Scheduler) Step() bool {
	return s.stepUntil(Never)
}

// Run executes events until the schedule drains or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
	s.flushMetrics()
}

// advanceClock moves the clock forward to `to` after every event <= `to`
// has fired. A jump that leaves the current L0 window invalidates the wheel
// position of upper-level buckets lying on the clock's new path: their
// events now share their whole level field with the clock, so the
// lowest-occupied-slot-is-the-minimum invariant only survives if they
// cascade down. Exactly one bucket per level (the slot `to` itself indexes)
// can be affected — events in any other slot still differ from the clock in
// that level's field, and events above a field `to` crossed would have
// timestamps below `to` and have already fired.
func (s *Scheduler) advanceClock(to Time) {
	old := s.now
	s.now = to
	if uint64(old)>>wheelL0Bits == uint64(to)>>wheelL0Bits {
		return // same L0 window: every placement is still valid
	}
	for l := 0; l < wheelUpper; l++ {
		shift := uint(wheelL0Bits + l*wheelLvlBits)
		sl := int(uint64(to)>>shift) & (wheelSlots - 1)
		if s.occ[l]&(1<<uint(sl)) == 0 {
			continue
		}
		bkt := &s.lv[l][sl]
		head := bkt.head
		bkt.head, bkt.tail = nil, nil
		s.occ[l] &^= 1 << uint(sl)
		for e := head; e != nil; {
			next := e.next
			if e.cancel {
				s.retire(e)
			} else {
				s.insert(e) // lands strictly below level l
			}
			e = next
		}
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to the deadline (if it is later than the last event executed). Events
// scheduled beyond the deadline remain queued.
func (s *Scheduler) RunUntil(deadline Time) {
	s.stopped = false
	for !s.stopped && s.stepUntil(deadline) {
	}
	if !s.stopped && s.now < deadline {
		crossed := uint64(s.now)>>wheelSpanBits != uint64(deadline)>>wheelSpanBits
		s.advanceClock(deadline)
		if crossed && s.overLive+s.overDead > 0 {
			// Entering a new block: adopt its overflow events before
			// any user code can schedule alongside them.
			s.sweepOverflow()
		}
	}
	s.flushMetrics()
}

// RunFor advances the simulation by d. Shorthand for RunUntil(Now+d).
func (s *Scheduler) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// Recycle donates the scheduler's retired-event freelist to the process-wide
// event pool and clears it. Call when the scheduler is finished (a hermetic
// run has ended) so the next scheduler starts with a warm pool instead of
// allocating its event population one object at a time. Only the freelist is
// donated — events still pending in the wheel may have live handles and are
// left to the garbage collector. The scheduler remains usable afterwards.
func (s *Scheduler) Recycle() {
	for e := s.free; e != nil; {
		next := e.next
		// Zero everything except the generation: a stale Handle from this
		// scheduler's lifetime must still mismatch after the event serves a
		// future scheduler.
		*e = Event{gen: e.gen}
		eventPool.Put(e)
		e = next
	}
	s.free = nil
}

// Stop halts Run/RunUntil after the current callback returns. Pending events
// are preserved; the simulation can be resumed.
func (s *Scheduler) Stop() { s.stopped = true }

// NextEventAt returns the timestamp of the earliest pending event, or Never
// if nothing is scheduled. It never advances the clock or reorders events;
// dead events encountered during the scan are reaped.
func (s *Scheduler) NextEventAt() Time {
	if s.peek != nil {
		return s.peek.at
	}
	for {
		if s.l0sum != 0 {
			w := bits.TrailingZeros64(s.l0sum)
			bb := bits.TrailingZeros64(s.l0occ[w])
			sl := w<<6 | bb
			bkt := &s.l0[sl]
			e := bkt.head
			for e != nil && e.cancel {
				bkt.head = e.next
				s.retire(e)
				e = bkt.head
			}
			if e == nil {
				bkt.tail = nil
				s.clearL0(sl)
				continue
			}
			return e.at
		}
		lvl := -1
		for i := range s.occ {
			if s.occ[i] != 0 {
				lvl = i
				break
			}
		}
		if lvl < 0 {
			return s.overflowMin()
		}
		sl := bits.TrailingZeros64(s.occ[lvl])
		minAt, ok := s.scanReap(&s.lv[lvl][sl])
		if !ok {
			s.occ[lvl] &^= 1 << uint(sl)
			continue
		}
		return minAt
	}
}
