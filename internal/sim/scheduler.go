package sim

import (
	"container/heap"
	"fmt"
)

// Event is a handle to a scheduled callback. It can be cancelled until it
// fires; cancelling an already-fired or already-cancelled event is a no-op.
type Event struct {
	at     Time
	seq    uint64 // tie-breaker: FIFO among events at the same instant
	fn     func()
	index  int // heap index, -1 once removed
	fired  bool
	cancel bool
}

// At returns the instant the event is (or was) scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e.cancel }

// Fired reports whether the event's callback has run.
func (e *Event) Fired() bool { return e.fired }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Scheduler is the discrete-event executive: a clock plus an ordered queue of
// pending events. Events scheduled for the same instant fire in FIFO order.
// The zero Scheduler is ready to use.
type Scheduler struct {
	now     Time
	queue   eventHeap
	seq     uint64
	stopped bool
	// executed counts callbacks run; exposed for tests and for guarding
	// against runaway simulations.
	executed uint64
}

// NewScheduler returns a Scheduler with the clock at the epoch.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Len returns the number of pending events.
func (s *Scheduler) Len() int { return len(s.queue) }

// Executed returns the number of callbacks that have run.
func (s *Scheduler) Executed() uint64 { return s.executed }

// Schedule queues fn to run at instant at. Scheduling in the past panics:
// that is always a protocol-logic bug and silently reordering events would
// destroy causality. Scheduling exactly at Now is allowed and fires before
// time advances further.
func (s *Scheduler) Schedule(at Time, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	e := &Event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// ScheduleAfter queues fn to run d after the current instant. Negative
// delays clamp to zero.
func (s *Scheduler) ScheduleAfter(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.Schedule(s.now.Add(d), fn)
}

// Cancel removes e from the queue if it has not fired. It is safe to call
// multiple times and on events from other schedulers only if never enqueued
// here (the heap index guards removal).
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.fired || e.cancel {
		return
	}
	e.cancel = true
	if e.index >= 0 && e.index < len(s.queue) && s.queue[e.index] == e {
		heap.Remove(&s.queue, e.index)
	}
}

// Step executes the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancel {
			continue
		}
		s.now = e.at
		e.fired = true
		s.executed++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to the deadline (if it is later than the last event executed). Events
// scheduled beyond the deadline remain queued.
func (s *Scheduler) RunUntil(deadline Time) {
	s.stopped = false
	for !s.stopped && len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// RunFor advances the simulation by d. Shorthand for RunUntil(Now+d).
func (s *Scheduler) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// Stop halts Run/RunUntil after the current callback returns. Pending events
// are preserved; the simulation can be resumed.
func (s *Scheduler) Stop() { s.stopped = true }

// NextEventAt returns the timestamp of the earliest pending event, or Never
// if the queue is empty.
func (s *Scheduler) NextEventAt() Time {
	for len(s.queue) > 0 {
		if s.queue[0].cancel {
			heap.Pop(&s.queue)
			continue
		}
		return s.queue[0].at
	}
	return Never
}
