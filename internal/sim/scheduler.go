package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/metrics"
)

// Event is a handle to a scheduled callback. It can be cancelled until it
// fires; cancelling an already-fired or already-cancelled event is a no-op.
type Event struct {
	at     Time
	seq    uint64 // tie-breaker: FIFO among events at the same instant
	fn     func()
	index  int // heap index, -1 once removed
	fired  bool
	cancel bool
	// detached marks an event scheduled via ScheduleDetached: no handle
	// escaped to the caller, so the scheduler may recycle the Event object
	// once it leaves the queue.
	detached bool
}

// At returns the instant the event is (or was) scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e.cancel }

// Fired reports whether the event's callback has run.
func (e *Event) Fired() bool { return e.fired }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Scheduler is the discrete-event executive: a clock plus an ordered queue of
// pending events. Events scheduled for the same instant fire in FIFO order.
// The zero Scheduler is ready to use.
type Scheduler struct {
	now     Time
	queue   eventHeap
	seq     uint64
	stopped bool
	// executed counts callbacks run; exposed for tests and for guarding
	// against runaway simulations.
	executed uint64
	// free is the recycle list for detached events. Only events whose
	// handle never escaped (ScheduleDetached) are returned here, so reuse
	// can never alias a handle a caller still holds.
	free []*Event

	// Observability instruments (nil when uninstrumented; all nil-safe).
	// qPeak mirrors the queue-length high-water mark locally so the gauge
	// is only written when the peak actually moves.
	mScheduled *metrics.Counter
	mExecuted  *metrics.Counter
	mCancelled *metrics.Counter
	mRecycled  *metrics.Counter
	mQueuePeak *metrics.Gauge
	qPeak      int
}

// NewScheduler returns a Scheduler with the clock at the epoch.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Instrument registers the scheduler's event-churn metrics in reg:
// sim_events_scheduled/executed/cancelled/recycled_total and the
// sim_event_queue_peak gauge. A nil reg leaves the scheduler
// uninstrumented (the increments become no-ops on nil instruments).
func (s *Scheduler) Instrument(reg *metrics.Registry) {
	s.mScheduled = reg.Counter("sim_events_scheduled_total")
	s.mExecuted = reg.Counter("sim_events_executed_total")
	s.mCancelled = reg.Counter("sim_events_cancelled_total")
	s.mRecycled = reg.Counter("sim_events_recycled_total")
	s.mQueuePeak = reg.Gauge("sim_event_queue_peak")
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Len returns the number of pending events.
func (s *Scheduler) Len() int { return len(s.queue) }

// Executed returns the number of callbacks that have run.
func (s *Scheduler) Executed() uint64 { return s.executed }

// Schedule queues fn to run at instant at. Scheduling in the past panics:
// that is always a protocol-logic bug and silently reordering events would
// destroy causality. Scheduling exactly at Now is allowed and fires before
// time advances further.
func (s *Scheduler) Schedule(at Time, fn func()) *Event {
	return s.schedule(at, fn, false)
}

// ScheduleDetached queues fn like Schedule but returns no handle: the event
// cannot be cancelled, and the scheduler recycles the Event object after it
// fires. Hot paths that never cancel (frame deliveries, receive-processing
// completions, workload arrivals) use it to keep the event churn of a long
// sweep allocation-free.
func (s *Scheduler) ScheduleDetached(at Time, fn func()) {
	s.schedule(at, fn, true)
}

// ScheduleAfter queues fn to run d after the current instant. Negative
// delays clamp to zero.
func (s *Scheduler) ScheduleAfter(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.Schedule(s.now.Add(d), fn)
}

// ScheduleAfterDetached is ScheduleAfter without a cancel handle; see
// ScheduleDetached.
func (s *Scheduler) ScheduleAfterDetached(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.ScheduleDetached(s.now.Add(d), fn)
}

func (s *Scheduler) schedule(at Time, fn func(), detached bool) *Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		*e = Event{}
		s.mRecycled.Inc()
	} else {
		e = &Event{}
	}
	e.at, e.seq, e.fn, e.detached = at, s.seq, fn, detached
	s.seq++
	heap.Push(&s.queue, e)
	s.mScheduled.Inc()
	if len(s.queue) > s.qPeak {
		s.qPeak = len(s.queue)
		s.mQueuePeak.Set(float64(s.qPeak))
	}
	return e
}

// retire takes an event that left the queue: the callback reference is
// dropped so completed closures (and everything they capture) become
// garbage-collectable during long sweeps, and detached events return to the
// recycle list.
func (s *Scheduler) retire(e *Event) {
	e.fn = nil
	if e.detached {
		s.free = append(s.free, e)
	}
}

// Cancel removes e from the queue if it has not fired. It is safe to call
// multiple times and on events from other schedulers only if never enqueued
// here (the heap index guards removal).
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.fired || e.cancel {
		return
	}
	e.cancel = true
	s.mCancelled.Inc()
	if e.index >= 0 && e.index < len(s.queue) && s.queue[e.index] == e {
		heap.Remove(&s.queue, e.index)
		// The handle stays with the caller (never recycled), but the
		// closure is dead weight from here on.
		e.fn = nil
	}
}

// Step executes the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancel {
			s.retire(e)
			continue
		}
		s.now = e.at
		e.fired = true
		s.executed++
		s.mExecuted.Inc()
		fn := e.fn
		// Retire before invoking: e is off the heap and, if detached, has
		// no outstanding references, so the callback may immediately reuse
		// the slot for events it schedules.
		s.retire(e)
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to the deadline (if it is later than the last event executed). Events
// scheduled beyond the deadline remain queued.
func (s *Scheduler) RunUntil(deadline Time) {
	s.stopped = false
	for !s.stopped && len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// RunFor advances the simulation by d. Shorthand for RunUntil(Now+d).
func (s *Scheduler) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// Stop halts Run/RunUntil after the current callback returns. Pending events
// are preserved; the simulation can be resumed.
func (s *Scheduler) Stop() { s.stopped = true }

// NextEventAt returns the timestamp of the earliest pending event, or Never
// if the queue is empty.
func (s *Scheduler) NextEventAt() Time {
	for len(s.queue) > 0 {
		if s.queue[0].cancel {
			s.retire(heap.Pop(&s.queue).(*Event))
			continue
		}
		return s.queue[0].at
	}
	return Never
}
