package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// The timer wheel must be observationally identical to a textbook
// min-ordered heap with FIFO tie-breaking — that heap IS the determinism
// contract (DESIGN.md §8). This file drives both through random
// interleavings of schedule / cancel / reschedule, including same-instant
// bursts and far-future events that land on the overflow ladder, and
// requires the full (id, firing-time) sequences to match exactly.

type refEvent struct {
	at   Time
	seq  uint64
	id   int
	dead bool
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

type firing struct {
	id int
	at Time
}

// spawnChild reports whether an event deterministically schedules a child
// when it fires, and at what offset. Only primary ids spawn (children get
// ids >= 1e9), so the recursion is one level deep and both executions agree
// without sharing state.
func spawnChild(id int) (childID int, delta Duration, ok bool) {
	if id >= 1_000_000_000 || id%17 != 0 {
		return 0, 0, false
	}
	return id + 1_000_000_000, Duration(id % 5), true
}

func TestSchedulerMatchesReferenceHeap(t *testing.T) {
	const overflowJump = Time(1) << 55 // beyond the 2^54 ns wheel span

	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))

		s := NewScheduler()
		var got []firing

		var ref refHeap
		var refSeq uint64
		refNow := Time(0)
		var want []firing

		// live maps primary ids to their wheel handles and ref nodes so
		// cancel/reschedule hit the same victim on both sides.
		handles := map[int]Handle{}
		nodes := map[int]*refEvent{}
		liveIDs := []int{}
		nextID := 1
		lastAt := Time(0)

		schedule := func(at Time) {
			id := nextID
			nextID++
			var fire func()
			fire = func() {
				got = append(got, firing{id, s.Now()})
				if cid, d, ok := spawnChild(id); ok {
					child := cid
					s.Schedule(s.Now().Add(d), func() {
						got = append(got, firing{child, s.Now()})
					})
				}
			}
			handles[id] = s.Schedule(at, fire)
			n := &refEvent{at: at, seq: refSeq, id: id}
			refSeq++
			heap.Push(&ref, n)
			nodes[id] = n
			liveIDs = append(liveIDs, id)
			lastAt = at
		}

		cancel := func() {
			if len(liveIDs) == 0 {
				return
			}
			i := rng.Intn(len(liveIDs))
			id := liveIDs[i]
			liveIDs[i] = liveIDs[len(liveIDs)-1]
			liveIDs = liveIDs[:len(liveIDs)-1]
			handles[id].Cancel()
			nodes[id].dead = true
			delete(handles, id)
			delete(nodes, id)
		}

		pickAt := func() Time {
			switch rng.Intn(10) {
			case 0, 1: // same-instant burst: reuse the last scheduled instant
				if lastAt >= refNow {
					return lastAt
				}
				return refNow
			case 2: // right now
				return refNow
			case 3: // far future: overflow ladder
				return refNow + overflowJump + Time(rng.Intn(1000))
			case 4: // beyond L0 but inside the wheel levels
				return refNow + Time(1<<20+rng.Intn(1<<22))
			default: // near future, dense in L0
				return refNow + Time(rng.Intn(4096))
			}
		}

		// runRef fires every pending reference event at or before deadline,
		// replicating the deterministic child-spawning rule.
		runRef := func(deadline Time) {
			for len(ref) > 0 && ref[0].at <= deadline {
				e := heap.Pop(&ref).(*refEvent)
				if e.dead {
					continue
				}
				if e.id < 1_000_000_000 {
					delete(handles, e.id)
					delete(nodes, e.id)
					for i, id := range liveIDs {
						if id == e.id {
							liveIDs[i] = liveIDs[len(liveIDs)-1]
							liveIDs = liveIDs[:len(liveIDs)-1]
							break
						}
					}
				}
				want = append(want, firing{e.id, e.at})
				if cid, d, ok := spawnChild(e.id); ok {
					heap.Push(&ref, &refEvent{at: e.at.Add(d), seq: refSeq, id: cid})
					refSeq++
				}
			}
			if deadline > refNow {
				refNow = deadline
			}
		}

		for round := 0; round < 40; round++ {
			for op := 0; op < 30; op++ {
				switch r := rng.Intn(100); {
				case r < 65:
					schedule(pickAt())
				case r < 82:
					cancel()
				default: // reschedule: cancel one, schedule a fresh instant
					cancel()
					schedule(pickAt())
				}
			}
			var deadline Time
			if rng.Intn(8) == 0 {
				// Jump past the wheel span to drain overflow events.
				deadline = refNow + overflowJump + Time(rng.Intn(2000))
			} else {
				deadline = refNow + Time(rng.Intn(6000))
			}
			s.RunUntil(deadline)
			runRef(deadline)
			if s.Now() != refNow {
				t.Fatalf("seed %d round %d: now %d != ref %d", seed, round, s.Now(), refNow)
			}
		}

		// Drain everything still pending, overflow ladder included.
		s.Run()
		runRef(Never)

		if len(got) != len(want) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: firing %d: got (id=%d, at=%d), want (id=%d, at=%d)",
					seed, i, got[i].id, got[i].at, want[i].id, want[i].at)
			}
		}
	}
}
