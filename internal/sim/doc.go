// Package sim provides a deterministic discrete-event simulation kernel.
//
// All protocol evaluation in this repository runs in virtual time: a Scheduler
// owns a hierarchical timer wheel of events (see DESIGN.md §8), and the
// simulation advances by executing the earliest event and jumping the clock
// to its timestamp. Nothing waits on
// the wall clock, so a simulated hour of a 1 Gbps satellite link runs in
// milliseconds, and a run is exactly reproducible from its RNG seed
// (assumption 8 of the paper's link model: deterministic parameters).
//
// The kernel is intentionally tiny:
//
//   - Time and Duration give virtual timestamps with nanosecond resolution.
//   - Scheduler queues callbacks; events may be cancelled through the Event
//     handle returned by Schedule.
//   - Timer is a restartable one-shot built on Scheduler, matching how DLC
//     protocols describe their checkpoint/failure timers.
//   - RNG is a seeded xoshiro256** generator so simulations never depend on
//     global math/rand state.
//
// The kernel is single-goroutine by design: determinism is a correctness
// requirement for the experiments, and the protocols themselves are sans-IO
// state machines (see internal/arq) that need no concurrency to execute.
package sim
