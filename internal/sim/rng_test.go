package sim

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds coincided %d/1000 times", same)
	}
}

func TestRNGZeroSeedValid(t *testing.T) {
	r := NewRNG(0)
	var zeros int
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Fatalf("zero seed produced %d zero outputs", zeros)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(2)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) covered %d values, want 7", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestInt63n(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 1000; i++ {
		v := r.Int63n(1 << 40)
		if v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func TestBernoulli(t *testing.T) {
	r := NewRNG(4)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	if r.Bernoulli(-0.5) || !r.Bernoulli(1.5) {
		t.Fatal("clamping broken")
	}
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", p)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(2.5)
	}
	mean := sum / n
	if math.Abs(mean-2.5) > 0.05 {
		t.Fatalf("Exp mean = %v, want ~2.5", mean)
	}
	if r.Exp(0) != 0 || r.Exp(-1) != 0 {
		t.Fatal("non-positive mean should yield 0")
	}
}

func TestExpDuration(t *testing.T) {
	r := NewRNG(11)
	var sum Duration
	const n = 100000
	for i := 0; i < n; i++ {
		d := r.ExpDuration(10 * Millisecond)
		if d < 0 {
			t.Fatalf("negative duration %v", d)
		}
		sum += d
	}
	mean := sum / n
	if mean < 9*Millisecond || mean > 11*Millisecond {
		t.Fatalf("ExpDuration mean = %v, want ~10ms", mean)
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(6)
	const p = 0.2
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p // mean of failures-before-success
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("Geometric mean = %v, want ~%v", mean, want)
	}
	if r.Geometric(1) != 0 || r.Geometric(2) != 0 {
		t.Fatal("p>=1 should yield 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(8)
	for n := 0; n < 20; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffle(t *testing.T) {
	r := NewRNG(9)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("value %d lost in shuffle", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(10)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams coincided %d/1000 times", same)
	}
}

func TestTimerBasics(t *testing.T) {
	s := NewScheduler()
	fired := 0
	tm := NewTimer(s, func() { fired++ })
	if tm.Active() {
		t.Fatal("new timer should be stopped")
	}
	if tm.Deadline() != Never {
		t.Fatal("stopped timer deadline should be Never")
	}
	tm.Start(10 * Millisecond)
	if !tm.Active() {
		t.Fatal("started timer should be active")
	}
	if tm.Deadline() != Time(10*Millisecond) {
		t.Fatalf("deadline = %v", tm.Deadline())
	}
	s.Run()
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
	if tm.Active() {
		t.Fatal("expired timer should be inactive")
	}
}

func TestTimerRestartReplacesDeadline(t *testing.T) {
	s := NewScheduler()
	fired := 0
	tm := NewTimer(s, func() { fired++ })
	tm.Start(10 * Millisecond)
	tm.Start(30 * Millisecond) // restart pushes deadline out
	s.RunUntil(Time(20 * Millisecond))
	if fired != 0 {
		t.Fatal("timer fired at superseded deadline")
	}
	s.Run()
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler()
	fired := 0
	tm := NewTimer(s, func() { fired++ })
	tm.Start(10 * Millisecond)
	if !tm.Stop() {
		t.Fatal("Stop should report a pending expiry was cancelled")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report nothing pending")
	}
	s.Run()
	if fired != 0 {
		t.Fatal("stopped timer fired")
	}
}

func TestTickerPeriodic(t *testing.T) {
	s := NewScheduler()
	var at []Time
	tk := NewTicker(s, 10*Millisecond, func() { at = append(at, s.Now()) })
	tk.Start()
	s.RunUntil(Time(35 * Millisecond))
	if len(at) != 3 {
		t.Fatalf("ticked %d times, want 3 (at %v)", len(at), at)
	}
	for i, want := range []Time{Time(10 * Millisecond), Time(20 * Millisecond), Time(30 * Millisecond)} {
		if at[i] != want {
			t.Fatalf("tick %d at %v, want %v", i, at[i], want)
		}
	}
	tk.Stop()
	s.RunUntil(Time(100 * Millisecond))
	if len(at) != 3 {
		t.Fatal("ticker ticked after Stop")
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	s := NewScheduler()
	ticks := 0
	var tk *Ticker
	tk = NewTicker(s, Millisecond, func() {
		ticks++
		if ticks == 2 {
			tk.Stop()
		}
	})
	tk.Start()
	s.RunUntil(Time(Second))
	if ticks != 2 {
		t.Fatalf("ticked %d times, want 2", ticks)
	}
	if tk.Active() {
		t.Fatal("ticker should be stopped")
	}
}

func TestTickerSetPeriod(t *testing.T) {
	s := NewScheduler()
	var at []Time
	tk := NewTicker(s, 10*Millisecond, func() { at = append(at, s.Now()) })
	tk.Start()
	s.RunUntil(Time(10 * Millisecond))
	// The pending tick (armed for 20ms) keeps its deadline; the 5ms period
	// applies to ticks after it.
	tk.SetPeriod(5 * Millisecond)
	s.RunUntil(Time(25 * Millisecond))
	want := []Time{Time(10 * Millisecond), Time(20 * Millisecond), Time(25 * Millisecond)}
	if len(at) != len(want) {
		t.Fatalf("ticks at %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("ticks at %v, want %v", at, want)
		}
	}
}

func TestTimerNilArgsPanic(t *testing.T) {
	s := NewScheduler()
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewTimer nil sched", func() { NewTimer(nil, func() {}) })
	mustPanic("NewTimer nil fn", func() { NewTimer(s, nil) })
	mustPanic("NewTicker bad period", func() { NewTicker(s, 0, func() {}) })
	mustPanic("NewTicker nil fn", func() { NewTicker(s, Second, nil) })
	mustPanic("Schedule nil fn", func() { s.Schedule(1, nil) })
}
