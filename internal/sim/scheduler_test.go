package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/metrics"
)

func TestSchedulerZeroValueReady(t *testing.T) {
	var s Scheduler
	ran := false
	s.Schedule(10, func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("event did not run")
	}
	if s.Now() != 10 {
		t.Fatalf("Now = %v, want 10", s.Now())
	}
}

func TestSchedulerOrdersByTime(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.Schedule(30, func() { order = append(order, 3) })
	s.Schedule(10, func() { order = append(order, 1) })
	s.Schedule(20, func() { order = append(order, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.Schedule(5, func() { order = append(order, i) })
	}
	s.Run()
	if len(order) != 100 {
		t.Fatalf("ran %d events, want 100", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO violated)", i, v, i)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := NewScheduler()
	s.Schedule(10, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.Schedule(5, func() {})
}

func TestScheduleAtNowRuns(t *testing.T) {
	s := NewScheduler()
	ran := false
	s.Schedule(10, func() {
		s.Schedule(s.Now(), func() { ran = true })
	})
	s.Run()
	if !ran {
		t.Fatal("event at current instant did not run")
	}
}

func TestCancel(t *testing.T) {
	s := NewScheduler()
	ran := false
	e := s.Schedule(10, func() { ran = true })
	e.Cancel()
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if !e.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	if e.Fired() {
		t.Fatal("cancelled event reports fired")
	}
	// Double-cancel and the zero Handle are no-ops.
	e.Cancel()
	Handle{}.Cancel()
	s.Cancel(nil)
}

func TestCancelFromWithinEvent(t *testing.T) {
	s := NewScheduler()
	ran := false
	var victim Handle
	s.Schedule(5, func() { victim.Cancel() })
	victim = s.Schedule(10, func() { ran = true })
	s.Run()
	if ran {
		t.Fatal("event cancelled mid-run still ran")
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler()
	var ran []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		s.Schedule(at, func() { ran = append(ran, at) })
	}
	s.RunUntil(25)
	if len(ran) != 2 {
		t.Fatalf("ran %d events, want 2", len(ran))
	}
	if s.Now() != 25 {
		t.Fatalf("Now = %v, want 25", s.Now())
	}
	s.RunUntil(100)
	if len(ran) != 4 {
		t.Fatalf("ran %d events total, want 4", len(ran))
	}
	if s.Now() != 100 {
		t.Fatalf("Now = %v, want 100", s.Now())
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	s := NewScheduler()
	s.RunFor(50 * Nanosecond)
	if s.Now() != 50 {
		t.Fatalf("Now = %v, want 50", s.Now())
	}
	s.RunFor(50 * Nanosecond)
	if s.Now() != 100 {
		t.Fatalf("Now = %v, want 100", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := Time(1); i <= 10; i++ {
		s.Schedule(i, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("ran %d events before Stop, want 3", count)
	}
	// Resume.
	s.Run()
	if count != 10 {
		t.Fatalf("ran %d events after resume, want 10", count)
	}
}

func TestNextEventAt(t *testing.T) {
	s := NewScheduler()
	if got := s.NextEventAt(); got != Never {
		t.Fatalf("empty queue NextEventAt = %v, want Never", got)
	}
	e := s.Schedule(42, func() {})
	if got := s.NextEventAt(); got != 42 {
		t.Fatalf("NextEventAt = %v, want 42", got)
	}
	e.Cancel()
	if got := s.NextEventAt(); got != Never {
		t.Fatalf("after cancel NextEventAt = %v, want Never", got)
	}
}

func TestSchedulerPropertyOrdering(t *testing.T) {
	// Property: for any multiset of timestamps, execution order is the
	// sorted order (stable for duplicates by insertion).
	f := func(stamps []uint16) bool {
		s := NewScheduler()
		var got []Time
		for _, st := range stamps {
			at := Time(st)
			s.Schedule(at, func() { got = append(got, at) })
		}
		s.Run()
		if len(got) != len(stamps) {
			return false
		}
		want := make([]Time, 0, len(stamps))
		for _, st := range stamps {
			want = append(want, Time(st))
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerRandomCancellation(t *testing.T) {
	// Fuzz-style: random schedule/cancel interleaving must never execute a
	// cancelled event nor lose a live one.
	rnd := rand.New(rand.NewSource(7))
	s := NewScheduler()
	type tracked struct {
		ev        Handle
		cancelled bool
		ran       bool
	}
	var evs []*tracked
	for i := 0; i < 2000; i++ {
		tr := &tracked{}
		tr.ev = s.Schedule(Time(rnd.Intn(1000)), func() { tr.ran = true })
		evs = append(evs, tr)
		if rnd.Intn(3) == 0 {
			victim := evs[rnd.Intn(len(evs))]
			if !victim.ev.Fired() {
				victim.ev.Cancel()
				victim.cancelled = true
			}
		}
	}
	s.Run()
	for i, tr := range evs {
		if tr.cancelled && tr.ran {
			t.Fatalf("event %d: cancelled but ran", i)
		}
		if !tr.cancelled && !tr.ran {
			t.Fatalf("event %d: live but never ran", i)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	var zero Time
	if got := zero.Add(3 * Second); got != Time(3*Second) {
		t.Fatalf("Add = %v", got)
	}
	if got := Never.Add(Second); got != Never {
		t.Fatal("Never.Add should stay Never")
	}
	if d := Time(5 * Second).Sub(Time(2 * Second)); d != 3*Second {
		t.Fatalf("Sub = %v, want 3s", d)
	}
	if !Time(1).Before(Time(2)) || Time(2).Before(Time(1)) {
		t.Fatal("Before broken")
	}
	if !Time(2).After(Time(1)) || Time(1).After(Time(2)) {
		t.Fatal("After broken")
	}
	if MinTime(3, 5) != 3 || MaxTime(3, 5) != 5 {
		t.Fatal("Min/MaxTime broken")
	}
	if got := Time(1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Seconds = %v, want 1.5", got)
	}
	if Never.String() != "never" {
		t.Fatalf("Never.String = %q", Never.String())
	}
	if Time(time.Second).String() != "1s" {
		t.Fatalf("String = %q", Time(time.Second).String())
	}
}

func TestScale(t *testing.T) {
	if got := Scale(10*Millisecond, 4); got != 40*Millisecond {
		t.Fatalf("Scale = %v", got)
	}
	if got := Scale(Second, 0); got != 0 {
		t.Fatalf("Scale k=0 = %v, want 0", got)
	}
	if got := Scale(Duration(1<<62), 4); got != Duration(1<<63-1) {
		t.Fatalf("Scale overflow = %v, want saturated", got)
	}
}

func TestFormatRate(t *testing.T) {
	cases := map[float64]string{
		3e8:  "300 Mbps",
		1e9:  "1 Gbps",
		2400: "2.4 kbps",
		12:   "12 bps",
	}
	for in, want := range cases {
		if got := FormatRate(in); got != want {
			t.Errorf("FormatRate(%g) = %q, want %q", in, got, want)
		}
	}
}

// TestScheduleArgDetached exercises the shared-callback variant: events
// carry per-item state through arg instead of a per-event closure, fire in
// timestamp-then-FIFO order like any other event, and interleave correctly
// with closure events at the same instant.
func TestScheduleArgDetached(t *testing.T) {
	s := NewScheduler()
	var got []int
	record := func(v any) { got = append(got, *v.(*int)) }
	vals := []int{10, 20, 30, 40}
	s.ScheduleArgDetached(Time(5), record, &vals[1])
	s.ScheduleArgDetached(Time(2), record, &vals[0])
	s.ScheduleArgDetached(Time(5), record, &vals[2]) // same instant: FIFO after vals[1]
	s.Schedule(Time(5), func() { got = append(got, 35) })
	s.ScheduleArgDetached(Time(9), record, &vals[3])
	s.Run()
	want := []int{10, 20, 30, 35, 40}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
}

// TestScheduleArgDetachedRecycles pins the allocation contract: pointer
// args thread through the event freelist without boxing, so the steady
// state is allocation-free.
func TestScheduleArgDetachedRecycles(t *testing.T) {
	s := NewScheduler()
	var fired int
	var arg int
	var tick func(any)
	tick = func(v any) {
		fired++
		if fired < 1000 {
			s.ScheduleArgDetached(s.Now().Add(Microsecond), tick, v)
		}
	}
	s.ScheduleArgDetached(s.Now().Add(Microsecond), tick, &arg)
	s.Run() // warm the freelist
	allocs := testing.AllocsPerRun(10, func() {
		fired = 0
		s.ScheduleArgDetached(s.Now().Add(Microsecond), tick, &arg)
		s.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state arg events allocated %.1f/run, want 0", allocs)
	}
}

// TestHandleStaleAfterRecycle pins the generation contract: once a handled
// event fires, its slot may be reused immediately, and the stale handle must
// (a) keep reporting Fired, (b) refuse to cancel the new occupant.
func TestHandleStaleAfterRecycle(t *testing.T) {
	s := NewScheduler()
	h1 := s.Schedule(10, func() {})
	s.Run()
	if !h1.Fired() || h1.Cancelled() || h1.Active() {
		t.Fatalf("after fire: Fired=%v Cancelled=%v Active=%v, want true/false/false",
			h1.Fired(), h1.Cancelled(), h1.Active())
	}
	ran := false
	h2 := s.Schedule(20, func() { ran = true })
	h1.Cancel() // stale: must not touch the recycled slot
	s.Run()
	if !ran {
		t.Fatal("stale handle cancelled the slot's new occupant")
	}
	if !h2.Fired() {
		t.Fatal("new occupant's handle does not report fired")
	}
	if h1.At() != 10 {
		t.Fatalf("stale handle At = %v, want 10 (captured at schedule time)", h1.At())
	}
	var zero Handle
	if zero.Fired() || zero.Cancelled() || zero.Active() || zero.At() != Never {
		t.Fatal("zero Handle is not inert")
	}
}

// TestHandleChurnAllocFree pins the satellite of ISSUE 8: the handle path
// recycles fired events like the detached path, so steady-state churn through
// Schedule/ScheduleAfter is allocation-free.
func TestHandleChurnAllocFree(t *testing.T) {
	s := NewScheduler()
	var fired int
	var tick func()
	tick = func() {
		fired++
		if fired < 1000 {
			s.ScheduleAfter(Microsecond, tick)
		}
	}
	s.ScheduleAfter(Microsecond, tick)
	s.Run() // warm the freelist
	allocs := testing.AllocsPerRun(10, func() {
		fired = 0
		s.ScheduleAfter(Microsecond, tick)
		s.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state handle events allocated %.1f/run, want 0", allocs)
	}
}

// BenchmarkSchedulerChurn measures the schedule→fire cycle that dominates a
// simulation run, with a live metrics registry attached — the instrumented
// path is the production path. Detached events recycle through the
// scheduler's freelist, so the steady state should run allocation-free.
func BenchmarkSchedulerChurn(b *testing.B) {
	s := NewScheduler()
	s.Instrument(metrics.New())
	var fired int
	var tick func()
	tick = func() {
		fired++
		if fired < b.N {
			s.ScheduleAfterDetached(Microsecond, tick)
		}
	}
	b.ReportAllocs()
	s.ScheduleAfterDetached(Microsecond, tick)
	s.Run()
	if fired != b.N {
		b.Fatalf("fired %d, want %d", fired, b.N)
	}
}

// BenchmarkSchedulerChurnHandles covers the handle-returning path. Handles
// are generation-checked values, so fired events recycle through the same
// freelist as the detached path: steady state is 0 allocs/op here too.
func BenchmarkSchedulerChurnHandles(b *testing.B) {
	s := NewScheduler()
	var fired int
	var tick func()
	tick = func() {
		fired++
		if fired < b.N {
			s.ScheduleAfter(Microsecond, tick)
		}
	}
	b.ReportAllocs()
	s.ScheduleAfter(Microsecond, tick)
	s.Run()
	if fired != b.N {
		b.Fatalf("fired %d, want %d", fired, b.N)
	}
}

// BenchmarkSchedulerChurnDepth10k is BenchmarkSchedulerChurn with 10k
// far-future events pending throughout — the standing population of failure
// timers, checkpoint deadlines, and queued deliveries a saturated sweep
// carries. A comparison-based queue pays O(log n) per operation for that
// depth; a timer wheel should not care.
func BenchmarkSchedulerChurnDepth10k(b *testing.B) {
	s := NewScheduler()
	s.Instrument(metrics.New())
	for i := 0; i < 10000; i++ {
		s.ScheduleDetached(Time(time.Hour)+Time(i)*Time(Millisecond), func() {})
	}
	var fired int
	var tick func()
	tick = func() {
		fired++
		if fired < b.N {
			s.ScheduleAfterDetached(Microsecond, tick)
		}
	}
	b.ReportAllocs()
	s.ScheduleAfterDetached(Microsecond, tick)
	for fired < b.N && s.Step() {
	}
	if fired != b.N {
		b.Fatalf("fired %d, want %d", fired, b.N)
	}
}

// BenchmarkTimerRestart measures the arm/cancel cycle of a protocol timer
// that almost never expires — the failure timer armed per Request-NAK and
// stopped by the Enforced-NAK, restarted here once per simulated frame.
func BenchmarkTimerRestart(b *testing.B) {
	s := NewScheduler()
	s.Instrument(metrics.New())
	expired := 0
	t := NewTimer(s, func() { expired++ })
	var fired int
	var tick func()
	tick = func() {
		fired++
		t.Start(Millisecond) // long deadline: cancelled by the next tick
		if fired < b.N {
			s.ScheduleAfterDetached(Microsecond, tick)
		}
	}
	b.ReportAllocs()
	s.ScheduleAfterDetached(Microsecond, tick)
	s.Run()
	if fired != b.N {
		b.Fatalf("fired %d, want %d", fired, b.N)
	}
	_ = expired
}
