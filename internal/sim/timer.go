package sim

// Timer is a restartable one-shot timer on a Scheduler's virtual clock. It
// matches the timers DLC protocols are specified with: the checkpoint timer
// is "reset to zero after each Check-Point command", the failure timer is
// started by a Request-NAK and stopped by the Enforced-NAK.
//
// A Timer is created stopped. Restarting an armed timer cancels the previous
// deadline. The callback is fixed at construction so arming is allocation-
// light and cannot accidentally change behaviour mid-protocol.
type Timer struct {
	sched *Scheduler
	fn    func()
	ev    *Event
	// expireFn is t.expire captured once at construction: evaluating a
	// method value allocates, so arming a timer per frame must not.
	expireFn func()
}

// NewTimer returns a stopped timer that will invoke fn on expiry.
func NewTimer(sched *Scheduler, fn func()) *Timer {
	if sched == nil {
		panic("sim: NewTimer with nil scheduler")
	}
	if fn == nil {
		panic("sim: NewTimer with nil callback")
	}
	t := &Timer{sched: sched, fn: fn}
	t.expireFn = t.expire
	return t
}

// Start arms the timer to fire d from now, replacing any earlier deadline.
//
// Timer events are scheduled on the managed (recyclable) path: the timer
// drops its Event reference synchronously on expiry and on Stop, so the
// scheduler is free to recycle the object once it is reaped — an armed-and-
// cancelled failure timer costs no allocation in steady state.
func (t *Timer) Start(d Duration) {
	t.Stop()
	if d < 0 {
		d = 0
	}
	t.ev = t.sched.schedule(t.sched.now.Add(d), t.expireFn, nil, nil, true)
}

// StartAt arms the timer to fire at the given instant, replacing any earlier
// deadline.
func (t *Timer) StartAt(at Time) {
	t.Stop()
	t.ev = t.sched.schedule(at, t.expireFn, nil, nil, true)
}

// Stop disarms the timer. Stopping a stopped timer is a no-op. It reports
// whether a pending expiry was cancelled.
func (t *Timer) Stop() bool {
	if t.ev == nil {
		return false
	}
	pending := !t.ev.Fired() && !t.ev.Cancelled()
	t.sched.Cancel(t.ev)
	t.ev = nil
	return pending
}

// Active reports whether the timer is armed and has not yet fired.
func (t *Timer) Active() bool {
	return t.ev != nil && !t.ev.Fired() && !t.ev.Cancelled()
}

// Deadline returns the instant the timer will fire, or Never if stopped.
func (t *Timer) Deadline() Time {
	if !t.Active() {
		return Never
	}
	return t.ev.At()
}

func (t *Timer) expire() {
	t.ev = nil
	t.fn()
}

// Ticker repeatedly invokes a callback with a fixed period, like the
// receiver's checkpoint-command emission every W_cp. The callback runs at
// start+period, start+2*period, ... until Stop.
type Ticker struct {
	sched   *Scheduler
	period  Duration
	fn      func()
	ev      *Event
	running bool
	// tickFn is t.tick captured once at construction so rearming every
	// period does not allocate a fresh closure.
	tickFn func()
}

// NewTicker returns a stopped ticker.
func NewTicker(sched *Scheduler, period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: NewTicker with non-positive period")
	}
	if fn == nil {
		panic("sim: NewTicker with nil callback")
	}
	t := &Ticker{sched: sched, period: period, fn: fn}
	t.tickFn = t.tick
	return t
}

// Start begins ticking; the first tick fires one period from now.
func (t *Ticker) Start() {
	t.Stop()
	t.running = true
	t.arm()
}

// Stop halts the ticker. The ticker can be restarted.
func (t *Ticker) Stop() {
	t.running = false
	if t.ev != nil {
		t.sched.Cancel(t.ev)
		t.ev = nil
	}
}

// Active reports whether the ticker is running.
func (t *Ticker) Active() bool { return t.running }

// Period returns the tick period.
func (t *Ticker) Period() Duration { return t.period }

// SetPeriod changes the period for subsequent ticks. If the ticker is
// running, the current pending tick keeps its deadline and the new period
// applies afterwards.
func (t *Ticker) SetPeriod(p Duration) {
	if p <= 0 {
		panic("sim: SetPeriod with non-positive period")
	}
	t.period = p
}

func (t *Ticker) arm() {
	t.ev = t.sched.schedule(t.sched.now.Add(t.period), t.tickFn, nil, nil, true)
}

func (t *Ticker) tick() {
	t.ev = nil
	t.fn()
	// The callback may have stopped or restarted the ticker; only
	// rearm when it is still running and did not rearm itself.
	if t.running && t.ev == nil {
		t.arm()
	}
}
