package sim

import "math"

// RNG is a small, fast, seedable pseudo-random generator (xoshiro256**).
// Every stochastic component of the simulator draws from an explicitly
// injected *RNG, never from global state, so a run is a pure function of its
// configuration and seed.
//
// The zero RNG is not valid; construct one with NewRNG.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64, the
// recommended seeding procedure for the xoshiro family. Any seed, including
// zero, yields a well-mixed state.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

// Split derives an independent generator from r. Sub-components (e.g. the
// two directions of a full-duplex link) each get their own stream so that
// adding randomness consumption in one place does not perturb the other.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// DeriveSeed maps a base seed and a point index to a statistically
// independent stream seed using the SplitMix64 finalizer — the same
// construction NewRNG uses to expand one seed into xoshiro state. Deriving
// from (base, i) rather than handing out seeds from a shared counter keeps
// seed assignment independent of scheduling order, which is what lets a
// sharded or worker-parallel run reproduce the serial one bit for bit.
func DeriveSeed(base uint64, i int) uint64 {
	z := base + (uint64(i)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x9E3779B97F4A7C15 // xoshiro must not be seeded all-zero
	}
	return z
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Bernoulli returns true with probability p. Probabilities outside [0,1]
// clamp to always-false / always-true.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	// Guard against log(0).
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// ExpDuration returns an exponentially distributed duration with the given
// mean, floored at zero.
func (r *RNG) ExpDuration(mean Duration) Duration {
	return Duration(r.Exp(float64(mean)))
}

// Geometric returns the number of Bernoulli(p) failures before the first
// success, i.e. a geometric variate with support {0, 1, 2, ...}. For p >= 1
// it returns 0; p <= 0 is invalid and panics.
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("sim: Geometric with non-positive p")
	}
	// Inversion: floor(ln U / ln(1-p)) is geometric(p).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Log(u) / math.Log1p(-p))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
