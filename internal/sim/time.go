package sim

import (
	"fmt"
	"time"
)

// Time is an instant in virtual simulation time, measured in nanoseconds
// since the start of the simulation. The zero Time is the simulation epoch.
type Time int64

// Duration is a span of virtual time. It aliases time.Duration so the
// familiar constants (time.Millisecond, ...) can be used directly.
type Duration = time.Duration

// Common durations re-exported for convenience.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
	Minute      = time.Minute
)

// Never is a sentinel Time later than any reachable instant. Entities return
// it from NextWake when they have no pending deadline.
const Never = Time(1<<63 - 1)

// Add returns the instant d after t. Adding to Never yields Never.
func (t Time) Add(d Duration) Time {
	if t == Never {
		return Never
	}
	return t + Time(d)
}

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the time as a floating-point number of seconds since the
// epoch. Useful for reporting series.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the instant as a duration since the epoch, e.g. "1.5s".
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return Duration(t).String()
}

// MinTime returns the earlier of a and b.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxTime returns the later of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Scale multiplies a duration by a dimensionless factor, saturating instead
// of overflowing. It is used for timeout arithmetic such as C_depth * W_cp.
func Scale(d Duration, k int) Duration {
	if k <= 0 {
		return 0
	}
	prod := d * Duration(k)
	if d > 0 && prod/Duration(k) != d {
		return Duration(1<<63 - 1)
	}
	return prod
}

// FormatRate renders a bits-per-second figure using engineering units,
// e.g. "300 Mbps".
func FormatRate(bps float64) string {
	switch {
	case bps >= 1e9:
		return fmt.Sprintf("%.3g Gbps", bps/1e9)
	case bps >= 1e6:
		return fmt.Sprintf("%.3g Mbps", bps/1e6)
	case bps >= 1e3:
		return fmt.Sprintf("%.3g kbps", bps/1e3)
	default:
		return fmt.Sprintf("%.3g bps", bps)
	}
}
