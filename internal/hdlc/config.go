// Package hdlc implements the paper's comparison baseline: HDLC-style
// sliding-window ARQ with strict reliability (no loss, no duplicates, FIFO
// delivery to the packet layer), in two recovery modes:
//
//   - SelectiveRepeat (SR-HDLC): the receiver holds out-of-order frames and
//     issues SREJ for each missing frame; the sender retransmits exactly the
//     rejected frames. RR commands acknowledge cumulatively once per window
//     (IBM check-point mode, [8]) and in response to P-bit polls; residual
//     losses are repaired by timeout recovery with t_out = R + α (§4).
//   - GoBackN: the receiver discards out-of-order frames and issues REJ; the
//     sender backs up and resends everything from the rejected number.
//
// Sequence numbers are absolute 32-bit values rather than mod-2^l
// (NBDT-style absolute numbering [7]); the window constraint W ≤ M/2 is
// still enforced against the configured modulus so experiments can study
// the numbering-size trade-off the paper discusses in §2.3.
package hdlc

import (
	"fmt"

	"repro/internal/arq"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Mode selects the retransmission strategy.
type Mode int

// Recovery modes.
const (
	SelectiveRepeat Mode = iota
	GoBackN
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case SelectiveRepeat:
		return "SR-HDLC"
	case GoBackN:
		return "GBN-HDLC"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Config parameterizes an HDLC endpoint pair.
type Config struct {
	arq.Timing

	// Mode is the recovery strategy.
	Mode Mode

	// WindowSize is W, the maximum number of outstanding I-frames.
	WindowSize int

	// ModulusBits is l: the sequence-number field width the window must
	// respect (W ≤ 2^l / 2). Zero means 32 (absolute numbering).
	ModulusBits int

	// Timeout is t_out = R + α, the retransmission timeout. It must
	// exceed the worst-case round trip in a moving constellation.
	Timeout sim.Duration

	// Stutter enables the idle-time retransmission of the Stutter/mixed-
	// mode ARQ family the paper's §1 surveys (Stutter GBN, SR+ST of
	// Miller & Lin): while the window blocks new transmissions and the
	// wire would otherwise idle, the sender cyclically repeats its
	// unacknowledged I-frames, trading channel capacity for a chance to
	// deliver before SREJ/timeout recovery completes.
	Stutter bool

	// MaxTimeouts is N2, HDLC's retry count: after this many consecutive
	// T1 expiries with no readable supervisory frame heard, the sender
	// declares link failure (API parity with LAMS-DLC's §3.2 declaration).
	// Zero disables the declaration — the historical behavior, and the
	// default, so existing experiment outputs are unchanged.
	MaxTimeouts int

	// Metrics, when non-nil, is the registry the endpoints report their
	// hdlc_* observability counters and gauges into (see instruments.go
	// for the full name list). Nil leaves the endpoints uninstrumented.
	Metrics *metrics.Registry
}

// Defaults returns an SR-HDLC configuration for the given round trip, with
// α equal to half the round trip (a moderately mobile constellation).
func Defaults(roundTrip sim.Duration) Config {
	return Config{
		Timing: arq.Timing{
			RoundTrip: roundTrip,
			ProcTime:  10 * sim.Microsecond, // below t_f at 300 Mbps/1 KiB: the removal-rate assumption of §4 holds
		},
		Mode:        SelectiveRepeat,
		WindowSize:  64,
		ModulusBits: 7, // M=128, W=M/2
		Timeout:     roundTrip + roundTrip/2,
	}
}

// Alpha returns α = t_out − R.
func (c Config) Alpha() sim.Duration { return c.Timeout - c.RoundTrip }

// Validate reports the first configuration error.
func (c Config) Validate() error {
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if c.Mode != SelectiveRepeat && c.Mode != GoBackN {
		return fmt.Errorf("hdlc: unknown mode %d", c.Mode)
	}
	if c.WindowSize < 1 {
		return fmt.Errorf("hdlc: window size must be >= 1, got %d", c.WindowSize)
	}
	bits := c.ModulusBits
	if bits == 0 {
		bits = 32
	}
	if bits < 1 || bits > 32 {
		return fmt.Errorf("hdlc: modulus bits must be in [1,32], got %d", bits)
	}
	if bits < 32 && c.WindowSize > 1<<(bits-1) {
		return fmt.Errorf("hdlc: window %d exceeds M/2 = %d", c.WindowSize, 1<<(bits-1))
	}
	if c.Timeout <= 0 {
		return fmt.Errorf("hdlc: timeout must be positive, got %v", c.Timeout)
	}
	if c.Timeout < c.RoundTrip {
		return fmt.Errorf("hdlc: timeout %v below round trip %v", c.Timeout, c.RoundTrip)
	}
	if c.MaxTimeouts < 0 {
		return fmt.Errorf("hdlc: negative MaxTimeouts")
	}
	return nil
}

// WithLinkLifetime implements arq.EngineConfig. HDLC has no link-lifetime
// concept — failure supervision is the fixed N2 count — so the lifetime is
// discarded and the config returned unchanged.
func (c Config) WithLinkLifetime(sim.Duration) arq.EngineConfig { return c }
