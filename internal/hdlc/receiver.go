package hdlc

import (
	"repro/internal/arq"
	"repro/internal/frame"
	"repro/internal/sim"
)

// Receiver is the receiving half of an HDLC endpoint. It enforces strict
// reliability: frames are delivered to the packet layer in order, without
// loss or duplicates. In SelectiveRepeat mode out-of-order frames are held
// in the receive buffer (which is why SR-HDLC needs a window's worth of
// receive memory, §2.3); in GoBackN mode they are discarded.
type Receiver struct {
	sched *sim.Scheduler
	wire  arq.Wire
	cfg   Config
	m     *arq.Metrics
	im    receiverInstr

	recvBase uint32 // N(R): next in-order sequence number needed
	held     map[uint32]*frame.Frame
	srejSent map[uint32]bool
	rejSent  bool // GBN: one REJ outstanding per gap

	deliveredInWindow int // RR cadence: acknowledge every window's worth

	// Recycled scratch (ISSUE 6): outbound supervisory frames are built
	// in ctrlf (the Wire contract copies on Send) and the SREJ gap scan
	// reuses missBuf's backing array.
	ctrlf   frame.Frame
	missBuf []uint32

	deliver arq.DeliverFunc
}

// NewReceiver constructs an HDLC receiver.
func NewReceiver(sched *sim.Scheduler, wire arq.Wire, cfg Config, m *arq.Metrics, deliver arq.DeliverFunc) *Receiver {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Receiver{
		sched:    sched,
		wire:     wire,
		cfg:      cfg,
		m:        m,
		im:       newReceiverInstr(cfg.Metrics),
		held:     make(map[uint32]*frame.Frame),
		srejSent: make(map[uint32]bool),
		deliver:  deliver,
	}
}

// Start is a no-op: HDLC receivers are purely reactive.
func (r *Receiver) Start() {}

// RecvBase exposes N(R) for tests.
func (r *Receiver) RecvBase() uint32 { return r.recvBase }

// Held returns the receive-buffer occupancy (out-of-order frames).
func (r *Receiver) Held() int { return len(r.held) }

// HandleFrame processes one arriving frame.
func (r *Receiver) HandleFrame(now sim.Time, f *frame.Frame) {
	if f.Corrupted {
		// Damaged frame: HDLC discards it; recovery comes from the
		// gap-triggered SREJ/REJ when the next good frame arrives, or
		// from the sender's timeout.
		return
	}
	if f.Kind != frame.KindHDLCI {
		return
	}
	// The frame may be recycled (or buffered) inside the branches below;
	// read the poll bit first.
	final := f.Final
	switch {
	case f.Seq < r.recvBase:
		// Duplicate of a delivered frame (e.g. retransmitted after its
		// RR was lost). Discard; if it polls, answer so the sender can
		// slide its window.
		r.im.dups.Inc()
		frame.Put(f)
		if final {
			r.sendRR(true)
		}
		return
	case f.Seq == r.recvBase:
		r.accept(now, f)
	default:
		// Out of order: a gap [recvBase, f.Seq) exists.
		r.onGap(f)
	}
	if final {
		r.sendRR(true)
	}
}

// accept delivers the in-order frame and any buffered successors.
func (r *Receiver) accept(now sim.Time, f *frame.Frame) {
	r.deliverUp(now, f)
	frame.Put(f)
	r.recvBase++
	for {
		g, ok := r.held[r.recvBase]
		if !ok {
			break
		}
		delete(r.held, r.recvBase)
		r.deliverUp(now, g)
		frame.Put(g)
		r.recvBase++
	}
	r.rejSent = false
	for seq := range r.srejSent {
		if seq < r.recvBase {
			delete(r.srejSent, seq)
		}
	}
	r.noteRecvOccupancy()
	// Check-point-mode RR cadence: acknowledge once per window of
	// deliveries even without a poll, so the sender's window can turn
	// over (the per-window RR exchange of [8] that §2.3 describes).
	if r.deliveredInWindow >= r.cfg.WindowSize {
		r.deliveredInWindow = 0
		r.sendRR(false)
	}
}

func (r *Receiver) onGap(f *frame.Frame) {
	switch r.cfg.Mode {
	case SelectiveRepeat:
		if _, dup := r.held[f.Seq]; dup {
			frame.Put(f)
			return // duplicate of a held frame
		}
		// Information frames belong to the handler (channel.Handler), so
		// the out-of-order buffer can hold the frame itself — no copy.
		r.held[f.Seq] = f
		r.noteRecvOccupancy()
		// SREJ each newly discovered missing frame exactly once; the
		// sender's timeout covers SREJ losses. The scan ascends, so the
		// list is born sorted.
		missing := r.missBuf[:0]
		for seq := r.recvBase; seq < f.Seq; seq++ {
			if _, have := r.held[seq]; !have && !r.srejSent[seq] {
				missing = append(missing, seq)
			}
		}
		r.missBuf = missing
		for _, seq := range missing {
			r.srejSent[seq] = true
			r.ctrlf = frame.Frame{Kind: frame.KindSREJ, Ack: r.recvBase, Seq: seq}
			r.wire.Send(&r.ctrlf)
			r.m.NAKsSent.Inc()
			r.m.ControlSent.Inc()
			r.im.srejSent.Inc()
		}
	case GoBackN:
		// Discard and demand a back-up, once per gap episode.
		frame.Put(f)
		if !r.rejSent {
			r.rejSent = true
			r.ctrlf = frame.Frame{Kind: frame.KindREJ, Ack: r.recvBase, Seq: r.recvBase}
			r.wire.Send(&r.ctrlf)
			r.m.NAKsSent.Inc()
			r.m.ControlSent.Inc()
			r.im.rejSent.Inc()
		}
	}
}

func (r *Receiver) deliverUp(now sim.Time, f *frame.Frame) {
	dg := arq.Datagram{ID: f.DatagramID, Payload: f.Payload, EnqueuedAt: sim.Time(f.EnqueuedNS)}
	r.m.NoteDelivery(now, dg)
	r.im.delivered.Inc()
	r.deliveredInWindow++
	if r.deliver != nil {
		r.deliver(now, dg, f.Seq)
	}
}

func (r *Receiver) sendRR(final bool) {
	r.ctrlf = frame.Frame{Kind: frame.KindRR, Ack: r.recvBase, Final: final}
	r.wire.Send(&r.ctrlf)
	r.m.ControlSent.Inc()
	r.im.rrSent.Inc()
	r.deliveredInWindow = 0
}

func (r *Receiver) noteRecvOccupancy() {
	r.m.RecvBufOcc.Update(int64(r.sched.Now()), float64(len(r.held)))
	r.im.held.Set(float64(len(r.held)))
}
