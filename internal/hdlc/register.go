package hdlc

import (
	"fmt"

	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/sim"
)

// init publishes both HDLC baselines in the engine registry under distinct
// names, each forcing its Mode so a name always means one recovery strategy.
// Blank-import repro/internal/engines to link every registered engine into a
// binary.
func init() {
	arq.Register(arq.Registration{
		Name:    "srhdlc",
		Aliases: []string{"sr", "sr-hdlc", "hdlc"},
		Display: "SR-HDLC",
		Defaults: func(roundTrip sim.Duration) arq.EngineConfig {
			c := Defaults(roundTrip)
			c.Mode = SelectiveRepeat
			return c
		},
		New:      newPairFor("srhdlc", SelectiveRepeat),
		NewSplit: newSplitPairFor("srhdlc", SelectiveRepeat),
	})
	arq.Register(arq.Registration{
		Name:    "gbn",
		Aliases: []string{"gbnhdlc", "gbn-hdlc"},
		Display: "GBN-HDLC",
		Defaults: func(roundTrip sim.Duration) arq.EngineConfig {
			c := Defaults(roundTrip)
			c.Mode = GoBackN
			return c
		},
		New:      newPairFor("gbn", GoBackN),
		NewSplit: newSplitPairFor("gbn", GoBackN),
	})
}

func newPairFor(name string, mode Mode) arq.NewPairFunc {
	return func(sched *sim.Scheduler, link *channel.Link, cfg arq.EngineConfig, deliver arq.DeliverFunc, onFailure arq.FailureFunc) arq.Pair {
		c, ok := cfg.(Config)
		if !ok {
			panic(fmt.Sprintf("hdlc: engine %q given %T, want hdlc.Config", name, cfg))
		}
		c.Mode = mode
		return NewPair(sched, link, c, deliver, onFailure)
	}
}

func newSplitPairFor(name string, mode Mode) arq.SplitPairFunc {
	return func(sendSched, recvSched *sim.Scheduler, link *channel.Link, cfg arq.EngineConfig, deliver arq.DeliverFunc, onFailure arq.FailureFunc) arq.Pair {
		c, ok := cfg.(Config)
		if !ok {
			panic(fmt.Sprintf("hdlc: engine %q given %T, want hdlc.Config", name, cfg))
		}
		c.Mode = mode
		return NewSplitPair(sendSched, recvSched, link, c, deliver, onFailure)
	}
}
