package hdlc

import (
	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/sim"
)

// Pair wires an HDLC Sender and Receiver across a full-duplex simulated
// link, mirroring lamsdlc.Pair so experiments can swap protocols.
type Pair struct {
	Sender   *Sender
	Receiver *Receiver
	Metrics  *arq.Metrics
	Link     *channel.Link
}

// NewPair builds and wires the endpoints. deliver may be nil.
func NewPair(sched *sim.Scheduler, link *channel.Link, cfg Config, deliver arq.DeliverFunc) *Pair {
	m := &arq.Metrics{}
	s := NewSender(sched, link.AtoB, cfg, m)
	r := NewReceiver(sched, link.BtoA, cfg, m, deliver)
	link.AtoB.SetHandler(r.HandleFrame)
	link.BtoA.SetHandler(s.HandleFrame)
	return &Pair{Sender: s, Receiver: r, Metrics: m, Link: link}
}

// Start activates both ends.
func (p *Pair) Start() {
	p.Sender.Start()
	p.Receiver.Start()
}
