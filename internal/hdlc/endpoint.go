package hdlc

import (
	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/sim"
)

// Pair wires an HDLC Sender and Receiver across a full-duplex simulated
// link, mirroring lamsdlc.Pair so experiments can swap protocols. It is the
// HDLC implementation of the arq.Pair engine contract.
type Pair struct {
	Sender   *Sender
	Receiver *Receiver
	cfg      Config
	metrics  *arq.Metrics
	// rmetrics is non-nil only for split pairs (NewSplitPair): the receiver
	// entity runs on another scheduler and gets its own block; Metrics
	// merges the two on demand into merged.
	rmetrics *arq.Metrics
	merged   arq.Metrics
	link     *channel.Link
}

// NewPair builds and wires the endpoints. deliver and onFailure may be nil;
// onFailure fires on N2 (MaxTimeouts) exhaustion.
func NewPair(sched *sim.Scheduler, link *channel.Link, cfg Config, deliver arq.DeliverFunc, onFailure arq.FailureFunc) *Pair {
	m := &arq.Metrics{}
	s := NewSender(sched, link.AtoB, cfg, m)
	s.SetOnFailure(onFailure)
	r := NewReceiver(sched, link.BtoA, cfg, m, deliver)
	link.AtoB.SetHandler(r.HandleFrame)
	link.BtoA.SetHandler(s.HandleFrame)
	return &Pair{Sender: s, Receiver: r, cfg: cfg, metrics: m, link: link}
}

// NewSplitPair is NewPair with the sender entity on sendSched and the
// receiver entity on recvSched, for sessions split across shard boundaries.
// Each side gets its own metrics block (merged on read); the shard engine
// must route link.AtoB to recvSched's shard and link.BtoA back (SetRemote).
func NewSplitPair(sendSched, recvSched *sim.Scheduler, link *channel.Link, cfg Config, deliver arq.DeliverFunc, onFailure arq.FailureFunc) *Pair {
	ms, mr := &arq.Metrics{}, &arq.Metrics{}
	s := NewSender(sendSched, link.AtoB, cfg, ms)
	s.SetOnFailure(onFailure)
	r := NewReceiver(recvSched, link.BtoA, cfg, mr, deliver)
	link.AtoB.SetHandler(r.HandleFrame)
	link.BtoA.SetHandler(s.HandleFrame)
	return &Pair{Sender: s, Receiver: r, cfg: cfg, metrics: ms, rmetrics: mr, link: link}
}

// Start activates both ends.
func (p *Pair) Start() {
	p.Sender.Start()
	p.Receiver.Start()
}

// Stop is orderly teardown at the end of a pass: the sender's timers stop
// and further work is refused without declaring failure; undelivered
// datagrams stay reclaimable. The receiver is purely reactive (no timers),
// so it needs no teardown.
func (p *Pair) Stop() { p.Sender.Shutdown() }

// Enqueue accepts a datagram from the network layer.
func (p *Pair) Enqueue(dg arq.Datagram) bool { return p.Sender.Enqueue(dg) }

// Reclaim returns the datagrams not yet cumulatively acknowledged, oldest
// first. HDLC promises in-order delivery, so — unlike LAMS-DLC — an
// unreleased in-window frame may in fact have reached the receiver; the
// exactly-once guarantee across passes is then the resequencer's job, as
// §2.3 assigns it.
func (p *Pair) Reclaim() []arq.Datagram { return p.Sender.UnreleasedDatagrams() }

// Outstanding returns the sending-buffer occupancy.
func (p *Pair) Outstanding() int { return p.Sender.Outstanding() }

// Failed reports whether the sender declared the link failed.
func (p *Pair) Failed() bool { return p.Sender.Failed() }

// Metrics exposes the pair's measurement block. For a split pair the two
// per-entity blocks are merged on demand; call only while both shards are
// quiesced (between rounds or after the run).
func (p *Pair) Metrics() *arq.Metrics {
	if p.rmetrics == nil {
		return p.metrics
	}
	p.merged = arq.MergeSplit(p.metrics, p.rmetrics)
	return &p.merged
}

// Link exposes the underlying simulated link.
func (p *Pair) Link() *channel.Link { return p.link }

// SetProbe installs the transition observer. Only the sender has observable
// transitions (the receiver is reactive), and only the transmission-
// lifecycle callbacks fire; see Sender.SetProbe.
func (p *Pair) SetProbe(pr *arq.Probe) { p.Sender.SetProbe(pr) }

// Compile-time contract checks.
var (
	_ arq.Pair     = (*Pair)(nil)
	_ arq.Endpoint = (*Sender)(nil)
	_ arq.Endpoint = (*Receiver)(nil)
)
