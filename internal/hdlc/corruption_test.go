package hdlc

import (
	"testing"

	"repro/internal/arq"
	"repro/internal/frame"
	"repro/internal/sim"
)

// Regression tests for the corruption-adversary hardening (ISSUE 9).

// TestImplausibleRRRefused: before the handleRR guard, a forged RR with
// N(R) above nextSeq released the entire window unseen and advanced
// sendBase past nextSeq — after which every legitimate RR read as stale and
// the window could never release again. The sender must refuse it and keep
// working.
func TestImplausibleRRRefused(t *testing.T) {
	sc := newScenario(baseCfg(), basePipe(), 21)
	// Kill the return path so nothing releases on its own.
	sc.link.BtoA.SetHandler(func(sim.Time, *frame.Frame) {})
	sc.enqueueAll(20, 256)
	sc.sched.RunFor(100 * sim.Millisecond)
	out := sc.pair.Sender.Unacked()
	if out == 0 {
		t.Fatal("setup: nothing outstanding")
	}
	base := sc.pair.Sender.SendBase()

	ghost := frame.Frame{Kind: frame.KindRR, Ack: sc.pair.Sender.nextSeq + 5000}
	sc.pair.Sender.HandleFrame(sc.sched.Now(), &ghost)
	if got := sc.pair.Sender.Unacked(); got < out {
		t.Fatalf("implausible RR released %d frames", out-got)
	}
	if sc.pair.Sender.SendBase() != base {
		t.Fatalf("implausible RR moved sendBase %d -> %d", base, sc.pair.Sender.SendBase())
	}

	// A genuine RR must still release: sendBase was not poisoned.
	genuine := frame.Frame{Kind: frame.KindRR, Ack: sc.pair.Sender.nextSeq}
	sc.pair.Sender.HandleFrame(sc.sched.Now(), &genuine)
	if sc.pair.Sender.Unacked() != 0 {
		t.Fatal("genuine RR no longer releases: window wedged")
	}
}

// TestN2FiresUnderStarvation: with supervision enabled, a sender starved of
// every supervisory frame (total reorder/loss starvation of the return
// path) must declare failure after N2 consecutive T1 expiries — not poll
// forever. This is the HDLC parity check for LAMS-DLC's §3.2 failure
// declaration.
func TestN2FiresUnderStarvation(t *testing.T) {
	cfg := baseCfg()
	cfg.MaxTimeouts = 6
	sc := newScenario(cfg, basePipe(), 22)
	sc.link.BtoA.SetHandler(func(sim.Time, *frame.Frame) {})
	sc.enqueueAll(10, 256)
	// N2+1 expiries at one Timeout each, plus slack.
	sc.sched.RunFor(sim.Duration(cfg.MaxTimeouts+3) * cfg.Timeout)
	if !sc.pair.Failed() {
		t.Fatal("N2 supervision never fired under return-path starvation")
	}
	// Unreleased datagrams stay reclaimable for carry-over.
	if n := len(sc.pair.Reclaim()); n != 10 {
		t.Fatalf("reclaimed %d datagrams after failure, want 10", n)
	}
}

// TestScrambleConvergenceHDLC is the seed-pinned scramble sweep for HDLC's
// bounded corruption contract: after repeated CorruptState calls stop,
// fresh traffic must flow to completion with no failure declaration.
func TestScrambleConvergenceHDLC(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		cfg := baseCfg()
		cfg.MaxTimeouts = 12
		sc := newScenario(cfg, basePipe(), seed)
		rng := sim.NewRNG(seed * 6151)
		for i := 0; i < 30; i++ {
			at := sim.Time(int64(i) * int64(10*sim.Millisecond))
			sc.sched.Schedule(at, func() {
				sc.pair.CorruptState(rng)
				sc.pair.Sender.Enqueue(arq.Datagram{ID: 1 + uint64(i), Payload: make([]byte, 128)})
			})
		}
		sc.sched.RunFor(500 * sim.Millisecond)
		for i := 0; i < 40; i++ {
			sc.pair.Sender.Enqueue(arq.Datagram{ID: 1000 + uint64(i), Payload: make([]byte, 128)})
		}
		sc.sched.RunFor(5 * sim.Second)
		if sc.pair.Failed() {
			t.Fatalf("seed %d: scramble era led to failure declaration", seed)
		}
		for i := 0; i < 40; i++ {
			if sc.got[1000+uint64(i)] == 0 {
				t.Fatalf("seed %d: post-scramble datagram %d never delivered", seed, 1000+i)
			}
		}
	}
}
