package hdlc

import (
	"repro/internal/arq"
	"repro/internal/frame"
	"repro/internal/sim"
)

// Corruption-adversary surfaces (ISSUE 9). HDLC, like LAMS-DLC, is not
// self-stabilizing, so it takes the BOUNDED contract DESIGN.md §13 states:
// CorruptState scrambles only supervision and bookkeeping state the
// protocol's own T1/N2 machinery demonstrably repairs, and never the
// sequence state the external probe tracks (sendBase, nextSeq, recvBase,
// window entries, held frames) — scrambling those desyncs the checker's
// observation, measuring the adversary instead of the engine. HDLC has no
// renumbering, so unlike ssarq there is no probe-consistent way to report a
// sequence rewrite.
//
// Determinism: no map iteration — Go randomizes map order independently of
// the simulation seed, which would break the byte-identical workers-1-vs-8
// pins. The poisoned srejSent entry is INSERTED at a derived key rather
// than found by walking the map.

// CorruptState implements arq.StateCorruptor.
func (p *Pair) CorruptState(rng *sim.RNG) {
	s, r := p.Sender, p.Receiver
	now := s.sched.Now()

	// Sender: N2 progress scrambled within the lower half of its budget
	// (any readable supervisory frame resets it; staying below the
	// declaration threshold keeps this the bounded contract — a count
	// forged AT the threshold would fabricate a failure declaration, which
	// is the unbounded adversary ssarq exists for). Pacing debt jittered
	// far into the future — the pump's one-Timeout clamp is the repair —
	// and the stutter cursor thrown out of range, which stutter() clamps.
	if s.cfg.MaxTimeouts > 0 {
		s.timeoutsInRow = rng.Intn(s.cfg.MaxTimeouts/2 + 1)
	} else {
		s.timeoutsInRow = rng.Intn(8)
	}
	s.stutterIdx = rng.Intn(2 * s.cfg.WindowSize)
	s.wireFree = now.Add(sim.Duration(rng.Int63n(int64(4 * s.cfg.Timeout))))

	// Receiver: RR cadence counter (self-corrects within one window of
	// deliveries), the GBN one-REJ-per-gap latch (a suppressed REJ is
	// covered by T1 timeout recovery), and a phantom SREJ-sent record for
	// a near-future sequence number — the receiver then believes it
	// already rejected that frame, so if it is genuinely lost the SREJ
	// never goes out and T1 recovery must carry it. accept() garbage-
	// collects the record once recvBase passes it.
	r.deliveredInWindow = rng.Intn(2*r.cfg.WindowSize + 1)
	r.rejSent = rng.Intn(2) == 0
	if r.srejSent != nil {
		r.srejSent[r.recvBase+uint32(rng.Intn(r.cfg.WindowSize))] = true
	}
}

// ghostPayload is the shared body of forged I-frames; the pipe copies on
// Send and nothing downstream mutates payload bytes.
var ghostPayload = make([]byte, 32)

// ForgeGhost implements arq.GhostForger. Toward the sender it forges
// supervisory frames split between plausible RRs (early releases of
// undelivered frames: bounded in-era casualties), implausible RRs the
// handleRR guard must refuse (N(R) above nextSeq would otherwise release
// the window unseen and wedge sendBase), and spurious SREJs (harmless
// duplicate retransmissions). Toward the receiver it forges I-frames near
// the receive base; one landing exactly on recvBase is delivered and
// permanently displaces the genuine frame of that number — HDLC cannot
// renumber around it, which is exactly the legacy-triage hazard §13
// documents (the displaced genuine frame reads as a duplicate forever and,
// with the watermark run ahead, the sender's RRs all read implausible
// until N2 declares failure: bounded, not self-stabilizing).
func (p *Pair) ForgeGhost(rng *sim.RNG, toReceiver bool) *frame.Frame {
	s, r := p.Sender, p.Receiver
	f := frame.Get()
	if toReceiver {
		f.Kind = frame.KindHDLCI
		f.Seq = r.recvBase + uint32(rng.Intn(2*r.cfg.WindowSize))
		f.DatagramID = 1<<63 | rng.Uint64()>>1
		f.Payload = ghostPayload
		f.Final = rng.Intn(2) == 0
		f.EnqueuedNS = int64(s.sched.Now())
		return f
	}
	switch rng.Intn(3) {
	case 0: // plausible RR: early release inside the live window
		f.Kind = frame.KindRR
		f.Ack = s.sendBase + 1 + uint32(rng.Int63n(int64(s.nextSeq-s.sendBase)+1))
		if f.Ack > s.nextSeq {
			f.Ack = s.nextSeq
		}
	case 1: // implausible RR: acknowledges frames never sent
		f.Kind = frame.KindRR
		f.Ack = s.nextSeq + 1 + uint32(rng.Intn(1<<16))
	default: // spurious SREJ inside the window
		f.Kind = frame.KindSREJ
		f.Ack = s.sendBase
		f.Seq = s.sendBase + uint32(rng.Intn(s.cfg.WindowSize))
	}
	return f
}

// Compile-time checks for the corruption surfaces.
var (
	_ arq.StateCorruptor = (*Pair)(nil)
	_ arq.GhostForger    = (*Pair)(nil)
)
