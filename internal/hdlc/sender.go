package hdlc

import (
	"repro/internal/arq"
	"repro/internal/frame"
	"repro/internal/sim"
)

// hentry is one outstanding I-frame. HDLC never renumbers, so the key is
// stable for the frame's lifetime.
type hentry struct {
	dg        arq.Datagram
	seq       uint32
	firstTx   sim.Time
	srejTimes int
}

// Sender is the transmitting half of an HDLC endpoint: window-limited
// transmission, SREJ/REJ-driven retransmission, cumulative release on RR,
// and timeout recovery with P-bit polls.
type Sender struct {
	sched *sim.Scheduler
	wire  arq.Wire
	cfg   Config
	m     *arq.Metrics
	im    senderInstr

	queue    []arq.Datagram
	window   []*hentry // outstanding, ascending seq
	sendBase uint32
	nextSeq  uint32

	pumpTimer *sim.Timer
	pumpArmed bool
	wireFree  sim.Time

	retryTimer *sim.Timer

	// Stutter mode.
	stutterTimer *sim.Timer
	stutterIdx   int
	stutters     uint64
}

// NewSender constructs an HDLC sender.
func NewSender(sched *sim.Scheduler, wire arq.Wire, cfg Config, m *arq.Metrics) *Sender {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Sender{sched: sched, wire: wire, cfg: cfg, m: m, im: newSenderInstr(cfg.Metrics)}
	s.pumpTimer = sim.NewTimer(sched, s.pump)
	s.retryTimer = sim.NewTimer(sched, s.onTimeout)
	s.stutterTimer = sim.NewTimer(sched, s.stutter)
	return s
}

// Stutters returns the number of idle-time stutter retransmissions sent.
func (s *Sender) Stutters() uint64 { return s.stutters }

// Start is a no-op for symmetry with the LAMS-DLC sender.
func (s *Sender) Start() {}

// Outstanding returns window occupancy plus queued backlog — the sending
// buffer whose unbounded growth under sustained load §4 proves.
func (s *Sender) Outstanding() int { return len(s.window) + len(s.queue) }

// Unacked returns the number of in-window frames.
func (s *Sender) Unacked() int { return len(s.window) }

// QueuedDatagrams returns the untransmitted backlog.
func (s *Sender) QueuedDatagrams() int { return len(s.queue) }

// SendBase exposes the lowest unacknowledged sequence number.
func (s *Sender) SendBase() uint32 { return s.sendBase }

// Enqueue accepts a datagram from the network layer. Unlike LAMS-DLC there
// is no transparent bound; the queue grows as the analysis predicts, so the
// caller measures rather than limits it.
func (s *Sender) Enqueue(dg arq.Datagram) bool {
	dg.EnqueuedAt = s.sched.Now()
	s.queue = append(s.queue, dg)
	s.m.Submitted.Inc()
	s.noteOccupancy()
	s.schedulePump(0)
	return true
}

func (s *Sender) schedulePump(d sim.Duration) {
	at := s.sched.Now().Add(d)
	if s.pumpArmed && s.pumpTimer.Deadline() <= at {
		return
	}
	s.pumpArmed = true
	s.pumpTimer.StartAt(at)
}

// pump transmits while the window has room.
func (s *Sender) pump() {
	s.pumpArmed = false
	now := s.sched.Now()
	if now < s.wireFree {
		s.schedulePump(s.wireFree.Sub(now))
		return
	}
	if len(s.queue) == 0 || uint32(len(s.window)) >= uint32(s.cfg.WindowSize) {
		s.maybeStutter()
		return
	}
	dg := s.queue[0]
	s.queue = s.queue[1:]
	e := &hentry{dg: dg, seq: s.nextSeq, firstTx: now}
	s.nextSeq++
	s.window = append(s.window, e)
	// The frame that fills the window carries the P bit: ask the receiver
	// for an RR checkpoint so the window can turn over.
	final := uint32(len(s.window)) == uint32(s.cfg.WindowSize) || len(s.queue) == 0
	s.transmit(e, final, false)
	s.noteOccupancy()
	tx := s.wire.TxTime(frame.NewI(0, 0, dg.Payload))
	s.wireFree = now.Add(tx)
	if len(s.queue) > 0 {
		s.schedulePump(tx)
	}
}

// transmit sends (or resends) e and restarts T1 (the single HDLC
// acknowledgment timer).
func (s *Sender) transmit(e *hentry, final, retx bool) {
	f := &frame.Frame{
		Kind:       frame.KindHDLCI,
		Seq:        e.seq,
		Payload:    e.dg.Payload,
		DatagramID: e.dg.ID,
		Final:      final,
		EnqueuedNS: int64(e.dg.EnqueuedAt),
	}
	s.wire.Send(f)
	if retx {
		s.m.Retransmissions.Inc()
		s.im.retx.Inc()
	} else {
		s.m.FirstTx.Inc()
		s.im.firstTx.Inc()
	}
	s.restartT1()
}

// restartT1 re-arms the acknowledgment timer. HDLC runs a single T1 timer:
// it is (re)started on every transmission and on every supervisory frame
// received, and stopped when the window drains.
func (s *Sender) restartT1() {
	if len(s.window) == 0 {
		s.retryTimer.Stop()
		return
	}
	s.retryTimer.Start(s.cfg.Timeout)
}

// maybeStutter arms the stutter process: when new transmission is blocked
// but unacknowledged frames exist, the idle wire repeats them cyclically at
// the frame rate.
func (s *Sender) maybeStutter() {
	if !s.cfg.Stutter || len(s.window) == 0 || s.stutterTimer.Active() {
		return
	}
	idle := s.wireFree.Sub(s.sched.Now())
	if idle < 0 {
		idle = 0
	}
	s.stutterTimer.Start(idle)
}

// stutter repeats one unacknowledged frame and re-arms while the sender
// remains otherwise idle.
func (s *Sender) stutter() {
	if len(s.window) == 0 {
		return
	}
	// New traffic has priority: if a frame could be sent normally, yield.
	if len(s.queue) > 0 && uint32(len(s.window)) < uint32(s.cfg.WindowSize) {
		s.schedulePump(0)
		return
	}
	if s.stutterIdx >= len(s.window) {
		s.stutterIdx = 0
	}
	e := s.window[s.stutterIdx]
	s.stutterIdx++
	s.stutters++
	s.im.stutterRetx.Inc()
	s.transmit(e, s.stutterIdx == len(s.window), true)
	tx := s.wire.TxTime(&frame.Frame{Kind: frame.KindHDLCI, Payload: e.dg.Payload})
	s.wireFree = s.sched.Now().Add(tx)
	s.stutterTimer.Start(tx)
}

// onTimeout performs HDLC checkpoint (timeout) retransmission: resend the
// oldest unacknowledged I-frame with the P bit set, soliciting an RR that
// reveals the receiver's true state (§4: timeout recovery governs the
// retransmission periods, with one frame per period).
func (s *Sender) onTimeout() {
	if len(s.window) == 0 {
		return
	}
	s.im.timeoutPolls.Inc()
	s.transmit(s.window[0], true, true)
}

// HandleFrame processes supervisory frames from the receiver.
func (s *Sender) HandleFrame(now sim.Time, f *frame.Frame) {
	if f.Corrupted {
		return
	}
	switch f.Kind {
	case frame.KindRR:
		s.handleRR(now, f)
	case frame.KindSREJ:
		s.handleSREJ(now, f)
	case frame.KindREJ:
		s.handleREJ(now, f)
	}
}

// handleRR releases everything below N(R) (cumulative positive ack) and
// slides the window.
func (s *Sender) handleRR(now sim.Time, f *frame.Frame) {
	if f.Ack <= s.sendBase {
		return // stale
	}
	s.im.rrHeard.Inc()
	var keep []*hentry
	for _, e := range s.window {
		if e.seq < f.Ack {
			s.m.HoldingTime.Add(float64(now.Sub(e.firstTx)))
			s.im.releases.Inc()
			s.im.holdingNS.Observe(float64(now.Sub(e.firstTx)))
		} else {
			keep = append(keep, e)
		}
	}
	s.window = keep
	s.sendBase = f.Ack
	s.restartT1()
	s.noteOccupancy()
	s.schedulePump(0)
}

// handleSREJ retransmits exactly the rejected frame under its original
// number.
func (s *Sender) handleSREJ(_ sim.Time, f *frame.Frame) {
	for _, e := range s.window {
		if e.seq == f.Seq {
			e.srejTimes++
			s.im.srejRetx.Inc()
			// Retransmissions poll (P bit): §4's model has each
			// retransmission period end with an RR solicited by the
			// last retransmitted I-frame.
			s.transmit(e, true, true)
			return
		}
	}
	// Unknown seq: the SREJ was stale (frame already released). Ignore.
}

// handleREJ implements Go-Back-N: retransmit the rejected frame and every
// later outstanding frame, in order.
func (s *Sender) handleREJ(_ sim.Time, f *frame.Frame) {
	n := 0
	for _, e := range s.window {
		if e.seq >= f.Seq {
			n++
		}
	}
	i := 0
	for _, e := range s.window {
		if e.seq >= f.Seq {
			i++
			s.im.rejRetx.Inc()
			s.transmit(e, i == n, true)
		}
	}
}

func (s *Sender) noteOccupancy() {
	s.m.SendBufOcc.Update(int64(s.sched.Now()), float64(s.Outstanding()))
	s.im.outstanding.Set(float64(s.Outstanding()))
}
