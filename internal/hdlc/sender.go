package hdlc

import (
	"fmt"
	"sync"

	"repro/internal/arq"
	"repro/internal/frame"
	"repro/internal/ring"
	"repro/internal/sim"
)

// hentryPool recycles window entries across sender lifetimes (see the
// LAMS-DLC entryPool for the rationale). Entries are zeroed before Put.
var hentryPool = sync.Pool{New: func() any { return new(hentry) }}

// hentry is one outstanding I-frame. HDLC never renumbers, so the key is
// stable for the frame's lifetime.
type hentry struct {
	dg        arq.Datagram
	seq       uint32
	firstTx   sim.Time
	srejTimes int
}

// Sender is the transmitting half of an HDLC endpoint: window-limited
// transmission, SREJ/REJ-driven retransmission, cumulative release on RR,
// and timeout recovery with P-bit polls.
type Sender struct {
	sched *sim.Scheduler
	wire  arq.Wire
	cfg   Config
	m     *arq.Metrics
	im    senderInstr

	queue    ring.Ring[arq.Datagram]
	window   []*hentry // outstanding, ascending seq
	sendBase uint32
	nextSeq  uint32

	// Recycled run-scoped state, mirroring the LAMS-DLC sender (ISSUE 6):
	// window entries return to hentryPool on release, and outbound frames
	// are built in a reusable scratch (the Wire contract copies on Send).
	// pacef is a separate scratch for the TxTime pacing probes so they
	// cannot disturb an in-flight txf between Send and TxTime.
	txf   frame.Frame
	pacef frame.Frame

	pumpTimer *sim.Timer
	pumpArmed bool
	wireFree  sim.Time

	retryTimer *sim.Timer

	// Stutter mode.
	stutterTimer *sim.Timer
	stutterIdx   int
	stutters     uint64

	// Failure supervision: consecutive T1 expiries with no supervisory
	// frame heard (the N2 retry count of real HDLC). Zero MaxTimeouts
	// disables declaration.
	timeoutsInRow int
	failed        bool
	onFailure     arq.FailureFunc

	probe *arq.Probe
}

// NewSender constructs an HDLC sender.
func NewSender(sched *sim.Scheduler, wire arq.Wire, cfg Config, m *arq.Metrics) *Sender {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Sender{sched: sched, wire: wire, cfg: cfg, m: m, im: newSenderInstr(cfg.Metrics)}
	s.pumpTimer = sim.NewTimer(sched, s.pump)
	s.retryTimer = sim.NewTimer(sched, s.onTimeout)
	s.stutterTimer = sim.NewTimer(sched, s.stutter)
	return s
}

// Stutters returns the number of idle-time stutter retransmissions sent.
func (s *Sender) Stutters() uint64 { return s.stutters }

// SetOnFailure installs the failure callback (API parity with the LAMS-DLC
// sender, whose constructor takes it; kept as a setter here so the raw
// constructor signature the live driver uses stays put). Install before
// Start.
func (s *Sender) SetOnFailure(fn arq.FailureFunc) { s.onFailure = fn }

// SetProbe installs the transition observer; nil detaches. HDLC fires the
// transmission-lifecycle callbacks (FirstTransmission, Retransmitted with
// oldSeq == newSeq, Released, FailureDeclared); the checkpoint/recovery
// callbacks have no HDLC transition and never fire.
func (s *Sender) SetProbe(p *arq.Probe) { s.probe = p }

// Failed reports whether the sender declared the link failed (or was shut
// down).
func (s *Sender) Failed() bool { return s.failed }

// Start is a no-op for symmetry with the LAMS-DLC sender.
func (s *Sender) Start() {}

// Outstanding returns window occupancy plus queued backlog — the sending
// buffer whose unbounded growth under sustained load §4 proves.
func (s *Sender) Outstanding() int { return len(s.window) + s.queue.Len() }

// Unacked returns the number of in-window frames.
func (s *Sender) Unacked() int { return len(s.window) }

// QueuedDatagrams returns the untransmitted backlog.
func (s *Sender) QueuedDatagrams() int { return s.queue.Len() }

// SendBase exposes the lowest unacknowledged sequence number.
func (s *Sender) SendBase() uint32 { return s.sendBase }

// Enqueue accepts a datagram from the network layer. Unlike LAMS-DLC there
// is no transparent bound; the queue grows as the analysis predicts, so the
// caller measures rather than limits it. A failed or shut-down sender
// refuses work, mirroring the LAMS-DLC contract.
func (s *Sender) Enqueue(dg arq.Datagram) bool {
	if s.failed {
		return false
	}
	dg.EnqueuedAt = s.sched.Now()
	s.queue.PushBack(dg)
	s.m.Submitted.Inc()
	s.noteOccupancy()
	s.schedulePump(0)
	return true
}

func (s *Sender) schedulePump(d sim.Duration) {
	at := s.sched.Now().Add(d)
	if s.pumpArmed && s.pumpTimer.Deadline() <= at {
		return
	}
	s.pumpArmed = true
	s.pumpTimer.StartAt(at)
}

// pump transmits while the window has room.
func (s *Sender) pump() {
	s.pumpArmed = false
	now := s.sched.Now()
	// Pacing debt is at most one frame time in normal operation; a
	// wireFree further out than one T1 period was written by state
	// corruption and would halt transmission on a healthy link.
	if limit := now.Add(s.cfg.Timeout); s.wireFree > limit {
		s.wireFree = limit
	}
	if now < s.wireFree {
		s.schedulePump(s.wireFree.Sub(now))
		return
	}
	if s.queue.Len() == 0 || uint32(len(s.window)) >= uint32(s.cfg.WindowSize) {
		s.maybeStutter()
		return
	}
	dg := s.queue.PopFront()
	e := s.newEntry()
	e.dg, e.seq, e.firstTx = dg, s.nextSeq, now
	s.nextSeq++
	s.window = append(s.window, e)
	// The frame that fills the window carries the P bit: ask the receiver
	// for an RR checkpoint so the window can turn over.
	final := uint32(len(s.window)) == uint32(s.cfg.WindowSize) || s.queue.Len() == 0
	s.transmit(e, final, false, 0)
	if s.probe != nil && s.probe.FirstTransmission != nil {
		s.probe.FirstTransmission(now, e.seq, e.dg.ID)
	}
	s.noteOccupancy()
	// Historical pacing quirk, kept bit-for-bit: the pacing probe is a
	// plain I-frame header (frame.NewI sizing), not an HDLC-I one.
	s.pacef = frame.Frame{Kind: frame.KindI, Payload: dg.Payload}
	tx := s.wire.TxTime(&s.pacef)
	s.wireFree = now.Add(tx)
	if s.queue.Len() > 0 {
		s.schedulePump(tx)
	}
}

// newEntry fetches a zeroed window entry from the pool.
func (s *Sender) newEntry() *hentry {
	return hentryPool.Get().(*hentry)
}

// freeEntry recycles a released window entry. The entry is zeroed before Put
// so the pool never pins payload memory and Get hands out clean objects.
func (s *Sender) freeEntry(e *hentry) {
	*e = hentry{}
	hentryPool.Put(e)
}

// transmit sends (or resends) e and restarts T1 (the single HDLC
// acknowledgment timer). cause classifies a retransmission for the probe;
// it is ignored when retx is false (HDLC keeps the original number, so the
// probe sees oldSeq == newSeq).
func (s *Sender) transmit(e *hentry, final, retx bool, cause arq.RetxCause) {
	s.txf = frame.Frame{
		Kind:       frame.KindHDLCI,
		Seq:        e.seq,
		Payload:    e.dg.Payload,
		DatagramID: e.dg.ID,
		Final:      final,
		EnqueuedNS: int64(e.dg.EnqueuedAt),
	}
	s.wire.Send(&s.txf)
	if retx {
		s.m.Retransmissions.Inc()
		s.im.retx.Inc()
		if s.probe != nil && s.probe.Retransmitted != nil {
			s.probe.Retransmitted(s.sched.Now(), e.seq, e.seq, e.dg.ID, cause)
		}
	} else {
		s.m.FirstTx.Inc()
		s.im.firstTx.Inc()
	}
	s.restartT1()
}

// restartT1 re-arms the acknowledgment timer. HDLC runs a single T1 timer:
// it is (re)started on every transmission and on every supervisory frame
// received, and stopped when the window drains.
func (s *Sender) restartT1() {
	if len(s.window) == 0 {
		s.retryTimer.Stop()
		return
	}
	s.retryTimer.Start(s.cfg.Timeout)
}

// maybeStutter arms the stutter process: when new transmission is blocked
// but unacknowledged frames exist, the idle wire repeats them cyclically at
// the frame rate.
func (s *Sender) maybeStutter() {
	if !s.cfg.Stutter || len(s.window) == 0 || s.stutterTimer.Active() {
		return
	}
	idle := s.wireFree.Sub(s.sched.Now())
	if idle < 0 {
		idle = 0
	}
	s.stutterTimer.Start(idle)
}

// stutter repeats one unacknowledged frame and re-arms while the sender
// remains otherwise idle.
func (s *Sender) stutter() {
	if len(s.window) == 0 {
		return
	}
	// New traffic has priority: if a frame could be sent normally, yield.
	if s.queue.Len() > 0 && uint32(len(s.window)) < uint32(s.cfg.WindowSize) {
		s.schedulePump(0)
		return
	}
	if s.stutterIdx >= len(s.window) {
		s.stutterIdx = 0
	}
	e := s.window[s.stutterIdx]
	s.stutterIdx++
	s.stutters++
	s.im.stutterRetx.Inc()
	s.transmit(e, s.stutterIdx == len(s.window), true, arq.RetxStutter)
	s.pacef = frame.Frame{Kind: frame.KindHDLCI, Payload: e.dg.Payload}
	tx := s.wire.TxTime(&s.pacef)
	s.wireFree = s.sched.Now().Add(tx)
	s.stutterTimer.Start(tx)
}

// onTimeout performs HDLC checkpoint (timeout) retransmission: resend the
// oldest unacknowledged I-frame with the P bit set, soliciting an RR that
// reveals the receiver's true state (§4: timeout recovery governs the
// retransmission periods, with one frame per period). Each expiry with no
// intervening supervisory frame counts against N2 (MaxTimeouts); exhausting
// it declares link failure.
func (s *Sender) onTimeout() {
	if len(s.window) == 0 {
		return
	}
	s.timeoutsInRow++
	if s.cfg.MaxTimeouts > 0 && s.timeoutsInRow > s.cfg.MaxTimeouts {
		s.declareFailure()
		return
	}
	s.im.timeoutPolls.Inc()
	s.transmit(s.window[0], true, true, arq.RetxTimeout)
}

// declareFailure marks the link failed after N2 exhaustion: timers stop, new
// work is refused, and the unreleased datagrams stay reclaimable for
// carry-over, mirroring the LAMS-DLC failure path.
func (s *Sender) declareFailure() {
	if s.failed {
		return
	}
	s.failed = true
	s.retryTimer.Stop()
	s.pumpTimer.Stop()
	s.stutterTimer.Stop()
	s.pumpArmed = false
	s.m.Failures.Inc()
	s.im.failures.Inc()
	reason := fmt.Sprintf("N2 exhausted: %d consecutive T1 expiries", s.timeoutsInRow)
	if s.probe != nil && s.probe.FailureDeclared != nil {
		s.probe.FailureDeclared(s.sched.Now(), reason)
	}
	if s.onFailure != nil {
		s.onFailure(s.sched.Now(), reason)
	}
}

// Shutdown is orderly teardown at the end of a pass: stop all timers and
// refuse further work without running the failure callbacks. Unreleased
// datagrams remain reclaimable via UnreleasedDatagrams.
func (s *Sender) Shutdown() {
	s.failed = true
	s.retryTimer.Stop()
	s.pumpTimer.Stop()
	s.stutterTimer.Stop()
	s.pumpArmed = false
}

// UnreleasedDatagrams returns the datagrams not yet cumulatively
// acknowledged — in-window frames in sequence order, then the untransmitted
// queue — so a higher layer can carry them into the next pass.
func (s *Sender) UnreleasedDatagrams() []arq.Datagram {
	out := make([]arq.Datagram, 0, len(s.window)+s.queue.Len())
	for _, e := range s.window {
		out = append(out, e.dg)
	}
	for i := 0; i < s.queue.Len(); i++ {
		out = append(out, s.queue.At(i))
	}
	return out
}

// HandleFrame processes supervisory frames from the receiver.
func (s *Sender) HandleFrame(now sim.Time, f *frame.Frame) {
	if f.Corrupted || s.failed {
		return
	}
	// The N2 count resets only on window PROGRESS (handleRR, after a
	// release), never on mere supervisory chatter. A receiver with
	// corrupted state can answer every T1 poll forever — implausible RRs,
	// stale RRs below a poisoned sendBase, REJ storms demanding a frame the
	// sender no longer holds — and counting that chatter as proof of life
	// livelocks the link: polls and rejections cycle eternally with the
	// window never sliding and failure never declared. Sixteen-odd T1
	// periods without one frame released is a dead link whatever else is
	// arriving.
	switch f.Kind {
	case frame.KindRR:
		s.handleRR(now, f)
	case frame.KindSREJ:
		s.handleSREJ(now, f)
	case frame.KindREJ:
		s.handleREJ(now, f)
	}
}

// handleRR releases everything below N(R) (cumulative positive ack) and
// slides the window.
func (s *Sender) handleRR(now sim.Time, f *frame.Frame) {
	if f.Ack > s.nextSeq {
		// N(R) above anything ever transmitted cannot be a genuine
		// acknowledgement: forged, or corrupted-yet-FCS-valid. Applying it
		// would release the whole window unseen AND advance sendBase past
		// nextSeq, after which every legitimate RR reads as stale — the
		// window could never release again. Refuse it; T1/N2 supervision
		// carries the link (recovery if the receiver is sane, bounded
		// failure declaration if its state is truly gone).
		s.im.implausibleRR.Inc()
		return
	}
	if f.Ack <= s.sendBase {
		return // stale
	}
	s.timeoutsInRow = 0 // forward progress: the link is alive
	s.im.rrHeard.Inc()
	w := 0
	for _, e := range s.window {
		if e.seq < f.Ack {
			s.m.HoldingTime.Add(float64(now.Sub(e.firstTx)))
			s.im.releases.Inc()
			s.im.holdingNS.Observe(float64(now.Sub(e.firstTx)))
			if s.probe != nil && s.probe.Released != nil {
				s.probe.Released(now, e.seq, e.dg.ID)
			}
			s.freeEntry(e)
		} else {
			s.window[w] = e
			w++
		}
	}
	for i := w; i < len(s.window); i++ {
		s.window[i] = nil
	}
	s.window = s.window[:w]
	s.sendBase = f.Ack
	s.restartT1()
	s.noteOccupancy()
	s.schedulePump(0)
}

// handleSREJ retransmits exactly the rejected frame under its original
// number.
func (s *Sender) handleSREJ(_ sim.Time, f *frame.Frame) {
	for _, e := range s.window {
		if e.seq == f.Seq {
			e.srejTimes++
			s.im.srejRetx.Inc()
			// Retransmissions poll (P bit): §4's model has each
			// retransmission period end with an RR solicited by the
			// last retransmitted I-frame.
			s.transmit(e, true, true, arq.RetxSREJ)
			return
		}
	}
	// Unknown seq: the SREJ was stale (frame already released). Ignore.
}

// handleREJ implements Go-Back-N: retransmit the rejected frame and every
// later outstanding frame, in order.
func (s *Sender) handleREJ(_ sim.Time, f *frame.Frame) {
	n := 0
	for _, e := range s.window {
		if e.seq >= f.Seq {
			n++
		}
	}
	i := 0
	for _, e := range s.window {
		if e.seq >= f.Seq {
			i++
			s.im.rejRetx.Inc()
			s.transmit(e, i == n, true, arq.RetxREJ)
		}
	}
}

func (s *Sender) noteOccupancy() {
	s.m.SendBufOcc.Update(int64(s.sched.Now()), float64(s.Outstanding()))
	s.im.outstanding.Set(float64(s.Outstanding()))
}
