package hdlc

import (
	"testing"

	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/sim"
)

// API-parity regression tests: the capabilities hdlc.Pair gained to satisfy
// the arq engine contract (failure callback via NewPair's onFailure,
// end-of-pass reclaim of undelivered datagrams) behave like lamsdlc's.

func parityPipe(im, cm channel.ErrorModel) channel.PipeConfig {
	return channel.PipeConfig{
		RateBps: 100e6,
		Delay:   channel.ConstantDelay(2 * sim.Millisecond),
		IModel:  im,
		CModel:  cm,
	}
}

// TestFailureCallbackOnN2Exhaustion kills the link mid-transfer and requires
// the sender to declare failure through onFailure once MaxTimeouts (N2)
// consecutive T1 expiries pass unanswered.
func TestFailureCallbackOnN2Exhaustion(t *testing.T) {
	sched := sim.NewScheduler()
	link := channel.NewLink(sched, parityPipe(nil, nil), sim.NewRNG(3))
	cfg := Defaults(4 * sim.Millisecond)
	cfg.MaxTimeouts = 3
	var failedAt sim.Time
	var reason string
	pair := NewPair(sched, link, cfg, nil, func(now sim.Time, r string) {
		failedAt = now
		reason = r
	})
	pair.Start()
	for i := 0; i < 10; i++ {
		pair.Enqueue(arq.Datagram{ID: uint64(i), Payload: make([]byte, 256)})
	}
	// Kill the link while the window is still full (the first RR needs a
	// round trip), so every subsequent T1 expiry goes unanswered.
	sched.RunFor(1 * sim.Millisecond)
	link.Fail()
	sched.RunFor(10 * sim.Second)
	if failedAt == 0 {
		t.Fatal("sender never declared failure after the link died")
	}
	if !pair.Failed() {
		t.Fatal("Failed() false after declared failure")
	}
	if reason == "" {
		t.Fatal("failure callback got an empty reason")
	}
	if pair.Metrics().Failures.Value() != 1 {
		t.Fatalf("Failures counter = %d, want 1", pair.Metrics().Failures.Value())
	}
	// The declaration bound: (N2+1) full T1 periods from the last heard
	// supervisory frame, plus one period of phase slack.
	bound := sim.Duration(cfg.MaxTimeouts+2) * cfg.Timeout
	if d := failedAt.Sub(sim.Time(1 * sim.Millisecond)); d > bound {
		t.Fatalf("failure declared %v after the kill, want <= %v", d, bound)
	}
	// A failed sender refuses new work, like lamsdlc's.
	if pair.Enqueue(arq.Datagram{ID: 99}) {
		t.Fatal("failed sender accepted a datagram")
	}
}

// TestZeroMaxTimeoutsNeverDeclares pins the historical default: with
// MaxTimeouts zero the sender polls forever and never declares failure.
func TestZeroMaxTimeoutsNeverDeclares(t *testing.T) {
	sched := sim.NewScheduler()
	link := channel.NewLink(sched, parityPipe(nil, nil), sim.NewRNG(3))
	cfg := Defaults(4 * sim.Millisecond)
	called := false
	pair := NewPair(sched, link, cfg, nil, func(sim.Time, string) { called = true })
	pair.Start()
	pair.Enqueue(arq.Datagram{ID: 1, Payload: make([]byte, 256)})
	sched.RunFor(5 * sim.Millisecond)
	link.Fail()
	sched.RunFor(30 * sim.Second)
	if called || pair.Failed() {
		t.Fatal("failure declared with MaxTimeouts = 0")
	}
}

// TestReclaimAtPassEnd stops a transfer mid-flight and requires every
// undelivered datagram to come back from Reclaim, oldest first, with no
// datagram both missing from the reclaim and undelivered — the no-loss
// half of the cross-pass carry-over contract.
func TestReclaimAtPassEnd(t *testing.T) {
	sched := sim.NewScheduler()
	// Drop every 3rd I-frame so the window holds unacknowledged entries.
	link := channel.NewLink(sched, parityPipe(&everyNth{n: 3}, nil), sim.NewRNG(7))
	cfg := Defaults(4 * sim.Millisecond)
	delivered := make(map[uint64]bool)
	pair := NewPair(sched, link, cfg, func(_ sim.Time, dg arq.Datagram, _ uint32) {
		delivered[dg.ID] = true
	}, nil)
	pair.Start()
	const n = 200
	for i := 0; i < n; i++ {
		pair.Enqueue(arq.Datagram{ID: uint64(i), Payload: make([]byte, 512)})
	}
	// End the "pass" long before the transfer can finish.
	sched.RunFor(8 * sim.Millisecond)
	pair.Stop()
	reclaimed := pair.Reclaim()
	if len(reclaimed) == 0 {
		t.Fatal("nothing reclaimed from an unfinished transfer")
	}
	held := make(map[uint64]bool, len(reclaimed))
	last := int64(-1)
	for _, dg := range reclaimed {
		if int64(dg.ID) <= last {
			t.Fatalf("reclaim out of order: %d after %d", dg.ID, last)
		}
		last = int64(dg.ID)
		held[dg.ID] = true
	}
	for i := uint64(0); i < n; i++ {
		if !delivered[i] && !held[i] {
			t.Fatalf("datagram %d neither delivered nor reclaimed", i)
		}
	}
	// Stopped pair refuses new work and accepts no further deliveries.
	if pair.Enqueue(arq.Datagram{ID: n + 1}) {
		t.Fatal("stopped sender accepted a datagram")
	}
	if !pair.Failed() {
		t.Fatal("Failed() false after Stop")
	}
}

// everyNth corrupts every nth frame deterministically.
type everyNth struct{ n, count int }

func (e *everyNth) Corrupt(*sim.RNG, sim.Time, sim.Time, int) bool {
	e.count++
	return e.count%e.n == 0
}
