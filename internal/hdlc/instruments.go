package hdlc

import "repro/internal/metrics"

// Registry-backed observability instruments, mirroring the lamsdlc layout:
// arq.Metrics stays the experiment-aggregate channel, the registry is what
// snapshots and /metrics read. All instruments are nil with a nil registry,
// making every increment a no-op.
type senderInstr struct {
	firstTx       *metrics.Counter   // hdlc_iframes_first_tx_total
	retx          *metrics.Counter   // hdlc_iframes_retx_total (all causes)
	timeoutPolls  *metrics.Counter   // hdlc_timeout_polls_total: T1 expiry resends
	srejRetx      *metrics.Counter   // hdlc_srej_retx_total
	rejRetx       *metrics.Counter   // hdlc_rej_retx_total: Go-Back-N back-up resends
	stutterRetx   *metrics.Counter   // hdlc_stutter_retx_total: idle-wire repeats
	rrHeard       *metrics.Counter   // hdlc_rr_heard_total: non-stale RRs applied
	implausibleRR *metrics.Counter   // hdlc_implausible_rr_total: RRs refused for N(R) above nextSeq
	releases      *metrics.Counter   // hdlc_releases_total: frames cumulatively acked
	failures      *metrics.Counter   // hdlc_failures_total: N2 retry exhaustion
	outstanding   *metrics.Gauge     // hdlc_send_outstanding
	holdingNS     *metrics.Histogram // hdlc_holding_time_ns
}

func newSenderInstr(reg *metrics.Registry) senderInstr {
	return senderInstr{
		firstTx:       reg.Counter("hdlc_iframes_first_tx_total"),
		retx:          reg.Counter("hdlc_iframes_retx_total"),
		timeoutPolls:  reg.Counter("hdlc_timeout_polls_total"),
		srejRetx:      reg.Counter("hdlc_srej_retx_total"),
		rejRetx:       reg.Counter("hdlc_rej_retx_total"),
		stutterRetx:   reg.Counter("hdlc_stutter_retx_total"),
		rrHeard:       reg.Counter("hdlc_rr_heard_total"),
		implausibleRR: reg.Counter("hdlc_implausible_rr_total"),
		releases:      reg.Counter("hdlc_releases_total"),
		failures:      reg.Counter("hdlc_failures_total"),
		outstanding:   reg.Gauge("hdlc_send_outstanding"),
		holdingNS:     reg.Histogram("hdlc_holding_time_ns", metrics.ExpBuckets(1e5, 2, 24)),
	}
}

type receiverInstr struct {
	rrSent    *metrics.Counter // hdlc_rr_sent_total
	srejSent  *metrics.Counter // hdlc_srej_sent_total
	rejSent   *metrics.Counter // hdlc_rej_sent_total
	delivered *metrics.Counter // hdlc_delivered_total
	dups      *metrics.Counter // hdlc_dup_discarded_total: below-base duplicates
	held      *metrics.Gauge   // hdlc_held_frames: out-of-order buffer occupancy
}

func newReceiverInstr(reg *metrics.Registry) receiverInstr {
	return receiverInstr{
		rrSent:    reg.Counter("hdlc_rr_sent_total"),
		srejSent:  reg.Counter("hdlc_srej_sent_total"),
		rejSent:   reg.Counter("hdlc_rej_sent_total"),
		delivered: reg.Counter("hdlc_delivered_total"),
		dups:      reg.Counter("hdlc_dup_discarded_total"),
		held:      reg.Gauge("hdlc_held_frames"),
	}
}
