package hdlc

import (
	"testing"
	"testing/quick"

	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/sim"
)

type scenario struct {
	sched *sim.Scheduler
	pair  *Pair
	link  *channel.Link
	got   map[uint64]int
	order []uint64
}

func newScenario(cfg Config, pipe channel.PipeConfig, seed uint64) *scenario {
	sched := sim.NewScheduler()
	link := channel.NewLink(sched, pipe, sim.NewRNG(seed))
	sc := &scenario{sched: sched, link: link, got: make(map[uint64]int)}
	sc.pair = NewPair(sched, link, cfg, func(_ sim.Time, dg arq.Datagram, _ uint32) {
		sc.got[dg.ID]++
		sc.order = append(sc.order, dg.ID)
	}, nil)
	sc.pair.Start()
	return sc
}

func (sc *scenario) enqueueAll(n, size int) {
	for i := 0; i < n; i++ {
		sc.pair.Sender.Enqueue(arq.Datagram{ID: uint64(i), Payload: make([]byte, size)})
	}
}

func (sc *scenario) assertStrictReliability(t *testing.T, n int) {
	t.Helper()
	if len(sc.order) != n {
		t.Fatalf("delivered %d datagrams, want %d", len(sc.order), n)
	}
	for i, id := range sc.order {
		if id != uint64(i) {
			t.Fatalf("order[%d] = %d: FIFO delivery violated", i, id)
		}
	}
	for i := 0; i < n; i++ {
		if sc.got[uint64(i)] != 1 {
			t.Fatalf("datagram %d delivered %d times", i, sc.got[uint64(i)])
		}
	}
}

func baseCfg() Config {
	cfg := Defaults(26 * sim.Millisecond)
	cfg.WindowSize = 32
	cfg.ModulusBits = 0
	return cfg
}

func basePipe() channel.PipeConfig {
	return channel.PipeConfig{
		RateBps: 100e6,
		Delay:   channel.ConstantDelay(13 * sim.Millisecond),
	}
}

func TestConfigValidate(t *testing.T) {
	if err := Defaults(20 * sim.Millisecond).Validate(); err != nil {
		t.Fatalf("defaults: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.WindowSize = 0 },
		func(c *Config) { c.Mode = Mode(9) },
		func(c *Config) { c.ModulusBits = 33 },
		func(c *Config) { c.WindowSize = 65; c.ModulusBits = 7 }, // > M/2
		func(c *Config) { c.Timeout = 0 },
		func(c *Config) { c.Timeout = c.RoundTrip / 2 },
		func(c *Config) { c.RoundTrip = -1 },
	}
	for i, mut := range bad {
		c := Defaults(20 * sim.Millisecond)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if Defaults(time20()).Alpha() != 10*sim.Millisecond {
		t.Fatal("alpha")
	}
	if SelectiveRepeat.String() != "SR-HDLC" || GoBackN.String() != "GBN-HDLC" {
		t.Fatal("mode names")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode string")
	}
}

func time20() sim.Duration { return 20 * sim.Millisecond }

func TestPerfectChannelStrictReliability(t *testing.T) {
	sc := newScenario(baseCfg(), basePipe(), 1)
	const n = 300
	sc.enqueueAll(n, 1024)
	sc.sched.RunFor(10 * sim.Second)
	sc.assertStrictReliability(t, n)
	if sc.pair.Metrics().Retransmissions.Value() != 0 {
		t.Fatalf("%d retransmissions on perfect channel", sc.pair.Metrics().Retransmissions.Value())
	}
	if sc.pair.Sender.Unacked() != 0 {
		t.Fatal("window not drained")
	}
}

func TestWindowLimitsOutstanding(t *testing.T) {
	cfg := baseCfg()
	cfg.WindowSize = 8
	// Huge delay so no RR returns during the test prefix.
	pipe := basePipe()
	pipe.Delay = channel.ConstantDelay(sim.Second)
	cfg.Timeout = 3 * sim.Second
	sc := newScenario(cfg, pipe, 2)
	sc.enqueueAll(100, 256)
	sc.sched.RunFor(500 * sim.Millisecond)
	if got := sc.pair.Sender.Unacked(); got != 8 {
		t.Fatalf("unacked = %d, want window 8", got)
	}
	if sc.pair.Metrics().FirstTx.Value() != 8 {
		t.Fatalf("transmitted %d, want 8 (window stall)", sc.pair.Metrics().FirstTx.Value())
	}
}

type corruptNth struct {
	targets map[int]bool
	count   int
}

func (c *corruptNth) Corrupt(_ *sim.RNG, _, _ sim.Time, _ int) bool {
	c.count++
	return c.targets[c.count]
}

func TestSREJRecoversSingleLoss(t *testing.T) {
	pipe := basePipe()
	pipe.IModel = &corruptNth{targets: map[int]bool{3: true}}
	sc := newScenario(baseCfg(), pipe, 3)
	const n = 20
	sc.enqueueAll(n, 1024)
	sc.sched.RunFor(5 * sim.Second)
	sc.assertStrictReliability(t, n)
	m := sc.pair.Metrics()
	if m.Retransmissions.Value() != 1 {
		t.Fatalf("retransmissions = %d, want 1 (SREJ selective)", m.Retransmissions.Value())
	}
	if m.NAKsSent.Value() != 1 {
		t.Fatalf("SREJs = %d, want 1", m.NAKsSent.Value())
	}
	// Receive buffer held out-of-order frames while waiting.
	if m.RecvBufOcc.Max() == 0 {
		t.Fatal("SR receiver never buffered out-of-order frames")
	}
}

func TestGoBackNDiscardsAndBacksUp(t *testing.T) {
	cfg := baseCfg()
	cfg.Mode = GoBackN
	pipe := basePipe()
	pipe.IModel = &corruptNth{targets: map[int]bool{3: true}}
	sc := newScenario(cfg, pipe, 4)
	const n = 20
	sc.enqueueAll(n, 1024)
	sc.sched.RunFor(5 * sim.Second)
	sc.assertStrictReliability(t, n)
	m := sc.pair.Metrics()
	// GBN retransmits the lost frame and everything after it in flight.
	if m.Retransmissions.Value() < 2 {
		t.Fatalf("retransmissions = %d, want several (go-back-n)", m.Retransmissions.Value())
	}
	// GBN receiver never buffers.
	if m.RecvBufOcc.Max() != 0 {
		t.Fatal("GBN receiver buffered out-of-order frames")
	}
}

func TestTimeoutRecoversLostSREJ(t *testing.T) {
	// Corrupt an I-frame and then the SREJ for it: only the sender's
	// timeout (with P-bit poll) can recover, exactly the unbounded
	// inconsistency-gap scenario §2.3 describes for SR-HDLC.
	pipe := basePipe()
	pipe.IModel = &corruptNth{targets: map[int]bool{5: true}}
	pipe.CModel = &corruptNth{targets: map[int]bool{1: true}}
	sc := newScenario(baseCfg(), pipe, 5)
	const n = 20
	sc.enqueueAll(n, 1024)
	sc.sched.RunFor(10 * sim.Second)
	sc.assertStrictReliability(t, n)
	if sc.pair.Metrics().Retransmissions.Value() == 0 {
		t.Fatal("no timeout retransmission happened")
	}
}

func TestLostRRRecoveredByPoll(t *testing.T) {
	// Kill the first RR; the sender's timeout poll must elicit another so
	// the window turns over.
	pipe := basePipe()
	cfg := baseCfg()
	cfg.WindowSize = 4
	sched := sim.NewScheduler()
	rng := sim.NewRNG(6)
	link := channel.NewAsymmetricLink(sched, pipe, channel.PipeConfig{
		RateBps: pipe.RateBps,
		Delay:   pipe.Delay,
		CModel:  &corruptNth{targets: map[int]bool{1: true}},
	}, rng)
	got := map[uint64]int{}
	var order []uint64
	pair := NewPair(sched, link, cfg, func(_ sim.Time, dg arq.Datagram, _ uint32) {
		got[dg.ID]++
		order = append(order, dg.ID)
	}, nil)
	pair.Start()
	for i := 0; i < 12; i++ {
		pair.Sender.Enqueue(arq.Datagram{ID: uint64(i), Payload: make([]byte, 512)})
	}
	sched.RunFor(10 * sim.Second)
	if len(order) != 12 {
		t.Fatalf("delivered %d, want 12", len(order))
	}
	for i := 0; i < 12; i++ {
		if got[uint64(i)] != 1 {
			t.Fatalf("datagram %d delivered %d times", i, got[uint64(i)])
		}
	}
}

func TestRandomLossStrictReliability(t *testing.T) {
	pipe := basePipe()
	pipe.IModel = channel.FixedProb{P: 0.15}
	pipe.CModel = channel.FixedProb{P: 0.05}
	sc := newScenario(baseCfg(), pipe, 7)
	const n = 200
	sc.enqueueAll(n, 1024)
	sc.sched.RunFor(60 * sim.Second)
	sc.assertStrictReliability(t, n)
}

func TestStrictReliabilityProperty(t *testing.T) {
	f := func(seed uint16, pfRaw, pcRaw uint8, gbn bool) bool {
		pf := float64(pfRaw%30) / 100
		pc := float64(pcRaw%15) / 100
		cfg := baseCfg()
		if gbn {
			cfg.Mode = GoBackN
		}
		pipe := basePipe()
		pipe.IModel = channel.FixedProb{P: pf}
		pipe.CModel = channel.FixedProb{P: pc}
		sc := newScenario(cfg, pipe, uint64(seed)+1)
		const n = 40
		sc.enqueueAll(n, 512)
		sc.sched.RunFor(120 * sim.Second)
		if len(sc.order) != n {
			return false
		}
		for i, id := range sc.order {
			if id != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSenderQueueGrowsWithoutTransparentBound(t *testing.T) {
	// §4's key buffer claim: with sustained arrivals at the service rate,
	// the SR-HDLC sending buffer grows without bound because each window
	// turn costs a round trip of dead time. Offer frames at the wire rate
	// and watch the backlog climb.
	cfg := baseCfg()
	cfg.WindowSize = 16
	pipe := basePipe()
	sc := newScenario(cfg, pipe, 8)
	// Offer at wire saturation for 2 seconds.
	f := arq.Datagram{Payload: make([]byte, 1024)}
	tf := sim.Duration(float64((1024+21)*8) / pipe.RateBps * float64(sim.Second))
	var id uint64
	var feed func()
	feed = func() {
		f.ID = id
		id++
		sc.pair.Sender.Enqueue(f)
		if sc.sched.Now() < sim.Time(2*sim.Second) {
			sc.sched.ScheduleAfter(tf, feed)
		}
	}
	sc.sched.Schedule(0, feed)
	sc.sched.RunFor(2 * sim.Second)
	early := sc.pair.Sender.Outstanding()
	sc.sched.RunFor(sim.Second) // drain after arrivals stop
	if early < cfg.WindowSize*2 {
		t.Fatalf("backlog %d did not grow beyond the window", early)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, uint64, int) {
		pipe := basePipe()
		pipe.IModel = channel.FixedProb{P: 0.1}
		pipe.CModel = channel.FixedProb{P: 0.03}
		sc := newScenario(baseCfg(), pipe, 42)
		sc.enqueueAll(100, 1024)
		sc.sched.RunFor(30 * sim.Second)
		return sc.pair.Metrics().Retransmissions.Value(), sc.pair.Metrics().ControlSent.Value(), len(sc.order)
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Fatalf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", a1, b1, c1, a2, b2, c2)
	}
}

func TestHoldingTimeRecorded(t *testing.T) {
	sc := newScenario(baseCfg(), basePipe(), 9)
	sc.enqueueAll(50, 1024)
	sc.sched.RunFor(5 * sim.Second)
	m := sc.pair.Metrics()
	if m.HoldingTime.N() != 50 {
		t.Fatalf("holding samples = %d", m.HoldingTime.N())
	}
	// Minimum conceivable holding: a round trip.
	if m.HoldingTime.Mean() < float64(baseCfg().RoundTrip)/2 {
		t.Fatalf("mean holding %v implausibly small", sim.Duration(m.HoldingTime.Mean()))
	}
}

func TestStutterFillsIdleTime(t *testing.T) {
	cfg := baseCfg()
	cfg.WindowSize = 4
	cfg.Stutter = true
	sc := newScenario(cfg, basePipe(), 20)
	const n = 12
	sc.enqueueAll(n, 1024)
	sc.sched.RunFor(5 * sim.Second)
	sc.assertStrictReliability(t, n)
	if sc.pair.Sender.Stutters() == 0 {
		t.Fatal("stutter mode never used the idle wire")
	}
	// Stutter retransmissions count as retransmissions on the wire.
	if sc.pair.Metrics().Retransmissions.Value() < sc.pair.Sender.Stutters() {
		t.Fatal("stutters not accounted as retransmissions")
	}
}

func TestStutterBeatsTimeoutRecovery(t *testing.T) {
	// Corrupt the second I-frame and the SREJ asking for it: plain SR must
	// wait out t_out; the stuttering sender has already repeated the frame.
	run := func(stutter bool) sim.Duration {
		cfg := baseCfg()
		cfg.WindowSize = 8
		cfg.Stutter = stutter
		sched := sim.NewScheduler()
		rng := sim.NewRNG(21)
		pipe := basePipe()
		pipe.IModel = &corruptNth{targets: map[int]bool{2: true}}
		link := channel.NewAsymmetricLink(sched, pipe, channel.PipeConfig{
			RateBps: pipe.RateBps,
			Delay:   pipe.Delay,
			CModel:  &corruptNth{targets: map[int]bool{1: true}},
		}, rng)
		var last sim.Time
		count := 0
		pair := NewPair(sched, link, cfg, func(now sim.Time, dg arq.Datagram, _ uint32) {
			count++
			last = now
		}, nil)
		pair.Start()
		for i := 0; i < 8; i++ {
			pair.Sender.Enqueue(arq.Datagram{ID: uint64(i), Payload: make([]byte, 1024)})
		}
		sched.RunFor(30 * sim.Second)
		if count != 8 {
			t.Fatalf("stutter=%v delivered %d", stutter, count)
		}
		return sim.Duration(last)
	}
	plain := run(false)
	stuttered := run(true)
	if stuttered >= plain {
		t.Fatalf("stutter %v not faster than plain %v", stuttered, plain)
	}
}

func TestStutterOffByDefault(t *testing.T) {
	sc := newScenario(baseCfg(), basePipe(), 22)
	sc.enqueueAll(20, 1024)
	sc.sched.RunFor(5 * sim.Second)
	if sc.pair.Sender.Stutters() != 0 {
		t.Fatal("stutter used without being enabled")
	}
}
