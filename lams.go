// Package lams is the public face of the LAMS-DLC reproduction: a
// discrete-event implementation of the LAMS-DLC ARQ protocol (Ward & Choi,
// Auburn CSE-91-03 / SIGCOMM 1991) for low-altitude multiple-satellite
// laser crosslinks, together with the selective-repeat and Go-Back-N HDLC
// baselines, the link/orbit/FEC substrates they run on, and the analytical
// model of the paper's Section 4.
//
// The facade wraps the internal packages into a small surface:
//
//	sim := lams.NewSimulation(42)
//	link := sim.NewLink(lams.LinkParams{
//	    RateBps: 300e6, DistanceKm: 4000, BER: 1e-6,
//	})
//	pair := sim.NewLAMSPair(link, lams.DefaultsFor(link), deliver, nil)
//	pair.Sender.Enqueue(...)
//	sim.RunFor(time.Second)
//
// Everything below this facade is importable inside the module
// (internal/...), documented per package: sim (event kernel), frame (wire
// format), fec, orbit, channel, lamsdlc (the protocol), hdlc (baselines),
// analysis (closed forms), resequence, node (store-and-forward), workload,
// bench (experiment harness), live (real-time driver).
package lams

import (
	"time"

	"repro/internal/analysis"
	"repro/internal/arq"
	"repro/internal/channel"
	"repro/internal/fec"
	"repro/internal/hdlc"
	"repro/internal/lamsdlc"
	"repro/internal/orbit"
	"repro/internal/sim"
)

// Re-exported core types, so example and downstream code reads naturally.
type (
	// Datagram is the unit of the DLC's datagram service.
	Datagram = arq.Datagram
	// DeliverFunc receives datagrams handed up to the network layer.
	DeliverFunc = arq.DeliverFunc
	// FailureFunc is invoked when a sender declares link failure.
	FailureFunc = arq.FailureFunc
	// Metrics aggregates per-session measurements.
	Metrics = arq.Metrics
	// Config parameterizes LAMS-DLC endpoints.
	Config = lamsdlc.Config
	// HDLCConfig parameterizes the baseline endpoints.
	HDLCConfig = hdlc.Config
	// Link is a simulated full-duplex point-to-point link.
	Link = channel.Link
	// Time and Duration are virtual-clock instants and spans.
	Time = sim.Time
	// AnalysisParams carries the Section 4 closed-form parameters.
	AnalysisParams = analysis.Params
)

// Simulation owns a deterministic virtual-time world: scheduler plus seeded
// randomness. All objects created through it share the same clock.
type Simulation struct {
	sched *sim.Scheduler
	rng   *sim.RNG
}

// NewSimulation returns an empty world; identical seeds reproduce identical
// runs bit for bit.
func NewSimulation(seed uint64) *Simulation {
	return &Simulation{sched: sim.NewScheduler(), rng: sim.NewRNG(seed)}
}

// Scheduler exposes the underlying event scheduler for advanced use
// (custom timers, workload generators).
func (s *Simulation) Scheduler() *sim.Scheduler { return s.sched }

// RNG exposes the root random stream.
func (s *Simulation) RNG() *sim.RNG { return s.rng }

// Now returns the current virtual time.
func (s *Simulation) Now() Time { return s.sched.Now() }

// RunFor advances virtual time by d, executing everything due.
func (s *Simulation) RunFor(d time.Duration) { s.sched.RunFor(d) }

// Run executes until no events remain.
func (s *Simulation) Run() { s.sched.Run() }

// LinkParams describes a laser crosslink in physical terms. The FEC layer
// of the link model (assumption 4) is applied automatically: I-frames ride
// Hamming(7,4), control frames the stronger repetition code, so the BER
// maps to much smaller residual frame error probabilities for control
// traffic.
type LinkParams struct {
	// RateBps is the wire rate (300e6–1e9 in the paper's environment).
	RateBps float64
	// DistanceKm sets a constant propagation distance. Mutually exclusive
	// with Orbit.
	DistanceKm float64
	// Orbit, when non-nil, drives a time-varying propagation delay from
	// real geometry.
	Orbit *orbit.Link
	// BER is the post-interleaving channel bit error rate. Zero means a
	// perfect channel.
	BER float64
	// Burst, when non-nil, adds a deterministic burst process on top.
	Burst *channel.BurstTrain
	// IModelSpec and CModelSpec, when non-empty, select the per-frame-class
	// error models from the channel registry (grammar: kind[:k=v,...], see
	// channel.SpecGrammar). They take precedence over BER/Burst; a
	// malformed spec panics in NewLink, so validate user input with
	// channel.ParseModel first.
	IModelSpec string
	CModelSpec string
}

// delayFn builds the propagation model.
func (p LinkParams) delayFn() channel.DelayFn {
	if p.Orbit != nil {
		return channel.OrbitDelay(*p.Orbit, 0)
	}
	return channel.ConstantDelay(orbit.PropagationDelay(p.DistanceKm * 1e3))
}

// OneWay returns the (initial) one-way propagation delay.
func (p LinkParams) OneWay() time.Duration { return p.delayFn()(0) }

// models builds the per-frame-class error models. Registry specs win;
// the BER/Burst shorthands cover the paper's standard FEC split
// (Hamming(7,4) on I-frames, repetition-3 on control frames).
func (p LinkParams) models() (iModel, cModel channel.ErrorModel) {
	if p.IModelSpec != "" || p.CModelSpec != "" {
		return specOrPerfect(p.IModelSpec), specOrPerfect(p.CModelSpec)
	}
	if p.Burst != nil {
		bi, bc := *p.Burst, *p.Burst
		bi.BaseBER, bi.Scheme = p.BER, fec.Hamming74
		bc.BaseBER, bc.Scheme = p.BER, fec.Repetition3
		return &bi, &bc
	}
	if p.BER <= 0 {
		return channel.Perfect{}, channel.Perfect{}
	}
	return &channel.BSC{BER: p.BER, Scheme: fec.Hamming74},
		&channel.BSC{BER: p.BER, Scheme: fec.Repetition3}
}

// specOrPerfect instantiates a registry spec, treating the empty string as
// a perfect channel so a caller can set just one direction's model.
func specOrPerfect(spec string) channel.ErrorModel {
	if spec == "" {
		return channel.Perfect{}
	}
	return channel.MustParseModel(spec).New()
}

// NewLink materializes the link in this simulation.
func (s *Simulation) NewLink(p LinkParams) *Link {
	im, cm := p.models()
	return channel.NewLink(s.sched, channel.PipeConfig{
		RateBps: p.RateBps,
		Delay:   p.delayFn(),
		IModel:  im,
		CModel:  cm,
	}, s.rng.Split())
}

// DefaultsFor returns a LAMS-DLC configuration tuned to the link's round
// trip, as lamsdlc.Defaults does.
func DefaultsFor(p LinkParams) Config {
	return lamsdlc.Defaults(2 * p.OneWay())
}

// HDLCDefaultsFor returns a baseline configuration for the same link.
func HDLCDefaultsFor(p LinkParams) HDLCConfig {
	return hdlc.Defaults(2 * p.OneWay())
}

// LAMSPair is a wired LAMS-DLC sender/receiver pair.
type LAMSPair = lamsdlc.Pair

// HDLCPair is a wired baseline pair.
type HDLCPair = hdlc.Pair

// NewLAMSPair wires a LAMS-DLC session over link (data flows A→B) and
// starts it.
func (s *Simulation) NewLAMSPair(link *Link, cfg Config, deliver DeliverFunc, onFailure FailureFunc) *LAMSPair {
	p := lamsdlc.NewPair(s.sched, link, cfg, deliver, onFailure)
	p.Start()
	return p
}

// NewHDLCPair wires a baseline session over link and starts it. onFailure
// (may be nil) fires if the sender exhausts its N2 retry count
// (HDLCConfig.MaxTimeouts), matching NewLAMSPair's signature.
func (s *Simulation) NewHDLCPair(link *Link, cfg HDLCConfig, deliver DeliverFunc, onFailure FailureFunc) *HDLCPair {
	p := hdlc.NewPair(s.sched, link, cfg, deliver, onFailure)
	p.Start()
	return p
}

// AnalysisFor maps a link and protocol configuration onto the paper's
// closed-form parameters for the given I-frame payload size and HDLC
// comparison window.
func AnalysisFor(p LinkParams, cfg Config, payloadBytes, window int, alpha time.Duration) AnalysisParams {
	return analysis.FromScenario(analysis.Scenario{
		RateBps:      p.RateBps,
		BER:          p.BER,
		FrameBytes:   payloadBytes + 21,
		ControlBytes: 20,
		OneWay:       p.OneWay(),
		Icp:          cfg.CheckpointInterval,
		Cdepth:       cfg.CumulationDepth,
		W:            window,
		Tproc:        cfg.ProcTime,
		Alpha:        alpha,
	})
}
