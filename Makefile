# Tier-1 verification (ROADMAP.md): build everything, run everything.
.PHONY: test
test:
	go build ./...
	go test ./...

# CI gate: tier-1 plus static analysis and the race detector. The parallel
# experiment engine (internal/bench) fans simulations across a worker pool,
# so the race run is load-bearing, not ceremony. The -benchtime=100x
# scheduler bench smoke run does not measure anything — it exists to execute
# the timer-wheel benchmark bodies (churn, deep churn, timer restart) under
# the test binary so a regression that only bites the benchmark paths fails
# CI instead of the next perf investigation.
.PHONY: ci
ci: test cover faultmatrix stabmatrix lint allocsmoke constsmoke tracesmoke
	go test -race ./...
	go test ./internal/sim -run xxx -bench 'BenchmarkScheduler|BenchmarkTimer' -benchtime 100x -benchmem

# State-corruption gate (ISSUE 9): the scramble/ghost/reorder adversaries
# against every registry engine at seeds 1–5, the workers-1-vs-8
# byte-identical pin on the combined corrupted schedule, the hardened
# spec-grammar coverage, and the ssarq convergence property tests. Runs
# under the race detector: the matrix batches fan across the bench worker
# pool while the injector shares each run's scheduler with the engine, so
# the race run is load-bearing, not ceremony.
.PHONY: stabmatrix
stabmatrix:
	go test ./internal/faults -race -count=1 -run 'TestStabMatrix|TestStabDeterminism|TestParseSpecCorruptionGrammar'
	go test ./internal/ssarq -race -count=1 -run 'TestConvergenceFromScrambledState|TestGhostFloodHarmlessAfterConvergence'

# Constellation smoke (ISSUE 8): the 64-satellite Walker scenario on the
# sharded conservative engine, under the race detector, plus the
# shards-1-vs-8 byte-identical determinism pin. The engine's only unsafe
# surface is the inter-shard mailboxes and the barrier handshake, so the
# race run here is the load-bearing check, not ceremony.
.PHONY: constsmoke
constsmoke:
	go test ./internal/shard -race -count=1 -run 'TestConstellationSmoke|TestConstellationShardInvariance|TestEngine'

# Trace smoke (ISSUE 10): the channel-model registry's malformed-spec
# rejection table, the trace codec round-trip, and the record→replay golden
# pins — seeds 1–5 byte-identical to the live runs they were recorded from,
# and the replay batch byte-identical at workers 1 vs 8. The bench half runs
# under the race detector because replayed TraceSets are shared read-only
# across the worker pool; that sharing is exactly the surface a future
# mutation bug would race on.
.PHONY: tracesmoke
tracesmoke:
	go test ./internal/channel -count=1 -run 'TestParseModel|TestModelNew|TestLegacySpecs|TestTrace|TestRecorder|TestReplay|TestEncode|TestReadTrace|TestImportTwoColumn|TestGESplitClock|TestSpecGrammar'
	go test ./internal/bench -race -count=1 -run 'TestTraceRoundTripSeeds|TestTraceReplayWorkerInvariance|TestTraceReplayEveryEngine|TestAnalyticalModelProb'

# Allocation-budget smoke (ISSUE 6): the E4 sweep must stay inside the
# allocs/op budget pinned in BENCH_PR6.json (229483 before the per-run
# arena/pool work, ≤ 5737 after — the ≥40x bar with headroom over the
# ~2.3k measured). Runs the real benchmark body, so a pooling regression
# fails CI instead of the next perf investigation.
E4_ALLOC_BUDGET := 5737
.PHONY: allocsmoke
allocsmoke:
	@out=$$(go test . -run xxx -bench BenchmarkE4ThroughputVsTraffic -benchtime 100x -benchmem); \
	status=$$?; echo "$$out"; [ $$status -eq 0 ] || exit $$status; \
	allocs=$$(echo "$$out" | awk '$$1 ~ /^BenchmarkE4ThroughputVsTraffic/ { for (i = 1; i <= NF; i++) if ($$i == "allocs/op") print $$(i-1) }'); \
	if [ -z "$$allocs" ]; then echo "allocsmoke: no allocs/op in bench output"; exit 1; fi; \
	if [ "$$allocs" -gt $(E4_ALLOC_BUDGET) ]; then \
		echo "allocsmoke: E4 allocs/op $$allocs exceeds budget $(E4_ALLOC_BUDGET)"; exit 1; \
	fi; \
	echo "allocsmoke: E4 allocs/op $$allocs within budget $(E4_ALLOC_BUDGET)"

# Static analysis: vet plus staticcheck, version-pinned through go run so
# no tool install step exists. Offline environments (module proxy
# unreachable, tool not in the local cache) skip the staticcheck half
# instead of failing — vet always runs.
STATICCHECK := honnef.co/go/tools/cmd/staticcheck@2024.1.1
.PHONY: lint
lint:
	go vet ./...
	@out=$$(go run $(STATICCHECK) ./... 2>&1); status=$$?; \
	if [ $$status -eq 0 ]; then \
		[ -n "$$out" ] && echo "$$out"; \
	elif echo "$$out" | grep -qE 'no such host|dial tcp|connection refused|i/o timeout|cannot find module|missing go.sum entry|proxy.golang.org|no required module provides'; then \
		echo "lint: staticcheck skipped (offline: tool not in module cache)"; \
	else \
		echo "$$out"; exit $$status; \
	fi

# Recovery-path gate: the §3.2 invariant checker over the seed-pinned fault
# matrix (outage, half-duplex blackout, storm, burst, skew, handover, and
# the combined schedule, seeds 1–5), plus the workers-1-vs-8 determinism
# pins on the faulted batch — including the repeated-config batch that
# catches state leaking across runs through the ISSUE 6 pools. Every PR
# touching recovery, timers, the channel, or pooling runs through this.
.PHONY: faultmatrix
faultmatrix:
	go test ./internal/faults -count=1 -run 'TestFaultMatrix|TestFaultDeterminism'

# Aggregate statement coverage across all packages. The per-function
# breakdown lands in coverage.txt; the baseline is recorded in
# EXPERIMENTS.md so drift is visible in review.
.PHONY: cover
cover:
	go test -coverprofile=coverage.out ./...
	go tool cover -func=coverage.out > coverage.txt
	@tail -1 coverage.txt

# Micro-benchmarks for the hot paths the allocation diet targets, plus the
# constellation-scale shard sweep. The combined output lands in
# BENCH_PR8.json (via cmd/benchjson) as the machine-readable snapshot the
# perf tables in EXPERIMENTS.md cite; BENCH_PR3.json (pre-arena) and
# BENCH_PR6.json (pre-shard) are frozen baselines and are never rewritten.
.PHONY: bench
bench:
	{ go test ./internal/frame -run xxx -bench 'BenchmarkEncodeI|BenchmarkDecode' -benchmem; \
	  go test ./internal/crc -run xxx -bench . -benchmem; \
	  go test ./internal/sim -run xxx -bench 'BenchmarkScheduler|BenchmarkTimer' -benchmem; \
	  go test ./internal/channel -run xxx -bench BenchmarkPipeSendDeliver -benchmem; \
	  go test ./internal/shard -run xxx -bench BenchmarkConstellation -benchtime 1x -benchmem; \
	  go test . -run xxx -bench 'BenchmarkE4|BenchmarkLAMSTransfer' -benchtime 1x -benchmem; } \
	| go run ./cmd/benchjson -o BENCH_PR8.json
