# Tier-1 verification (ROADMAP.md): build everything, run everything.
.PHONY: test
test:
	go build ./...
	go test ./...

# CI gate: tier-1 plus static analysis and the race detector. The parallel
# experiment engine (internal/bench) fans simulations across a worker pool,
# so the race run is load-bearing, not ceremony. The -benchtime=100x
# scheduler bench smoke run does not measure anything — it exists to execute
# the timer-wheel benchmark bodies (churn, deep churn, timer restart) under
# the test binary so a regression that only bites the benchmark paths fails
# CI instead of the next perf investigation.
.PHONY: ci
ci: test cover faultmatrix lint
	go test -race ./...
	go test ./internal/sim -run xxx -bench 'BenchmarkScheduler|BenchmarkTimer' -benchtime 100x -benchmem

# Static analysis: vet plus staticcheck, version-pinned through go run so
# no tool install step exists. Offline environments (module proxy
# unreachable, tool not in the local cache) skip the staticcheck half
# instead of failing — vet always runs.
STATICCHECK := honnef.co/go/tools/cmd/staticcheck@2024.1.1
.PHONY: lint
lint:
	go vet ./...
	@out=$$(go run $(STATICCHECK) ./... 2>&1); status=$$?; \
	if [ $$status -eq 0 ]; then \
		[ -n "$$out" ] && echo "$$out"; \
	elif echo "$$out" | grep -qE 'no such host|dial tcp|connection refused|i/o timeout|cannot find module|missing go.sum entry|proxy.golang.org|no required module provides'; then \
		echo "lint: staticcheck skipped (offline: tool not in module cache)"; \
	else \
		echo "$$out"; exit $$status; \
	fi

# Recovery-path gate: the §3.2 invariant checker over the seed-pinned fault
# matrix (outage, half-duplex blackout, storm, burst, skew, handover, and
# the combined schedule, seeds 1–5), plus the workers-1-vs-8 determinism
# pin on the faulted batch. Every PR touching recovery, timers, or the
# channel runs its changes through this.
.PHONY: faultmatrix
faultmatrix:
	go test ./internal/faults -count=1 -run 'TestFaultMatrix|TestFaultDeterminismAcrossWorkers'

# Aggregate statement coverage across all packages. The per-function
# breakdown lands in coverage.txt; the baseline is recorded in
# EXPERIMENTS.md so drift is visible in review.
.PHONY: cover
cover:
	go test -coverprofile=coverage.out ./...
	go tool cover -func=coverage.out > coverage.txt
	@tail -1 coverage.txt

# Micro-benchmarks for the hot paths the allocation diet targets. The
# combined output also lands in BENCH_PR3.json (via cmd/benchjson) as the
# machine-readable snapshot the perf table in EXPERIMENTS.md cites.
.PHONY: bench
bench:
	{ go test ./internal/frame -run xxx -bench 'BenchmarkEncodeI|BenchmarkDecode' -benchmem; \
	  go test ./internal/crc -run xxx -bench . -benchmem; \
	  go test ./internal/sim -run xxx -bench 'BenchmarkScheduler|BenchmarkTimer' -benchmem; \
	  go test ./internal/channel -run xxx -bench BenchmarkPipeSendDeliver -benchmem; \
	  go test . -run xxx -bench 'BenchmarkE4|BenchmarkLAMSTransfer' -benchtime 1x -benchmem; } \
	| go run ./cmd/benchjson -o BENCH_PR3.json
