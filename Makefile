# Tier-1 verification (ROADMAP.md): build everything, run everything.
.PHONY: test
test:
	go build ./...
	go test ./...

# CI gate: tier-1 plus static analysis and the race detector. The parallel
# experiment engine (internal/bench) fans simulations across a worker pool,
# so the race run is load-bearing, not ceremony.
.PHONY: ci
ci: test cover
	go vet ./...
	go test -race ./...

# Aggregate statement coverage across all packages. The per-function
# breakdown lands in coverage.txt; the baseline is recorded in
# EXPERIMENTS.md so drift is visible in review.
.PHONY: cover
cover:
	go test -coverprofile=coverage.out ./...
	go tool cover -func=coverage.out > coverage.txt
	@tail -1 coverage.txt

# Micro-benchmarks for the hot paths the allocation diet targets.
.PHONY: bench
bench:
	go test ./internal/frame -run xxx -bench 'BenchmarkEncodeI|BenchmarkDecode'
	go test ./internal/sim -run xxx -bench BenchmarkSchedulerChurn
	go test ./internal/channel -run xxx -bench BenchmarkPipeSendDeliver
	go test . -run xxx -bench 'BenchmarkE4|BenchmarkLAMSTransfer' -benchtime 1x
